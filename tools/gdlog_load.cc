// gdlog_load: load generator and smoke-checker for gdlogd. Registers a
// program, fires N concurrent identical /query requests, verifies every
// response is byte-identical, and reports latency percentiles plus the
// server's cache counters — the "N identical queries run one chase"
// single-flight property made observable from outside.
//
//   gdlog_load --port P --program FILE [options]
//
// Options:
//   --host H              server address             (default 127.0.0.1)
//   --port P              server port                (required)
//   --program FILE        program in surface syntax  (required)
//   --db FILE             database file              (default: empty DB)
//   --grounder MODE       auto | simple | perfect    (default auto)
//   --requests N          total /query requests      (default 64)
//   --concurrency C       client connections         (default 8)
//   --include-outcomes    ask for the outcomes section
//   --include-events      ask for the event table
//   --check               exit non-zero unless exactly one chase ran
//                         (misses +1, hits+coalesced +N-1) and all
//                         responses were 200 and byte-identical
//   --dump-response FILE  write the response body to FILE (compare with
//                         `gdlog_cli --json` via cmp)
//   --delta FILE          after the query storm, PATCH the file's facts
//                         onto the program's database and issue one more
//                         /query. Prints the server's delta report
//                         (rows appended, rules refired, spaces
//                         revalidated/evicted); with --check, when the
//                         server revalidated at least one cached space,
//                         asserts the post-delta query hit the cache
//                         (zero additional chases)
//   --fleet-workers LIST  fleet mode: POST /v1/jobs with this
//                         comma-separated "host:port" worker list instead
//                         of /v1/query. Jobs share /query's cache
//                         fingerprint, so --check's "one chase for N
//                         identical requests" assertion holds unchanged;
//                         fleet counter deltas (dispatches, retries,
//                         steals, streamed/duplicate partials, partial-
//                         cache hits/misses) and per-worker dispatch
//                         latency (p50/p95/max) are printed alongside the
//                         cache deltas
//   --shards N            fleet mode: shard count (default: worker count)
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "server/http.h"
#include "util/json.h"

namespace {

struct LoadOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string program_path;
  std::string db_path;
  std::string grounder = "auto";
  size_t requests = 64;
  size_t concurrency = 8;
  bool include_outcomes = false;
  bool include_events = false;
  bool check = false;
  std::string dump_path;
  std::string delta_path;
  std::string fleet_workers;
  size_t shards = 0;
};

[[noreturn]] void Usage(const char* argv0, const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: %s --port P --program FILE [--host H] [--db FILE]\n"
               "          [--grounder MODE] [--requests N]\n"
               "          [--concurrency C] [--include-outcomes]\n"
               "          [--include-events] [--check]\n"
               "          [--dump-response FILE] [--delta FILE]\n"
               "          [--fleet-workers H:P,H:P,...] [--shards N]\n",
               argv0);
  std::exit(2);
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// <section>.<field> out of a /v1/stats body, or -1.
long long StatsCounter(const gdlog::JsonValue& stats, const char* section,
                       const char* field) {
  const gdlog::JsonValue* obj = stats.Find(section);
  if (obj == nullptr) return -1;
  const gdlog::JsonValue* value = obj->Find(field);
  if (value == nullptr || !value->is_number()) return -1;
  auto n = value->NumberAsInt();
  return n.ok() ? *n : -1;
}

/// cache.<field> out of a /v1/stats body, or -1.
long long CacheCounter(const gdlog::JsonValue& stats, const char* field) {
  return StatsCounter(stats, "cache", field);
}

gdlog::Result<gdlog::JsonValue> FetchStats(const std::string& host,
                                           int port) {
  GDLOG_ASSIGN_OR_RETURN(gdlog::HttpClient client,
                         gdlog::HttpClient::Connect(host, port));
  GDLOG_ASSIGN_OR_RETURN(gdlog::HttpResponse response,
                         client.Request("GET", "/v1/stats"));
  if (response.status != 200) {
    return gdlog::Status::Internal("/stats returned " +
                                   std::to_string(response.status));
  }
  return gdlog::JsonValue::Parse(response.body);
}

}  // namespace

int main(int argc, char** argv) {
  LoadOptions opts;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) Usage(argv[0], "missing argument value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (!std::strcmp(arg, "--host")) {
      opts.host = need_value(i);
    } else if (!std::strcmp(arg, "--port")) {
      opts.port = static_cast<int>(std::strtol(need_value(i), nullptr, 10));
    } else if (!std::strcmp(arg, "--program")) {
      opts.program_path = need_value(i);
    } else if (!std::strcmp(arg, "--db")) {
      opts.db_path = need_value(i);
    } else if (!std::strcmp(arg, "--grounder")) {
      opts.grounder = need_value(i);
    } else if (!std::strcmp(arg, "--requests")) {
      opts.requests = std::strtoull(need_value(i), nullptr, 10);
    } else if (!std::strcmp(arg, "--concurrency")) {
      opts.concurrency = std::strtoull(need_value(i), nullptr, 10);
    } else if (!std::strcmp(arg, "--include-outcomes")) {
      opts.include_outcomes = true;
    } else if (!std::strcmp(arg, "--include-events")) {
      opts.include_events = true;
    } else if (!std::strcmp(arg, "--check")) {
      opts.check = true;
    } else if (!std::strcmp(arg, "--dump-response")) {
      opts.dump_path = need_value(i);
    } else if (!std::strcmp(arg, "--delta")) {
      opts.delta_path = need_value(i);
    } else if (!std::strcmp(arg, "--fleet-workers")) {
      opts.fleet_workers = need_value(i);
    } else if (!std::strcmp(arg, "--shards")) {
      opts.shards = std::strtoull(need_value(i), nullptr, 10);
    } else if (!std::strcmp(arg, "--help") || !std::strcmp(arg, "-h")) {
      Usage(argv[0]);
    } else {
      Usage(argv[0], (std::string("unknown flag: ") + arg).c_str());
    }
  }
  if (opts.port == 0) Usage(argv[0], "--port is required");
  if (opts.program_path.empty()) Usage(argv[0], "--program is required");
  if (opts.requests == 0 || opts.concurrency == 0) {
    Usage(argv[0], "--requests and --concurrency must be positive");
  }
  opts.concurrency = std::min(opts.concurrency, opts.requests);

  // Counters before the run: the server may be warm already; --check
  // asserts on deltas.
  auto stats_before = FetchStats(opts.host, opts.port);
  if (!stats_before.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 stats_before.status().ToString().c_str());
    return 1;
  }

  // Register (idempotent: an already-registered identical spec returns
  // the same id).
  gdlog::JsonWriter reg;
  reg.BeginObject();
  reg.KV("program", ReadFile(opts.program_path));
  reg.KV("db", opts.db_path.empty() ? "" : ReadFile(opts.db_path));
  reg.KV("grounder", opts.grounder);
  reg.EndObject();
  auto client = gdlog::HttpClient::Connect(opts.host, opts.port);
  if (!client.ok()) {
    std::fprintf(stderr, "error: %s\n", client.status().ToString().c_str());
    return 1;
  }
  auto registered = client->Request("POST", "/v1/programs", reg.str());
  if (!registered.ok() ||
      (registered->status != 200 && registered->status != 201)) {
    std::fprintf(stderr, "error registering program: %s\n",
                 registered.ok() ? registered->body.c_str()
                                 : registered.status().ToString().c_str());
    return 1;
  }
  auto reg_doc = gdlog::JsonValue::Parse(registered->body);
  const gdlog::JsonValue* id_field =
      reg_doc.ok() ? reg_doc->Find("id") : nullptr;
  if (id_field == nullptr || !id_field->is_string()) {
    std::fprintf(stderr, "error: malformed /programs response\n");
    return 1;
  }
  std::string program_id = id_field->string_value();
  std::printf("registered program %s\n", program_id.c_str());

  const bool fleet = !opts.fleet_workers.empty();
  gdlog::JsonWriter query;
  query.BeginObject();
  query.KV("program_id", program_id);
  if (opts.include_outcomes) query.KV("include_outcomes", true);
  if (opts.include_events) query.KV("include_events", true);
  if (fleet) {
    query.Key("workers").BeginArray();
    std::string worker;
    for (const char* p = opts.fleet_workers.c_str();; ++p) {
      if (*p == ',' || *p == '\0') {
        if (!worker.empty()) query.String(worker);
        worker.clear();
        if (*p == '\0') break;
      } else {
        worker.push_back(*p);
      }
    }
    query.EndArray();
    if (opts.shards > 0) {
      query.KV("shards", static_cast<long long>(opts.shards));
    }
  }
  query.EndObject();
  const std::string query_body = query.str();
  const char* query_target = fleet ? "/v1/jobs" : "/v1/query";

  std::atomic<size_t> next{0};
  std::atomic<size_t> failures{0};
  std::mutex mu;
  std::string first_body;
  bool mismatch = false;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(opts.requests);

  auto worker = [&]() {
    auto conn = gdlog::HttpClient::Connect(opts.host, opts.port);
    if (!conn.ok()) {
      failures.fetch_add(1);
      return;
    }
    while (next.fetch_add(1) < opts.requests) {
      auto start = std::chrono::steady_clock::now();
      auto response = conn->Request("POST", query_target, query_body);
      double ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
      if (!response.ok() || response->status != 200) {
        std::fprintf(stderr, "query failed: %s\n",
                     response.ok() ? response->body.c_str()
                                   : response.status().ToString().c_str());
        failures.fetch_add(1);
        continue;
      }
      std::lock_guard<std::mutex> lock(mu);
      latencies_ms.push_back(ms);
      if (first_body.empty()) {
        first_body = response->body;
      } else if (response->body != first_body) {
        mismatch = true;
      }
    }
  };
  std::vector<std::thread> threads;
  for (size_t i = 0; i < opts.concurrency; ++i) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();

  if (!opts.dump_path.empty() && !first_body.empty()) {
    std::ofstream out(opts.dump_path, std::ios::binary);
    out << first_body;
  }

  std::sort(latencies_ms.begin(), latencies_ms.end());
  auto percentile = [&](double p) {
    if (latencies_ms.empty()) return 0.0;
    size_t idx = static_cast<size_t>(p * double(latencies_ms.size() - 1));
    return latencies_ms[idx];
  };
  double mean = 0.0;
  for (double ms : latencies_ms) mean += ms;
  if (!latencies_ms.empty()) mean /= double(latencies_ms.size());
  std::printf(
      "requests=%zu ok=%zu failed=%zu concurrency=%zu\n"
      "latency ms: mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f\n",
      opts.requests, latencies_ms.size(), failures.load(), opts.concurrency,
      mean, percentile(0.50), percentile(0.95), percentile(0.99),
      percentile(1.0));

  auto stats_after = FetchStats(opts.host, opts.port);
  if (!stats_after.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 stats_after.status().ToString().c_str());
    return 1;
  }
  long long d_misses = CacheCounter(*stats_after, "misses") -
                       CacheCounter(*stats_before, "misses");
  long long d_hits = CacheCounter(*stats_after, "hits") -
                     CacheCounter(*stats_before, "hits");
  long long d_coalesced = CacheCounter(*stats_after, "coalesced") -
                          CacheCounter(*stats_before, "coalesced");
  std::printf("cache deltas: misses=%lld hits=%lld coalesced=%lld\n",
              d_misses, d_hits, d_coalesced);
  if (fleet) {
    auto fleet_delta = [&](const char* field) {
      return StatsCounter(*stats_after, "fleet", field) -
             StatsCounter(*stats_before, "fleet", field);
    };
    std::printf(
        "fleet deltas: jobs=%lld dispatches=%lld retries=%lld "
        "worker_failures=%lld partials_merged=%lld steals=%lld "
        "partials_streamed=%lld duplicate_partials=%lld "
        "partial_cache_hits=%lld partial_cache_misses=%lld\n",
        fleet_delta("jobs"), fleet_delta("dispatches"),
        fleet_delta("retries"), fleet_delta("worker_failures"),
        fleet_delta("partials_merged"), fleet_delta("steals"),
        fleet_delta("partials_streamed"), fleet_delta("duplicate_partials"),
        fleet_delta("partial_cache_hits"),
        fleet_delta("partial_cache_misses"));
    // Per-worker dispatch latency as the coordinator measured it — the
    // outside view of which worker is the straggler.
    const gdlog::JsonValue* fleet_obj = stats_after->Find("fleet");
    const gdlog::JsonValue* workers_obj =
        fleet_obj != nullptr ? fleet_obj->Find("workers") : nullptr;
    if (workers_obj != nullptr && workers_obj->is_object()) {
      for (const auto& [address, stats] : workers_obj->members()) {
        auto field = [&](const char* name) {
          const gdlog::JsonValue* value = stats.Find(name);
          if (value == nullptr || !value->is_number()) return 0.0;
          return value->NumberAsDouble();
        };
        std::printf(
            "fleet worker %s: dispatches=%lld p50_ms=%.3f p95_ms=%.3f "
            "max_ms=%.3f\n",
            address.c_str(), static_cast<long long>(field("dispatches")),
            field("p50_ms"), field("p95_ms"), field("max_ms"));
      }
    }
  }

  if (mismatch) std::fprintf(stderr, "FAIL: response bodies differ\n");
  bool ok = !mismatch && failures.load() == 0;
  if (opts.check) {
    // One chase for N identical queries: the first miss computes, every
    // other request either hits the cache or coalesces onto the flight.
    long long expected = static_cast<long long>(opts.requests) - 1;
    if (d_misses != 1 || d_hits + d_coalesced != expected) {
      std::fprintf(stderr,
                   "FAIL: expected misses=1 and hits+coalesced=%lld\n",
                   expected);
      ok = false;
    }
  }

  if (ok && !opts.delta_path.empty()) {
    gdlog::JsonWriter patch;
    patch.BeginObject();
    patch.KV("delta", ReadFile(opts.delta_path));
    patch.EndObject();
    auto patched = client->Request(
        "PATCH", "/v1/programs/" + program_id + "/db", patch.str());
    if (!patched.ok() || patched->status != 200) {
      std::fprintf(stderr, "FAIL: PATCH /db: %s\n",
                   patched.ok() ? patched->body.c_str()
                                : patched.status().ToString().c_str());
      std::printf("FAIL\n");
      return 1;
    }
    auto patch_doc = gdlog::JsonValue::Parse(patched->body);
    const gdlog::JsonValue* delta_obj =
        patch_doc.ok() ? patch_doc->Find("delta") : nullptr;
    auto delta_counter = [&](const char* field) -> long long {
      if (delta_obj == nullptr) return -1;
      const gdlog::JsonValue* value = delta_obj->Find(field);
      if (value == nullptr || !value->is_number()) return -1;
      auto n = value->NumberAsInt();
      return n.ok() ? *n : -1;
    };
    long long revalidated = delta_counter("spaces_revalidated");
    std::printf(
        "delta: rows_appended=%lld rules_refired=%lld "
        "spaces_revalidated=%lld spaces_evicted=%lld\n",
        delta_counter("rows_appended"), delta_counter("rules_refired"),
        revalidated, delta_counter("spaces_evicted"));

    auto after_query = client->Request("POST", query_target, query_body);
    if (!after_query.ok() || after_query->status != 200) {
      std::fprintf(stderr, "FAIL: post-delta query failed\n");
      std::printf("FAIL\n");
      return 1;
    }
    auto stats_final = FetchStats(opts.host, opts.port);
    long long post_misses =
        stats_final.ok() ? CacheCounter(*stats_final, "misses") -
                               CacheCounter(*stats_after, "misses")
                         : -1;
    std::printf("post-delta query: misses=%lld\n", post_misses);
    if (opts.check && revalidated >= 1 && post_misses != 0) {
      // The server claimed it carried the cached space across the delta,
      // yet the very next identical query ran a chase.
      std::fprintf(stderr,
                   "FAIL: revalidated space did not serve the query\n");
      ok = false;
    }
  }

  std::printf("%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
