#!/usr/bin/env bash
# Records google-benchmark baselines for every experiment binary
# (build/bench/bench_e*) into BENCH_BASELINE.json, keyed by binary name,
# so perf PRs have numbers to beat. Each binary's verification table goes
# to the console; the timing data goes through --benchmark_format=json.
#
# Usage: tools/bench_baseline.sh [--quick] [build_dir]
#
# --quick caps per-benchmark measurement time (0.05s instead of the
# library's adaptive default) so the full E1-E11 sweep fits a CI smoke
# job; quick numbers are noisier and meant for artifacts/trend lines, not
# for committing as the canonical baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

quick_args=()
if [ "${1:-}" = "--quick" ]; then
  # Unsuffixed seconds: google-benchmark <= 1.6 rejects the "0.05s" form
  # outright (and silently ignores the flag), while 1.8+ merely deprecates
  # the bare double — the bare form is the one every shipped version obeys.
  quick_args=(--benchmark_min_time=0.05)
  shift
fi

build_dir=${1:-build}
out=BENCH_BASELINE.json

if ! ls "$build_dir"/bench/bench_e* >/dev/null 2>&1; then
  echo "error: no bench binaries under $build_dir/bench (configure with" \
       "google-benchmark installed and build first)" >&2
  exit 1
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

for bin in "$build_dir"/bench/bench_e*; do
  [ -x "$bin" ] || continue
  name=$(basename "$bin")
  echo "== $name" >&2
  "$bin" --benchmark_out="$tmp/$name.json" --benchmark_out_format=json \
    ${quick_args[@]+"${quick_args[@]}"} >/dev/null
done

python3 - "$tmp" > "$out" <<'EOF'
import json, os, sys

directory = sys.argv[1]
merged = {
    "_meta": {
        "note": "Baselines recorded by tools/bench_baseline.sh; "
                "re-run it after perf work and compare real_time per "
                "benchmark. The recording host's core count is in each "
                "entry's context.num_cpus — thread-scaling rows "
                "(e.g. BM_NetworkExact_Clique4_Threads) only show "
                "speedup when num_cpus > 1.",
    }
}
for filename in sorted(os.listdir(directory)):
    with open(os.path.join(directory, filename)) as fh:
        merged[filename[: -len(".json")]] = json.load(fh)
print(json.dumps(merged, indent=1, sort_keys=True))
EOF

echo "wrote $out" >&2
