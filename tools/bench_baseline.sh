#!/usr/bin/env bash
# Records google-benchmark baselines for every experiment binary
# (build/bench/bench_e*) into BENCH_BASELINE.json, keyed by binary name,
# so perf PRs have numbers to beat. Each binary's verification table goes
# to the console; the timing data goes through --benchmark_format=json.
#
# Usage: tools/bench_baseline.sh [--quick] [build_dir]
#        tools/bench_baseline.sh --compare OLD.json NEW.json
#                                [--threshold PCT] [--skip-host-mismatch]
#
# --quick caps per-benchmark measurement time (0.05s instead of the
# library's adaptive default) so the full E1-E13 sweep fits a CI smoke
# job; quick numbers are noisier and meant for artifacts/trend lines, not
# for committing as the canonical baseline.
#
# --compare prints per-benchmark real_time deltas between two baseline
# files and exits non-zero when any benchmark regressed by more than the
# threshold (default 25%), which is what lets CI gate on perf instead of
# just uploading artifacts. Benchmarks present in only one file are
# reported but never gate. --skip-host-mismatch turns the whole compare
# into a no-op (exit 0, with a notice) when the two files were recorded
# on hosts with different core counts — cross-host "regressions" are
# hardware, not code.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" = "--compare" ]; then
  shift
  old=${1:?usage: --compare OLD.json NEW.json}
  new=${2:?usage: --compare OLD.json NEW.json}
  shift 2
  threshold=25
  skip_host_mismatch=0
  while [ $# -gt 0 ]; do
    case "$1" in
      --threshold) threshold=${2:?--threshold needs a value}; shift 2 ;;
      --skip-host-mismatch) skip_host_mismatch=1; shift ;;
      *) echo "error: unknown compare flag: $1" >&2; exit 2 ;;
    esac
  done
  exec python3 - "$old" "$new" "$threshold" "$skip_host_mismatch" <<'EOF'
import json, sys

old_path, new_path, threshold, skip_mismatch = (
    sys.argv[1], sys.argv[2], float(sys.argv[3]), sys.argv[4] == "1")
old = json.load(open(old_path))
new = json.load(open(new_path))

def rows(doc):
    """(binary, benchmark name) -> real_time, plus one num_cpus seen."""
    table, cpus = {}, None
    for binary, payload in doc.items():
        if binary.startswith("_") or not isinstance(payload, dict):
            continue
        cpus = payload.get("context", {}).get("num_cpus", cpus)
        for row in payload.get("benchmarks", []):
            # Skip aggregate rows (mean/median/stddev of repetitions);
            # plain runs gate on the per-run real_time.
            if row.get("aggregate_name"):
                continue
            table[(binary, row["name"])] = (row["real_time"],
                                            row.get("time_unit", "ns"))
    return table, cpus

def counter_rows(doc, counter):
    """(binary, benchmark name) -> counter value, for rows that carry it."""
    table = {}
    for binary, payload in doc.items():
        if binary.startswith("_") or not isinstance(payload, dict):
            continue
        for row in payload.get("benchmarks", []):
            if row.get("aggregate_name") or counter not in row:
                continue
            table[(binary, row["name"])] = row[counter]
    return table

old_rows, old_cpus = rows(old)
new_rows, new_cpus = rows(new)
if skip_mismatch and old_cpus != new_cpus:
    print(f"compare skipped: baselines recorded on different hosts "
          f"(num_cpus {old_cpus} vs {new_cpus}); deltas would measure "
          f"hardware, not code")
    sys.exit(0)

regressions = []
print(f"{'benchmark':<58} {'old':>12} {'new':>12} {'delta':>8}")
for key in sorted(set(old_rows) | set(new_rows)):
    binary, name = key
    label = f"{binary}:{name}"
    if key not in old_rows:
        print(f"{label:<58} {'-':>12} {new_rows[key][0]:>12.0f}      new")
        continue
    if key not in new_rows:
        print(f"{label:<58} {old_rows[key][0]:>12.0f} {'-':>12}  removed")
        continue
    old_t, unit = old_rows[key]
    new_t, _ = new_rows[key]
    delta = (new_t - old_t) / old_t * 100.0 if old_t > 0 else 0.0
    flag = ""
    if delta > threshold:
        flag = "  REGRESSED"
        regressions.append((label, delta))
    print(f"{label:<58} {old_t:>12.0f} {new_t:>12.0f} {delta:>+7.1f}%{flag}")

# Grounding-family throughput: the rules/s counters the grounding
# benches export, as a dedicated delta table (higher is better; never
# gates — the real_time gate above already covers these rows).
old_rules = counter_rows(old, "rules/s")
new_rules = counter_rows(new, "rules/s")
if old_rules or new_rules:
    print(f"\ngrounding family (rules/s; higher is better)")
    print(f"{'benchmark':<58} {'old':>12} {'new':>12} {'delta':>8}")
    for key in sorted(set(old_rules) | set(new_rules)):
        label = f"{key[0]}:{key[1]}"
        o, n = old_rules.get(key), new_rules.get(key)
        if o is None:
            print(f"{label:<58} {'-':>12} {n:>12.0f}      new")
        elif n is None:
            print(f"{label:<58} {o:>12.0f} {'-':>12}  removed")
        else:
            delta = (n - o) / o * 100.0 if o > 0 else 0.0
            print(f"{label:<58} {o:>12.0f} {n:>12.0f} {delta:>+7.1f}%")

if regressions:
    print(f"\n{len(regressions)} benchmark(s) regressed more than "
          f"{threshold:.0f}%:")
    for label, delta in regressions:
        print(f"  {label}: {delta:+.1f}%")
    sys.exit(1)
print(f"\nno regressions above {threshold:.0f}%")
EOF
fi

quick_args=()
if [ "${1:-}" = "--quick" ]; then
  # Unsuffixed seconds: google-benchmark <= 1.6 rejects the "0.05s" form
  # outright (and silently ignores the flag), while 1.8+ merely deprecates
  # the bare double — the bare form is the one every shipped version obeys.
  quick_args=(--benchmark_min_time=0.05)
  shift
fi

build_dir=${1:-build}
out=BENCH_BASELINE.json

if ! ls "$build_dir"/bench/bench_e* >/dev/null 2>&1; then
  echo "error: no bench binaries under $build_dir/bench (configure with" \
       "google-benchmark installed and build first)" >&2
  exit 1
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

for bin in "$build_dir"/bench/bench_e*; do
  [ -x "$bin" ] || continue
  name=$(basename "$bin")
  echo "== $name" >&2
  "$bin" --benchmark_out="$tmp/$name.json" --benchmark_out_format=json \
    ${quick_args[@]+"${quick_args[@]}"} >/dev/null
done

python3 - "$tmp" > "$out" <<'EOF'
import json, os, sys

directory = sys.argv[1]
merged = {
    "_meta": {
        "note": "Baselines recorded by tools/bench_baseline.sh; "
                "re-run it after perf work and compare real_time per "
                "benchmark. The recording host's core count is in each "
                "entry's context.num_cpus — thread-scaling rows "
                "(e.g. BM_NetworkExact_Clique4_Threads) only show "
                "speedup when num_cpus > 1. The committed file covers "
                "E1-E13 (E13 = the PR 6 demand transformation, whose "
                "facts_derived counters feed the CI bench-smoke "
                "summary; E11 additionally carries the PR 7 "
                "delta-serving rows — BM_DeltaUpdate_Patch1Pct vs "
                "BM_DeltaUpdate_FullRebuild is the >=10x update gate, "
                "BM_DeltaQuery_Revalidated must report chases=1) and "
                "was recorded in quick mode on the same 1-vCPU "
                "container class as the previous baselines, so the CI "
                "compare gate keeps self-skipping on the multicore "
                "hosted runners.",
    }
}
for filename in sorted(os.listdir(directory)):
    with open(os.path.join(directory, filename)) as fh:
        merged[filename[: -len(".json")]] = json.load(fh)
print(json.dumps(merged, indent=1, sort_keys=True))
EOF

echo "wrote $out" >&2
