// gdlogd: the long-lived inference daemon. Clients register a program+DB
// once (POST /programs) and query it by id; exact results are served
// through a fingerprint-keyed outcome-space cache, so repeated identical
// queries cost a hash lookup instead of a chase.
//
//   gdlogd [--host H] [--port P] [options]
//
// Options:
//   --host H              bind address                (default 127.0.0.1)
//   --port P              listen port; 0 = kernel-assigned (default 8080)
//   --http-threads N      connection workers — also the concurrent-
//                         connection capacity (default max(4, hw threads))
//   --chase-threads N     default chase workers per query; requests may
//                         override via options.num_threads (default 1:
//                         the server parallelizes across requests)
//   --cache-mb N          InferenceCache bound in MiB     (default 256)
//   --max-body-mb N       request-body cap in MiB         (default 32)
//   --idle-timeout-ms N   keep-alive idle timeout         (default 30000)
//   --max-samples N       per-request /sample cap         (default 10^7)
//   --fleet-workers LIST  comma-separated "host:port" worker addresses;
//                         becomes the default worker set for /v1/jobs,
//                         turning this daemon into a fleet coordinator
//   --fleet-deadline-ms N per-exchange worker deadline    (default 60000)
//   --fleet-steal-after-ms N  age an in-flight exchange must reach before
//                         an idle worker steals its undelivered shards
//                         (default 250)
//   --fleet-partial-cache-mb N  worker-side partial cache bound in MiB;
//                         0 disables it                   (default 64)
//   --version             print the build version (git describe) and exit
//
// Every request is access-logged to stderr as
//   gdlogd: METHOD TARGET status=N trace=ID
// where ID is the request's X-Gdlog-Trace id (caller-supplied or minted);
// a coordinator forwards its id to workers, so grepping one id across the
// fleet's logs reconstructs a whole distributed job.
//
// Endpoints (all under /v1/, with deprecated unversioned aliases): POST
// /v1/programs, GET|DELETE /v1/programs/<id>, PUT|PATCH
// /v1/programs/<id>/db, POST /v1/query, POST /v1/sample, POST /v1/shards,
// POST /v1/jobs, GET /v1/healthz, GET /v1/stats (see src/server/service.h
// and docs/API.md). Every gdlogd serves /v1/shards, so any instance can be
// a fleet worker; --fleet-workers only seeds the coordinator's default
// worker list. SIGTERM/SIGINT drain gracefully: in-flight requests
// finish, then the process exits 0.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "obs/version.h"
#include "server/http.h"
#include "server/service.h"

namespace {

gdlog::HttpServer* g_server = nullptr;

void HandleSignal(int /*sig*/) {
  // Shutdown() is async-signal-safe: an atomic store plus a pipe write.
  if (g_server != nullptr) g_server->Shutdown();
}

[[noreturn]] void Usage(const char* argv0, const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: %s [--host H] [--port P] [--http-threads N]\n"
               "          [--chase-threads N] [--cache-mb N]\n"
               "          [--max-body-mb N] [--idle-timeout-ms N]\n"
               "          [--max-samples N] [--fleet-workers H:P,H:P,...]\n"
               "          [--fleet-deadline-ms N] [--fleet-steal-after-ms N]\n"
               "          [--fleet-partial-cache-mb N] [--version]\n",
               argv0);
  std::exit(2);
}

// Splits a comma-separated worker list, dropping empty segments (so a
// trailing comma is harmless).
std::vector<std::string> SplitWorkers(const char* list) {
  std::vector<std::string> workers;
  std::string current;
  for (const char* p = list;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!current.empty()) workers.push_back(current);
      current.clear();
      if (*p == '\0') break;
    } else {
      current.push_back(*p);
    }
  }
  return workers;
}

}  // namespace

int main(int argc, char** argv) {
  gdlog::HttpServerOptions http_options;
  http_options.port = 8080;
  gdlog::InferenceService::Options service_options;
  service_options.default_chase.num_threads = 1;

  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) Usage(argv[0], "missing argument value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (!std::strcmp(arg, "--host")) {
      http_options.host = need_value(i);
    } else if (!std::strcmp(arg, "--port")) {
      http_options.port = static_cast<int>(std::strtol(need_value(i),
                                                       nullptr, 10));
    } else if (!std::strcmp(arg, "--http-threads")) {
      http_options.workers = std::strtoull(need_value(i), nullptr, 10);
    } else if (!std::strcmp(arg, "--chase-threads")) {
      service_options.default_chase.num_threads =
          std::strtoull(need_value(i), nullptr, 10);
    } else if (!std::strcmp(arg, "--cache-mb")) {
      service_options.cache_bytes =
          std::strtoull(need_value(i), nullptr, 10) * 1024 * 1024;
    } else if (!std::strcmp(arg, "--max-body-mb")) {
      http_options.max_body_bytes =
          std::strtoull(need_value(i), nullptr, 10) * 1024 * 1024;
    } else if (!std::strcmp(arg, "--idle-timeout-ms")) {
      http_options.idle_timeout_ms =
          static_cast<int>(std::strtol(need_value(i), nullptr, 10));
    } else if (!std::strcmp(arg, "--max-samples")) {
      service_options.max_samples = std::strtoull(need_value(i), nullptr, 10);
    } else if (!std::strcmp(arg, "--fleet-workers")) {
      service_options.fleet_workers = SplitWorkers(need_value(i));
    } else if (!std::strcmp(arg, "--fleet-deadline-ms")) {
      service_options.fleet_deadline_ms =
          static_cast<int>(std::strtol(need_value(i), nullptr, 10));
    } else if (!std::strcmp(arg, "--fleet-steal-after-ms")) {
      service_options.fleet_steal_after_ms =
          static_cast<int>(std::strtol(need_value(i), nullptr, 10));
    } else if (!std::strcmp(arg, "--fleet-partial-cache-mb")) {
      service_options.fleet_partial_cache_bytes =
          std::strtoull(need_value(i), nullptr, 10) * 1024 * 1024;
    } else if (!std::strcmp(arg, "--version")) {
      // The same string /v1/healthz reports as "version".
      std::printf("gdlogd %s\n", gdlog::GdlogVersion());
      return 0;
    } else if (!std::strcmp(arg, "--help") || !std::strcmp(arg, "-h")) {
      Usage(argv[0]);
    } else {
      Usage(argv[0], (std::string("unknown flag: ") + arg).c_str());
    }
  }

  gdlog::InferenceService service(service_options);
  auto server = gdlog::HttpServer::Create(
      http_options,
      [&service](const gdlog::HttpRequest& request) {
        gdlog::HttpResponse response = service.Handle(request);
        const std::string* trace = response.FindHeader(gdlog::kTraceHeader);
        std::fprintf(stderr, "gdlogd: %s %s status=%d trace=%s\n",
                     request.method.c_str(), request.target.c_str(),
                     response.status,
                     trace != nullptr ? trace->c_str() : "-");
        return response;
      });
  if (!server.ok()) {
    std::fprintf(stderr, "error: %s\n", server.status().ToString().c_str());
    return 1;
  }

  g_server = &*server;
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  std::printf("gdlogd listening on http://%s:%d\n",
              http_options.host.c_str(), server->port());
  std::fflush(stdout);

  gdlog::Status status = server->Serve();
  g_server = nullptr;
  if (!status.ok()) {
    std::fprintf(stderr, "serve error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("gdlogd drained and stopped\n");
  return 0;
}
