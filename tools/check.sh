#!/usr/bin/env bash
# Tier-1 verification: configure, build everything, run all test suites.
# This is the ROADMAP.md tier-1 line; CI and local checks both run it.
# (ctest gets an explicit job count: bare `ctest -j` needs cmake >= 3.29.)
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -j "$(nproc)"
