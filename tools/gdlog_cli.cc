// gdlog command-line interface: run a GDatalog¬ program on a database and
// report outcomes, events, and marginal queries — exactly or by sampling.
//
//   gdlog_cli --program prog.gdl --db facts.gdl [options]
//
// Options:
//   --program FILE        program in gdlog surface syntax (required)
//   --db FILE             database of facts ("" = empty database)
//   --grounder MODE       auto | simple | perfect       (default auto)
//   --query ATOM          ground atom to report marginals for (repeatable)
//   --events              print the event table (stable-model sets ↦ mass)
//   --outcomes            print every possible outcome with its choices
//   --mc N                Monte-Carlo mode with N samples (default: exact)
//   --seed S              sampler / trigger seed          (default 2023)
//   --max-outcomes N      exact-mode outcome budget       (default 1<<20)
//   --max-depth N         chase depth budget              (default 4096)
//   --support-limit N     truncation of infinite supports (default 64)
//   --threads N           exact-mode chase workers (0 = one per hardware
//                         thread, 1 = serial; default 0). Results are
//                         identical for any N when no budget binds.
//   --extensions          also register the extension distributions
//                         (zipf, normalgrid)
//   --condition           condition marginals on consistency
//   --json                exact mode: emit machine-readable JSON (sections
//                         controlled by --outcomes / --events) and exit
//   --dot                 print the dependency graph in DOT and exit
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "gdatalog/engine.h"
#include "gdatalog/export.h"
#include "gdatalog/sampler.h"
#include "ground/dependency_graph.h"

namespace {

struct CliOptions {
  std::string program_path;
  std::string db_path;
  std::string grounder = "auto";
  std::vector<std::string> queries;
  bool print_events = false;
  bool print_outcomes = false;
  bool condition = false;
  bool dot = false;
  bool json = false;
  bool extensions = false;
  size_t mc_samples = 0;  // 0 = exact
  uint64_t seed = 2023;
  size_t max_outcomes = 1u << 20;
  size_t max_depth = 4096;
  size_t support_limit = 64;
  size_t threads = 0;  // 0 = hardware concurrency
};

[[noreturn]] void Usage(const char* argv0, const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: %s --program FILE [--db FILE] [--grounder MODE]\n"
               "          [--query ATOM]... [--events] [--outcomes]\n"
               "          [--mc N] [--seed S] [--max-outcomes N]\n"
               "          [--max-depth N] [--support-limit N] [--condition]\n"
               "          [--threads N] [--extensions] [--json] [--dot]\n",
               argv0);
  std::exit(2);
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

CliOptions ParseArgs(int argc, char** argv) {
  CliOptions opts;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) Usage(argv[0], "missing argument value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (!std::strcmp(arg, "--program")) {
      opts.program_path = need_value(i);
    } else if (!std::strcmp(arg, "--db")) {
      opts.db_path = need_value(i);
    } else if (!std::strcmp(arg, "--grounder")) {
      opts.grounder = need_value(i);
    } else if (!std::strcmp(arg, "--query")) {
      opts.queries.push_back(need_value(i));
    } else if (!std::strcmp(arg, "--events")) {
      opts.print_events = true;
    } else if (!std::strcmp(arg, "--outcomes")) {
      opts.print_outcomes = true;
    } else if (!std::strcmp(arg, "--condition")) {
      opts.condition = true;
    } else if (!std::strcmp(arg, "--dot")) {
      opts.dot = true;
    } else if (!std::strcmp(arg, "--json")) {
      opts.json = true;
    } else if (!std::strcmp(arg, "--mc")) {
      opts.mc_samples = std::strtoull(need_value(i), nullptr, 10);
    } else if (!std::strcmp(arg, "--seed")) {
      opts.seed = std::strtoull(need_value(i), nullptr, 10);
    } else if (!std::strcmp(arg, "--max-outcomes")) {
      opts.max_outcomes = std::strtoull(need_value(i), nullptr, 10);
    } else if (!std::strcmp(arg, "--max-depth")) {
      opts.max_depth = std::strtoull(need_value(i), nullptr, 10);
    } else if (!std::strcmp(arg, "--support-limit")) {
      opts.support_limit = std::strtoull(need_value(i), nullptr, 10);
    } else if (!std::strcmp(arg, "--threads")) {
      opts.threads = std::strtoull(need_value(i), nullptr, 10);
    } else if (!std::strcmp(arg, "--extensions")) {
      opts.extensions = true;
    } else if (!std::strcmp(arg, "--help") || !std::strcmp(arg, "-h")) {
      Usage(argv[0]);
    } else {
      Usage(argv[0], (std::string("unknown flag: ") + arg).c_str());
    }
  }
  if (opts.program_path.empty()) Usage(argv[0], "--program is required");
  return opts;
}

int RunExact(const gdlog::GDatalog& engine, const CliOptions& opts) {
  gdlog::ChaseOptions chase;
  chase.max_outcomes = opts.max_outcomes;
  chase.max_depth = opts.max_depth;
  chase.support_limit = opts.support_limit;
  chase.num_threads = opts.threads;
  auto space = engine.Infer(chase);
  if (!space.ok()) {
    std::fprintf(stderr, "inference error: %s\n",
                 space.status().ToString().c_str());
    return 1;
  }

  if (opts.json) {
    gdlog::JsonExportOptions json_options;
    json_options.include_outcomes = opts.print_outcomes;
    json_options.include_models = opts.print_outcomes;
    json_options.include_events = opts.print_events;
    std::printf("%s\n",
                gdlog::OutcomeSpaceToJson(*space, engine.translated(),
                                          engine.program().interner(),
                                          json_options)
                    .c_str());
    return 0;
  }

  std::printf("possible outcomes : %zu%s\n", space->outcomes.size(),
              space->complete ? "" : " (exploration truncated)");
  std::printf("finite mass       : %s\n",
              space->finite_mass.ToString().c_str());
  if (!space->complete) {
    std::printf("residual (Ω∞+unexplored): %s\n",
                space->residual_mass().ToString().c_str());
  }
  std::printf("P(consistent)     : %s (= %.6f)\n",
              space->ProbConsistent().ToString().c_str(),
              space->ProbConsistent().value());
  std::printf("P(no stable model): %s\n",
              space->ProbInconsistent().ToString().c_str());

  const gdlog::Interner* names = engine.program().interner();

  if (opts.print_events) {
    std::printf("\nevents (stable-model sets -> mass):\n");
    for (const auto& [models, mass] : space->Events()) {
      std::printf("  mass %-10s |sms| = %zu\n", mass.ToString().c_str(),
                  models.size());
    }
  }

  if (opts.print_outcomes) {
    std::printf("\noutcomes:\n");
    for (const gdlog::PossibleOutcome& o : space->outcomes) {
      std::printf("  Pr = %-10s |sms| = %zu, choices:\n",
                  o.prob.ToString().c_str(), o.models.size());
      for (const auto& [active, value] : o.choices.entries()) {
        std::printf("    %s -> %s\n", active.ToString(names).c_str(),
                    value.ToString(names).c_str());
      }
    }
  }

  for (const std::string& query : opts.queries) {
    auto atom = engine.ParseGroundAtom(query);
    if (!atom.ok()) {
      std::fprintf(stderr, "bad query '%s': %s\n", query.c_str(),
                   atom.status().ToString().c_str());
      return 1;
    }
    if (opts.condition) {
      auto bounds = space->MarginalGivenConsistent(*atom);
      if (!bounds) {
        std::printf("P(%s | consistent) undefined (P(consistent) = 0)\n",
                    query.c_str());
      } else {
        std::printf("P(%s | consistent) in [%s, %s]\n", query.c_str(),
                    bounds->lower.ToString().c_str(),
                    bounds->upper.ToString().c_str());
      }
    } else {
      gdlog::OutcomeSpace::Bounds bounds = space->Marginal(*atom);
      std::printf("P(%s) in [%s, %s]\n", query.c_str(),
                  bounds.lower.ToString().c_str(),
                  bounds.upper.ToString().c_str());
    }
  }
  return 0;
}

int RunMonteCarlo(const gdlog::GDatalog& engine, const CliOptions& opts) {
  gdlog::ChaseOptions chase;
  chase.max_depth = opts.max_depth;
  chase.support_limit = opts.support_limit;
  gdlog::MonteCarloEstimator estimator(&engine.chase(), chase);

  auto consistent =
      estimator.EstimateProbConsistent(opts.mc_samples, opts.seed);
  if (!consistent.ok()) {
    std::fprintf(stderr, "sampling error: %s\n",
                 consistent.status().ToString().c_str());
    return 1;
  }
  std::printf("samples            : %zu (+%zu truncated)\n",
              consistent->samples, consistent->truncated);
  std::printf("P(consistent)      : %.6f +- %.6f\n", consistent->mean,
              2 * consistent->std_error);

  for (const std::string& query : opts.queries) {
    auto atom = engine.ParseGroundAtom(query);
    if (!atom.ok()) {
      std::fprintf(stderr, "bad query '%s': %s\n", query.c_str(),
                   atom.status().ToString().c_str());
      return 1;
    }
    auto lower =
        estimator.EstimateMarginalLower(opts.mc_samples, opts.seed, *atom);
    if (!lower.ok()) {
      std::fprintf(stderr, "sampling error for '%s': %s\n", query.c_str(),
                   lower.status().ToString().c_str());
      return 1;
    }
    auto upper =
        estimator.EstimateMarginalUpper(opts.mc_samples, opts.seed, *atom);
    if (!upper.ok()) {
      std::fprintf(stderr, "sampling error for '%s': %s\n", query.c_str(),
                   upper.status().ToString().c_str());
      return 1;
    }
    std::printf("P(%s) in [%.6f, %.6f] (+- %.6f)\n", query.c_str(),
                lower->mean, upper->mean,
                2 * std::max(lower->std_error, upper->std_error));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts = ParseArgs(argc, argv);

  std::string program_text = ReadFile(opts.program_path);
  std::string db_text = opts.db_path.empty() ? "" : ReadFile(opts.db_path);

  gdlog::GDatalog::Options engine_options;
  if (opts.extensions) {
    auto registry = std::make_unique<gdlog::DistributionRegistry>(
        gdlog::DistributionRegistry::Builtins());
    auto st = gdlog::RegisterExtensionDistributions(registry.get());
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    engine_options.registry = std::move(registry);
  }
  if (opts.grounder == "simple") {
    engine_options.grounder = gdlog::GrounderKind::kSimple;
  } else if (opts.grounder == "perfect") {
    engine_options.grounder = gdlog::GrounderKind::kPerfect;
  } else if (opts.grounder != "auto") {
    Usage(argv[0], "grounder must be auto, simple or perfect");
  }

  auto engine = gdlog::GDatalog::Create(program_text, db_text,
                                        std::move(engine_options));
  if (!engine.ok()) {
    std::fprintf(stderr, "error: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  if (opts.dot) {
    gdlog::DependencyGraph dg(engine->program());
    std::fputs(dg.ToDot(engine->program().interner()).c_str(), stdout);
    return 0;
  }

  if (!opts.json) {
    std::printf("grounder          : %.*s (stratified: %s)\n",
                static_cast<int>(engine->grounder().name().size()),
                engine->grounder().name().data(),
                engine->stratified() ? "yes" : "no");
  }

  if (opts.mc_samples > 0) return RunMonteCarlo(*engine, opts);
  return RunExact(*engine, opts);
}
