// gdlog command-line interface: run a GDatalog¬ program on a database and
// report outcomes, events, and marginal queries — exactly or by sampling.
//
//   gdlog_cli --program prog.gdl --db facts.gdl [options]
//
// Options:
//   --program FILE        program in gdlog surface syntax (required)
//   --db FILE             database of facts ("" = empty database)
//   --db-delta FILE       fact delta applied on top of --db through the
//                         incremental engine path (GDatalog::
//                         WithDatabaseDelta): facts are appended and
//                         re-grounded in cost proportional to the delta,
//                         and the reported space is identical to running
//                         with the merged database. Lines starting with
//                         '-' request removal, which is rejected (the
//                         store is append-only). With --stats, prints the
//                         DeltaStats counters
//   --grounder MODE       auto | simple | perfect       (default auto)
//   --query ATOM          ground atom to report marginals for (repeatable)
//   --events              print the event table (stable-model sets ↦ mass)
//   --outcomes            print every possible outcome with its choices
//   --mc N                Monte-Carlo mode with N samples (default: exact)
//   --seed S              sampler / trigger seed          (default 2023)
//   --max-outcomes N      exact-mode outcome budget       (default 1<<20)
//   --max-depth N         chase depth budget              (default 4096)
//   --support-limit N     truncation of infinite supports (default 64)
//   --threads N           exact-mode chase workers per process (0 = one per
//                         hardware thread, 1 = serial; default 0). Results
//                         are identical for any N when no budget binds.
//   --shards N            exact mode: decompose the chase tree by
//                         choice-set prefix into N shards, explore them in
//                         N worker subprocesses and merge — the merged
//                         space (and its --json export) is byte-identical
//                         to the single-process run when no budget binds
//   --shard-index I       run only shard I (0-based) and print the partial
//                         outcome space as JSON — the worker mode spawned
//                         by --shards, also usable manually to spread
//                         shards across machines (merge with --merge)
//   --shard-prefix-depth K  choice-prefix depth of the shard plan
//                         (default 0 = auto-pick from the frontier width)
//   --merge FILE          merge partial-space JSON files (one --merge per
//                         file, one shard each) instead of exploring;
//                         requires the same --program/--db the partials
//                         were produced from
//   --extensions          also register the extension distributions
//                         (zipf, normalgrid)
//   --normalgrid-max-cells K  half-width cap on normalgrid's enumeration
//                         grid, in cells (default 4096, range [1, 2^20];
//                         requires --extensions)
//   --condition           condition marginals on consistency
//   --opt / --no-opt      enable / disable the Σ_Π optimization pipeline
//                         (specialization, dead-rule elimination, subjoin
//                         sharing; default on, GDLOG_NO_OPT=1 also
//                         disables). The outcome space — and the --json
//                         bytes — are identical either way; only grounding
//                         work changes. With --query in plain exact mode
//                         (no --json/--outcomes/--events/--mc/--shards),
//                         the magic-sets demand pass additionally restricts
//                         exploration to the queried predicates' dependency
//                         cone: marginals and P(consistent) are exact,
//                         the outcome count may coarsen
//   --profile             exact mode: collect the per-rule chase profile
//                         (calls, bindings, derivations, stratum, wall
//                         time per Σ_Π rule; per-depth node/ground/solve
//                         accounting) and print it after the report
//                         (stderr with --json, so the JSON stream — which
//                         stays byte-identical to a run without
//                         --profile — is unaffected). Counts are exactly
//                         reproducible for any --threads; times are not
//   --stats               print optimization-pass and grounding statistics
//                         for G(∅) — per-pass rewrites and wall time,
//                         ground rules, complete bindings, index /
//                         composite / scan candidate fetches, plan cache
//                         behavior — after the report (stderr when combined
//                         with --json, so the JSON stream stays parseable)
//   --dump-ir             print the Σ_Π rule IR before and after each
//                         optimization pass, then exit
//   --json                exact mode: emit machine-readable JSON (sections
//                         controlled by --outcomes / --events) and exit
//   --dot                 print the dependency graph in DOT and exit
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gdatalog/engine.h"
#include "gdatalog/export.h"
#include "gdatalog/sampler.h"
#include "gdatalog/shard.h"
#include "ground/dependency_graph.h"
#include "obs/profile.h"
#include "util/subprocess.h"

namespace {

constexpr size_t kNoShardIndex = static_cast<size_t>(-1);

struct CliOptions {
  std::string program_path;
  std::string db_path;
  std::string db_delta_path;
  std::string grounder = "auto";
  std::vector<std::string> queries;
  bool print_events = false;
  bool print_outcomes = false;
  bool condition = false;
  bool dot = false;
  bool json = false;
  bool stats = false;
  bool profile = false;
  bool extensions = false;
  bool optimize = true;
  bool dump_ir = false;
  size_t mc_samples = 0;  // 0 = exact
  uint64_t seed = 2023;
  size_t max_outcomes = 1u << 20;
  size_t max_depth = 4096;
  size_t support_limit = 64;
  size_t threads = 0;  // 0 = hardware concurrency
  size_t shards = 0;   // 0 = no sharding
  size_t shard_index = kNoShardIndex;  // set = worker mode
  size_t shard_prefix_depth = 0;       // 0 = auto
  std::vector<std::string> merge_files;
  long long normalgrid_max_cells = -1;  // -1 = default
  std::string argv0;
};

[[noreturn]] void Usage(const char* argv0, const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: %s --program FILE [--db FILE] [--db-delta FILE]\n"
               "          [--grounder MODE]\n"
               "          [--query ATOM]... [--events] [--outcomes]\n"
               "          [--mc N] [--seed S] [--max-outcomes N]\n"
               "          [--max-depth N] [--support-limit N] [--condition]\n"
               "          [--threads N] [--shards N [--shard-index I]]\n"
               "          [--shard-prefix-depth K] [--merge FILE]...\n"
               "          [--extensions] [--normalgrid-max-cells K]\n"
               "          [--opt | --no-opt] [--dump-ir]\n"
               "          [--profile] [--stats] [--json] [--dot]\n",
               argv0);
  std::exit(2);
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

CliOptions ParseArgs(int argc, char** argv) {
  CliOptions opts;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) Usage(argv[0], "missing argument value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (!std::strcmp(arg, "--program")) {
      opts.program_path = need_value(i);
    } else if (!std::strcmp(arg, "--db")) {
      opts.db_path = need_value(i);
    } else if (!std::strcmp(arg, "--db-delta")) {
      opts.db_delta_path = need_value(i);
    } else if (!std::strcmp(arg, "--grounder")) {
      opts.grounder = need_value(i);
    } else if (!std::strcmp(arg, "--query")) {
      opts.queries.push_back(need_value(i));
    } else if (!std::strcmp(arg, "--events")) {
      opts.print_events = true;
    } else if (!std::strcmp(arg, "--outcomes")) {
      opts.print_outcomes = true;
    } else if (!std::strcmp(arg, "--condition")) {
      opts.condition = true;
    } else if (!std::strcmp(arg, "--dot")) {
      opts.dot = true;
    } else if (!std::strcmp(arg, "--json")) {
      opts.json = true;
    } else if (!std::strcmp(arg, "--stats")) {
      opts.stats = true;
    } else if (!std::strcmp(arg, "--profile")) {
      opts.profile = true;
    } else if (!std::strcmp(arg, "--mc")) {
      opts.mc_samples = std::strtoull(need_value(i), nullptr, 10);
    } else if (!std::strcmp(arg, "--seed")) {
      opts.seed = std::strtoull(need_value(i), nullptr, 10);
    } else if (!std::strcmp(arg, "--max-outcomes")) {
      opts.max_outcomes = std::strtoull(need_value(i), nullptr, 10);
    } else if (!std::strcmp(arg, "--max-depth")) {
      opts.max_depth = std::strtoull(need_value(i), nullptr, 10);
    } else if (!std::strcmp(arg, "--support-limit")) {
      opts.support_limit = std::strtoull(need_value(i), nullptr, 10);
    } else if (!std::strcmp(arg, "--threads")) {
      opts.threads = std::strtoull(need_value(i), nullptr, 10);
    } else if (!std::strcmp(arg, "--shards")) {
      opts.shards = std::strtoull(need_value(i), nullptr, 10);
    } else if (!std::strcmp(arg, "--shard-index")) {
      opts.shard_index = std::strtoull(need_value(i), nullptr, 10);
    } else if (!std::strcmp(arg, "--shard-prefix-depth")) {
      opts.shard_prefix_depth = std::strtoull(need_value(i), nullptr, 10);
    } else if (!std::strcmp(arg, "--merge")) {
      opts.merge_files.push_back(need_value(i));
    } else if (!std::strcmp(arg, "--extensions")) {
      opts.extensions = true;
    } else if (!std::strcmp(arg, "--opt")) {
      opts.optimize = true;
    } else if (!std::strcmp(arg, "--no-opt")) {
      opts.optimize = false;
    } else if (!std::strcmp(arg, "--dump-ir")) {
      opts.dump_ir = true;
    } else if (!std::strcmp(arg, "--normalgrid-max-cells")) {
      opts.normalgrid_max_cells = std::strtoll(need_value(i), nullptr, 10);
    } else if (!std::strcmp(arg, "--help") || !std::strcmp(arg, "-h")) {
      Usage(argv[0]);
    } else {
      Usage(argv[0], (std::string("unknown flag: ") + arg).c_str());
    }
  }
  if (opts.program_path.empty()) Usage(argv[0], "--program is required");
  if (opts.shard_index != kNoShardIndex) {
    if (opts.shards < 1) Usage(argv[0], "--shard-index requires --shards");
    if (opts.shard_index >= opts.shards) {
      Usage(argv[0], "--shard-index must be < --shards");
    }
  }
  if (!opts.merge_files.empty() && opts.shards > 0) {
    Usage(argv[0], "--merge and --shards are mutually exclusive");
  }
  if (opts.mc_samples > 0 && (opts.shards > 0 || !opts.merge_files.empty())) {
    Usage(argv[0], "sharding applies to exact mode only (drop --mc)");
  }
  if (opts.normalgrid_max_cells >= 0 && !opts.extensions) {
    Usage(argv[0], "--normalgrid-max-cells requires --extensions");
  }
  return opts;
}

gdlog::ChaseOptions MakeChaseOptions(const CliOptions& opts) {
  gdlog::ChaseOptions chase;
  chase.max_outcomes = opts.max_outcomes;
  chase.max_depth = opts.max_depth;
  chase.support_limit = opts.support_limit;
  chase.num_threads = opts.threads;
  chase.profile = opts.profile;
  return chase;
}

int ReportSpace(const gdlog::GDatalog& engine, const gdlog::OutcomeSpace& space,
                const CliOptions& opts);

// The predicate name of a query atom in surface syntax ("infected(2, 1)"
// → "infected"); empty when the text has no leading name.
std::string QueryPredicate(const std::string& text) {
  size_t begin = text.find_first_not_of(" \t");
  if (begin == std::string::npos) return "";
  size_t end = begin;
  while (end < text.size() && text[end] != '(' && text[end] != ' ' &&
         text[end] != '\t') {
    ++end;
  }
  return text.substr(begin, end - begin);
}

// --stats: what the pass pipeline did at engine construction.
void PrintOptStats(const gdlog::GDatalog& engine, const CliOptions& opts) {
  const gdlog::OptStats& os = engine.opt_stats();
  std::FILE* dst = opts.json ? stderr : stdout;
  if (!os.enabled) {
    std::fprintf(dst, "\noptimization: off\n");
    return;
  }
  std::fprintf(dst, "\noptimization (%llu -> %llu rules%s, %.3f ms):\n",
               static_cast<unsigned long long>(os.rules_in),
               static_cast<unsigned long long>(os.rules_out),
               os.demand_applied ? ", demand applied" : "",
               static_cast<double>(os.total_wall_ns) / 1e6);
  for (const gdlog::PassStat& pass : os.passes) {
    std::fprintf(dst, "  pass %-14s: %llu rewrites, %.3f ms\n",
                 pass.name.c_str(),
                 static_cast<unsigned long long>(pass.rewrites),
                 static_cast<double>(pass.wall_ns) / 1e6);
  }
  std::fprintf(dst,
               "  rules eliminated       : %llu\n"
               "  rules specialized      : %llu\n"
               "  predicates specialized : %llu\n"
               "  subjoins shared        : %llu\n"
               "  demand-eliminated rules: %llu\n",
               static_cast<unsigned long long>(os.counters.rules_eliminated),
               static_cast<unsigned long long>(os.counters.rules_specialized),
               static_cast<unsigned long long>(
                   os.counters.predicates_specialized),
               static_cast<unsigned long long>(os.counters.subjoins_shared),
               static_cast<unsigned long long>(
                   os.counters.demand_eliminated_rules));
}

// --stats: grounds once under the empty choice set with counters enabled
// and prints the compiled-join statistics — the per-Ground shape of the
// work every chase node repeats.
void PrintGroundStats(const gdlog::GDatalog& engine, const CliOptions& opts) {
  gdlog::GroundRuleSet out;
  gdlog::MatchStats stats;
  auto st = engine.grounder().Ground(gdlog::ChoiceSet(), &out, &stats);
  std::FILE* dst = opts.json ? stderr : stdout;
  if (!st.ok()) {
    std::fprintf(dst, "grounding stats unavailable: %s\n",
                 st.ToString().c_str());
    return;
  }
  std::fprintf(dst,
               "\ngrounding stats (G(empty)):\n"
               "  ground rules         : %zu\n"
               "  bindings             : %llu\n"
               "  index_hits           : %llu\n"
               "  composite_index_hits : %llu\n"
               "  full_scans           : %llu\n"
               "  plans_compiled       : %llu\n"
               "  plan_cache_hits      : %llu\n",
               out.size(),
               static_cast<unsigned long long>(stats.bindings),
               static_cast<unsigned long long>(stats.index_hits),
               static_cast<unsigned long long>(stats.composite_index_hits),
               static_cast<unsigned long long>(stats.full_scans),
               static_cast<unsigned long long>(stats.plans_compiled),
               static_cast<unsigned long long>(stats.plan_cache_hits));
}

// --stats with --db-delta: what the incremental update path did.
void PrintDeltaStats(const gdlog::GDatalog& engine, const CliOptions& opts) {
  const gdlog::DeltaStats& ds = engine.delta_stats();
  if (!ds.applied) return;
  std::FILE* dst = opts.json ? stderr : stdout;
  std::fprintf(dst,
               "\ndelta update:\n"
               "  rows appended      : %zu (+%zu duplicates skipped)\n"
               "  predicates touched : %zu\n"
               "  rules refired      : %llu\n"
               "  summary changed    : %s\n"
               "  pipeline reused    : %s\n"
               "  root resumed       : %s\n"
               "  touches rule bodies: %s\n",
               ds.rows_appended, ds.duplicates_skipped, ds.predicates_touched,
               static_cast<unsigned long long>(ds.rules_refired),
               ds.summary_changed ? "yes" : "no",
               ds.pipeline_reused ? "yes" : "no",
               ds.root_resumed ? "yes" : "no",
               ds.touches_rule_bodies ? "yes" : "no");
}

int RunExact(const gdlog::GDatalog& engine, const CliOptions& opts) {
  gdlog::ChaseOptions chase = MakeChaseOptions(opts);
  gdlog::ChaseProfile profile;
  auto space = opts.profile ? engine.Infer(chase, &profile)
                            : engine.Infer(chase);
  if (!space.ok()) {
    std::fprintf(stderr, "inference error: %s\n",
                 space.status().ToString().c_str());
    return 1;
  }
  int code = ReportSpace(engine, *space, opts);
  if (code == 0 && opts.profile) {
    // To stderr under --json so the JSON document on stdout stays
    // byte-identical to a run without --profile.
    std::FILE* dst = opts.json ? stderr : stdout;
    std::fputs(
        gdlog::FormatChaseProfileTable(profile, engine.SigmaRuleLabels())
            .c_str(),
        dst);
  }
  if (code == 0 && opts.stats) {
    PrintOptStats(engine, opts);
    PrintDeltaStats(engine, opts);
    PrintGroundStats(engine, opts);
  }
  return code;
}

int ReportSpace(const gdlog::GDatalog& engine, const gdlog::OutcomeSpace& space,
                const CliOptions& opts) {
  if (opts.json) {
    gdlog::JsonExportOptions json_options;
    json_options.include_outcomes = opts.print_outcomes;
    json_options.include_models = opts.print_outcomes;
    json_options.include_events = opts.print_events;
    std::printf("%s\n",
                gdlog::OutcomeSpaceToJson(space, engine.translated(),
                                          engine.program().interner(),
                                          json_options)
                    .c_str());
    return 0;
  }

  std::printf("possible outcomes : %zu%s\n", space.outcomes.size(),
              space.complete ? "" : " (exploration truncated)");
  std::printf("finite mass       : %s\n",
              space.finite_mass.ToString().c_str());
  if (!space.complete) {
    std::printf("residual (Ω∞+unexplored): %s\n",
                space.residual_mass().ToString().c_str());
  }
  std::printf("P(consistent)     : %s (= %.6f)\n",
              space.ProbConsistent().ToString().c_str(),
              space.ProbConsistent().value());
  std::printf("P(no stable model): %s\n",
              space.ProbInconsistent().ToString().c_str());

  const gdlog::Interner* names = engine.program().interner();

  if (opts.print_events) {
    std::printf("\nevents (stable-model sets -> mass):\n");
    for (const auto& [models, mass] : space.Events()) {
      std::printf("  mass %-10s |sms| = %zu\n", mass.ToString().c_str(),
                  models.size());
    }
  }

  if (opts.print_outcomes) {
    std::printf("\noutcomes:\n");
    for (const gdlog::PossibleOutcome& o : space.outcomes) {
      std::printf("  Pr = %-10s |sms| = %zu, choices:\n",
                  o.prob.ToString().c_str(), o.models.size());
      for (const auto& [active, value] : o.choices.entries()) {
        std::printf("    %s -> %s\n", active.ToString(names).c_str(),
                    value.ToString(names).c_str());
      }
    }
  }

  for (const std::string& query : opts.queries) {
    auto atom = engine.ParseGroundAtom(query);
    if (!atom.ok()) {
      std::fprintf(stderr, "bad query '%s': %s\n", query.c_str(),
                   atom.status().ToString().c_str());
      return 1;
    }
    if (opts.condition) {
      auto bounds = space.MarginalGivenConsistent(*atom);
      if (!bounds) {
        std::printf("P(%s | consistent) undefined (P(consistent) = 0)\n",
                    query.c_str());
      } else {
        std::printf("P(%s | consistent) in [%s, %s]\n", query.c_str(),
                    bounds->lower.ToString().c_str(),
                    bounds->upper.ToString().c_str());
      }
    } else {
      gdlog::OutcomeSpace::Bounds bounds = space.Marginal(*atom);
      std::printf("P(%s) in [%s, %s]\n", query.c_str(),
                  bounds.lower.ToString().c_str(),
                  bounds.upper.ToString().c_str());
    }
  }
  return 0;
}

// Worker mode (--shards N --shard-index I): recompute the deterministic
// shard plan, explore shard I, and print the partial outcome space as a
// single JSON line on stdout — the only stdout output, so the driver (or an
// operator piping to a file for a cross-machine merge) captures it cleanly.
int RunShardWorker(const gdlog::GDatalog& engine, const CliOptions& opts) {
  gdlog::ChaseOptions chase = MakeChaseOptions(opts);
  auto plan = engine.chase().PlanShards(chase, opts.shards,
                                        opts.shard_prefix_depth);
  if (!plan.ok()) {
    std::fprintf(stderr, "shard planning error: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  auto partial = engine.chase().ExploreShard(*plan, opts.shard_index, chase);
  if (!partial.ok()) {
    std::fprintf(stderr, "shard %zu error: %s\n", opts.shard_index,
                 partial.status().ToString().c_str());
    return 1;
  }
  gdlog::ShardPartialMeta meta =
      gdlog::MakeShardPartialMeta(*plan, opts.shard_index, chase);
  std::printf("%s\n",
              gdlog::PartialSpaceToJson(*partial, meta,
                                        engine.program().interner())
                  .c_str());
  return 0;
}

/// Validates the partials — mutually consistent plan and budgets, budgets
/// matching this invocation's flags, every shard 0..N-1 exactly once —
/// then merges and reports. Returns the process exit code.
int MergeAndReport(const gdlog::GDatalog& engine, const CliOptions& opts,
                   std::vector<gdlog::PartialSpace> partials,
                   const std::vector<gdlog::ShardPartialMeta>& metas) {
  // Partials produced under different budgets describe different outcome
  // spaces; so do partials produced under budgets other than the ones this
  // merge invocation will report against.
  gdlog::ShardPartialMeta expected = metas.front();
  expected.max_outcomes = opts.max_outcomes;
  expected.max_depth = opts.max_depth;
  expected.support_limit = opts.support_limit;
  expected.trigger_shuffle_seed = 0;  // not exposed by the CLI
  expected.min_path_prob = 0.0;
  std::vector<bool> seen(expected.num_shards, false);
  for (const gdlog::ShardPartialMeta& meta : metas) {
    if (!meta.SamePlanAndBudgets(expected)) {
      std::fprintf(stderr,
                   "error: partial for shard %zu was produced under a "
                   "different shard plan or different exploration budgets "
                   "than this invocation\n",
                   meta.shard_index);
      return 1;
    }
    if (seen[meta.shard_index]) {
      std::fprintf(stderr, "error: duplicate partial for shard %zu\n",
                   meta.shard_index);
      return 1;
    }
    seen[meta.shard_index] = true;
  }
  for (size_t i = 0; i < seen.size(); ++i) {
    if (!seen[i]) {
      std::fprintf(stderr, "error: missing partial for shard %zu of %zu\n",
                   i, seen.size());
      return 1;
    }
  }
  gdlog::OutcomeSpace space =
      gdlog::MergePartialSpaces(std::move(partials), opts.max_outcomes);
  return ReportSpace(engine, space, opts);
}

// Driver mode (--shards N without --shard-index): spawn one worker
// subprocess per shard — this binary re-invoked with --shard-index —
// collect the partial spaces over pipes, merge, and report exactly like a
// single-process run.
int RunShardDriver(const gdlog::GDatalog& engine, const CliOptions& opts) {
  std::string exe = gdlog::Subprocess::SelfExecutable(opts.argv0);
  // With the default --threads 0, every worker would start one chase
  // thread per hardware thread — N shards × all cores oversubscribes the
  // machine N-fold. Split the cores across the workers instead (an
  // explicit --threads value is forwarded as given: the operator asked
  // for it, e.g. when the workers land on different machines). Thread
  // count never changes results, only speed.
  size_t worker_threads = opts.threads;
  if (worker_threads == 0) {
    size_t hw = std::thread::hardware_concurrency();
    if (hw < 1) hw = 1;
    worker_threads = std::max<size_t>(1, hw / opts.shards);
  }
  std::vector<gdlog::Subprocess> workers;
  for (size_t shard = 0; shard < opts.shards; ++shard) {
    std::vector<std::string> argv = {
        exe,
        "--program", opts.program_path,
        "--grounder", opts.grounder,
        "--max-outcomes", std::to_string(opts.max_outcomes),
        "--max-depth", std::to_string(opts.max_depth),
        "--support-limit", std::to_string(opts.support_limit),
        "--threads", std::to_string(worker_threads),
        "--shards", std::to_string(opts.shards),
        "--shard-prefix-depth", std::to_string(opts.shard_prefix_depth),
        "--shard-index", std::to_string(shard),
    };
    if (!opts.db_path.empty()) {
      argv.push_back("--db");
      argv.push_back(opts.db_path);
    }
    if (!opts.db_delta_path.empty()) {
      argv.push_back("--db-delta");
      argv.push_back(opts.db_delta_path);
    }
    if (opts.extensions) argv.push_back("--extensions");
    if (!opts.optimize) argv.push_back("--no-opt");
    if (opts.normalgrid_max_cells >= 0) {
      argv.push_back("--normalgrid-max-cells");
      argv.push_back(std::to_string(opts.normalgrid_max_cells));
    }
    auto worker = gdlog::Subprocess::Spawn(argv);
    if (!worker.ok()) {
      std::fprintf(stderr, "error spawning shard %zu: %s\n", shard,
                   worker.status().ToString().c_str());
      return 1;
    }
    workers.push_back(std::move(*worker));
  }

  std::vector<gdlog::PartialSpace> partials;
  std::vector<gdlog::ShardPartialMeta> metas;
  for (size_t shard = 0; shard < workers.size(); ++shard) {
    std::string output;
    auto exit_code = workers[shard].Wait(&output);
    if (!exit_code.ok()) {
      std::fprintf(stderr, "error waiting for shard %zu: %s\n", shard,
                   exit_code.status().ToString().c_str());
      return 1;
    }
    if (*exit_code != 0) {
      std::fprintf(stderr, "shard %zu worker exited with code %d\n", shard,
                   *exit_code);
      return 1;
    }
    gdlog::ShardPartialMeta meta;
    auto partial = gdlog::PartialSpaceFromJson(
        output, *engine.program().interner(), &meta);
    if (!partial.ok()) {
      std::fprintf(stderr, "bad partial from shard %zu: %s\n", shard,
                   partial.status().ToString().c_str());
      return 1;
    }
    partials.push_back(std::move(*partial));
    metas.push_back(meta);
  }
  return MergeAndReport(engine, opts, std::move(partials), metas);
}

// Merge mode (--merge FILE...): recombine partials written by workers run
// elsewhere (other machines, earlier invocations) against the same program.
int RunMerge(const gdlog::GDatalog& engine, const CliOptions& opts) {
  std::vector<gdlog::PartialSpace> partials;
  std::vector<gdlog::ShardPartialMeta> metas;
  for (const std::string& path : opts.merge_files) {
    std::string text = ReadFile(path);
    gdlog::ShardPartialMeta meta;
    auto partial = gdlog::PartialSpaceFromJson(
        text, *engine.program().interner(), &meta);
    if (!partial.ok()) {
      std::fprintf(stderr, "bad partial '%s': %s\n", path.c_str(),
                   partial.status().ToString().c_str());
      return 1;
    }
    partials.push_back(std::move(*partial));
    metas.push_back(meta);
  }
  return MergeAndReport(engine, opts, std::move(partials), metas);
}

int RunMonteCarlo(const gdlog::GDatalog& engine, const CliOptions& opts) {
  gdlog::ChaseOptions chase;
  chase.max_depth = opts.max_depth;
  chase.support_limit = opts.support_limit;
  gdlog::MonteCarloEstimator estimator(&engine.chase(), chase);

  auto consistent =
      estimator.EstimateProbConsistent(opts.mc_samples, opts.seed);
  if (!consistent.ok()) {
    std::fprintf(stderr, "sampling error: %s\n",
                 consistent.status().ToString().c_str());
    return 1;
  }
  std::printf("samples            : %zu (+%zu truncated)\n",
              consistent->samples, consistent->truncated);
  std::printf("P(consistent)      : %.6f +- %.6f\n", consistent->mean,
              2 * consistent->std_error);

  for (const std::string& query : opts.queries) {
    auto atom = engine.ParseGroundAtom(query);
    if (!atom.ok()) {
      std::fprintf(stderr, "bad query '%s': %s\n", query.c_str(),
                   atom.status().ToString().c_str());
      return 1;
    }
    auto lower =
        estimator.EstimateMarginalLower(opts.mc_samples, opts.seed, *atom);
    if (!lower.ok()) {
      std::fprintf(stderr, "sampling error for '%s': %s\n", query.c_str(),
                   lower.status().ToString().c_str());
      return 1;
    }
    auto upper =
        estimator.EstimateMarginalUpper(opts.mc_samples, opts.seed, *atom);
    if (!upper.ok()) {
      std::fprintf(stderr, "sampling error for '%s': %s\n", query.c_str(),
                   upper.status().ToString().c_str());
      return 1;
    }
    std::printf("P(%s) in [%.6f, %.6f] (+- %.6f)\n", query.c_str(),
                lower->mean, upper->mean,
                2 * std::max(lower->std_error, upper->std_error));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts = ParseArgs(argc, argv);
  opts.argv0 = argv[0];

  std::string program_text = ReadFile(opts.program_path);
  std::string db_text = opts.db_path.empty() ? "" : ReadFile(opts.db_path);

  gdlog::GDatalog::Options engine_options;
  if (opts.extensions) {
    auto registry = std::make_unique<gdlog::DistributionRegistry>(
        gdlog::DistributionRegistry::Builtins());
    gdlog::ExtensionOptions extension_options;
    if (opts.normalgrid_max_cells >= 0) {
      extension_options.normalgrid_max_half_cells = opts.normalgrid_max_cells;
    }
    auto st = gdlog::RegisterExtensionDistributions(registry.get(),
                                                    extension_options);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    engine_options.registry = std::move(registry);
  }
  if (opts.grounder == "simple") {
    engine_options.grounder = gdlog::GrounderKind::kSimple;
  } else if (opts.grounder == "perfect") {
    engine_options.grounder = gdlog::GrounderKind::kPerfect;
  } else if (opts.grounder != "auto") {
    Usage(argv[0], "grounder must be auto, simple or perfect");
  }
  engine_options.optimize = opts.optimize;
  engine_options.record_ir_dumps = opts.dump_ir;
  // Demand transformation: only on the plain exact --query path, where the
  // observables (marginals of the queried atoms, P(consistent)) are
  // provably preserved. Every mode that exposes the raw outcome space
  // (--json, --outcomes, --events, sharding/merge, sampling) keeps the
  // full program so its bytes match a --no-opt run.
  if (!opts.queries.empty() && !opts.json && !opts.print_events &&
      !opts.print_outcomes && opts.mc_samples == 0 && opts.shards == 0 &&
      opts.shard_index == kNoShardIndex && opts.merge_files.empty() &&
      opts.optimize) {
    for (const std::string& query : opts.queries) {
      std::string name = QueryPredicate(query);
      if (!name.empty()) engine_options.demand_goals.push_back(name);
    }
  }

  auto engine = gdlog::GDatalog::Create(program_text, db_text,
                                        std::move(engine_options));
  if (!engine.ok()) {
    std::fprintf(stderr, "error: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  if (!opts.db_delta_path.empty()) {
    // Exercise the incremental path: append the delta to the already-built
    // engine instead of parsing a merged database — same reported space,
    // delta-proportional update cost.
    std::string delta_text = ReadFile(opts.db_delta_path);
    auto updated = gdlog::GDatalog::WithDatabaseDelta(*engine, delta_text);
    if (!updated.ok()) {
      std::fprintf(stderr, "error applying --db-delta: %s\n",
                   updated.status().ToString().c_str());
      return 1;
    }
    engine = std::move(updated);
  }

  if (opts.dot) {
    gdlog::DependencyGraph dg(engine->program());
    std::fputs(dg.ToDot(engine->program().interner()).c_str(), stdout);
    return 0;
  }

  if (opts.dump_ir) {
    if (!engine->opt_stats().enabled) {
      std::printf("optimization: off\n");
      return 0;
    }
    for (const auto& [label, text] : engine->opt_stats().dumps) {
      std::printf("== %s ==\n%s", label.c_str(), text.c_str());
    }
    return 0;
  }

  // Worker mode prints nothing but the partial-space JSON.
  if (opts.shard_index != kNoShardIndex) return RunShardWorker(*engine, opts);

  if (!opts.json) {
    std::printf("grounder          : %.*s (stratified: %s)\n",
                static_cast<int>(engine->grounder().name().size()),
                engine->grounder().name().data(),
                engine->stratified() ? "yes" : "no");
  }

  if (opts.mc_samples > 0) return RunMonteCarlo(*engine, opts);
  if (!opts.merge_files.empty()) return RunMerge(*engine, opts);
  if (opts.shards > 0) return RunShardDriver(*engine, opts);
  return RunExact(*engine, opts);
}
