// E12 — serving-layer cache: cold chase vs. fingerprint hit on the E1
// clique-4 outcome space (2^12 leaves). The cold row is what every request
// costs without gdlogd's InferenceCache; the hit row is what a repeated
// identical query costs with it — the gap is the whole point of the
// serving subsystem. The end-to-end row adds the service layer's JSON
// work on top of a hit (what a warmed /query actually pays in-process).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "server/cache.h"
#include "server/service.h"
#include "util/json.h"

namespace {

using namespace gdlog_bench;

gdlog::ChaseOptions ServingChase() {
  gdlog::ChaseOptions options;
  options.num_threads = 1;  // gdlogd parallelizes across requests
  return options;
}

void VerificationTable() {
  std::printf("=== E12: server cache (clique n=4, rate 0.1) ===\n");
  auto engine = MustCreate(NetworkProgram(0.1), Clique(4));
  gdlog::ChaseOptions chase = ServingChase();
  gdlog::InferenceCache cache(256ull * 1024 * 1024);
  std::string key = gdlog::InferenceCache::Fingerprint("p1", 0, chase);
  auto compute = [&]() { return engine.Infer(chase); };
  auto cold = cache.LookupOrCompute(key, compute);
  auto warm = cache.LookupOrCompute(key, compute);
  auto stats = cache.stats();
  std::printf("%-28s %s\n", "outcomes",
              cold.ok() ? std::to_string((*cold)->outcomes.size()).c_str()
                        : "ERROR");
  std::printf("%-28s %llu/%llu (expected 1/1)\n", "misses/hits",
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.hits));
  std::printf("%-28s %s\n", "same shared space",
              cold.ok() && warm.ok() && *cold == *warm ? "yes" : "NO");
  std::printf("%-28s %zu\n", "approx bytes cached", stats.bytes);
  std::printf("\n");
}

/// The price of ignoring the cache: every iteration chases from scratch
/// (Clear() first, so LookupOrCompute always computes).
void BM_ServerCache_ColdChase(benchmark::State& state) {
  auto engine = MustCreate(NetworkProgram(0.1), Clique(4));
  gdlog::ChaseOptions chase = ServingChase();
  gdlog::InferenceCache cache(256ull * 1024 * 1024);
  std::string key = gdlog::InferenceCache::Fingerprint("p1", 0, chase);
  size_t outcomes = 0;
  for (auto _ : state) {
    cache.Clear();
    auto space = cache.LookupOrCompute(
        key, [&]() { return engine.Infer(chase); });
    if (!space.ok()) std::abort();
    outcomes = (*space)->outcomes.size();
    benchmark::DoNotOptimize(space);
  }
  state.counters["outcomes"] = static_cast<double>(outcomes);
}
BENCHMARK(BM_ServerCache_ColdChase)->Unit(benchmark::kMillisecond);

/// A repeated identical query: one fingerprint lookup under the cache
/// mutex, no chase.
void BM_ServerCache_Hit(benchmark::State& state) {
  auto engine = MustCreate(NetworkProgram(0.1), Clique(4));
  gdlog::ChaseOptions chase = ServingChase();
  gdlog::InferenceCache cache(256ull * 1024 * 1024);
  std::string key = gdlog::InferenceCache::Fingerprint("p1", 0, chase);
  auto warm = cache.LookupOrCompute(
      key, [&]() { return engine.Infer(chase); });
  if (!warm.ok()) std::abort();
  for (auto _ : state) {
    auto space = cache.LookupOrCompute(key, [&]() -> gdlog::Result<gdlog::OutcomeSpace> {
      std::abort();  // a warm cache must never recompute
    });
    benchmark::DoNotOptimize(space);
  }
  state.counters["outcomes"] =
      static_cast<double>((*warm)->outcomes.size());
}
BENCHMARK(BM_ServerCache_Hit)->Unit(benchmark::kMicrosecond);

/// A warmed /query through the full service layer — routing, body parse,
/// cache hit, summary-JSON render (no outcomes section) — i.e. the
/// in-process cost of what gdlogd serves once the space is cached.
void BM_ServerQuery_WarmEndToEnd(benchmark::State& state) {
  gdlog::InferenceService::Options options;
  options.default_chase = ServingChase();
  gdlog::InferenceService service(options);
  gdlog::JsonWriter reg;
  reg.BeginObject()
      .KV("program", NetworkProgram(0.1))
      .KV("db", Clique(4))
      .EndObject();
  gdlog::HttpRequest register_request;
  register_request.method = "POST";
  register_request.target = "/programs";
  register_request.body = reg.str();
  gdlog::HttpResponse registered = service.Handle(register_request);
  if (registered.status != 201) std::abort();
  auto doc = gdlog::JsonValue::Parse(registered.body);
  if (!doc.ok() || doc->Find("id") == nullptr) std::abort();
  gdlog::HttpRequest query;
  query.method = "POST";
  query.target = "/query";
  query.body = "{\"program_id\":\"" + doc->Find("id")->string_value() +
               "\"}";
  gdlog::HttpResponse warmup = service.Handle(query);
  if (warmup.status != 200) std::abort();
  for (auto _ : state) {
    gdlog::HttpResponse response = service.Handle(query);
    if (response.status != 200) std::abort();
    benchmark::DoNotOptimize(response.body);
  }
  state.counters["body_bytes"] =
      static_cast<double>(warmup.body.size());
}
BENCHMARK(BM_ServerQuery_WarmEndToEnd)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  VerificationTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
