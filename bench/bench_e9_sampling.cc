// E9 — Monte-Carlo convergence: the sampler's estimate of P(dominated)
// converges to the exact 19/100 at the 1/√n rate, and scales to networks
// far beyond exact enumeration. Reports estimate ± stderr per sample count
// and times samples/second.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench/bench_common.h"
#include "gdatalog/sampler.h"

namespace {

using namespace gdlog_bench;

void VerificationTable() {
  std::printf("=== E9: Monte-Carlo convergence (exact P = 0.19) ===\n");
  auto engine = MustCreate(kNetworkProgram, Clique(3));
  gdlog::MonteCarloEstimator estimator(&engine.chase(), gdlog::ChaseOptions{});
  std::printf("%-10s %-12s %-12s %-10s\n", "samples", "estimate", "stderr",
              "|err|/se");
  for (size_t n : {100u, 1000u, 10000u}) {
    auto est = estimator.EstimateProbConsistent(n, /*seed=*/2023);
    if (!est.ok()) continue;
    double err = std::fabs(est->mean - 0.19);
    std::printf("%-10zu %-12.5f %-12.5f %-10.2f\n", n, est->mean,
                est->std_error, est->std_error > 0 ? err / est->std_error : 0);
  }

  std::printf("\nlarger networks (exact enumeration infeasible):\n");
  std::printf("%-10s %-14s %-12s\n", "routers", "P(dominated)", "stderr");
  for (int n : {8, 12, 16}) {
    auto big = MustCreate(NetworkProgram(0.3), RandomNetwork(n, 0.3, 99));
    gdlog::ChaseOptions options;
    options.max_depth = 100000;
    gdlog::MonteCarloEstimator mc(&big.chase(), options);
    auto est = mc.EstimateProbConsistent(500, 7);
    if (est.ok()) {
      std::printf("%-10d %-14.4f %-12.4f\n", n, est->mean, est->std_error);
    }
  }
  std::printf("\n");
}

void BM_SamplePath_Clique3(benchmark::State& state) {
  auto engine = MustCreate(kNetworkProgram, Clique(3));
  gdlog::Rng rng(1);
  gdlog::ChaseOptions options;
  for (auto _ : state) {
    auto sample = engine.chase().SamplePath(&rng, options);
    benchmark::DoNotOptimize(sample->prob);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SamplePath_Clique3);

void BM_SamplePath_RandomNetwork(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto engine = MustCreate(NetworkProgram(0.3), RandomNetwork(n, 0.3, 99));
  gdlog::Rng rng(1);
  gdlog::ChaseOptions options;
  options.max_depth = 100000;
  for (auto _ : state) {
    auto sample = engine.chase().SamplePath(&rng, options);
    benchmark::DoNotOptimize(sample->prob);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SamplePath_RandomNetwork)->Arg(8)->Arg(12)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_SamplePath_NoModels(benchmark::State& state) {
  // Skipping stable-model computation isolates chase-walk cost.
  auto engine = MustCreate(kNetworkProgram, Clique(3));
  gdlog::Rng rng(1);
  gdlog::ChaseOptions options;
  options.compute_models = false;
  for (auto _ : state) {
    auto sample = engine.chase().SamplePath(&rng, options);
    benchmark::DoNotOptimize(sample->prob);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SamplePath_NoModels);

}  // namespace

int main(int argc, char** argv) {
  VerificationTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
