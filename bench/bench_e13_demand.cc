// E13 — the magic-sets demand transformation. A marginal query observes
// only the coin/win subsystem while an irrelevant buzz subsystem (its own
// Active/Result signature: a different event arity than coin's flip) grows
// quadratically in the chatter population. Demand prunes buzz's rules from
// Σ_Π, collapsing the outcome space from 2·2^(n²) to 2; the verification
// table checks the goal marginal is untouched and that demand strictly
// lowers both outcomes and facts derived, and the timings put a number on
// the wall-clock gap.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using namespace gdlog_bench;

constexpr const char* kDemandProgram = R"(
  win :- coin(1).
  coin(flip<0.5>).
  buzz(X, Y, flip<0.5>[X, Y]) :- chatter(X), chatter(Y).
)";

std::string ChatterDb(int n) {
  std::string db;
  for (int i = 1; i <= n; ++i) db += "chatter(" + std::to_string(i) + ").\n";
  return db;
}

gdlog::GDatalog MustCreateDemand(int n) {
  gdlog::GDatalog::Options options;
  options.demand_goals = {"win"};
  auto engine =
      gdlog::GDatalog::Create(kDemandProgram, ChatterDb(n), std::move(options));
  if (!engine.ok()) {
    std::fprintf(stderr, "bench setup failed: %s\n",
                 engine.status().ToString().c_str());
    std::abort();
  }
  return std::move(engine).value();
}

/// Total ground atoms across every stable model of every outcome — the
/// "facts derived" the chase had to materialize end to end.
size_t FactsDerived(const gdlog::OutcomeSpace& space) {
  size_t facts = 0;
  for (const auto& outcome : space.outcomes) {
    for (const auto& model : outcome.models) facts += model.size();
  }
  return facts;
}

void VerificationTable() {
  std::printf("=== E13: magic-sets demand for goal marginals ===\n");
  std::printf("%-8s %-16s %-16s %-14s %-14s %-10s\n", "chatter",
              "outcomes(full)", "outcomes(dem)", "facts(full)", "facts(dem)",
              "P(win)");
  for (int n : {1, 2, 3}) {
    auto full = MustCreate(kDemandProgram, ChatterDb(n));
    auto demand = MustCreateDemand(n);
    auto full_space = MustInfer(full);
    auto demand_space = MustInfer(demand);
    size_t full_facts = FactsDerived(full_space);
    size_t demand_facts = FactsDerived(demand_space);

    auto full_atom = full.ParseGroundAtom("win");
    auto demand_atom = demand.ParseGroundAtom("win");
    if (!full_atom.ok() || !demand_atom.ok()) std::abort();
    auto full_bounds = full_space.Marginal(*full_atom);
    auto demand_bounds = demand_space.Marginal(*demand_atom);
    // Demand must preserve the goal marginal exactly and strictly shrink
    // the explored space — this is the bench's correctness gate.
    if (full_bounds.lower.ToString() != demand_bounds.lower.ToString() ||
        full_bounds.upper.ToString() != demand_bounds.upper.ToString()) {
      std::fprintf(stderr, "E13: demand changed the goal marginal\n");
      std::abort();
    }
    if (demand_space.outcomes.size() >= full_space.outcomes.size() ||
        demand_facts >= full_facts) {
      std::fprintf(stderr, "E13: demand failed to prune\n");
      std::abort();
    }
    std::printf("%-8d %-16zu %-16zu %-14zu %-14zu %-10s\n", n,
                full_space.outcomes.size(), demand_space.outcomes.size(),
                full_facts, demand_facts,
                demand_bounds.lower.ToString().c_str());
  }
  std::printf("(demand keeps win's backward closure: 2 outcomes at any n)\n\n");
}

void BM_Demand_Off(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto engine = MustCreate(kDemandProgram, ChatterDb(n));
  size_t facts = 0;
  for (auto _ : state) {
    auto space = MustInfer(engine);
    facts = FactsDerived(space);
    benchmark::DoNotOptimize(space.finite_mass);
  }
  state.counters["facts_derived"] = static_cast<double>(facts);
}
BENCHMARK(BM_Demand_Off)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

void BM_Demand_On(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto engine = MustCreateDemand(n);
  size_t facts = 0;
  for (auto _ : state) {
    auto space = MustInfer(engine);
    facts = FactsDerived(space);
    benchmark::DoNotOptimize(space.finite_mass);
  }
  state.counters["facts_derived"] = static_cast<double>(facts);
}
BENCHMARK(BM_Demand_On)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

/// The pipeline itself (all passes, no demand) on the E1 network program —
/// how much construction-time cost the optimizer adds.
void BM_Pipeline_Construction(benchmark::State& state) {
  bool optimize = state.range(0) != 0;
  for (auto _ : state) {
    gdlog::GDatalog::Options options;
    options.optimize = optimize;
    auto engine =
        gdlog::GDatalog::Create(kNetworkProgram, Clique(4), std::move(options));
    if (!engine.ok()) std::abort();
    benchmark::DoNotOptimize(engine->opt_stats().rules_out);
  }
}
BENCHMARK(BM_Pipeline_Construction)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  VerificationTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
