// Shared generators and helpers for the experiment benches (E1–E13).
// Every bench binary prints a verification table first (the "rows the paper
// reports"), then runs google-benchmark timings.
#ifndef GDLOG_BENCH_BENCH_COMMON_H_
#define GDLOG_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

#include "gdatalog/engine.h"
#include "util/rng.h"

namespace gdlog_bench {

inline constexpr const char* kNetworkProgram = R"(
  infected(Y, flip<0.1>[X, Y]) :- infected(X, 1), connected(X, Y).
  uninfected(X) :- router(X), not infected(X, 1).
  :- uninfected(X), uninfected(Y), connected(X, Y).
)";

/// Network program with a configurable infection probability.
inline std::string NetworkProgram(double rate) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), R"(
  infected(Y, flip<%g>[X, Y]) :- infected(X, 1), connected(X, Y).
  uninfected(X) :- router(X), not infected(X, 1).
  :- uninfected(X), uninfected(Y), connected(X, Y).
)",
                rate);
  return buf;
}

/// Fully connected n-router network, router 1 infected (Example 3.6).
inline std::string Clique(int n) {
  std::string db;
  for (int i = 1; i <= n; ++i) db += "router(" + std::to_string(i) + ").\n";
  for (int i = 1; i <= n; ++i) {
    for (int j = 1; j <= n; ++j) {
      if (i != j) {
        db += "connected(" + std::to_string(i) + "," + std::to_string(j) +
              ").\n";
      }
    }
  }
  db += "infected(1, 1).\n";
  return db;
}

/// Ring topology.
inline std::string Ring(int n) {
  std::string db;
  for (int i = 1; i <= n; ++i) db += "router(" + std::to_string(i) + ").\n";
  for (int i = 1; i <= n; ++i) {
    int j = i % n + 1;
    db += "connected(" + std::to_string(i) + "," + std::to_string(j) + ").\n";
    db += "connected(" + std::to_string(j) + "," + std::to_string(i) + ").\n";
  }
  db += "infected(1, 1).\n";
  return db;
}

/// Random symmetric network (deterministic in the seed).
inline std::string RandomNetwork(int n, double edge_prob, uint64_t seed) {
  gdlog::Rng rng(seed);
  std::string db;
  for (int i = 1; i <= n; ++i) db += "router(" + std::to_string(i) + ").\n";
  for (int i = 1; i <= n; ++i) {
    for (int j = i + 1; j <= n; ++j) {
      if (rng.NextDouble() < edge_prob) {
        db += "connected(" + std::to_string(i) + "," + std::to_string(j) +
              ").\n";
        db += "connected(" + std::to_string(j) + "," + std::to_string(i) +
              ").\n";
      }
    }
  }
  db += "infected(1, 1).\n";
  return db;
}

inline constexpr const char* kDimeQuarterProgram = R"(
  dimetail(X, flip<0.5>[X]) :- dime(X).
  somedimetail :- dimetail(X, 1).
  quartertail(X, flip<0.5>[X]) :- quarter(X), not somedimetail.
)";

/// n dimes, one quarter.
inline std::string DimeDb(int dimes) {
  std::string db;
  for (int i = 1; i <= dimes; ++i) db += "dime(" + std::to_string(i) + ").\n";
  db += "quarter(" + std::to_string(dimes + 1) + ").\n";
  return db;
}

inline gdlog::GDatalog MustCreate(const std::string& program,
                                  const std::string& db,
                                  gdlog::GrounderKind kind =
                                      gdlog::GrounderKind::kAuto) {
  gdlog::GDatalog::Options options;
  options.grounder = kind;
  auto engine = gdlog::GDatalog::Create(program, db, std::move(options));
  if (!engine.ok()) {
    std::fprintf(stderr, "bench setup failed: %s\n",
                 engine.status().ToString().c_str());
    std::abort();
  }
  return std::move(engine).value();
}

inline gdlog::OutcomeSpace MustInfer(const gdlog::GDatalog& engine,
                                     const gdlog::ChaseOptions& options =
                                         gdlog::ChaseOptions{}) {
  auto space = engine.Infer(options);
  if (!space.ok()) {
    std::fprintf(stderr, "bench inference failed: %s\n",
                 space.status().ToString().c_str());
    std::abort();
  }
  return std::move(space).value();
}

}  // namespace gdlog_bench

#endif  // GDLOG_BENCH_BENCH_COMMON_H_
