// E7 — Exact inference scaling: outcome-space growth and chase wall-clock
// as the network and the infection probability grow. The outcome count
// grows exponentially in the reachable edge set; the bench quantifies
// where exact inference stops being feasible (motivating the sampler, E9).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using namespace gdlog_bench;

void VerificationTable() {
  std::printf("=== E7: exact chase scaling ===\n");
  std::printf("%-10s %-6s %-10s %-12s %-14s\n", "topology", "n", "outcomes",
              "P(dominated)", "grounds/outcome");
  for (int n : {2, 3, 4}) {
    auto engine = MustCreate(kNetworkProgram, Clique(n));
    auto space = MustInfer(engine);
    std::printf("%-10s %-6d %-10zu %-12s\n", "clique", n,
                space.outcomes.size(),
                space.ProbConsistent().ToString().c_str());
  }
  for (int n : {4, 6, 8}) {
    auto engine = MustCreate(kNetworkProgram, Ring(n));
    auto space = MustInfer(engine);
    std::printf("%-10s %-6d %-10zu %-12s\n", "ring", n, space.outcomes.size(),
                space.ProbConsistent().ToString().c_str());
  }
  std::printf("\n");
}

void BM_ExactChase_Ring(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto engine = MustCreate(kNetworkProgram, Ring(n));
  size_t outcomes = 0;
  for (auto _ : state) {
    auto space = MustInfer(engine);
    outcomes = space.outcomes.size();
  }
  state.counters["outcomes"] = static_cast<double>(outcomes);
  state.counters["outcomes/s"] = benchmark::Counter(
      static_cast<double>(outcomes), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_ExactChase_Ring)->DenseRange(3, 8)->Unit(benchmark::kMillisecond);

void BM_ExactChase_InfectionRate(benchmark::State& state) {
  // Rate scaled by 1/100; higher rates do not change the outcome count
  // (supports stay {0,1}) but exercise different model-solving paths.
  double rate = static_cast<double>(state.range(0)) / 100.0;
  auto engine = MustCreate(NetworkProgram(rate), Clique(3));
  for (auto _ : state) {
    auto space = MustInfer(engine);
    benchmark::DoNotOptimize(space.finite_mass);
  }
}
BENCHMARK(BM_ExactChase_InfectionRate)->Arg(10)->Arg(50)->Arg(90)
    ->Unit(benchmark::kMillisecond);

void BM_ExactChase_ModelsOnVsOff(benchmark::State& state) {
  bool compute_models = state.range(0) != 0;
  auto engine = MustCreate(kNetworkProgram, Clique(4));
  gdlog::ChaseOptions options;
  options.compute_models = compute_models;
  for (auto _ : state) {
    auto space = MustInfer(engine, options);
    benchmark::DoNotOptimize(space.finite_mass);
  }
}
BENCHMARK(BM_ExactChase_ModelsOnVsOff)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  VerificationTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
