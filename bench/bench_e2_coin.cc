// E2 — §3 coin program Π_coin: two possible outcomes with mass 1/2 each;
// one induces the empty stable-model set, the other the two-model set
// {{Aux1, Coin(1)}, {Aux2, Coin(1)}}. Also measures solver cost as the
// number of even negation cycles (and hence stable models) grows.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using namespace gdlog_bench;

constexpr const char* kCoin = R"(
  coin(flip<0.5>).
  :- coin(0).
  aux1 :- coin(1), not aux2.
  aux2 :- coin(1), not aux1.
)";

void VerificationTable() {
  std::printf("=== E2: coin program (paper: outcomes 1/2 each; P(sms!=0)=1/2) ===\n");
  auto engine = MustCreate(kCoin, "");
  auto space = MustInfer(engine);
  std::printf("outcomes=%zu finite_mass=%s\n", space.outcomes.size(),
              space.finite_mass.ToString().c_str());
  for (const gdlog::PossibleOutcome& o : space.outcomes) {
    std::printf("  Pr=%-5s |sms|=%zu\n", o.prob.ToString().c_str(),
                o.models.size());
  }
  std::printf("P(has stable model) = %s (expect 1/2)\n",
              space.ProbConsistent().ToString().c_str());
  std::printf("events = %zu (expect 2)\n\n", space.Events().size());
}

// k coins, each flipped and (if tails) spawning an even negation cycle:
// stable-model count doubles per tails coin.
std::string MultiCoin(int k) {
  std::string prog;
  for (int i = 0; i < k; ++i) {
    std::string c = "coin" + std::to_string(i);
    prog += c + "(flip<0.5>).\n";
    prog += "a" + std::to_string(i) + " :- " + c + "(1), not b" +
            std::to_string(i) + ".\n";
    prog += "b" + std::to_string(i) + " :- " + c + "(1), not a" +
            std::to_string(i) + ".\n";
  }
  return prog;
}

void BM_CoinExact(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  auto engine = MustCreate(MultiCoin(k), "");
  size_t outcomes = 0;
  for (auto _ : state) {
    auto space = MustInfer(engine);
    outcomes = space.outcomes.size();
    benchmark::DoNotOptimize(space.finite_mass);
  }
  state.counters["outcomes"] = static_cast<double>(outcomes);
}
BENCHMARK(BM_CoinExact)->Arg(1)->Arg(2)->Arg(4)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  VerificationTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
