// E8 — Stable-model solver throughput: well-founded fast path on
// stratified ground programs vs branch-and-verify on even negation cycles,
// and enumeration cost as the model count grows (2^k models).
#include <benchmark/benchmark.h>

#include <string>

#include "ast/parser.h"
#include "bench/bench_common.h"
#include "stable/solver.h"
#include "stable/wfs.h"

namespace {

// Parses a ground program (reusing the test helper pattern).
gdlog::GroundRuleSet ParseGroundProgram(const std::string& text,
                                        gdlog::Interner* interner) {
  auto shared = std::shared_ptr<gdlog::Interner>(interner,
                                                 [](gdlog::Interner*) {});
  auto prog = gdlog::ParseProgram(text, shared);
  gdlog::GroundRuleSet out;
  for (const gdlog::Rule& rule : prog->rules()) {
    gdlog::GroundRule gr;
    gr.is_constraint = rule.is_constraint;
    if (!rule.is_constraint) {
      gr.head.predicate = rule.head.predicate;
      for (const gdlog::HeadArg& arg : rule.head.args) {
        gr.head.args.push_back(arg.term().constant());
      }
    }
    for (const gdlog::Literal& lit : rule.body) {
      gdlog::GroundAtom atom;
      atom.predicate = lit.atom.predicate;
      for (const gdlog::Term& t : lit.atom.args) {
        atom.args.push_back(t.constant());
      }
      (lit.negated ? gr.negative : gr.positive).push_back(std::move(atom));
    }
    out.Add(std::move(gr));
  }
  return out;
}

// A stratified chain: a0. a1 :- a0, not z0. a2 :- a1, not z1. ...
std::string StratifiedChain(int n) {
  std::string text = "a0.\n";
  for (int i = 1; i < n; ++i) {
    text += "a" + std::to_string(i) + " :- a" + std::to_string(i - 1) +
            ", not z" + std::to_string(i - 1) + ".\n";
  }
  return text;
}

// k independent even cycles: 2^k stable models.
std::string EvenCycles(int k) {
  std::string text;
  for (int i = 0; i < k; ++i) {
    std::string a = "a" + std::to_string(i), b = "b" + std::to_string(i);
    text += a + " :- not " + b + ".\n" + b + " :- not " + a + ".\n";
  }
  return text;
}

void VerificationTable() {
  std::printf("=== E8: stable-model solver ===\n");
  std::printf("%-22s %-8s %-10s\n", "program", "atoms", "models");
  for (int k : {4, 8, 12}) {
    gdlog::Interner interner;
    auto rules = ParseGroundProgram(EvenCycles(k), &interner);
    auto models = gdlog::AllStableModels(rules);
    std::printf("%-22s %-8zu %-10zu (expect %d)\n",
                ("even-cycles k=" + std::to_string(k)).c_str(),
                rules.size(), models->size(), 1 << k);
  }
  for (int n : {64, 256}) {
    gdlog::Interner interner;
    auto rules = ParseGroundProgram(StratifiedChain(n), &interner);
    auto models = gdlog::AllStableModels(rules);
    std::printf("%-22s %-8zu %-10zu (expect 1)\n",
                ("strat-chain n=" + std::to_string(n)).c_str(), rules.size(),
                models->size());
  }
  std::printf("\n");
}

void BM_Wfs_StratifiedChain(benchmark::State& state) {
  gdlog::Interner interner;
  auto rules =
      ParseGroundProgram(StratifiedChain(static_cast<int>(state.range(0))),
                         &interner);
  gdlog::NormalProgram prog = gdlog::NormalProgram::FromRuleSet(rules);
  for (auto _ : state) {
    auto wfm = gdlog::ComputeWellFounded(prog);
    benchmark::DoNotOptimize(wfm.truth.data());
  }
  state.counters["atoms"] = static_cast<double>(prog.atom_count());
}
BENCHMARK(BM_Wfs_StratifiedChain)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

void BM_Enumerate_EvenCycles(benchmark::State& state) {
  gdlog::Interner interner;
  auto rules = ParseGroundProgram(EvenCycles(static_cast<int>(state.range(0))),
                                  &interner);
  gdlog::NormalProgram prog = gdlog::NormalProgram::FromRuleSet(rules);
  size_t models = 0;
  for (auto _ : state) {
    gdlog::StableModelEnumerator solver(prog);
    models = 0;
    auto st = solver.Enumerate([&](const std::vector<uint32_t>&) {
      ++models;
      return true;
    });
    benchmark::DoNotOptimize(st);
  }
  state.counters["models"] = static_cast<double>(models);
  state.counters["models/s"] = benchmark::Counter(
      static_cast<double>(models),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Enumerate_EvenCycles)->Arg(4)->Arg(8)->Arg(12)->Arg(14)
    ->Unit(benchmark::kMillisecond);

void BM_FirstModel_EvenCycles(benchmark::State& state) {
  // HasStableModel short-circuits after one model: near-linear despite the
  // 2^k model space.
  gdlog::Interner interner;
  auto rules = ParseGroundProgram(EvenCycles(static_cast<int>(state.range(0))),
                                  &interner);
  for (auto _ : state) {
    auto has = gdlog::HasStableModel(rules);
    benchmark::DoNotOptimize(*has);
  }
}
BENCHMARK(BM_FirstModel_EvenCycles)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  VerificationTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
