// E14 — Fleet partitioning: probability-mass-weighted shard assignment
// versus round-robin on a deliberately skewed chase tree. The first
// choice picks a branch whose probability is proportional to its subtree
// leaf count (branch i unlocks log2(leaves(i)) independent fair flips),
// so path mass is a perfect work proxy. Every fourth branch is heavy —
// the stride-aligned skew that is round-robin's classic pathology: with
// four shards, all heavy branches land on the same shard, and the
// fleet's wall-clock (the makespan, its slowest shard) carries most of
// the tree. The weighted greedy (largest mass onto the lightest shard)
// spreads them and lands within one light task of the ideal quarter.
// The assignment is part of the pure plan function, so both policies
// stay zero-coordination: every worker recomputes the same partition
// from the same coordinates.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "gdatalog/shard.h"

namespace {

using namespace gdlog_bench;

constexpr int kBranches = 12;
constexpr size_t kShards = 4;

/// Branch i's flip count: heavy (2^9 leaves) on every fourth branch,
/// light (2^6) elsewhere. Shard plans order tasks canonically (ascending
/// branch value), so the heavy branches sit at task indices 3, 7, 11 —
/// all congruent mod kShards.
int FlipsFor(int branch) { return branch % 4 == 0 ? 9 : 6; }

/// pick(discrete<1, leaves(1), ..., k, leaves(k)>), branch i unlocking
/// FlipsFor(i) flips: subtree mass ∝ subtree leaf count (masses
/// renormalize).
std::string SkewedProgram() {
  std::string params;
  for (int i = 1; i <= kBranches; ++i) {
    if (i > 1) params += ", ";
    params += std::to_string(i) + ", " +
              std::to_string(double(1 << FlipsFor(i)));
  }
  return "pick(discrete<" + params + ">).\n"
         "coin(J, flip<0.5>[J]) :- pick(I), unlocks(I, J).\n";
}

std::string SkewedDb() {
  std::string db;
  for (int i = 1; i <= kBranches; ++i) {
    for (int j = 1; j <= FlipsFor(i); ++j) {
      db += "unlocks(" + std::to_string(i) + "," + std::to_string(j) + ").\n";
    }
  }
  return db;
}

gdlog::ShardPlan MustPlan(const gdlog::GDatalog& engine,
                          gdlog::ShardAssignment assignment) {
  gdlog::ChaseOptions options;
  // Depth 1 = one task per discrete branch: the cleanest skew exhibit.
  auto plan = engine.chase().PlanShards(options, kShards,
                                        /*prefix_depth=*/1, assignment);
  if (!plan.ok()) {
    std::fprintf(stderr, "bench plan failed: %s\n",
                 plan.status().ToString().c_str());
    std::abort();
  }
  return std::move(plan).value();
}

std::vector<double> ShardMasses(const gdlog::ShardPlan& plan) {
  std::vector<double> mass(plan.num_shards, 0.0);
  for (size_t i = 0; i < plan.tasks.size(); ++i) {
    mass[plan.shard_of[i]] += plan.tasks[i].path_prob.value();
  }
  return mass;
}

size_t HeaviestShard(const gdlog::ShardPlan& plan) {
  std::vector<double> mass = ShardMasses(plan);
  return static_cast<size_t>(
      std::max_element(mass.begin(), mass.end()) - mass.begin());
}

void VerificationTable() {
  auto engine = MustCreate(SkewedProgram(), SkewedDb());
  gdlog::ChaseOptions options;
  std::printf("=== E14: weighted vs round-robin shard partitioning ===\n");
  std::printf("skewed tree: %d branches, P(branch i) = leaves(i)/total "
              "(mass == work)\n\n",
              kBranches);
  for (gdlog::ShardAssignment assignment :
       {gdlog::ShardAssignment::kWeighted,
        gdlog::ShardAssignment::kRoundRobin}) {
    gdlog::ShardPlan plan = MustPlan(engine, assignment);
    std::vector<double> mass = ShardMasses(plan);
    double worst = 0.0;
    double makespan_ms = 0.0;
    size_t outcomes = 0;
    std::printf("%-12s", gdlog::ShardAssignmentName(assignment));
    for (size_t shard = 0; shard < plan.num_shards; ++shard) {
      auto start = std::chrono::steady_clock::now();
      auto partial = engine.chase().ExploreShard(plan, shard, options);
      double ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
      if (!partial.ok()) {
        std::fprintf(stderr, "bench explore failed: %s\n",
                     partial.status().ToString().c_str());
        std::abort();
      }
      outcomes += partial->outcomes.size();
      worst = std::max(worst, mass[shard]);
      makespan_ms = std::max(makespan_ms, ms);
      std::printf("  shard%zu: mass=%.3f %7.2fms", shard, mass[shard], ms);
    }
    std::printf("\n%-12s  worst-shard mass=%.3f (ideal %.3f), "
                "makespan=%.2fms, outcomes=%zu\n\n",
                "", worst, 1.0 / double(kShards), makespan_ms, outcomes);
  }
}

/// The fleet wall-clock proxy: exploring the heaviest shard of the plan.
/// Weighted keeps it near total/kShards; round-robin's carries roughly
/// half the tree.
void BM_Fleet_WorstShard(benchmark::State& state) {
  gdlog::ShardAssignment assignment = state.range(0) == 0
                                          ? gdlog::ShardAssignment::kWeighted
                                          : gdlog::ShardAssignment::kRoundRobin;
  auto engine = MustCreate(SkewedProgram(), SkewedDb());
  gdlog::ShardPlan plan = MustPlan(engine, assignment);
  size_t shard = HeaviestShard(plan);
  gdlog::ChaseOptions options;
  for (auto _ : state) {
    auto partial = engine.chase().ExploreShard(plan, shard, options);
    if (!partial.ok()) std::abort();
    benchmark::DoNotOptimize(partial->outcomes);
  }
  state.counters["worst_mass"] = ShardMasses(plan)[shard];
  state.SetLabel(gdlog::ShardAssignmentName(assignment));
}
BENCHMARK(BM_Fleet_WorstShard)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  VerificationTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
