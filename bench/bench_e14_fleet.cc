// E14 — Fleet partitioning: probability-mass-weighted shard assignment
// versus round-robin on a deliberately skewed chase tree. The first
// choice picks a branch whose probability is proportional to its subtree
// leaf count (branch i unlocks log2(leaves(i)) independent fair flips),
// so path mass is a perfect work proxy. Every fourth branch is heavy —
// the stride-aligned skew that is round-robin's classic pathology: with
// four shards, all heavy branches land on the same shard, and the
// fleet's wall-clock (the makespan, its slowest shard) carries most of
// the tree. The weighted greedy (largest mass onto the lightest shard)
// spreads them and lands within one light task of the ideal quarter.
// The assignment is part of the pure plan function, so both policies
// stay zero-coordination: every worker recomputes the same partition
// from the same coordinates.
// Two live-fleet scenarios ride along (printed before the benchmark
// table): a SLEEPING STRAGGLER worker, where mid-job shard stealing must
// beat the no-steal makespan by well over 1.5x, and a REPEATED JOB, where
// the worker-side partial cache must serve the second coordinator's whole
// job with zero additional chases.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "gdatalog/shard.h"
#include "server/http.h"
#include "server/service.h"
#include "util/json.h"

namespace {

using namespace gdlog_bench;

constexpr int kBranches = 12;
constexpr size_t kShards = 4;

/// Branch i's flip count: heavy (2^9 leaves) on every fourth branch,
/// light (2^6) elsewhere. Shard plans order tasks canonically (ascending
/// branch value), so the heavy branches sit at task indices 3, 7, 11 —
/// all congruent mod kShards.
int FlipsFor(int branch) { return branch % 4 == 0 ? 9 : 6; }

/// pick(discrete<1, leaves(1), ..., k, leaves(k)>), branch i unlocking
/// FlipsFor(i) flips: subtree mass ∝ subtree leaf count (masses
/// renormalize).
std::string SkewedProgram() {
  std::string params;
  for (int i = 1; i <= kBranches; ++i) {
    if (i > 1) params += ", ";
    params += std::to_string(i) + ", " +
              std::to_string(double(1 << FlipsFor(i)));
  }
  return "pick(discrete<" + params + ">).\n"
         "coin(J, flip<0.5>[J]) :- pick(I), unlocks(I, J).\n";
}

std::string SkewedDb() {
  std::string db;
  for (int i = 1; i <= kBranches; ++i) {
    for (int j = 1; j <= FlipsFor(i); ++j) {
      db += "unlocks(" + std::to_string(i) + "," + std::to_string(j) + ").\n";
    }
  }
  return db;
}

gdlog::ShardPlan MustPlan(const gdlog::GDatalog& engine,
                          gdlog::ShardAssignment assignment) {
  gdlog::ChaseOptions options;
  // Depth 1 = one task per discrete branch: the cleanest skew exhibit.
  auto plan = engine.chase().PlanShards(options, kShards,
                                        /*prefix_depth=*/1, assignment);
  if (!plan.ok()) {
    std::fprintf(stderr, "bench plan failed: %s\n",
                 plan.status().ToString().c_str());
    std::abort();
  }
  return std::move(plan).value();
}

std::vector<double> ShardMasses(const gdlog::ShardPlan& plan) {
  std::vector<double> mass(plan.num_shards, 0.0);
  for (size_t i = 0; i < plan.tasks.size(); ++i) {
    mass[plan.shard_of[i]] += plan.tasks[i].path_prob.value();
  }
  return mass;
}

size_t HeaviestShard(const gdlog::ShardPlan& plan) {
  std::vector<double> mass = ShardMasses(plan);
  return static_cast<size_t>(
      std::max_element(mass.begin(), mass.end()) - mass.begin());
}

void VerificationTable() {
  auto engine = MustCreate(SkewedProgram(), SkewedDb());
  gdlog::ChaseOptions options;
  std::printf("=== E14: weighted vs round-robin shard partitioning ===\n");
  std::printf("skewed tree: %d branches, P(branch i) = leaves(i)/total "
              "(mass == work)\n\n",
              kBranches);
  for (gdlog::ShardAssignment assignment :
       {gdlog::ShardAssignment::kWeighted,
        gdlog::ShardAssignment::kRoundRobin}) {
    gdlog::ShardPlan plan = MustPlan(engine, assignment);
    std::vector<double> mass = ShardMasses(plan);
    double worst = 0.0;
    double makespan_ms = 0.0;
    size_t outcomes = 0;
    std::printf("%-12s", gdlog::ShardAssignmentName(assignment));
    for (size_t shard = 0; shard < plan.num_shards; ++shard) {
      auto start = std::chrono::steady_clock::now();
      auto partial = engine.chase().ExploreShard(plan, shard, options);
      double ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
      if (!partial.ok()) {
        std::fprintf(stderr, "bench explore failed: %s\n",
                     partial.status().ToString().c_str());
        std::abort();
      }
      outcomes += partial->outcomes.size();
      worst = std::max(worst, mass[shard]);
      makespan_ms = std::max(makespan_ms, ms);
      std::printf("  shard%zu: mass=%.3f %7.2fms", shard, mass[shard], ms);
    }
    std::printf("\n%-12s  worst-shard mass=%.3f (ideal %.3f), "
                "makespan=%.2fms, outcomes=%zu\n\n",
                "", worst, 1.0 / double(kShards), makespan_ms, outcomes);
  }
}

// ---------------------------------------------------------------------------
// Live-fleet scenarios: straggler stealing and the worker partial cache
// ---------------------------------------------------------------------------

/// A real gdlogd worker on a loopback port; `shard_delay_ms` > 0 turns it
/// into a straggler that sleeps before serving each /v1/shards request.
class BenchWorker {
 public:
  explicit BenchWorker(int shard_delay_ms = 0) {
    gdlog::InferenceService::Options options;
    options.default_chase.num_threads = 1;
    service_ = std::make_unique<gdlog::InferenceService>(options);
    gdlog::HttpServerOptions http;
    http.workers = 4;
    auto server = gdlog::HttpServer::Create(
        http, [this, shard_delay_ms](const gdlog::HttpRequest& request) {
          if (shard_delay_ms > 0 && request.target == "/v1/shards") {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(shard_delay_ms));
          }
          return service_->Handle(request);
        });
    if (!server.ok()) std::abort();
    server_ = std::make_unique<gdlog::HttpServer>(std::move(*server));
    thread_ = std::thread([this] { (void)server_->Serve(); });
  }

  ~BenchWorker() {
    server_->Shutdown();
    thread_.join();
  }

  std::string address() const {
    return "127.0.0.1:" + std::to_string(server_->port());
  }
  gdlog::InferenceService& service() { return *service_; }

 private:
  std::unique_ptr<gdlog::InferenceService> service_;
  std::unique_ptr<gdlog::HttpServer> server_;
  std::thread thread_;
};

/// Registers the skewed program on `coordinator` and runs one /v1/jobs
/// against `workers`, returning the job wall time in ms.
double RunFleetJob(gdlog::InferenceService& coordinator,
                   const std::vector<std::string>& workers, bool steal,
                   int steal_after_ms, size_t shards) {
  gdlog::JsonWriter reg;
  reg.BeginObject().KV("program", SkewedProgram()).KV("db", SkewedDb())
      .EndObject();
  gdlog::HttpRequest request;
  request.method = "POST";
  request.target = "/v1/programs";
  request.body = reg.str();
  gdlog::HttpResponse registered = coordinator.Handle(request);
  if (registered.status != 200 && registered.status != 201) std::abort();
  auto doc = gdlog::JsonValue::Parse(registered.body);
  const gdlog::JsonValue* id = doc.ok() ? doc->Find("id") : nullptr;
  if (id == nullptr) std::abort();

  gdlog::JsonWriter job;
  job.BeginObject();
  job.KV("program_id", id->string_value());
  job.KV("shards", static_cast<long long>(shards));
  if (!steal) job.KV("steal", false);
  job.KV("steal_after_ms", static_cast<long long>(steal_after_ms));
  job.Key("workers").BeginArray();
  for (const std::string& worker : workers) job.String(worker);
  job.EndArray();
  job.EndObject();
  request.target = "/v1/jobs";
  request.body = job.str();
  auto start = std::chrono::steady_clock::now();
  gdlog::HttpResponse response = coordinator.Handle(request);
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  if (response.status != 200) {
    std::fprintf(stderr, "bench job failed: %s\n", response.body.c_str());
    std::abort();
  }
  return ms;
}

void StragglerScenario() {
  std::printf("=== straggler: mid-job stealing vs waiting ===\n");
  // One worker sleeps 900 ms before every shard exchange; the other is
  // healthy. Fresh coordinators per run (the job cache would otherwise
  // serve the second run for free).
  BenchWorker straggler(/*shard_delay_ms=*/900);
  BenchWorker healthy;
  std::vector<std::string> workers = {straggler.address(),
                                      healthy.address()};
  gdlog::InferenceService::Options options;
  options.default_chase.num_threads = 1;

  gdlog::InferenceService no_steal_coord(options);
  double no_steal_ms = RunFleetJob(no_steal_coord, workers,
                                   /*steal=*/false,
                                   /*steal_after_ms=*/100, kShards);
  gdlog::InferenceService steal_coord(options);
  double steal_ms = RunFleetJob(steal_coord, workers, /*steal=*/true,
                                /*steal_after_ms=*/100, kShards);
  uint64_t steals = steal_coord.fleet().counters().steals;
  double ratio = steal_ms > 0 ? no_steal_ms / steal_ms : 0;
  std::printf("no-steal makespan=%.1fms  steal makespan=%.1fms  "
              "speedup=%.2fx (target >= 1.5x)  steals=%llu  %s\n\n",
              no_steal_ms, steal_ms, ratio,
              static_cast<unsigned long long>(steals),
              ratio >= 1.5 && steals >= 1 ? "OK" : "MISS");
}

void RepeatedJobScenario() {
  std::printf("=== repeated job: worker partial cache ===\n");
  // The same job from two fresh coordinators: the second is served wholly
  // out of the worker's partial cache — zero additional chases.
  BenchWorker worker;
  std::vector<std::string> workers = {worker.address()};
  gdlog::InferenceService::Options options;
  options.default_chase.num_threads = 1;

  gdlog::InferenceService cold_coord(options);
  double cold_ms = RunFleetJob(cold_coord, workers, /*steal=*/true,
                               /*steal_after_ms=*/250, kShards);
  uint64_t explored_after_cold =
      worker.service().fleet().counters().shards_explored;
  gdlog::InferenceService warm_coord(options);
  double warm_ms = RunFleetJob(warm_coord, workers, /*steal=*/true,
                               /*steal_after_ms=*/250, kShards);
  gdlog::FleetService::Counters after =
      worker.service().fleet().counters();
  uint64_t extra_chases = after.shards_explored - explored_after_cold;
  std::printf("cold=%.1fms warm=%.1fms  partial_cache_hits=%llu  "
              "extra_chases=%llu (target 0)  %s\n\n",
              cold_ms, warm_ms,
              static_cast<unsigned long long>(after.partial_cache_hits),
              static_cast<unsigned long long>(extra_chases),
              extra_chases == 0 ? "OK" : "MISS");
}

/// The fleet wall-clock proxy: exploring the heaviest shard of the plan.
/// Weighted keeps it near total/kShards; round-robin's carries roughly
/// half the tree.
void BM_Fleet_WorstShard(benchmark::State& state) {
  gdlog::ShardAssignment assignment = state.range(0) == 0
                                          ? gdlog::ShardAssignment::kWeighted
                                          : gdlog::ShardAssignment::kRoundRobin;
  auto engine = MustCreate(SkewedProgram(), SkewedDb());
  gdlog::ShardPlan plan = MustPlan(engine, assignment);
  size_t shard = HeaviestShard(plan);
  gdlog::ChaseOptions options;
  for (auto _ : state) {
    auto partial = engine.chase().ExploreShard(plan, shard, options);
    if (!partial.ok()) std::abort();
    benchmark::DoNotOptimize(partial->outcomes);
  }
  state.counters["worst_mass"] = ShardMasses(plan)[shard];
  state.SetLabel(gdlog::ShardAssignmentName(assignment));
}
BENCHMARK(BM_Fleet_WorstShard)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  VerificationTable();
  StragglerScenario();
  RepeatedJobScenario();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
