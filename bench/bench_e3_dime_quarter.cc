// E3 — Appendix E (Figure 1): the dime/quarter stratified program.
// Regenerates the perfect-grounding walkthrough: 5 outcomes under GPerfect
// vs 8 under GSimple for two dimes, the 1/8 quarter-tail probability, and
// the dependency-graph strata of Figure 1. Times both grounders as the
// number of dimes grows.
#include <benchmark/benchmark.h>

#include "ast/parser.h"
#include "bench/bench_common.h"
#include "ground/dependency_graph.h"

namespace {

using namespace gdlog_bench;

void VerificationTable() {
  std::printf("=== E3: dime/quarter, stratified negation (Appendix E) ===\n");

  // Figure 1: dependency graph strata.
  auto prog = gdlog::ParseProgram(kDimeQuarterProgram);
  gdlog::DependencyGraph dg(*prog);
  std::printf("stratified=%s, strata order (Figure 1):\n",
              dg.IsStratified() ? "yes" : "no");
  for (size_t i = 0; i < dg.Components().size(); ++i) {
    std::printf("  C%zu = {", i + 1);
    bool first = true;
    for (uint32_t p : dg.Components()[i]) {
      std::printf("%s%s", first ? "" : ", ",
                  prog->interner()->Name(p).c_str());
      first = false;
    }
    std::printf("}\n");
  }

  std::printf("%-6s %-18s %-18s %-16s\n", "dimes", "outcomes(perfect)",
              "outcomes(simple)", "P(quartertail)");
  for (int dimes : {1, 2, 3, 4}) {
    auto perfect = MustCreate(kDimeQuarterProgram, DimeDb(dimes),
                              gdlog::GrounderKind::kPerfect);
    auto simple = MustCreate(kDimeQuarterProgram, DimeDb(dimes),
                             gdlog::GrounderKind::kSimple);
    auto pspace = MustInfer(perfect);
    auto sspace = MustInfer(simple);
    auto atom = perfect.ParseGroundAtom(
        "quartertail(" + std::to_string(dimes + 1) + ", 1)");
    std::printf("%-6d %-18zu %-18zu %-16s\n", dimes, pspace.outcomes.size(),
                sspace.outcomes.size(),
                pspace.Marginal(*atom).lower.ToString().c_str());
  }
  std::printf("(paper walkthrough: 2 dimes -> 5 vs 8 outcomes, P = 1/8)\n\n");
}

void BM_DimeQuarter_Perfect(benchmark::State& state) {
  int dimes = static_cast<int>(state.range(0));
  auto engine = MustCreate(kDimeQuarterProgram, DimeDb(dimes),
                           gdlog::GrounderKind::kPerfect);
  for (auto _ : state) {
    auto space = MustInfer(engine);
    benchmark::DoNotOptimize(space.finite_mass);
  }
}
BENCHMARK(BM_DimeQuarter_Perfect)->Arg(2)->Arg(4)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_DimeQuarter_Simple(benchmark::State& state) {
  int dimes = static_cast<int>(state.range(0));
  auto engine = MustCreate(kDimeQuarterProgram, DimeDb(dimes),
                           gdlog::GrounderKind::kSimple);
  for (auto _ : state) {
    auto space = MustInfer(engine);
    benchmark::DoNotOptimize(space.finite_mass);
  }
}
BENCHMARK(BM_DimeQuarter_Simple)->Arg(2)->Arg(4)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  VerificationTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
