// E10 — Grounding throughput: ground rules per second for the simple and
// perfect grounders as the database grows, plus the non-probabilistic
// Datalog¬ substrate (transitive closure) as a pure-grounding baseline.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using namespace gdlog_bench;

std::string ChainDb(int n) {
  std::string db;
  for (int i = 1; i <= n; ++i) db += "node(" + std::to_string(i) + ").\n";
  for (int i = 1; i < n; ++i) {
    db += "edge(" + std::to_string(i) + "," + std::to_string(i + 1) + ").\n";
  }
  return db;
}

constexpr const char* kTransitiveClosure = R"(
  path(X, Y) :- edge(X, Y).
  path(X, Z) :- path(X, Y), edge(Y, Z).
  unreachable(X, Y) :- node(X), node(Y), not path(X, Y).
)";

void VerificationTable() {
  std::printf("=== E10: grounding throughput ===\n");
  std::printf("%-16s %-10s %-14s\n", "workload", "db-size", "ground-rules");
  for (int n : {16, 64, 128}) {
    auto engine = MustCreate(kTransitiveClosure, ChainDb(n),
                             gdlog::GrounderKind::kPerfect);
    gdlog::GroundRuleSet out;
    gdlog::ChoiceSet empty;
    if (!engine.grounder().Ground(empty, &out).ok()) std::abort();
    std::printf("%-16s %-10d %-14zu\n", "trans-closure", n, out.size());
  }
  for (int dimes : {16, 64, 256}) {
    auto engine = MustCreate(kDimeQuarterProgram, DimeDb(dimes),
                             gdlog::GrounderKind::kSimple);
    gdlog::GroundRuleSet out;
    gdlog::ChoiceSet empty;
    if (!engine.grounder().Ground(empty, &out).ok()) std::abort();
    std::printf("%-16s %-10d %-14zu\n", "dime(simple)", dimes, out.size());
  }
  std::printf("\n");
}

void BM_Ground_TransitiveClosure(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto engine = MustCreate(kTransitiveClosure, ChainDb(n),
                           gdlog::GrounderKind::kPerfect);
  gdlog::ChoiceSet empty;
  size_t rules = 0;
  for (auto _ : state) {
    gdlog::GroundRuleSet out;
    benchmark::DoNotOptimize(engine.grounder().Ground(empty, &out));
    rules = out.size();
  }
  state.counters["rules"] = static_cast<double>(rules);
  state.counters["rules/s"] = benchmark::Counter(
      static_cast<double>(rules),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Ground_TransitiveClosure)->Arg(16)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_Ground_NetworkSimple(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto engine = MustCreate(kNetworkProgram, RandomNetwork(n, 0.3, 17),
                           gdlog::GrounderKind::kSimple);
  gdlog::ChoiceSet empty;
  for (auto _ : state) {
    gdlog::GroundRuleSet out;
    benchmark::DoNotOptimize(engine.grounder().Ground(empty, &out));
  }
}
BENCHMARK(BM_Ground_NetworkSimple)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_Ground_NetworkPerfect(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto engine = MustCreate(kNetworkProgram, RandomNetwork(n, 0.3, 17),
                           gdlog::GrounderKind::kPerfect);
  gdlog::ChoiceSet empty;
  for (auto _ : state) {
    gdlog::GroundRuleSet out;
    benchmark::DoNotOptimize(engine.grounder().Ground(empty, &out));
  }
}
BENCHMARK(BM_Ground_NetworkPerfect)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  VerificationTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
