// E10 — Grounding throughput: ground rules per second for the simple and
// perfect grounders as the database grows, the non-probabilistic Datalog¬
// substrate (transitive closure) as a pure-grounding baseline, and the
// BM_Match_* microbenchmark family pitting the compiled join executor
// against the legacy reference Matcher per adornment.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "ground/join_plan.h"
#include "ground/matcher.h"

namespace {

using namespace gdlog_bench;

std::string ChainDb(int n) {
  std::string db;
  for (int i = 1; i <= n; ++i) db += "node(" + std::to_string(i) + ").\n";
  for (int i = 1; i < n; ++i) {
    db += "edge(" + std::to_string(i) + "," + std::to_string(i + 1) + ").\n";
  }
  return db;
}

constexpr const char* kTransitiveClosure = R"(
  path(X, Y) :- edge(X, Y).
  path(X, Z) :- path(X, Y), edge(Y, Z).
  unreachable(X, Y) :- node(X), node(Y), not path(X, Y).
)";

void VerificationTable() {
  std::printf("=== E10: grounding throughput ===\n");
  std::printf("%-16s %-10s %-14s\n", "workload", "db-size", "ground-rules");
  for (int n : {16, 64, 128}) {
    auto engine = MustCreate(kTransitiveClosure, ChainDb(n),
                             gdlog::GrounderKind::kPerfect);
    gdlog::GroundRuleSet out;
    gdlog::ChoiceSet empty;
    if (!engine.grounder().Ground(empty, &out).ok()) std::abort();
    std::printf("%-16s %-10d %-14zu\n", "trans-closure", n, out.size());
  }
  for (int dimes : {16, 64, 256}) {
    auto engine = MustCreate(kDimeQuarterProgram, DimeDb(dimes),
                             gdlog::GrounderKind::kSimple);
    gdlog::GroundRuleSet out;
    gdlog::ChoiceSet empty;
    if (!engine.grounder().Ground(empty, &out).ok()) std::abort();
    std::printf("%-16s %-10d %-14zu\n", "dime(simple)", dimes, out.size());
  }
  std::printf("\n");
}

void BM_Ground_TransitiveClosure(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto engine = MustCreate(kTransitiveClosure, ChainDb(n),
                           gdlog::GrounderKind::kPerfect);
  gdlog::ChoiceSet empty;
  size_t rules = 0;
  uint64_t bindings = 0;
  for (auto _ : state) {
    gdlog::GroundRuleSet out;
    gdlog::MatchStats stats;
    benchmark::DoNotOptimize(engine.grounder().Ground(empty, &out, &stats));
    rules = out.size();
    bindings = stats.bindings;
  }
  state.counters["rules"] = static_cast<double>(rules);
  state.counters["rules/s"] = benchmark::Counter(
      static_cast<double>(rules),
      benchmark::Counter::kIsIterationInvariantRate);
  state.counters["bindings/s"] = benchmark::Counter(
      static_cast<double>(bindings),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Ground_TransitiveClosure)->Arg(16)->Arg(64)->Arg(128)->Arg(256)
    ->Arg(512)->Unit(benchmark::kMillisecond);

void BM_Ground_NetworkSimple(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto engine = MustCreate(kNetworkProgram, RandomNetwork(n, 0.3, 17),
                           gdlog::GrounderKind::kSimple);
  gdlog::ChoiceSet empty;
  for (auto _ : state) {
    gdlog::GroundRuleSet out;
    benchmark::DoNotOptimize(engine.grounder().Ground(empty, &out));
  }
}
BENCHMARK(BM_Ground_NetworkSimple)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_Ground_NetworkPerfect(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto engine = MustCreate(kNetworkProgram, RandomNetwork(n, 0.3, 17),
                           gdlog::GrounderKind::kPerfect);
  gdlog::ChoiceSet empty;
  for (auto _ : state) {
    gdlog::GroundRuleSet out;
    benchmark::DoNotOptimize(engine.grounder().Ground(empty, &out));
  }
}
BENCHMARK(BM_Ground_NetworkPerfect)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// BM_Match_*: matcher microbenchmarks (compiled join plans vs. the legacy
// reference Matcher) over the adornments that matter — unbound join,
// single-bound column, and multi-bound columns (composite index).
// ---------------------------------------------------------------------------

/// A two-relation instance: edge(X,Y) chain plus label(X,C) colors.
gdlog::FactStore MatchStore(int n) {
  gdlog::FactStore store;
  for (int i = 0; i < n; ++i) {
    store.Insert(0, {gdlog::Value::Int(i), gdlog::Value::Int((i + 1) % n)});
    store.Insert(1, {gdlog::Value::Int(i), gdlog::Value::Int(i % 7)});
  }
  store.Freeze();
  return store;
}

/// edge(X,Y), edge(Y,Z): one unbound scan + one index probe per row.
std::vector<gdlog::Atom> UnboundJoinQuery() {
  gdlog::Atom a0, a1;
  a0.predicate = 0;
  a0.args = {gdlog::Term::Variable(0), gdlog::Term::Variable(1)};
  a1.predicate = 0;
  a1.args = {gdlog::Term::Variable(1), gdlog::Term::Variable(2)};
  return {a0, a1};
}

/// edge(7, Y), label(Y, C): bound first column.
std::vector<gdlog::Atom> BoundQuery() {
  gdlog::Atom a0, a1;
  a0.predicate = 0;
  a0.args = {gdlog::Term::Constant(gdlog::Value::Int(7)),
             gdlog::Term::Variable(0)};
  a1.predicate = 1;
  a1.args = {gdlog::Term::Variable(0), gdlog::Term::Variable(1)};
  return {a0, a1};
}

/// edge(X,Y), label(X,C), label(Y,C): the third atom has both columns
/// bound — the composite-index adornment.
std::vector<gdlog::Atom> CompositeQuery() {
  gdlog::Atom a0, a1, a2;
  a0.predicate = 0;
  a0.args = {gdlog::Term::Variable(0), gdlog::Term::Variable(1)};
  a1.predicate = 1;
  a1.args = {gdlog::Term::Variable(0), gdlog::Term::Variable(2)};
  a2.predicate = 1;
  a2.args = {gdlog::Term::Variable(1), gdlog::Term::Variable(2)};
  return {a0, a1, a2};
}

void RunCompiled(benchmark::State& state, std::vector<gdlog::Atom> query,
                 int n) {
  gdlog::FactStore store = MatchStore(n);
  std::vector<const gdlog::Atom*> atoms;
  for (const gdlog::Atom& a : query) atoms.push_back(&a);
  gdlog::CompiledRule body = gdlog::CompileBody(atoms);
  gdlog::JoinPlan plan = gdlog::CompileJoinPlan(body, store);
  gdlog::JoinExecutor exec;
  uint64_t bindings = 0;
  for (auto _ : state) {
    gdlog::MatchStats stats;
    exec.Execute(plan, &stats, [](const gdlog::BindingFrame&) {
      return true;
    });
    bindings = stats.bindings;
    benchmark::DoNotOptimize(bindings);
  }
  state.counters["bindings/s"] = benchmark::Counter(
      static_cast<double>(bindings),
      benchmark::Counter::kIsIterationInvariantRate);
}

void RunLegacy(benchmark::State& state, std::vector<gdlog::Atom> query,
               int n) {
  gdlog::FactStore store = MatchStore(n);
  std::vector<const gdlog::Atom*> atoms;
  for (const gdlog::Atom& a : query) atoms.push_back(&a);
  gdlog::Matcher matcher(&store);
  uint64_t bindings = 0;
  for (auto _ : state) {
    uint64_t count = 0;
    matcher.Match(atoms, [&](const gdlog::Binding&) {
      ++count;
      return true;
    });
    bindings = count;
    benchmark::DoNotOptimize(bindings);
  }
  state.counters["bindings/s"] = benchmark::Counter(
      static_cast<double>(bindings),
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_Match_CompiledUnbound(benchmark::State& state) {
  RunCompiled(state, UnboundJoinQuery(), static_cast<int>(state.range(0)));
}
void BM_Match_LegacyUnbound(benchmark::State& state) {
  RunLegacy(state, UnboundJoinQuery(), static_cast<int>(state.range(0)));
}
void BM_Match_CompiledBound(benchmark::State& state) {
  RunCompiled(state, BoundQuery(), static_cast<int>(state.range(0)));
}
void BM_Match_LegacyBound(benchmark::State& state) {
  RunLegacy(state, BoundQuery(), static_cast<int>(state.range(0)));
}
void BM_Match_CompiledComposite(benchmark::State& state) {
  RunCompiled(state, CompositeQuery(), static_cast<int>(state.range(0)));
}
void BM_Match_LegacyComposite(benchmark::State& state) {
  RunLegacy(state, CompositeQuery(), static_cast<int>(state.range(0)));
}
BENCHMARK(BM_Match_CompiledUnbound)->Arg(1024)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Match_LegacyUnbound)->Arg(1024)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Match_CompiledBound)->Arg(1024)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Match_LegacyBound)->Arg(1024)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Match_CompiledComposite)->Arg(512)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Match_LegacyComposite)->Arg(512)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  VerificationTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
