// E4 — Lemma 4.4 / Theorem 4.6: chase order independence.
// Runs the chase under many random trigger orders and checks that the set
// of possible outcomes (choices ↦ probability) and all event masses are
// bit-identical; times the chase under canonical vs shuffled orders.
#include <benchmark/benchmark.h>

#include <map>

#include "bench/bench_common.h"

namespace {

using namespace gdlog_bench;

std::map<gdlog::ChoiceSet, std::string> Fingerprint(
    const gdlog::OutcomeSpace& space) {
  std::map<gdlog::ChoiceSet, std::string> out;
  for (const gdlog::PossibleOutcome& o : space.outcomes) {
    out.emplace(o.choices, o.prob.ToString());
  }
  return out;
}

void VerificationTable() {
  std::printf("=== E4: order independence (Lemma 4.4) ===\n");
  std::printf("%-10s %-10s %-10s %-14s %s\n", "database", "seed", "outcomes",
              "P(dominated)", "identical-to-canonical");
  for (const auto& [label, db] :
       std::vector<std::pair<std::string, std::string>>{
           {"clique3", Clique(3)}, {"ring4", Ring(4)},
           {"sparse5", RandomNetwork(5, 0.3, 3)}}) {
    auto engine = MustCreate(kNetworkProgram, db);
    auto canonical = MustInfer(engine);
    auto base = Fingerprint(canonical);
    for (uint64_t seed : {1u, 7u, 42u, 1337u}) {
      gdlog::ChaseOptions options;
      options.trigger_shuffle_seed = seed;
      auto shuffled = MustInfer(engine, options);
      bool identical = Fingerprint(shuffled) == base &&
                       shuffled.finite_mass == canonical.finite_mass;
      std::printf("%-10s %-10llu %-10zu %-14s %s\n", label.c_str(),
                  static_cast<unsigned long long>(seed),
                  shuffled.outcomes.size(),
                  shuffled.ProbConsistent().ToString().c_str(),
                  identical ? "YES" : "NO (BUG)");
    }
  }
  std::printf("\n");
}

void BM_Chase_CanonicalOrder(benchmark::State& state) {
  auto engine = MustCreate(kNetworkProgram, Clique(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    auto space = MustInfer(engine);
    benchmark::DoNotOptimize(space.finite_mass);
  }
}
BENCHMARK(BM_Chase_CanonicalOrder)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_Chase_ShuffledOrder(benchmark::State& state) {
  auto engine = MustCreate(kNetworkProgram, Clique(static_cast<int>(state.range(0))));
  gdlog::ChaseOptions options;
  options.trigger_shuffle_seed = 99;
  for (auto _ : state) {
    auto space = MustInfer(engine, options);
    benchmark::DoNotOptimize(space.finite_mass);
  }
}
BENCHMARK(BM_Chase_ShuffledOrder)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  VerificationTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
