// E1 — Examples 1.1/3.1/3.6/3.10: network resilience.
// Regenerates the paper's headline number: P(dominated) = 0.19 on the
// 3-router clique with infection rate 0.1, plus the domination curve over
// topology and infection rate, and times exact inference.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using namespace gdlog_bench;

void VerificationTable() {
  std::printf("=== E1: network resilience (paper: clique n=3 -> 0.19) ===\n");
  std::printf("%-8s %-4s %-6s %-10s %-12s %s\n", "topology", "n", "rate",
              "outcomes", "P(dominated)", "check");
  for (double rate : {0.1, 0.3, 0.5}) {
    for (int n : {2, 3, 4}) {
      auto engine = MustCreate(NetworkProgram(rate), Clique(n));
      auto space = MustInfer(engine);
      const char* check = "";
      if (n == 3 && rate == 0.1) {
        check = space.ProbConsistent() == gdlog::Prob(gdlog::Rational(19, 100))
                    ? "== 19/100 OK"
                    : "MISMATCH";
      }
      std::printf("%-8s %-4d %-6.2f %-10zu %-12s %s\n", "clique", n, rate,
                  space.outcomes.size(),
                  space.ProbConsistent().ToString().c_str(), check);
    }
  }
  for (int n : {3, 4, 5}) {
    auto engine = MustCreate(NetworkProgram(0.1), Ring(n));
    auto space = MustInfer(engine);
    std::printf("%-8s %-4d %-6.2f %-10zu %-12s\n", "ring", n, 0.1,
                space.outcomes.size(),
                space.ProbConsistent().ToString().c_str());
  }
  std::printf("\n");
}

void BM_NetworkExact_Clique(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto engine = MustCreate(NetworkProgram(0.1), Clique(n));
  size_t outcomes = 0;
  for (auto _ : state) {
    auto space = MustInfer(engine);
    outcomes = space.outcomes.size();
    benchmark::DoNotOptimize(space.finite_mass);
  }
  state.counters["outcomes"] = static_cast<double>(outcomes);
}
BENCHMARK(BM_NetworkExact_Clique)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_NetworkExact_Ring(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto engine = MustCreate(NetworkProgram(0.1), Ring(n));
  for (auto _ : state) {
    auto space = MustInfer(engine);
    benchmark::DoNotOptimize(space.finite_mass);
  }
}
BENCHMARK(BM_NetworkExact_Ring)->Arg(3)->Arg(4)->Arg(5)->Arg(6)
    ->Unit(benchmark::kMillisecond);

// Parallel frontier chase: the clique-4 space (2^12 leaves) exercised at
// 1, 2, 4, and 8 workers. With a single hardware thread the non-serial
// rows only measure scheduling overhead; on a multicore box they are the
// speedup curve the baseline records.
void BM_NetworkExact_Clique4_Threads(benchmark::State& state) {
  auto engine = MustCreate(NetworkProgram(0.1), Clique(4));
  gdlog::ChaseOptions options;
  options.num_threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto space = MustInfer(engine, options);
    benchmark::DoNotOptimize(space.finite_mass);
  }
  state.counters["threads"] = static_cast<double>(options.num_threads);
}
BENCHMARK(BM_NetworkExact_Clique4_Threads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  VerificationTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
