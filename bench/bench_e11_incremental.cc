// E11 (ablation) — incremental grounding: the chase can extend the parent
// node's grounding (monotonicity, Definition 3.3) instead of re-deriving
// it from scratch at every node. Measures exact inference and path
// sampling under both modes; the outcome spaces are identical (checked).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "gdatalog/sampler.h"

namespace {

using namespace gdlog_bench;

void VerificationTable() {
  std::printf("=== E11 (ablation): incremental vs from-scratch grounding ===\n");
  std::printf("%-10s %-12s %-14s %-14s\n", "database", "outcomes",
              "P(dominated)", "identical");
  for (const auto& [label, db] :
       std::vector<std::pair<std::string, std::string>>{
           {"clique3", Clique(3)}, {"ring5", Ring(5)}}) {
    auto engine = MustCreate(kNetworkProgram, db, gdlog::GrounderKind::kSimple);
    gdlog::ChaseOptions inc, scr;
    inc.incremental = true;
    scr.incremental = false;
    auto a = MustInfer(engine, inc);
    auto b = MustInfer(engine, scr);
    bool same = a.outcomes.size() == b.outcomes.size() &&
                a.finite_mass == b.finite_mass &&
                a.ProbConsistent() == b.ProbConsistent();
    std::printf("%-10s %-12zu %-14s %-14s\n", label.c_str(),
                a.outcomes.size(), a.ProbConsistent().ToString().c_str(),
                same ? "YES" : "NO (BUG)");
  }
  std::printf("\n");
}

void BM_Explore_Incremental(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto engine = MustCreate(kNetworkProgram, Ring(n), gdlog::GrounderKind::kSimple);
  gdlog::ChaseOptions options;
  options.incremental = true;
  options.compute_models = false;  // isolate grounding cost
  for (auto _ : state) {
    auto space = MustInfer(engine, options);
    benchmark::DoNotOptimize(space.finite_mass);
  }
}
BENCHMARK(BM_Explore_Incremental)->Arg(4)->Arg(5)->Arg(6)
    ->Unit(benchmark::kMillisecond);

void BM_Explore_FromScratch(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto engine = MustCreate(kNetworkProgram, Ring(n), gdlog::GrounderKind::kSimple);
  gdlog::ChaseOptions options;
  options.incremental = false;
  options.compute_models = false;
  for (auto _ : state) {
    auto space = MustInfer(engine, options);
    benchmark::DoNotOptimize(space.finite_mass);
  }
}
BENCHMARK(BM_Explore_FromScratch)->Arg(4)->Arg(5)->Arg(6)
    ->Unit(benchmark::kMillisecond);

void BM_Sample_Incremental(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto engine = MustCreate(NetworkProgram(0.3), RandomNetwork(n, 0.3, 99),
                           gdlog::GrounderKind::kSimple);
  gdlog::ChaseOptions options;
  options.incremental = true;
  options.compute_models = false;
  options.max_depth = 100000;
  gdlog::Rng rng(5);
  for (auto _ : state) {
    auto s = engine.chase().SamplePath(&rng, options);
    benchmark::DoNotOptimize(s->prob);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Sample_Incremental)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

void BM_Sample_FromScratch(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto engine = MustCreate(NetworkProgram(0.3), RandomNetwork(n, 0.3, 99),
                           gdlog::GrounderKind::kSimple);
  gdlog::ChaseOptions options;
  options.incremental = false;
  options.compute_models = false;
  options.max_depth = 100000;
  gdlog::Rng rng(5);
  for (auto _ : state) {
    auto s = engine.chase().SamplePath(&rng, options);
    benchmark::DoNotOptimize(s->prob);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Sample_FromScratch)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  VerificationTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
