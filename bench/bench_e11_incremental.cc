// E11 (ablation) — incremental grounding: the chase can extend the parent
// node's grounding (monotonicity, Definition 3.3) instead of re-deriving
// it from scratch at every node. Measures exact inference and path
// sampling under both modes; the outcome spaces are identical (checked).
//
// The delta-serving section drives the PR 7 incremental-update path
// against a live in-process registry: PATCH /db with a 1%-sized fact
// delta versus PUT /db full rebuild (gate: the delta update must be at
// least 10x faster), plus the cache-revalidation regime — a delta on a
// predicate outside every rule body must leave the next identical /query
// a pure cache hit (gate: zero additional chases).
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>

#include "bench/bench_common.h"
#include "gdatalog/sampler.h"
#include "server/service.h"
#include "util/json.h"

namespace {

using namespace gdlog_bench;

bool g_gate_failed = false;

// ---------------------------------------------------------------------------
// Delta-serving workload: the E1 clique-3 chase (small enough to query
// exactly) embedded in a large database. The bulk is `observed` event-log
// facts that no rule body mentions — they make a PUT rebuild re-parse and
// re-index the whole store, while a PATCH never touches their relation at
// all. The 1% delta lands on `connected` — a real rule-body predicate, so
// the update must re-ground semi-naively and evict cached spaces — but its
// facts connect non-router nodes with no infected partner, so they are
// chase-inert and the outcome space stays small enough to cache. This is
// the regime the delta path is built for: update cost proportional to the
// delta plus one copy-on-write detach of each *touched* relation, never
// O(|DB|). `meta` facts live in no rule body either: deltas on them are
// the cache-revalidation case.
// ---------------------------------------------------------------------------

constexpr int kPaddingFacts = 4000;
constexpr int kDeltaFacts = kPaddingFacts / 100;  // the "1% delta"

std::string DeltaServingDb() {
  std::string db = Clique(3);
  for (int i = 0; i < kPaddingFacts; ++i) {
    int a = 1000 + 2 * i;
    db += "observed(" + std::to_string(a) + "," + std::to_string(a + 1) +
          ").\n";
  }
  // Pre-seed meta so its column domain is already saturated (Top): later
  // meta deltas keep the DB summary pipeline-equivalent.
  for (int i = 1; i <= 8; ++i) {
    db += "meta(" + std::to_string(i) + ").\n";
  }
  return db;
}

/// A fresh 1%-sized batch of chase-inert `connected` facts; `round` keeps
/// batches disjoint so repeated PATCHes append real rows.
std::string ConnectedDelta(int round) {
  std::string delta;
  int base = 1'000'000 + round * 2 * kDeltaFacts;
  for (int i = 0; i < kDeltaFacts; ++i) {
    int a = base + 2 * i;
    delta += "connected(" + std::to_string(a) + "," + std::to_string(a + 1) +
             ").\n";
  }
  return delta;
}

std::string MetaDelta(int round) {
  return "meta(" + std::to_string(1'000'000 + round) + ").\n";
}

gdlog::HttpResponse MustHandle(gdlog::InferenceService& service,
                               const char* method, const std::string& target,
                               const std::string& body, int expect_status) {
  gdlog::HttpRequest request;
  request.method = method;
  request.target = target;
  request.body = body;
  gdlog::HttpResponse response = service.Handle(request);
  if (response.status != expect_status) {
    std::fprintf(stderr, "bench setup: %s %s -> %d: %s\n", method,
                 target.c_str(), response.status, response.body.c_str());
    std::abort();
  }
  return response;
}

std::string RegisterDeltaServingProgram(gdlog::InferenceService& service) {
  gdlog::JsonWriter reg;
  reg.BeginObject()
      .KV("program", NetworkProgram(0.1))
      .KV("db", DeltaServingDb())
      .KV("grounder", "simple")
      .EndObject();
  gdlog::HttpResponse registered =
      MustHandle(service, "POST", "/programs", reg.str(), 201);
  auto doc = gdlog::JsonValue::Parse(registered.body);
  if (!doc.ok() || doc->Find("id") == nullptr) std::abort();
  return doc->Find("id")->string_value();
}

std::string PatchBody(const std::string& delta) {
  gdlog::JsonWriter body;
  body.BeginObject().KV("delta", delta).EndObject();
  return body.str();
}

std::string PutBody(const std::string& db) {
  gdlog::JsonWriter body;
  body.BeginObject().KV("db", db).EndObject();
  return body.str();
}

long long JsonCounter(const gdlog::JsonValue& doc, const char* object,
                      const char* field) {
  const gdlog::JsonValue* obj = doc.Find(object);
  if (obj == nullptr) return -1;
  const gdlog::JsonValue* value = obj->Find(field);
  if (value == nullptr || !value->is_number()) return -1;
  auto n = value->NumberAsInt();
  return n.ok() ? *n : -1;
}

void DeltaServingTable() {
  std::printf(
      "=== E11 delta serving: PATCH /db vs full rebuild "
      "(clique3 + %d event-log facts, %d-fact delta) ===\n",
      kPaddingFacts, kDeltaFacts);

  gdlog::InferenceService::Options options;
  options.default_chase.num_threads = 1;
  gdlog::InferenceService service(options);
  std::string id = RegisterDeltaServingProgram(service);
  std::string db_target = "/programs/" + id + "/db";
  std::string query_body = "{\"program_id\":\"" + id + "\"}";

  using clock = std::chrono::steady_clock;
  auto ms_since = [](clock::time_point start) {
    return std::chrono::duration<double, std::milli>(clock::now() - start)
        .count();
  };

  // Delta updates: PATCH a fresh 1% batch each round, average the cost.
  constexpr int kPatchRounds = 8;
  auto patch_start = clock::now();
  for (int round = 0; round < kPatchRounds; ++round) {
    MustHandle(service, "PATCH", db_target,
               PatchBody(ConnectedDelta(round)), 200);
  }
  double patch_ms = ms_since(patch_start) / kPatchRounds;

  // Full rebuilds: PUT the whole (original) database text.
  constexpr int kPutRounds = 3;
  std::string full_db = PutBody(DeltaServingDb());
  auto put_start = clock::now();
  for (int round = 0; round < kPutRounds; ++round) {
    MustHandle(service, "PUT", db_target, full_db, 200);
  }
  double put_ms = ms_since(put_start) / kPutRounds;

  double speedup = patch_ms > 0 ? put_ms / patch_ms : 0.0;
  bool update_gate = speedup >= 10.0;
  std::printf("%-28s %10.3f ms/op\n", "PATCH 1% delta", patch_ms);
  std::printf("%-28s %10.3f ms/op\n", "PUT full rebuild", put_ms);
  std::printf("%-28s %10.1fx (gate: >= 10x) %s\n", "update speedup", speedup,
              update_gate ? "PASS" : "FAIL (BUG)");
  if (!update_gate) g_gate_failed = true;

  // Revalidation regime: warm the cache, PATCH a meta-only delta, and the
  // next identical query must be served from the revalidated entry.
  MustHandle(service, "POST", "/query", query_body, 200);
  gdlog::HttpResponse patched = MustHandle(
      service, "PATCH", db_target, PatchBody(MetaDelta(/*round=*/0)), 200);
  auto patch_doc = gdlog::JsonValue::Parse(patched.body);
  long long revalidated =
      patch_doc.ok() ? JsonCounter(*patch_doc, "delta", "spaces_revalidated")
                     : -1;
  gdlog::InferenceCache::Stats before = service.cache().stats();
  MustHandle(service, "POST", "/query", query_body, 200);
  gdlog::InferenceCache::Stats after = service.cache().stats();
  bool zero_chase = after.misses == before.misses && revalidated >= 1;
  std::printf("%-28s revalidated=%lld, post-delta misses=+%llu "
              "(gate: >= 1 and +0) %s\n",
              "meta delta + /query", revalidated,
              static_cast<unsigned long long>(after.misses - before.misses),
              zero_chase ? "PASS" : "FAIL (BUG)");
  if (!zero_chase) g_gate_failed = true;
  std::printf("\n");
}

void VerificationTable() {
  std::printf("=== E11 (ablation): incremental vs from-scratch grounding ===\n");
  std::printf("%-10s %-12s %-14s %-14s\n", "database", "outcomes",
              "P(dominated)", "identical");
  for (const auto& [label, db] :
       std::vector<std::pair<std::string, std::string>>{
           {"clique3", Clique(3)}, {"ring5", Ring(5)}}) {
    auto engine = MustCreate(kNetworkProgram, db, gdlog::GrounderKind::kSimple);
    gdlog::ChaseOptions inc, scr;
    inc.incremental = true;
    scr.incremental = false;
    auto a = MustInfer(engine, inc);
    auto b = MustInfer(engine, scr);
    bool same = a.outcomes.size() == b.outcomes.size() &&
                a.finite_mass == b.finite_mass &&
                a.ProbConsistent() == b.ProbConsistent();
    std::printf("%-10s %-12zu %-14s %-14s\n", label.c_str(),
                a.outcomes.size(), a.ProbConsistent().ToString().c_str(),
                same ? "YES" : "NO (BUG)");
  }
  std::printf("\n");
}

void BM_Explore_Incremental(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto engine = MustCreate(kNetworkProgram, Ring(n), gdlog::GrounderKind::kSimple);
  gdlog::ChaseOptions options;
  options.incremental = true;
  options.compute_models = false;  // isolate grounding cost
  for (auto _ : state) {
    auto space = MustInfer(engine, options);
    benchmark::DoNotOptimize(space.finite_mass);
  }
}
BENCHMARK(BM_Explore_Incremental)->Arg(4)->Arg(5)->Arg(6)
    ->Unit(benchmark::kMillisecond);

void BM_Explore_FromScratch(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto engine = MustCreate(kNetworkProgram, Ring(n), gdlog::GrounderKind::kSimple);
  gdlog::ChaseOptions options;
  options.incremental = false;
  options.compute_models = false;
  for (auto _ : state) {
    auto space = MustInfer(engine, options);
    benchmark::DoNotOptimize(space.finite_mass);
  }
}
BENCHMARK(BM_Explore_FromScratch)->Arg(4)->Arg(5)->Arg(6)
    ->Unit(benchmark::kMillisecond);

void BM_Sample_Incremental(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto engine = MustCreate(NetworkProgram(0.3), RandomNetwork(n, 0.3, 99),
                           gdlog::GrounderKind::kSimple);
  gdlog::ChaseOptions options;
  options.incremental = true;
  options.compute_models = false;
  options.max_depth = 100000;
  gdlog::Rng rng(5);
  for (auto _ : state) {
    auto s = engine.chase().SamplePath(&rng, options);
    benchmark::DoNotOptimize(s->prob);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Sample_Incremental)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

void BM_Sample_FromScratch(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto engine = MustCreate(NetworkProgram(0.3), RandomNetwork(n, 0.3, 99),
                           gdlog::GrounderKind::kSimple);
  gdlog::ChaseOptions options;
  options.incremental = false;
  options.compute_models = false;
  options.max_depth = 100000;
  gdlog::Rng rng(5);
  for (auto _ : state) {
    auto s = engine.chase().SamplePath(&rng, options);
    benchmark::DoNotOptimize(s->prob);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Sample_FromScratch)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

/// PATCH /db with a fresh 1%-sized delta per iteration — the serving-layer
/// incremental update (parse delta, append rows extending indices, resume
/// semi-naive re-grounding, lineage bump). Fixed iteration count: every
/// iteration appends real rows, so unbounded adaptive runs would grow the
/// database (and the published spec) quadratically.
void BM_DeltaUpdate_Patch1Pct(benchmark::State& state) {
  gdlog::InferenceService::Options options;
  options.default_chase.num_threads = 1;
  gdlog::InferenceService service(options);
  std::string id = RegisterDeltaServingProgram(service);
  std::string db_target = "/programs/" + id + "/db";
  gdlog::HttpRequest request;
  request.method = "PATCH";
  request.target = db_target;
  int round = 100;  // disjoint from the verification table's batches
  for (auto _ : state) {
    request.body = PatchBody(ConnectedDelta(round++));
    gdlog::HttpResponse response = service.Handle(request);
    if (response.status != 200) std::abort();
    benchmark::DoNotOptimize(response.body);
  }
  state.counters["rows/delta"] = kDeltaFacts;
}
BENCHMARK(BM_DeltaUpdate_Patch1Pct)
    ->Iterations(64)
    ->Unit(benchmark::kMillisecond);

/// PUT /db with the full database text — the rebuild every delta update
/// replaces: re-parse the whole store, re-summarize, re-ground.
void BM_DeltaUpdate_FullRebuild(benchmark::State& state) {
  gdlog::InferenceService::Options options;
  options.default_chase.num_threads = 1;
  gdlog::InferenceService service(options);
  std::string id = RegisterDeltaServingProgram(service);
  gdlog::HttpRequest request;
  request.method = "PUT";
  request.target = "/programs/" + id + "/db";
  request.body = PutBody(DeltaServingDb());
  for (auto _ : state) {
    gdlog::HttpResponse response = service.Handle(request);
    if (response.status != 200) std::abort();
    benchmark::DoNotOptimize(response.body);
  }
  state.counters["db_facts"] = kPaddingFacts;
}
BENCHMARK(BM_DeltaUpdate_FullRebuild)
    ->Iterations(8)
    ->Unit(benchmark::kMillisecond);

/// A meta-only delta followed by the query it must not invalidate: PATCH
/// revalidates the cached space under the new lineage, so the /query half
/// is a pure fingerprint hit — no chase, any iteration.
void BM_DeltaQuery_Revalidated(benchmark::State& state) {
  gdlog::InferenceService::Options options;
  options.default_chase.num_threads = 1;
  gdlog::InferenceService service(options);
  std::string id = RegisterDeltaServingProgram(service);
  std::string db_target = "/programs/" + id + "/db";
  gdlog::HttpRequest query;
  query.method = "POST";
  query.target = "/query";
  query.body = "{\"program_id\":\"" + id + "\"}";
  if (service.Handle(query).status != 200) std::abort();  // warm the cache
  gdlog::HttpRequest patch;
  patch.method = "PATCH";
  patch.target = db_target;
  int round = 100;
  for (auto _ : state) {
    patch.body = PatchBody(MetaDelta(round++));
    if (service.Handle(patch).status != 200) std::abort();
    gdlog::HttpResponse response = service.Handle(query);
    if (response.status != 200) std::abort();
    benchmark::DoNotOptimize(response.body);
  }
  gdlog::InferenceCache::Stats stats = service.cache().stats();
  if (stats.misses != 1) {  // only the warm-up may ever chase
    std::fprintf(stderr,
                 "BM_DeltaQuery_Revalidated: %llu chases (expected 1) — "
                 "revalidation failed to carry the cached space\n",
                 static_cast<unsigned long long>(stats.misses));
    std::abort();
  }
  state.counters["chases"] = static_cast<double>(stats.misses);
}
BENCHMARK(BM_DeltaQuery_Revalidated)
    ->Iterations(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  VerificationTable();
  DeltaServingTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return g_gate_failed ? 1 : 0;
}
