// E6 — Theorem C.4: on positive, finitely-grounding programs our simple-
// grounder semantics is isomorphic to the BCKOV semantics of Bárány et al.
// Verifies outcome counts and total/event masses, and compares the cost of
// the ground-program chase vs the instance-level BCKOV chase.
#include <benchmark/benchmark.h>

#include "ast/parser.h"
#include "bench/bench_common.h"
#include "gdatalog/bckov.h"

namespace {

using namespace gdlog_bench;

constexpr const char* kPositiveVirus =
    "virus(Y, flip<0.3>[X, Y]) :- virus(X, 1), link(X, Y).";

std::string Chain(int n) {
  std::string db = "virus(1, 1).\n";
  for (int i = 1; i < n; ++i) {
    db += "link(" + std::to_string(i) + "," + std::to_string(i + 1) + ").\n";
  }
  return db;
}

void VerificationTable() {
  std::printf("=== E6: BCKOV agreement on positive programs (Thm C.4) ===\n");
  std::printf("%-8s %-14s %-14s %-12s %-12s %s\n", "chain", "ours(outcomes)",
              "bckov(outcomes)", "ours(mass)", "bckov(mass)", "isomorphic");
  for (int n : {2, 3, 5, 8}) {
    auto engine = MustCreate(kPositiveVirus, Chain(n),
                             gdlog::GrounderKind::kSimple);
    auto space = MustInfer(engine);

    auto prog = gdlog::ParseProgram(kPositiveVirus);
    auto db = gdlog::ParseFacts(Chain(n), prog->interner());
    auto bckov = gdlog::BckovEngine::Create(*prog, &*db, &engine.registry());
    auto bspace = bckov->Explore(1u << 20, 4096, 64);

    bool iso = space.outcomes.size() == bspace->outcomes.size() &&
               space.finite_mass == bspace->finite_mass;
    std::printf("%-8d %-14zu %-14zu %-12s %-12s %s\n", n,
                space.outcomes.size(), bspace->outcomes.size(),
                space.finite_mass.ToString().c_str(),
                bspace->finite_mass.ToString().c_str(),
                iso ? "YES" : "NO (BUG)");
  }
  std::printf("\n");
}

void BM_OurChase_PositiveChain(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto engine =
      MustCreate(kPositiveVirus, Chain(n), gdlog::GrounderKind::kSimple);
  for (auto _ : state) {
    auto space = MustInfer(engine);
    benchmark::DoNotOptimize(space.finite_mass);
  }
}
BENCHMARK(BM_OurChase_PositiveChain)->Arg(3)->Arg(6)->Arg(9)
    ->Unit(benchmark::kMillisecond);

void BM_BckovChase_PositiveChain(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto prog = gdlog::ParseProgram(kPositiveVirus);
  auto db = gdlog::ParseFacts(Chain(n), prog->interner());
  gdlog::DistributionRegistry registry =
      gdlog::DistributionRegistry::Builtins();
  auto bckov = gdlog::BckovEngine::Create(*prog, &*db, &registry);
  for (auto _ : state) {
    auto space = bckov->Explore(1u << 20, 4096, 64);
    benchmark::DoNotOptimize(space->finite_mass);
  }
}
BENCHMARK(BM_BckovChase_PositiveChain)->Arg(3)->Arg(6)->Arg(9)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  VerificationTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
