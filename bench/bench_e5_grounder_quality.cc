// E5 — Theorems 3.12 & 5.3: grounder quality ("as good as", Def 3.11).
// Checks Π_GPerfect(D) ≥ Π_GSimple(D) event-wise on stratified programs and
// equality on positive ones, and reports the grounding-size advantage of
// the perfect grounder (fewer superfluous ground rules / outcomes).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "gdatalog/compare.h"

namespace {

using namespace gdlog_bench;

void VerificationTable() {
  std::printf("=== E5: grounder quality (Theorems 3.12/5.3) ===\n");
  std::printf("%-14s %-18s %-18s %-12s %s\n", "program", "outcomes(perfect)",
              "outcomes(simple)", "as-good-as", "events");

  struct Case {
    const char* label;
    std::string program;
    std::string db;
  };
  std::vector<Case> cases = {
      {"dime2", kDimeQuarterProgram, DimeDb(2)},
      {"dime4", kDimeQuarterProgram, DimeDb(4)},
      {"network3", kNetworkProgram, Clique(3)},
      // Positive program: Theorem 3.12 — equality of semantics.
      {"positive", "virus(Y, flip<0.3>[X,Y]) :- virus(X,1), link(X,Y).",
       "virus(1,1). link(1,2). link(2,3)."},
  };
  for (const Case& c : cases) {
    auto perfect =
        MustCreate(c.program, c.db, gdlog::GrounderKind::kPerfect);
    auto simple = MustCreate(c.program, c.db, gdlog::GrounderKind::kSimple);
    auto pspace = MustInfer(perfect);
    auto sspace = MustInfer(simple);
    auto cmp = gdlog::IsAsGoodAs(pspace, sspace);
    std::printf("%-14s %-18zu %-18zu %-12s %zu\n", c.label,
                pspace.outcomes.size(), sspace.outcomes.size(),
                cmp.ok() && cmp->as_good ? "YES" : "NO (BUG)",
                cmp.ok() ? cmp->events_compared : 0);
  }
  std::printf("(perfect <= simple in outcome count; event masses dominate)\n\n");
}

void BM_GroundingSize_Perfect(benchmark::State& state) {
  int dimes = static_cast<int>(state.range(0));
  auto engine = MustCreate(kDimeQuarterProgram, DimeDb(dimes),
                           gdlog::GrounderKind::kPerfect);
  gdlog::ChoiceSet empty;
  for (auto _ : state) {
    gdlog::GroundRuleSet out;
    benchmark::DoNotOptimize(engine.grounder().Ground(empty, &out));
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_GroundingSize_Perfect)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

void BM_GroundingSize_Simple(benchmark::State& state) {
  int dimes = static_cast<int>(state.range(0));
  auto engine = MustCreate(kDimeQuarterProgram, DimeDb(dimes),
                           gdlog::GrounderKind::kSimple);
  gdlog::ChoiceSet empty;
  for (auto _ : state) {
    gdlog::GroundRuleSet out;
    benchmark::DoNotOptimize(engine.grounder().Ground(empty, &out));
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_GroundingSize_Simple)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  VerificationTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
