// The PR 7 incremental-serving path: fact-delta parsing and append-only
// application (FactStore::ApplyDelta), incremental summary maintenance,
// delta-vs-rebuild bit-identity of GDatalog::WithDatabaseDelta across both
// grounders and thread counts, the evaluator's semi-naive resume, removal
// rejection, and the serving layer's lineage chain with cache revalidation
// versus eviction.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ast/parser.h"
#include "datalog/evaluator.h"
#include "gdatalog/engine.h"
#include "gdatalog/export.h"
#include "ground/fact_store.h"
#include "opt/ir.h"
#include "server/cache.h"
#include "server/http.h"
#include "server/registry.h"
#include "server/service.h"
#include "util/json.h"

namespace gdlog {
namespace {

constexpr const char* kNetworkProgram =
    "infected(Y, flip<0.1>[X, Y]) :- infected(X, 1), connected(X, Y).\n"
    "uninfected(X) :- router(X), not infected(X, 1).\n"
    ":- uninfected(X), uninfected(Y), connected(X, Y).\n";

constexpr const char* kDimeQuarterProgram =
    "dimetail(X, flip<0.5>[X]) :- dime(X).\n"
    "somedimetail :- dimetail(X, 1).\n"
    "quartertail(X, flip<0.5>[X]) :- quarter(X), not somedimetail.\n";

std::string Clique(int n) {
  std::string db;
  for (int i = 1; i <= n; ++i) db += "router(" + std::to_string(i) + ").\n";
  for (int i = 1; i <= n; ++i) {
    for (int j = 1; j <= n; ++j) {
      if (i != j) {
        db += "connected(" + std::to_string(i) + "," + std::to_string(j) +
              ").\n";
      }
    }
  }
  db += "infected(1, 1).\n";
  return db;
}

Result<GDatalog> MakeEngine(const std::string& program, const std::string& db,
                            GrounderKind kind) {
  GDatalog::Options options;
  options.grounder = kind;
  return GDatalog::Create(program, db, std::move(options));
}

std::string SpaceJson(const GDatalog& engine, const OutcomeSpace& space) {
  JsonExportOptions options;
  options.include_outcomes = true;
  options.include_models = true;
  options.include_events = true;
  return OutcomeSpaceToJson(space, engine.translated(),
                            engine.program().interner(), options);
}

/// The core correctness gate: the delta-applied engine must produce the
/// byte-identical outcome-space JSON as an engine built from scratch on
/// the merged database — per grounder, per thread count.
void ExpectDeltaByteIdentity(const std::string& program,
                             const std::string& base_db,
                             const std::string& delta) {
  for (GrounderKind kind : {GrounderKind::kSimple, GrounderKind::kPerfect}) {
    auto full = MakeEngine(program, base_db + "\n" + delta, kind);
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    auto base = MakeEngine(program, base_db, kind);
    ASSERT_TRUE(base.ok()) << base.status().ToString();
    auto inc = GDatalog::WithDatabaseDelta(*base, delta);
    ASSERT_TRUE(inc.ok()) << inc.status().ToString();
    EXPECT_TRUE(inc->delta_stats().applied);
    for (size_t threads : {size_t{1}, size_t{8}}) {
      ChaseOptions chase;
      chase.num_threads = threads;
      auto want = full->Infer(chase);
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      auto got = inc->Infer(chase);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(SpaceJson(*full, *want), SpaceJson(*inc, *got))
          << "grounder=" << (kind == GrounderKind::kSimple ? "simple"
                                                           : "perfect")
          << " threads=" << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// ParseFactDelta / FactStore::ApplyDelta
// ---------------------------------------------------------------------------

TEST(FactDelta, ParsesAdditionsAndRemovals) {
  Interner interner;
  auto delta = ParseFactDelta(
      "edge(1,2).\n"
      "  -edge(2,3).\n"
      "edge(3,4).\n",
      &interner);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_EQ(delta->added.size(), 2u);
  EXPECT_EQ(delta->removed.size(), 1u);
  EXPECT_FALSE(delta->empty());
}

TEST(FactDelta, RejectsNonFactLines) {
  Interner interner;
  auto delta = ParseFactDelta("edge(X, Y) :- other(X, Y).\n", &interner);
  ASSERT_FALSE(delta.ok());
  EXPECT_EQ(delta.status().code(), StatusCode::kInvalidArgument);
}

TEST(FactDelta, ApplyAppendsAndExtendsIndices) {
  Interner interner;
  auto store = ParseFacts("edge(1,2). edge(2,3).", &interner);
  ASSERT_TRUE(store.ok());
  uint32_t edge = interner.Lookup("edge");
  // Force the column index to exist before the delta, so the append path
  // must extend it in place rather than getting a fresh lazy build.
  const auto* pre = store->IndexLookup(edge, 0, Value::Int(1));
  ASSERT_NE(pre, nullptr);
  EXPECT_EQ(pre->size(), 1u);

  auto delta = ParseFactDelta("edge(1,4).\nedge(1,2).\n", &interner);
  ASSERT_TRUE(delta.ok());
  DeltaRanges ranges;
  ASSERT_TRUE(store->ApplyDelta(*delta, &ranges).ok());
  EXPECT_EQ(ranges.rows_appended, 1u);       // edge(1,4)
  EXPECT_EQ(ranges.duplicates_skipped, 1u);  // edge(1,2)
  ASSERT_EQ(ranges.ranges.count(edge), 1u);
  EXPECT_EQ(ranges.ranges.at(edge).begin, 2u);
  EXPECT_EQ(ranges.ranges.at(edge).end, 3u);

  const auto* post = store->IndexLookup(edge, 0, Value::Int(1));
  ASSERT_NE(post, nullptr);
  EXPECT_EQ(post->size(), 2u);
  EXPECT_TRUE(store->Contains(edge, {Value::Int(1), Value::Int(4)}));
}

TEST(FactDelta, RemovalsAreRejectedAsUnsupported) {
  Interner interner;
  auto store = ParseFacts("edge(1,2).", &interner);
  ASSERT_TRUE(store.ok());
  auto delta = ParseFactDelta("-edge(1,2).\n", &interner);
  ASSERT_TRUE(delta.ok());
  DeltaRanges ranges;
  Status status = store->ApplyDelta(*delta, &ranges);
  EXPECT_EQ(status.code(), StatusCode::kUnsupported);
  EXPECT_NE(status.message().find("removal"), std::string::npos);
  // Nothing was applied.
  EXPECT_TRUE(store->Contains(interner.Lookup("edge"),
                              {Value::Int(1), Value::Int(2)}));
}

// ---------------------------------------------------------------------------
// Incremental DB-summary maintenance
// ---------------------------------------------------------------------------

void ExpectIncrementalSummaryMatches(const std::string& base_text,
                                     const std::string& delta_text) {
  Interner interner;
  auto store = ParseFacts(base_text, &interner);
  ASSERT_TRUE(store.ok());
  DbSummary summary = SummarizeDb(*store);
  auto delta = ParseFactDelta(delta_text, &interner);
  ASSERT_TRUE(delta.ok());
  DeltaRanges ranges;
  ASSERT_TRUE(store->ApplyDelta(*delta, &ranges).ok());
  UpdateSummaryForDelta(&summary, *store, ranges);
  EXPECT_TRUE(summary == SummarizeDb(*store))
      << "base: " << base_text << " delta: " << delta_text;
}

TEST(DeltaSummary, IncrementalUpdateEqualsFromScratch) {
  // New rows inside existing domains.
  ExpectIncrementalSummaryMatches("edge(1,2). edge(2,3).", "edge(2,1).\n");
  // Domain saturation crossing (4 -> 5 distinct values).
  ExpectIncrementalSummaryMatches(
      "n(1). n(2). n(3). n(4).", "n(5).\nn(6).\n");
  // A predicate the base never mentioned.
  ExpectIncrementalSummaryMatches("edge(1,2).", "meta(7).\n");
  // Duplicates only: the summary must be untouched.
  ExpectIncrementalSummaryMatches("edge(1,2).", "edge(1,2).\n");
  // Mixed batch across several predicates.
  ExpectIncrementalSummaryMatches(
      "edge(1,2). n(1). n(2).",
      "edge(3,4).\nn(3).\nn(4).\nn(5).\nmeta(1).\n");
}

// ---------------------------------------------------------------------------
// GDatalog::WithDatabaseDelta — bit-identity with a from-scratch rebuild
// ---------------------------------------------------------------------------

TEST(DeltaEngine, NetworkCliqueByteIdentity) {
  // E1: the clique-4 infection space; the delta carries rule-body
  // predicates (connected, infected), so the semi-naive resume has real
  // work to do.
  std::string full_db = Clique(4);
  std::string base_db =
      full_db.substr(0, full_db.find("connected(4,2)."));
  std::string delta = full_db.substr(full_db.find("connected(4,2)."));
  ExpectDeltaByteIdentity(kNetworkProgram, base_db, delta);
}

TEST(DeltaEngine, DimeQuarterByteIdentity) {
  // E3: dime/quarter under negation (stalling in the perfect grounder).
  ExpectDeltaByteIdentity(kDimeQuarterProgram,
                          "dime(1). quarter(3).", "dime(2).\n");
}

TEST(DeltaEngine, RandomizedSplitsByteIdentity) {
  // Deterministic pseudo-random splits of the clique-3 database: every
  // k-th fact line becomes the delta.
  std::string full_db = Clique(3);
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < full_db.size()) {
    size_t end = full_db.find('\n', start);
    if (end == std::string::npos) break;
    lines.push_back(full_db.substr(start, end - start + 1));
    start = end + 1;
  }
  for (size_t k : {size_t{2}, size_t{3}}) {
    std::string base_db;
    std::string delta;
    for (size_t i = 0; i < lines.size(); ++i) {
      (i % k == k - 1 ? delta : base_db) += lines[i];
    }
    ExpectDeltaByteIdentity(kNetworkProgram, base_db, delta);
  }
}

TEST(DeltaEngine, SummaryStableDeltaReusesPipeline) {
  auto base = MakeEngine(kNetworkProgram, Clique(4), GrounderKind::kSimple);
  ASSERT_TRUE(base.ok());
  // connected's columns already hold {1..4}; a self-loop adds rows without
  // widening any domain, so the summary stays pipeline-equivalent.
  auto inc = GDatalog::WithDatabaseDelta(*base, "connected(1,1).\n");
  ASSERT_TRUE(inc.ok()) << inc.status().ToString();
  const DeltaStats& stats = inc->delta_stats();
  EXPECT_TRUE(stats.applied);
  EXPECT_EQ(stats.rows_appended, 1u);
  EXPECT_FALSE(stats.summary_changed);
  EXPECT_TRUE(stats.touches_rule_bodies);  // connected is a body predicate
  if (base->opt_stats().enabled) {
    EXPECT_TRUE(stats.pipeline_reused);
  }
}

TEST(DeltaEngine, SummaryChangingDeltaRerunsPipeline) {
  auto base = MakeEngine(kNetworkProgram, Clique(4), GrounderKind::kSimple);
  ASSERT_TRUE(base.ok());
  // A fifth distinct constant saturates connected's column domains to Top:
  // the pass pipeline could now specialize differently, so it must re-run.
  auto inc = GDatalog::WithDatabaseDelta(*base, "connected(7,8).\n");
  ASSERT_TRUE(inc.ok()) << inc.status().ToString();
  EXPECT_TRUE(inc->delta_stats().summary_changed);
  if (base->opt_stats().enabled) {
    EXPECT_FALSE(inc->delta_stats().pipeline_reused);
  }
}

TEST(DeltaEngine, NonBodyPredicateDeltaIsRevalidatable) {
  auto base = MakeEngine(kNetworkProgram, Clique(3) + "meta(1).\n",
                         GrounderKind::kSimple);
  ASSERT_TRUE(base.ok());
  auto inc = GDatalog::WithDatabaseDelta(*base, "meta(2).\n");
  ASSERT_TRUE(inc.ok()) << inc.status().ToString();
  EXPECT_FALSE(inc->delta_stats().touches_rule_bodies);
  ASSERT_EQ(inc->delta_added_facts().size(), 1u);
}

TEST(DeltaEngine, RemovalRejectedAtEngineLevel) {
  auto base = MakeEngine(kNetworkProgram, Clique(3), GrounderKind::kSimple);
  ASSERT_TRUE(base.ok());
  auto inc = GDatalog::WithDatabaseDelta(*base, "-infected(1, 1).\n");
  ASSERT_FALSE(inc.ok());
  EXPECT_EQ(inc.status().code(), StatusCode::kUnsupported);
}

TEST(DeltaGrounder, ExtendStubNamesTheGrounder) {
  auto engine = MakeEngine(kNetworkProgram, Clique(3),
                           GrounderKind::kPerfect);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_FALSE(engine->grounder().SupportsIncremental());
  GroundRuleSet out;
  Status status = engine->grounder().Extend(ChoiceSet(), GroundAtom(), &out);
  EXPECT_EQ(status.code(), StatusCode::kUnsupported);
  EXPECT_NE(status.message().find("perfect"), std::string::npos)
      << status.message();
}

// ---------------------------------------------------------------------------
// DatalogEvaluator::MaterializeDelta
// ---------------------------------------------------------------------------

TEST(DeltaDatalog, ResumeMatchesFromScratch) {
  auto prog = ParseProgram(
      "path(X, Y) :- edge(X, Y).\n"
      "path(X, Z) :- path(X, Y), edge(Y, Z).");
  ASSERT_TRUE(prog.ok());
  auto eval = DatalogEvaluator::Create(std::move(prog).value());
  ASSERT_TRUE(eval.ok());
  Interner* interner = const_cast<Program&>(eval->program()).interner();
  auto db = ParseFacts("edge(1,2). edge(2,3).", interner);
  ASSERT_TRUE(db.ok());
  auto base = eval->Materialize(*db);
  ASSERT_TRUE(base.ok());

  FactStore updated = *db;  // COW copy
  auto delta = ParseFactDelta("edge(3,4).\nedge(0,1).\n", interner);
  ASSERT_TRUE(delta.ok());
  DeltaRanges ranges;
  ASSERT_TRUE(updated.ApplyDelta(*delta, &ranges).ok());

  DatalogEvaluator::Stats stats;
  auto inc = eval->MaterializeDelta(*base, updated, ranges, &stats);
  ASSERT_TRUE(inc.ok()) << inc.status().ToString();
  auto scratch = eval->Materialize(updated);
  ASSERT_TRUE(scratch.ok());

  EXPECT_EQ(inc->consistent, scratch->consistent);
  for (const char* name : {"edge", "path"}) {
    uint32_t pred = interner->Lookup(name);
    ASSERT_EQ(inc->facts.Count(pred), scratch->facts.Count(pred)) << name;
    for (const Tuple& row : scratch->facts.Rows(pred)) {
      EXPECT_TRUE(inc->facts.Contains(pred, row));
    }
  }
  // The resume touched only what the delta derives: far fewer rule
  // applications than the full closure.
  EXPECT_GT(stats.rule_applications, 0u);
}

TEST(DeltaDatalog, NegationIsRejected) {
  auto prog = ParseProgram(
      "reach(Y) :- reach(X), edge(X, Y).\n"
      "reach(X) :- start(X).\n"
      "unreached(X) :- node(X), not reach(X).");
  ASSERT_TRUE(prog.ok());
  auto eval = DatalogEvaluator::Create(std::move(prog).value());
  ASSERT_TRUE(eval.ok());
  Interner* interner = const_cast<Program&>(eval->program()).interner();
  auto db = ParseFacts("start(1). node(1). node(2). edge(1,2).", interner);
  ASSERT_TRUE(db.ok());
  auto base = eval->Materialize(*db);
  ASSERT_TRUE(base.ok());

  FactStore updated = *db;
  auto delta = ParseFactDelta("edge(2,3).\n", interner);
  ASSERT_TRUE(delta.ok());
  DeltaRanges ranges;
  ASSERT_TRUE(updated.ApplyDelta(*delta, &ranges).ok());
  auto inc = eval->MaterializeDelta(*base, updated, ranges);
  ASSERT_FALSE(inc.ok());
  EXPECT_EQ(inc.status().code(), StatusCode::kUnsupported);
}

// ---------------------------------------------------------------------------
// Registry lineage + serving-layer revalidation vs eviction
// ---------------------------------------------------------------------------

TEST(DeltaRegistry, LineageChainsAndFullReplaceResets) {
  ProgramRegistry registry;
  ProgramSpec spec;
  spec.program_text = kNetworkProgram;
  spec.db_text = Clique(3) + "meta(1).\n";
  auto info = registry.Register(spec);
  ASSERT_TRUE(info.ok()) << info.status().ToString();

  auto first = registry.ApplyDatabaseDelta(info->id, "meta(2).\n");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->info.revision, 1u);
  EXPECT_EQ(first->base_revision, 0u);
  EXPECT_TRUE(first->old_lineage_digest.empty());
  EXPECT_FALSE(first->new_lineage_digest.empty());
  EXPECT_FALSE(first->touches_rule_bodies);

  auto second = registry.ApplyDatabaseDelta(info->id, "meta(3).\n");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->info.revision, 2u);
  EXPECT_EQ(second->old_lineage_digest, first->new_lineage_digest);
  EXPECT_NE(second->new_lineage_digest, first->new_lineage_digest);
  auto chained = registry.Find(info->id);
  ASSERT_NE(chained, nullptr);
  EXPECT_EQ(chained->lineage.size(), 2u);
  EXPECT_EQ(chained->lineage[0].base_revision, 0u);
  EXPECT_EQ(chained->lineage[1].base_revision, 1u);

  // A full replacement starts a fresh lineage.
  auto replaced = registry.ReplaceDatabase(info->id, Clique(3));
  ASSERT_TRUE(replaced.ok());
  auto entry = registry.Find(info->id);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->revision, 3u);
  EXPECT_TRUE(entry->lineage.empty());
  EXPECT_TRUE(entry->lineage_digest.empty());

  auto counters = registry.delta_counters();
  EXPECT_EQ(counters.deltas_applied, 2u);
  EXPECT_EQ(counters.rows_appended, 2u);
}

HttpRequest MakeRequest(std::string method, std::string target,
                        std::string body = "") {
  HttpRequest request;
  request.method = std::move(method);
  request.target = std::move(target);
  request.body = std::move(body);
  return request;
}

std::string RegisterProgram(InferenceService& service,
                            const std::string& program,
                            const std::string& db) {
  JsonWriter reg;
  reg.BeginObject().KV("program", program).KV("db", db).EndObject();
  HttpResponse response =
      service.Handle(MakeRequest("POST", "/programs", reg.str()));
  EXPECT_EQ(response.status, 201) << response.body;
  auto doc = JsonValue::Parse(response.body);
  EXPECT_TRUE(doc.ok());
  return doc->Find("id")->string_value();
}

std::string PatchBody(const std::string& delta) {
  JsonWriter body;
  body.BeginObject().KV("delta", delta).EndObject();
  return body.str();
}

long long DeltaField(const HttpResponse& response, const char* field) {
  auto doc = JsonValue::Parse(response.body);
  if (!doc.ok()) return -1;
  const JsonValue* delta = doc->Find("delta");
  if (delta == nullptr) return -1;
  const JsonValue* value = delta->Find(field);
  if (value == nullptr || !value->is_number()) return -1;
  auto n = value->NumberAsInt();
  return n.ok() ? *n : -1;
}

TEST(DeltaService, UntouchedPredicateDeltaRevalidatesCache) {
  // meta is pre-seeded past the domain cap so meta deltas stay
  // pipeline-equivalent AND occur in no rule body -> revalidation path.
  std::string db = Clique(3) +
                   "meta(1).\nmeta(2).\nmeta(3).\nmeta(4).\nmeta(5).\n";
  InferenceService::Options options;
  options.default_chase.num_threads = 1;
  InferenceService service(options);
  std::string id = RegisterProgram(service, kNetworkProgram, db);

  std::string query = "{\"program_id\":\"" + id +
                      "\",\"include_outcomes\":true,"
                      "\"include_models\":true}";
  HttpResponse warm = service.Handle(MakeRequest("POST", "/query", query));
  ASSERT_EQ(warm.status, 200) << warm.body;
  EXPECT_EQ(service.cache().stats().misses, 1u);

  HttpResponse patched = service.Handle(MakeRequest(
      "PATCH", "/programs/" + id + "/db", PatchBody("meta(99).\n")));
  ASSERT_EQ(patched.status, 200) << patched.body;
  EXPECT_EQ(DeltaField(patched, "spaces_revalidated"), 1);
  EXPECT_EQ(DeltaField(patched, "spaces_evicted"), 0);
  EXPECT_EQ(DeltaField(patched, "rows_appended"), 1);

  // The next identical query is served from the revalidated entry: no new
  // chase (misses unchanged), and its document equals what a from-scratch
  // engine on the merged database produces.
  HttpResponse after = service.Handle(MakeRequest("POST", "/query", query));
  ASSERT_EQ(after.status, 200);
  EXPECT_EQ(service.cache().stats().misses, 1u);
  EXPECT_EQ(service.cache().stats().revalidated, 1u);

  InferenceService fresh_service(options);
  std::string fresh_id =
      RegisterProgram(fresh_service, kNetworkProgram, db + "meta(99).\n");
  std::string fresh_query = "{\"program_id\":\"" + fresh_id +
                            "\",\"include_outcomes\":true,"
                            "\"include_models\":true}";
  HttpResponse fresh =
      fresh_service.Handle(MakeRequest("POST", "/query", fresh_query));
  ASSERT_EQ(fresh.status, 200);
  EXPECT_EQ(after.body, fresh.body);
}

TEST(DeltaService, BodyPredicateDeltaEvictsCache) {
  InferenceService::Options options;
  options.default_chase.num_threads = 1;
  InferenceService service(options);
  std::string id = RegisterProgram(service, kNetworkProgram, Clique(3));

  std::string query = "{\"program_id\":\"" + id + "\"}";
  ASSERT_EQ(service.Handle(MakeRequest("POST", "/query", query)).status, 200);
  EXPECT_EQ(service.cache().stats().misses, 1u);

  // connected occurs in rule bodies: the cached space may be stale.
  HttpResponse patched = service.Handle(MakeRequest(
      "PATCH", "/programs/" + id + "/db", PatchBody("connected(1,1).\n")));
  ASSERT_EQ(patched.status, 200) << patched.body;
  EXPECT_EQ(DeltaField(patched, "spaces_revalidated"), 0);
  EXPECT_EQ(DeltaField(patched, "spaces_evicted"), 1);

  ASSERT_EQ(service.Handle(MakeRequest("POST", "/query", query)).status, 200);
  EXPECT_EQ(service.cache().stats().misses, 2u);  // had to re-chase
}

TEST(DeltaService, RemovalDeltaReturns501) {
  InferenceService::Options options;
  InferenceService service(options);
  std::string id = RegisterProgram(service, kNetworkProgram, Clique(3));
  HttpResponse response = service.Handle(MakeRequest(
      "PATCH", "/programs/" + id + "/db", PatchBody("-infected(1, 1).\n")));
  EXPECT_EQ(response.status, 501) << response.body;
}

TEST(DeltaService, StatsExposeDeltaCounters) {
  InferenceService::Options options;
  InferenceService service(options);
  std::string id = RegisterProgram(service, kNetworkProgram,
                                   Clique(3) + "meta(1).\n");
  ASSERT_EQ(service
                .Handle(MakeRequest("PATCH", "/programs/" + id + "/db",
                                    PatchBody("meta(2).\n")))
                .status,
            200);
  HttpResponse stats = service.Handle(MakeRequest("GET", "/stats"));
  ASSERT_EQ(stats.status, 200);
  auto doc = JsonValue::Parse(stats.body);
  ASSERT_TRUE(doc.ok());
  const JsonValue* delta = doc->Find("delta");
  ASSERT_NE(delta, nullptr);
  ASSERT_NE(delta->Find("patches"), nullptr);
  auto patches = delta->Find("patches")->NumberAsInt();
  ASSERT_TRUE(patches.ok());
  EXPECT_EQ(*patches, 1);
  const JsonValue* cache = doc->Find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_NE(cache->Find("revalidated"), nullptr);
}

}  // namespace
}  // namespace gdlog
