// The serving subsystem: ProgramRegistry lifecycle, InferenceCache
// hit/miss/single-flight/eviction semantics, the InferenceService endpoint
// surface (including its byte-identity contract with `gdlog_cli --json`),
// and the HTTP layer over real loopback sockets — keep-alive, 4xx paths,
// request limits, concurrent clients, graceful shutdown.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "gdatalog/export.h"
#include "server/cache.h"
#include "server/http.h"
#include "server/registry.h"
#include "server/service.h"
#include "util/json.h"
#include "util/socket.h"

namespace gdlog {
namespace {

constexpr const char* kCoinProgram =
    "coin(flip<0.5>). win :- coin(1).\n";

constexpr const char* kNetworkProgram =
    "infected(Y, flip<0.1>[X, Y]) :- infected(X, 1), connected(X, Y).\n"
    "uninfected(X) :- router(X), not infected(X, 1).\n"
    ":- uninfected(X), uninfected(Y), connected(X, Y).\n";

constexpr const char* kClique3Db =
    "router(1). router(2). router(3).\n"
    "connected(1,2). connected(2,1). connected(1,3). connected(3,1).\n"
    "connected(2,3). connected(3,2).\n"
    "infected(1, 1).\n";

// ---------------------------------------------------------------------------
// ProgramRegistry
// ---------------------------------------------------------------------------

TEST(ProgramRegistry, RegisterFindRemove) {
  ProgramRegistry registry;
  ProgramSpec spec;
  spec.program_text = kCoinProgram;
  auto info = registry.Register(spec);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->created);
  EXPECT_EQ(info->revision, 0u);
  EXPECT_EQ(registry.size(), 1u);

  auto entry = registry.Find(info->id);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->spec.program_text, kCoinProgram);

  ASSERT_TRUE(registry.Remove(info->id).ok());
  EXPECT_EQ(registry.Find(info->id), nullptr);
  EXPECT_EQ(registry.Remove(info->id).code(), StatusCode::kNotFound);
}

TEST(ProgramRegistry, RegistrationIsIdempotentPerSpec) {
  ProgramRegistry registry;
  ProgramSpec spec;
  spec.program_text = kCoinProgram;
  auto first = registry.Register(spec);
  ASSERT_TRUE(first.ok());
  auto second = registry.Register(spec);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->id, second->id);
  EXPECT_FALSE(second->created);
  EXPECT_EQ(registry.size(), 1u);

  // A different grounder is a different spec and gets its own entry.
  spec.grounder = GrounderKind::kSimple;
  auto third = registry.Register(spec);
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third->created);
  EXPECT_NE(third->id, first->id);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(ProgramRegistry, RegisterRejectsBadPrograms) {
  ProgramRegistry registry;
  ProgramSpec spec;
  spec.program_text = "this is not a program";
  auto info = registry.Register(spec);
  ASSERT_FALSE(info.ok());
  EXPECT_EQ(registry.size(), 0u);
}

TEST(ProgramRegistry, ReplaceDatabaseBumpsRevisionAndKeepsId) {
  ProgramRegistry registry;
  ProgramSpec spec;
  spec.program_text = kCoinProgram;
  auto info = registry.Register(spec);
  ASSERT_TRUE(info.ok());

  auto old_entry = registry.Find(info->id);
  auto replaced = registry.ReplaceDatabase(info->id, "");
  ASSERT_TRUE(replaced.ok());
  EXPECT_EQ(replaced->id, info->id);
  EXPECT_EQ(replaced->revision, 1u);

  // The old entry stays alive for holders; the registry serves the new one.
  EXPECT_EQ(old_entry->revision, 0u);
  EXPECT_EQ(registry.Find(info->id)->revision, 1u);
  EXPECT_EQ(registry.ReplaceDatabase("nope", "").status().code(),
            StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// InferenceCache
// ---------------------------------------------------------------------------

OutcomeSpace SpaceWithOutcomes(size_t n) {
  OutcomeSpace space;
  space.outcomes.resize(n);
  return space;
}

TEST(InferenceCache, HitAfterMiss) {
  InferenceCache cache(1 << 20);
  std::atomic<int> computes{0};
  auto compute = [&]() -> Result<OutcomeSpace> {
    ++computes;
    return SpaceWithOutcomes(2);
  };
  auto a = cache.LookupOrCompute("k1", compute);
  ASSERT_TRUE(a.ok());
  auto b = cache.LookupOrCompute("k1", compute);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);  // the same shared space, not a copy
  EXPECT_EQ(computes.load(), 1);
  auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(InferenceCache, SingleFlightCoalescesConcurrentIdenticalLookups) {
  InferenceCache cache(1 << 20);
  std::atomic<int> computes{0};
  auto slow_compute = [&]() -> Result<OutcomeSpace> {
    ++computes;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    return SpaceWithOutcomes(1);
  };
  constexpr int kThreads = 8;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      auto space = cache.LookupOrCompute("same-key", slow_compute);
      if (space.ok() && (*space)->outcomes.size() == 1) ++ok;
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ok.load(), kThreads);
  EXPECT_EQ(computes.load(), 1) << "N identical lookups must run one chase";
  auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits + stats.coalesced, uint64_t(kThreads - 1));
}

TEST(InferenceCache, FailedComputeIsSharedButNeverCached) {
  InferenceCache cache(1 << 20);
  std::atomic<int> computes{0};
  auto failing = [&]() -> Result<OutcomeSpace> {
    ++computes;
    return Status::Internal("chase exploded");
  };
  EXPECT_FALSE(cache.LookupOrCompute("k", failing).ok());
  EXPECT_FALSE(cache.LookupOrCompute("k", failing).ok());
  // Each sequential failure recomputes (errors are not negative-cached)...
  EXPECT_EQ(computes.load(), 2);
  // ...and nothing was stored.
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().inserts, 0u);
}

TEST(InferenceCache, EvictsLeastRecentlyUsedToHoldTheMemoryBound) {
  // Each 4-outcome space costs a few hundred bytes; a ~3-entry budget
  // forces LRU eviction on the fourth insert.
  size_t unit = InferenceCache::ApproxBytes(SpaceWithOutcomes(4));
  InferenceCache cache(3 * unit + unit / 2);
  auto compute = []() -> Result<OutcomeSpace> {
    return SpaceWithOutcomes(4);
  };
  ASSERT_TRUE(cache.LookupOrCompute("a", compute).ok());
  ASSERT_TRUE(cache.LookupOrCompute("b", compute).ok());
  ASSERT_TRUE(cache.LookupOrCompute("c", compute).ok());
  // Touch "a" so "b" is the least recently used.
  ASSERT_TRUE(cache.LookupOrCompute("a", compute).ok());
  ASSERT_TRUE(cache.LookupOrCompute("d", compute).ok());
  auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_LE(stats.bytes, stats.capacity_bytes);
  // "b" was evicted; "a" survived its touch.
  ASSERT_TRUE(cache.LookupOrCompute("a", compute).ok());
  EXPECT_EQ(cache.stats().misses, 4u);  // a, b, c, d — not the re-touches
  ASSERT_TRUE(cache.LookupOrCompute("b", compute).ok());
  EXPECT_EQ(cache.stats().misses, 5u);  // b again: it was gone
}

TEST(InferenceCache, OversizedSpacesAreServedButNotCached) {
  InferenceCache cache(64);  // smaller than any real space
  std::atomic<int> computes{0};
  auto compute = [&]() -> Result<OutcomeSpace> {
    ++computes;
    return SpaceWithOutcomes(8);
  };
  ASSERT_TRUE(cache.LookupOrCompute("k", compute).ok());
  ASSERT_TRUE(cache.LookupOrCompute("k", compute).ok());
  EXPECT_EQ(computes.load(), 2);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(InferenceCache, ErasePrefixDropsOneProgramsLines) {
  InferenceCache cache(1 << 20);
  auto compute = []() -> Result<OutcomeSpace> {
    return SpaceWithOutcomes(1);
  };
  ASSERT_TRUE(cache.LookupOrCompute("p1|rev=0|x", compute).ok());
  ASSERT_TRUE(cache.LookupOrCompute("p1|rev=1|x", compute).ok());
  ASSERT_TRUE(cache.LookupOrCompute("p2|rev=0|x", compute).ok());
  EXPECT_EQ(cache.ErasePrefix("p1|"), 2u);
  auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 2u);
}

TEST(InferenceCache, FingerprintSeparatesSemanticOptions) {
  ChaseOptions base;
  std::string key = InferenceCache::Fingerprint("p1", 0, base);
  // Result-affecting knobs change the key...
  for (auto mutate : std::vector<void (*)(ChaseOptions&)>{
           [](ChaseOptions& o) { o.max_outcomes = 7; },
           [](ChaseOptions& o) { o.max_depth = 7; },
           [](ChaseOptions& o) { o.support_limit = 7; },
           [](ChaseOptions& o) { o.min_path_prob = 1e-9; },
           [](ChaseOptions& o) { o.trigger_shuffle_seed = 7; },
           [](ChaseOptions& o) { o.solver_max_nodes = 7; },
       }) {
    ChaseOptions options = base;
    mutate(options);
    EXPECT_NE(InferenceCache::Fingerprint("p1", 0, options), key);
  }
  // ...revision and id too...
  EXPECT_NE(InferenceCache::Fingerprint("p1", 1, base), key);
  EXPECT_NE(InferenceCache::Fingerprint("p2", 0, base), key);
  // ...while purely operational knobs do not.
  ChaseOptions threads = base;
  threads.num_threads = 16;
  threads.incremental = false;
  threads.keep_groundings = true;
  EXPECT_EQ(InferenceCache::Fingerprint("p1", 0, threads), key);
}

// ---------------------------------------------------------------------------
// InferenceService (no sockets)
// ---------------------------------------------------------------------------

HttpRequest MakeRequest(std::string method, std::string target,
                        std::string body = "") {
  HttpRequest request;
  request.method = std::move(method);
  request.target = std::move(target);
  request.body = std::move(body);
  return request;
}

InferenceService::Options ServiceOptions() {
  InferenceService::Options options;
  options.default_chase.num_threads = 1;
  return options;
}

/// Registers a program and returns its id.
std::string MustRegister(InferenceService& service, const char* program,
                         const char* db = "") {
  JsonWriter body;
  body.BeginObject().KV("program", program).KV("db", db).EndObject();
  HttpResponse response =
      service.Handle(MakeRequest("POST", "/programs", body.str()));
  EXPECT_EQ(response.status, 201) << response.body;
  auto doc = JsonValue::Parse(response.body);
  EXPECT_TRUE(doc.ok());
  const JsonValue* id = doc->Find("id");
  EXPECT_NE(id, nullptr);
  return id->string_value();
}

TEST(InferenceService, QueryBodyIsByteIdenticalToCliJsonExport) {
  InferenceService service(ServiceOptions());
  std::string id = MustRegister(service, kNetworkProgram, kClique3Db);

  // What gdlog_cli --json prints for the same program/DB/default budgets
  // (RunExact → OutcomeSpaceToJson + "\n", include flags all false).
  auto engine = GDatalog::Create(kNetworkProgram, kClique3Db);
  ASSERT_TRUE(engine.ok());
  ChaseOptions chase;
  chase.num_threads = 1;
  auto space = engine->Infer(chase);
  ASSERT_TRUE(space.ok());
  JsonExportOptions bare;
  bare.include_outcomes = false;
  bare.include_models = false;
  bare.include_events = false;
  std::string cli_bare =
      OutcomeSpaceToJson(*space, engine->translated(),
                         engine->program().interner(), bare) +
      "\n";
  JsonExportOptions full;
  full.include_outcomes = true;
  full.include_models = true;
  full.include_events = true;
  std::string cli_full =
      OutcomeSpaceToJson(*space, engine->translated(),
                         engine->program().interner(), full) +
      "\n";

  HttpResponse bare_response = service.Handle(MakeRequest(
      "POST", "/query", std::string(R"({"program_id":")") + id + "\"}"));
  ASSERT_EQ(bare_response.status, 200) << bare_response.body;
  EXPECT_EQ(bare_response.body, cli_bare);

  HttpResponse full_response = service.Handle(MakeRequest(
      "POST", "/query",
      std::string(R"({"program_id":")") + id +
          R"(","include_outcomes":true,"include_models":true,)"
          R"("include_events":true})"));
  ASSERT_EQ(full_response.status, 200) << full_response.body;
  EXPECT_EQ(full_response.body, cli_full);
}

TEST(InferenceService, RepeatedQueryIsServedFromTheCache) {
  InferenceService service(ServiceOptions());
  std::string id = MustRegister(service, kCoinProgram);
  std::string body = std::string(R"({"program_id":")") + id + "\"}";
  HttpResponse first = service.Handle(MakeRequest("POST", "/query", body));
  HttpResponse second = service.Handle(MakeRequest("POST", "/query", body));
  ASSERT_EQ(first.status, 200);
  ASSERT_EQ(second.status, 200);
  EXPECT_EQ(first.body, second.body);
  auto stats = service.cache().stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  // Different budgets are a different space: a fresh chase.
  HttpResponse other = service.Handle(MakeRequest(
      "POST", "/query",
      std::string(R"({"program_id":")") + id +
          R"(","options":{"support_limit":32}})"));
  ASSERT_EQ(other.status, 200);
  EXPECT_EQ(service.cache().stats().misses, 2u);
}

TEST(InferenceService, MarginalQueriesMatchOutcomeSpaceBounds) {
  InferenceService service(ServiceOptions());
  std::string id = MustRegister(service, kCoinProgram);
  HttpResponse response = service.Handle(MakeRequest(
      "POST", "/query",
      std::string(R"({"program_id":")") + id +
          R"x(","queries":["win","never_mentioned(3)"]})x"));
  ASSERT_EQ(response.status, 200) << response.body;
  auto doc = JsonValue::Parse(response.body);
  ASSERT_TRUE(doc.ok());
  const JsonValue* marginals = doc->Find("marginals");
  ASSERT_NE(marginals, nullptr);
  ASSERT_EQ(marginals->array().size(), 2u);
  const JsonValue& win = marginals->array()[0];
  EXPECT_EQ(win.Find("lower")->Find("rational")->string_value(), "1/2");
  EXPECT_EQ(win.Find("upper")->Find("rational")->string_value(), "1/2");
  // An atom over names the program never interned has marginal [0, 0].
  const JsonValue& unknown = marginals->array()[1];
  EXPECT_EQ(unknown.Find("lower")->Find("rational")->string_value(), "0");
  EXPECT_EQ(unknown.Find("upper")->Find("rational")->string_value(), "0");
}

TEST(InferenceService, SampleEndpointEstimatesAndNeverCaches) {
  InferenceService service(ServiceOptions());
  std::string id = MustRegister(service, kCoinProgram);
  std::string body = std::string(R"({"program_id":")") + id +
                     R"(","samples":400,"seed":11,"queries":["win"]})";
  HttpResponse response =
      service.Handle(MakeRequest("POST", "/sample", body));
  ASSERT_EQ(response.status, 200) << response.body;
  auto doc = JsonValue::Parse(response.body);
  ASSERT_TRUE(doc.ok());
  EXPECT_DOUBLE_EQ(doc->Find("prob_consistent")->Find("mean")->
                       NumberAsDouble(),
                   1.0);
  double win = doc->Find("marginals")->array()[0].Find("lower")->
               Find("mean")->NumberAsDouble();
  EXPECT_NEAR(win, 0.5, 0.15);
  // Monte-Carlo runs bypass the cache entirely.
  EXPECT_EQ(service.cache().stats().misses, 0u);
  EXPECT_EQ(service.cache().stats().hits, 0u);
  // Sample counts above the server cap are rejected.
  HttpResponse too_many = service.Handle(MakeRequest(
      "POST", "/sample",
      std::string(R"({"program_id":")") + id +
          R"(","samples":99000000000})"));
  EXPECT_EQ(too_many.status, 400);
}

TEST(InferenceService, DatabaseReplacementInvalidatesCachedSpaces) {
  InferenceService service(ServiceOptions());
  std::string id = MustRegister(service, kNetworkProgram, kClique3Db);
  std::string query = std::string(R"({"program_id":")") + id + "\"}";
  HttpResponse before =
      service.Handle(MakeRequest("POST", "/query", query));
  ASSERT_EQ(before.status, 200);
  // Shrink the network to two routers: a different outcome space.
  HttpResponse replaced = service.Handle(MakeRequest(
      "PUT", "/programs/" + id + "/db",
      R"({"db":"router(1). router(2). connected(1,2). connected(2,1). )"
      R"(infected(1, 1)."})"));
  ASSERT_EQ(replaced.status, 200) << replaced.body;
  EXPECT_EQ(service.cache().stats().entries, 0u);
  HttpResponse after = service.Handle(MakeRequest("POST", "/query", query));
  ASSERT_EQ(after.status, 200);
  EXPECT_NE(after.body, before.body);
  EXPECT_EQ(service.cache().stats().misses, 2u);
}

TEST(InferenceService, MalformedRequestsGetFourHundreds) {
  InferenceService service(ServiceOptions());
  std::string id = MustRegister(service, kCoinProgram);
  struct Case {
    const char* name;
    HttpRequest request;
    int status;
  };
  std::vector<Case> cases;
  cases.push_back({"query body is not json",
                   MakeRequest("POST", "/query", "not json"), 400});
  cases.push_back({"query body is not an object",
                   MakeRequest("POST", "/query", "[1,2]"), 400});
  cases.push_back({"missing program_id",
                   MakeRequest("POST", "/query", "{}"), 400});
  cases.push_back({"unknown program id",
                   MakeRequest("POST", "/query",
                               R"({"program_id":"p999"})"), 404});
  cases.push_back({"bad options type",
                   MakeRequest("POST", "/query",
                               std::string(R"({"program_id":")") + id +
                                   R"(","options":{"max_depth":"x"}})"),
                   400});
  cases.push_back({"queries not an array",
                   MakeRequest("POST", "/query",
                               std::string(R"({"program_id":")") + id +
                                   R"(","queries":"win"})"),
                   400});
  cases.push_back({"query atom is not an atom",
                   MakeRequest("POST", "/query",
                               std::string(R"({"program_id":")") + id +
                                   R"(","queries":["not an atom ("]})"),
                   400});
  cases.push_back({"register without program",
                   MakeRequest("POST", "/programs", R"({"db":""})"), 400});
  cases.push_back({"register with parse error",
                   MakeRequest("POST", "/programs",
                               R"({"program":"syntax error here"})"),
                   400});
  cases.push_back({"register with bad grounder",
                   MakeRequest("POST", "/programs",
                               R"({"program":"a.","grounder":"quantum"})"),
                   400});
  cases.push_back({"unknown path",
                   MakeRequest("GET", "/nothing"), 404});
  cases.push_back({"unknown program subresource",
                   MakeRequest("GET", "/programs/p1/tea"), 404});
  cases.push_back({"wrong method on /query",
                   MakeRequest("GET", "/query"), 405});
  cases.push_back({"wrong method on /healthz",
                   MakeRequest("POST", "/healthz", "{}"), 405});
  cases.push_back({"delete unknown program",
                   MakeRequest("DELETE", "/programs/p999"), 404});
  cases.push_back({"sample without samples",
                   MakeRequest("POST", "/sample",
                               std::string(R"({"program_id":")") + id +
                                   "\"}"),
                   400});
  for (const Case& c : cases) {
    HttpResponse response = service.Handle(c.request);
    EXPECT_EQ(response.status, c.status)
        << c.name << ": " << response.body;
    if (response.status >= 400) {
      auto doc = JsonValue::Parse(response.body);
      ASSERT_TRUE(doc.ok()) << c.name;
      EXPECT_NE(doc->Find("error"), nullptr) << c.name;
    }
  }
}

// ---------------------------------------------------------------------------
// HTTP server over real sockets
// ---------------------------------------------------------------------------

/// An HttpServer + InferenceService running Serve() on a background
/// thread; shuts down and joins on destruction.
class LiveServer {
 public:
  explicit LiveServer(HttpServerOptions options = {}) {
    service_ = std::make_unique<InferenceService>(ServiceOptions());
    options.workers = options.workers != 0 ? options.workers : 8;
    auto server = HttpServer::Create(
        options,
        [this](const HttpRequest& request) {
          return service_->Handle(request);
        });
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::make_unique<HttpServer>(std::move(*server));
    thread_ = std::thread([this] {
      Status status = server_->Serve();
      EXPECT_TRUE(status.ok()) << status.ToString();
    });
  }

  ~LiveServer() {
    server_->Shutdown();
    thread_.join();
  }

  int port() const { return server_->port(); }
  InferenceService& service() { return *service_; }

 private:
  std::unique_ptr<InferenceService> service_;
  std::unique_ptr<HttpServer> server_;
  std::thread thread_;
};

TEST(HttpServer, HealthzAndKeepAliveOnOneConnection) {
  LiveServer server;
  auto client = HttpClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  // Two requests over the same connection exercise keep-alive framing.
  auto first = client->Request("GET", "/healthz");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->status, 200);
  auto health = JsonValue::Parse(first->body);
  ASSERT_TRUE(health.ok());
  const JsonValue* health_status = health->Find("status");
  ASSERT_NE(health_status, nullptr);
  EXPECT_EQ(health_status->string_value(), "ok");
  EXPECT_NE(health->Find("version"), nullptr);
  EXPECT_NE(health->Find("uptime_s"), nullptr);
  EXPECT_NE(health->Find("pid"), nullptr);
  auto second = client->Request("GET", "/stats");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->status, 200);
  auto doc = JsonValue::Parse(second->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_NE(doc->Find("cache"), nullptr);
}

TEST(HttpServer, ConcurrentIdenticalQueriesRunOneChase) {
  LiveServer server;
  auto setup = HttpClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(setup.ok());
  JsonWriter reg;
  reg.BeginObject().KV("program", kNetworkProgram).KV("db", kClique3Db)
      .EndObject();
  auto registered = setup->Request("POST", "/programs", reg.str());
  ASSERT_TRUE(registered.ok());
  ASSERT_EQ(registered->status, 201) << registered->body;
  auto doc = JsonValue::Parse(registered->body);
  ASSERT_TRUE(doc.ok());
  std::string body = std::string(R"({"program_id":")") +
                     doc->Find("id")->string_value() + "\"}";

  constexpr int kClients = 6;
  constexpr int kRequestsEach = 4;
  std::atomic<int> ok{0};
  std::atomic<int> mismatches{0};
  std::string reference;
  std::mutex mu;
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&] {
      auto client = HttpClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) return;
      for (int r = 0; r < kRequestsEach; ++r) {
        auto response = client->Request("POST", "/query", body);
        if (!response.ok() || response->status != 200) continue;
        std::lock_guard<std::mutex> lock(mu);
        if (reference.empty()) {
          reference = response->body;
        } else if (response->body != reference) {
          ++mismatches;
        }
        ++ok;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ok.load(), kClients * kRequestsEach);
  EXPECT_EQ(mismatches.load(), 0);
  auto stats = server.service().cache().stats();
  EXPECT_EQ(stats.misses, 1u) << "identical concurrent queries must "
                                 "coalesce onto one chase";
  EXPECT_EQ(stats.hits + stats.coalesced,
            uint64_t(kClients * kRequestsEach - 1));
}

TEST(InferenceService, V1PathsServeWithoutDeprecationHeaders) {
  InferenceService service(ServiceOptions());
  HttpResponse response = service.Handle(MakeRequest("GET", "/v1/healthz"));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.FindHeader("Deprecation"), nullptr);
  // /v1 prefixes every endpoint, not just the fixed-path ones.
  std::string id = MustRegister(service, kCoinProgram);
  HttpResponse query = service.Handle(MakeRequest(
      "POST", "/v1/query",
      std::string(R"({"program_id":")") + id + "\"}"));
  EXPECT_EQ(query.status, 200) << query.body;
  EXPECT_EQ(query.FindHeader("Deprecation"), nullptr);
}

TEST(InferenceService, UnversionedAliasesCarryDeprecationAndSuccessor) {
  InferenceService service(ServiceOptions());
  HttpResponse response = service.Handle(MakeRequest("GET", "/healthz"));
  EXPECT_EQ(response.status, 200);
  const std::string* deprecation = response.FindHeader("Deprecation");
  ASSERT_NE(deprecation, nullptr);
  EXPECT_EQ(*deprecation, "true");
  const std::string* link = response.FindHeader("Link");
  ASSERT_NE(link, nullptr);
  EXPECT_NE(link->find("/v1/healthz"), std::string::npos);
  EXPECT_NE(link->find("successor-version"), std::string::npos);

  // The alias is behavior-identical: same schema as the /v1 path (the
  // bodies themselves differ only in the live uptime_s reading).
  HttpResponse versioned = service.Handle(MakeRequest("GET", "/v1/healthz"));
  auto alias_doc = JsonValue::Parse(response.body);
  auto v1_doc = JsonValue::Parse(versioned.body);
  ASSERT_TRUE(alias_doc.ok());
  ASSERT_TRUE(v1_doc.ok());
  const JsonValue* alias_status = alias_doc->Find("status");
  const JsonValue* v1_status = v1_doc->Find("status");
  ASSERT_NE(alias_status, nullptr);
  ASSERT_NE(v1_status, nullptr);
  EXPECT_EQ(alias_status->string_value(), v1_status->string_value());
}

TEST(InferenceService, StatsAreNestedPerSubsystem) {
  InferenceService service(ServiceOptions());
  HttpResponse response = service.Handle(MakeRequest("GET", "/v1/stats"));
  ASSERT_EQ(response.status, 200);
  auto doc = JsonValue::Parse(response.body);
  ASSERT_TRUE(doc.ok());
  const JsonValue* server = doc->Find("server");
  ASSERT_NE(server, nullptr);
  const JsonValue* requests = server->Find("requests");
  ASSERT_NE(requests, nullptr);
  EXPECT_NE(requests->Find("total"), nullptr);
  const JsonValue* registry = doc->Find("registry");
  ASSERT_NE(registry, nullptr);
  EXPECT_NE(registry->Find("programs"), nullptr);
  const JsonValue* cache = doc->Find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_NE(cache->Find("hits"), nullptr);
  EXPECT_NE(cache->Find("revalidated"), nullptr);
  const JsonValue* opt = doc->Find("opt");
  ASSERT_NE(opt, nullptr);
  EXPECT_NE(opt->Find("demand_engines_built"), nullptr);
  const JsonValue* delta = doc->Find("delta");
  ASSERT_NE(delta, nullptr);
  EXPECT_NE(delta->Find("spaces_revalidated"), nullptr);
  const JsonValue* fleet = doc->Find("fleet");
  ASSERT_NE(fleet, nullptr);
  EXPECT_NE(fleet->Find("jobs"), nullptr);
  EXPECT_NE(fleet->Find("shard_requests"), nullptr);
}

TEST(HttpServer, RejectsOversizedBodiesWith413) {
  HttpServerOptions options;
  options.max_body_bytes = 512;
  LiveServer server(options);
  auto client = HttpClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  std::string big(2048, 'x');
  auto response = client->Request("POST", "/query", big);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 413);
  // Framing-layer rejections use the same error envelope as the service.
  auto doc = JsonValue::Parse(response->body);
  ASSERT_TRUE(doc.ok()) << response->body;
  const JsonValue* error = doc->Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_NE(error->Find("code"), nullptr);
  EXPECT_NE(error->Find("message"), nullptr);
}

TEST(HttpServer, RejectsOversizedHeadersWith431) {
  LiveServer server;
  auto conn = Connection::ConnectTcp("127.0.0.1", server.port(), 5000);
  ASSERT_TRUE(conn.ok());
  std::string request = "GET /healthz HTTP/1.1\r\nX-Big: ";
  request += std::string(128 * 1024, 'a');
  ASSERT_TRUE(conn->WriteAll(request, 5000).ok());
  char buf[1024];
  auto n = conn->ReadSome(buf, sizeof(buf), 5000);
  ASSERT_TRUE(n.ok());
  std::string head(buf, *n);
  EXPECT_NE(head.find("431"), std::string::npos);
  EXPECT_NE(head.find("\"error\""), std::string::npos);
}

TEST(HttpServer, RejectsMalformedRequestLinesWith400) {
  for (const char* raw : {
           "GARBAGE\r\n\r\n",
           "GET /healthz HTTP/2.0\r\n\r\n",
           "GET nothing HTTP/1.1\r\n\r\n",
           "GET /healthz HTTP/1.1\r\nno colon here\r\n\r\n",
           "GET /healthz HTTP/1.1\r\nContent-Length: 12x\r\n\r\n",
       }) {
    LiveServer server;
    auto conn = Connection::ConnectTcp("127.0.0.1", server.port(), 5000);
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn->WriteAll(raw, 5000).ok());
    char buf[256];
    auto n = conn->ReadSome(buf, sizeof(buf), 5000);
    ASSERT_TRUE(n.ok()) << raw;
    std::string head(buf, *n);
    EXPECT_NE(head.find("HTTP/1.1 400"), std::string::npos) << raw;
  }
}

TEST(HttpServer, RejectsDuplicateContentLength) {
  // Duplicate Content-Length is the classic request-smuggling shape; the
  // server must refuse rather than pick one copy.
  LiveServer server;
  auto conn = Connection::ConnectTcp("127.0.0.1", server.port(), 5000);
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->WriteAll("POST /query HTTP/1.1\r\n"
                             "Content-Length: 2\r\n"
                             "Content-Length: 4\r\n\r\n{}",
                             5000)
                  .ok());
  char buf[256];
  auto n = conn->ReadSome(buf, sizeof(buf), 5000);
  ASSERT_TRUE(n.ok());
  EXPECT_NE(std::string(buf, *n).find("HTTP/1.1 400"), std::string::npos);
}

TEST(InferenceService, ClampsClientThreadCounts) {
  // options.num_threads sizes a real thread pool; an absurd client value
  // must be clamped to the hardware, not honored (std::thread would
  // abort the daemon).
  InferenceService service(ServiceOptions());
  std::string id = MustRegister(service, kCoinProgram);
  HttpResponse response = service.Handle(MakeRequest(
      "POST", "/query",
      std::string(R"({"program_id":")") + id +
          R"(","options":{"num_threads":1000000000}})"));
  EXPECT_EQ(response.status, 200) << response.body;
}

TEST(HttpServer, TransferEncodingIsNotImplemented) {
  LiveServer server;
  auto conn = Connection::ConnectTcp("127.0.0.1", server.port(), 5000);
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->WriteAll("POST /query HTTP/1.1\r\n"
                             "Transfer-Encoding: chunked\r\n\r\n",
                             5000)
                  .ok());
  // Status line and error envelope may arrive in separate TCP segments;
  // keep reading until the body shows up (EOF or timeout otherwise).
  char buf[1024];
  std::string head;
  while (head.find("\"error\"") == std::string::npos) {
    auto n = conn->ReadSome(buf, sizeof(buf), 5000);
    ASSERT_TRUE(n.ok());
    if (*n == 0) break;
    head.append(buf, *n);
  }
  EXPECT_NE(head.find("501"), std::string::npos);
  EXPECT_NE(head.find("\"error\""), std::string::npos);
}

TEST(HttpServer, ChunkedStreamingResponseDeliversLinesIncrementally) {
  // A handler that streams three NDJSON lines chunk by chunk.
  HttpServerOptions options;
  options.workers = 2;
  auto server = HttpServer::Create(
      options, [](const HttpRequest& request) {
        HttpResponse response;
        if (request.target == "/boom") {
          response.status = 500;
          response.body = HttpErrorBody("internal", "nope");
          return response;
        }
        response.content_type = "application/x-ndjson";
        response.stream =
            [](const HttpResponse::ChunkSink& emit) -> Status {
          for (const char* line : {"one\n", "two\n", "three\n"}) {
            GDLOG_RETURN_IF_ERROR(emit(line));
          }
          return Status::OK();
        };
        return response;
      });
  ASSERT_TRUE(server.ok());
  std::thread serving([&server] { EXPECT_TRUE(server->Serve().ok()); });

  auto client = HttpClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  std::vector<std::string> lines;
  auto streamed = client->RequestStreamingLines(
      "GET", "/stream", "", /*deadline_ms=*/5000, {},
      [&](std::string_view line) {
        lines.emplace_back(line);
        return Status::OK();
      });
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  EXPECT_EQ(streamed->status, 200);
  EXPECT_TRUE(streamed->body.empty());
  EXPECT_EQ(lines, (std::vector<std::string>{"one", "two", "three"}));

  // The buffering client decodes the same chunked response whole, and the
  // connection stays keep-alive across both framings.
  auto buffered = client->Request("GET", "/stream");
  ASSERT_TRUE(buffered.ok()) << buffered.status().ToString();
  EXPECT_EQ(buffered->body, "one\ntwo\nthree\n");

  // Non-200s are never delivered line-by-line: the error envelope arrives
  // intact in body and the sink stays silent.
  size_t error_lines = 0;
  auto error = client->RequestStreamingLines(
      "GET", "/boom", "", /*deadline_ms=*/5000, {},
      [&](std::string_view) {
        ++error_lines;
        return Status::OK();
      });
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->status, 500);
  EXPECT_EQ(error_lines, 0u);
  EXPECT_NE(error->body.find("\"error\""), std::string::npos);

  server->Shutdown();
  serving.join();
}

TEST(HttpServer, TruncatedChunkedResponseIsBudgetExhausted) {
  // A raw fake server: well-formed chunked head, one complete line, one
  // declared-but-unfinished chunk, then EOF before the terminal chunk.
  auto listener = ListenSocket::BindTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  std::thread peer([&listener] {
    auto conn = listener->Accept(-1);
    ASSERT_TRUE(conn.ok() && conn->has_value());
    char buf[4096];
    (void)(*conn)->ReadSome(buf, sizeof buf, 1000);
    const std::string response =
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: application/x-ndjson\r\n"
        "Transfer-Encoding: chunked\r\n\r\n"
        "9\r\ndelivered\r\n"
        "40\r\ncut";
    ASSERT_TRUE((*conn)->WriteAll(response, 1000).ok());
  });

  auto client = HttpClient::Connect("127.0.0.1", listener->port());
  ASSERT_TRUE(client.ok());
  std::vector<std::string> lines;
  auto result = client->RequestStreamingLines(
      "GET", "/stream", "", /*deadline_ms=*/5000, {},
      [&](std::string_view line) {
        lines.emplace_back(line);
        return Status::OK();
      });
  peer.join();
  // The truncation is a retryable failure — the same code a deadline
  // expiry uses — never a complete-looking short response.
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kBudgetExhausted);
  EXPECT_NE(result.status().message().find("truncated"), std::string::npos);
  // Nothing was delivered: no newline ever completed a line before EOF.
  EXPECT_TRUE(lines.empty());
}

TEST(HttpServer, ShutdownDrainsAndServeReturns) {
  auto service = std::make_unique<InferenceService>(ServiceOptions());
  HttpServerOptions options;
  options.workers = 2;
  auto server = HttpServer::Create(
      options, [&service](const HttpRequest& request) {
        return service->Handle(request);
      });
  ASSERT_TRUE(server.ok());
  std::thread serving([&server] {
    EXPECT_TRUE(server->Serve().ok());
  });
  // An idle keep-alive connection must not block the drain.
  auto idle = HttpClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(idle.ok());
  ASSERT_TRUE(idle->Request("GET", "/healthz").ok());
  auto start = std::chrono::steady_clock::now();
  server->Shutdown();
  serving.join();
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  EXPECT_LT(elapsed, 5.0) << "drain must beat the idle timeout";
}

}  // namespace
}  // namespace gdlog