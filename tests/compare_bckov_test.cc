// Edge cases of the as-good-as comparison (Definition 3.11) and the BCKOV
// reference engine's error handling and budgets.
#include <gtest/gtest.h>

#include "ast/parser.h"
#include "gdatalog/bckov.h"
#include "gdatalog/compare.h"
#include "gdatalog/engine.h"

namespace gdlog {
namespace {

// ---------------------------------------------------------------------------
// IsAsGoodAs
// ---------------------------------------------------------------------------

TEST(Compare, ReflexiveOnAnySpace) {
  auto engine = GDatalog::Create("c(flip<0.3>).", "");
  ASSERT_TRUE(engine.ok());
  auto space = engine->Infer();
  ASSERT_TRUE(space.ok());
  auto cmp = IsAsGoodAs(*space, *space);
  ASSERT_TRUE(cmp.ok());
  EXPECT_TRUE(cmp->as_good);
  EXPECT_GE(cmp->events_compared, 2u);
}

TEST(Compare, DetectsDominationViolation) {
  // Two *different programs* (not the paper's setting, but exercises the
  // comparator): a fair coin vs a 0.3 coin produce different masses on the
  // same stable-model sets — neither dominates the other.
  auto fair = GDatalog::Create("c(flip<0.5>).", "");
  auto biased = GDatalog::Create("c(flip<0.3>).", "");
  ASSERT_TRUE(fair.ok() && biased.ok());
  auto fair_space = fair->Infer();
  auto biased_space = biased->Infer();
  ASSERT_TRUE(fair_space.ok() && biased_space.ok());

  auto ab = IsAsGoodAs(*fair_space, *biased_space);
  auto ba = IsAsGoodAs(*biased_space, *fair_space);
  ASSERT_TRUE(ab.ok() && ba.ok());
  EXPECT_FALSE(ab->as_good);
  EXPECT_FALSE(ba->as_good);
  EXPECT_FALSE(ab->violation.empty());
  EXPECT_NE(ab->violation.find("mass"), std::string::npos);
}

TEST(Compare, RejectsIncompleteSpaces) {
  auto engine = GDatalog::Create("n(geometric<0.5>).", "");
  ASSERT_TRUE(engine.ok());
  ChaseOptions options;
  options.support_limit = 4;
  auto truncated = engine->Infer(options);
  ASSERT_TRUE(truncated.ok());
  ASSERT_FALSE(truncated->complete);
  auto cmp = IsAsGoodAs(*truncated, *truncated);
  ASSERT_FALSE(cmp.ok());
  EXPECT_EQ(cmp.status().code(), StatusCode::kInvalidArgument);
}

TEST(Compare, StrictDominanceWhenLeftConcentratesFiniteMass) {
  // An artificial grounder-quality gap: compare the perfect-grounder space
  // against the simple one on dime/quarter — equal event masses, so both
  // directions hold (the paper's situation after Theorem 5.3's proof:
  // as-good-as is not antisymmetric).
  const char* program =
      "dimetail(X, flip<0.5>[X]) :- dime(X).\n"
      "somedimetail :- dimetail(X, 1).\n"
      "quartertail(X, flip<0.5>[X]) :- quarter(X), not somedimetail.";
  const char* db = "dime(1). quarter(2).";
  GDatalog::Options perfect_opts;
  perfect_opts.grounder = GrounderKind::kPerfect;
  GDatalog::Options simple_opts;
  simple_opts.grounder = GrounderKind::kSimple;
  auto perfect = GDatalog::Create(program, db, std::move(perfect_opts));
  auto simple = GDatalog::Create(program, db, std::move(simple_opts));
  ASSERT_TRUE(perfect.ok() && simple.ok());
  auto pspace = perfect->Infer();
  auto sspace = simple->Infer();
  ASSERT_TRUE(pspace.ok() && sspace.ok());

  auto forward = IsAsGoodAs(*pspace, *sspace);
  ASSERT_TRUE(forward.ok());
  EXPECT_TRUE(forward->as_good);

  // Event masses coincide here (each simple outcome's extra quarter choice
  // splits mass within the same event), so the reverse holds too.
  auto backward = IsAsGoodAs(*sspace, *pspace);
  ASSERT_TRUE(backward.ok());
  EXPECT_TRUE(backward->as_good);
}

// ---------------------------------------------------------------------------
// BckovEngine
// ---------------------------------------------------------------------------

TEST(Bckov, RejectsNegation) {
  auto prog = ParseProgram("a(X) :- b(X), not c(X).");
  ASSERT_TRUE(prog.ok());
  FactStore db;
  DistributionRegistry registry = DistributionRegistry::Builtins();
  auto engine = BckovEngine::Create(*prog, &db, &registry);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

TEST(Bckov, RejectsConstraints) {
  auto prog = ParseProgram("a(1). :- a(X).");
  ASSERT_TRUE(prog.ok());
  FactStore db;
  DistributionRegistry registry = DistributionRegistry::Builtins();
  auto engine = BckovEngine::Create(*prog, &db, &registry);
  ASSERT_FALSE(engine.ok());
}

TEST(Bckov, DeterministicProgramHasOneOutcome) {
  auto prog = ParseProgram("p(X) :- q(X).");
  ASSERT_TRUE(prog.ok());
  auto db = ParseFacts("q(1). q(2).", prog->interner());
  ASSERT_TRUE(db.ok());
  DistributionRegistry registry = DistributionRegistry::Builtins();
  auto engine = BckovEngine::Create(*prog, &*db, &registry);
  ASSERT_TRUE(engine.ok());
  auto space = engine->Explore(1024, 64, 64);
  ASSERT_TRUE(space.ok());
  ASSERT_EQ(space->outcomes.size(), 1u);
  EXPECT_EQ(space->outcomes[0].prob, Prob::FromDouble(1.0));
  EXPECT_EQ(space->outcomes[0].instance.size(), 4u);  // q(1) q(2) p(1) p(2)
}

TEST(Bckov, OutcomeBudgetTruncates) {
  auto prog = ParseProgram("r(P, uniformint<1, 4>[P]) :- player(P).");
  ASSERT_TRUE(prog.ok());
  auto db = ParseFacts("player(1). player(2).", prog->interner());
  ASSERT_TRUE(db.ok());
  DistributionRegistry registry = DistributionRegistry::Builtins();
  auto engine = BckovEngine::Create(*prog, &*db, &registry);
  ASSERT_TRUE(engine.ok());
  auto truncated = engine->Explore(/*max_outcomes=*/5, 64, 64);
  ASSERT_TRUE(truncated.ok());
  EXPECT_FALSE(truncated->complete);
  EXPECT_EQ(truncated->outcomes.size(), 5u);
  auto full = engine->Explore(1024, 64, 64);
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(full->complete);
  EXPECT_EQ(full->outcomes.size(), 16u);
  EXPECT_EQ(full->finite_mass, Prob::FromDouble(1.0));
}

TEST(Bckov, EventSignaturesShareSamples) {
  // Two rules with the same Δ-term: one Result prefix, two derived facts.
  auto prog = ParseProgram(
      "a(X, flip<0.5>[X]) :- item(X).\n"
      "b(X, flip<0.5>[X]) :- item(X).");
  ASSERT_TRUE(prog.ok());
  auto db = ParseFacts("item(1).", prog->interner());
  ASSERT_TRUE(db.ok());
  DistributionRegistry registry = DistributionRegistry::Builtins();
  auto engine = BckovEngine::Create(*prog, &*db, &registry);
  ASSERT_TRUE(engine.ok());
  auto space = engine->Explore(1024, 64, 64);
  ASSERT_TRUE(space.ok());
  EXPECT_EQ(space->outcomes.size(), 2u);  // one shared coin
}

}  // namespace
}  // namespace gdlog
