// Unit tests for the util substrate: Status/Result, Value, Interner, Rng,
// Rational/Prob arithmetic, Subprocess.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <set>
#include <unordered_set>

#include "util/hash.h"
#include "util/interner.h"
#include "util/prob.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/subprocess.h"
#include "util/value.h"

namespace gdlog {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(Status, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad rule");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad rule");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad rule");
}

TEST(Status, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kParseError,
        StatusCode::kNotFound, StatusCode::kAlreadyExists,
        StatusCode::kUnsafeProgram, StatusCode::kNotStratified,
        StatusCode::kBudgetExhausted, StatusCode::kUnsupported,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(Result, HoldsStatus) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Doubled(Result<int> in) {
  GDLOG_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(Result, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(21), 42);
  auto err = Doubled(Status::Internal("boom"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

TEST(Value, KindsAndAccessors) {
  EXPECT_TRUE(Value::Bool(true).bool_value());
  EXPECT_EQ(Value::Int(-7).int_value(), -7);
  EXPECT_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::Symbol(3).symbol_id(), 3u);
}

TEST(Value, EqualityIsStructural) {
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_NE(Value::Int(1), Value::Double(1.0));  // identity, not numeric
  EXPECT_NE(Value::Int(1), Value::Bool(true));
  EXPECT_NE(Value::Symbol(1), Value::Int(1));
}

TEST(Value, AsRealTranslation) {
  EXPECT_EQ(Value::Bool(true).AsReal(), 1.0);
  EXPECT_EQ(Value::Int(-3).AsReal(), -3.0);
  EXPECT_EQ(Value::Double(0.25).AsReal(), 0.25);
  EXPECT_EQ(Value::Symbol(9).AsReal(), 9.0);
}

TEST(Value, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(5).Hash(), Value::Int(5).Hash());
  EXPECT_EQ(Value::Double(0.0).Hash(), Value::Double(-0.0).Hash());
  EXPECT_EQ(Value::Double(0.0), Value::Double(-0.0));
}

TEST(Value, TotalOrderIsStrict) {
  std::vector<Value> vals = {Value::Bool(false), Value::Bool(true),
                             Value::Int(-1),     Value::Int(3),
                             Value::Double(0.5), Value::Symbol(0)};
  for (size_t i = 0; i < vals.size(); ++i) {
    EXPECT_FALSE(vals[i] < vals[i]);
    for (size_t j = i + 1; j < vals.size(); ++j) {
      EXPECT_NE(vals[i] < vals[j], vals[j] < vals[i]);
    }
  }
}

TEST(Value, ToStringRendering) {
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Double(0.5).ToString(), "0.5");
  Interner interner;
  uint32_t id = interner.Intern("alice");
  EXPECT_EQ(Value::Symbol(id).ToString(&interner), "alice");
}

TEST(Tuple, HashAndEquality) {
  Tuple a = {Value::Int(1), Value::Symbol(2)};
  Tuple b = {Value::Int(1), Value::Symbol(2)};
  Tuple c = {Value::Symbol(2), Value::Int(1)};
  EXPECT_EQ(HashTuple(a), HashTuple(b));
  EXPECT_NE(a, c);
  std::unordered_set<Tuple, TupleHash> set;
  set.insert(a);
  EXPECT_TRUE(set.count(b));
  EXPECT_FALSE(set.count(c));
}

// ---------------------------------------------------------------------------
// Interner
// ---------------------------------------------------------------------------

TEST(Interner, InternIsIdempotent) {
  Interner interner;
  uint32_t a = interner.Intern("foo");
  uint32_t b = interner.Intern("foo");
  uint32_t c = interner.Intern("bar");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(interner.Name(a), "foo");
  EXPECT_EQ(interner.Name(c), "bar");
  EXPECT_EQ(interner.size(), 2u);
}

TEST(Interner, LookupDoesNotIntern) {
  Interner interner;
  EXPECT_EQ(interner.Lookup("ghost"), Interner::kNotFound);
  EXPECT_EQ(interner.size(), 0u);
  uint32_t id = interner.Intern("ghost");
  EXPECT_EQ(interner.Lookup("ghost"), id);
}

TEST(Interner, IdsAreDense) {
  Interner interner;
  for (uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(interner.Intern("s" + std::to_string(i)), i);
  }
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(Rng, DoublesInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BoundedIsUniformish) {
  Rng rng(99);
  constexpr uint64_t kBound = 10;
  std::vector<int> counts(kBound, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBound)];
  for (uint64_t v = 0; v < kBound; ++v) {
    EXPECT_NEAR(counts[v], kDraws / static_cast<int>(kBound),
                5 * std::sqrt(kDraws / static_cast<double>(kBound)));
  }
}

TEST(Rng, BoundedEdgeCases) {
  Rng rng(1);
  EXPECT_EQ(rng.NextBounded(0), 0u);
  EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(Hash, Mix64Avalanches) {
  // Flipping one input bit flips roughly half the output bits.
  uint64_t base = Mix64(0x1234);
  int differing = __builtin_popcountll(base ^ Mix64(0x1235));
  EXPECT_GT(differing, 16);
  EXPECT_LT(differing, 48);
}

// ---------------------------------------------------------------------------
// Rational / Prob
// ---------------------------------------------------------------------------

TEST(Rational, NormalizesOnConstruction) {
  Rational r(2, 4);
  EXPECT_EQ(r.numerator(), 1);
  EXPECT_EQ(r.denominator(), 2);
  Rational neg(3, -6);
  EXPECT_EQ(neg.numerator(), -1);
  EXPECT_EQ(neg.denominator(), 2);
}

TEST(Rational, FromDecimalExactForShortDecimals) {
  Rational r = Rational::FromDecimal(0.1);
  EXPECT_TRUE(r.exact());
  EXPECT_EQ(r, Rational(1, 10));
  EXPECT_EQ(Rational::FromDecimal(0.25), Rational(1, 4));
  EXPECT_EQ(Rational::FromDecimal(1.0), Rational::One());
  EXPECT_EQ(Rational::FromDecimal(0.0), Rational::Zero());
}

TEST(Rational, FromDecimalInexactForIrrational) {
  Rational pi = Rational::FromDecimal(M_PI);
  EXPECT_FALSE(pi.exact());
  EXPECT_DOUBLE_EQ(pi.ToDouble(), M_PI);
}

TEST(Rational, ArithmeticStaysExact) {
  Rational a(1, 10), b(9, 10);
  EXPECT_EQ(a * b, Rational(9, 100));
  EXPECT_EQ(a + b, Rational::One());
  EXPECT_EQ(b - a, Rational(4, 5));
  // 0.9^2 = 81/100 — the paper's Example 3.10 value.
  EXPECT_EQ(b * b, Rational(81, 100));
  EXPECT_EQ(Rational::One() - b * b, Rational(19, 100));
}

TEST(Rational, ComparisonIsExact) {
  EXPECT_LT(Rational(1, 3), Rational(34, 100));
  EXPECT_LT(Rational(33, 100), Rational(1, 3));
  EXPECT_FALSE(Rational(1, 3) < Rational(1, 3));
}

TEST(Rational, OverflowFallsBackToInexact) {
  Rational tiny(1, 1000000007);  // prime denominator
  Rational acc = Rational::One();
  for (int i = 0; i < 5; ++i) acc = acc * tiny;
  // 1000000007^5 overflows int64: result must be inexact but numerically
  // close.
  EXPECT_FALSE(acc.exact());
  EXPECT_NEAR(acc.ToDouble(), std::pow(1e-9, 5), 1e-47);
}

TEST(Rational, ToStringRendering) {
  EXPECT_EQ(Rational(19, 100).ToString(), "19/100");
  EXPECT_EQ(Rational(4, 2).ToString(), "2");
  EXPECT_EQ(Rational::Zero().ToString(), "0");
}

TEST(Prob, ProductMatchesPaperExample) {
  Prob p = Prob::FromDouble(0.9) * Prob::FromDouble(0.9);
  EXPECT_TRUE(p.exact());
  EXPECT_EQ(p, Prob(Rational(81, 100)));
  EXPECT_EQ(Prob::One() - p, Prob(Rational(19, 100)));
}

TEST(Prob, SumOfManySmallStaysExact) {
  Prob total = Prob::Zero();
  for (int i = 0; i < 64; ++i) total = total + Prob(Rational(1, 64));
  EXPECT_EQ(total, Prob::One());
  EXPECT_TRUE(total.exact());
}

class ProbPowerTest : public ::testing::TestWithParam<int> {};

TEST_P(ProbPowerTest, GeometricMassesSumBelowOne) {
  // (1-p)^k p summed for k < n stays below 1 and approaches it.
  int n = GetParam();
  Prob p = Prob(Rational(1, 2));
  Prob q = Prob::One() - p;
  Prob acc = Prob::Zero();
  Prob qk = Prob::One();
  for (int k = 0; k < n; ++k) {
    acc = acc + qk * p;
    qk = qk * q;
  }
  EXPECT_LT(acc.value(), 1.0);
  EXPECT_NEAR(acc.value(), 1.0 - std::pow(0.5, n), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Depths, ProbPowerTest,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 50));

// ---------------------------------------------------------------------------
// Subprocess
// ---------------------------------------------------------------------------

TEST(Subprocess, CapturesStdoutAndExitCode) {
  auto child = Subprocess::Spawn({"sh", "-c", "printf hello; exit 3"});
  ASSERT_TRUE(child.ok());
  std::string out;
  auto code = child->Wait(&out);
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(*code, 3);
  EXPECT_EQ(out, "hello");
}

TEST(Subprocess, TimedWaitReturnsBeforeDeadlineWhenChildExits) {
  auto child = Subprocess::Spawn({"sh", "-c", "printf done"});
  ASSERT_TRUE(child.ok());
  std::string out;
  auto code = child->Wait(&out, /*timeout_ms=*/30'000);
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(*code, 0);
  EXPECT_EQ(out, "done");
}

TEST(Subprocess, TimedWaitKillsHungChild) {
  auto child = Subprocess::Spawn({"sleep", "30"});
  ASSERT_TRUE(child.ok());
  std::string out;
  auto start = std::chrono::steady_clock::now();
  auto code = child->Wait(&out, /*timeout_ms=*/200);
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  ASSERT_FALSE(code.ok());
  EXPECT_EQ(code.status().code(), StatusCode::kBudgetExhausted);
  // The child was killed and reaped, not waited out.
  EXPECT_LT(elapsed, 10.0);
}

TEST(Subprocess, TimedWaitKillsChildThatClosedStdoutButWontExit) {
  // EOF on stdout arrives immediately; the exit never does. The deadline
  // must cover the reap too, or CI hangs on exactly this shape of bug.
  // (stderr is closed as well: it is inherited from this test binary, and
  // a straggler grandchild holding it open would stall whatever pipe
  // ctest reads our output through.)
  auto child = Subprocess::Spawn(
      {"sh", "-c", "exec 1>&- 2>&-; sleep 5"});
  ASSERT_TRUE(child.ok());
  std::string out;
  auto start = std::chrono::steady_clock::now();
  auto code = child->Wait(&out, /*timeout_ms=*/200);
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  ASSERT_FALSE(code.ok());
  EXPECT_EQ(code.status().code(), StatusCode::kBudgetExhausted);
  EXPECT_LT(elapsed, 10.0);
}

}  // namespace
}  // namespace gdlog
