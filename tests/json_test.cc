// JsonWriter and outcome-space export tests.
#include <gtest/gtest.h>

#include "gdatalog/engine.h"
#include "gdatalog/export.h"
#include "util/json.h"

namespace gdlog {
namespace {

TEST(JsonWriter, ObjectsAndArrays) {
  JsonWriter json;
  json.BeginObject()
      .KV("a", 1.5)
      .KV("b", std::string_view("x"))
      .Key("c")
      .BeginArray()
      .Int(1)
      .Int(2)
      .EndArray()
      .KV("d", true)
      .Key("e")
      .Null()
      .EndObject();
  EXPECT_EQ(json.str(), R"({"a":1.5,"b":"x","c":[1,2],"d":true,"e":null})");
}

TEST(JsonWriter, EscapesSpecials) {
  JsonWriter json;
  json.BeginArray().String("a\"b\\c\nd\te").EndArray();
  EXPECT_EQ(json.str(), "[\"a\\\"b\\\\c\\nd\\te\"]");
}

TEST(JsonWriter, NestedStructures) {
  JsonWriter json;
  json.BeginArray();
  for (int i = 0; i < 2; ++i) {
    json.BeginObject().KV("i", static_cast<long long>(i)).EndObject();
  }
  json.EndArray();
  EXPECT_EQ(json.str(), R"([{"i":0},{"i":1}])");
}

TEST(JsonWriter, EmptyContainers) {
  JsonWriter a;
  a.BeginObject().EndObject();
  EXPECT_EQ(a.str(), "{}");
  JsonWriter b;
  b.BeginArray().EndArray();
  EXPECT_EQ(b.str(), "[]");
  JsonWriter c;
  c.BeginObject().Key("x").BeginArray().EndArray().EndObject();
  EXPECT_EQ(c.str(), R"({"x":[]})");
}

TEST(JsonParse, Scalars) {
  auto t = JsonValue::Parse("true");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->is_bool());
  EXPECT_TRUE(t->bool_value());
  auto n = JsonValue::Parse(" null ");
  ASSERT_TRUE(n.ok());
  EXPECT_TRUE(n->is_null());
  auto s = JsonValue::Parse(R"("a\"b\nA")");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->string_value(), "a\"b\nA");
  auto num = JsonValue::Parse("-1.5e3");
  ASSERT_TRUE(num.ok());
  EXPECT_EQ(num->number_text(), "-1.5e3");
  EXPECT_DOUBLE_EQ(num->NumberAsDouble(), -1500.0);
}

TEST(JsonParse, IntegersAreExact) {
  auto big = JsonValue::Parse("9223372036854775807");
  ASSERT_TRUE(big.ok());
  auto value = big->NumberAsInt();
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, INT64_MAX);
  // Fractions and overflow are rejected, not silently rounded.
  auto frac = JsonValue::Parse("1.5");
  ASSERT_TRUE(frac.ok());
  EXPECT_FALSE(frac->NumberAsInt().ok());
  auto over = JsonValue::Parse("9223372036854775808");
  ASSERT_TRUE(over.ok());
  EXPECT_FALSE(over->NumberAsInt().ok());
}

TEST(JsonParse, ObjectsArraysAndFind) {
  auto doc = JsonValue::Parse(
      R"({"a":[1,2,{"b":"x"}],"c":{"d":false},"e":null})");
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(doc->is_object());
  const JsonValue* a = doc->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array().size(), 3u);
  EXPECT_EQ(a->array()[2].Find("b")->string_value(), "x");
  EXPECT_FALSE(doc->Find("c")->Find("d")->bool_value());
  EXPECT_EQ(doc->Find("missing"), nullptr);
}

TEST(JsonParse, RoundTripsWriterOutput) {
  JsonWriter json;
  json.BeginObject()
      .KV("s", "tricky \"\\\n\t chars")
      .KV("n", 0.1)
      .KV("i", static_cast<long long>(-42))
      .KV("b", false)
      .Key("a")
      .BeginArray()
      .Null()
      .EndArray()
      .EndObject();
  auto doc = JsonValue::Parse(json.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("s")->string_value(), "tricky \"\\\n\t chars");
  EXPECT_DOUBLE_EQ(doc->Find("n")->NumberAsDouble(), 0.1);
  EXPECT_EQ(*doc->Find("i")->NumberAsInt(), -42);
  EXPECT_TRUE(doc->Find("a")->array()[0].is_null());
}

TEST(JsonParse, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,", R"({"a")", R"({"a":})", "tru", "01x", "[1] extra",
        R"("unterminated)", R"({"a":1,})", "[,]", "nan",
        // RFC 8259 number grammar: no leading '+', no leading zeros, no
        // bare or trailing decimal point, no hex.
        "[+1]", "[01]", "[.5]", "[1.]", "[1e]", "[0x1p3]"}) {
    EXPECT_FALSE(JsonValue::Parse(bad).ok()) << "input: " << bad;
  }
}

// ---------------------------------------------------------------------------
// Wire hardening: server request bodies are untrusted, so the parser
// enforces RFC 8259 strings in full — escaped control characters only,
// paired surrogates, shortest-form UTF-8.
// ---------------------------------------------------------------------------

TEST(JsonParse, RejectsUnescapedControlCharacters) {
  std::string ctrl = "\"a";
  ctrl += '\x01';
  ctrl += "b\"";
  EXPECT_FALSE(JsonValue::Parse(ctrl).ok());
  std::string nul = "\"a";
  nul += '\0';
  nul += "b\"";
  EXPECT_FALSE(JsonValue::Parse(nul).ok());
  EXPECT_FALSE(JsonValue::Parse("\"line\nbreak\"").ok());
  // The escaped forms of the same characters are fine.
  auto ok = JsonValue::Parse(R"("a\u0001b\nc\u0000")");
  ASSERT_TRUE(ok.ok());
  std::string expected = "a";
  expected += '\x01';
  expected += "b\nc";
  expected += '\0';
  EXPECT_EQ(ok->string_value(), expected);
}

TEST(JsonParse, RejectsInvalidUtf8) {
  for (const char* bad : {
           "\"\x80\"",          // lone continuation byte
           "\"\xC3(\"",         // 2-byte lead without continuation
           "\"\xC0\xAF\"",      // overlong '/' (2 bytes)
           "\"\xC1\x81\"",      // overlong 'A'-range lead
           "\"\xE0\x80\xAF\"",  // overlong (3 bytes)
           "\"\xF0\x80\x80\xAF\"",  // overlong (4 bytes)
           "\"\xED\xA0\x80\"",  // UTF-8-encoded surrogate U+D800
           "\"\xF4\x90\x80\x80\"",  // > U+10FFFF
           "\"\xF5\x80\x80\x80\"",  // invalid lead byte
           "\"\xE2\x82\"",      // truncated at end of string
       }) {
    EXPECT_FALSE(JsonValue::Parse(bad).ok()) << "input: " << bad;
  }
}

TEST(JsonParse, AcceptsValidUtf8Verbatim) {
  // 2-, 3- and 4-byte sequences pass through untouched.
  std::string s = "\"\xC3\xA9 \xE2\x82\xAC \xF0\x9F\x98\x80\"";
  auto doc = JsonValue::Parse(s);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->string_value(), s.substr(1, s.size() - 2));
}

TEST(JsonParse, SurrogatePairEscapes) {
  // \uD83D\uDE00 is the surrogate-pair escape of U+1F600, which must
  // come back combined, as 4-byte UTF-8.
  auto pair = JsonValue::Parse(R"("\uD83D\uDE00")");
  ASSERT_TRUE(pair.ok());
  EXPECT_EQ(pair->string_value(), "\xF0\x9F\x98\x80");
  // Lone or mispaired surrogate escapes are rejected.
  EXPECT_FALSE(JsonValue::Parse(R"("\uD83D")").ok());
  EXPECT_FALSE(JsonValue::Parse(R"("\uDE00")").ok());
  EXPECT_FALSE(JsonValue::Parse(R"("\uD83Dx")").ok());
  EXPECT_FALSE(JsonValue::Parse(R"("\uD83DA")").ok());
}

TEST(JsonWriter, EscapesAllControlCharacters) {
  std::string raw;
  for (int c = 0; c < 0x20; ++c) raw += static_cast<char>(c);
  JsonWriter json;
  json.String(raw);
  // Nothing below 0x20 may appear raw in the output...
  for (char c : json.str()) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
  // ...and the hardened parser round-trips it back byte-for-byte.
  auto parsed = JsonValue::Parse(json.str());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->string_value(), raw);
}

TEST(JsonParse, LenientModeRoundTripsArbitraryWriterBytes) {
  // Program string constants may hold arbitrary bytes (the surface lexer
  // does not restrict them); JsonWriter emits them verbatim, and the
  // shard partial-space import must read back exactly what was written —
  // that is what strict_strings=false exists for.
  std::string raw = "caf";
  raw += '\xE9';  // Latin-1 é: invalid as UTF-8
  raw += '\x80';  // lone continuation byte
  JsonWriter writer;
  writer.BeginObject().KV("s", raw).EndObject();
  EXPECT_FALSE(JsonValue::Parse(writer.str()).ok());  // strict: rejected
  JsonParseOptions lenient;
  lenient.strict_strings = false;
  auto doc = JsonValue::Parse(writer.str(), lenient);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("s")->string_value(), raw);
}

TEST(JsonParse, RejectsRunawayNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
  std::string shallow(20, '[');
  shallow += std::string(20, ']');
  EXPECT_TRUE(JsonValue::Parse(shallow).ok());
}

TEST(JsonExport, CoinOutcomeSpace) {
  auto engine = GDatalog::Create(
      "coin(flip<0.5>). :- coin(0).\n"
      "aux1 :- coin(1), not aux2. aux2 :- coin(1), not aux1.",
      "");
  ASSERT_TRUE(engine.ok());
  auto space = engine->Infer();
  ASSERT_TRUE(space.ok());

  JsonExportOptions options;
  options.include_models = true;
  std::string json = OutcomeSpaceToJson(*space, engine->translated(),
                                        engine->program().interner(), options);
  // Structural spot checks (kept robust to field ordering of maps).
  EXPECT_NE(json.find("\"complete\":true"), std::string::npos);
  EXPECT_NE(json.find("\"num_outcomes\":2"), std::string::npos);
  EXPECT_NE(json.find("\"rational\":\"1/2\""), std::string::npos);
  EXPECT_NE(json.find("\"events\":["), std::string::npos);
  EXPECT_NE(json.find("coin(1)"), std::string::npos);
  // Auxiliary Active/Result atoms are stripped from exported models.
  EXPECT_EQ(json.find("\"models\":[[\"__"), std::string::npos);
  // Balanced braces/brackets.
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char ch = json[i];
    if (in_string) {
      if (ch == '\\') ++i;
      else if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(JsonExport, OptionsControlSections) {
  auto engine = GDatalog::Create("c(flip<0.5>).", "");
  ASSERT_TRUE(engine.ok());
  auto space = engine->Infer();
  ASSERT_TRUE(space.ok());

  JsonExportOptions no_outcomes;
  no_outcomes.include_outcomes = false;
  no_outcomes.include_events = false;
  std::string json = OutcomeSpaceToJson(*space, engine->translated(),
                                        engine->program().interner(),
                                        no_outcomes);
  EXPECT_EQ(json.find("\"outcomes\""), std::string::npos);
  EXPECT_EQ(json.find("\"events\""), std::string::npos);
  EXPECT_NE(json.find("\"prob_consistent\""), std::string::npos);
}

TEST(JsonExport, InexactMassesExportNullRational) {
  // Poisson masses are irrational: rational field must be null.
  auto engine = GDatalog::Create("n(poisson<2.0>).", "");
  ASSERT_TRUE(engine.ok());
  ChaseOptions options;
  options.support_limit = 4;
  auto space = engine->Infer(options);
  ASSERT_TRUE(space.ok());
  std::string json = OutcomeSpaceToJson(*space, engine->translated(),
                                        engine->program().interner());
  EXPECT_NE(json.find("\"rational\":null"), std::string::npos);
  EXPECT_NE(json.find("\"complete\":false"), std::string::npos);
}

}  // namespace
}  // namespace gdlog
