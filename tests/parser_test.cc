// Lexer and parser tests: surface syntax → AST, error reporting, and the
// printer round-trip.
#include <gtest/gtest.h>

#include "ast/lexer.h"
#include "ast/parser.h"

namespace gdlog {
namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(Lexer, TokenKinds) {
  auto toks = Tokenize("foo(X, 1, 2.5, \"s\") :- not bar, true, false.");
  ASSERT_TRUE(toks.ok()) << toks.status().ToString();
  std::vector<TokenKind> kinds;
  for (const Token& t : *toks) kinds.push_back(t.kind);
  std::vector<TokenKind> expected = {
      TokenKind::kIdent,  TokenKind::kLParen, TokenKind::kVariable,
      TokenKind::kComma,  TokenKind::kInt,    TokenKind::kComma,
      TokenKind::kDouble, TokenKind::kComma,  TokenKind::kString,
      TokenKind::kRParen, TokenKind::kImplies, TokenKind::kNot,
      TokenKind::kIdent,  TokenKind::kComma,  TokenKind::kTrue,
      TokenKind::kComma,  TokenKind::kFalse,  TokenKind::kDot,
      TokenKind::kEof};
  EXPECT_EQ(kinds, expected);
}

TEST(Lexer, CommentsAndWhitespace) {
  auto toks = Tokenize("% a comment\n  a. % trailing\n%last");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(toks->size(), 3u);  // ident, dot, eof
  EXPECT_EQ((*toks)[0].text, "a");
}

TEST(Lexer, NumbersVsRuleDots) {
  // "p(1)." — the dot terminates the rule, it is not part of the number.
  auto toks = Tokenize("p(1).");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[2].kind, TokenKind::kInt);
  EXPECT_EQ((*toks)[2].int_value, 1);
  EXPECT_EQ((*toks)[4].kind, TokenKind::kDot);

  auto toks2 = Tokenize("p(1.5).");
  ASSERT_TRUE(toks2.ok());
  EXPECT_EQ((*toks2)[2].kind, TokenKind::kDouble);
  EXPECT_DOUBLE_EQ((*toks2)[2].double_value, 1.5);
}

TEST(Lexer, ScientificNotation) {
  auto toks = Tokenize("p(1e3, 2.5e-2).");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[2].kind, TokenKind::kDouble);
  EXPECT_DOUBLE_EQ((*toks)[2].double_value, 1000.0);
  EXPECT_DOUBLE_EQ((*toks)[4].double_value, 0.025);
}

TEST(Lexer, StringEscapes) {
  auto toks = Tokenize(R"(p("a\nb\"c").)");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[2].text, "a\nb\"c");
}

TEST(Lexer, VariablesStartUppercaseOrUnderscore) {
  auto toks = Tokenize("X _y zed Not");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].kind, TokenKind::kVariable);
  EXPECT_EQ((*toks)[1].kind, TokenKind::kVariable);
  EXPECT_EQ((*toks)[2].kind, TokenKind::kIdent);
  EXPECT_EQ((*toks)[3].kind, TokenKind::kVariable);  // "Not" ≠ keyword "not"
}

TEST(Lexer, ErrorsCarryLineAndColumn) {
  auto toks = Tokenize("a.\n  #");
  ASSERT_FALSE(toks.ok());
  EXPECT_EQ(toks.status().code(), StatusCode::kParseError);
  EXPECT_NE(toks.status().message().find("line 2"), std::string::npos);
}

TEST(Lexer, UnterminatedString) {
  auto toks = Tokenize("p(\"oops");
  ASSERT_FALSE(toks.ok());
  EXPECT_NE(toks.status().message().find("unterminated"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(Parser, FactsAndRules) {
  auto prog = ParseProgram("edge(1, 2).\npath(X, Y) :- edge(X, Y).");
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  ASSERT_EQ(prog->rules().size(), 2u);
  EXPECT_TRUE(prog->rules()[0].IsFact());
  EXPECT_FALSE(prog->rules()[1].IsFact());
  EXPECT_EQ(prog->rules()[1].body.size(), 1u);
}

TEST(Parser, ZeroAryAtoms) {
  auto prog = ParseProgram("win :- move, not lose.");
  ASSERT_TRUE(prog.ok());
  const Rule& rule = prog->rules()[0];
  EXPECT_EQ(rule.head.arity(), 0u);
  EXPECT_EQ(rule.body[0].atom.arity(), 0u);
  EXPECT_TRUE(rule.body[1].negated);
}

TEST(Parser, NegativeLiterals) {
  auto prog = ParseProgram("a(X) :- b(X), not c(X), not d(X, X).");
  ASSERT_TRUE(prog.ok());
  const Rule& rule = prog->rules()[0];
  EXPECT_EQ(rule.PositiveBody().size(), 1u);
  EXPECT_EQ(rule.NegativeBody().size(), 2u);
}

TEST(Parser, Constraints) {
  auto prog = ParseProgram(":- p(X), not q(X).");
  ASSERT_TRUE(prog.ok());
  ASSERT_EQ(prog->rules().size(), 1u);
  EXPECT_TRUE(prog->rules()[0].is_constraint);
}

TEST(Parser, DeltaTermsWithEvents) {
  auto prog =
      ParseProgram("infected(Y, flip<0.1>[X, Y]) :- connected(X, Y).");
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  const Rule& rule = prog->rules()[0];
  ASSERT_EQ(rule.head.args.size(), 2u);
  EXPECT_FALSE(rule.head.args[0].is_delta());
  ASSERT_TRUE(rule.head.args[1].is_delta());
  const DeltaTerm& dt = rule.head.args[1].delta();
  EXPECT_EQ(prog->interner()->Name(dt.dist_id), "flip");
  ASSERT_EQ(dt.params.size(), 1u);
  EXPECT_EQ(dt.params[0].constant(), Value::Double(0.1));
  ASSERT_EQ(dt.events.size(), 2u);
  EXPECT_TRUE(dt.events[0].is_variable());
}

TEST(Parser, DeltaTermWithoutEvents) {
  auto prog = ParseProgram("coin(flip<0.5>).");
  ASSERT_TRUE(prog.ok());
  const DeltaTerm& dt = prog->rules()[0].head.args[0].delta();
  EXPECT_TRUE(dt.events.empty());
}

TEST(Parser, DeltaTermMultipleParams) {
  auto prog = ParseProgram("roll(X, die<0.1, 0.1, 0.1, 0.1, 0.1, 0.5>[X]) :- player(X).");
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  const DeltaTerm& dt = prog->rules()[0].head.args[1].delta();
  EXPECT_EQ(dt.params.size(), 6u);
}

TEST(Parser, EmptyEventSignatureBrackets) {
  auto prog = ParseProgram("c(flip<0.5>[]).");
  ASSERT_TRUE(prog.ok());
  EXPECT_TRUE(prog->rules()[0].head.args[0].delta().events.empty());
}

TEST(Parser, NegativeNumbers) {
  auto prog = ParseProgram("p(-3, -2.5).");
  ASSERT_TRUE(prog.ok());
  const Rule& rule = prog->rules()[0];
  EXPECT_EQ(rule.head.args[0].term().constant(), Value::Int(-3));
  EXPECT_EQ(rule.head.args[1].term().constant(), Value::Double(-2.5));
}

TEST(Parser, SymbolicConstantsAndStrings) {
  auto prog = ParseProgram("knows(alice, \"Bob Smith\").");
  ASSERT_TRUE(prog.ok());
  const Rule& rule = prog->rules()[0];
  EXPECT_TRUE(rule.head.args[0].term().constant().is_symbol());
  EXPECT_TRUE(rule.head.args[1].term().constant().is_symbol());
  EXPECT_NE(rule.head.args[0].term().constant(),
            rule.head.args[1].term().constant());
}

TEST(Parser, SharedInternerAcrossCalls) {
  auto interner = std::make_shared<Interner>();
  auto p1 = ParseProgram("p(a).", interner);
  auto p2 = ParseProgram("q(a).", interner);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_EQ(p1->rules()[0].head.args[0].term().constant(),
            p2->rules()[0].head.args[0].term().constant());
}

TEST(Parser, ErrorMissingDot) {
  auto prog = ParseProgram("a :- b");
  ASSERT_FALSE(prog.ok());
  EXPECT_EQ(prog.status().code(), StatusCode::kParseError);
  EXPECT_NE(prog.status().message().find("'.'"), std::string::npos);
}

TEST(Parser, ErrorDanglingComma) {
  EXPECT_FALSE(ParseProgram("a :- b, .").ok());
  EXPECT_FALSE(ParseProgram("p(1,).").ok());
}

TEST(Parser, ErrorDeltaInBody) {
  // Δ-terms are head-only; in body position '<' is not valid term syntax.
  auto prog = ParseProgram("a :- coin(flip<0.5>).");
  EXPECT_FALSE(prog.ok());
}

TEST(Parser, PrinterRoundTrips) {
  const char* source =
      "infected(Y, flip<0.1>[X, Y]) :- infected(X, 1), connected(X, Y).";
  auto prog = ParseProgram(source);
  ASSERT_TRUE(prog.ok());
  std::string printed = prog->rules()[0].ToString(prog->interner());
  auto reparsed = ParseProgram(printed, prog->shared_interner());
  ASSERT_TRUE(reparsed.ok()) << printed << " -> "
                             << reparsed.status().ToString();
  EXPECT_EQ(reparsed->rules()[0], prog->rules()[0]);
}

TEST(Parser, ConstraintPrinterRoundTrips) {
  auto prog = ParseProgram(":- p(X), not q(X).");
  ASSERT_TRUE(prog.ok());
  std::string printed = prog->rules()[0].ToString(prog->interner());
  auto reparsed = ParseProgram(printed, prog->shared_interner());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->rules()[0], prog->rules()[0]);
}

// ---------------------------------------------------------------------------
// Program validation
// ---------------------------------------------------------------------------

TEST(ProgramValidate, AcceptsSafePrograms) {
  auto prog = ParseProgram(
      "p(X) :- q(X), not r(X).\n"
      "s(X, flip<0.5>[X]) :- q(X).\n"
      ":- p(X), s(X, 1).");
  ASSERT_TRUE(prog.ok());
  EXPECT_TRUE(prog->Validate().ok());
}

TEST(ProgramValidate, RejectsUnsafeNegativeVariable) {
  auto prog = ParseProgram("p(X) :- q(X), not r(Y).");
  ASSERT_TRUE(prog.ok());
  Status st = prog->Validate();
  EXPECT_EQ(st.code(), StatusCode::kUnsafeProgram);
}

TEST(ProgramValidate, RejectsUnboundHeadVariable) {
  auto prog = ParseProgram("p(X, Y) :- q(X).");
  ASSERT_TRUE(prog.ok());
  EXPECT_EQ(prog->Validate().code(), StatusCode::kUnsafeProgram);
}

TEST(ProgramValidate, RejectsUnboundDeltaVariable) {
  // Y appears only inside the Δ-term's event signature.
  auto prog = ParseProgram("p(flip<0.5>[Y]) :- q(X).");
  ASSERT_TRUE(prog.ok());
  EXPECT_EQ(prog->Validate().code(), StatusCode::kUnsafeProgram);
  // Same for distribution parameters.
  auto prog2 = ParseProgram("p(flip<P>) :- q(X).");
  ASSERT_TRUE(prog2.ok());
  EXPECT_EQ(prog2->Validate().code(), StatusCode::kUnsafeProgram);
}

TEST(ProgramValidate, VariableDistributionParamsAreSafeWhenBound) {
  auto prog = ParseProgram("p(flip<P>[X]) :- q(X, P).");
  ASSERT_TRUE(prog.ok());
  EXPECT_TRUE(prog->Validate().ok());
}

TEST(ProgramValidate, RejectsInconsistentArity) {
  auto prog = ParseProgram("p(1). p(1, 2).");
  ASSERT_TRUE(prog.ok());
  EXPECT_EQ(prog->Validate().code(), StatusCode::kInvalidArgument);
}

TEST(ProgramValidate, RejectsEmptyConstraint) {
  Program prog;
  Rule rule;
  rule.is_constraint = true;
  prog.AddRule(rule);
  EXPECT_EQ(prog.Validate().code(), StatusCode::kUnsafeProgram);
}

TEST(ProgramMeta, EdbIdbSplit) {
  auto prog = ParseProgram(
      "path(X, Y) :- edge(X, Y).\n"
      "path(X, Z) :- path(X, Y), edge(Y, Z).");
  ASSERT_TRUE(prog.ok());
  uint32_t edge = prog->interner()->Lookup("edge");
  uint32_t path = prog->interner()->Lookup("path");
  EXPECT_TRUE(prog->ExtensionalPredicates().count(edge));
  EXPECT_TRUE(prog->IntensionalPredicates().count(path));
  EXPECT_FALSE(prog->IntensionalPredicates().count(edge));
  EXPECT_EQ(prog->Predicates().size(), 2u);
}

TEST(ProgramMeta, PositiveAndPlainFlags) {
  auto pos = ParseProgram("a(X) :- b(X).");
  ASSERT_TRUE(pos.ok());
  EXPECT_TRUE(pos->IsPositive());
  EXPECT_TRUE(pos->IsPlain());

  auto neg = ParseProgram("a(X) :- b(X), not c(X).");
  ASSERT_TRUE(neg.ok());
  EXPECT_FALSE(neg->IsPositive());

  auto delta = ParseProgram("a(flip<0.5>) :- b(X).");
  ASSERT_TRUE(delta.ok());
  EXPECT_FALSE(delta->IsPlain());
}

TEST(ProgramMeta, DesugarConstraints) {
  auto prog = ParseProgram("p(1). :- p(X), q(X). :- p(2).");
  ASSERT_TRUE(prog.ok());
  size_t before = prog->rules().size();
  prog->DesugarConstraints();
  // Both constraints become __fail rules; one Fail/Aux killer rule added.
  EXPECT_EQ(prog->rules().size(), before + 1);
  EXPECT_TRUE(prog->has_fail());
  for (const Rule& rule : prog->rules()) {
    EXPECT_FALSE(rule.is_constraint);
  }
  EXPECT_TRUE(prog->Validate().ok());
}

TEST(ProgramMeta, DesugarIsIdempotentOnConstraintFree) {
  auto prog = ParseProgram("p(1).");
  ASSERT_TRUE(prog.ok());
  prog->DesugarConstraints();
  EXPECT_EQ(prog->rules().size(), 1u);
  EXPECT_FALSE(prog->has_fail());
}

}  // namespace
}  // namespace gdlog
