// End-to-end reproduction of every worked example in the paper:
//  * the fair-coin program of §3 (possible outcomes, event probabilities),
//  * the network-resilience program (Examples 1.1/3.1/3.6/3.10,
//    P(dominated) = 0.19 on the 3-router clique),
//  * the dime/quarter stratified program of Appendix E (perfect grounding).
#include <gtest/gtest.h>

#include "gdatalog/engine.h"
#include "gdatalog/compare.h"

namespace gdlog {
namespace {

// ---------------------------------------------------------------------------
// §3: the fair-coin program Π_coin.
//
//   → Coin(Flip⟨0.5⟩)        Coin(1), ¬Aux1 → Aux2
//   Coin(0) → ⊥              Coin(1), ¬Aux2 → Aux1
// ---------------------------------------------------------------------------
constexpr const char* kCoinProgram = R"(
  coin(flip<0.5>).
  :- coin(0).
  aux2 :- coin(1), not aux1.
  aux1 :- coin(1), not aux2.
)";

TEST(CoinExample, TwoOutcomesHalfEach) {
  auto engine = GDatalog::Create(kCoinProgram, "");
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  // Π_coin is not stratified (aux1/aux2 cycle through negation): the engine
  // must auto-select the simple grounder.
  EXPECT_FALSE(engine->stratified());
  EXPECT_EQ(engine->grounder().name(), "simple");

  auto space = engine->Infer();
  ASSERT_TRUE(space.ok()) << space.status().ToString();
  EXPECT_TRUE(space->complete);
  ASSERT_EQ(space->outcomes.size(), 2u);
  EXPECT_EQ(space->finite_mass, Prob::FromDouble(1.0));

  // One outcome (flip = 0) has no stable model; the other (flip = 1) has
  // exactly two: {Aux1, Coin(1), ...} and {Aux2, Coin(1), ...}.
  int empty_outcomes = 0;
  for (const PossibleOutcome& outcome : space->outcomes) {
    EXPECT_EQ(outcome.prob, Prob(Rational(1, 2)));
    if (outcome.models.empty()) {
      ++empty_outcomes;
    } else {
      EXPECT_EQ(outcome.models.size(), 2u);
    }
  }
  EXPECT_EQ(empty_outcomes, 1);

  // P(Π has some stable model) = 1/2.
  EXPECT_EQ(space->ProbConsistent(), Prob(Rational(1, 2)));
  EXPECT_EQ(space->ProbInconsistent(), Prob(Rational(1, 2)));
}

TEST(CoinExample, EventsGroupBySmsSets) {
  auto engine = GDatalog::Create(kCoinProgram, "");
  ASSERT_TRUE(engine.ok());
  auto space = engine->Infer();
  ASSERT_TRUE(space.ok());
  auto events = space->Events();
  // Two events: the empty stable-model set (mass 1/2) and the two-model set
  // (mass 1/2).
  ASSERT_EQ(events.size(), 2u);
  for (const auto& [models, mass] : events) {
    EXPECT_EQ(mass, Prob(Rational(1, 2)));
    EXPECT_TRUE(models.empty() || models.size() == 2);
  }
}

TEST(CoinExample, AddingCoinOneConstraintMergesEvents) {
  // §3 remarks that adding "Coin(1) → ⊥" makes both configurations lead to
  // the same (empty) set of stable models — but they remain *different*
  // possible outcomes, distinguished by their recorded choices.
  std::string program = std::string(kCoinProgram) + "\n:- coin(1).\n";
  auto engine = GDatalog::Create(program, "");
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  auto space = engine->Infer();
  ASSERT_TRUE(space.ok());
  ASSERT_EQ(space->outcomes.size(), 2u);
  for (const PossibleOutcome& outcome : space->outcomes) {
    EXPECT_TRUE(outcome.models.empty());
  }
  auto events = space->Events();
  ASSERT_EQ(events.size(), 1u);  // both outcomes in the same event
  EXPECT_EQ(events.begin()->second, Prob::FromDouble(1.0));
  EXPECT_EQ(space->ProbInconsistent(), Prob::FromDouble(1.0));
}

// ---------------------------------------------------------------------------
// Examples 1.1 / 3.1 / 3.6 / 3.10: network resilience.
// ---------------------------------------------------------------------------
constexpr const char* kNetworkProgram = R"(
  % Malware spreads over links with success rate 10%.
  infected(Y, flip<0.1>[X, Y]) :- infected(X, 1), connected(X, Y).
  % A router that is not infected is uninfected.
  uninfected(X) :- router(X), not infected(X, 1).
  % Domination fails when two uninfected routers are connected.
  :- uninfected(X), uninfected(Y), connected(X, Y).
)";

std::string CliqueDatabase(int n, int infected) {
  std::string db;
  for (int i = 1; i <= n; ++i) db += "router(" + std::to_string(i) + ").\n";
  for (int i = 1; i <= n; ++i) {
    for (int j = 1; j <= n; ++j) {
      if (i != j) {
        db += "connected(" + std::to_string(i) + ", " + std::to_string(j) +
              ").\n";
      }
    }
  }
  db += "infected(" + std::to_string(infected) + ", 1).\n";
  return db;
}

TEST(NetworkResilience, DominationProbabilityIsExactly19Percent) {
  // Example 3.10: on the fully connected 3-router network with router 1
  // infected, the malware dominates with probability 1 - 0.9² = 0.19.
  auto engine = GDatalog::Create(kNetworkProgram, CliqueDatabase(3, 1));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_TRUE(engine->stratified());
  EXPECT_EQ(engine->grounder().name(), "perfect");

  auto space = engine->Infer();
  ASSERT_TRUE(space.ok()) << space.status().ToString();
  EXPECT_TRUE(space->complete);
  EXPECT_EQ(space->finite_mass, Prob::FromDouble(1.0));

  // Domination <=> the program has NO stable model is wrong reading: the
  // constraint kills outcomes where two uninfected routers are connected,
  // i.e. non-dominated networks have no stable model. Dominated networks
  // keep theirs. P(dominated) = P(some stable model) = 0.19.
  EXPECT_EQ(space->ProbConsistent(), Prob(Rational(19, 100)));
  EXPECT_EQ(space->ProbInconsistent(), Prob(Rational(81, 100)));
}

TEST(NetworkResilience, ExampleThreeSixOutcome) {
  // Example 3.6/3.10 singles out the outcome where both flips are 0: it has
  // no stable model and probability 0.9² = 81/100.
  auto engine = GDatalog::Create(kNetworkProgram, CliqueDatabase(3, 1));
  ASSERT_TRUE(engine.ok());
  ChaseOptions options;
  options.keep_groundings = true;
  auto space = engine->Infer(options);
  ASSERT_TRUE(space.ok());

  int both_zero = 0;
  for (const PossibleOutcome& outcome : space->outcomes) {
    bool all_zero = true;
    for (const auto& [active, value] : outcome.choices.entries()) {
      if (!(value == Value::Int(0))) all_zero = false;
    }
    if (all_zero && outcome.choices.size() == 2) {
      ++both_zero;
      EXPECT_EQ(outcome.prob, Prob(Rational(81, 100)));
      EXPECT_TRUE(outcome.models.empty());
      ASSERT_NE(outcome.grounding, nullptr);
      EXPECT_GT(outcome.grounding->size(), 0u);
    }
  }
  EXPECT_EQ(both_zero, 1);
}

TEST(NetworkResilience, SimpleAndPerfectGroundersAgreeOnEventMasses) {
  // Theorem 5.3 specialized: the perfect semantics is as good as the simple
  // one; on this program both are complete, so the event masses coincide.
  GDatalog::Options simple_options;
  simple_options.grounder = GrounderKind::kSimple;
  auto simple_engine = GDatalog::Create(kNetworkProgram, CliqueDatabase(3, 1),
                                        std::move(simple_options));
  ASSERT_TRUE(simple_engine.ok());
  GDatalog::Options perfect_options;
  perfect_options.grounder = GrounderKind::kPerfect;
  auto perfect_engine = GDatalog::Create(kNetworkProgram, CliqueDatabase(3, 1),
                                         std::move(perfect_options));
  ASSERT_TRUE(perfect_engine.ok());

  auto simple_space = simple_engine->Infer();
  ASSERT_TRUE(simple_space.ok()) << simple_space.status().ToString();
  auto perfect_space = perfect_engine->Infer();
  ASSERT_TRUE(perfect_space.ok()) << perfect_space.status().ToString();

  EXPECT_EQ(simple_space->ProbConsistent(), Prob(Rational(19, 100)));
  EXPECT_EQ(perfect_space->ProbConsistent(), Prob(Rational(19, 100)));

  auto cmp = IsAsGoodAs(*perfect_space, *simple_space);
  ASSERT_TRUE(cmp.ok()) << cmp.status().ToString();
  EXPECT_TRUE(cmp->as_good) << cmp->violation;
}

TEST(NetworkResilience, MarginalOfInfectionIsExact) {
  auto engine = GDatalog::Create(kNetworkProgram, CliqueDatabase(3, 1));
  ASSERT_TRUE(engine.ok());
  auto space = engine->Infer();
  ASSERT_TRUE(space.ok());

  auto atom = engine->ParseGroundAtom("infected(2, 1)");
  ASSERT_TRUE(atom.ok()) << atom.status().ToString();
  // Infection cascades: router 2 is infected either directly from router 1
  // (0.1) or via router 3 (0.9 · 0.1 · 0.1), so P(infected(2,1)) =
  // 0.1 + 0.009 = 109/1000. Every outcome infecting router 2 is dominated
  // (at most one uninfected router remains), so the same mass survives the
  // consistency filter.
  OutcomeSpace::Bounds bounds = space->Marginal(*atom);
  EXPECT_EQ(bounds.lower, Prob(Rational(109, 1000)));
  EXPECT_EQ(bounds.upper, Prob(Rational(109, 1000)));

  // Conditioned on domination (= consistency): (109/1000) / (19/100).
  auto conditioned = space->MarginalGivenConsistent(*atom);
  ASSERT_TRUE(conditioned.has_value());
  EXPECT_EQ(conditioned->lower, Prob(Rational(109, 190)));
}

// ---------------------------------------------------------------------------
// Appendix E: dimes and quarters with stratified negation (Figure 1).
// ---------------------------------------------------------------------------
constexpr const char* kDimeQuarterProgram = R"(
  dimetail(X, flip<0.5>[X]) :- dime(X).
  somedimetail :- dimetail(X, 1).
  quartertail(X, flip<0.5>[X]) :- quarter(X), not somedimetail.
)";

constexpr const char* kDimeQuarterDb = "dime(1). dime(2). quarter(3).";

TEST(DimeQuarter, PerfectGroundingEnumeratesExactOutcomes) {
  auto engine = GDatalog::Create(kDimeQuarterProgram, kDimeQuarterDb);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_TRUE(engine->stratified());
  EXPECT_EQ(engine->grounder().name(), "perfect");

  auto space = engine->Infer();
  ASSERT_TRUE(space.ok()) << space.status().ToString();
  EXPECT_TRUE(space->complete);
  EXPECT_EQ(space->finite_mass, Prob::FromDouble(1.0));

  // Outcomes: 3 with some dime tail (choices over the two dimes: 11,10,01)
  // — the quarter is never tossed — plus 2 where both dimes are heads and
  // the quarter is tossed (00+q0, 00+q1). Total 5.
  EXPECT_EQ(space->outcomes.size(), 5u);

  int two_choice_outcomes = 0;
  int three_choice_outcomes = 0;
  for (const PossibleOutcome& outcome : space->outcomes) {
    // Stratified programs: every outcome has exactly one stable model
    // (Lemma E.1 / Proposition 5.2).
    EXPECT_EQ(outcome.models.size(), 1u);
    if (outcome.choices.size() == 2) {
      ++two_choice_outcomes;
      EXPECT_EQ(outcome.prob, Prob(Rational(1, 4)));
    } else {
      ASSERT_EQ(outcome.choices.size(), 3u);
      ++three_choice_outcomes;
      EXPECT_EQ(outcome.prob, Prob(Rational(1, 8)));
    }
  }
  EXPECT_EQ(two_choice_outcomes, 3);
  EXPECT_EQ(three_choice_outcomes, 2);

  // P(quarter shows tail) = P(no dime tail) * 1/2 = 1/8.
  auto atom = engine->ParseGroundAtom("quartertail(3, 1)");
  ASSERT_TRUE(atom.ok());
  OutcomeSpace::Bounds bounds = space->Marginal(*atom);
  EXPECT_EQ(bounds.lower, Prob(Rational(1, 8)));
  EXPECT_EQ(bounds.upper, Prob(Rational(1, 8)));
}

TEST(DimeQuarter, SimpleGrounderWastesMassOnSuperfluousQuarterChoices) {
  // §5's motivation: the simple grounder grounds the quarter rule even when
  // a dime shows tail (it ignores negation while grounding), forcing a
  // choice for the quarter in every outcome. The event masses — and hence
  // every probability — are unchanged (the perfect semantics is as good
  // as, and here equal to, the simple one on finite-outcome events), but
  // outcome granularity differs: 4 * 2 = 8 outcomes instead of 5.
  GDatalog::Options options;
  options.grounder = GrounderKind::kSimple;
  auto engine =
      GDatalog::Create(kDimeQuarterProgram, kDimeQuarterDb, std::move(options));
  ASSERT_TRUE(engine.ok());
  auto space = engine->Infer();
  ASSERT_TRUE(space.ok()) << space.status().ToString();
  EXPECT_TRUE(space->complete);
  EXPECT_EQ(space->outcomes.size(), 8u);
  EXPECT_EQ(space->finite_mass, Prob::FromDouble(1.0));

  auto atom = engine->ParseGroundAtom("quartertail(3, 1)");
  ASSERT_TRUE(atom.ok());
  OutcomeSpace::Bounds bounds = space->Marginal(*atom);
  EXPECT_EQ(bounds.lower, Prob(Rational(1, 8)));
}

TEST(DimeQuarter, PerfectIsAsGoodAsSimple) {
  GDatalog::Options simple_opts;
  simple_opts.grounder = GrounderKind::kSimple;
  auto simple_engine =
      GDatalog::Create(kDimeQuarterProgram, kDimeQuarterDb, std::move(simple_opts));
  ASSERT_TRUE(simple_engine.ok());
  GDatalog::Options perfect_opts;
  perfect_opts.grounder = GrounderKind::kPerfect;
  auto perfect_engine = GDatalog::Create(kDimeQuarterProgram, kDimeQuarterDb,
                                         std::move(perfect_opts));
  ASSERT_TRUE(perfect_engine.ok());

  auto simple_space = simple_engine->Infer();
  ASSERT_TRUE(simple_space.ok());
  auto perfect_space = perfect_engine->Infer();
  ASSERT_TRUE(perfect_space.ok());

  // Theorem 5.3: Π_GPerfect(D) is as good as Π_G(D) for any grounder G.
  auto cmp = IsAsGoodAs(*perfect_space, *simple_space);
  ASSERT_TRUE(cmp.ok());
  EXPECT_TRUE(cmp->as_good) << cmp->violation;
}

}  // namespace
}  // namespace gdlog
