// Extension distributions: discretized Gaussian (normalgrid) and Zipf,
// standalone and end-to-end through the chase.
#include <gtest/gtest.h>

#include <cmath>

#include "dist/distribution.h"
#include "gdatalog/engine.h"

namespace gdlog {
namespace {

class ContinuousTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_ = DistributionRegistry::Builtins();
    ASSERT_TRUE(RegisterExtensionDistributions(&registry_).ok());
  }
  DistributionRegistry registry_;
};

TEST_F(ContinuousTest, ExtensionsAreRegistered) {
  EXPECT_NE(registry_.Lookup("normalgrid"), nullptr);
  EXPECT_NE(registry_.Lookup("zipf"), nullptr);
  // Builtins still present.
  EXPECT_NE(registry_.Lookup("flip"), nullptr);
}

TEST_F(ContinuousTest, NormalGridMassesSumToOne) {
  const Distribution* normal = registry_.Lookup("normalgrid");
  std::vector<Value> params = {Value::Double(0.0), Value::Double(1.0),
                               Value::Double(0.5)};
  ASSERT_TRUE(normal->HasFiniteSupport(params));
  std::vector<Value> support = normal->Support(params, 0);
  ASSERT_GT(support.size(), 10u);
  double total = 0.0;
  for (const Value& v : support) total += normal->Pmf(params, v).value();
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(ContinuousTest, NormalGridIsSymmetricAndPeaked) {
  const Distribution* normal = registry_.Lookup("normalgrid");
  std::vector<Value> params = {Value::Double(0.0), Value::Double(1.0),
                               Value::Double(0.5)};
  double at0 = normal->Pmf(params, Value::Double(0.0)).value();
  double at1 = normal->Pmf(params, Value::Double(1.0)).value();
  double atm1 = normal->Pmf(params, Value::Double(-1.0)).value();
  EXPECT_GT(at0, at1);
  EXPECT_NEAR(at1, atm1, 1e-12);
  // Off-grid points carry no mass.
  EXPECT_EQ(normal->Pmf(params, Value::Double(0.3)).value(), 0.0);
}

TEST_F(ContinuousTest, NormalGridShiftsWithMu) {
  const Distribution* normal = registry_.Lookup("normalgrid");
  std::vector<Value> params = {Value::Double(10.0), Value::Double(2.0),
                               Value::Double(1.0)};
  double peak = normal->Pmf(params, Value::Double(10.0)).value();
  EXPECT_GT(peak, normal->Pmf(params, Value::Double(12.0)).value());
  EXPECT_GT(peak, 0.15);  // step/σ = 0.5 ⇒ peak ≈ 0.197
}

TEST_F(ContinuousTest, NormalGridHalfCellCapIsConfigurable) {
  // σ/Δx = 10^6 wants 8·10^6 half-cells; the default registration clamps
  // the grid at ±4096 cells, a custom registration at the requested cap.
  std::vector<Value> params = {Value::Double(0.0), Value::Double(1.0),
                               Value::Double(1e-6)};
  const Distribution* capped_default = registry_.Lookup("normalgrid");
  EXPECT_EQ(capped_default->Support(params, 0).size(), 2u * 4096 + 1);

  DistributionRegistry custom = DistributionRegistry::Builtins();
  ExtensionOptions options;
  options.normalgrid_max_half_cells = 64;
  ASSERT_TRUE(RegisterExtensionDistributions(&custom, options).ok());
  const Distribution* capped_small = custom.Lookup("normalgrid");
  std::vector<Value> small_support = capped_small->Support(params, 0);
  EXPECT_EQ(small_support.size(), 2u * 64 + 1);
  // The truncated grid still renormalizes to total mass 1.
  double total = 0.0;
  for (const Value& v : small_support) {
    total += capped_small->Pmf(params, v).value();
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // A narrow grid (σ spans few cells) is unaffected by a generous cap.
  DistributionRegistry wide = DistributionRegistry::Builtins();
  options.normalgrid_max_half_cells = int64_t{1} << 20;
  ASSERT_TRUE(RegisterExtensionDistributions(&wide, options).ok());
  std::vector<Value> narrow = {Value::Double(0.0), Value::Double(1.0),
                               Value::Double(0.5)};
  EXPECT_EQ(wide.Lookup("normalgrid")->Support(narrow, 0).size(),
            registry_.Lookup("normalgrid")->Support(narrow, 0).size());
}

TEST_F(ContinuousTest, NormalGridHalfCellCapIsRangeValidated) {
  for (int64_t bad : {int64_t{0}, int64_t{-5}, (int64_t{1} << 20) + 1}) {
    DistributionRegistry registry = DistributionRegistry::Builtins();
    ExtensionOptions options;
    options.normalgrid_max_half_cells = bad;
    Status st = RegisterExtensionDistributions(&registry, options);
    EXPECT_FALSE(st.ok()) << "cap " << bad;
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << "cap " << bad;
  }
}

TEST_F(ContinuousTest, NormalGridInvalidParamsDegenerate) {
  const Distribution* normal = registry_.Lookup("normalgrid");
  std::vector<Value> params = {Value::Double(3.0), Value::Double(-1.0),
                               Value::Double(0.5)};
  EXPECT_EQ(normal->Pmf(params, Value::Double(3.0)), Prob::One());
  EXPECT_EQ(normal->Support(params, 0).size(), 1u);
}

TEST_F(ContinuousTest, NormalGridSampleMeanAndSpread) {
  const Distribution* normal = registry_.Lookup("normalgrid");
  std::vector<Value> params = {Value::Double(5.0), Value::Double(2.0),
                               Value::Double(0.25)};
  Rng rng(99);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    double x = normal->Sample(params, &rng).AsReal();
    sum += x;
    sum_sq += x * x;
  }
  double mean = sum / kDraws;
  double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST_F(ContinuousTest, ZipfMassesMatchDefinition) {
  const Distribution* zipf = registry_.Lookup("zipf");
  std::vector<Value> params = {Value::Double(1.0), Value::Int(4)};
  // H = 1 + 1/2 + 1/3 + 1/4 = 25/12.
  double h = 25.0 / 12.0;
  EXPECT_NEAR(zipf->Pmf(params, Value::Int(1)).value(), 1.0 / h, 1e-12);
  EXPECT_NEAR(zipf->Pmf(params, Value::Int(4)).value(), 0.25 / h, 1e-12);
  EXPECT_EQ(zipf->Pmf(params, Value::Int(5)), Prob::Zero());
  EXPECT_EQ(zipf->Pmf(params, Value::Int(0)), Prob::Zero());
  EXPECT_EQ(zipf->Support(params, 0).size(), 4u);
}

TEST_F(ContinuousTest, ZipfIsMonotoneDecreasing) {
  const Distribution* zipf = registry_.Lookup("zipf");
  std::vector<Value> params = {Value::Double(1.5), Value::Int(10)};
  double prev = 1.0;
  for (int k = 1; k <= 10; ++k) {
    double mass = zipf->Pmf(params, Value::Int(k)).value();
    EXPECT_LT(mass, prev);
    prev = mass;
  }
}

TEST_F(ContinuousTest, EndToEndThroughChase) {
  // A sensor reads a discretized-Gaussian temperature; an alert fires above
  // a threshold. Exact inference over the grid.
  auto registry = std::make_unique<DistributionRegistry>(
      DistributionRegistry::Builtins());
  ASSERT_TRUE(RegisterExtensionDistributions(registry.get()).ok());
  GDatalog::Options options;
  options.registry = std::move(registry);
  auto engine = GDatalog::Create(
      "reading(S, normalgrid<20.0, 2.0, 1.0>[S]) :- sensor(S).\n"
      "alert(S) :- reading(S, V), hot(V).",
      "sensor(1). hot(23.0). hot(24.0). hot(25.0). hot(26.0). hot(27.0). "
      "hot(28.0).",
      std::move(options));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  auto space = engine->Infer();
  ASSERT_TRUE(space.ok()) << space.status().ToString();
  EXPECT_TRUE(space->complete);
  EXPECT_NEAR(space->finite_mass.value(), 1.0, 1e-9);

  auto alert = engine->ParseGroundAtom("alert(1)");
  ASSERT_TRUE(alert.ok());
  OutcomeSpace::Bounds bounds = space->Marginal(*alert);
  // P(reading >= 23) with cells centered at integers: mass above 22.5,
  // i.e. 1 - Φ(2.5/2) ≈ 0.10565.
  EXPECT_NEAR(bounds.lower.value(), 0.10565, 0.002);
  EXPECT_EQ(bounds.lower, bounds.upper);  // stratified: tight bounds
}

TEST_F(ContinuousTest, ZipfEndToEnd) {
  auto registry = std::make_unique<DistributionRegistry>(
      DistributionRegistry::Builtins());
  ASSERT_TRUE(RegisterExtensionDistributions(registry.get()).ok());
  GDatalog::Options options;
  options.registry = std::move(registry);
  auto engine = GDatalog::Create("rank(zipf<1.0, 3>).", "", std::move(options));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  auto space = engine->Infer();
  ASSERT_TRUE(space.ok());
  EXPECT_EQ(space->outcomes.size(), 3u);
  EXPECT_NEAR(space->finite_mass.value(), 1.0, 1e-9);
}

}  // namespace
}  // namespace gdlog
