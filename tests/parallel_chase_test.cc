// Parallel frontier chase: Explore with 1, 2, and 8 workers must produce
// bit-identical outcome spaces — same outcomes in the same (canonical)
// order, same probabilities, same models, same masses — on the paper's
// examples, with and without trigger shuffling (Lemma 4.4), with both
// grounders, and under infinite-support truncation. Also covers the
// concurrency-bearing utilities underneath: the work-stealing ThreadPool
// and the copy-on-write FactStore.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "gdatalog/engine.h"
#include "ground/fact_store.h"
#include "util/thread_pool.h"

namespace gdlog {
namespace {

constexpr const char* kNetworkProgram = R"(
  infected(Y, flip<0.1>[X, Y]) :- infected(X, 1), connected(X, Y).
  uninfected(X) :- router(X), not infected(X, 1).
  :- uninfected(X), uninfected(Y), connected(X, Y).
)";

std::string Clique(int n) {
  std::string db;
  for (int i = 1; i <= n; ++i) db += "router(" + std::to_string(i) + ").\n";
  for (int i = 1; i <= n; ++i) {
    for (int j = 1; j <= n; ++j) {
      if (i != j) {
        db += "connected(" + std::to_string(i) + ", " + std::to_string(j) +
              ").\n";
      }
    }
  }
  db += "infected(1, 1).\n";
  return db;
}

constexpr const char* kDimeQuarterProgram = R"(
  dimetail(X, flip<0.5>[X]) :- dime(X).
  somedimetail :- dimetail(X, 1).
  quartertail(X, flip<0.5>[X]) :- quarter(X), not somedimetail.
)";
constexpr const char* kDimeQuarterDb = "dime(1). dime(2). quarter(3).";

/// Asserts that `a` and `b` are the same outcome space, element by element
/// and in the same order (the merge sorts canonically for every thread
/// count, so equality must hold positionally, not just as sets).
void ExpectIdenticalSpaces(const OutcomeSpace& a, const OutcomeSpace& b,
                           const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_TRUE(a.outcomes[i].choices == b.outcomes[i].choices)
        << "outcome " << i;
    EXPECT_EQ(a.outcomes[i].prob, b.outcomes[i].prob) << "outcome " << i;
    EXPECT_EQ(a.outcomes[i].models, b.outcomes[i].models) << "outcome " << i;
  }
  EXPECT_EQ(a.finite_mass, b.finite_mass);
  EXPECT_EQ(a.residual_mass(), b.residual_mass());
  EXPECT_EQ(a.support_truncation_mass, b.support_truncation_mass);
  EXPECT_EQ(a.depth_truncated_paths, b.depth_truncated_paths);
  EXPECT_EQ(a.pruned_paths, b.pruned_paths);
  EXPECT_EQ(a.complete, b.complete);
}

struct DeterminismCase {
  const char* label;
  const char* program;
  std::string db;
  uint64_t trigger_shuffle_seed;
  GrounderKind grounder;
};

class ParallelDeterminismTest
    : public ::testing::TestWithParam<DeterminismCase> {};

TEST_P(ParallelDeterminismTest, SameSpaceForEveryThreadCount) {
  const DeterminismCase& c = GetParam();
  GDatalog::Options options;
  options.grounder = c.grounder;
  auto engine = GDatalog::Create(c.program, c.db, std::move(options));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  ChaseOptions serial;
  serial.num_threads = 1;
  serial.trigger_shuffle_seed = c.trigger_shuffle_seed;
  auto base = engine->Infer(serial);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  EXPECT_TRUE(base->complete);

  for (size_t threads : {size_t{2}, size_t{8}}) {
    ChaseOptions parallel = serial;
    parallel.num_threads = threads;
    auto space = engine->Infer(parallel);
    ASSERT_TRUE(space.ok()) << space.status().ToString();
    ExpectIdenticalSpaces(*base, *space,
                          std::string(c.label) + " threads=" +
                              std::to_string(threads));
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperExamples, ParallelDeterminismTest,
    ::testing::Values(
        DeterminismCase{"network-auto", kNetworkProgram, Clique(3), 0,
                        GrounderKind::kAuto},
        DeterminismCase{"network-simple-incremental", kNetworkProgram,
                        Clique(3), 0, GrounderKind::kSimple},
        DeterminismCase{"network-shuffled", kNetworkProgram, Clique(3),
                        31337, GrounderKind::kAuto},
        DeterminismCase{"network-n4-shuffled", kNetworkProgram, Clique(4),
                        99, GrounderKind::kSimple},
        DeterminismCase{"dime-quarter", kDimeQuarterProgram, kDimeQuarterDb,
                        0, GrounderKind::kAuto},
        DeterminismCase{"dime-quarter-shuffled", kDimeQuarterProgram,
                        kDimeQuarterDb, 17, GrounderKind::kSimple}));

TEST(ParallelChase, AutoThreadCountMatchesSerial) {
  auto engine = GDatalog::Create(kNetworkProgram, Clique(3));
  ASSERT_TRUE(engine.ok());
  ChaseOptions serial;
  serial.num_threads = 1;
  ChaseOptions auto_threads;
  auto_threads.num_threads = 0;  // hardware concurrency
  auto a = engine->Infer(serial);
  auto b = engine->Infer(auto_threads);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectIdenticalSpaces(*a, *b, "auto thread count");
}

TEST(ParallelChase, SupportTruncationMassIsThreadCountInvariant) {
  // Countably infinite support: the residual accounting (truncation mass
  // summed in canonical node order) must not depend on which worker
  // truncated which node.
  auto engine = GDatalog::Create(
      "n(X, geometric<0.5>[X]) :- item(X).", "item(1). item(2). item(3).");
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ChaseOptions serial;
  serial.num_threads = 1;
  serial.support_limit = 6;
  auto base = engine->Infer(serial);
  ASSERT_TRUE(base.ok());
  EXPECT_FALSE(base->complete);
  EXPECT_LT(base->finite_mass.value(), 1.0);
  for (size_t threads : {size_t{2}, size_t{8}}) {
    ChaseOptions parallel = serial;
    parallel.num_threads = threads;
    auto space = engine->Infer(parallel);
    ASSERT_TRUE(space.ok());
    ExpectIdenticalSpaces(*base, *space,
                          "truncation threads=" + std::to_string(threads));
  }
}

TEST(ParallelChase, MaxOutcomesBudgetIsRespectedUnderParallelism) {
  auto engine = GDatalog::Create(kNetworkProgram, Clique(3));
  ASSERT_TRUE(engine.ok());
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    ChaseOptions options;
    options.num_threads = threads;
    options.max_outcomes = 3;
    auto space = engine->Infer(options);
    ASSERT_TRUE(space.ok());
    // Which outcomes are enumerated under a binding budget is
    // schedule-dependent; the count and the incompleteness flag are not.
    EXPECT_EQ(space->outcomes.size(), 3u) << "threads=" << threads;
    EXPECT_FALSE(space->complete) << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsEveryTaskIncludingNestedSpawns) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.workers(), 4u);
  std::atomic<int> count{0};
  // A binary spawn tree of depth 8: 2^8 - 1 = 255 tasks in total.
  std::function<void(int)> spawn_tree = [&](int depth) {
    pool.Submit([&, depth](size_t worker) {
      EXPECT_LT(worker, 4u);
      count.fetch_add(1);
      if (depth > 1) {
        spawn_tree(depth - 1);
        spawn_tree(depth - 1);
      }
    });
  };
  spawn_tree(8);
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 255);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&](size_t) { count.fetch_add(1); });
    }
    pool.WaitIdle();
    EXPECT_EQ(count.load(), (round + 1) * 10);
  }
}

TEST(ThreadPool, DefaultWorkerCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultWorkerCount(), 1u);
}

// ---------------------------------------------------------------------------
// Copy-on-write FactStore
// ---------------------------------------------------------------------------

TEST(FactStoreCow, CopiesAreIndependent) {
  FactStore base;
  base.Insert(1, {Value::Int(1), Value::Int(2)});
  base.Insert(1, {Value::Int(3), Value::Int(4)});
  base.Insert(2, {Value::Int(5)});

  FactStore copy = base;
  EXPECT_EQ(copy.size(), 3u);
  EXPECT_TRUE(copy.Contains(1, {Value::Int(1), Value::Int(2)}));

  // Writing to the copy must not leak into the base, and vice versa.
  copy.Insert(1, {Value::Int(9), Value::Int(9)});
  EXPECT_EQ(copy.Count(1), 3u);
  EXPECT_EQ(base.Count(1), 2u);
  base.Insert(2, {Value::Int(6)});
  EXPECT_EQ(base.Count(2), 2u);
  EXPECT_EQ(copy.Count(2), 1u);
}

TEST(FactStoreCow, BuiltIndicesSurviveCopyAndStayCorrect) {
  FactStore base;
  base.Insert(1, {Value::Int(1), Value::Int(10)});
  base.Insert(1, {Value::Int(1), Value::Int(20)});
  base.Insert(1, {Value::Int(2), Value::Int(30)});
  const auto* ones = base.IndexLookup(1, 0, Value::Int(1));
  ASSERT_NE(ones, nullptr);
  EXPECT_EQ(ones->size(), 2u);

  FactStore copy = base;
  copy.Insert(1, {Value::Int(1), Value::Int(40)});
  const auto* copy_ones = copy.IndexLookup(1, 0, Value::Int(1));
  ASSERT_NE(copy_ones, nullptr);
  EXPECT_EQ(copy_ones->size(), 3u);
  // The base's index is untouched by the copy's insert.
  ones = base.IndexLookup(1, 0, Value::Int(1));
  ASSERT_NE(ones, nullptr);
  EXPECT_EQ(ones->size(), 2u);
}

TEST(FactStoreCow, FrozenStoreServesConcurrentReaders) {
  FactStore store;
  for (int i = 0; i < 100; ++i) {
    store.Insert(1, {Value::Int(i % 7), Value::Int(i)});
  }
  store.Freeze();
  ASSERT_TRUE(store.frozen());
  std::vector<std::thread> readers;
  std::atomic<int> hits{0};
  for (int t = 0; t < 8; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        const auto* rows = store.IndexLookup(1, 0, Value::Int(i % 7));
        if (rows != nullptr && !rows->empty()) hits.fetch_add(1);
        FactStore copy = store;  // cheap shared-relation copy
        if (copy.Count(1) == 100) hits.fetch_add(1);
      }
    });
  }
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(hits.load(), 8 * 200 * 2);
}

TEST(FactStoreCow, LazyIndexBuildIsSafeAcrossSharingCopies) {
  // Two copies sharing one relation, each lazily building indices from its
  // own thread: call_once must serialize the build on the shared storage.
  FactStore base;
  for (int i = 0; i < 50; ++i) {
    base.Insert(1, {Value::Int(i % 5), Value::Int(i)});
  }
  FactStore a = base;
  FactStore b = base;
  std::thread ta([&] {
    for (int i = 0; i < 100; ++i) {
      a.IndexLookup(1, 0, Value::Int(i % 5));
      a.IndexLookup(1, 1, Value::Int(i % 50));
    }
  });
  std::thread tb([&] {
    for (int i = 0; i < 100; ++i) {
      b.IndexLookup(1, 0, Value::Int(i % 5));
      b.IndexLookup(1, 1, Value::Int(i % 50));
    }
  });
  ta.join();
  tb.join();
  const auto* rows = base.IndexLookup(1, 0, Value::Int(0));
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(rows->size(), 10u);
}

}  // namespace
}  // namespace gdlog
