// Π → Σ_Π translation (§3) and grounder unit tests (Definitions 3.4, 5.1),
// including the worked grounding of Examples 3.2/3.6 and Appendix E.
#include <gtest/gtest.h>

#include <algorithm>

#include "ast/parser.h"
#include "gdatalog/grounder.h"
#include "gdatalog/translation.h"

namespace gdlog {
namespace {

class TranslationTest : public ::testing::Test {
 protected:
  DistributionRegistry registry_ = DistributionRegistry::Builtins();

  Result<TranslatedProgram> Translate(const std::string& text) {
    auto prog = ParseProgram(text);
    if (!prog.ok()) return prog.status();
    GDLOG_RETURN_IF_ERROR(prog->Validate());
    program_ = std::move(prog).value();
    return TranslateToTgd(program_, registry_);
  }

  Program program_;
};

TEST_F(TranslationTest, PlainRulesPassThrough) {
  auto tp = Translate("p(X) :- q(X), not r(X).");
  ASSERT_TRUE(tp.ok()) << tp.status().ToString();
  ASSERT_EQ(tp->sigma().rules().size(), 1u);
  EXPECT_EQ(tp->sigma().rules()[0], program_.rules()[0]);
  EXPECT_TRUE(tp->signatures().empty());
}

TEST_F(TranslationTest, DeltaRuleSplitsIntoActiveAndHeadRules) {
  // Example 3.2: the infection rule becomes an Active rule and a
  // Result-joined head rule.
  auto tp = Translate(
      "infected(Y, flip<0.1>[X, Y]) :- infected(X, 1), connected(X, Y).");
  ASSERT_TRUE(tp.ok()) << tp.status().ToString();
  ASSERT_EQ(tp->sigma().rules().size(), 2u);
  ASSERT_EQ(tp->signatures().size(), 1u);
  const DeltaSignature& sig = tp->signatures()[0];
  EXPECT_EQ(sig.param_count, 1u);
  EXPECT_EQ(sig.event_count, 2u);
  EXPECT_TRUE(tp->IsActivePredicate(sig.active_pred));
  EXPECT_TRUE(tp->IsResultPredicate(sig.result_pred));
  EXPECT_EQ(tp->SignatureByActive(sig.active_pred), &sig);
  EXPECT_EQ(tp->SignatureByResult(sig.result_pred), &sig);

  // Rule 0: body → Active(0.1, X, Y) — arity |p̄| + |q̄| = 3.
  const Rule& active_rule = tp->sigma().rules()[0];
  EXPECT_EQ(active_rule.head.predicate, sig.active_pred);
  EXPECT_EQ(active_rule.head.arity(), 3u);
  EXPECT_EQ(active_rule.body.size(), 2u);

  // Rule 1: Result(0.1, X, Y, Z), body → infected(Y, Z).
  const Rule& head_rule = tp->sigma().rules()[1];
  EXPECT_EQ(head_rule.body.size(), 3u);
  EXPECT_EQ(head_rule.body[0].atom.predicate, sig.result_pred);
  EXPECT_EQ(head_rule.body[0].atom.arity(), 4u);
  EXPECT_TRUE(head_rule.head.IsPlain());
}

TEST_F(TranslationTest, MultipleDeltaTermsInOneHead) {
  auto tp = Translate("pair(flip<0.5>[l], flip<0.5>[r]) :- go.");
  ASSERT_TRUE(tp.ok()) << tp.status().ToString();
  // Two Active rules + one head rule; one shared signature (same dist, same
  // param and event dimensions).
  ASSERT_EQ(tp->sigma().rules().size(), 3u);
  EXPECT_EQ(tp->signatures().size(), 1u);
  const Rule& head_rule = tp->sigma().rules()[2];
  EXPECT_EQ(head_rule.body.size(), 3u);  // two Result atoms + go
}

TEST_F(TranslationTest, DistinctSignaturesPerEventArity) {
  auto tp = Translate(
      "a(flip<0.5>) :- go.\n"
      "b(flip<0.5>[X]) :- item(X).");
  ASSERT_TRUE(tp.ok());
  EXPECT_EQ(tp->signatures().size(), 2u);
}

TEST_F(TranslationTest, UnknownDistributionFails) {
  auto tp = Translate("a(gauss<0.5>) :- go.");
  ASSERT_FALSE(tp.ok());
  EXPECT_EQ(tp.status().code(), StatusCode::kNotFound);
}

TEST_F(TranslationTest, WrongParamDimensionFails) {
  auto tp = Translate("a(flip<0.5, 0.5>) :- go.");
  ASSERT_FALSE(tp.ok());
  EXPECT_EQ(tp.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(TranslationTest, OriginTracksSourceRules) {
  auto tp = Translate(
      "p(X) :- q(X).\n"
      "r(flip<0.5>[X]) :- q(X).");
  ASSERT_TRUE(tp.ok());
  ASSERT_EQ(tp->origin().size(), 3u);
  EXPECT_EQ(tp->origin()[0], 0u);  // plain rule
  EXPECT_EQ(tp->origin()[1], 1u);  // Active rule from rule 1
  EXPECT_EQ(tp->origin()[2], 1u);  // head rule from rule 1
}

TEST_F(TranslationTest, ConstraintsPassThrough) {
  auto tp = Translate("p(1). :- p(X), not q(X).");
  ASSERT_TRUE(tp.ok()) << tp.status().ToString();
  ASSERT_EQ(tp->sigma().rules().size(), 2u);
  EXPECT_TRUE(tp->sigma().rules()[1].is_constraint);
}

// ---------------------------------------------------------------------------
// Simple grounder (Definition 3.4; Example 3.6)
// ---------------------------------------------------------------------------

class GrounderTest : public ::testing::Test {
 protected:
  // Builds program + database + translation; returns the interner.
  void Setup(const std::string& program_text, const std::string& db_text) {
    auto prog = ParseProgram(program_text);
    ASSERT_TRUE(prog.ok()) << prog.status().ToString();
    program_ = std::move(prog).value();
    ASSERT_TRUE(program_.Validate().ok());
    auto db = ParseFacts(db_text, program_.interner());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
    auto tp = TranslateToTgd(program_, registry_);
    ASSERT_TRUE(tp.ok()) << tp.status().ToString();
    translated_ = std::move(tp).value();
  }

  GroundAtom MakeActive(size_t sig_index, Tuple args) {
    return GroundAtom{translated_.signatures()[sig_index].active_pred,
                      std::move(args)};
  }

  DistributionRegistry registry_ = DistributionRegistry::Builtins();
  Program program_;
  FactStore db_;
  TranslatedProgram translated_;
};

constexpr const char* kNetworkProgram = R"(
  infected(Y, flip<0.1>[X, Y]) :- infected(X, 1), connected(X, Y).
  uninfected(X) :- router(X), not infected(X, 1).
  :- uninfected(X), uninfected(Y), connected(X, Y).
)";

constexpr const char* kNetworkDb = R"(
  router(1). router(2). router(3).
  connected(1, 2). connected(2, 1).
  connected(1, 3). connected(3, 1).
  connected(2, 3). connected(3, 2).
  infected(1, 1).
)";

TEST_F(GrounderTest, SimpleGrounderOnEmptyChoices) {
  // Example 3.6: GSimple(∅) contains the two Active rules for (1,2), (1,3)
  // and the ground uninfected/constraint rules for all routers.
  Setup(kNetworkProgram, kNetworkDb);
  SimpleGrounder grounder(&translated_, &db_);
  GroundRuleSet out;
  ASSERT_TRUE(grounder.Ground(ChoiceSet(), &out).ok());

  uint32_t active = translated_.signatures()[0].active_pred;
  EXPECT_EQ(out.heads().Count(active), 2u);  // Active(0.1,1,2), (0.1,1,3)

  uint32_t uninfected = program_.interner()->Lookup("uninfected");
  // The simple grounder ignores negation while grounding: uninfected(i)
  // rules appear for every router.
  EXPECT_EQ(out.heads().Count(uninfected), 3u);

  std::vector<GroundAtom> triggers =
      FindTriggers(translated_, out, ChoiceSet());
  ASSERT_EQ(triggers.size(), 2u);
  EXPECT_EQ(triggers[0].args,
            (Tuple{Value::Double(0.1), Value::Int(1), Value::Int(2)}));
  EXPECT_EQ(triggers[1].args,
            (Tuple{Value::Double(0.1), Value::Int(1), Value::Int(3)}));
}

TEST_F(GrounderTest, SimpleGrounderExtendsWithChoices) {
  // Example 3.6 continued: choices {(1,2)→0, (1,3)→0} close the chase —
  // no new triggers, and the grounding includes the Infected(i, 0) rules.
  Setup(kNetworkProgram, kNetworkDb);
  SimpleGrounder grounder(&translated_, &db_);
  ChoiceSet choices;
  choices.Assign(
      MakeActive(0, {Value::Double(0.1), Value::Int(1), Value::Int(2)}),
      Value::Int(0));
  choices.Assign(
      MakeActive(0, {Value::Double(0.1), Value::Int(1), Value::Int(3)}),
      Value::Int(0));
  GroundRuleSet out;
  ASSERT_TRUE(grounder.Ground(choices, &out).ok());
  EXPECT_TRUE(FindTriggers(translated_, out, choices).empty());

  uint32_t infected = program_.interner()->Lookup("infected");
  EXPECT_TRUE(out.heads().Contains(infected, {Value::Int(2), Value::Int(0)}));
  EXPECT_TRUE(out.heads().Contains(infected, {Value::Int(3), Value::Int(0)}));
}

TEST_F(GrounderTest, SimpleGrounderCascadesOnPositiveChoice) {
  // Choosing 1 for (1,2) infects router 2 and spawns actives (2,1), (2,3).
  Setup(kNetworkProgram, kNetworkDb);
  SimpleGrounder grounder(&translated_, &db_);
  ChoiceSet choices;
  choices.Assign(
      MakeActive(0, {Value::Double(0.1), Value::Int(1), Value::Int(2)}),
      Value::Int(1));
  GroundRuleSet out;
  ASSERT_TRUE(grounder.Ground(choices, &out).ok());
  std::vector<GroundAtom> triggers = FindTriggers(translated_, out, choices);
  // Unresolved: (1,3) plus the new (2,1), (2,3).
  EXPECT_EQ(triggers.size(), 3u);
}

TEST_F(GrounderTest, GroundingIsMonotoneInChoices) {
  // Definition 3.3 requires grounders to be monotone: more choices ⇒ a
  // superset grounding.
  Setup(kNetworkProgram, kNetworkDb);
  SimpleGrounder grounder(&translated_, &db_);
  ChoiceSet small;
  small.Assign(
      MakeActive(0, {Value::Double(0.1), Value::Int(1), Value::Int(2)}),
      Value::Int(1));
  ChoiceSet big = small;
  big.Assign(
      MakeActive(0, {Value::Double(0.1), Value::Int(1), Value::Int(3)}),
      Value::Int(0));

  GroundRuleSet small_out, big_out;
  ASSERT_TRUE(grounder.Ground(small, &small_out).ok());
  ASSERT_TRUE(grounder.Ground(big, &big_out).ok());
  for (const GroundRule* rule : small_out.rules()) {
    EXPECT_TRUE(big_out.Contains(*rule))
        << "lost rule: " << rule->ToString(program_.interner());
  }
}

// ---------------------------------------------------------------------------
// Perfect grounder (Definition 5.1; Appendix E)
// ---------------------------------------------------------------------------

constexpr const char* kDimeQuarter = R"(
  dimetail(X, flip<0.5>[X]) :- dime(X).
  somedimetail :- dimetail(X, 1).
  quartertail(X, flip<0.5>[X]) :- quarter(X), not somedimetail.
)";

constexpr const char* kDimeQuarterDb = "dime(1). dime(2). quarter(3).";

TEST_F(GrounderTest, PerfectGrounderRequiresStratification) {
  Setup("a :- not b. b :- not a.", "");
  auto grounder = PerfectGrounder::Create(program_, &translated_, &db_);
  ASSERT_FALSE(grounder.ok());
  EXPECT_EQ(grounder.status().code(), StatusCode::kNotStratified);
}

TEST_F(GrounderTest, PerfectGrounderStallsUntilChoicesArrive) {
  // With no choices, only the dime stratum is grounded: the quarter rule
  // (later stratum) must wait for the dime flips (Definition 5.1's
  // compatibility condition).
  Setup(kDimeQuarter, kDimeQuarterDb);
  auto grounder = PerfectGrounder::Create(program_, &translated_, &db_);
  ASSERT_TRUE(grounder.ok()) << grounder.status().ToString();

  GroundRuleSet out;
  ASSERT_TRUE((*grounder)->Ground(ChoiceSet(), &out).ok());
  std::vector<GroundAtom> triggers =
      FindTriggers(translated_, out, ChoiceSet());
  ASSERT_EQ(triggers.size(), 2u);  // the two dime flips only
  EXPECT_EQ(triggers[0].args, (Tuple{Value::Double(0.5), Value::Int(1)}));
  EXPECT_EQ(triggers[1].args, (Tuple{Value::Double(0.5), Value::Int(2)}));
  // The quarter predicate is grounded nowhere yet.
  uint32_t quartertail = program_.interner()->Lookup("quartertail");
  EXPECT_EQ(out.heads().Count(quartertail), 0u);
}

TEST_F(GrounderTest, PerfectGrounderAppendixETailCase) {
  // Appendix E, first case: dime 1 tails, dime 2 heads ⇒ somedimetail is
  // derived and the quarter rule is *not* grounded (its negative body
  // hits heads).
  Setup(kDimeQuarter, kDimeQuarterDb);
  auto grounder = PerfectGrounder::Create(program_, &translated_, &db_);
  ASSERT_TRUE(grounder.ok());

  // Both signatures share (flip, 1 param, 1 event) — one Active predicate.
  ASSERT_EQ(translated_.signatures().size(), 1u);
  ChoiceSet choices;
  choices.Assign(MakeActive(0, {Value::Double(0.5), Value::Int(1)}),
                 Value::Int(1));
  choices.Assign(MakeActive(0, {Value::Double(0.5), Value::Int(2)}),
                 Value::Int(0));

  GroundRuleSet out;
  ASSERT_TRUE((*grounder)->Ground(choices, &out).ok());
  EXPECT_TRUE(FindTriggers(translated_, out, choices).empty());

  uint32_t somedimetail = program_.interner()->Lookup("somedimetail");
  uint32_t quartertail = program_.interner()->Lookup("quartertail");
  EXPECT_EQ(out.heads().Count(somedimetail), 1u);
  EXPECT_EQ(out.heads().Count(quartertail), 0u);
  // No Active atom for the quarter either.
  uint32_t active = translated_.signatures()[0].active_pred;
  EXPECT_EQ(out.heads().Count(active), 2u);
}

TEST_F(GrounderTest, PerfectGrounderAppendixEHeadsCase) {
  // Appendix E, second case: both dimes heads ⇒ the quarter's Active atom
  // appears and becomes the next trigger.
  Setup(kDimeQuarter, kDimeQuarterDb);
  auto grounder = PerfectGrounder::Create(program_, &translated_, &db_);
  ASSERT_TRUE(grounder.ok());
  ChoiceSet choices;
  choices.Assign(MakeActive(0, {Value::Double(0.5), Value::Int(1)}),
                 Value::Int(0));
  choices.Assign(MakeActive(0, {Value::Double(0.5), Value::Int(2)}),
                 Value::Int(0));

  GroundRuleSet out;
  ASSERT_TRUE((*grounder)->Ground(choices, &out).ok());
  std::vector<GroundAtom> triggers = FindTriggers(translated_, out, choices);
  ASSERT_EQ(triggers.size(), 1u);
  EXPECT_EQ(triggers[0].args,
            (Tuple{Value::Double(0.5), Value::Int(3)}));
}

TEST_F(GrounderTest, PerfectGroundingSmallerThanSimple) {
  // §5: the perfect grounder derives no superfluous quarter rules when a
  // dime shows tail; the simple grounder does.
  Setup(kDimeQuarter, kDimeQuarterDb);
  auto perfect = PerfectGrounder::Create(program_, &translated_, &db_);
  ASSERT_TRUE(perfect.ok());
  SimpleGrounder simple(&translated_, &db_);

  ChoiceSet choices;
  choices.Assign(MakeActive(0, {Value::Double(0.5), Value::Int(1)}),
                 Value::Int(1));
  choices.Assign(MakeActive(0, {Value::Double(0.5), Value::Int(2)}),
                 Value::Int(0));

  GroundRuleSet perfect_out, simple_out;
  ASSERT_TRUE((*perfect)->Ground(choices, &perfect_out).ok());
  ASSERT_TRUE(simple.Ground(choices, &simple_out).ok());
  EXPECT_LT(perfect_out.size(), simple_out.size());
  // The simple grounding leaves the quarter trigger dangling.
  EXPECT_EQ(FindTriggers(translated_, simple_out, choices).size(), 1u);
  EXPECT_TRUE(FindTriggers(translated_, perfect_out, choices).empty());
}

TEST_F(GrounderTest, ChoiceSetFunctionalConsistency) {
  Setup(kDimeQuarter, kDimeQuarterDb);
  ChoiceSet choices;
  GroundAtom active = MakeActive(0, {Value::Double(0.5), Value::Int(1)});
  EXPECT_TRUE(choices.Assign(active, Value::Int(1)));
  EXPECT_TRUE(choices.Assign(active, Value::Int(1)));   // same outcome: OK
  EXPECT_FALSE(choices.Assign(active, Value::Int(0)));  // conflict
  EXPECT_EQ(choices.size(), 1u);
  EXPECT_EQ(*choices.Lookup(active), Value::Int(1));
  choices.Unassign(active);
  EXPECT_FALSE(choices.Defined(active));
}

TEST_F(GrounderTest, ChoiceSetSubsetAndOrdering) {
  Setup(kDimeQuarter, kDimeQuarterDb);
  ChoiceSet small, big;
  GroundAtom a1 = MakeActive(0, {Value::Double(0.5), Value::Int(1)});
  GroundAtom a2 = MakeActive(0, {Value::Double(0.5), Value::Int(2)});
  small.Assign(a1, Value::Int(1));
  big.Assign(a1, Value::Int(1));
  big.Assign(a2, Value::Int(0));
  EXPECT_TRUE(small.SubsetOf(big));
  EXPECT_FALSE(big.SubsetOf(small));
  ChoiceSet conflicting;
  conflicting.Assign(a1, Value::Int(0));
  EXPECT_FALSE(conflicting.SubsetOf(big));
}

}  // namespace
}  // namespace gdlog
