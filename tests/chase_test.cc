// Chase-tree exploration (§4): order independence (Lemma 4.4), outcome
// bijection (Lemma 4.5 / Theorem 4.6), budgets and the error event Ω∞,
// BCKOV agreement on positive programs (Theorem C.4), and the Monte-Carlo
// sampler against exact inference.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "ast/parser.h"
#include "gdatalog/bckov.h"
#include "gdatalog/compare.h"
#include "gdatalog/engine.h"
#include "gdatalog/sampler.h"

namespace gdlog {
namespace {

constexpr const char* kNetworkProgram = R"(
  infected(Y, flip<0.1>[X, Y]) :- infected(X, 1), connected(X, Y).
  uninfected(X) :- router(X), not infected(X, 1).
  :- uninfected(X), uninfected(Y), connected(X, Y).
)";

std::string Clique(int n) {
  std::string db;
  for (int i = 1; i <= n; ++i) db += "router(" + std::to_string(i) + ").\n";
  for (int i = 1; i <= n; ++i) {
    for (int j = 1; j <= n; ++j) {
      if (i != j) {
        db += "connected(" + std::to_string(i) + ", " + std::to_string(j) +
              ").\n";
      }
    }
  }
  db += "infected(1, 1).\n";
  return db;
}

// ---------------------------------------------------------------------------
// Lemma 4.4 / Theorem 4.6: trigger order does not matter.
// ---------------------------------------------------------------------------

class TriggerOrderTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TriggerOrderTest, OutcomeSpaceIndependentOfTriggerOrder) {
  auto engine = GDatalog::Create(kNetworkProgram, Clique(3));
  ASSERT_TRUE(engine.ok());

  ChaseOptions canonical;
  auto base = engine->Infer(canonical);
  ASSERT_TRUE(base.ok());

  ChaseOptions shuffled;
  shuffled.trigger_shuffle_seed = GetParam();
  auto other = engine->Infer(shuffled);
  ASSERT_TRUE(other.ok());

  // Identical sets of possible outcomes (choices + probability), though
  // possibly enumerated in different orders.
  ASSERT_EQ(base->outcomes.size(), other->outcomes.size());
  std::map<ChoiceSet, Prob> base_map, other_map;
  for (const PossibleOutcome& o : base->outcomes) {
    base_map.emplace(o.choices, o.prob);
  }
  for (const PossibleOutcome& o : other->outcomes) {
    other_map.emplace(o.choices, o.prob);
  }
  EXPECT_EQ(base_map.size(), other_map.size());
  for (const auto& [choices, prob] : base_map) {
    auto it = other_map.find(choices);
    ASSERT_NE(it, other_map.end());
    EXPECT_EQ(it->second, prob);
  }
  EXPECT_EQ(base->finite_mass, other->finite_mass);
  EXPECT_EQ(base->ProbConsistent(), other->ProbConsistent());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriggerOrderTest,
                         ::testing::Values(1, 2, 3, 17, 99, 31337));

// ---------------------------------------------------------------------------
// Outcome structure invariants
// ---------------------------------------------------------------------------

TEST(ChaseInvariants, OutcomesAreDistinctAndMinimal) {
  auto engine = GDatalog::Create(kNetworkProgram, Clique(3));
  ASSERT_TRUE(engine.ok());
  auto space = engine->Infer();
  ASSERT_TRUE(space.ok());

  // Lemma 4.5: outcomes are in bijection with finite maximal paths; choice
  // sets are pairwise distinct and ⊆-incomparable (terminal minimality).
  for (size_t i = 0; i < space->outcomes.size(); ++i) {
    for (size_t j = i + 1; j < space->outcomes.size(); ++j) {
      const ChoiceSet& a = space->outcomes[i].choices;
      const ChoiceSet& b = space->outcomes[j].choices;
      EXPECT_FALSE(a == b);
      EXPECT_FALSE(a.SubsetOf(b));
      EXPECT_FALSE(b.SubsetOf(a));
    }
  }
}

TEST(ChaseInvariants, ProbabilitiesMatchChoiceProducts) {
  auto engine = GDatalog::Create(kNetworkProgram, Clique(3));
  ASSERT_TRUE(engine.ok());
  auto space = engine->Infer();
  ASSERT_TRUE(space.ok());
  const DistributionRegistry& registry = engine->registry();
  const Distribution* flip = registry.Lookup("flip");
  for (const PossibleOutcome& outcome : space->outcomes) {
    Prob product = Prob::One();
    for (const auto& [active, value] : outcome.choices.entries()) {
      std::vector<Value> params = {active.args[0]};
      product = product * flip->Pmf(params, value);
    }
    EXPECT_EQ(product, outcome.prob);
  }
}

TEST(ChaseInvariants, FiniteMassSumsToOneWhenComplete) {
  for (int n : {2, 3, 4}) {
    auto engine = GDatalog::Create(kNetworkProgram, Clique(n));
    ASSERT_TRUE(engine.ok());
    auto space = engine->Infer();
    ASSERT_TRUE(space.ok());
    EXPECT_TRUE(space->complete);
    EXPECT_EQ(space->finite_mass, Prob::FromDouble(1.0)) << "n=" << n;
    EXPECT_EQ(space->residual_mass(), Prob::Zero());
  }
}

TEST(ChaseInvariants, EventMassesSumToFiniteMass) {
  auto engine = GDatalog::Create(kNetworkProgram, Clique(3));
  ASSERT_TRUE(engine.ok());
  auto space = engine->Infer();
  ASSERT_TRUE(space.ok());
  Prob total = Prob::Zero();
  for (const auto& [models, mass] : space->Events()) {
    total = total + mass;
  }
  EXPECT_EQ(total, space->finite_mass);
}

TEST(ChaseInvariants, MarginalBoundsAreOrderedAndBounded) {
  auto engine = GDatalog::Create(kNetworkProgram, Clique(3));
  ASSERT_TRUE(engine.ok());
  auto space = engine->Infer();
  ASSERT_TRUE(space.ok());
  for (const char* atom_text :
       {"infected(2, 1)", "infected(3, 1)", "uninfected(2)", "router(1)"}) {
    auto atom = engine->ParseGroundAtom(atom_text);
    ASSERT_TRUE(atom.ok());
    OutcomeSpace::Bounds b = space->Marginal(*atom);
    EXPECT_LE(b.lower.value(), b.upper.value() + 1e-15) << atom_text;
    EXPECT_GE(b.lower.value(), 0.0);
    EXPECT_LE(b.upper.value(), 1.0);
  }
}

// ---------------------------------------------------------------------------
// Budgets and the error event
// ---------------------------------------------------------------------------

TEST(ChaseBudgets, GeometricSupportTruncationFeedsResidual) {
  // A single geometric sample: countably infinite support. With support
  // truncated at 8, residual mass = (1/2)^8.
  auto engine = GDatalog::Create("n(geometric<0.5>).", "");
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ChaseOptions options;
  options.support_limit = 8;
  auto space = engine->Infer(options);
  ASSERT_TRUE(space.ok());
  EXPECT_FALSE(space->complete);
  EXPECT_EQ(space->outcomes.size(), 8u);
  EXPECT_EQ(space->support_truncation_mass, Prob(Rational(1, 256)));
  EXPECT_EQ(space->residual_mass(), Prob(Rational(1, 256)));
}

TEST(ChaseBudgets, NonTerminatingChaseHitsDepthBudget) {
  // A value-inventing loop: each positive sample triggers another sample.
  // P(terminating) = Σ (1/2)^k telescopes to 1, but individual paths can
  // run arbitrarily deep; with max_depth = 5 the tail goes to the residual.
  const char* program = R"(
    count(0, flip<0.5>).
    count(N1, flip<0.5>[N1]) :- succ(N, N1), count(N, 1).
  )";
  std::string db;
  for (int i = 0; i < 50; ++i) {
    db += "succ(" + std::to_string(i) + ", " + std::to_string(i + 1) + ").\n";
  }
  auto engine = GDatalog::Create(program, db);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ChaseOptions options;
  options.max_depth = 5;
  auto space = engine->Infer(options);
  ASSERT_TRUE(space.ok());
  EXPECT_FALSE(space->complete);
  EXPECT_GT(space->depth_truncated_paths, 0u);
  // Terminated outcomes: runs ending in a 0 within depth 5.
  EXPECT_EQ(space->outcomes.size(), 5u);
  EXPECT_EQ(space->finite_mass,
            Prob(Rational(1, 2)) + Prob(Rational(1, 4)) +
                Prob(Rational(1, 8)) + Prob(Rational(1, 16)) +
                Prob(Rational(1, 32)));
}

TEST(ChaseBudgets, MaxOutcomesStopsEnumeration) {
  auto engine = GDatalog::Create(kNetworkProgram, Clique(3));
  ASSERT_TRUE(engine.ok());
  ChaseOptions options;
  options.max_outcomes = 3;
  auto space = engine->Infer(options);
  ASSERT_TRUE(space.ok());
  EXPECT_FALSE(space->complete);
  EXPECT_EQ(space->outcomes.size(), 3u);
  EXPECT_LT(space->finite_mass.value(), 1.0);
}

TEST(ChaseBudgets, MinPathProbPrunesDeepTails) {
  auto engine = GDatalog::Create("n(geometric<0.5>).", "");
  ASSERT_TRUE(engine.ok());
  ChaseOptions options;
  options.min_path_prob = 0.05;  // prunes nothing here (leaf probs = path)
  options.support_limit = 64;
  auto space = engine->Infer(options);
  ASSERT_TRUE(space.ok());
  // Outcomes with probability < 0.05: (1/2)^k < 0.05 for k >= 5. Those
  // paths are pruned.
  EXPECT_FALSE(space->complete);
  EXPECT_GE(space->pruned_paths, 1u);
  for (const PossibleOutcome& o : space->outcomes) {
    EXPECT_GE(o.prob.value(), 0.05);
  }
}

TEST(ChaseBudgets, CompleteSpaceRejectsNothing) {
  auto engine = GDatalog::Create("n(uniformint<1, 6>).", "");
  ASSERT_TRUE(engine.ok());
  auto space = engine->Infer();
  ASSERT_TRUE(space.ok());
  EXPECT_TRUE(space->complete);
  EXPECT_EQ(space->outcomes.size(), 6u);
  EXPECT_EQ(space->finite_mass, Prob::FromDouble(1.0));
}

// ---------------------------------------------------------------------------
// Theorem C.4: BCKOV agreement on positive programs.
// ---------------------------------------------------------------------------

class BckovAgreementTest
    : public ::testing::TestWithParam<std::pair<const char*, const char*>> {};

TEST_P(BckovAgreementTest, SimpleGrounderSpaceIsomorphicToBckov) {
  auto [program_text, db_text] = GetParam();

  GDatalog::Options options;
  options.grounder = GrounderKind::kSimple;
  auto engine = GDatalog::Create(program_text, db_text, std::move(options));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ChaseOptions chase_options;
  auto space = engine->Infer(chase_options);
  ASSERT_TRUE(space.ok());
  ASSERT_TRUE(space->complete);

  auto prog = ParseProgram(program_text);
  ASSERT_TRUE(prog.ok());
  auto db = ParseFacts(db_text, prog->interner());
  ASSERT_TRUE(db.ok());
  auto bckov =
      BckovEngine::Create(*prog, &*db, &engine->registry());
  ASSERT_TRUE(bckov.ok()) << bckov.status().ToString();
  auto bckov_space = bckov->Explore(1u << 20, 4096, 64);
  ASSERT_TRUE(bckov_space.ok());
  ASSERT_TRUE(bckov_space->complete);

  // |Ω| matches, total masses match.
  ASSERT_EQ(space->outcomes.size(), bckov_space->outcomes.size());
  EXPECT_EQ(space->finite_mass, bckov_space->finite_mass);

  // The bijection f: each of our outcomes has exactly one stable model
  // (Lemma C.5); its Result atoms (the model "modulo active", restricted
  // to Result predicates) determine the matching BCKOV outcome with equal
  // probability (Lemma C.6 / Theorem C.4).
  // NOTE: interners differ between the two engines, so compare via
  // rendered strings of Result atoms.
  std::multiset<std::pair<std::string, std::string>> ours, theirs;
  auto render_results = [](const std::vector<GroundAtom>& atoms,
                           const TranslatedProgram& tp,
                           const Interner* interner) {
    std::string out;
    std::vector<std::string> parts;
    for (const GroundAtom& a : atoms) {
      if (tp.IsResultPredicate(a.predicate)) {
        parts.push_back(a.ToString(interner));
      }
    }
    std::sort(parts.begin(), parts.end());
    for (const std::string& p : parts) out += p + ";";
    return out;
  };

  for (const PossibleOutcome& o : space->outcomes) {
    ASSERT_EQ(o.models.size(), 1u);
    std::vector<GroundAtom> model(o.models.begin()->begin(),
                                  o.models.begin()->end());
    ours.emplace(render_results(model, engine->translated(),
                                engine->program().interner()),
                 o.prob.ToString());
  }
  for (const BckovEngine::Outcome& o : bckov_space->outcomes) {
    theirs.emplace(render_results(o.instance, bckov->translated(),
                                  prog->interner()),
                   o.prob.ToString());
  }
  EXPECT_EQ(ours, theirs);
}

INSTANTIATE_TEST_SUITE_P(
    PositivePrograms, BckovAgreementTest,
    ::testing::Values(
        std::make_pair("coin(flip<0.5>).", ""),
        std::make_pair("virus(Y, flip<0.3>[X, Y]) :- virus(X, 1), link(X, Y).",
                       "virus(1, 1). link(1, 2). link(2, 3)."),
        std::make_pair("roll(P, uniformint<1, 4>[P]) :- player(P).",
                       "player(1). player(2)."),
        std::make_pair(
            "pick(X, flip<0.2>[X]) :- item(X).\n"
            "chosen(X) :- pick(X, 1).\n"
            "bonus(X, flip<0.5>[X]) :- chosen(X).",
            "item(1). item(2).")));

// ---------------------------------------------------------------------------
// Monte-Carlo sampler vs exact inference
// ---------------------------------------------------------------------------

TEST(Sampler, ConvergesToExactDominationProbability) {
  auto engine = GDatalog::Create(kNetworkProgram, Clique(3));
  ASSERT_TRUE(engine.ok());
  MonteCarloEstimator estimator(&engine->chase(), ChaseOptions{});
  auto est = estimator.EstimateProbConsistent(20000, /*seed=*/7);
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  EXPECT_EQ(est->samples, 20000u);
  EXPECT_EQ(est->truncated, 0u);
  EXPECT_NEAR(est->mean, 0.19, 5 * est->std_error + 1e-9);
  EXPECT_NEAR(est->mean, 0.19, 0.02);
}

TEST(Sampler, MarginalEstimatesMatchExact) {
  auto engine = GDatalog::Create(kNetworkProgram, Clique(3));
  ASSERT_TRUE(engine.ok());
  auto atom = engine->ParseGroundAtom("infected(2, 1)");
  ASSERT_TRUE(atom.ok());
  MonteCarloEstimator estimator(&engine->chase(), ChaseOptions{});
  auto upper = estimator.EstimateMarginalUpper(20000, 11, *atom);
  ASSERT_TRUE(upper.ok());
  EXPECT_NEAR(upper->mean, 0.109, 0.02);
  auto lower = estimator.EstimateMarginalLower(20000, 11, *atom);
  ASSERT_TRUE(lower.ok());
  EXPECT_NEAR(lower->mean, 0.109, 0.02);
}

TEST(Sampler, SamplePathProbabilityMatchesChoices) {
  auto engine = GDatalog::Create(kNetworkProgram, Clique(3));
  ASSERT_TRUE(engine.ok());
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    auto sample = engine->chase().SamplePath(&rng, ChaseOptions{});
    ASSERT_TRUE(sample.ok());
    EXPECT_FALSE(sample->truncated);
    EXPECT_GE(sample->choices.size(), 2u);
    EXPECT_GT(sample->prob.value(), 0.0);
  }
}

TEST(Sampler, TruncatedWalksAreReported) {
  const char* program = R"(
    count(0, flip<0.9>).
    count(N1, flip<0.9>[N1]) :- succ(N, N1), count(N, 1).
  )";
  std::string db;
  for (int i = 0; i < 100; ++i) {
    db += "succ(" + std::to_string(i) + ", " + std::to_string(i + 1) + ").\n";
  }
  auto engine = GDatalog::Create(program, db);
  ASSERT_TRUE(engine.ok());
  ChaseOptions options;
  options.max_depth = 3;
  MonteCarloEstimator estimator(&engine->chase(), options);
  auto est = estimator.EstimateProbConsistent(500, 3);
  ASSERT_TRUE(est.ok());
  // With continue-probability 0.9 and depth cap 3, most walks truncate.
  EXPECT_GT(est->truncated, 250u);
  EXPECT_EQ(est->samples + est->truncated, 500u);
}

TEST(Sampler, DeterministicGivenSeed) {
  auto engine = GDatalog::Create(kNetworkProgram, Clique(3));
  ASSERT_TRUE(engine.ok());
  MonteCarloEstimator estimator(&engine->chase(), ChaseOptions{});
  auto a = estimator.EstimateProbConsistent(200, 42);
  auto b = estimator.EstimateProbConsistent(200, 42);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->mean, b->mean);
}

}  // namespace
}  // namespace gdlog
