// The observability surfaces: histogram bucket arithmetic at the
// boundaries, per-rule chase-profile counts reproducible across thread
// counts, the /v1/metrics Prometheus exposition (grammar, no duplicate
// series, the ≥30-series floor), and X-Gdlog-Trace propagation end to end
// across a real-socket fleet job — including a re-dispatch after a worker
// failure.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cctype>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gdatalog/engine.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "obs/version.h"
#include "server/http.h"
#include "server/service.h"
#include "util/json.h"
#include "util/socket.h"

namespace gdlog {
namespace {

constexpr const char* kNetworkProgram =
    "infected(Y, flip<0.1>[X, Y]) :- infected(X, 1), connected(X, Y).\n"
    "uninfected(X) :- router(X), not infected(X, 1).\n"
    ":- uninfected(X), uninfected(Y), connected(X, Y).\n";

constexpr const char* kClique3Db =
    "router(1). router(2). router(3).\n"
    "connected(1,2). connected(2,1). connected(1,3). connected(3,1).\n"
    "connected(2,3). connected(3,2).\n"
    "infected(1, 1).\n";

HttpRequest MakeRequest(std::string method, std::string target,
                        std::string body = "") {
  HttpRequest request;
  request.method = std::move(method);
  request.target = std::move(target);
  request.body = std::move(body);
  return request;
}

InferenceService::Options ServiceOptions() {
  InferenceService::Options options;
  options.default_chase.num_threads = 1;
  return options;
}

std::string RegisterNetwork(InferenceService& service) {
  JsonWriter reg;
  reg.BeginObject().KV("program", kNetworkProgram).KV("db", kClique3Db)
      .EndObject();
  HttpResponse response =
      service.Handle(MakeRequest("POST", "/v1/programs", reg.str()));
  EXPECT_TRUE(response.status == 200 || response.status == 201)
      << response.body;
  auto doc = JsonValue::Parse(response.body);
  EXPECT_TRUE(doc.ok());
  const JsonValue* id = doc.ok() ? doc->Find("id") : nullptr;
  EXPECT_NE(id, nullptr);
  return id != nullptr && id->is_string() ? id->string_value() : "";
}

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

TEST(Histogram, BucketBoundsDoubleFromHundredMicros) {
  EXPECT_EQ(LatencyHistogram::UpperBoundNanos(0), 100'000u);
  for (size_t i = 1; i < LatencyHistogram::kFiniteBuckets; ++i) {
    EXPECT_EQ(LatencyHistogram::UpperBoundNanos(i),
              2 * LatencyHistogram::UpperBoundNanos(i - 1))
        << i;
  }
}

TEST(Histogram, BucketIndexBoundariesAreInclusive) {
  // Prometheus `le` is inclusive: a duration exactly on a bound lands in
  // that bucket; one nanosecond more lands in the next.
  EXPECT_EQ(LatencyHistogram::BucketIndex(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1), 0u);
  for (size_t i = 0; i < LatencyHistogram::kFiniteBuckets; ++i) {
    const uint64_t bound = LatencyHistogram::UpperBoundNanos(i);
    EXPECT_EQ(LatencyHistogram::BucketIndex(bound), i);
    EXPECT_EQ(LatencyHistogram::BucketIndex(bound + 1),
              i + 1 < LatencyHistogram::kFiniteBuckets
                  ? i + 1
                  : LatencyHistogram::kFiniteBuckets);
  }
  // Far past the last finite bound: the +Inf overflow bucket.
  EXPECT_EQ(LatencyHistogram::BucketIndex(~0ull),
            LatencyHistogram::kFiniteBuckets);
}

TEST(Histogram, RecordAccumulatesBucketsCountAndSum) {
  LatencyHistogram hist;
  hist.RecordNanos(50'000);                                   // bucket 0
  hist.RecordNanos(100'000);                                  // bucket 0
  hist.RecordNanos(100'001);                                  // bucket 1
  hist.RecordNanos(LatencyHistogram::UpperBoundNanos(21) + 1);  // +Inf
  LatencyHistogram::Snapshot snap = hist.TakeSnapshot();
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[LatencyHistogram::kFiniteBuckets], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum_ns,
            50'000u + 100'000u + 100'001u +
                (LatencyHistogram::UpperBoundNanos(21) + 1));
}

TEST(Histogram, RecordSecondsClampsNegativeDurations) {
  LatencyHistogram hist;
  hist.RecordSeconds(-1.0);   // a clock hiccup: clamps to zero
  hist.RecordSeconds(0.0005);  // 500µs → bucket 3 (le=0.0008)
  LatencyHistogram::Snapshot snap = hist.TakeSnapshot();
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[3], 1u);
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.sum_ns, 500'000u);
}

// ---------------------------------------------------------------------------
// Exposition primitives
// ---------------------------------------------------------------------------

TEST(Metrics, FormatSecondsFromNanosIsExact) {
  EXPECT_EQ(FormatSecondsFromNanos(0), "0.0");
  EXPECT_EQ(FormatSecondsFromNanos(100'000), "0.0001");
  EXPECT_EQ(FormatSecondsFromNanos(1'000'000'000), "1.0");
  EXPECT_EQ(FormatSecondsFromNanos(1'500'000'000), "1.5");
  EXPECT_EQ(FormatSecondsFromNanos(209'715'200'000), "209.7152");
  EXPECT_EQ(FormatSecondsFromNanos(1), "0.000000001");
}

TEST(Metrics, EscapeLabelValueQuotesSpecials) {
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(Metrics, HelpTypePairEmittedOncePerFamily) {
  MetricsWriter writer;
  writer.Counter("gdlog_x_total", "Help.", "a=\"1\"", 1);
  writer.Counter("gdlog_x_total", "Help.", "a=\"2\"", 2);
  EXPECT_EQ(writer.text(),
            "# HELP gdlog_x_total Help.\n"
            "# TYPE gdlog_x_total counter\n"
            "gdlog_x_total{a=\"1\"} 1\n"
            "gdlog_x_total{a=\"2\"} 2\n");
}

// ---------------------------------------------------------------------------
// Trace ids
// ---------------------------------------------------------------------------

TEST(Trace, GeneratedIdsAreValidAndDistinct) {
  std::set<std::string> ids;
  for (int i = 0; i < 64; ++i) {
    std::string id = GenerateTraceId();
    EXPECT_EQ(id.size(), 16u);
    EXPECT_TRUE(IsValidTraceId(id)) << id;
    ids.insert(id);
  }
  EXPECT_EQ(ids.size(), 64u);
}

TEST(Trace, ValidationRejectsInjectionAndJunk) {
  EXPECT_TRUE(IsValidTraceId("abc-DEF_012"));
  EXPECT_TRUE(IsValidTraceId(std::string(64, 'a')));
  EXPECT_FALSE(IsValidTraceId(""));
  EXPECT_FALSE(IsValidTraceId(std::string(65, 'a')));
  EXPECT_FALSE(IsValidTraceId("evil\r\nX-Other: 1"));
  EXPECT_FALSE(IsValidTraceId("has space"));
  EXPECT_FALSE(IsValidTraceId("dot.dot"));
}

// ---------------------------------------------------------------------------
// Per-rule chase profile: counts are schedule-independent
// ---------------------------------------------------------------------------

ChaseProfile ProfileAt(size_t threads) {
  auto engine = GDatalog::Create(kNetworkProgram, kClique3Db);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  ChaseOptions chase;
  chase.num_threads = threads;
  chase.profile = true;
  ChaseProfile profile;
  auto space = engine->Infer(chase, &profile);
  EXPECT_TRUE(space.ok()) << space.status().ToString();
  return profile;
}

TEST(ChaseProfileCounts, IdenticalAcrossThreadCounts) {
  ChaseProfile serial = ProfileAt(1);
  ChaseProfile parallel = ProfileAt(8);

  EXPECT_GT(serial.nodes, 0u);
  EXPECT_EQ(serial.nodes, parallel.nodes);
  EXPECT_EQ(serial.ground_calls, parallel.ground_calls);
  EXPECT_EQ(serial.solve_calls, parallel.solve_calls);

  ASSERT_EQ(serial.rules.size(), parallel.rules.size());
  for (size_t i = 0; i < serial.rules.size(); ++i) {
    EXPECT_EQ(serial.rules[i].calls, parallel.rules[i].calls) << "rule " << i;
    EXPECT_EQ(serial.rules[i].bindings, parallel.rules[i].bindings)
        << "rule " << i;
    EXPECT_EQ(serial.rules[i].derivations, parallel.rules[i].derivations)
        << "rule " << i;
    EXPECT_EQ(serial.rules[i].stratum, parallel.rules[i].stratum)
        << "rule " << i;
  }
  ASSERT_EQ(serial.depths.size(), parallel.depths.size());
  for (size_t d = 0; d < serial.depths.size(); ++d) {
    EXPECT_EQ(serial.depths[d].nodes, parallel.depths[d].nodes)
        << "depth " << d;
  }
  // Some rule actually did work, or the test proves nothing.
  uint64_t derivations = 0;
  for (const RuleProfile& rule : serial.rules) derivations += rule.derivations;
  EXPECT_GT(derivations, 0u);
}

TEST(ChaseProfileCounts, TableLabelsRulesAndFlagsTimes) {
  ChaseProfile profile = ProfileAt(1);
  auto engine = GDatalog::Create(kNetworkProgram, kClique3Db);
  ASSERT_TRUE(engine.ok());
  std::string table =
      FormatChaseProfileTable(profile, engine->SigmaRuleLabels());
  EXPECT_NE(table.find("chase profile"), std::string::npos);
  EXPECT_NE(table.find("non-deterministic"), std::string::npos);
  EXPECT_NE(table.find("r0:"), std::string::npos);
}

// ---------------------------------------------------------------------------
// /v1/metrics exposition
// ---------------------------------------------------------------------------

// One pass over the exposition body validating the text-format grammar
// line by line and collecting each sample's full series key
// (name + label set).
void ParseExposition(const std::string& body,
                     std::vector<std::string>* series) {
  auto is_name = [](const std::string& s) {
    if (s.empty()) return false;
    for (char c : s) {
      if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
            c == ':')) {
        return false;
      }
    }
    return !std::isdigit(static_cast<unsigned char>(s[0]));
  };
  size_t pos = 0;
  while (pos < body.size()) {
    size_t eol = body.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "unterminated last line";
    std::string line = body.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      continue;
    }
    ASSERT_NE(line.find(' '), std::string::npos) << line;
    size_t value_at = line.rfind(' ');
    std::string key = line.substr(0, value_at);
    std::string value = line.substr(value_at + 1);
    EXPECT_FALSE(value.empty()) << line;
    std::string name = key;
    if (size_t brace = key.find('{'); brace != std::string::npos) {
      EXPECT_EQ(key.back(), '}') << line;
      name = key.substr(0, brace);
    }
    EXPECT_TRUE(is_name(name)) << line;
    series->push_back(key);
  }
}

TEST(MetricsEndpoint, ExpositionParsesWithNoDuplicateSeries) {
  InferenceService service(ServiceOptions());
  std::string id = RegisterNetwork(service);
  // Exercise the counters: a profiled query (per-rule series), a sample,
  // and a cache hit.
  HttpResponse query = service.Handle(MakeRequest(
      "POST", "/v1/query",
      "{\"program_id\":\"" + id + "\",\"options\":{\"profile\":true}}"));
  ASSERT_EQ(query.status, 200) << query.body;
  HttpResponse again = service.Handle(MakeRequest(
      "POST", "/v1/query",
      "{\"program_id\":\"" + id + "\",\"options\":{\"profile\":true}}"));
  ASSERT_EQ(again.status, 200);
  HttpResponse sample = service.Handle(MakeRequest(
      "POST", "/v1/sample",
      "{\"program_id\":\"" + id + "\",\"samples\":4,\"seed\":7}"));
  ASSERT_EQ(sample.status, 200) << sample.body;

  HttpResponse metrics = service.Handle(MakeRequest("GET", "/v1/metrics"));
  ASSERT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.content_type, kMetricsContentType);

  std::vector<std::string> series;
  ParseExposition(metrics.body, &series);
  std::set<std::string> unique(series.begin(), series.end());
  EXPECT_EQ(unique.size(), series.size()) << "duplicate series in exposition";
  // The acceptance floor, counting full histogram families.
  EXPECT_GE(series.size(), 30u);

  // Spot checks: build info, a counter that moved, per-rule series from the
  // profiled query, and a request-latency histogram family.
  EXPECT_NE(metrics.body.find("gdlog_build_info{version="),
            std::string::npos);
  EXPECT_NE(metrics.body.find("\ngdlog_queries_total 2\n"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("gdlog_cache_hits_total 1"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("gdlog_rule_derivations_total{program=\"" + id +
                              "\",rule=\"r0:"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("gdlog_request_duration_seconds_bucket{"
                              "endpoint=\"query\",le=\"0.0001\"}"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("gdlog_chase_duration_seconds_count 1"),
            std::string::npos);
}

TEST(MetricsEndpoint, ProfiledRuleTotalsAccumulateAcrossQueries) {
  InferenceService service(ServiceOptions());
  std::string id = RegisterNetwork(service);
  auto profiled_query = [&](size_t max_depth) {
    return service.Handle(MakeRequest(
        "POST", "/v1/query",
        "{\"program_id\":\"" + id + "\",\"options\":{\"profile\":true" +
            ",\"max_depth\":" + std::to_string(max_depth) + "}}"));
  };
  // Two distinct cache fingerprints (max_depth differs, but both bounds
  // are far above the chase's actual depth) so both queries compute the
  // same work; the per-rule totals must then be exactly double one run's
  // counts.
  ASSERT_EQ(profiled_query(512).status, 200);
  ASSERT_EQ(profiled_query(513).status, 200);

  HttpResponse metrics = service.Handle(MakeRequest("GET", "/v1/metrics"));
  ASSERT_EQ(metrics.status, 200);
  ChaseProfile one = ProfileAt(1);
  uint64_t r0_derivations = 0;
  for (size_t i = 0; i < one.rules.size(); ++i) {
    if (one.rules[i].derivations != 0) {
      r0_derivations = one.rules[i].derivations;
      break;
    }
  }
  ASSERT_GT(r0_derivations, 0u);
  std::string needle = "\",rule=\"r0:";
  size_t at = metrics.body.find("gdlog_rule_derivations_total{program=");
  ASSERT_NE(at, std::string::npos);
  size_t line_end = metrics.body.find('\n', at);
  std::string line = metrics.body.substr(at, line_end - at);
  EXPECT_NE(line.find(needle), std::string::npos) << line;
  EXPECT_EQ(line.substr(line.rfind(' ') + 1),
            std::to_string(2 * r0_derivations))
      << line;
}

// ---------------------------------------------------------------------------
// Healthz enrichment
// ---------------------------------------------------------------------------

TEST(Healthz, ReportsVersionUptimeAndPid) {
  InferenceService service(ServiceOptions());
  HttpResponse response = service.Handle(MakeRequest("GET", "/v1/healthz"));
  ASSERT_EQ(response.status, 200);
  auto doc = JsonValue::Parse(response.body);
  ASSERT_TRUE(doc.ok()) << response.body;
  const JsonValue* status = doc->Find("status");
  ASSERT_NE(status, nullptr);
  EXPECT_EQ(status->string_value(), "ok");
  const JsonValue* version = doc->Find("version");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version->string_value(), GdlogVersion());
  EXPECT_NE(std::string(GdlogVersion()), "");
  const JsonValue* uptime = doc->Find("uptime_s");
  ASSERT_NE(uptime, nullptr);
  EXPECT_GE(uptime->NumberAsDouble(), 0.0);
  const JsonValue* pid = doc->Find("pid");
  ASSERT_NE(pid, nullptr);
  auto pid_value = pid->NumberAsInt();
  ASSERT_TRUE(pid_value.ok());
  EXPECT_EQ(static_cast<pid_t>(*pid_value), getpid());
}

// ---------------------------------------------------------------------------
// Trace propagation end to end
// ---------------------------------------------------------------------------

TEST(TracePropagation, ResponsesEchoSuppliedTraceIncludingErrors) {
  InferenceService service(ServiceOptions());
  HttpRequest request = MakeRequest("GET", "/v1/healthz");
  request.headers.emplace_back("x-gdlog-trace", "trace-OK_1");  // any case
  HttpResponse ok = service.Handle(request);
  const std::string* echoed = ok.FindHeader(kTraceHeader);
  ASSERT_NE(echoed, nullptr);
  EXPECT_EQ(*echoed, "trace-OK_1");

  // An error envelope still carries the trace.
  HttpRequest bad = MakeRequest("POST", "/v1/query", "{not json");
  bad.headers.emplace_back(kTraceHeader, "trace-err-2");
  HttpResponse error = service.Handle(bad);
  EXPECT_GE(error.status, 400);
  echoed = error.FindHeader(kTraceHeader);
  ASSERT_NE(echoed, nullptr);
  EXPECT_EQ(*echoed, "trace-err-2");

  // A malformed id (header injection) is replaced, not echoed.
  HttpRequest evil = MakeRequest("GET", "/v1/healthz");
  evil.headers.emplace_back(kTraceHeader, "evil\r\nX-Oops: 1");
  HttpResponse minted = service.Handle(evil);
  echoed = minted.FindHeader(kTraceHeader);
  ASSERT_NE(echoed, nullptr);
  EXPECT_NE(*echoed, "evil\r\nX-Oops: 1");
  EXPECT_TRUE(IsValidTraceId(*echoed)) << *echoed;
}

/// A real worker that additionally records the X-Gdlog-Trace header of
/// every request it serves, so tests can assert what the coordinator
/// actually forwarded over the wire.
class TraceRecordingWorker {
 public:
  TraceRecordingWorker() {
    service_ = std::make_unique<InferenceService>(ServiceOptions());
    HttpServerOptions options;
    options.workers = 4;
    auto server = HttpServer::Create(
        options,
        [this](const HttpRequest& request) {
          {
            std::lock_guard<std::mutex> lock(mu_);
            const std::string* trace = request.FindHeader(kTraceHeader);
            seen_.push_back(trace != nullptr ? *trace : "");
          }
          return service_->Handle(request);
        });
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::make_unique<HttpServer>(std::move(*server));
    thread_ = std::thread([this] { (void)server_->Serve(); });
  }

  ~TraceRecordingWorker() {
    server_->Shutdown();
    thread_.join();
  }

  std::string address() const {
    return "127.0.0.1:" + std::to_string(server_->port());
  }
  std::vector<std::string> seen() {
    std::lock_guard<std::mutex> lock(mu_);
    return seen_;
  }

 private:
  std::unique_ptr<InferenceService> service_;
  std::unique_ptr<HttpServer> server_;
  std::thread thread_;
  std::mutex mu_;
  std::vector<std::string> seen_;
};

/// A worker that answers every request with HTTP 500, forcing the
/// coordinator to re-dispatch its shard group (same shape as fleet_test's
/// FakeWorker, trimmed to the one mode this file needs).
class FailingWorker {
 public:
  FailingWorker() {
    auto listener = ListenSocket::BindTcp("127.0.0.1", 0);
    EXPECT_TRUE(listener.ok()) << listener.status().ToString();
    listener_ = std::make_unique<ListenSocket>(std::move(*listener));
    EXPECT_EQ(pipe(wake_), 0);
    thread_ = std::thread([this] {
      while (!stop_.load()) {
        auto conn = listener_->Accept(wake_[0]);
        if (!conn.ok() || !conn->has_value()) return;
        char buf[4096];
        (void)(*conn)->ReadSome(buf, sizeof buf, 500);
        const std::string body =
            "{\"error\":{\"code\":\"internal\",\"message\":\"injected\"}}\n";
        std::string response =
            "HTTP/1.1 500 Internal Server Error\r\n"
            "Content-Type: application/json\r\n"
            "Content-Length: " + std::to_string(body.size()) + "\r\n"
            "Connection: close\r\n\r\n" + body;
        (void)(*conn)->WriteAll(response, 1000);
      }
    });
  }

  ~FailingWorker() {
    stop_.store(true);
    (void)!write(wake_[1], "x", 1);
    thread_.join();
    close(wake_[0]);
    close(wake_[1]);
  }

  std::string address() const {
    return "127.0.0.1:" + std::to_string(listener_->port());
  }

 private:
  std::unique_ptr<ListenSocket> listener_;
  int wake_[2] = {-1, -1};
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

TEST(TracePropagation, FleetJobForwardsTraceToEveryWorkerDispatch) {
  TraceRecordingWorker w1;
  TraceRecordingWorker w2;
  InferenceService coordinator(ServiceOptions());
  std::string id = RegisterNetwork(coordinator);

  JsonWriter body;
  body.BeginObject().KV("program_id", id);
  body.Key("workers").BeginArray().String(w1.address()).String(w2.address())
      .EndArray();
  body.EndObject();
  HttpRequest request = MakeRequest("POST", "/v1/jobs", body.str());
  request.headers.emplace_back(kTraceHeader, "jobtrace01");
  HttpResponse job = coordinator.Handle(request);
  ASSERT_EQ(job.status, 200) << job.body;
  const std::string* echoed = job.FindHeader(kTraceHeader);
  ASSERT_NE(echoed, nullptr);
  EXPECT_EQ(*echoed, "jobtrace01");

  // Every /v1/shards dispatch — one per worker — carried the job's trace.
  for (auto* worker : {&w1, &w2}) {
    std::vector<std::string> seen = worker->seen();
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0], "jobtrace01");
  }
}

TEST(TracePropagation, ReDispatchAfterWorkerFailureKeepsTheTrace) {
  FailingWorker faulty;
  TraceRecordingWorker healthy;
  InferenceService coordinator(ServiceOptions());
  std::string id = RegisterNetwork(coordinator);

  JsonWriter body;
  body.BeginObject().KV("program_id", id);
  body.Key("workers").BeginArray().String(faulty.address())
      .String(healthy.address()).EndArray();
  body.EndObject();
  HttpRequest request = MakeRequest("POST", "/v1/jobs", body.str());
  request.headers.emplace_back(kTraceHeader, "redispatch7");
  HttpResponse job = coordinator.Handle(request);
  ASSERT_EQ(job.status, 200) << job.body;
  EXPECT_EQ(coordinator.fleet().counters().retries, 1u);

  // The healthy worker served its own group plus the re-dispatched one,
  // both under the same trace id.
  std::vector<std::string> seen = healthy.seen();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "redispatch7");
  EXPECT_EQ(seen[1], "redispatch7");
}

TEST(TracePropagation, JobSpansAreOptInAndCarryTheTrace) {
  TraceRecordingWorker w1;
  InferenceService coordinator(ServiceOptions());
  std::string id = RegisterNetwork(coordinator);

  auto job_body = [&](bool spans) {
    JsonWriter body;
    body.BeginObject().KV("program_id", id);
    if (spans) body.KV("spans", true);
    body.Key("workers").BeginArray().String(w1.address()).EndArray();
    body.EndObject();
    return body.str();
  };

  HttpRequest with = MakeRequest("POST", "/v1/jobs", job_body(true));
  with.headers.emplace_back(kTraceHeader, "spantrace1");
  HttpResponse spans = coordinator.Handle(with);
  ASSERT_EQ(spans.status, 200) << spans.body;
  auto doc = JsonValue::Parse(spans.body);
  ASSERT_TRUE(doc.ok()) << spans.body;
  const JsonValue* block = doc->Find("spans");
  ASSERT_NE(block, nullptr) << spans.body;
  const JsonValue* trace = block->Find("trace");
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->string_value(), "spantrace1");
  const JsonValue* exchanges = block->Find("exchanges");
  ASSERT_NE(exchanges, nullptr);
  ASSERT_EQ(exchanges->array().size(), 1u);
  const JsonValue* worker = exchanges->array()[0].Find("worker");
  ASSERT_NE(worker, nullptr);
  EXPECT_EQ(worker->string_value(), w1.address());
  const JsonValue* kind = exchanges->array()[0].Find("kind");
  ASSERT_NE(kind, nullptr);
  EXPECT_EQ(kind->string_value(), "dispatch");

  // Without the flag the body has no span block (and a repeat of the job
  // is a cache hit, whose body must stay byte-stable regardless).
  HttpResponse without =
      coordinator.Handle(MakeRequest("POST", "/v1/jobs", job_body(false)));
  ASSERT_EQ(without.status, 200);
  EXPECT_EQ(without.body.find("\"spans\""), std::string::npos);
}

}  // namespace
}  // namespace gdlog
