// The fleet dispatcher: /v1/shards worker responses, /v1/jobs
// coordination over real loopback sockets, and the failure matrix — a
// worker answering 5xx, a worker killed mid-exchange, a straggler past
// the deadline — all of which must end with the failed shard groups
// re-dispatched to healthy workers and a merged space byte-identical to
// a single-process run.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/fleet.h"
#include "server/http.h"
#include "server/service.h"
#include "util/json.h"
#include "util/socket.h"

namespace gdlog {
namespace {

constexpr const char* kNetworkProgram =
    "infected(Y, flip<0.1>[X, Y]) :- infected(X, 1), connected(X, Y).\n"
    "uninfected(X) :- router(X), not infected(X, 1).\n"
    ":- uninfected(X), uninfected(Y), connected(X, Y).\n";

constexpr const char* kClique3Db =
    "router(1). router(2). router(3).\n"
    "connected(1,2). connected(2,1). connected(1,3). connected(3,1).\n"
    "connected(2,3). connected(3,2).\n"
    "infected(1, 1).\n";

HttpRequest MakeRequest(std::string method, std::string target,
                        std::string body = "") {
  HttpRequest request;
  request.method = std::move(method);
  request.target = std::move(target);
  request.body = std::move(body);
  return request;
}

InferenceService::Options ServiceOptions() {
  InferenceService::Options options;
  options.default_chase.num_threads = 1;
  return options;
}

std::string RegisterNetwork(InferenceService& service) {
  JsonWriter reg;
  reg.BeginObject().KV("program", kNetworkProgram).KV("db", kClique3Db)
      .EndObject();
  HttpResponse response =
      service.Handle(MakeRequest("POST", "/v1/programs", reg.str()));
  EXPECT_TRUE(response.status == 200 || response.status == 201)
      << response.body;
  auto doc = JsonValue::Parse(response.body);
  EXPECT_TRUE(doc.ok());
  const JsonValue* id = doc.ok() ? doc->Find("id") : nullptr;
  EXPECT_NE(id, nullptr);
  return id != nullptr && id->is_string() ? id->string_value() : "";
}

/// A real gdlogd worker: InferenceService behind HttpServer on a
/// kernel-assigned loopback port, serving from a background thread.
class LiveWorker {
 public:
  LiveWorker() {
    service_ = std::make_unique<InferenceService>(ServiceOptions());
    HttpServerOptions options;
    options.workers = 4;
    auto server = HttpServer::Create(
        options,
        [this](const HttpRequest& request) {
          return service_->Handle(request);
        });
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::make_unique<HttpServer>(std::move(*server));
    thread_ = std::thread([this] {
      Status status = server_->Serve();
      EXPECT_TRUE(status.ok()) << status.ToString();
    });
  }

  ~LiveWorker() {
    server_->Shutdown();
    thread_.join();
  }

  std::string address() const {
    return "127.0.0.1:" + std::to_string(server_->port());
  }
  InferenceService& service() { return *service_; }

 private:
  std::unique_ptr<InferenceService> service_;
  std::unique_ptr<HttpServer> server_;
  std::thread thread_;
};

/// A misbehaving worker built straight on ListenSocket, one failure mode
/// per instance. Each accepted connection reads a little of the request
/// and then:
///   kHttp500        — answers a well-formed HTTP 500 (worker-side error)
///   kCloseAfterRead — closes the socket (a worker killed mid-exchange)
///   kHang           — never answers (a straggler; the coordinator's
///                     deadline, not this worker, ends the exchange)
///   kTruncatedChunk — answers a chunked 200 but dies mid-chunk, before
///                     the terminal chunk (a worker killed mid-stream)
class FakeWorker {
 public:
  enum class Mode { kHttp500, kCloseAfterRead, kHang, kTruncatedChunk };

  explicit FakeWorker(Mode mode) : mode_(mode) {
    auto listener = ListenSocket::BindTcp("127.0.0.1", 0);
    EXPECT_TRUE(listener.ok()) << listener.status().ToString();
    listener_ = std::make_unique<ListenSocket>(std::move(*listener));
    EXPECT_EQ(pipe(wake_), 0);
    thread_ = std::thread([this] { Serve(); });
  }

  ~FakeWorker() {
    stop_.store(true);
    (void)!write(wake_[1], "x", 1);
    thread_.join();
    close(wake_[0]);
    close(wake_[1]);
  }

  std::string address() const {
    return "127.0.0.1:" + std::to_string(listener_->port());
  }

 private:
  void Serve() {
    while (!stop_.load()) {
      auto conn = listener_->Accept(wake_[0]);
      if (!conn.ok() || !conn->has_value()) return;
      HandleConnection(**conn);
    }
  }

  void HandleConnection(Connection& conn) {
    char buf[4096];
    (void)conn.ReadSome(buf, sizeof buf, 500);
    switch (mode_) {
      case Mode::kHttp500: {
        const std::string body =
            "{\"error\":{\"code\":\"internal\",\"message\":\"injected\"}}\n";
        std::string response =
            "HTTP/1.1 500 Internal Server Error\r\n"
            "Content-Type: application/json\r\n"
            "Content-Length: " + std::to_string(body.size()) + "\r\n"
            "Connection: close\r\n\r\n" + body;
        (void)conn.WriteAll(response, 1000);
        break;
      }
      case Mode::kCloseAfterRead:
        // Fall out of scope: the peer sees the connection die with no
        // response, exactly what a kill -9 mid-shard looks like.
        break;
      case Mode::kHang:
        // Sit on the open connection until the coordinator gives up
        // (ReadSome returns 0 on its EOF) or the test tears down.
        while (!stop_.load()) {
          auto n = conn.ReadSome(buf, sizeof buf, 50);
          if (n.ok() && *n == 0) break;
        }
        break;
      case Mode::kTruncatedChunk: {
        // A well-formed chunked 200 head, one declared-but-unfinished
        // chunk, then EOF. The client must report a retryable truncation,
        // never a complete response.
        const std::string response =
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n\r\n"
            "40\r\n{\"partial\":\"cut";
        (void)conn.WriteAll(response, 1000);
        break;
      }
    }
  }

  Mode mode_;
  std::unique_ptr<ListenSocket> listener_;
  int wake_[2] = {-1, -1};
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

std::string JobBody(const std::string& id,
                    const std::vector<std::string>& workers,
                    int deadline_ms = 0, bool steal = true,
                    int shards = 0) {
  JsonWriter body;
  body.BeginObject();
  body.KV("program_id", id);
  body.KV("include_outcomes", true);
  body.KV("include_models", true);
  body.KV("include_events", true);
  body.Key("workers").BeginArray();
  for (const std::string& worker : workers) body.String(worker);
  body.EndArray();
  if (deadline_ms > 0) {
    body.KV("deadline_ms", static_cast<long long>(deadline_ms));
  }
  if (!steal) body.KV("steal", false);
  if (shards > 0) body.KV("shards", static_cast<long long>(shards));
  body.EndObject();
  return body.str();
}

/// The single-process reference body: the same query on a fresh,
/// fleet-free service.
std::string ReferenceBody() {
  InferenceService reference(ServiceOptions());
  std::string id = RegisterNetwork(reference);
  JsonWriter query;
  query.BeginObject().KV("program_id", id).KV("include_outcomes", true)
      .KV("include_models", true).KV("include_events", true).EndObject();
  HttpResponse response =
      reference.Handle(MakeRequest("POST", "/v1/query", query.str()));
  EXPECT_EQ(response.status, 200) << response.body;
  return response.body;
}

// ---------------------------------------------------------------------------
// ParseHostPort
// ---------------------------------------------------------------------------

TEST(ParseHostPort, AcceptsHostColonPort) {
  auto parsed = ParseHostPort("worker-3.fleet.internal:8080");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->first, "worker-3.fleet.internal");
  EXPECT_EQ(parsed->second, 8080);
}

TEST(ParseHostPort, RejectsMalformedAddresses) {
  for (const char* bad :
       {"nohost", ":8080", "host:", "host:port", "host:0", "host:65536",
        "host:123456"}) {
    EXPECT_FALSE(ParseHostPort(bad).ok()) << bad;
  }
}

// ---------------------------------------------------------------------------
// /v1/shards (worker half)
// ---------------------------------------------------------------------------

TEST(FleetShards, ExploresRequestedIndicesAsNdjson) {
  InferenceService service(ServiceOptions());
  JsonWriter body;
  body.BeginObject().KV("program", kNetworkProgram).KV("db", kClique3Db)
      .KV("shards", 2ll);
  body.Key("shard_indices").BeginArray().Int(0).Int(1).EndArray();
  body.EndObject();
  HttpResponse response =
      service.Handle(MakeRequest("POST", "/v1/shards", body.str()));
  ASSERT_EQ(response.status, 200) << response.body;
  EXPECT_EQ(response.content_type, "application/x-ndjson");
  // 200s stream chunk-by-chunk on the wire; in-process callers drain.
  ASSERT_NE(response.stream, nullptr);
  ASSERT_TRUE(response.Drain().ok());
  size_t lines = 0;
  for (char c : response.body) lines += c == '\n';
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(response.body.find("\"gdlog.partial.v1\""), std::string::npos);
  EXPECT_EQ(service.fleet().counters().shards_explored, 2u);
  EXPECT_EQ(service.fleet().counters().partial_cache_misses, 2u);

  // The same coordinates again: both lines come out of the worker-side
  // partial cache, byte-identical, with zero additional chases.
  HttpResponse repeat =
      service.Handle(MakeRequest("POST", "/v1/shards", body.str()));
  ASSERT_EQ(repeat.status, 200) << repeat.body;
  ASSERT_TRUE(repeat.Drain().ok());
  EXPECT_EQ(repeat.body, response.body);
  EXPECT_EQ(service.fleet().counters().shards_explored, 2u);
  EXPECT_EQ(service.fleet().counters().partial_cache_hits, 2u);
}

TEST(FleetShards, RejectsBadRequests) {
  InferenceService service(ServiceOptions());
  std::string id = RegisterNetwork(service);

  struct Case {
    const char* name;
    std::string body;
    int status;
  };
  std::vector<Case> cases;
  cases.push_back({"missing shards",
                   "{\"program_id\":\"" + id +
                       "\",\"shard_indices\":[0]}",
                   400});
  cases.push_back({"index out of range",
                   "{\"program_id\":\"" + id +
                       "\",\"shards\":2,\"shard_indices\":[2]}",
                   400});
  cases.push_back({"empty indices",
                   "{\"program_id\":\"" + id +
                       "\",\"shards\":2,\"shard_indices\":[]}",
                   400});
  cases.push_back({"unknown program",
                   "{\"program_id\":\"p999\",\"shards\":2,"
                   "\"shard_indices\":[0]}",
                   404});
  cases.push_back({"revision mismatch",
                   "{\"program_id\":\"" + id +
                       "\",\"revision\":7,\"shards\":2,"
                       "\"shard_indices\":[0]}",
                   409});
  cases.push_back({"bad assignment",
                   "{\"program_id\":\"" + id +
                       "\",\"shards\":2,\"assignment\":\"psychic\","
                       "\"shard_indices\":[0]}",
                   400});
  for (const Case& c : cases) {
    HttpResponse response =
        service.Handle(MakeRequest("POST", "/v1/shards", c.body));
    EXPECT_EQ(response.status, c.status) << c.name << ": " << response.body;
    auto doc = JsonValue::Parse(response.body);
    ASSERT_TRUE(doc.ok()) << c.name;
    EXPECT_NE(doc->Find("error"), nullptr) << c.name;
  }
}

// ---------------------------------------------------------------------------
// /v1/jobs (coordinator half) over real sockets
// ---------------------------------------------------------------------------

TEST(FleetJobs, MergedJobIsByteIdenticalToSingleProcess) {
  LiveWorker w1;
  LiveWorker w2;
  InferenceService coordinator(ServiceOptions());
  std::string id = RegisterNetwork(coordinator);

  HttpResponse job = coordinator.Handle(MakeRequest(
      "POST", "/v1/jobs", JobBody(id, {w1.address(), w2.address()})));
  ASSERT_EQ(job.status, 200) << job.body;
  EXPECT_EQ(job.body, ReferenceBody());

  FleetService::Counters counters = coordinator.fleet().counters();
  EXPECT_EQ(counters.jobs, 1u);
  EXPECT_EQ(counters.jobs_failed, 0u);
  EXPECT_EQ(counters.dispatches, 2u);
  EXPECT_EQ(counters.retries, 0u);
  EXPECT_EQ(counters.worker_failures, 0u);
  EXPECT_EQ(counters.partials_merged, 2u);
  // Both workers explored exactly one shard group.
  EXPECT_EQ(w1.service().fleet().counters().shard_requests, 1u);
  EXPECT_EQ(w2.service().fleet().counters().shard_requests, 1u);

  // Jobs share /query's fingerprint: the same query on the coordinator is
  // a cache hit, not a second chase.
  uint64_t hits_before = coordinator.cache().stats().hits;
  JsonWriter query;
  query.BeginObject().KV("program_id", id).KV("include_outcomes", true)
      .KV("include_models", true).KV("include_events", true).EndObject();
  HttpResponse cached =
      coordinator.Handle(MakeRequest("POST", "/v1/query", query.str()));
  ASSERT_EQ(cached.status, 200);
  EXPECT_EQ(cached.body, job.body);
  EXPECT_EQ(coordinator.cache().stats().hits, hits_before + 1);
}

TEST(FleetJobs, WorkerHttp500IsRetriedOnHealthyWorker) {
  FakeWorker faulty(FakeWorker::Mode::kHttp500);
  LiveWorker healthy;
  InferenceService coordinator(ServiceOptions());
  std::string id = RegisterNetwork(coordinator);

  HttpResponse job = coordinator.Handle(MakeRequest(
      "POST", "/v1/jobs", JobBody(id, {faulty.address(), healthy.address()})));
  ASSERT_EQ(job.status, 200) << job.body;
  EXPECT_EQ(job.body, ReferenceBody());

  FleetService::Counters counters = coordinator.fleet().counters();
  EXPECT_EQ(counters.worker_failures, 1u);
  EXPECT_EQ(counters.retries, 1u);
  EXPECT_EQ(counters.dispatches, 3u);
  // The healthy worker served its own group plus the re-dispatched one.
  EXPECT_EQ(healthy.service().fleet().counters().shard_requests, 2u);
}

TEST(FleetJobs, WorkerKilledMidShardIsRetriedOnHealthyWorker) {
  FakeWorker killed(FakeWorker::Mode::kCloseAfterRead);
  LiveWorker healthy;
  InferenceService coordinator(ServiceOptions());
  std::string id = RegisterNetwork(coordinator);

  HttpResponse job = coordinator.Handle(MakeRequest(
      "POST", "/v1/jobs", JobBody(id, {killed.address(), healthy.address()})));
  ASSERT_EQ(job.status, 200) << job.body;
  EXPECT_EQ(job.body, ReferenceBody());

  FleetService::Counters counters = coordinator.fleet().counters();
  EXPECT_EQ(counters.worker_failures, 1u);
  EXPECT_EQ(counters.retries, 1u);
}

TEST(FleetJobs, StragglerIsStolenByIdleWorker) {
  FakeWorker straggler(FakeWorker::Mode::kHang);
  LiveWorker healthy;
  InferenceService coordinator(ServiceOptions());
  std::string id = RegisterNetwork(coordinator);

  // The hang worker never answers. Long before the 4 s deadline the idle
  // healthy worker steals the straggler's undelivered shard indices
  // (default steal_after_ms = 250) and the job completes without waiting
  // for the deadline; the straggler's exchange is then canceled because
  // the job is done — which is not a worker failure.
  HttpResponse job = coordinator.Handle(
      MakeRequest("POST", "/v1/jobs",
                  JobBody(id, {straggler.address(), healthy.address()},
                          /*deadline_ms=*/4000)));
  ASSERT_EQ(job.status, 200) << job.body;
  EXPECT_EQ(job.body, ReferenceBody());

  FleetService::Counters counters = coordinator.fleet().counters();
  EXPECT_EQ(counters.steals, 1u);
  EXPECT_EQ(counters.retries, 0u);
  EXPECT_EQ(counters.worker_failures, 0u);
  EXPECT_EQ(counters.partials_merged, 2u);
  EXPECT_EQ(counters.duplicate_partials, 0u);
}

TEST(FleetJobs, StragglerPastDeadlineIsRetriedWhenStealingIsOff) {
  FakeWorker straggler(FakeWorker::Mode::kHang);
  LiveWorker healthy;
  InferenceService coordinator(ServiceOptions());
  std::string id = RegisterNetwork(coordinator);

  // With "steal": false the pre-v2 behavior holds: the coordinator's
  // per-exchange deadline — not any worker-side event — ends the
  // exchange, and the group is re-dispatched to the healthy worker.
  HttpResponse job = coordinator.Handle(
      MakeRequest("POST", "/v1/jobs",
                  JobBody(id, {straggler.address(), healthy.address()},
                          /*deadline_ms=*/400, /*steal=*/false)));
  ASSERT_EQ(job.status, 200) << job.body;
  EXPECT_EQ(job.body, ReferenceBody());

  FleetService::Counters counters = coordinator.fleet().counters();
  EXPECT_EQ(counters.worker_failures, 1u);
  EXPECT_EQ(counters.retries, 1u);
  EXPECT_EQ(counters.steals, 0u);
}

TEST(FleetJobs, TruncatedChunkedStreamIsRetriedNeverPartiallyMerged) {
  FakeWorker truncated(FakeWorker::Mode::kTruncatedChunk);
  LiveWorker healthy;
  InferenceService coordinator(ServiceOptions());
  std::string id = RegisterNetwork(coordinator);

  // A worker that dies mid-chunk produced a truncated stream: the client
  // must surface a retryable failure (never fold a half-delivered body),
  // and the coordinator re-dispatches the group.
  HttpResponse job = coordinator.Handle(MakeRequest(
      "POST", "/v1/jobs",
      JobBody(id, {truncated.address(), healthy.address()})));
  ASSERT_EQ(job.status, 200) << job.body;
  EXPECT_EQ(job.body, ReferenceBody());

  FleetService::Counters counters = coordinator.fleet().counters();
  EXPECT_EQ(counters.worker_failures, 1u);
  EXPECT_EQ(counters.retries, 1u);
  EXPECT_EQ(counters.partials_merged, 2u);
}

TEST(FleetJobs, CoordinatorHoldsO1ResidentPartials) {
  LiveWorker worker;
  InferenceService coordinator(ServiceOptions());
  std::string id = RegisterNetwork(coordinator);

  // One worker, eight shards: the whole job streams through a single
  // exchange. The streaming merge folds each partial before the next line
  // is parsed, so the peak number of resident partials is 1 — bounded by
  // the worker count, never the shard count.
  HttpResponse job = coordinator.Handle(MakeRequest(
      "POST", "/v1/jobs",
      JobBody(id, {worker.address()}, /*deadline_ms=*/0, /*steal=*/true,
              /*shards=*/8)));
  ASSERT_EQ(job.status, 200) << job.body;
  EXPECT_EQ(job.body, ReferenceBody());

  FleetService::Counters counters = coordinator.fleet().counters();
  EXPECT_EQ(counters.partials_merged, 8u);
  EXPECT_EQ(counters.partials_streamed, 8u);
  EXPECT_EQ(counters.peak_resident_partials, 1u);
}

TEST(FleetJobs, AllWorkersDeadFailsWithFleetError) {
  FakeWorker faulty(FakeWorker::Mode::kHttp500);
  FakeWorker killed(FakeWorker::Mode::kCloseAfterRead);
  InferenceService coordinator(ServiceOptions());
  std::string id = RegisterNetwork(coordinator);

  HttpResponse job = coordinator.Handle(MakeRequest(
      "POST", "/v1/jobs", JobBody(id, {faulty.address(), killed.address()})));
  EXPECT_EQ(job.status, 503) << job.body;
  auto doc = JsonValue::Parse(job.body);
  ASSERT_TRUE(doc.ok());
  const JsonValue* error = doc->Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(coordinator.fleet().counters().jobs_failed, 1u);
}

TEST(FleetJobs, RejectsJobWithoutWorkers) {
  InferenceService coordinator(ServiceOptions());
  std::string id = RegisterNetwork(coordinator);
  HttpResponse job = coordinator.Handle(MakeRequest(
      "POST", "/v1/jobs", "{\"program_id\":\"" + id + "\"}"));
  EXPECT_EQ(job.status, 400) << job.body;
  EXPECT_NE(job.body.find("--fleet-workers"), std::string::npos);
  EXPECT_EQ(coordinator.fleet().counters().jobs_failed, 1u);
}

}  // namespace
}  // namespace gdlog
