// Well-founded semantics and stable-model enumeration: the Datalog¬
// substrate the probabilistic layer rests on.
#include <gtest/gtest.h>

#include <algorithm>

#include "ast/parser.h"
#include "stable/solver.h"
#include "stable/wfs.h"

namespace gdlog {
namespace {

// Test helper: parse a *ground* normal program in surface syntax and return
// the GroundRuleSet (facts and ground rules only; no variables).
GroundRuleSet ParseGround(const std::string& text, Interner* interner) {
  auto shared = std::shared_ptr<Interner>(interner, [](Interner*) {});
  auto prog = ParseProgram(text, shared);
  EXPECT_TRUE(prog.ok()) << prog.status().ToString();
  GroundRuleSet out;
  for (const Rule& rule : prog->rules()) {
    GroundRule gr;
    gr.is_constraint = rule.is_constraint;
    if (!rule.is_constraint) {
      gr.head.predicate = rule.head.predicate;
      for (const HeadArg& arg : rule.head.args) {
        EXPECT_TRUE(arg.term().is_constant()) << "ground programs only";
        gr.head.args.push_back(arg.term().constant());
      }
    }
    for (const Literal& lit : rule.body) {
      GroundAtom atom;
      atom.predicate = lit.atom.predicate;
      for (const Term& t : lit.atom.args) {
        EXPECT_TRUE(t.is_constant()) << "ground programs only";
        atom.args.push_back(t.constant());
      }
      (lit.negated ? gr.negative : gr.positive).push_back(std::move(atom));
    }
    out.Add(std::move(gr));
  }
  return out;
}

StableModelSet Solve(const std::string& text) {
  Interner interner;
  GroundRuleSet rules = ParseGround(text, &interner);
  auto models = AllStableModels(rules);
  EXPECT_TRUE(models.ok()) << models.status().ToString();
  return std::move(models).value();
}

// Renders a model as "a b(1)" for compact assertions.
std::vector<std::string> Render(const StableModelSet& models,
                                const std::string& text) {
  // Re-parse to get a consistent interner for rendering.
  Interner interner;
  ParseGround(text, &interner);
  std::vector<std::string> out;
  for (const StableModel& model : models) {
    std::string s;
    for (const GroundAtom& atom : model) {
      if (!s.empty()) s += " ";
      s += atom.ToString(&interner);
    }
    out.push_back(s);
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Well-founded model
// ---------------------------------------------------------------------------

TEST(Wfs, PositiveProgramIsTotal) {
  Interner interner;
  GroundRuleSet rules = ParseGround("a. b :- a. c :- b. d :- e.", &interner);
  NormalProgram prog = NormalProgram::FromRuleSet(rules);
  WellFoundedModel wfm = ComputeWellFounded(prog);
  EXPECT_TRUE(wfm.IsTotal());
  EXPECT_EQ(wfm.TrueAtoms().size(), 3u);  // a, b, c; d and e false
}

TEST(Wfs, StratifiedNegationIsTotal) {
  Interner interner;
  GroundRuleSet rules = ParseGround("a. c :- a, not b.", &interner);
  NormalProgram prog = NormalProgram::FromRuleSet(rules);
  WellFoundedModel wfm = ComputeWellFounded(prog);
  EXPECT_TRUE(wfm.IsTotal());
  EXPECT_EQ(wfm.TrueAtoms().size(), 2u);  // a, c
}

TEST(Wfs, EvenNegativeLoopIsUndefined) {
  Interner interner;
  GroundRuleSet rules = ParseGround("a :- not b. b :- not a.", &interner);
  NormalProgram prog = NormalProgram::FromRuleSet(rules);
  WellFoundedModel wfm = ComputeWellFounded(prog);
  EXPECT_FALSE(wfm.IsTotal());
  EXPECT_TRUE(wfm.TrueAtoms().empty());
  for (Truth t : wfm.truth) EXPECT_EQ(t, Truth::kUndefined);
}

TEST(Wfs, OddNegativeLoopIsUndefined) {
  Interner interner;
  GroundRuleSet rules = ParseGround("a :- not a.", &interner);
  NormalProgram prog = NormalProgram::FromRuleSet(rules);
  WellFoundedModel wfm = ComputeWellFounded(prog);
  EXPECT_FALSE(wfm.IsTotal());
}

TEST(Wfs, UnfoundedPositiveLoopIsFalse) {
  // a :- b. b :- a.  — no external support: both well-founded false.
  Interner interner;
  GroundRuleSet rules = ParseGround("a :- b. b :- a.", &interner);
  NormalProgram prog = NormalProgram::FromRuleSet(rules);
  WellFoundedModel wfm = ComputeWellFounded(prog);
  EXPECT_TRUE(wfm.IsTotal());
  EXPECT_TRUE(wfm.TrueAtoms().empty());
}

TEST(Wfs, MixedDefiniteAndUndefined) {
  Interner interner;
  GroundRuleSet rules =
      ParseGround("f. a :- not b. b :- not a. c :- f, not g.", &interner);
  NormalProgram prog = NormalProgram::FromRuleSet(rules);
  WellFoundedModel wfm = ComputeWellFounded(prog);
  EXPECT_FALSE(wfm.IsTotal());
  // f and c are well-founded true.
  EXPECT_EQ(wfm.TrueAtoms().size(), 2u);
}

TEST(Wfs, ExternalConditioningBlocksRules) {
  Interner interner;
  GroundRuleSet rules = ParseGround("a :- not b. b :- not a.", &interner);
  NormalProgram prog = NormalProgram::FromRuleSet(rules);
  // Force b true: "not b" is falsified, so a becomes false... and b has no
  // derivation either way — conditioning only affects negation.
  std::vector<Truth> external(prog.atom_count(), Truth::kUndefined);
  uint32_t b = prog.atoms().Lookup(
      GroundAtom{interner.Lookup("b"), {}});
  ASSERT_NE(b, AtomTable::kNotFound);
  external[b] = Truth::kTrue;
  WellFoundedModel wfm = ComputeWellFounded(prog, &external);
  uint32_t a = prog.atoms().Lookup(GroundAtom{interner.Lookup("a"), {}});
  EXPECT_EQ(wfm.truth[a], Truth::kFalse);
  EXPECT_EQ(wfm.truth[b], Truth::kTrue);  // b :- not a fires since a false
}

// ---------------------------------------------------------------------------
// Stable models
// ---------------------------------------------------------------------------

TEST(Solver, PositiveProgramHasUniqueMinimalModel) {
  StableModelSet models = Solve("a. b :- a. c :- z.");
  ASSERT_EQ(models.size(), 1u);
  EXPECT_EQ(models.begin()->size(), 2u);  // {a, b}
}

TEST(Solver, EvenLoopHasTwoModels) {
  StableModelSet models = Solve("a :- not b. b :- not a.");
  auto rendered = Render(models, "a :- not b. b :- not a.");
  ASSERT_EQ(rendered.size(), 2u);
  EXPECT_EQ(rendered[0], "a");
  EXPECT_EQ(rendered[1], "b");
}

TEST(Solver, OddLoopHasNoModel) {
  EXPECT_TRUE(Solve("a :- not a.").empty());
}

TEST(Solver, OddLoopWithEscape) {
  // a :- not a is inconsistent alone, but "a :- b. b." provides support.
  StableModelSet models = Solve("a :- not a. a :- b. b.");
  ASSERT_EQ(models.size(), 1u);
  EXPECT_EQ(models.begin()->size(), 2u);  // {a, b}
}

TEST(Solver, UnfoundedLoopNotStable) {
  // The supported model {a, b} is not stable (circular support).
  EXPECT_EQ(Solve("a :- b. b :- a.").size(), 1u);  // only {} is stable
  EXPECT_TRUE(Solve("a :- b. b :- a.").begin()->empty());
}

TEST(Solver, ChoiceViaEvenLoopsScales) {
  // n independent even loops ⇒ 2^n stable models.
  std::string text;
  for (int i = 0; i < 6; ++i) {
    std::string a = "a" + std::to_string(i);
    std::string b = "b" + std::to_string(i);
    text += a + " :- not " + b + ". " + b + " :- not " + a + ".\n";
  }
  EXPECT_EQ(Solve(text).size(), 64u);
}

TEST(Solver, ConstraintsFilterModels) {
  std::string text = "a :- not b. b :- not a. :- a.";
  StableModelSet models = Solve(text);
  auto rendered = Render(models, text);
  ASSERT_EQ(rendered.size(), 1u);
  EXPECT_EQ(rendered[0], "b");
}

TEST(Solver, ConstraintCanEraseAllModels) {
  EXPECT_TRUE(Solve("a :- not b. b :- not a. :- a. :- b.").empty());
}

TEST(Solver, ConstraintWithNegativeBody) {
  // ":- not a" forces a true; only the model containing a survives.
  std::string text = "a :- not b. b :- not a. :- not a.";
  auto rendered = Render(Solve(text), text);
  ASSERT_EQ(rendered.size(), 1u);
  EXPECT_EQ(rendered[0], "a");
}

TEST(Solver, FactsAlwaysInEveryModel) {
  std::string text = "f(1). f(2). a :- not b. b :- not a.";
  StableModelSet models = Solve(text);
  ASSERT_EQ(models.size(), 2u);
  for (const StableModel& model : models) {
    EXPECT_EQ(model.size(), 3u);  // two facts + one of a/b
  }
}

TEST(Solver, GelfondLifschitzClassicExample) {
  // p :- not q. q :- not p. r :- p. r :- q.  — two models, both contain r.
  std::string text = "p :- not q. q :- not p. r :- p. r :- q.";
  StableModelSet models = Solve(text);
  ASSERT_EQ(models.size(), 2u);
  for (const StableModel& model : models) EXPECT_EQ(model.size(), 2u);
}

TEST(Solver, NegationOfDerivedAtom) {
  // b derivable ⇒ "not b" fails ⇒ a underivable.
  EXPECT_EQ(Render(Solve("b. a :- not b."), "b. a :- not b.").at(0), "b");
}

TEST(Solver, CoinProgramGroundVersion) {
  // The ground version of the paper's Π_coin with flip = 1:
  //   coin(1). aux1 :- coin(1), not aux2. aux2 :- coin(1), not aux1.
  std::string text =
      "coin(1). aux1 :- coin(1), not aux2. aux2 :- coin(1), not aux1.";
  StableModelSet models = Solve(text);
  ASSERT_EQ(models.size(), 2u);
  auto rendered = Render(models, text);
  // Models are sorted by predicate-interning order: coin first.
  EXPECT_EQ(rendered[0], "coin(1) aux1");
  EXPECT_EQ(rendered[1], "coin(1) aux2");
}

TEST(Solver, EnumerationHonorsMaxModels) {
  Interner interner;
  std::string text =
      "a0 :- not b0. b0 :- not a0. a1 :- not b1. b1 :- not a1.";
  GroundRuleSet rules = ParseGround(text, &interner);
  StableModelEnumerator::Options options;
  options.max_models = 2;
  NormalProgram prog = NormalProgram::FromRuleSet(rules);
  StableModelEnumerator solver(prog, options);
  size_t count = 0;
  Status st = solver.Enumerate([&](const std::vector<uint32_t>&) {
    ++count;
    return true;
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(count, 2u);
}

TEST(Solver, NodeBudgetReportsExhaustion) {
  std::string text;
  for (int i = 0; i < 12; ++i) {
    std::string a = "a" + std::to_string(i);
    std::string b = "b" + std::to_string(i);
    text += a + " :- not " + b + ". " + b + " :- not " + a + ".\n";
  }
  Interner interner;
  GroundRuleSet rules = ParseGround(text, &interner);
  StableModelEnumerator::Options options;
  options.max_nodes = 10;
  NormalProgram prog = NormalProgram::FromRuleSet(rules);
  StableModelEnumerator solver(prog, options);
  Status st = solver.Enumerate(
      [](const std::vector<uint32_t>&) { return true; });
  EXPECT_EQ(st.code(), StatusCode::kBudgetExhausted);
}

TEST(Solver, HasStableModelShortCircuits) {
  Interner interner;
  GroundRuleSet sat = ParseGround("a :- not b. b :- not a.", &interner);
  auto has = HasStableModel(sat);
  ASSERT_TRUE(has.ok());
  EXPECT_TRUE(*has);
  Interner interner2;
  GroundRuleSet unsat = ParseGround("x. a :- not a.", &interner2);
  auto hasnt = HasStableModel(unsat);
  ASSERT_TRUE(hasnt.ok());
  EXPECT_FALSE(*hasnt);
}

// ---------------------------------------------------------------------------
// Property sweep: every enumerated stable model passes an independent
// Gelfond–Lifschitz verification, and the well-founded model brackets it.
// ---------------------------------------------------------------------------

class SolverPropertyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SolverPropertyTest, ModelsAreStableAndBracketedByWfs) {
  Interner interner;
  GroundRuleSet rules = ParseGround(GetParam(), &interner);
  NormalProgram prog = NormalProgram::FromRuleSet(rules);
  WellFoundedModel wfm = ComputeWellFounded(prog);

  StableModelEnumerator solver(prog);
  size_t models = 0;
  Status st = solver.Enumerate([&](const std::vector<uint32_t>& atoms) {
    ++models;
    std::vector<bool> in_model(prog.atom_count(), false);
    for (uint32_t a : atoms) in_model[a] = true;

    // Independent verification: M equals the least model of the reduct
    // P^M (drop rules with a negative atom in M; drop negative literals).
    std::vector<Truth> external(prog.atom_count(), Truth::kFalse);
    for (uint32_t a = 0; a < prog.atom_count(); ++a) {
      if (in_model[a]) external[a] = Truth::kTrue;
    }
    std::vector<bool> least = LeastModelOfReduct(prog, external);
    uint32_t bot = prog.falsity_atom();
    for (uint32_t a = 0; a < prog.atom_count(); ++a) {
      if (a == bot) {
        EXPECT_FALSE(least[a]) << "constraint-violating model emitted";
        continue;
      }
      EXPECT_EQ(least[a], in_model[a]) << "atom " << a << " not stable";
    }

    // WFS bracket: well-founded-true atoms are in every stable model,
    // well-founded-false atoms in none.
    for (uint32_t a = 0; a < prog.atom_count(); ++a) {
      if (a == bot) continue;
      if (wfm.truth[a] == Truth::kTrue) {
        EXPECT_TRUE(in_model[a]);
      }
      if (wfm.truth[a] == Truth::kFalse) {
        EXPECT_FALSE(in_model[a]);
      }
    }
    return true;
  });
  ASSERT_TRUE(st.ok());
}

INSTANTIATE_TEST_SUITE_P(
    GroundPrograms, SolverPropertyTest,
    ::testing::Values(
        "a. b :- a.",
        "a :- not b. b :- not a.",
        "a :- not b. b :- not a. c :- a. c :- b.",
        "x. a :- not a.",
        "a :- not b. b :- not c. c :- not a.",
        "f. a :- f, not b. b :- f, not a. :- a.",
        "p(1). p(2). q(1) :- p(1), not q(2). q(2) :- p(2), not q(1).",
        "a :- b. b :- a. c :- not a.",
        "a :- not b. b :- not a. :- not a.",
        "d. e :- d. f :- e, not g. g :- e, not f. h :- f. h :- g. :- h, f."));

}  // namespace
}  // namespace gdlog
