// Property tests for the compiled join machinery (ground/join_plan.h):
// randomized conjunctive queries and stratified programs must produce
// bit-identical binding sets, models and groundings between compiled plans
// and the legacy reference Matcher, plus unit coverage of composite
// indices, frames, stats counters, and concurrent plan execution against a
// frozen store (the TSan job exercises the once-guarded index builds).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "ast/parser.h"
#include "datalog/evaluator.h"
#include "gdatalog/engine.h"
#include "ground/join_plan.h"
#include "ground/matcher.h"
#include "util/rng.h"

namespace gdlog {
namespace {

constexpr uint32_t kNumPredicates = 4;
constexpr uint32_t kNumConstants = 4;
constexpr uint32_t kNumVariables = 4;

struct RandomInstance {
  FactStore store;
  std::vector<size_t> arities;  // per predicate
};

RandomInstance MakeInstance(Rng* rng) {
  RandomInstance out;
  out.arities.resize(kNumPredicates);
  for (uint32_t p = 0; p < kNumPredicates; ++p) {
    out.arities[p] = 1 + rng->NextBounded(3);  // arity 1..3
    // Predicate 3 stays empty every few instances (empty-relation edge).
    size_t rows = (p == 3 && rng->NextBounded(2) == 0) ? 0 : rng->NextBounded(10);
    for (size_t r = 0; r < rows; ++r) {
      Tuple tuple;
      for (size_t c = 0; c < out.arities[p]; ++c) {
        tuple.push_back(
            Value::Int(static_cast<int64_t>(rng->NextBounded(kNumConstants))));
      }
      out.store.Insert(p, std::move(tuple));
    }
  }
  return out;
}

/// Random conjunctions biased toward the tentpole's edge cases: repeated
/// variables within an atom (R(X,X)), constants-only atoms, self-joins
/// (the same predicate several times), and the empty relation.
std::vector<Atom> MakeQuery(Rng* rng, const RandomInstance& inst) {
  size_t num_atoms = 1 + rng->NextBounded(4);
  std::vector<Atom> query;
  bool self_join = rng->NextBounded(3) == 0;
  uint32_t self_pred = static_cast<uint32_t>(rng->NextBounded(kNumPredicates));
  for (size_t i = 0; i < num_atoms; ++i) {
    Atom atom;
    atom.predicate =
        self_join ? self_pred
                  : static_cast<uint32_t>(rng->NextBounded(kNumPredicates));
    bool constants_only = rng->NextBounded(8) == 0;
    uint32_t repeated_var = static_cast<uint32_t>(rng->NextBounded(kNumVariables));
    bool repeat = rng->NextBounded(4) == 0;
    for (size_t c = 0; c < inst.arities[atom.predicate]; ++c) {
      if (constants_only || rng->NextBounded(4) == 0) {
        atom.args.push_back(Term::Constant(
            Value::Int(static_cast<int64_t>(rng->NextBounded(kNumConstants)))));
      } else if (repeat) {
        atom.args.push_back(Term::Variable(repeated_var));
      } else {
        atom.args.push_back(Term::Variable(
            static_cast<uint32_t>(rng->NextBounded(kNumVariables))));
      }
    }
    query.push_back(std::move(atom));
  }
  return query;
}

using BindingKey = std::vector<std::pair<uint32_t, Value>>;

std::set<BindingKey> LegacyBindings(const std::vector<const Atom*>& atoms,
                                    const FactStore& store,
                                    const std::vector<uint32_t>& vars) {
  Matcher matcher(&store);
  std::set<BindingKey> out;
  matcher.Match(atoms, [&](const Binding& binding) {
    BindingKey key;
    for (uint32_t v : vars) key.emplace_back(v, binding.at(v));
    out.insert(std::move(key));
    return true;
  });
  return out;
}

std::set<BindingKey> CompiledBindings(const std::vector<const Atom*>& atoms,
                                      const FactStore& store,
                                      const std::vector<uint32_t>& vars,
                                      MatchStats* stats) {
  CompiledRule body = CompileBody(atoms);
  JoinPlan plan = CompileJoinPlan(body, store);
  JoinExecutor exec;
  std::set<BindingKey> out;
  exec.Execute(plan, stats, [&](const BindingFrame& frame) {
    BindingKey key;
    for (uint32_t v : vars) key.emplace_back(v, frame.Get(body.slots.SlotOf(v)));
    out.insert(std::move(key));
    return true;
  });
  return out;
}

std::vector<uint32_t> VarsOf(const std::vector<Atom>& query) {
  std::set<uint32_t> vars;
  for (const Atom& atom : query) {
    for (const Term& t : atom.args) {
      if (t.is_variable()) vars.insert(t.var_id());
    }
  }
  return std::vector<uint32_t>(vars.begin(), vars.end());
}

class JoinPlanOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinPlanOracleTest, CompiledMatchesLegacyMatcher) {
  Rng rng(GetParam());
  for (int round = 0; round < 25; ++round) {
    RandomInstance inst = MakeInstance(&rng);
    std::vector<Atom> query = MakeQuery(&rng, inst);
    std::vector<const Atom*> atoms;
    for (const Atom& a : query) atoms.push_back(&a);
    std::vector<uint32_t> vars = VarsOf(query);

    MatchStats stats;
    ASSERT_EQ(CompiledBindings(atoms, inst.store, vars, &stats),
              LegacyBindings(atoms, inst.store, vars))
        << "seed " << GetParam() << " round " << round;
  }
}

TEST_P(JoinPlanOracleTest, PivotMatchesLegacyPivot) {
  Rng rng(GetParam() + 1000);
  for (int round = 0; round < 15; ++round) {
    RandomInstance inst = MakeInstance(&rng);
    std::vector<Atom> query = MakeQuery(&rng, inst);
    std::vector<const Atom*> atoms;
    for (const Atom& a : query) atoms.push_back(&a);
    std::vector<uint32_t> vars = VarsOf(query);
    Matcher matcher(&inst.store);

    CompiledRule body = CompileBody(atoms);
    JoinExecutor exec;
    MatchStats stats;
    for (size_t pivot = 0; pivot < atoms.size(); ++pivot) {
      const std::vector<Tuple>& rows =
          inst.store.Rows(atoms[pivot]->predicate);

      std::set<BindingKey> legacy;
      matcher.MatchWithPivot(atoms, pivot, rows, [&](const Binding& b) {
        BindingKey key;
        for (uint32_t v : vars) key.emplace_back(v, b.at(v));
        legacy.insert(std::move(key));
        return true;
      });

      JoinPlan plan = CompileJoinPlan(body, inst.store, pivot);
      std::set<BindingKey> compiled;
      exec.ExecuteWithPivot(plan, rows, &stats, [&](const BindingFrame& f) {
        BindingKey key;
        for (uint32_t v : vars) {
          key.emplace_back(v, f.Get(body.slots.SlotOf(v)));
        }
        compiled.insert(std::move(key));
        return true;
      });
      ASSERT_EQ(compiled, legacy)
          << "seed " << GetParam() << " round " << round << " pivot " << pivot;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinPlanOracleTest,
                         ::testing::Range<uint64_t>(1, 21));

// ---------------------------------------------------------------------------
// Randomized stratified programs: compiled evaluator vs. a reference
// materializer driven by the legacy matcher.
// ---------------------------------------------------------------------------

/// Naive fixpoint with the legacy Matcher: loop every rule over the whole
/// store until nothing new appears; negative literals checked per binding.
/// (Stratification caveat: callers only generate negation on extensional
/// predicates, for which a single global fixpoint is the perfect model.)
FactStore ReferenceMaterialize(const Program& pi, const FactStore& db) {
  FactStore facts = db;
  bool changed = true;
  while (changed) {
    changed = false;
    Matcher matcher(&facts);
    std::vector<GroundAtom> derived;
    for (const Rule& rule : pi.rules()) {
      if (rule.is_constraint) continue;
      std::vector<const Atom*> pos = rule.PositiveBody();
      auto fire = [&](const Binding& binding) {
        for (const Literal& lit : rule.body) {
          if (!lit.negated) continue;
          if (facts.Contains(ApplyAtom(lit.atom, binding))) return true;
        }
        GroundAtom head;
        head.predicate = rule.head.predicate;
        for (const HeadArg& arg : rule.head.args) {
          head.args.push_back(ApplyTerm(arg.term(), binding));
        }
        derived.push_back(std::move(head));
        return true;
      };
      if (pos.empty()) {
        Binding empty;
        fire(empty);
      } else {
        matcher.Match(pos, fire);
      }
    }
    for (GroundAtom& atom : derived) {
      if (facts.Insert(atom)) changed = true;
    }
  }
  return facts;
}

std::vector<std::string> SortedFacts(const FactStore& store) {
  std::vector<std::string> out;
  for (const GroundAtom& atom : store.AllFacts()) out.push_back(atom.ToString());
  std::sort(out.begin(), out.end());
  return out;
}

/// Random safe program: extensional e0..e2 (with facts, negatable),
/// intensional i0..i1 (positive recursion allowed). Negation only on
/// extensional predicates keeps every program stratified and makes the
/// naive reference fixpoint compute the perfect model.
TEST_P(JoinPlanOracleTest, RandomProgramsMatchReferenceMaterialization) {
  Rng rng(GetParam() + 9000);
  for (int round = 0; round < 10; ++round) {
    Program pi;
    uint32_t edb[3], idb[2], var[4];
    for (int i = 0; i < 3; ++i) {
      edb[i] = pi.interner()->Intern("e" + std::to_string(i));
    }
    for (int i = 0; i < 2; ++i) {
      idb[i] = pi.interner()->Intern("i" + std::to_string(i));
    }
    for (int i = 0; i < 4; ++i) {
      var[i] = pi.interner()->Intern("V" + std::to_string(i));
    }
    // Arities: e* = 2, i* = 2.
    size_t num_rules = 2 + rng.NextBounded(4);
    for (size_t r = 0; r < num_rules; ++r) {
      Rule rule;
      size_t num_pos = 1 + rng.NextBounded(3);
      std::vector<uint32_t> body_vars;
      for (size_t b = 0; b < num_pos; ++b) {
        Atom atom;
        atom.predicate = rng.NextBounded(2) == 0 ? edb[rng.NextBounded(3)]
                                                 : idb[rng.NextBounded(2)];
        for (int c = 0; c < 2; ++c) {
          if (rng.NextBounded(5) == 0) {
            atom.args.push_back(Term::Constant(
                Value::Int(static_cast<int64_t>(rng.NextBounded(3)))));
          } else {
            uint32_t v = var[rng.NextBounded(4)];
            atom.args.push_back(Term::Variable(v));
            body_vars.push_back(v);
          }
        }
        rule.body.push_back(Literal{std::move(atom), /*negated=*/false});
      }
      if (body_vars.empty()) continue;  // keep rules safe and interesting
      // Optional negative literal on an extensional predicate, using only
      // positive-body variables (safety).
      if (rng.NextBounded(3) == 0) {
        Atom neg;
        neg.predicate = edb[rng.NextBounded(3)];
        for (int c = 0; c < 2; ++c) {
          neg.args.push_back(
              Term::Variable(body_vars[rng.NextBounded(body_vars.size())]));
        }
        rule.body.push_back(Literal{std::move(neg), /*negated=*/true});
      }
      rule.head.predicate = idb[rng.NextBounded(2)];
      for (int c = 0; c < 2; ++c) {
        rule.head.args.push_back(HeadArg(
            Term::Variable(body_vars[rng.NextBounded(body_vars.size())])));
      }
      pi.AddRule(std::move(rule));
    }
    if (pi.rules().empty()) continue;

    FactStore db;
    for (int i = 0; i < 3; ++i) {
      size_t rows = rng.NextBounded(8);
      for (size_t f = 0; f < rows; ++f) {
        db.Insert(edb[i],
                  {Value::Int(static_cast<int64_t>(rng.NextBounded(3))),
                   Value::Int(static_cast<int64_t>(rng.NextBounded(3)))});
      }
    }

    auto eval = DatalogEvaluator::Create(pi);
    ASSERT_TRUE(eval.ok()) << eval.status().ToString();
    DatalogEvaluator::Stats stats;
    auto model = eval->Materialize(db, &stats);
    ASSERT_TRUE(model.ok());

    FactStore reference = ReferenceMaterialize(pi, db);
    ASSERT_EQ(SortedFacts(model->facts), SortedFacts(reference))
        << "seed " << GetParam() << " round " << round << "\n"
        << pi.ToString();
  }
}

// ---------------------------------------------------------------------------
// Grounding bit-identity: SimpleGrounder (compiled) vs. a reference
// grounding fixpoint driven by the legacy matcher.
// ---------------------------------------------------------------------------

std::multiset<std::string> RuleStrings(const GroundRuleSet& rules,
                                       const Interner* names) {
  std::multiset<std::string> out;
  for (const GroundRule* r : rules.rules()) out.insert(r->ToString(names));
  return out;
}

/// Simple^∞ with the legacy matcher, for an empty choice set: saturate
/// h(B+) ⊆ heads-so-far, ignoring negation (Definition 3.4).
GroundRuleSet ReferenceSimpleGround(const TranslatedProgram& translated,
                                    const FactStore& db) {
  GroundRuleSet out;
  for (uint32_t pred : db.Predicates()) {
    for (const Tuple& row : db.Rows(pred)) {
      GroundRule fact;
      fact.head = GroundAtom{pred, row};
      out.Add(std::move(fact));
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    Matcher matcher(&out.heads());
    std::vector<GroundRule> derived;
    for (const Rule& rule : translated.sigma().rules()) {
      std::vector<const Atom*> pos = rule.PositiveBody();
      auto fire = [&](const Binding& binding) {
        GroundRule gr;
        gr.is_constraint = rule.is_constraint;
        if (!rule.is_constraint) {
          gr.head.predicate = rule.head.predicate;
          for (const HeadArg& arg : rule.head.args) {
            gr.head.args.push_back(ApplyTerm(arg.term(), binding));
          }
        }
        for (const Literal& lit : rule.body) {
          (lit.negated ? gr.negative : gr.positive)
              .push_back(ApplyAtom(lit.atom, binding));
        }
        derived.push_back(std::move(gr));
        return true;
      };
      if (pos.empty()) {
        Binding empty;
        fire(empty);
      } else {
        matcher.Match(pos, fire);
      }
    }
    for (GroundRule& gr : derived) {
      if (out.Add(std::move(gr))) changed = true;
    }
  }
  return out;
}

TEST(JoinPlanGrounding, SimpleGrounderMatchesLegacyReference) {
  struct Case {
    const char* program;
    const char* db;
  };
  const Case cases[] = {
      {"infected(Y, flip<0.1>[X, Y]) :- infected(X, 1), connected(X, Y).\n"
       "uninfected(X) :- router(X), not infected(X, 1).",
       "router(1). router(2). router(3). connected(1,2). connected(2,3). "
       "connected(3,1). infected(1, 1)."},
      {"dimetail(X, flip<0.5>[X]) :- dime(X).\n"
       "somedimetail :- dimetail(X, 1).\n"
       "quartertail(X, flip<0.5>[X]) :- quarter(X), not somedimetail.",
       "dime(1). dime(2). quarter(3)."},
  };
  for (const Case& c : cases) {
    auto engine = GDatalog::Create(c.program, c.db, [] {
      GDatalog::Options o;
      o.grounder = GrounderKind::kSimple;
      return o;
    }());
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    GroundRuleSet compiled;
    MatchStats stats;
    ASSERT_TRUE(
        engine->grounder().Ground(ChoiceSet(), &compiled, &stats).ok());
    GroundRuleSet reference =
        ReferenceSimpleGround(engine->translated(), engine->database());
    const Interner* names = engine->program().interner();
    EXPECT_EQ(RuleStrings(compiled, names), RuleStrings(reference, names));
    EXPECT_GT(stats.bindings, 0u);
  }
}

// ---------------------------------------------------------------------------
// Stats counters
// ---------------------------------------------------------------------------

TEST(JoinPlanStats, MaterializeReportsIndexAndPlanCounters) {
  auto prog = ParseProgram(
      "path(X, Y) :- edge(X, Y).\n"
      "path(X, Z) :- path(X, Y), edge(Y, Z).");
  ASSERT_TRUE(prog.ok());
  auto eval = DatalogEvaluator::Create(std::move(prog).value());
  ASSERT_TRUE(eval.ok());
  std::string db_text;
  for (int i = 1; i < 64; ++i) {
    db_text += "edge(" + std::to_string(i) + "," + std::to_string(i + 1) + ").";
  }
  auto db = ParseFacts(db_text, const_cast<Program&>(eval->program()).interner());
  ASSERT_TRUE(db.ok());
  DatalogEvaluator::Stats stats;
  auto model = eval->Materialize(*db, &stats);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(stats.match.index_hits, 0u);       // path ⋈ edge probes
  EXPECT_GT(stats.match.full_scans, 0u);       // naive-round scans
  EXPECT_GT(stats.match.plan_cache_hits, 0u);  // plans reused across rounds
  EXPECT_GT(stats.match.plans_compiled, 0u);
  EXPECT_GT(stats.match.bindings, 0u);
}

TEST(JoinPlanStats, CompositeIndexUsedForMultiBoundAtoms) {
  // unreachable(X,Y) :- node(X), node(Y), not path(X,Y) makes the legacy
  // TC case; for a composite probe we need an atom with >= 2 bound
  // columns: triangle(X,Y,Z) :- edge(X,Y), edge(Y,Z), edge(X,Z) — the
  // third atom has both X and Z bound.
  auto prog = ParseProgram(
      "triangle(X, Y, Z) :- edge(X, Y), edge(Y, Z), edge(X, Z).");
  ASSERT_TRUE(prog.ok());
  auto eval = DatalogEvaluator::Create(std::move(prog).value());
  ASSERT_TRUE(eval.ok());
  std::string db_text;
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    db_text += "edge(" + std::to_string(rng.NextBounded(40)) + "," +
               std::to_string(rng.NextBounded(40)) + ").";
  }
  auto db = ParseFacts(db_text, const_cast<Program&>(eval->program()).interner());
  ASSERT_TRUE(db.ok());
  DatalogEvaluator::Stats stats;
  auto model = eval->Materialize(*db, &stats);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(stats.match.composite_index_hits, 0u);

  // The composite access path must agree with brute force.
  FactStore reference = ReferenceMaterialize(eval->program(), *db);
  EXPECT_EQ(SortedFacts(model->facts), SortedFacts(reference));
}

// ---------------------------------------------------------------------------
// Composite indices in FactStore
// ---------------------------------------------------------------------------

TEST(CompositeIndex, LookupAndInsertMaintenance) {
  FactStore store;
  store.Insert(0, {Value::Int(1), Value::Int(2), Value::Int(3)});
  store.Insert(0, {Value::Int(1), Value::Int(2), Value::Int(4)});
  store.Insert(0, {Value::Int(2), Value::Int(2), Value::Int(3)});
  std::vector<uint16_t> cols = {0, 1};
  const FactStore::CompositeKeyMap* index = store.GetCompositeIndex(0, cols);
  ASSERT_NE(index, nullptr);
  auto hit = index->find(Tuple{Value::Int(1), Value::Int(2)});
  ASSERT_NE(hit, index->end());
  EXPECT_EQ(hit->second, (std::vector<uint32_t>{0, 1}));

  // Insert() keeps a built composite current, in ascending row order.
  store.Insert(0, {Value::Int(1), Value::Int(2), Value::Int(5)});
  hit = index->find(Tuple{Value::Int(1), Value::Int(2)});
  EXPECT_EQ(hit->second, (std::vector<uint32_t>{0, 1, 3}));

  // Out-of-range column and unknown predicate are nullptr, not UB.
  EXPECT_EQ(store.GetCompositeIndex(0, {0, 7}), nullptr);
  EXPECT_EQ(store.GetCompositeIndex(9, cols), nullptr);
}

TEST(CompositeIndex, CowCloneAdoptsBuiltComposites) {
  FactStore store;
  store.Insert(0, {Value::Int(1), Value::Int(2)});
  std::vector<uint16_t> cols = {0, 1};
  ASSERT_NE(store.GetCompositeIndex(0, cols), nullptr);

  FactStore copy = store;  // COW
  // Writing through the copy must not disturb the original's index.
  copy.Insert(0, {Value::Int(1), Value::Int(2)});  // duplicate: no-op
  copy.Insert(0, {Value::Int(3), Value::Int(4)});
  const FactStore::CompositeKeyMap* copied = copy.GetCompositeIndex(0, cols);
  ASSERT_NE(copied, nullptr);
  EXPECT_EQ(copied->size(), 2u);
  const FactStore::CompositeKeyMap* original = store.GetCompositeIndex(0, cols);
  ASSERT_NE(original, nullptr);
  EXPECT_EQ(original->size(), 1u);
}

TEST(CompositeIndex, CopiesOfFrozenStoresAreUnfrozen) {
  FactStore store;
  store.Insert(0, {Value::Int(1)});
  store.Freeze();
  EXPECT_TRUE(store.frozen());
  FactStore copy = store;
  EXPECT_FALSE(copy.frozen());
  EXPECT_TRUE(copy.Insert(0, {Value::Int(2)}));
  EXPECT_EQ(store.Count(0), 1u);
  EXPECT_EQ(copy.Count(0), 2u);
}

// ---------------------------------------------------------------------------
// Concurrency: many executors against one frozen store (TSan coverage of
// the once-guarded column/composite index builds and plan handles).
// ---------------------------------------------------------------------------

TEST(JoinPlanConcurrency, ParallelExecutionAgainstFrozenStore) {
  Rng rng(42);
  FactStore store;
  for (int i = 0; i < 500; ++i) {
    store.Insert(0, {Value::Int(static_cast<int64_t>(rng.NextBounded(30))),
                     Value::Int(static_cast<int64_t>(rng.NextBounded(30)))});
    store.Insert(1, {Value::Int(static_cast<int64_t>(rng.NextBounded(30))),
                     Value::Int(static_cast<int64_t>(rng.NextBounded(30)))});
  }
  store.Freeze();

  // p0(X,Y), p1(Y,Z), p0(X,Z): the third atom probes a composite index.
  Atom a0, a1, a2;
  a0.predicate = 0;
  a0.args = {Term::Variable(0), Term::Variable(1)};
  a1.predicate = 1;
  a1.args = {Term::Variable(1), Term::Variable(2)};
  a2.predicate = 0;
  a2.args = {Term::Variable(0), Term::Variable(2)};
  std::vector<const Atom*> atoms = {&a0, &a1, &a2};
  CompiledRule body = CompileBody(atoms);

  // One thread compiles its own plan (exercising concurrent first builds
  // of the same indices) and counts bindings.
  constexpr int kThreads = 8;
  std::vector<uint64_t> counts(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      JoinPlan plan = CompileJoinPlan(body, store);
      JoinExecutor exec;
      MatchStats stats;
      exec.Execute(plan, &stats, [&](const BindingFrame&) {
        ++counts[t];
        return true;
      });
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(counts[t], counts[0]);
  EXPECT_GT(counts[0], 0u);
}

// ---------------------------------------------------------------------------
// BindingFrame basics
// ---------------------------------------------------------------------------

TEST(BindingFrame, BindAndBitmap) {
  BindingFrame frame;
  frame.Reset(70);  // spans two bitmap words
  EXPECT_FALSE(frame.IsBound(0));
  EXPECT_FALSE(frame.IsBound(69));
  frame.Bind(0, Value::Int(1));
  frame.Bind(69, Value::Int(2));
  EXPECT_TRUE(frame.IsBound(0));
  EXPECT_TRUE(frame.IsBound(69));
  EXPECT_FALSE(frame.IsBound(33));
  EXPECT_EQ(frame.Get(69), Value::Int(2));
  frame.Reset(70);
  EXPECT_FALSE(frame.IsBound(0));
  EXPECT_FALSE(frame.IsBound(69));
}

TEST(RuleSlots, FirstOccurrenceNumbering) {
  auto safe = ParseProgram("h(X, Z) :- a(Y, X), b(X, Z), not c(Z, X).");
  ASSERT_TRUE(safe.ok());
  const Rule& rule = safe->rules()[0];
  RuleSlots slots = NumberRuleSlots(rule);
  EXPECT_EQ(slots.count(), 3u);  // Y, X, Z in positive-body order
  const Interner* names = safe->interner();
  uint32_t x = names->Lookup("X"), y = names->Lookup("Y"), z = names->Lookup("Z");
  EXPECT_EQ(slots.SlotOf(y), 0u);
  EXPECT_EQ(slots.SlotOf(x), 1u);
  EXPECT_EQ(slots.SlotOf(z), 2u);
}

}  // namespace
}  // namespace gdlog
