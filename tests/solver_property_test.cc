// Adversarial property testing of the stable-model solver: random ground
// normal programs are solved both by the engine and by a brute-force
// oracle (enumerate all 2^n interpretations, keep the Gelfond–Lifschitz
// fixpoints that satisfy all constraints). The two must agree exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "stable/solver.h"
#include "stable/wfs.h"
#include "util/rng.h"

namespace gdlog {
namespace {

/// A random ground normal program over `num_atoms` 0-ary atoms.
struct RandomProgram {
  std::vector<const GroundRule*> rule_ptrs;
  std::vector<GroundRule> rules;
};

RandomProgram MakeRandomProgram(uint64_t seed, size_t num_atoms,
                                size_t num_rules, bool with_constraints) {
  Rng rng(seed);
  RandomProgram out;
  out.rules.reserve(num_rules + 2);
  for (size_t i = 0; i < num_rules; ++i) {
    GroundRule rule;
    bool constraint =
        with_constraints && rng.NextBounded(8) == 0;  // ~12% constraints
    rule.is_constraint = constraint;
    if (!constraint) {
      rule.head = GroundAtom{static_cast<uint32_t>(rng.NextBounded(num_atoms)),
                             {}};
    }
    size_t body_size = rng.NextBounded(3);  // 0..2 literals
    if (constraint && body_size == 0) body_size = 1;
    for (size_t b = 0; b < body_size; ++b) {
      GroundAtom atom{static_cast<uint32_t>(rng.NextBounded(num_atoms)), {}};
      if (rng.NextBounded(2) == 0) {
        rule.negative.push_back(std::move(atom));
      } else {
        rule.positive.push_back(std::move(atom));
      }
    }
    out.rules.push_back(std::move(rule));
  }
  for (const GroundRule& r : out.rules) out.rule_ptrs.push_back(&r);
  return out;
}

/// Brute-force oracle: M ⊆ atoms is a stable model iff M is the least
/// model of the reduct P^M and no constraint fires under M.
std::set<std::vector<uint32_t>> BruteForceStableModels(
    const std::vector<GroundRule>& rules, size_t num_atoms) {
  std::set<std::vector<uint32_t>> models;
  for (uint64_t mask = 0; mask < (1ULL << num_atoms); ++mask) {
    auto in_m = [&](const GroundAtom& a) {
      return (mask >> a.predicate) & 1;
    };
    // Least model of the reduct: drop rules whose negative body intersects
    // M; iterate positive closure.
    std::vector<bool> least(num_atoms, false);
    bool changed = true;
    while (changed) {
      changed = false;
      for (const GroundRule& rule : rules) {
        if (rule.is_constraint) continue;
        bool blocked = false;
        for (const GroundAtom& a : rule.negative) {
          if (in_m(a)) blocked = true;
        }
        if (blocked) continue;
        bool body_true = true;
        for (const GroundAtom& a : rule.positive) {
          if (!least[a.predicate]) body_true = false;
        }
        if (body_true && !least[rule.head.predicate]) {
          least[rule.head.predicate] = true;
          changed = true;
        }
      }
    }
    // Fixpoint check: least == M.
    bool stable = true;
    for (size_t a = 0; a < num_atoms; ++a) {
      if (least[a] != (((mask >> a) & 1) != 0)) stable = false;
    }
    if (!stable) continue;
    // Constraints.
    bool violated = false;
    for (const GroundRule& rule : rules) {
      if (!rule.is_constraint) continue;
      bool fires = true;
      for (const GroundAtom& a : rule.positive) {
        if (!in_m(a)) fires = false;
      }
      for (const GroundAtom& a : rule.negative) {
        if (in_m(a)) fires = false;
      }
      if (fires) violated = true;
    }
    if (violated) continue;
    std::vector<uint32_t> model;
    for (size_t a = 0; a < num_atoms; ++a) {
      if ((mask >> a) & 1) model.push_back(static_cast<uint32_t>(a));
    }
    models.insert(std::move(model));
  }
  return models;
}

class RandomProgramTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramTest, SolverMatchesBruteForceOracle) {
  constexpr size_t kAtoms = 8;
  constexpr size_t kRules = 14;
  RandomProgram rp =
      MakeRandomProgram(GetParam(), kAtoms, kRules, /*with_constraints=*/true);

  NormalProgram prog = NormalProgram::FromRules(rp.rule_ptrs);
  StableModelEnumerator solver(prog);
  std::set<std::vector<uint32_t>> got;
  Status st = solver.Enumerate([&](const std::vector<uint32_t>& atoms) {
    // Translate dense solver ids back to the 0-ary predicate ids.
    std::vector<uint32_t> model;
    for (uint32_t a : atoms) model.push_back(prog.atoms().Get(a).predicate);
    std::sort(model.begin(), model.end());
    got.insert(std::move(model));
    return true;
  });
  ASSERT_TRUE(st.ok()) << st.ToString();

  std::set<std::vector<uint32_t>> expected =
      BruteForceStableModels(rp.rules, kAtoms);

  // The solver only knows atoms that appear in the program; the oracle
  // enumerates all kAtoms. Atoms never mentioned can never be true, so
  // both sides agree on mentioned atoms — compare directly.
  EXPECT_EQ(got, expected) << "seed " << GetParam();
}

TEST_P(RandomProgramTest, WfsBracketsAllStableModels) {
  constexpr size_t kAtoms = 7;
  constexpr size_t kRules = 12;
  RandomProgram rp = MakeRandomProgram(GetParam() + 1000, kAtoms, kRules,
                                       /*with_constraints=*/false);
  NormalProgram prog = NormalProgram::FromRules(rp.rule_ptrs);
  WellFoundedModel wfm = ComputeWellFounded(prog);
  std::set<std::vector<uint32_t>> expected =
      BruteForceStableModels(rp.rules, kAtoms);

  for (const std::vector<uint32_t>& model : expected) {
    for (uint32_t a = 0; a < prog.atom_count(); ++a) {
      uint32_t pred = prog.atoms().Get(a).predicate;
      bool in_model =
          std::binary_search(model.begin(), model.end(), pred);
      if (wfm.truth[a] == Truth::kTrue) {
        EXPECT_TRUE(in_model) << "WFS-true atom missing from a stable model";
      }
      if (wfm.truth[a] == Truth::kFalse) {
        EXPECT_FALSE(in_model) << "WFS-false atom present in a stable model";
      }
    }
  }
}

TEST_P(RandomProgramTest, TotalWfsImpliesUniqueStableModel) {
  constexpr size_t kAtoms = 7;
  constexpr size_t kRules = 12;
  RandomProgram rp = MakeRandomProgram(GetParam() + 2000, kAtoms, kRules,
                                       /*with_constraints=*/false);
  NormalProgram prog = NormalProgram::FromRules(rp.rule_ptrs);
  WellFoundedModel wfm = ComputeWellFounded(prog);
  if (!wfm.IsTotal()) return;  // property only applies to total WFS
  std::set<std::vector<uint32_t>> expected =
      BruteForceStableModels(rp.rules, kAtoms);
  ASSERT_EQ(expected.size(), 1u);
  // And the unique stable model is the WFS-true set.
  std::vector<uint32_t> wfs_true;
  for (uint32_t a = 0; a < prog.atom_count(); ++a) {
    if (wfm.truth[a] == Truth::kTrue) {
      wfs_true.push_back(prog.atoms().Get(a).predicate);
    }
  }
  std::sort(wfs_true.begin(), wfs_true.end());
  EXPECT_EQ(*expected.begin(), wfs_true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range<uint64_t>(1, 61));

}  // namespace
}  // namespace gdlog
