// FactStore, homomorphism Matcher, and DependencyGraph tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ast/parser.h"
#include "ground/dependency_graph.h"
#include "ground/fact_store.h"
#include "ground/matcher.h"

namespace gdlog {
namespace {

// ---------------------------------------------------------------------------
// FactStore
// ---------------------------------------------------------------------------

TEST(FactStore, InsertAndContains) {
  FactStore store;
  EXPECT_TRUE(store.Insert(1, {Value::Int(1), Value::Int(2)}));
  EXPECT_FALSE(store.Insert(1, {Value::Int(1), Value::Int(2)}));  // dup
  EXPECT_TRUE(store.Contains(1, {Value::Int(1), Value::Int(2)}));
  EXPECT_FALSE(store.Contains(1, {Value::Int(2), Value::Int(1)}));
  EXPECT_FALSE(store.Contains(2, {Value::Int(1), Value::Int(2)}));
  EXPECT_EQ(store.size(), 1u);
}

TEST(FactStore, RowsPreserveInsertionOrder) {
  FactStore store;
  store.Insert(5, {Value::Int(3)});
  store.Insert(5, {Value::Int(1)});
  store.Insert(5, {Value::Int(2)});
  const auto& rows = store.Rows(5);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0], Value::Int(3));
  EXPECT_EQ(rows[2][0], Value::Int(2));
  EXPECT_TRUE(store.Rows(99).empty());
}

TEST(FactStore, RowsForUnknownPredicateIsAllocationFreeStatic) {
  // Unknown predicates must all map to the one shared function-local
  // static empty vector — no per-call allocation, and a stable address the
  // caller may hold across calls.
  FactStore store;
  store.Insert(1, {Value::Int(1)});
  const std::vector<Tuple>& a = store.Rows(404);
  const std::vector<Tuple>& b = store.Rows(405);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(&a, &b);
  FactStore other;
  EXPECT_EQ(&other.Rows(404), &a);  // shared across stores too
}

TEST(FactStore, IndexLookupFindsMatchingRows) {
  FactStore store;
  for (int i = 0; i < 10; ++i) {
    store.Insert(1, {Value::Int(i % 3), Value::Int(i)});
  }
  const std::vector<uint32_t>* rows = store.IndexLookup(1, 0, Value::Int(1));
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(rows->size(), 3u);  // i = 1, 4, 7
  for (uint32_t r : *rows) {
    EXPECT_EQ(store.Rows(1)[r][0], Value::Int(1));
  }
  EXPECT_EQ(store.IndexLookup(1, 0, Value::Int(9)), nullptr);
  EXPECT_EQ(store.IndexLookup(1, 5, Value::Int(0)), nullptr);  // bad column
}

TEST(FactStore, IndexStaysCurrentAfterInserts) {
  FactStore store;
  store.Insert(1, {Value::Int(0)});
  // Build the index...
  ASSERT_NE(store.IndexLookup(1, 0, Value::Int(0)), nullptr);
  // ...then insert more rows and expect them to be indexed.
  store.Insert(1, {Value::Int(0), });
  store.Insert(1, {Value::Int(7)});
  const auto* zeros = store.IndexLookup(1, 0, Value::Int(0));
  ASSERT_NE(zeros, nullptr);
  EXPECT_EQ(zeros->size(), 1u);  // duplicate row was rejected
  ASSERT_NE(store.IndexLookup(1, 0, Value::Int(7)), nullptr);
}

TEST(FactStore, ParseFactsFromText) {
  Interner interner;
  auto store = ParseFacts("router(1). router(2).\nconnected(1, 2).", &interner);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  uint32_t router = interner.Lookup("router");
  uint32_t connected = interner.Lookup("connected");
  EXPECT_EQ(store->Count(router), 2u);
  EXPECT_EQ(store->Count(connected), 1u);
}

TEST(FactStore, ParseFactsRejectsRules) {
  Interner interner;
  auto store = ParseFacts("p(X) :- q(X).", &interner);
  EXPECT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kInvalidArgument);
}

TEST(GroundAtomT, OrderingIsTotalAndConsistent) {
  GroundAtom a{1, {Value::Int(1)}};
  GroundAtom b{1, {Value::Int(2)}};
  GroundAtom c{2, {Value::Int(0)}};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(a, c);
  EXPECT_FALSE(a < a);
  EXPECT_EQ(a.Hash(), (GroundAtom{1, {Value::Int(1)}}.Hash()));
}

// ---------------------------------------------------------------------------
// Matcher
// ---------------------------------------------------------------------------

class MatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    edge_ = 1;
    node_ = 2;
    // A small directed graph: 1→2, 2→3, 3→1, 1→3.
    store_.Insert(edge_, {Value::Int(1), Value::Int(2)});
    store_.Insert(edge_, {Value::Int(2), Value::Int(3)});
    store_.Insert(edge_, {Value::Int(3), Value::Int(1)});
    store_.Insert(edge_, {Value::Int(1), Value::Int(3)});
    for (int i = 1; i <= 3; ++i) store_.Insert(node_, {Value::Int(i)});
  }

  Atom MakeAtom(uint32_t pred, std::vector<Term> args) {
    return Atom{pred, std::move(args)};
  }

  size_t CountMatches(const std::vector<const Atom*>& atoms) {
    Matcher matcher(&store_);
    size_t n = 0;
    matcher.Match(atoms, [&](const Binding&) {
      ++n;
      return true;
    });
    return n;
  }

  FactStore store_;
  uint32_t edge_, node_;
};

TEST_F(MatcherTest, SingleAtomAllBindings) {
  Atom a = MakeAtom(edge_, {Term::Variable(10), Term::Variable(11)});
  EXPECT_EQ(CountMatches({&a}), 4u);
}

TEST_F(MatcherTest, ConstantsFilter) {
  Atom a = MakeAtom(edge_, {Term::Constant(Value::Int(1)), Term::Variable(11)});
  EXPECT_EQ(CountMatches({&a}), 2u);  // 1→2, 1→3
}

TEST_F(MatcherTest, RepeatedVariableRequiresEquality) {
  Atom a = MakeAtom(edge_, {Term::Variable(10), Term::Variable(10)});
  EXPECT_EQ(CountMatches({&a}), 0u);  // no self loops
  store_.Insert(edge_, {Value::Int(2), Value::Int(2)});
  EXPECT_EQ(CountMatches({&a}), 1u);
}

TEST_F(MatcherTest, JoinTwoAtoms) {
  // Paths of length two: X→Y→Z.
  Atom a = MakeAtom(edge_, {Term::Variable(10), Term::Variable(11)});
  Atom b = MakeAtom(edge_, {Term::Variable(11), Term::Variable(12)});
  // 1→2→3, 2→3→1, 3→1→2, 3→1→3, 1→3→1.
  EXPECT_EQ(CountMatches({&a, &b}), 5u);
}

TEST_F(MatcherTest, TriangleJoin) {
  Atom a = MakeAtom(edge_, {Term::Variable(10), Term::Variable(11)});
  Atom b = MakeAtom(edge_, {Term::Variable(11), Term::Variable(12)});
  Atom c = MakeAtom(edge_, {Term::Variable(12), Term::Variable(10)});
  // Triangles: (1,2,3), (2,3,1), (3,1,2) and the 2-cycle-with-chord
  // (1,3,1)? 1→3,3→1,1→1: no. (3,1,3): 3→1,1→3,3→3: no.
  EXPECT_EQ(CountMatches({&a, &b, &c}), 3u);
}

TEST_F(MatcherTest, CrossProductWhenDisconnected) {
  Atom a = MakeAtom(node_, {Term::Variable(10)});
  Atom b = MakeAtom(node_, {Term::Variable(11)});
  EXPECT_EQ(CountMatches({&a, &b}), 9u);
}

TEST_F(MatcherTest, EmptyRelationYieldsNoMatches) {
  Atom a = MakeAtom(99, {Term::Variable(10)});
  Atom b = MakeAtom(node_, {Term::Variable(11)});
  EXPECT_EQ(CountMatches({&a, &b}), 0u);
}

TEST_F(MatcherTest, CallbackCanAbort) {
  Matcher matcher(&store_);
  Atom a = MakeAtom(edge_, {Term::Variable(10), Term::Variable(11)});
  size_t n = 0;
  bool completed = matcher.Match({&a}, [&](const Binding&) {
    ++n;
    return n < 2;
  });
  EXPECT_FALSE(completed);
  EXPECT_EQ(n, 2u);
}

TEST_F(MatcherTest, MatchWithPivotRestrictsOneAtom) {
  Atom a = MakeAtom(edge_, {Term::Variable(10), Term::Variable(11)});
  Atom b = MakeAtom(edge_, {Term::Variable(11), Term::Variable(12)});
  Matcher matcher(&store_);
  // Pivot atom a on only the delta row (1, 2): paths starting with 1→2.
  std::vector<Tuple> delta = {{Value::Int(1), Value::Int(2)}};
  size_t n = 0;
  matcher.MatchWithPivot({&a, &b}, 0, delta, [&](const Binding& binding) {
    EXPECT_EQ(binding.at(10), Value::Int(1));
    EXPECT_EQ(binding.at(11), Value::Int(2));
    ++n;
    return true;
  });
  EXPECT_EQ(n, 1u);  // 1→2→3
}

TEST_F(MatcherTest, ApplyAtomSubstitutes) {
  Binding binding;
  binding[10] = Value::Int(7);
  Atom a = MakeAtom(edge_, {Term::Variable(10), Term::Constant(Value::Int(2))});
  GroundAtom ga = ApplyAtom(a, binding);
  EXPECT_EQ(ga.predicate, edge_);
  EXPECT_EQ(ga.args[0], Value::Int(7));
  EXPECT_EQ(ga.args[1], Value::Int(2));
}

// ---------------------------------------------------------------------------
// DependencyGraph
// ---------------------------------------------------------------------------

TEST(DependencyGraphT, StratifiedChain) {
  auto prog = ParseProgram(
      "b(X) :- a(X).\n"
      "c(X) :- b(X), not a(X).");
  ASSERT_TRUE(prog.ok());
  DependencyGraph dg(*prog);
  EXPECT_TRUE(dg.IsStratified());
  uint32_t a = prog->interner()->Lookup("a");
  uint32_t c = prog->interner()->Lookup("c");
  EXPECT_LT(dg.ComponentOf(a), dg.ComponentOf(c));
  EXPECT_TRUE(dg.DependsOn(c, a));
  EXPECT_FALSE(dg.DependsOn(a, c));
}

TEST(DependencyGraphT, NegativeCycleNotStratified) {
  auto prog = ParseProgram(
      "a :- not b.\n"
      "b :- not a.");
  ASSERT_TRUE(prog.ok());
  DependencyGraph dg(*prog);
  EXPECT_FALSE(dg.IsStratified());
}

TEST(DependencyGraphT, PositiveCycleIsStratified) {
  auto prog = ParseProgram(
      "path(X, Y) :- edge(X, Y).\n"
      "path(X, Z) :- path(X, Y), edge(Y, Z).");
  ASSERT_TRUE(prog.ok());
  DependencyGraph dg(*prog);
  EXPECT_TRUE(dg.IsStratified());
  uint32_t path = prog->interner()->Lookup("path");
  EXPECT_TRUE(dg.DependsOn(path, path));  // self-dependency via the cycle
}

TEST(DependencyGraphT, NegationIntoCycleStillStratifiedWhenAcyclicNegEdge) {
  auto prog = ParseProgram(
      "reach(X) :- start(X).\n"
      "reach(Y) :- reach(X), edge(X, Y).\n"
      "unreached(X) :- node(X), not reach(X).");
  ASSERT_TRUE(prog.ok());
  DependencyGraph dg(*prog);
  EXPECT_TRUE(dg.IsStratified());
  uint32_t reach = prog->interner()->Lookup("reach");
  uint32_t unreached = prog->interner()->Lookup("unreached");
  EXPECT_LT(dg.ComponentOf(reach), dg.ComponentOf(unreached));
}

TEST(DependencyGraphT, NegativeCycleThroughTwoPredicates) {
  auto prog = ParseProgram(
      "p(X) :- q(X), not r(X).\n"
      "r(X) :- p(X).");
  ASSERT_TRUE(prog.ok());
  DependencyGraph dg(*prog);
  EXPECT_FALSE(dg.IsStratified());
  // p and r share a strongly connected component.
  uint32_t p = prog->interner()->Lookup("p");
  uint32_t r = prog->interner()->Lookup("r");
  EXPECT_EQ(dg.ComponentOf(p), dg.ComponentOf(r));
}

TEST(DependencyGraphT, ConstraintsDoNotBreakStratification) {
  auto prog = ParseProgram(
      "b(X) :- a(X), not c(X).\n"
      ":- b(X), not a(X).");
  ASSERT_TRUE(prog.ok());
  DependencyGraph dg(*prog);
  EXPECT_TRUE(dg.IsStratified());
}

TEST(DependencyGraphT, TopologicalOrderRespectsAllEdges) {
  auto prog = ParseProgram(
      "d(X) :- c(X).\n"
      "c(X) :- b(X).\n"
      "b(X) :- a(X).");
  ASSERT_TRUE(prog.ok());
  DependencyGraph dg(*prog);
  for (const DependencyGraph::Edge& e : dg.edges()) {
    EXPECT_LE(dg.ComponentOf(e.from), dg.ComponentOf(e.to));
  }
}

TEST(DependencyGraphT, FigureOneDimeQuarter) {
  // Appendix E, Figure 1: Dime, Quarter, DimeTail, SomeDimeTail,
  // QuarterTail with the dashed (negative) arc SomeDimeTail → QuarterTail.
  auto prog = ParseProgram(
      "dimetail(X, flip<0.5>[X]) :- dime(X).\n"
      "somedimetail :- dimetail(X, 1).\n"
      "quartertail(X, flip<0.5>[X]) :- quarter(X), not somedimetail.");
  ASSERT_TRUE(prog.ok());
  DependencyGraph dg(*prog);
  EXPECT_TRUE(dg.IsStratified());
  auto name = [&](const char* n) { return prog->interner()->Lookup(n); };
  // The topological order puts dime before dimetail before somedimetail
  // before quartertail, as in the worked example.
  EXPECT_LT(dg.ComponentOf(name("dime")), dg.ComponentOf(name("dimetail")));
  EXPECT_LT(dg.ComponentOf(name("dimetail")),
            dg.ComponentOf(name("somedimetail")));
  EXPECT_LT(dg.ComponentOf(name("somedimetail")),
            dg.ComponentOf(name("quartertail")));
  // Exactly one negative edge: somedimetail → quartertail.
  int negative_edges = 0;
  for (const DependencyGraph::Edge& e : dg.edges()) {
    if (e.negative) {
      ++negative_edges;
      EXPECT_EQ(e.from, name("somedimetail"));
      EXPECT_EQ(e.to, name("quartertail"));
    }
  }
  EXPECT_EQ(negative_edges, 1);
  // The DOT rendering mentions the dashed arc.
  std::string dot = dg.ToDot(prog->interner());
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

}  // namespace
}  // namespace gdlog
