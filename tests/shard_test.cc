// Sharded exact inference: decomposing the chase tree by choice-set prefix
// (PlanShards), exploring each shard independently (ExploreShard) and
// recombining (MergePartialSpaces) must reproduce the single-process
// outcome space bit-identically — same outcomes in the same canonical
// order, same probabilities, masses and models — for every combination of
// shard count and per-shard thread count, with and without trigger
// shuffling, under explicit prefix depths and non-binding budgets, and
// through the lossless JSON partial serialization that carries shards
// across process (or machine) boundaries.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "gdatalog/engine.h"
#include "gdatalog/export.h"
#include "gdatalog/shard.h"

namespace gdlog {
namespace {

constexpr const char* kNetworkProgram = R"(
  infected(Y, flip<0.1>[X, Y]) :- infected(X, 1), connected(X, Y).
  uninfected(X) :- router(X), not infected(X, 1).
  :- uninfected(X), uninfected(Y), connected(X, Y).
)";

std::string Clique(int n) {
  std::string db;
  for (int i = 1; i <= n; ++i) db += "router(" + std::to_string(i) + ").\n";
  for (int i = 1; i <= n; ++i) {
    for (int j = 1; j <= n; ++j) {
      if (i != j) {
        db += "connected(" + std::to_string(i) + ", " + std::to_string(j) +
              ").\n";
      }
    }
  }
  db += "infected(1, 1).\n";
  return db;
}

constexpr const char* kDimeQuarterProgram = R"(
  dimetail(X, flip<0.5>[X]) :- dime(X).
  somedimetail :- dimetail(X, 1).
  quartertail(X, flip<0.5>[X]) :- quarter(X), not somedimetail.
)";
constexpr const char* kDimeQuarterDb = "dime(1). dime(2). quarter(3).";

void ExpectIdenticalSpaces(const OutcomeSpace& a, const OutcomeSpace& b,
                           const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_TRUE(a.outcomes[i].choices == b.outcomes[i].choices)
        << "outcome " << i;
    EXPECT_EQ(a.outcomes[i].prob, b.outcomes[i].prob) << "outcome " << i;
    EXPECT_EQ(a.outcomes[i].models, b.outcomes[i].models) << "outcome " << i;
  }
  EXPECT_EQ(a.finite_mass, b.finite_mass);
  EXPECT_EQ(a.residual_mass(), b.residual_mass());
  EXPECT_EQ(a.support_truncation_mass, b.support_truncation_mass);
  EXPECT_EQ(a.depth_truncated_paths, b.depth_truncated_paths);
  EXPECT_EQ(a.pruned_paths, b.pruned_paths);
  EXPECT_EQ(a.complete, b.complete);
}

struct ShardCase {
  const char* label;
  const char* program;
  std::string db;
  uint64_t trigger_shuffle_seed;
  GrounderKind grounder;
};

class ShardDeterminismTest : public ::testing::TestWithParam<ShardCase> {};

// The paper's network and dime/quarter examples: {1,2,4} shards x {1,2}
// threads must all be bit-identical to the serial single-process space —
// including with a (non-binding) max_outcomes budget set and with trigger
// shuffling on.
TEST_P(ShardDeterminismTest, MergedSpaceMatchesSingleProcess) {
  const ShardCase& c = GetParam();
  GDatalog::Options options;
  options.grounder = c.grounder;
  auto engine = GDatalog::Create(c.program, c.db, std::move(options));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  ChaseOptions serial;
  serial.num_threads = 1;
  serial.trigger_shuffle_seed = c.trigger_shuffle_seed;
  serial.max_outcomes = 1u << 20;  // set, but never binding here
  auto base = engine->Infer(serial);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  EXPECT_TRUE(base->complete);

  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    for (size_t threads : {size_t{1}, size_t{2}}) {
      ChaseOptions opts = serial;
      opts.num_threads = threads;
      auto merged = ShardedExplore(engine->chase(), opts, shards);
      ASSERT_TRUE(merged.ok()) << merged.status().ToString();
      ExpectIdenticalSpaces(
          *base, *merged,
          std::string(c.label) + " shards=" + std::to_string(shards) +
              " threads=" + std::to_string(threads));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperExamples, ShardDeterminismTest,
    ::testing::Values(
        ShardCase{"network-auto", kNetworkProgram, Clique(3), 0,
                  GrounderKind::kAuto},
        ShardCase{"network-simple-incremental", kNetworkProgram, Clique(3),
                  0, GrounderKind::kSimple},
        ShardCase{"network-shuffled", kNetworkProgram, Clique(3), 31337,
                  GrounderKind::kAuto},
        ShardCase{"network-n4-shuffled", kNetworkProgram, Clique(4), 99,
                  GrounderKind::kSimple},
        ShardCase{"dime-quarter", kDimeQuarterProgram, kDimeQuarterDb, 0,
                  GrounderKind::kAuto},
        ShardCase{"dime-quarter-shuffled", kDimeQuarterProgram,
                  kDimeQuarterDb, 17, GrounderKind::kSimple}));

TEST(ShardPlanTest, PlanIsDeterministic) {
  auto engine = GDatalog::Create(kNetworkProgram, Clique(3));
  ASSERT_TRUE(engine.ok());
  ChaseOptions options;
  options.num_threads = 1;
  auto a = engine->chase().PlanShards(options, 4);
  auto b = engine->chase().PlanShards(options, 4);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->prefix_depth, b->prefix_depth);
  ASSERT_EQ(a->tasks.size(), b->tasks.size());
  for (size_t i = 0; i < a->tasks.size(); ++i) {
    EXPECT_TRUE(a->tasks[i].choices == b->tasks[i].choices) << "task " << i;
    EXPECT_EQ(a->tasks[i].path_prob, b->tasks[i].path_prob) << "task " << i;
  }
}

TEST(ShardPlanTest, ExplicitPrefixDepthsAllMatch) {
  auto engine = GDatalog::Create(kDimeQuarterProgram, kDimeQuarterDb);
  ASSERT_TRUE(engine.ok());
  ChaseOptions options;
  options.num_threads = 1;
  auto base = engine->Infer(options);
  ASSERT_TRUE(base.ok());
  for (size_t depth : {size_t{1}, size_t{2}, size_t{3}}) {
    auto merged = ShardedExplore(engine->chase(), options, 2, depth);
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    ExpectIdenticalSpaces(*base, *merged,
                          "prefix depth " + std::to_string(depth));
  }
}

TEST(ShardPlanTest, MoreShardsThanTasksLeavesSomeShardsEmpty) {
  auto engine = GDatalog::Create(kDimeQuarterProgram, kDimeQuarterDb);
  ASSERT_TRUE(engine.ok());
  ChaseOptions options;
  options.num_threads = 1;
  auto base = engine->Infer(options);
  ASSERT_TRUE(base.ok());
  auto merged = ShardedExplore(engine->chase(), options, 64);
  ASSERT_TRUE(merged.ok());
  ExpectIdenticalSpaces(*base, *merged, "64 shards");
}

TEST(ShardPlanTest, ShardIndexOutOfRangeIsRejected) {
  auto engine = GDatalog::Create(kDimeQuarterProgram, kDimeQuarterDb);
  ASSERT_TRUE(engine.ok());
  ChaseOptions options;
  auto plan = engine->chase().PlanShards(options, 2);
  ASSERT_TRUE(plan.ok());
  auto partial = engine->chase().ExploreShard(*plan, 2, options);
  EXPECT_FALSE(partial.ok());
}

// Countably infinite supports: the truncation tail mass must be counted
// exactly once globally and summed in canonical order, whichever shard (or
// the planner itself) truncated the node.
TEST(ShardTruncationTest, SupportTruncationMassIsShardInvariant) {
  auto engine = GDatalog::Create(
      "n(X, geometric<0.5>[X]) :- item(X).", "item(1). item(2). item(3).");
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ChaseOptions options;
  options.num_threads = 1;
  options.support_limit = 6;
  auto base = engine->Infer(options);
  ASSERT_TRUE(base.ok());
  EXPECT_FALSE(base->complete);
  EXPECT_LT(base->finite_mass.value(), 1.0);
  for (size_t shards : {size_t{2}, size_t{4}}) {
    for (size_t depth : {size_t{0}, size_t{1}, size_t{2}}) {
      auto merged = ShardedExplore(engine->chase(), options, shards, depth);
      ASSERT_TRUE(merged.ok());
      ExpectIdenticalSpaces(*base, *merged,
                            "truncation shards=" + std::to_string(shards) +
                                " depth=" + std::to_string(depth));
    }
  }
}

// A binding max_outcomes budget: which outcomes a single process keeps is
// schedule-dependent, but the merged count must respect the global budget
// and the space must be flagged incomplete.
TEST(ShardBudgetTest, MaxOutcomesBudgetIsRespectedAcrossShards) {
  auto engine = GDatalog::Create(kNetworkProgram, Clique(3));
  ASSERT_TRUE(engine.ok());
  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    ChaseOptions options;
    options.num_threads = 1;
    options.max_outcomes = 3;
    auto merged = ShardedExplore(engine->chase(), options, shards);
    ASSERT_TRUE(merged.ok());
    EXPECT_EQ(merged->outcomes.size(), 3u) << "shards=" << shards;
    EXPECT_FALSE(merged->complete) << "shards=" << shards;
  }
}

// ---------------------------------------------------------------------------
// Serialization: partials must cross a process boundary losslessly.
// ---------------------------------------------------------------------------

TEST(ShardSerializationTest, JsonRoundTripMergesBitIdentically) {
  auto engine = GDatalog::Create(kNetworkProgram, Clique(3));
  ASSERT_TRUE(engine.ok());
  ChaseOptions options;
  options.num_threads = 1;
  auto base = engine->Infer(options);
  ASSERT_TRUE(base.ok());

  auto plan = engine->chase().PlanShards(options, 3);
  ASSERT_TRUE(plan.ok());
  const Interner* interner = engine->program().interner();
  std::vector<PartialSpace> partials;
  for (size_t shard = 0; shard < plan->num_shards; ++shard) {
    auto partial = engine->chase().ExploreShard(*plan, shard, options);
    ASSERT_TRUE(partial.ok());
    ShardPartialMeta meta = MakeShardPartialMeta(*plan, shard, options);
    std::string json = PartialSpaceToJson(*partial, meta, interner);
    ShardPartialMeta parsed_meta;
    auto parsed = PartialSpaceFromJson(json, *interner, &parsed_meta);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed_meta.num_shards, meta.num_shards);
    EXPECT_EQ(parsed_meta.shard_index, meta.shard_index);
    EXPECT_EQ(parsed_meta.prefix_depth, meta.prefix_depth);
    EXPECT_TRUE(parsed_meta.SamePlanAndBudgets(meta));
    // The round trip itself must be lossless: re-serializing the parsed
    // partial reproduces the document byte for byte.
    EXPECT_EQ(json, PartialSpaceToJson(*parsed, parsed_meta, interner));
    partials.push_back(std::move(*parsed));
  }
  OutcomeSpace merged =
      MergePartialSpaces(std::move(partials), options.max_outcomes);
  ExpectIdenticalSpaces(*base, merged, "json round trip");

  // And the reporting export — the CLI's --json surface — is byte-identical
  // too (the acceptance criterion for the sharded driver).
  JsonExportOptions export_options;
  export_options.include_models = true;
  EXPECT_EQ(OutcomeSpaceToJson(*base, engine->translated(), interner,
                               export_options),
            OutcomeSpaceToJson(merged, engine->translated(), interner,
                               export_options));
}

// The serialized partial is canonical: per-shard thread counts must not
// change a single byte (this is what makes cross-machine artifacts
// diffable and cacheable).
TEST(ShardSerializationTest, SerializedPartialIsThreadCountInvariant) {
  auto engine = GDatalog::Create(kNetworkProgram, Clique(3));
  ASSERT_TRUE(engine.ok());
  ChaseOptions serial;
  serial.num_threads = 1;
  auto plan = engine->chase().PlanShards(serial, 2);
  ASSERT_TRUE(plan.ok());
  const Interner* interner = engine->program().interner();
  for (size_t shard = 0; shard < 2; ++shard) {
    ShardPartialMeta meta = MakeShardPartialMeta(*plan, shard, serial);
    auto one = engine->chase().ExploreShard(*plan, shard, serial);
    ASSERT_TRUE(one.ok());
    ChaseOptions threaded = serial;
    threaded.num_threads = 4;
    auto four = engine->chase().ExploreShard(*plan, shard, threaded);
    ASSERT_TRUE(four.ok());
    EXPECT_EQ(PartialSpaceToJson(*one, meta, interner),
              PartialSpaceToJson(*four, meta, interner))
        << "shard " << shard;
  }
}

// ---------------------------------------------------------------------------
// MergePartialSpaces / StreamingMerger edge cases and equivalence
// ---------------------------------------------------------------------------

TEST(ShardMergeTest, MergingNoPartialsYieldsTheEmptyCompleteSpace) {
  OutcomeSpace merged = MergePartialSpaces({}, /*max_outcomes=*/0);
  EXPECT_TRUE(merged.outcomes.empty());
  EXPECT_TRUE(merged.complete);
  EXPECT_EQ(merged.depth_truncated_paths, 0u);
  EXPECT_EQ(merged.pruned_paths, 0u);
  EXPECT_TRUE(merged.finite_mass == Prob::Zero());
}

TEST(ShardMergeTest, ZeroOutcomeShardsFoldAsNoOps) {
  // 64 shards over dime/quarter: most shard tasks are empty, so many
  // partials carry zero outcomes. Folding them — in any position — must
  // neither perturb the merge nor count toward the budget.
  auto engine = GDatalog::Create(kDimeQuarterProgram, kDimeQuarterDb);
  ASSERT_TRUE(engine.ok());
  ChaseOptions options;
  options.num_threads = 1;
  auto base = engine->Infer(options);
  ASSERT_TRUE(base.ok());
  auto plan = engine->chase().PlanShards(options, 64);
  ASSERT_TRUE(plan.ok());

  size_t empty_shards = 0;
  StreamingMerger merger;
  for (size_t index = 0; index < plan->num_shards; ++index) {
    auto partial = engine->chase().ExploreShard(*plan, index, options);
    ASSERT_TRUE(partial.ok()) << index;
    empty_shards += partial->outcomes.empty();
    merger.Add(std::move(*partial));
  }
  ASSERT_GT(empty_shards, 0u) << "case no longer exercises empty shards";
  EXPECT_EQ(merger.partials_folded(), plan->num_shards);
  OutcomeSpace merged = merger.Finish(options.max_outcomes);
  ExpectIdenticalSpaces(*base, merged, "64 shards, mostly empty");
}

// The tentpole equivalence: folding partials one at a time, in ANY arrival
// order, must be byte-identical to the buffered all-at-once merge — this
// is what lets the coordinator hold O(1) partials while stolen and
// re-dispatched shards arrive interleaved and out of plan order.
TEST(ShardMergeTest, StreamedMergeMatchesBufferedMergeUnderRandomOrder) {
  struct Case {
    const char* program;
    std::string db;
  };
  for (const Case& c : {Case{kNetworkProgram, Clique(3)},
                        Case{kDimeQuarterProgram, kDimeQuarterDb}}) {
    auto engine = GDatalog::Create(c.program, c.db);
    ASSERT_TRUE(engine.ok());
    ChaseOptions options;
    options.num_threads = 1;
    auto plan = engine->chase().PlanShards(options, 6);
    ASSERT_TRUE(plan.ok());
    std::vector<PartialSpace> partials;
    for (size_t index = 0; index < plan->num_shards; ++index) {
      auto partial = engine->chase().ExploreShard(*plan, index, options);
      ASSERT_TRUE(partial.ok());
      partials.push_back(std::move(*partial));
    }
    std::vector<PartialSpace> buffered_input = partials;
    OutcomeSpace buffered =
        MergePartialSpaces(std::move(buffered_input), options.max_outcomes);

    const std::string reference = OutcomeSpaceToJson(
        buffered, engine->translated(), engine->program().interner(), {});
    std::mt19937 rng(0xf1ee7);
    StreamingMerger merger;  // reused across rounds: Finish() resets it
    for (int round = 0; round < 8; ++round) {
      std::vector<PartialSpace> shuffled = partials;
      std::shuffle(shuffled.begin(), shuffled.end(), rng);
      for (PartialSpace& partial : shuffled) {
        merger.Add(std::move(partial));
      }
      OutcomeSpace streamed = merger.Finish(options.max_outcomes);
      ExpectIdenticalSpaces(buffered, streamed,
                            "round " + std::to_string(round));
      EXPECT_EQ(reference,
                OutcomeSpaceToJson(streamed, engine->translated(),
                                   engine->program().interner(), {}))
          << "round " << round;
    }
  }
}

TEST(ShardSerializationTest, RejectsForeignAndMalformedPartials) {
  auto engine = GDatalog::Create(kDimeQuarterProgram, kDimeQuarterDb);
  ASSERT_TRUE(engine.ok());
  const Interner& interner = *engine->program().interner();
  ShardPartialMeta meta;
  EXPECT_FALSE(PartialSpaceFromJson("not json", interner, &meta).ok());
  EXPECT_FALSE(PartialSpaceFromJson("{}", interner, &meta).ok());
  EXPECT_FALSE(PartialSpaceFromJson(
                   R"({"format":"gdlog.partial.v1","num_shards":2,)"
                   R"("shard_index":5,"prefix_depth":1,"budget_hit":false,)"
                   R"("depth_truncated_paths":0,"pruned_paths":0,)"
                   R"("outcomes":[],"truncations":[]})",
                   interner, &meta)
                   .ok());
  // Unknown predicate: a partial from a different program must be refused.
  EXPECT_FALSE(
      PartialSpaceFromJson(
          R"({"format":"gdlog.partial.v1","num_shards":1,"shard_index":0,)"
          R"("prefix_depth":0,"max_outcomes":0,"max_depth":4096,)"
          R"("support_limit":64,"trigger_shuffle_seed":"0",)"
          R"("min_path_prob":"0x0p+0","budget_hit":false,)"
          R"("depth_truncated_paths":0,"pruned_paths":0,)"
          R"("outcomes":[{"prob":{"n":1,"d":2},)"
          R"("choices":[{"active":{"p":"no_such_predicate","a":[]},)"
          R"("outcome":{"t":"i","v":1}}],"models":[]}],"truncations":[]})",
          interner, &meta)
          .ok());
}

}  // namespace
}  // namespace gdlog
