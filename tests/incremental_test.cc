// Incremental grounding: the chase extending the parent node's grounding
// must produce exactly the same outcome space as re-grounding from scratch
// (sound by grounder monotonicity, Definition 3.3).
#include <gtest/gtest.h>

#include <map>

#include "gdatalog/engine.h"
#include "gdatalog/sampler.h"

namespace gdlog {
namespace {

struct Case {
  const char* label;
  const char* program;
  const char* db;
};

class IncrementalEquivalenceTest : public ::testing::TestWithParam<Case> {};

std::map<ChoiceSet, std::pair<std::string, size_t>> Fingerprint(
    const OutcomeSpace& space) {
  std::map<ChoiceSet, std::pair<std::string, size_t>> out;
  for (const PossibleOutcome& o : space.outcomes) {
    out.emplace(o.choices,
                std::make_pair(o.prob.ToString(), o.models.size()));
  }
  return out;
}

TEST_P(IncrementalEquivalenceTest, SameOutcomeSpaceAsFromScratch) {
  const Case& c = GetParam();
  GDatalog::Options options;
  options.grounder = GrounderKind::kSimple;  // supports incremental
  auto engine = GDatalog::Create(c.program, c.db, std::move(options));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_TRUE(engine->grounder().SupportsIncremental());

  ChaseOptions incremental;
  incremental.incremental = true;
  ChaseOptions scratch;
  scratch.incremental = false;

  auto inc_space = engine->Infer(incremental);
  ASSERT_TRUE(inc_space.ok()) << inc_space.status().ToString();
  auto scr_space = engine->Infer(scratch);
  ASSERT_TRUE(scr_space.ok());

  EXPECT_EQ(inc_space->outcomes.size(), scr_space->outcomes.size());
  EXPECT_EQ(inc_space->finite_mass, scr_space->finite_mass);
  EXPECT_EQ(Fingerprint(*inc_space), Fingerprint(*scr_space));
  EXPECT_EQ(inc_space->Events().size(), scr_space->Events().size());
  EXPECT_EQ(inc_space->ProbConsistent(), scr_space->ProbConsistent());
}

TEST_P(IncrementalEquivalenceTest, SamplePathsIdenticalGivenSeed) {
  const Case& c = GetParam();
  GDatalog::Options options;
  options.grounder = GrounderKind::kSimple;
  auto engine = GDatalog::Create(c.program, c.db, std::move(options));
  ASSERT_TRUE(engine.ok());

  ChaseOptions incremental;
  incremental.incremental = true;
  ChaseOptions scratch;
  scratch.incremental = false;

  Rng rng_a(77), rng_b(77);
  for (int i = 0; i < 25; ++i) {
    auto a = engine->chase().SamplePath(&rng_a, incremental);
    auto b = engine->chase().SamplePath(&rng_b, scratch);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_TRUE(a->choices == b->choices);
    EXPECT_EQ(a->prob, b->prob);
    EXPECT_EQ(a->models, b->models);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Programs, IncrementalEquivalenceTest,
    ::testing::Values(
        Case{"network3",
             "infected(Y, flip<0.1>[X, Y]) :- infected(X, 1), connected(X, Y).\n"
             "uninfected(X) :- router(X), not infected(X, 1).\n"
             ":- uninfected(X), uninfected(Y), connected(X, Y).",
             "router(1). router(2). router(3). connected(1,2). "
             "connected(2,1). connected(1,3). connected(3,1). "
             "connected(2,3). connected(3,2). infected(1, 1)."},
        Case{"coin",
             "coin(flip<0.5>). :- coin(0).\n"
             "aux1 :- coin(1), not aux2. aux2 :- coin(1), not aux1.",
             ""},
        Case{"dime",
             "dimetail(X, flip<0.5>[X]) :- dime(X).\n"
             "somedimetail :- dimetail(X, 1).\n"
             "quartertail(X, flip<0.5>[X]) :- quarter(X), not somedimetail.",
             "dime(1). dime(2). quarter(3)."},
        Case{"cascade",
             "pick(X, flip<0.4>[X]) :- item(X).\n"
             "chosen(X) :- pick(X, 1).\n"
             "bonus(X, uniformint<1, 3>[X]) :- chosen(X).",
             "item(1). item(2)."}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return info.param.label;
    });

TEST(Incremental, PerfectGrounderFallsBackSafely) {
  // Perfect grounder does not support incremental mode; the chase must
  // silently fall back and still be correct.
  auto engine = GDatalog::Create(
      "dimetail(X, flip<0.5>[X]) :- dime(X).\n"
      "somedimetail :- dimetail(X, 1).\n"
      "quartertail(X, flip<0.5>[X]) :- quarter(X), not somedimetail.",
      "dime(1). dime(2). quarter(3).");
  ASSERT_TRUE(engine.ok());
  ASSERT_EQ(engine->grounder().name(), "perfect");
  EXPECT_FALSE(engine->grounder().SupportsIncremental());
  ChaseOptions options;
  options.incremental = true;  // requested but unsupported
  auto space = engine->Infer(options);
  ASSERT_TRUE(space.ok());
  EXPECT_EQ(space->outcomes.size(), 5u);
  EXPECT_EQ(space->finite_mass, Prob::FromDouble(1.0));
}

TEST(Incremental, ExtendDirectlyMatchesGround) {
  // Unit-level: Ground(Σ∪{c}) == Clone(Ground(Σ)) + Extend(c).
  auto engine = GDatalog::Create(
      "infected(Y, flip<0.1>[X, Y]) :- infected(X, 1), connected(X, Y).",
      "connected(1,2). connected(2,3). infected(1, 1).",
      [] {
        GDatalog::Options o;
        o.grounder = GrounderKind::kSimple;
        return o;
      }());
  ASSERT_TRUE(engine.ok());
  const Grounder& grounder = engine->grounder();

  GroundRuleSet base;
  ASSERT_TRUE(grounder.Ground(ChoiceSet(), &base).ok());

  // The single trigger: Active(0.1, 1, 2).
  std::vector<GroundAtom> triggers =
      FindTriggers(engine->translated(), base, ChoiceSet());
  ASSERT_EQ(triggers.size(), 1u);

  ChoiceSet choices;
  choices.Assign(triggers[0], Value::Int(1));

  // From scratch.
  GroundRuleSet scratch;
  ASSERT_TRUE(grounder.Ground(choices, &scratch).ok());

  // Incremental: the clone's heads() carries the whole matching instance,
  // so Extend resumes from the grounding alone.
  GroundRuleSet extended = base.Clone();
  ASSERT_TRUE(grounder.Extend(choices, triggers[0], &extended).ok());

  ASSERT_EQ(extended.size(), scratch.size());
  for (const GroundRule* rule : scratch.rules()) {
    EXPECT_TRUE(extended.Contains(*rule))
        << rule->ToString(engine->program().interner());
  }
}

}  // namespace
}  // namespace gdlog
