// Adversarial property testing of the homomorphism Matcher: random
// conjunctive queries over random databases, checked against a brute-force
// oracle that enumerates all variable assignments.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "ground/matcher.h"
#include "util/rng.h"

namespace gdlog {
namespace {

constexpr uint32_t kNumPredicates = 3;
constexpr uint32_t kNumConstants = 4;
constexpr uint32_t kNumVariables = 4;

struct RandomInstance {
  FactStore store;
  std::vector<size_t> arities;  // per predicate
};

RandomInstance MakeInstance(Rng* rng) {
  RandomInstance out;
  out.arities.resize(kNumPredicates);
  for (uint32_t p = 0; p < kNumPredicates; ++p) {
    out.arities[p] = 1 + rng->NextBounded(2);  // arity 1 or 2
    size_t rows = rng->NextBounded(8);
    for (size_t r = 0; r < rows; ++r) {
      Tuple tuple;
      for (size_t c = 0; c < out.arities[p]; ++c) {
        tuple.push_back(
            Value::Int(static_cast<int64_t>(rng->NextBounded(kNumConstants))));
      }
      out.store.Insert(p, std::move(tuple));
    }
  }
  return out;
}

std::vector<Atom> MakeQuery(Rng* rng, const RandomInstance& inst) {
  size_t num_atoms = 1 + rng->NextBounded(3);
  std::vector<Atom> query;
  for (size_t i = 0; i < num_atoms; ++i) {
    Atom atom;
    atom.predicate = static_cast<uint32_t>(rng->NextBounded(kNumPredicates));
    for (size_t c = 0; c < inst.arities[atom.predicate]; ++c) {
      if (rng->NextBounded(4) == 0) {
        atom.args.push_back(Term::Constant(
            Value::Int(static_cast<int64_t>(rng->NextBounded(kNumConstants)))));
      } else {
        atom.args.push_back(Term::Variable(
            static_cast<uint32_t>(rng->NextBounded(kNumVariables))));
      }
    }
    query.push_back(std::move(atom));
  }
  return query;
}

/// Brute force: try every assignment of the variables used in the query.
std::set<std::vector<std::pair<uint32_t, Value>>> BruteForce(
    const std::vector<Atom>& query, const FactStore& store) {
  std::set<uint32_t> vars_used;
  for (const Atom& atom : query) {
    for (const Term& t : atom.args) {
      if (t.is_variable()) vars_used.insert(t.var_id());
    }
  }
  std::vector<uint32_t> vars(vars_used.begin(), vars_used.end());
  std::set<std::vector<std::pair<uint32_t, Value>>> results;

  size_t total = 1;
  for (size_t i = 0; i < vars.size(); ++i) total *= kNumConstants;
  for (size_t mask = 0; mask < total; ++mask) {
    Binding binding;
    size_t m = mask;
    for (uint32_t v : vars) {
      binding[v] = Value::Int(static_cast<int64_t>(m % kNumConstants));
      m /= kNumConstants;
    }
    bool all_match = true;
    for (const Atom& atom : query) {
      GroundAtom ground = ApplyAtom(atom, binding);
      if (!store.Contains(ground)) {
        all_match = false;
        break;
      }
    }
    if (all_match) {
      std::vector<std::pair<uint32_t, Value>> key;
      for (uint32_t v : vars) key.emplace_back(v, binding[v]);
      results.insert(std::move(key));
    }
  }
  return results;
}

class MatcherOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatcherOracleTest, MatchesBruteForceJoin) {
  Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    RandomInstance inst = MakeInstance(&rng);
    std::vector<Atom> query = MakeQuery(&rng, inst);
    std::vector<const Atom*> atoms;
    for (const Atom& a : query) atoms.push_back(&a);

    std::set<uint32_t> vars_used;
    for (const Atom& atom : query) {
      for (const Term& t : atom.args) {
        if (t.is_variable()) vars_used.insert(t.var_id());
      }
    }
    std::vector<uint32_t> vars(vars_used.begin(), vars_used.end());

    Matcher matcher(&inst.store);
    std::set<std::vector<std::pair<uint32_t, Value>>> got;
    matcher.Match(atoms, [&](const Binding& binding) {
      std::vector<std::pair<uint32_t, Value>> key;
      for (uint32_t v : vars) key.emplace_back(v, binding.at(v));
      got.insert(std::move(key));
      return true;
    });

    std::set<std::vector<std::pair<uint32_t, Value>>> expected =
        BruteForce(query, inst.store);
    ASSERT_EQ(got, expected) << "seed " << GetParam() << " round " << round;
  }
}

TEST_P(MatcherOracleTest, PivotUnionCoversAllMatches) {
  // Semi-naive decomposition: the union over pivot positions restricted to
  // the full relation reproduces Match() (each match is found via at least
  // one pivot; dedup via set).
  Rng rng(GetParam() + 500);
  for (int round = 0; round < 10; ++round) {
    RandomInstance inst = MakeInstance(&rng);
    std::vector<Atom> query = MakeQuery(&rng, inst);
    std::vector<const Atom*> atoms;
    for (const Atom& a : query) atoms.push_back(&a);

    std::set<uint32_t> vars_used;
    for (const Atom& atom : query) {
      for (const Term& t : atom.args) {
        if (t.is_variable()) vars_used.insert(t.var_id());
      }
    }
    std::vector<uint32_t> vars(vars_used.begin(), vars_used.end());
    auto collect = [&](const Binding& binding) {
      std::vector<std::pair<uint32_t, Value>> key;
      for (uint32_t v : vars) key.emplace_back(v, binding.at(v));
      return key;
    };

    Matcher matcher(&inst.store);
    std::set<std::vector<std::pair<uint32_t, Value>>> direct;
    matcher.Match(atoms, [&](const Binding& b) {
      direct.insert(collect(b));
      return true;
    });

    std::set<std::vector<std::pair<uint32_t, Value>>> via_pivots;
    for (size_t pivot = 0; pivot < atoms.size(); ++pivot) {
      matcher.MatchWithPivot(atoms, pivot,
                             inst.store.Rows(atoms[pivot]->predicate),
                             [&](const Binding& b) {
                               via_pivots.insert(collect(b));
                               return true;
                             });
    }
    ASSERT_EQ(direct, via_pivots) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherOracleTest,
                         ::testing::Range<uint64_t>(1, 26));

}  // namespace
}  // namespace gdlog
