// GDatalog facade tests: construction errors, grounder selection, custom
// distribution registries, outcome-space query APIs, and conditioning.
#include <gtest/gtest.h>

#include "gdatalog/engine.h"

namespace gdlog {
namespace {

TEST(Engine, ParseErrorsPropagate) {
  auto engine = GDatalog::Create("p(X :- q(X).", "");
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kParseError);
}

TEST(Engine, DatabaseParseErrorsPropagate) {
  auto engine = GDatalog::Create("p(X) :- q(X).", "q(X) :- r(X).");
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

TEST(Engine, UnsafeProgramRejected) {
  auto engine = GDatalog::Create("p(Y) :- q(X).", "");
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kUnsafeProgram);
}

TEST(Engine, UnknownDistributionRejected) {
  auto engine = GDatalog::Create("p(zipf<1.5>) :- q.", "");
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kNotFound);
}

TEST(Engine, PerfectGrounderOnNonStratifiedFails) {
  GDatalog::Options options;
  options.grounder = GrounderKind::kPerfect;
  auto engine =
      GDatalog::Create("a :- not b. b :- not a.", "", std::move(options));
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kNotStratified);
}

TEST(Engine, AutoSelectsSimpleForNonStratified) {
  auto engine = GDatalog::Create("a :- not b. b :- not a.", "");
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE(engine->stratified());
  EXPECT_EQ(engine->grounder().name(), "simple");
}

TEST(Engine, AutoSelectsPerfectForStratified) {
  auto engine = GDatalog::Create("a(X) :- b(X), not c(X).", "b(1).");
  ASSERT_TRUE(engine.ok());
  EXPECT_TRUE(engine->stratified());
  EXPECT_EQ(engine->grounder().name(), "perfect");
}

TEST(Engine, PlainDatalogProgramsWork) {
  // No Δ-terms at all: one outcome with probability 1, one stable model —
  // the engine doubles as an ordinary Datalog¬ evaluator.
  auto engine = GDatalog::Create(
      "path(X, Y) :- edge(X, Y).\n"
      "path(X, Z) :- path(X, Y), edge(Y, Z).\n"
      "unreachable(X, Y) :- node(X), node(Y), not path(X, Y).",
      "node(1). node(2). node(3). edge(1, 2). edge(2, 3).");
  ASSERT_TRUE(engine.ok());
  auto space = engine->Infer();
  ASSERT_TRUE(space.ok());
  ASSERT_EQ(space->outcomes.size(), 1u);
  EXPECT_EQ(space->outcomes[0].prob, Prob::FromDouble(1.0));
  ASSERT_EQ(space->outcomes[0].models.size(), 1u);
  auto path13 = engine->ParseGroundAtom("path(1, 3)");
  ASSERT_TRUE(path13.ok());
  EXPECT_EQ(space->Marginal(*path13).lower, Prob::FromDouble(1.0));
  auto un31 = engine->ParseGroundAtom("unreachable(3, 1)");
  ASSERT_TRUE(un31.ok());
  EXPECT_EQ(space->Marginal(*un31).lower, Prob::FromDouble(1.0));
  auto un13 = engine->ParseGroundAtom("unreachable(1, 3)");
  EXPECT_EQ(space->Marginal(*un13).upper, Prob::Zero());
}

TEST(Engine, EmptyProgramEmptyDatabase) {
  auto engine = GDatalog::Create("", "");
  ASSERT_TRUE(engine.ok());
  auto space = engine->Infer();
  ASSERT_TRUE(space.ok());
  ASSERT_EQ(space->outcomes.size(), 1u);  // the empty outcome
  EXPECT_TRUE(space->outcomes[0].choices.empty());
  ASSERT_EQ(space->outcomes[0].models.size(), 1u);
  EXPECT_TRUE(space->outcomes[0].models.begin()->empty());
}

TEST(Engine, CustomRegistry) {
  // A registry without `flip` must reject flip programs.
  auto registry = std::make_unique<DistributionRegistry>();
  GDatalog::Options options;
  options.registry = std::move(registry);
  auto engine = GDatalog::Create("c(flip<0.5>).", "", std::move(options));
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kNotFound);
}

TEST(Engine, ParseGroundAtomValidation) {
  auto engine = GDatalog::Create("p(X) :- q(X).", "q(1).");
  ASSERT_TRUE(engine.ok());
  auto good = engine->ParseGroundAtom("p(1)");
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->args[0], Value::Int(1));
  EXPECT_FALSE(engine->ParseGroundAtom("p(X)").ok());
  EXPECT_FALSE(engine->ParseGroundAtom("p(1) :- q(1)").ok());
  EXPECT_FALSE(engine->ParseGroundAtom("").ok());
  // Trailing dot optional.
  EXPECT_TRUE(engine->ParseGroundAtom("p(2).").ok());
}

TEST(Engine, MarginalGivenConsistentUndefinedWhenInconsistent) {
  // Every outcome violates the constraint: P(consistent) = 0.
  auto engine = GDatalog::Create("p(1). :- p(1).", "");
  ASSERT_TRUE(engine.ok());
  auto space = engine->Infer();
  ASSERT_TRUE(space.ok());
  EXPECT_EQ(space->ProbConsistent(), Prob::Zero());
  auto atom = engine->ParseGroundAtom("p(1)");
  EXPECT_FALSE(space->MarginalGivenConsistent(*atom).has_value());
}

TEST(Engine, StripAuxiliaryRemovesActiveAndResult) {
  auto engine = GDatalog::Create("c(flip<0.5>).", "");
  ASSERT_TRUE(engine.ok());
  auto space = engine->Infer();
  ASSERT_TRUE(space.ok());
  for (const PossibleOutcome& outcome : space->outcomes) {
    for (const StableModel& model : outcome.models) {
      StableModel stripped =
          OutcomeSpace::StripAuxiliary(model, engine->translated());
      // Exactly the user-visible coin atom remains.
      ASSERT_EQ(stripped.size(), 1u);
      EXPECT_EQ(engine->program().interner()->Name(stripped[0].predicate),
                "c");
      EXPECT_LT(stripped.size(), model.size());
    }
  }
}

TEST(Engine, MultipleDeltaTermsInSameHead) {
  auto engine = GDatalog::Create("pair(flip<0.5>[l], flip<0.5>[r]).", "");
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  auto space = engine->Infer();
  ASSERT_TRUE(space.ok());
  // 2x2 outcomes, each 1/4.
  ASSERT_EQ(space->outcomes.size(), 4u);
  for (const PossibleOutcome& o : space->outcomes) {
    EXPECT_EQ(o.prob, Prob(Rational(1, 4)));
    EXPECT_EQ(o.choices.size(), 2u);
  }
}

TEST(Engine, VariableDistributionParameters) {
  // The bias arrives from the database — Δ-term parameters are terms.
  auto engine = GDatalog::Create("t(X, flip<P>[X]) :- bias(X, P).",
                                 "bias(1, 0.25). bias(2, 0.75).");
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  auto space = engine->Infer();
  ASSERT_TRUE(space.ok());
  ASSERT_EQ(space->outcomes.size(), 4u);
  auto t11 = engine->ParseGroundAtom("t(1, 1)");
  EXPECT_EQ(space->Marginal(*t11).lower, Prob(Rational(1, 4)));
  auto t21 = engine->ParseGroundAtom("t(2, 1)");
  EXPECT_EQ(space->Marginal(*t21).lower, Prob(Rational(3, 4)));
}

TEST(Engine, EventSignatureSharingCollapsesSamples) {
  // Same Δ-term event signature ⇒ one shared sample: two rules referencing
  // flip<0.5>[X] with the same X draw the *same* coin.
  auto engine = GDatalog::Create(
      "a(X, flip<0.5>[X]) :- item(X).\n"
      "b(X, flip<0.5>[X]) :- item(X).",
      "item(1).");
  ASSERT_TRUE(engine.ok());
  auto space = engine->Infer();
  ASSERT_TRUE(space.ok());
  // One Active atom only — not two: outcomes are 2, not 4.
  ASSERT_EQ(space->outcomes.size(), 2u);
  // And a(1,v), b(1,v) always agree.
  uint32_t a_pred = engine->program().interner()->Lookup("a");
  uint32_t b_pred = engine->program().interner()->Lookup("b");
  for (const PossibleOutcome& o : space->outcomes) {
    ASSERT_EQ(o.models.size(), 1u);
    const StableModel& m = *o.models.begin();
    StableModel stripped = OutcomeSpace::StripAuxiliary(m, engine->translated());
    ASSERT_EQ(stripped.size(), 3u);  // a(1,v), b(1,v), item(1)
    Value a_value, b_value;
    for (const GroundAtom& atom : stripped) {
      if (atom.predicate == a_pred) a_value = atom.args[1];
      if (atom.predicate == b_pred) b_value = atom.args[1];
    }
    EXPECT_EQ(a_value, b_value);
  }
}

TEST(Engine, DistinctEventSignaturesStayIndependent) {
  auto engine = GDatalog::Create(
      "a(X, flip<0.5>[X, left]) :- item(X).\n"
      "b(X, flip<0.5>[X, right]) :- item(X).",
      "item(1).");
  ASSERT_TRUE(engine.ok());
  auto space = engine->Infer();
  ASSERT_TRUE(space.ok());
  EXPECT_EQ(space->outcomes.size(), 4u);  // independent coins
}

}  // namespace
}  // namespace gdlog
