// Distribution registry Δ: pmf correctness, support enumeration, fallback
// behaviour on invalid parameters, and sampling law (chi-squared-ish checks
// against the pmf).
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "dist/distribution.h"

namespace gdlog {
namespace {

class DistTest : public ::testing::Test {
 protected:
  DistributionRegistry registry_ = DistributionRegistry::Builtins();
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST_F(DistTest, BuiltinsAreRegistered) {
  for (const char* name : {"flip", "die", "discrete", "uniformint",
                           "binomial", "geometric", "poisson"}) {
    EXPECT_NE(registry_.Lookup(name), nullptr) << name;
  }
  EXPECT_EQ(registry_.Lookup("gaussian"), nullptr);
}

TEST_F(DistTest, DuplicateRegistrationFails) {
  // Re-registering any builtin name must fail.
  DistributionRegistry reg = DistributionRegistry::Builtins();
  class Fake : public Distribution {
   public:
    std::string_view name() const override { return "flip"; }
    bool AcceptsDim(size_t) const override { return true; }
    Prob Pmf(const std::vector<Value>&, const Value&) const override {
      return Prob::One();
    }
    bool HasFiniteSupport(const std::vector<Value>&) const override {
      return true;
    }
    std::vector<Value> Support(const std::vector<Value>&,
                               size_t) const override {
      return {Value::Int(0)};
    }
    Value Sample(const std::vector<Value>&, Rng*) const override {
      return Value::Int(0);
    }
  };
  Status st = reg.Register(std::make_unique<Fake>());
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
}

// ---------------------------------------------------------------------------
// flip
// ---------------------------------------------------------------------------

TEST_F(DistTest, FlipPmf) {
  const Distribution* flip = registry_.Lookup("flip");
  std::vector<Value> params = {Value::Double(0.1)};
  EXPECT_EQ(flip->Pmf(params, Value::Int(1)), Prob(Rational(1, 10)));
  EXPECT_EQ(flip->Pmf(params, Value::Int(0)), Prob(Rational(9, 10)));
  EXPECT_EQ(flip->Pmf(params, Value::Int(2)), Prob::Zero());
  EXPECT_EQ(flip->Pmf(params, Value::Bool(true)), Prob::Zero());
}

TEST_F(DistTest, FlipAcceptsOnlyDimOne) {
  const Distribution* flip = registry_.Lookup("flip");
  EXPECT_TRUE(flip->AcceptsDim(1));
  EXPECT_FALSE(flip->AcceptsDim(0));
  EXPECT_FALSE(flip->AcceptsDim(2));
}

TEST_F(DistTest, FlipDegenerateSupports) {
  const Distribution* flip = registry_.Lookup("flip");
  EXPECT_EQ(flip->Support({Value::Double(0.0)}, 0),
            std::vector<Value>{Value::Int(0)});
  EXPECT_EQ(flip->Support({Value::Double(1.0)}, 0),
            std::vector<Value>{Value::Int(1)});
  std::vector<Value> both = {Value::Int(0), Value::Int(1)};
  EXPECT_EQ(flip->Support({Value::Double(0.5)}, 0), both);
}

TEST_F(DistTest, FlipInvalidParamFallsBackToZero) {
  // §2 requires δ⟨p̄⟩ to be a distribution for *every* parameter; out of
  // range p concentrates mass on 0 (mirroring the Appendix-B Die).
  const Distribution* flip = registry_.Lookup("flip");
  for (double bad : {-0.5, 1.5, std::nan("")}) {
    std::vector<Value> params = {Value::Double(bad)};
    EXPECT_EQ(flip->Pmf(params, Value::Int(0)), Prob::One());
    EXPECT_EQ(flip->Pmf(params, Value::Int(1)), Prob::Zero());
  }
}

TEST_F(DistTest, FlipSampleLaw) {
  const Distribution* flip = registry_.Lookup("flip");
  std::vector<Value> params = {Value::Double(0.3)};
  Rng rng(42);
  int ones = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    Value v = flip->Sample(params, &rng);
    ASSERT_TRUE(v == Value::Int(0) || v == Value::Int(1));
    if (v == Value::Int(1)) ++ones;
  }
  EXPECT_NEAR(ones / static_cast<double>(kDraws), 0.3, 0.01);
}

// ---------------------------------------------------------------------------
// die (Appendix B)
// ---------------------------------------------------------------------------

TEST_F(DistTest, DieValidParams) {
  const Distribution* die = registry_.Lookup("die");
  std::vector<Value> fair(6, Value::Double(1.0 / 6));
  // 1/6 isn't an exact decimal; use a biased die with decimal masses.
  std::vector<Value> biased = {Value::Double(0.1), Value::Double(0.1),
                               Value::Double(0.1), Value::Double(0.1),
                               Value::Double(0.1), Value::Double(0.5)};
  EXPECT_EQ(die->Pmf(biased, Value::Int(6)), Prob(Rational(1, 2)));
  EXPECT_EQ(die->Pmf(biased, Value::Int(1)), Prob(Rational(1, 10)));
  // Valid parameters put zero mass on the fallback outcome 0.
  EXPECT_EQ(die->Pmf(biased, Value::Int(0)), Prob::Zero());
  EXPECT_EQ(die->Support(biased, 0).size(), 6u);
}

TEST_F(DistTest, DieInvalidParamsConcentrateOnZero) {
  // Appendix B: Σp_i ≠ 1 ⇒ Die⟨p̄⟩(0) = 1 and Die⟨p̄⟩(i) = 0.
  const Distribution* die = registry_.Lookup("die");
  std::vector<Value> bad(6, Value::Double(0.3));
  EXPECT_EQ(die->Pmf(bad, Value::Int(0)), Prob::One());
  for (int i = 1; i <= 6; ++i) {
    EXPECT_EQ(die->Pmf(bad, Value::Int(i)), Prob::Zero());
  }
  EXPECT_EQ(die->Support(bad, 0), std::vector<Value>{Value::Int(0)});
}

// ---------------------------------------------------------------------------
// discrete
// ---------------------------------------------------------------------------

TEST_F(DistTest, DiscreteExplicitPmf) {
  const Distribution* disc = registry_.Lookup("discrete");
  std::vector<Value> params = {Value::Int(10), Value::Double(0.2),
                               Value::Int(20), Value::Double(0.8)};
  EXPECT_EQ(disc->Pmf(params, Value::Int(10)), Prob(Rational(1, 5)));
  EXPECT_EQ(disc->Pmf(params, Value::Int(20)), Prob(Rational(4, 5)));
  EXPECT_EQ(disc->Pmf(params, Value::Int(30)), Prob::Zero());
}

TEST_F(DistTest, DiscreteNormalizesMasses) {
  const Distribution* disc = registry_.Lookup("discrete");
  std::vector<Value> params = {Value::Int(1), Value::Double(2.0),
                               Value::Int(2), Value::Double(6.0)};
  EXPECT_EQ(disc->Pmf(params, Value::Int(1)), Prob(Rational(1, 4)));
  EXPECT_EQ(disc->Pmf(params, Value::Int(2)), Prob(Rational(3, 4)));
}

TEST_F(DistTest, DiscreteRepeatedOutcomeAccumulates) {
  const Distribution* disc = registry_.Lookup("discrete");
  std::vector<Value> params = {Value::Int(1), Value::Double(0.25),
                               Value::Int(1), Value::Double(0.25),
                               Value::Int(2), Value::Double(0.5)};
  EXPECT_EQ(disc->Pmf(params, Value::Int(1)), Prob(Rational(1, 2)));
  EXPECT_EQ(disc->Support(params, 0).size(), 2u);
}

TEST_F(DistTest, DiscreteSymbolOutcomes) {
  const Distribution* disc = registry_.Lookup("discrete");
  std::vector<Value> params = {Value::Symbol(7), Value::Double(0.5),
                               Value::Symbol(8), Value::Double(0.5)};
  EXPECT_EQ(disc->Pmf(params, Value::Symbol(7)), Prob(Rational(1, 2)));
}

TEST_F(DistTest, DiscreteAcceptsEvenDims) {
  const Distribution* disc = registry_.Lookup("discrete");
  EXPECT_TRUE(disc->AcceptsDim(2));
  EXPECT_TRUE(disc->AcceptsDim(10));
  EXPECT_FALSE(disc->AcceptsDim(3));
  EXPECT_FALSE(disc->AcceptsDim(0));
}

// ---------------------------------------------------------------------------
// uniformint
// ---------------------------------------------------------------------------

TEST_F(DistTest, UniformIntPmfAndSupport) {
  const Distribution* uni = registry_.Lookup("uniformint");
  std::vector<Value> params = {Value::Int(3), Value::Int(7)};
  for (int v = 3; v <= 7; ++v) {
    EXPECT_EQ(uni->Pmf(params, Value::Int(v)), Prob(Rational(1, 5)));
  }
  EXPECT_EQ(uni->Pmf(params, Value::Int(2)), Prob::Zero());
  EXPECT_EQ(uni->Pmf(params, Value::Int(8)), Prob::Zero());
  EXPECT_EQ(uni->Support(params, 0).size(), 5u);
}

TEST_F(DistTest, UniformIntEmptyRangeDegenerates) {
  const Distribution* uni = registry_.Lookup("uniformint");
  std::vector<Value> params = {Value::Int(5), Value::Int(3)};
  EXPECT_EQ(uni->Pmf(params, Value::Int(5)), Prob::One());
  EXPECT_EQ(uni->Support(params, 0), std::vector<Value>{Value::Int(5)});
}

// ---------------------------------------------------------------------------
// binomial
// ---------------------------------------------------------------------------

TEST_F(DistTest, BinomialExactMasses) {
  const Distribution* bin = registry_.Lookup("binomial");
  std::vector<Value> params = {Value::Int(3), Value::Double(0.5)};
  EXPECT_EQ(bin->Pmf(params, Value::Int(0)), Prob(Rational(1, 8)));
  EXPECT_EQ(bin->Pmf(params, Value::Int(1)), Prob(Rational(3, 8)));
  EXPECT_EQ(bin->Pmf(params, Value::Int(2)), Prob(Rational(3, 8)));
  EXPECT_EQ(bin->Pmf(params, Value::Int(3)), Prob(Rational(1, 8)));
  EXPECT_EQ(bin->Pmf(params, Value::Int(4)), Prob::Zero());
}

TEST_F(DistTest, BinomialMassesSumToOne) {
  const Distribution* bin = registry_.Lookup("binomial");
  std::vector<Value> params = {Value::Int(10), Value::Double(0.3)};
  Prob total = Prob::Zero();
  for (const Value& v : bin->Support(params, 0)) {
    total = total + bin->Pmf(params, v);
  }
  EXPECT_EQ(total, Prob::One());
}

// ---------------------------------------------------------------------------
// geometric (infinite support)
// ---------------------------------------------------------------------------

TEST_F(DistTest, GeometricPmf) {
  const Distribution* geo = registry_.Lookup("geometric");
  std::vector<Value> params = {Value::Double(0.5)};
  EXPECT_FALSE(geo->HasFiniteSupport(params));
  EXPECT_EQ(geo->Pmf(params, Value::Int(0)), Prob(Rational(1, 2)));
  EXPECT_EQ(geo->Pmf(params, Value::Int(2)), Prob(Rational(1, 8)));
  EXPECT_EQ(geo->Pmf(params, Value::Int(-1)), Prob::Zero());
}

TEST_F(DistTest, GeometricSupportIsTruncatedPrefix) {
  const Distribution* geo = registry_.Lookup("geometric");
  std::vector<Value> params = {Value::Double(0.5)};
  std::vector<Value> support = geo->Support(params, 5);
  ASSERT_EQ(support.size(), 5u);
  for (int k = 0; k < 5; ++k) EXPECT_EQ(support[k], Value::Int(k));
}

TEST_F(DistTest, GeometricDegenerateAtOne) {
  const Distribution* geo = registry_.Lookup("geometric");
  std::vector<Value> params = {Value::Double(1.0)};
  EXPECT_TRUE(geo->HasFiniteSupport(params));
  EXPECT_EQ(geo->Pmf(params, Value::Int(0)), Prob::One());
}

TEST_F(DistTest, GeometricSampleLaw) {
  const Distribution* geo = registry_.Lookup("geometric");
  std::vector<Value> params = {Value::Double(0.25)};
  Rng rng(7);
  double sum = 0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    sum += static_cast<double>(geo->Sample(params, &rng).int_value());
  }
  // E[X] = (1-p)/p = 3.
  EXPECT_NEAR(sum / kDraws, 3.0, 0.05);
}

// ---------------------------------------------------------------------------
// poisson (infinite support, inexact masses)
// ---------------------------------------------------------------------------

TEST_F(DistTest, PoissonPmf) {
  const Distribution* poi = registry_.Lookup("poisson");
  std::vector<Value> params = {Value::Double(2.0)};
  EXPECT_FALSE(poi->HasFiniteSupport(params));
  EXPECT_NEAR(poi->Pmf(params, Value::Int(0)).value(), std::exp(-2.0), 1e-12);
  EXPECT_NEAR(poi->Pmf(params, Value::Int(2)).value(),
              std::exp(-2.0) * 2.0, 1e-12);
}

TEST_F(DistTest, PoissonDegenerateLambda) {
  const Distribution* poi = registry_.Lookup("poisson");
  std::vector<Value> params = {Value::Double(0.0)};
  EXPECT_TRUE(poi->HasFiniteSupport(params));
  EXPECT_EQ(poi->Pmf(params, Value::Int(0)), Prob::One());
}

TEST_F(DistTest, PoissonSampleLaw) {
  const Distribution* poi = registry_.Lookup("poisson");
  std::vector<Value> params = {Value::Double(4.0)};
  Rng rng(11);
  double sum = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    sum += static_cast<double>(poi->Sample(params, &rng).int_value());
  }
  EXPECT_NEAR(sum / kDraws, 4.0, 0.05);
}

// ---------------------------------------------------------------------------
// Property sweep: pmf over the enumerated support sums to (at most) 1 and
// every support element has positive mass. TEST_P over all builtins with
// canonical parameters.
// ---------------------------------------------------------------------------

struct SupportCase {
  const char* dist;
  std::vector<Value> params;
  bool finite;
};

class SupportSweep : public ::testing::TestWithParam<SupportCase> {};

TEST_P(SupportSweep, SupportMassesArePositiveAndSumBounded) {
  DistributionRegistry registry = DistributionRegistry::Builtins();
  const SupportCase& c = GetParam();
  const Distribution* dist = registry.Lookup(c.dist);
  ASSERT_NE(dist, nullptr);
  EXPECT_EQ(dist->HasFiniteSupport(c.params), c.finite);
  std::vector<Value> support = dist->Support(c.params, 32);
  ASSERT_FALSE(support.empty());
  Prob total = Prob::Zero();
  for (const Value& v : support) {
    Prob mass = dist->Pmf(c.params, v);
    EXPECT_GT(mass.value(), 0.0) << c.dist << " outcome " << v.ToString();
    total = total + mass;
  }
  EXPECT_LE(total.value(), 1.0 + 1e-12);
  if (c.finite) {
    EXPECT_NEAR(total.value(), 1.0, 1e-9);
  }
}

TEST_P(SupportSweep, SamplesLandInSupport) {
  DistributionRegistry registry = DistributionRegistry::Builtins();
  const SupportCase& c = GetParam();
  const Distribution* dist = registry.Lookup(c.dist);
  Rng rng(31337);
  for (int i = 0; i < 2000; ++i) {
    Value v = dist->Sample(c.params, &rng);
    EXPECT_GT(dist->Pmf(c.params, v).value(), 0.0)
        << c.dist << " sampled zero-mass outcome " << v.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Builtins, SupportSweep,
    ::testing::Values(
        SupportCase{"flip", {Value::Double(0.3)}, true},
        SupportCase{"flip", {Value::Double(0.0)}, true},
        SupportCase{"die",
                    {Value::Double(0.1), Value::Double(0.2),
                     Value::Double(0.3), Value::Double(0.1),
                     Value::Double(0.2), Value::Double(0.1)},
                    true},
        SupportCase{"discrete",
                    {Value::Int(5), Value::Double(0.5), Value::Int(6),
                     Value::Double(0.5)},
                    true},
        SupportCase{"uniformint", {Value::Int(1), Value::Int(6)}, true},
        SupportCase{"binomial", {Value::Int(5), Value::Double(0.4)}, true},
        SupportCase{"geometric", {Value::Double(0.5)}, false},
        SupportCase{"poisson", {Value::Double(1.5)}, false}));

}  // namespace
}  // namespace gdlog
