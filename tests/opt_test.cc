// The src/opt pass pipeline: per-pass unit tests over lifted IRs
// (specialization narrowing/splitting, dead-rule elimination, magic-sets
// demand closure, cross-rule subjoin sharing), golden --dump-ir snapshots
// for the paper's E1/E3 programs, randomized pass-on/pass-off outcome-space
// bit-identity (both grounders, exported JSON compared as strings), the
// demand pass's goal-marginal preservation + strict pruning, WithDatabase
// pipeline reuse, the registry's demand-engine cache and opt counters, the
// evaluator's per-Materialize pipeline, and the GDLOG_NO_OPT escape hatch.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "ast/parser.h"
#include "datalog/evaluator.h"
#include "gdatalog/engine.h"
#include "gdatalog/export.h"
#include "gdatalog/translation.h"
#include "ground/fact_store.h"
#include "opt/ir.h"
#include "opt/pass_manager.h"
#include "opt/passes.h"
#include "server/registry.h"
#include "util/rng.h"

namespace gdlog {
namespace {

// This suite tests the pipeline itself, so it must own the kill switch: a
// ctest run exported with GDLOG_NO_OPT=1 (CI does this to prove the rest
// of the tree is optimizer-agnostic) would otherwise vacuously disable
// everything asserted here. OptEnvTest re-sets the variable explicitly.
class OptEnvGuard : public ::testing::Environment {
 public:
  void SetUp() override { ::unsetenv("GDLOG_NO_OPT"); }
};
const ::testing::Environment* const kOptEnvGuard =
    ::testing::AddGlobalTestEnvironment(new OptEnvGuard);

// E1: the running network example (Examples 1.1/3.2 + the constraint).
constexpr char kNetworkProgram[] =
    "infected(Y, flip<0.1>[X, Y]) :- infected(X, 1), connected(X, Y).\n"
    "uninfected(X) :- router(X), not infected(X, 1).\n"
    ":- uninfected(X), uninfected(Y), connected(X, Y).\n";

std::string CliqueDb(int n) {
  std::string db;
  for (int i = 1; i <= n; ++i) db += "router(" + std::to_string(i) + ").\n";
  for (int i = 1; i <= n; ++i) {
    for (int j = 1; j <= n; ++j) {
      if (i != j) {
        db += "connected(" + std::to_string(i) + "," + std::to_string(j) +
              ").\n";
      }
    }
  }
  db += "infected(1, 1).\n";
  return db;
}

// E3: the dime/quarter stratified program (Appendix E, Figure 1).
constexpr char kDimeQuarterProgram[] =
    "dimetail(X, flip<0.5>[X]) :- dime(X).\n"
    "somedimetail :- dimetail(X, 1).\n"
    "quartertail(X, flip<0.5>[X]) :- quarter(X), not somedimetail.\n";

constexpr char kDimeQuarterDb[] = "dime(1).\ndime(2).\nquarter(3).\n";

// A goal subsystem plus an expensive irrelevant one. The irrelevant rule
// uses a different event arity than coin's flip so the translation mints a
// distinct Active/Result signature pair — demand must prune real rules,
// not share them with the goal's.
constexpr char kDemandProgram[] =
    "win :- coin(1).\n"
    "coin(flip<0.5>).\n"
    "buzz(X, Y, flip<0.5>[X, Y]) :- chatter(X), chatter(Y).\n";

constexpr char kDemandDb[] = "chatter(1).\nchatter(2).\n";

std::string SpaceJson(const GDatalog& engine) {
  auto space = engine.Infer();
  if (!space.ok()) {
    ADD_FAILURE() << space.status().ToString();
    return "";
  }
  JsonExportOptions options;
  options.include_outcomes = true;
  options.include_models = true;
  options.include_events = true;
  return OutcomeSpaceToJson(*space, engine.translated(),
                            engine.program().interner(), options);
}

GDatalog MustCreate(const std::string& program, const std::string& db,
                    GDatalog::Options options = {}) {
  auto engine = GDatalog::Create(program, db, std::move(options));
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

/// Lifts program/database text into a sigma ProgramIr the pass unit tests
/// mutate directly (the fixture keeps the AST and translation alive for
/// the IR's internal pointers).
class OptPassTest : public ::testing::Test {
 protected:
  ProgramIr Lift(const std::string& text, const std::string& db_text) {
    auto prog = ParseProgram(text);
    EXPECT_TRUE(prog.ok()) << prog.status().ToString();
    program_ = std::move(prog).value();
    Status valid = program_.Validate();
    EXPECT_TRUE(valid.ok()) << valid.ToString();
    auto tp = TranslateToTgd(program_, registry_);
    EXPECT_TRUE(tp.ok()) << tp.status().ToString();
    translated_ = std::move(tp).value();
    auto db = ParseFacts(db_text, program_.interner());
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
    summary_ = SummarizeDb(db_);
    return ProgramIr::LiftSigma(program_, *translated_, program_.interner());
  }

  PassContext Context() {
    PassContext ctx;
    ctx.db = &summary_;
    return ctx;
  }

  uint32_t Pred(const std::string& name) const {
    uint32_t id = program_.interner()->Lookup(name);
    EXPECT_NE(id, Interner::kNotFound) << name;
    return id;
  }

  DistributionRegistry registry_ = DistributionRegistry::Builtins();
  Program program_;
  std::optional<TranslatedProgram> translated_;
  FactStore db_;
  DbSummary summary_;
};

TEST(ColumnDomainTest, JoinValueSaturatesToTopPastCap) {
  ColumnDomain d;
  EXPECT_TRUE(d.JoinValue(Value::Int(1), 2));
  EXPECT_FALSE(d.JoinValue(Value::Int(1), 2));  // already present
  EXPECT_TRUE(d.JoinValue(Value::Int(2), 2));
  EXPECT_FALSE(d.top);
  EXPECT_FALSE(d.Contains(Value::Int(3)));
  EXPECT_TRUE(d.JoinValue(Value::Int(3), 2));  // third value blows the cap
  EXPECT_TRUE(d.top);
  EXPECT_TRUE(d.Contains(Value::Int(99)));
  // Joining into ⊤ never changes anything again.
  EXPECT_FALSE(d.JoinValue(Value::Int(4), 2));
}

TEST_F(OptPassTest, SummarizeDbReportsRowsAndColumnDomains) {
  Lift("p(X) :- e(X, Y).\n", "e(1,2).\ne(1,3).\n");
  const auto& e = summary_.predicates.at(Pred("e"));
  EXPECT_EQ(e.rows, 2u);
  ASSERT_EQ(e.columns.size(), 2u);
  EXPECT_FALSE(e.columns[0].top);
  EXPECT_EQ(e.columns[0].values.size(), 1u);  // {1}
  EXPECT_EQ(e.columns[1].values.size(), 2u);  // {2, 3}
  EXPECT_TRUE(summary_.Present(Pred("e")));
  EXPECT_FALSE(summary_.Present(Pred("p")));
}

TEST_F(OptPassTest, AnalyzeDomainsPropagatesPresenceAndConstants) {
  ProgramIr ir =
      Lift("p(X) :- e(X).\nq(X) :- missing(X).\n", "e(5).\n");
  DomainAnalysis analysis = AnalyzeDomains(ir, summary_, /*max_domain=*/4);
  EXPECT_TRUE(analysis.present.count(Pred("e")));
  EXPECT_TRUE(analysis.present.count(Pred("p")));
  EXPECT_FALSE(analysis.present.count(Pred("q")));
  EXPECT_FALSE(analysis.present.count(Pred("missing")));
  const auto& p_cols = analysis.domains.at(Pred("p"));
  ASSERT_EQ(p_cols.size(), 1u);
  EXPECT_FALSE(p_cols[0].top);
  EXPECT_TRUE(p_cols[0].Contains(Value::Int(5)));
  EXPECT_EQ(p_cols[0].values.size(), 1u);
}

TEST_F(OptPassTest, SpecializationSubstitutesSingletonDomains) {
  ProgramIr ir = Lift("p(X) :- e(X).\n", "e(5).\n");
  OptCounters counters;
  size_t rewrites = SpecializationPass(&ir, Context(), &counters);
  EXPECT_EQ(rewrites, 1u);
  EXPECT_EQ(counters.rules_specialized, 1u);
  EXPECT_EQ(counters.predicates_specialized, 1u);
  // X's derived domain is the singleton {5}: the variable is gone.
  EXPECT_NE(ir.Dump().find("p(5) :- e(5)."), std::string::npos) << ir.Dump();
}

TEST_F(OptPassTest, SpecializationSplitsSmallJoinDomains) {
  // X joins a and b and meets the 2-element domain {1, 2}: the rule splits
  // into one copy per constant (never more than max_split).
  ProgramIr ir = Lift("p(X) :- a(X), b(X).\n",
                      "a(1).\na(2).\nb(1).\nb(2).\nb(3).\n");
  OptCounters counters;
  size_t rewrites = SpecializationPass(&ir, Context(), &counters);
  EXPECT_EQ(rewrites, 1u);
  EXPECT_EQ(counters.rules_specialized, 1u);
  ASSERT_EQ(ir.rules().size(), 2u) << ir.Dump();
  EXPECT_NE(ir.Dump().find("p(1) :- a(1), b(1)."), std::string::npos)
      << ir.Dump();
  EXPECT_NE(ir.Dump().find("p(2) :- a(2), b(2)."), std::string::npos)
      << ir.Dump();
}

TEST_F(OptPassTest, DeadRuleEliminationDropsUnfirableRules) {
  ProgramIr ir = Lift(
      "p(X) :- e(X).\n"
      "q(X) :- f(X).\n"  // f has no facts and no defining rule
      "s :- e(7).\n",    // 7 is outside e's column domain {1}
      "e(1).\n");
  OptCounters counters;
  size_t removed = DeadRuleEliminationPass(&ir, Context(), &counters);
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(counters.rules_eliminated, 2u);
  ASSERT_EQ(ir.rules().size(), 1u);
  EXPECT_EQ(ir.rules()[0].rule.head.predicate, Pred("p"));

  // Regression: a no-op run must leave the surviving rules untouched (the
  // pass once gutted them by moving into a discarded candidate vector).
  std::string before = ir.Dump();
  EXPECT_EQ(DeadRuleEliminationPass(&ir, Context(), &counters), 0u);
  EXPECT_EQ(ir.Dump(), before);
}

TEST_F(OptPassTest, DemandKeepsBackwardClosureWithActiveResultPairing) {
  ProgramIr ir = Lift(kDemandProgram, kDemandDb);
  // Σ: win rule + coin Active/Result pair + buzz Active/Result pair.
  ASSERT_EQ(ir.rules().size(), 5u);
  OptCounters counters;
  size_t removed = DemandPass(&ir, {Pred("win")}, &counters);
  // Only buzz's two rules fall outside win's backward closure.
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(counters.demand_eliminated_rules, 2u);
  EXPECT_EQ(ir.rules().size(), 3u);
  for (const RuleIr& rule : ir.rules()) {
    EXPECT_NE(rule.rule.head.predicate, Pred("buzz")) << ir.Dump();
  }
  // The Active rule survives via the Active↔Result pairing even though no
  // kept body literal mentions it.
  EXPECT_NE(ir.Dump().find("__active_flip_1_0"), std::string::npos)
      << ir.Dump();
}

TEST_F(OptPassTest, DemandKeepsConstraintsAndTheirSupport) {
  ProgramIr ir = Lift(
      std::string(kDemandProgram) + ":- buzz(X, Y, 1), buzz(Y, X, 1).\n",
      kDemandDb);
  OptCounters counters;
  // The constraint pulls buzz (and everything under it) back into the
  // closure: nothing can be dropped...
  std::string before = ir.Dump();
  EXPECT_EQ(DemandPass(&ir, {Pred("win")}, &counters), 0u);
  // ...and the no-op run must leave the IR bit-identical (regression for
  // the same moved-from bug as the dead-rule pass).
  EXPECT_EQ(ir.Dump(), before);
}

TEST_F(OptPassTest, SubjoinSharingHoistsCommonLeadingJoin) {
  ProgramIr ir = Lift(kNetworkProgram, CliqueDb(4));
  ASSERT_EQ(ir.rules().size(), 4u);
  OptCounters counters;
  size_t shared = SubjoinSharingPass(&ir, &counters);
  EXPECT_EQ(shared, 1u);
  EXPECT_EQ(counters.subjoins_shared, 1u);
  ASSERT_EQ(ir.rules().size(), 5u);

  // Exactly one synthesized aux rule, matched but never emitted.
  size_t aux_count = 0;
  size_t emitters = 0;
  for (const RuleIr& rule : ir.rules()) {
    if (rule.aux_head) {
      ++aux_count;
      EXPECT_TRUE(rule.emit_body.empty());
      EXPECT_EQ(program_.interner()->Name(rule.rule.head.predicate),
                "__join_0");
    }
    if (!rule.emit_body.empty()) ++emitters;
  }
  EXPECT_EQ(aux_count, 1u);
  // Both consumers (the Active rule and the head rule) re-emit their
  // original bodies so G(Σ) stays byte-identical.
  EXPECT_EQ(emitters, 2u);
}

TEST(OptPipelineTest, RunsPassesInFixedOrderAndTimesThem) {
  GDatalog::Options options;
  options.record_ir_dumps = true;
  GDatalog engine = MustCreate(kNetworkProgram, CliqueDb(4),
                               std::move(options));
  const OptStats& stats = engine.opt_stats();
  ASSERT_TRUE(stats.enabled);
  EXPECT_FALSE(stats.demand_applied);
  ASSERT_EQ(stats.passes.size(), 3u);
  EXPECT_EQ(stats.passes[0].name, "specialize");
  EXPECT_EQ(stats.passes[1].name, "dead-rule");
  EXPECT_EQ(stats.passes[2].name, "subjoin-share");
  EXPECT_EQ(stats.rules_in, 4u);
  EXPECT_EQ(stats.rules_out, 5u);  // the shared __join_0 rule
  EXPECT_EQ(stats.counters.subjoins_shared, 1u);

  GDatalog::Options demand_options;
  demand_options.demand_goals = {"win"};
  GDatalog demand = MustCreate(kDemandProgram, kDemandDb,
                               std::move(demand_options));
  ASSERT_TRUE(demand.opt_stats().enabled);
  EXPECT_TRUE(demand.opt_stats().demand_applied);
  ASSERT_EQ(demand.opt_stats().passes.size(), 4u);
  EXPECT_EQ(demand.opt_stats().passes[0].name, "demand");
}

// Golden --dump-ir snapshots. These pin the whole surface at once: rule
// rendering, origin/stratum/aux annotations, adornments, emit bodies, and
// the synthesized-name and float formatting.
TEST(OptPipelineTest, GoldenIrDumpNetworkClique4) {
  GDatalog::Options options;
  options.record_ir_dumps = true;
  GDatalog engine = MustCreate(kNetworkProgram, CliqueDb(4),
                               std::move(options));
  const auto& dumps = engine.opt_stats().dumps;
  ASSERT_EQ(dumps.size(), 4u);
  EXPECT_EQ(dumps.front().first, "initial");
  EXPECT_EQ(dumps.back().first, "after subjoin-share");

  EXPECT_EQ(dumps.front().second,
            R"(ProgramIr: 4 rules
r0 [o0 s2] __active_flip_1_2(0.10000000000000001, X, Y) :- infected(X, 1), connected(X, Y).
    adorn: __active_flip_1_2/bbb <- infected/fb, connected/bf
r1 [o0 s2] infected(Y, __y0) :- __result_flip_1_2(0.10000000000000001, X, Y, __y0), infected(X, 1), connected(X, Y).
    adorn: infected/bb <- __result_flip_1_2/bfff, infected/bb, connected/bb
r2 [o1 s3] uninfected(X) :- router(X), not infected(X, 1).
    adorn: uninfected/b <- router/f, not infected/bb
r3 [o2 sC]  :- uninfected(X), uninfected(Y), connected(X, Y).
    adorn: <- uninfected/f, uninfected/f, connected/bb
)");

  EXPECT_EQ(dumps.back().second,
            R"(ProgramIr: 5 rules
r0 [o0 s2 aux] __join_0(X, Y) :- infected(X, 1), connected(X, Y).
    adorn: __join_0/bb <- infected/fb, connected/bf
r1 [o0 s2] __active_flip_1_2(0.10000000000000001, X, Y) :- __join_0(X, Y).
    adorn: __active_flip_1_2/bbb <- __join_0/ff
    emit: infected(X, 1) connected(X, Y)
r2 [o0 s2] infected(Y, __y0) :- __result_flip_1_2(0.10000000000000001, X, Y, __y0), __join_0(X, Y).
    adorn: infected/bb <- __result_flip_1_2/bfff, __join_0/bb
    emit: __result_flip_1_2(0.10000000000000001, X, Y, __y0) infected(X, 1) connected(X, Y)
r3 [o1 s3] uninfected(X) :- router(X), not infected(X, 1).
    adorn: uninfected/b <- router/f, not infected/bb
r4 [o2 sC]  :- uninfected(X), uninfected(Y), connected(X, Y).
    adorn: <- uninfected/f, uninfected/f, connected/bb
)");
}

TEST(OptPipelineTest, GoldenIrDumpDimeQuarter) {
  GDatalog::Options options;
  options.record_ir_dumps = true;
  GDatalog engine = MustCreate(kDimeQuarterProgram, kDimeQuarterDb,
                               std::move(options));
  const auto& dumps = engine.opt_stats().dumps;
  ASSERT_EQ(dumps.size(), 4u);
  // Specialization both narrows (quarter's X ↦ 3) and splits (dimetail's
  // head rule over dime's domain {1, 2}); nothing dies and nothing shares.
  EXPECT_EQ(dumps.back().second,
            R"(ProgramIr: 6 rules
r0 [o0 s2] __active_flip_1_1(0.5, X) :- dime(X).
    adorn: __active_flip_1_1/bb <- dime/f
r1 [o0 s2] dimetail(1, __y0) :- __result_flip_1_1(0.5, 1, __y0), dime(1).
    adorn: dimetail/bb <- __result_flip_1_1/bbf, dime/b
r2 [o0 s2] dimetail(2, __y0) :- __result_flip_1_1(0.5, 2, __y0), dime(2).
    adorn: dimetail/bb <- __result_flip_1_1/bbf, dime/b
r3 [o1 s3] somedimetail :- dimetail(X, 1).
    adorn: somedimetail/ <- dimetail/fb
r4 [o2 s4] __active_flip_1_1(0.5, 3) :- quarter(3), not somedimetail.
    adorn: __active_flip_1_1/bb <- quarter/b, not somedimetail/
r5 [o2 s4] quartertail(3, __y1) :- __result_flip_1_1(0.5, 3, __y1), quarter(3), not somedimetail.
    adorn: quartertail/bb <- __result_flip_1_1/bbf, quarter/b, not somedimetail/
)");
}

GDatalog::Options GrounderOptions(GrounderKind kind, bool optimize) {
  GDatalog::Options options;
  options.grounder = kind;
  options.optimize = optimize;
  return options;
}

/// The tentpole's core contract: specialization, dead-rule elimination and
/// subjoin sharing preserve the outcome space bit-for-bit — the exported
/// JSON (outcomes, models, events, exact rationals) must match as strings.
TEST(OptPropertyTest, RandomNetworksBitIdenticalWithAndWithoutPasses) {
  Rng rng(0x9e3779b97f4a7c15ull);
  for (int iter = 0; iter < 8; ++iter) {
    int n = 2 + static_cast<int>(rng.NextBounded(2));  // 2..3 routers
    std::string db;
    for (int i = 1; i <= n; ++i) db += "router(" + std::to_string(i) + ").\n";
    for (int i = 1; i <= n; ++i) {
      for (int j = 1; j <= n; ++j) {
        if (i != j && rng.NextBounded(2) == 0) {
          db += "connected(" + std::to_string(i) + "," + std::to_string(j) +
                ").\n";
        }
      }
    }
    db += "infected(1, 1).\n";
    for (GrounderKind kind : {GrounderKind::kSimple, GrounderKind::kPerfect}) {
      GDatalog opt = MustCreate(kNetworkProgram, db,
                                GrounderOptions(kind, /*optimize=*/true));
      GDatalog raw = MustCreate(kNetworkProgram, db,
                                GrounderOptions(kind, /*optimize=*/false));
      EXPECT_TRUE(opt.opt_stats().enabled);
      EXPECT_FALSE(raw.opt_stats().enabled);
      EXPECT_EQ(SpaceJson(opt), SpaceJson(raw))
          << "grounder=" << static_cast<int>(kind) << " db:\n" << db;
    }
  }
}

TEST(OptPropertyTest, RandomDimeQuarterBitIdenticalWithAndWithoutPasses) {
  Rng rng(0xda942042e4dd58b5ull);
  for (int iter = 0; iter < 6; ++iter) {
    int dimes = 1 + static_cast<int>(rng.NextBounded(3));
    std::string db;
    for (int i = 1; i <= dimes; ++i) db += "dime(" + std::to_string(i) + ").\n";
    db += "quarter(" + std::to_string(dimes + 1) + ").\n";
    for (GrounderKind kind : {GrounderKind::kSimple, GrounderKind::kPerfect}) {
      GDatalog opt = MustCreate(kDimeQuarterProgram, db,
                                GrounderOptions(kind, /*optimize=*/true));
      GDatalog raw = MustCreate(kDimeQuarterProgram, db,
                                GrounderOptions(kind, /*optimize=*/false));
      EXPECT_EQ(SpaceJson(opt), SpaceJson(raw))
          << "grounder=" << static_cast<int>(kind) << " dimes=" << dimes;
    }
  }
}

/// Demand is the one pass that coarsens the outcome space; what it must
/// preserve exactly are the goal marginals — and it must strictly shrink
/// the explored space when an irrelevant subsystem exists.
TEST(OptDemandTest, PreservesGoalMarginalsWhileStrictlyPruning) {
  GDatalog full = MustCreate(kDemandProgram, kDemandDb);
  GDatalog::Options options;
  options.demand_goals = {"win"};
  GDatalog demand = MustCreate(kDemandProgram, kDemandDb, std::move(options));
  ASSERT_TRUE(demand.opt_stats().demand_applied);
  EXPECT_GT(demand.opt_stats().counters.demand_eliminated_rules, 0u);

  auto full_space = full.Infer();
  auto demand_space = demand.Infer();
  ASSERT_TRUE(full_space.ok()) << full_space.status().ToString();
  ASSERT_TRUE(demand_space.ok()) << demand_space.status().ToString();
  // 4 chatter pairs × flip ⇒ 16 buzz outcomes per coin side in the full
  // space; demand collapses them to the coin flip alone.
  EXPECT_EQ(full_space->outcomes.size(), 32u);
  EXPECT_EQ(demand_space->outcomes.size(), 2u);

  auto full_atom = full.ParseGroundAtom("win");
  auto demand_atom = demand.ParseGroundAtom("win");
  ASSERT_TRUE(full_atom.ok() && demand_atom.ok());
  auto full_bounds = full_space->Marginal(*full_atom);
  auto demand_bounds = demand_space->Marginal(*demand_atom);
  EXPECT_EQ(full_bounds.lower.ToString(), demand_bounds.lower.ToString());
  EXPECT_EQ(full_bounds.upper.ToString(), demand_bounds.upper.ToString());
  EXPECT_EQ(demand_bounds.lower.ToString(), "1/2");
}

TEST(OptDemandTest, UnknownGoalNamesLeaveDemandOff) {
  GDatalog::Options options;
  options.demand_goals = {"no_such_predicate"};
  GDatalog engine = MustCreate(kDemandProgram, kDemandDb, std::move(options));
  ASSERT_TRUE(engine.opt_stats().enabled);
  EXPECT_FALSE(engine.opt_stats().demand_applied);
  GDatalog full = MustCreate(kDemandProgram, kDemandDb);
  EXPECT_EQ(SpaceJson(engine), SpaceJson(full));
}

TEST(OptReuseTest, WithDatabaseAdoptsPipelineWhenSummaryMatches) {
  GDatalog base = MustCreate(kDimeQuarterProgram, kDimeQuarterDb);
  ASSERT_TRUE(base.opt_stats().enabled);
  EXPECT_FALSE(base.opt_stats().pipeline_reused);

  // Identical database ⇒ identical summary ⇒ the optimized Σ_Π is adopted.
  auto same = GDatalog::WithDatabase(base, kDimeQuarterDb);
  ASSERT_TRUE(same.ok()) << same.status().ToString();
  EXPECT_TRUE(same->opt_stats().pipeline_reused);
  EXPECT_EQ(SpaceJson(*same), SpaceJson(base));

  // A database with different column domains forces a fresh pipeline run,
  // and the result must agree with an engine built from scratch.
  const std::string changed_db = "dime(1).\ndime(2).\ndime(3).\nquarter(4).\n";
  auto changed = GDatalog::WithDatabase(base, changed_db);
  ASSERT_TRUE(changed.ok()) << changed.status().ToString();
  EXPECT_FALSE(changed->opt_stats().pipeline_reused);
  EXPECT_TRUE(changed->opt_stats().enabled);
  GDatalog fresh = MustCreate(kDimeQuarterProgram, changed_db);
  EXPECT_EQ(SpaceJson(*changed), SpaceJson(fresh));
}

TEST(OptRegistryTest, DemandEnginesAreCachedPerGoalSignature) {
  EXPECT_EQ(ProgramRegistry::DemandSignature({"b", "a", "b"}), "a,b");

  ProgramRegistry registry;
  ProgramSpec spec;
  spec.program_text = kDemandProgram;
  spec.db_text = kDemandDb;
  auto info = registry.Register(spec);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  auto entry = registry.Find(info->id);
  ASSERT_NE(entry, nullptr);

  auto first = registry.DemandEngine(*entry, {"win"});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE((*first)->opt_stats().demand_applied);
  // Same signature, different order/duplicates: a cache hit, same engine.
  auto second = registry.DemandEngine(*entry, {"win", "win"});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());
  EXPECT_EQ(registry.opt_counters().demand_engines_built, 1u);
  EXPECT_EQ(registry.opt_counters().demand_cache_hits, 1u);

  // A same-summary database swap adopts the optimized program; swapping to
  // a summary-changing database does not.
  auto swapped = registry.ReplaceDatabase(info->id, kDemandDb);
  ASSERT_TRUE(swapped.ok());
  EXPECT_EQ(registry.opt_counters().db_replacements, 1u);
  EXPECT_EQ(registry.opt_counters().pipeline_reuses, 1u);
  auto widened = registry.ReplaceDatabase(info->id, "chatter(9).\n");
  ASSERT_TRUE(widened.ok());
  EXPECT_EQ(registry.opt_counters().db_replacements, 2u);
  EXPECT_EQ(registry.opt_counters().pipeline_reuses, 1u);
  // The fresh entry starts with an empty demand cache (stale demand
  // engines must never serve the new database).
  auto fresh_entry = registry.Find(info->id);
  ASSERT_NE(fresh_entry, nullptr);
  EXPECT_TRUE(fresh_entry->demand_engines.empty());
}

std::vector<Tuple> SortedQuery(const FactStore& store, const Program& pi,
                               const std::string& pattern) {
  auto rows = DatalogEvaluator::Query(store, pi, pattern);
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  std::vector<Tuple> sorted = std::move(rows).value();
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

TEST(OptEvaluatorTest, MaterializeMatchesWithPipelineOnAndOff) {
  Rng rng(0xc2b2ae3d27d4eb4full);
  for (int iter = 0; iter < 10; ++iter) {
    std::string db;
    for (int i = 1; i <= 5; ++i) {
      for (int j = 1; j <= 5; ++j) {
        if (rng.NextBounded(3) == 0) {
          db += "edge(" + std::to_string(i) + "," + std::to_string(j) + ").\n";
        }
      }
    }
    db += "edge(1,2).\n";  // never empty
    auto prog = ParseProgram(
        "path(X, Y) :- edge(X, Y).\n"
        "path(X, Y) :- path(X, Z), edge(Z, Y).\n"
        "unreached(X) :- edge(X, Y), not path(1, X).\n");
    ASSERT_TRUE(prog.ok());
    auto facts = ParseFacts(db, prog->interner());
    ASSERT_TRUE(facts.ok());
    auto evaluator = DatalogEvaluator::Create(std::move(prog).value());
    ASSERT_TRUE(evaluator.ok()) << evaluator.status().ToString();

    DatalogEvaluator::Stats opt_stats;
    auto opt_model = evaluator->Materialize(*facts, &opt_stats);
    ASSERT_TRUE(opt_model.ok()) << opt_model.status().ToString();
    EXPECT_TRUE(opt_stats.opt.enabled);

    evaluator->set_optimize(false);
    DatalogEvaluator::Stats raw_stats;
    auto raw_model = evaluator->Materialize(*facts, &raw_stats);
    ASSERT_TRUE(raw_model.ok());
    EXPECT_FALSE(raw_stats.opt.enabled);
    evaluator->set_optimize(true);

    for (const char* pattern : {"path(X, Y)", "unreached(X)"}) {
      EXPECT_EQ(SortedQuery(opt_model->facts, evaluator->program(), pattern),
                SortedQuery(raw_model->facts, evaluator->program(), pattern))
          << pattern << " diverged on db:\n" << db;
    }
  }
}

TEST(OptEnvTest, GdlogNoOptDisablesEveryPipeline) {
  ASSERT_EQ(::setenv("GDLOG_NO_OPT", "1", 1), 0);
  EXPECT_TRUE(OptDisabledByEnv());
  GDatalog disabled = MustCreate(kDemandProgram, kDemandDb);
  EXPECT_FALSE(disabled.opt_stats().enabled);

  // "0" and empty mean "not disabled".
  ASSERT_EQ(::setenv("GDLOG_NO_OPT", "0", 1), 0);
  EXPECT_FALSE(OptDisabledByEnv());
  ASSERT_EQ(::setenv("GDLOG_NO_OPT", "", 1), 0);
  EXPECT_FALSE(OptDisabledByEnv());

  ASSERT_EQ(::unsetenv("GDLOG_NO_OPT"), 0);
  EXPECT_FALSE(OptDisabledByEnv());
  GDatalog enabled = MustCreate(kDemandProgram, kDemandDb);
  EXPECT_TRUE(enabled.opt_stats().enabled);
}

}  // namespace
}  // namespace gdlog
