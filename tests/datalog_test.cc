// The standalone Datalog¬ evaluator: stratified materialization, semi-naive
// correctness against the probabilistic engine's single-outcome path,
// constraints, queries, and stats.
#include <gtest/gtest.h>

#include <algorithm>

#include "ast/parser.h"
#include "datalog/evaluator.h"
#include "gdatalog/engine.h"

namespace gdlog {
namespace {

Result<DatalogEvaluator> MakeEval(const std::string& text) {
  auto prog = ParseProgram(text);
  if (!prog.ok()) return prog.status();
  return DatalogEvaluator::Create(std::move(prog).value());
}

FactStore Facts(const std::string& text, const Program& pi) {
  auto store = ParseFacts(text, const_cast<Program&>(pi).interner());
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(store).value();
}

TEST(Datalog, TransitiveClosure) {
  auto eval = MakeEval(
      "path(X, Y) :- edge(X, Y).\n"
      "path(X, Z) :- path(X, Y), edge(Y, Z).");
  ASSERT_TRUE(eval.ok()) << eval.status().ToString();
  FactStore db = Facts("edge(1,2). edge(2,3). edge(3,4).", eval->program());
  auto model = eval->Materialize(db);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model->consistent);
  uint32_t path = eval->program().interner()->Lookup("path");
  EXPECT_EQ(model->facts.Count(path), 6u);  // all ordered pairs i<j
}

TEST(Datalog, StratifiedNegationComplement) {
  auto eval = MakeEval(
      "reach(X) :- start(X).\n"
      "reach(Y) :- reach(X), edge(X, Y).\n"
      "unreached(X) :- node(X), not reach(X).");
  ASSERT_TRUE(eval.ok());
  FactStore db = Facts(
      "start(1). node(1). node(2). node(3). node(4). edge(1,2). edge(2,3).",
      eval->program());
  auto model = eval->Materialize(db);
  ASSERT_TRUE(model.ok());
  uint32_t unreached = eval->program().interner()->Lookup("unreached");
  ASSERT_EQ(model->facts.Count(unreached), 1u);
  EXPECT_TRUE(model->facts.Contains(unreached, {Value::Int(4)}));
}

TEST(Datalog, RejectsDeltaPrograms) {
  auto eval = MakeEval("c(flip<0.5>).");
  ASSERT_FALSE(eval.ok());
  EXPECT_EQ(eval.status().code(), StatusCode::kInvalidArgument);
}

TEST(Datalog, RejectsNonStratified) {
  auto eval = MakeEval("a :- not b. b :- not a.");
  ASSERT_FALSE(eval.ok());
  EXPECT_EQ(eval.status().code(), StatusCode::kNotStratified);
}

TEST(Datalog, ConstraintsDetectViolations) {
  auto eval = MakeEval(
      "big(X) :- size(X, Y), threshold(T), above(Y, T).\n"
      ":- big(X), forbidden(X).");
  ASSERT_TRUE(eval.ok()) << eval.status().ToString();
  FactStore ok_db = Facts(
      "size(a, 5). threshold(3). above(5, 3). forbidden(b).",
      eval->program());
  auto ok_model = eval->Materialize(ok_db);
  ASSERT_TRUE(ok_model.ok());
  EXPECT_TRUE(ok_model->consistent);

  FactStore bad_db = Facts(
      "size(a, 5). threshold(3). above(5, 3). forbidden(a).",
      eval->program());
  auto bad_model = eval->Materialize(bad_db);
  ASSERT_TRUE(bad_model.ok());
  EXPECT_FALSE(bad_model->consistent);
  EXPECT_FALSE(bad_model->violations.empty());
}

TEST(Datalog, ConstraintWithNegation) {
  auto eval = MakeEval(
      "covered(X) :- item(X), box(B), in(X, B).\n"
      ":- item(X), not covered(X).");
  ASSERT_TRUE(eval.ok());
  FactStore complete =
      Facts("item(1). box(b). in(1, b).", eval->program());
  auto m1 = eval->Materialize(complete);
  EXPECT_TRUE(m1->consistent);
  FactStore incomplete = Facts("item(1). item(2). box(b). in(1, b).",
                               eval->program());
  auto m2 = eval->Materialize(incomplete);
  EXPECT_FALSE(m2->consistent);
}

TEST(Datalog, StatsAreMeaningful) {
  auto eval = MakeEval(
      "path(X, Y) :- edge(X, Y).\n"
      "path(X, Z) :- path(X, Y), edge(Y, Z).");
  ASSERT_TRUE(eval.ok());
  std::string db_text;
  for (int i = 1; i < 20; ++i) {
    db_text += "edge(" + std::to_string(i) + "," + std::to_string(i + 1) + ").";
  }
  FactStore db = Facts(db_text, eval->program());
  DatalogEvaluator::Stats stats;
  auto model = eval->Materialize(db, &stats);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(stats.rounds, 2u);          // chain forces many rounds
  EXPECT_EQ(stats.derived_facts, 190u); // 20*19/2 paths
  EXPECT_GE(stats.rule_applications, stats.derived_facts);
  // Compiled-join counters: the recursive rule probes edge's index every
  // round through plans reused from the cache.
  EXPECT_GT(stats.match.bindings, 0u);
  EXPECT_GT(stats.match.index_hits, 0u);
  EXPECT_GT(stats.match.plan_cache_hits, 0u);
  EXPECT_GT(stats.match.plans_compiled, 0u);
}

TEST(Datalog, FactsOnlyProgramInBody) {
  // A program whose rules live entirely in the database (facts in program
  // text are also supported).
  auto eval = MakeEval("p(1). q(X) :- p(X).");
  ASSERT_TRUE(eval.ok());
  FactStore db;  // empty
  auto model = eval->Materialize(db);
  ASSERT_TRUE(model.ok());
  uint32_t q = eval->program().interner()->Lookup("q");
  EXPECT_TRUE(model->facts.Contains(q, {Value::Int(1)}));
}

TEST(Datalog, QueryPatterns) {
  auto eval = MakeEval(
      "path(X, Y) :- edge(X, Y).\n"
      "path(X, Z) :- path(X, Y), edge(Y, Z).");
  ASSERT_TRUE(eval.ok());
  FactStore db = Facts("edge(1,2). edge(2,3). edge(3,3).", eval->program());
  auto model = eval->Materialize(db);
  ASSERT_TRUE(model.ok());

  auto from1 = DatalogEvaluator::Query(model->facts, eval->program(),
                                       "path(1, X)");
  ASSERT_TRUE(from1.ok());
  EXPECT_EQ(from1->size(), 2u);  // 1→2, 1→3

  auto self = DatalogEvaluator::Query(model->facts, eval->program(),
                                      "path(X, X)");
  ASSERT_TRUE(self.ok());
  ASSERT_EQ(self->size(), 1u);  // 3→3
  EXPECT_EQ((*self)[0][0], Value::Int(3));

  auto ground = DatalogEvaluator::Query(model->facts, eval->program(),
                                        "path(1, 3)");
  ASSERT_TRUE(ground.ok());
  EXPECT_EQ(ground->size(), 1u);

  auto miss = DatalogEvaluator::Query(model->facts, eval->program(),
                                      "path(3, 1)");
  ASSERT_TRUE(miss.ok());
  EXPECT_TRUE(miss->empty());

  EXPECT_FALSE(DatalogEvaluator::Query(model->facts, eval->program(),
                                       "path(X, Y) :- edge(X, Y)")
                   .ok());
}

TEST(Datalog, AgreesWithProbabilisticEngineOnPlainPrograms) {
  // The same plain program evaluated through the probabilistic chase (one
  // outcome, one stable model) must give the same instance over sch(Π).
  const char* program =
      "reach(X) :- start(X).\n"
      "reach(Y) :- reach(X), edge(X, Y).\n"
      "island(X) :- node(X), not reach(X).\n"
      "linked(X, Y) :- edge(X, Y).\n"
      "linked(X, Y) :- edge(Y, X).";
  const char* db_text =
      "start(1). node(1). node(2). node(3). node(4). node(5). "
      "edge(1,2). edge(2,3). edge(4,5).";

  auto eval_prog = ParseProgram(program);
  ASSERT_TRUE(eval_prog.ok());
  auto eval = DatalogEvaluator::Create(*eval_prog);
  ASSERT_TRUE(eval.ok());
  FactStore db = Facts(db_text, eval->program());
  auto model = eval->Materialize(db);
  ASSERT_TRUE(model.ok());

  auto engine = GDatalog::Create(program, db_text);
  ASSERT_TRUE(engine.ok());
  auto space = engine->Infer();
  ASSERT_TRUE(space.ok());
  ASSERT_EQ(space->outcomes.size(), 1u);
  ASSERT_EQ(space->outcomes[0].models.size(), 1u);
  StableModel stable = OutcomeSpace::StripAuxiliary(
      *space->outcomes[0].models.begin(), engine->translated());

  std::vector<GroundAtom> materialized = model->facts.AllFacts();
  std::sort(materialized.begin(), materialized.end());
  std::sort(stable.begin(), stable.end());
  // Interners differ; compare rendered strings.
  auto render = [](const std::vector<GroundAtom>& atoms,
                   const Interner* names) {
    std::vector<std::string> out;
    for (const GroundAtom& a : atoms) out.push_back(a.ToString(names));
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(render(materialized, eval->program().interner()),
            render(stable, engine->program().interner()));
}

TEST(Datalog, MultiStratumPipeline) {
  // Four strata: base → derived → negation → negation-of-negation.
  auto eval = MakeEval(
      "holds(X) :- fact(X).\n"
      "missing(X) :- universe(X), not holds(X).\n"
      "complete :- universe(X), not missing_any.\n"
      "missing_any :- missing(X).");
  ASSERT_TRUE(eval.ok()) << eval.status().ToString();
  FactStore full =
      Facts("universe(1). universe(2). fact(1). fact(2).", eval->program());
  auto m1 = eval->Materialize(full);
  ASSERT_TRUE(m1.ok());
  uint32_t complete = eval->program().interner()->Lookup("complete");
  EXPECT_EQ(m1->facts.Count(complete), 1u);

  FactStore partial =
      Facts("universe(1). universe(2). fact(1).", eval->program());
  auto m2 = eval->Materialize(partial);
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(m2->facts.Count(complete), 0u);
}

}  // namespace
}  // namespace gdlog
