// Appendix E of the paper: dimes are tossed; only if no dime shows tail is
// the quarter tossed. Stratified negation — the perfect grounder skips the
// superfluous quarter flip whenever a dime shows tail, while the simple
// grounder grounds it regardless. Both induce the same event probabilities
// (Theorem 5.3), with different outcome granularity.
//
//   $ ./build/examples/dime_quarter
#include <cstdio>

#include "gdatalog/compare.h"
#include "gdatalog/engine.h"

namespace {

constexpr const char* kProgram = R"(
  dimetail(X, flip<0.5>[X]) :- dime(X).
  somedimetail :- dimetail(X, 1).
  quartertail(X, flip<0.5>[X]) :- quarter(X), not somedimetail.
)";

constexpr const char* kDb = "dime(1). dime(2). quarter(3).";

gdlog::GDatalog MakeEngine(gdlog::GrounderKind kind) {
  gdlog::GDatalog::Options options;
  options.grounder = kind;
  auto engine = gdlog::GDatalog::Create(kProgram, kDb, std::move(options));
  if (!engine.ok()) {
    std::fprintf(stderr, "error: %s\n", engine.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(engine).value();
}

}  // namespace

int main() {
  gdlog::GDatalog perfect = MakeEngine(gdlog::GrounderKind::kPerfect);
  gdlog::GDatalog simple = MakeEngine(gdlog::GrounderKind::kSimple);

  auto perfect_space = perfect.Infer();
  auto simple_space = simple.Infer();
  if (!perfect_space.ok() || !simple_space.ok()) {
    std::fprintf(stderr, "inference failed\n");
    return 1;
  }

  std::printf("perfect grounder: %zu possible outcomes\n",
              perfect_space->outcomes.size());
  const gdlog::Interner* names = perfect.program().interner();
  for (const gdlog::PossibleOutcome& o : perfect_space->outcomes) {
    std::printf("  Pr = %-5s choices:", o.prob.ToString().c_str());
    for (const auto& [active, value] : o.choices.entries()) {
      std::printf(" %s->%s", active.ToString(names).c_str(),
                  value.ToString(names).c_str());
    }
    std::printf("\n");
  }
  std::printf("simple grounder:  %zu possible outcomes (superfluous quarter "
              "choices)\n\n",
              simple_space->outcomes.size());

  auto q = perfect.ParseGroundAtom("quartertail(3, 1)");
  std::printf("P(quarter shows tail), perfect: %s\n",
              perfect_space->Marginal(*q).lower.ToString().c_str());
  auto q2 = simple.ParseGroundAtom("quartertail(3, 1)");
  std::printf("P(quarter shows tail), simple:  %s\n",
              simple_space->Marginal(*q2).lower.ToString().c_str());

  // Theorem 5.3: the perfect semantics is as good as the simple one.
  auto cmp = gdlog::IsAsGoodAs(*perfect_space, *simple_space, names);
  if (!cmp.ok()) {
    std::fprintf(stderr, "comparison failed: %s\n",
                 cmp.status().ToString().c_str());
    return 1;
  }
  std::printf("\nperfect as-good-as simple (Theorem 5.3): %s (%zu events)\n",
              cmp->as_good ? "yes" : "NO", cmp->events_compared);
  return cmp->as_good ? 0 : 1;
}
