// The Appendix-B biased die, in a small game: two players roll dice with
// different biases; the higher roll wins; ties are re-rolled... except
// GDatalog¬ has no recursion over re-rolls with fresh randomness per
// attempt unless we index the event signature by attempt — which is
// exactly what Δ-term event signatures are for. We bound attempts and
// condition on the game finishing.
//
//   $ ./build/examples/die_game
#include <cstdio>

#include "gdatalog/engine.h"

int main() {
  // Player 1 rolls a fair-ish die, player 2 a loaded one (6 with p=1/2).
  // attempt(A) enumerates bounded retry rounds; the game resolves at the
  // first attempt whose rolls differ; a constraint conditions on the game
  // resolving within the bound.
  const char* program = R"(
    roll(1, A, die<0.2, 0.2, 0.2, 0.2, 0.1, 0.1>[1, A]) :- attempt(A).
    roll(2, A, die<0.1, 0.1, 0.1, 0.1, 0.1, 0.5>[2, A]) :- attempt(A).

    tie(A) :- roll(1, A, V), roll(2, A, V).
    % The first non-tie attempt decides the game: attempt A is decisive if
    % it is not a tie and all earlier attempts were ties.
    earlier_nontie(A) :- attempt(A), attempt(B), before(B, A), not tie(B).
    decisive(A) :- attempt(A), not tie(A), not earlier_nontie(A).

    wins(1) :- decisive(A), roll(1, A, V1), roll(2, A, V2), greater(V1, V2).
    wins(2) :- decisive(A), roll(1, A, V1), roll(2, A, V2), greater(V2, V1).

    resolved :- decisive(A).
    :- not resolved.
  )";

  // Two attempts; greater/2 as an explicit EDB relation over die faces.
  std::string db = "attempt(1). attempt(2). before(1, 2).\n";
  for (int i = 1; i <= 6; ++i) {
    for (int j = 1; j < i; ++j) {
      db += "greater(" + std::to_string(i) + "," + std::to_string(j) + ").\n";
    }
  }

  auto engine = gdlog::GDatalog::Create(program, db);
  if (!engine.ok()) {
    std::fprintf(stderr, "error: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("grounder: %.*s, stratified: %s\n",
              static_cast<int>(engine->grounder().name().size()),
              engine->grounder().name().data(),
              engine->stratified() ? "yes" : "no");

  auto space = engine->Infer();
  if (!space.ok()) {
    std::fprintf(stderr, "error: %s\n", space.status().ToString().c_str());
    return 1;
  }
  std::printf("outcomes: %zu, P(resolved within 2 attempts) = %s\n",
              space->outcomes.size(),
              space->ProbConsistent().ToString().c_str());

  auto p1 = engine->ParseGroundAtom("wins(1)");
  auto p2 = engine->ParseGroundAtom("wins(2)");
  auto w1 = space->MarginalGivenConsistent(*p1);
  auto w2 = space->MarginalGivenConsistent(*p2);
  if (w1 && w2) {
    std::printf("P(player 1 wins | resolved) = %s (= %.4f)\n",
                w1->lower.ToString().c_str(), w1->lower.value());
    std::printf("P(player 2 wins | resolved) = %s (= %.4f)\n",
                w2->lower.ToString().c_str(), w2->lower.value());
    double total = w1->lower.value() + w2->lower.value();
    std::printf("sanity: winners partition resolved games: %.6f (expect 1)\n",
                total);
    return total > 0.999999 && total < 1.000001 ? 0 : 1;
  }
  return 1;
}
