// Monte-Carlo inference at scales where exact chase enumeration blows up:
// malware domination on larger random networks, estimated by sampling
// chase paths (Theorem 4.6 makes path sampling faithful to the semantics).
//
//   $ ./build/examples/virus_monte_carlo [routers] [samples]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "gdatalog/engine.h"
#include "gdatalog/sampler.h"
#include "util/rng.h"

namespace {

constexpr const char* kProgram = R"(
  infected(Y, flip<0.3>[X, Y]) :- infected(X, 1), connected(X, Y).
  uninfected(X) :- router(X), not infected(X, 1).
  :- uninfected(X), uninfected(Y), connected(X, Y).
)";

// An Erdős–Rényi-ish random symmetric network, deterministic from the seed.
std::string RandomNetwork(int n, double edge_prob, uint64_t seed) {
  gdlog::Rng rng(seed);
  std::string db;
  for (int i = 1; i <= n; ++i) db += "router(" + std::to_string(i) + ").\n";
  for (int i = 1; i <= n; ++i) {
    for (int j = i + 1; j <= n; ++j) {
      if (rng.NextDouble() < edge_prob) {
        db += "connected(" + std::to_string(i) + "," + std::to_string(j) + ").\n";
        db += "connected(" + std::to_string(j) + "," + std::to_string(i) + ").\n";
      }
    }
  }
  db += "infected(1, 1).\n";
  return db;
}

}  // namespace

int main(int argc, char** argv) {
  int routers = argc > 1 ? std::atoi(argv[1]) : 12;
  size_t samples = argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 2000;

  std::string db = RandomNetwork(routers, 0.3, /*seed=*/2023);
  auto engine = gdlog::GDatalog::Create(kProgram, db);
  if (!engine.ok()) {
    std::fprintf(stderr, "error: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  gdlog::ChaseOptions options;
  options.max_depth = 10000;
  gdlog::MonteCarloEstimator estimator(&engine->chase(), options);

  std::printf("routers=%d edges~0.3, samples=%zu\n", routers, samples);
  auto dominated = estimator.EstimateProbInconsistent(samples, /*seed=*/42);
  if (!dominated.ok()) {
    std::fprintf(stderr, "error: %s\n", dominated.status().ToString().c_str());
    return 1;
  }
  // Note the flip of perspective vs the exact example: here we report the
  // NOT-dominated probability too.
  std::printf("P(not dominated) ~= %.4f +- %.4f  (truncated walks: %zu)\n",
              dominated->mean, 2 * dominated->std_error, dominated->truncated);
  std::printf("P(dominated)     ~= %.4f\n", 1.0 - dominated->mean);

  // Brave/cautious marginal of a specific router's infection.
  auto atom = engine->ParseGroundAtom("infected(2, 1)");
  if (atom.ok()) {
    auto upper = estimator.EstimateMarginalUpper(samples, 43, *atom);
    if (upper.ok()) {
      std::printf("P(infected(2)) ~= %.4f +- %.4f\n", upper->mean,
                  2 * upper->std_error);
    }
  }
  return 0;
}
