// The paper's running example (1.1 / 3.1 / 3.6 / 3.10): malware spreading
// through a router network; we compute the probability the malware
// *dominates* the network (all routers infected or isolated) exactly, on
// the 3-router clique (paper answer: 0.19) and on ring/star topologies.
//
//   $ ./build/examples/network_resilience [n]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "gdatalog/engine.h"

namespace {

constexpr const char* kProgram = R"(
  % Infected routers attack neighbours with success rate 10%.
  infected(Y, flip<0.1>[X, Y]) :- infected(X, 1), connected(X, Y).
  % Routers that never get infected are uninfected.
  uninfected(X) :- router(X), not infected(X, 1).
  % Domination fails iff two uninfected routers stay connected.
  :- uninfected(X), uninfected(Y), connected(X, Y).
)";

std::string Clique(int n) {
  std::string db;
  for (int i = 1; i <= n; ++i) db += "router(" + std::to_string(i) + ").\n";
  for (int i = 1; i <= n; ++i) {
    for (int j = 1; j <= n; ++j) {
      if (i != j) {
        db += "connected(" + std::to_string(i) + "," + std::to_string(j) + ").\n";
      }
    }
  }
  db += "infected(1, 1).\n";
  return db;
}

std::string Ring(int n) {
  std::string db;
  for (int i = 1; i <= n; ++i) db += "router(" + std::to_string(i) + ").\n";
  for (int i = 1; i <= n; ++i) {
    int j = i % n + 1;
    db += "connected(" + std::to_string(i) + "," + std::to_string(j) + ").\n";
    db += "connected(" + std::to_string(j) + "," + std::to_string(i) + ").\n";
  }
  db += "infected(1, 1).\n";
  return db;
}

std::string Star(int n) {
  std::string db = "router(1).\n";
  for (int i = 2; i <= n; ++i) {
    db += "router(" + std::to_string(i) + ").\n";
    db += "connected(1," + std::to_string(i) + ").\n";
    db += "connected(" + std::to_string(i) + ",1).\n";
  }
  db += "infected(1, 1).\n";
  return db;
}

void Report(const char* topology, const std::string& db) {
  auto engine = gdlog::GDatalog::Create(kProgram, db);
  if (!engine.ok()) {
    std::fprintf(stderr, "error: %s\n", engine.status().ToString().c_str());
    std::exit(1);
  }
  auto space = engine->Infer();
  if (!space.ok()) {
    std::fprintf(stderr, "error: %s\n", space.status().ToString().c_str());
    std::exit(1);
  }
  // Dominated networks are exactly the outcomes that keep a stable model
  // (the constraint removes all models of non-dominated configurations).
  std::printf("%-8s outcomes=%5zu  P(dominated) = %-12s (= %.6f)\n",
              topology, space->outcomes.size(),
              space->ProbConsistent().ToString().c_str(),
              space->ProbConsistent().value());
}

}  // namespace

int main(int argc, char** argv) {
  int n = argc > 1 ? std::atoi(argv[1]) : 3;
  if (n < 2 || n > 6) {
    std::fprintf(stderr, "n must be in [2, 6] (exact inference)\n");
    return 1;
  }
  std::printf("Malware domination probability, infection rate 0.1, n=%d\n\n",
              n);
  Report("clique", Clique(n));
  Report("ring", Ring(n));
  Report("star", Star(n));

  std::printf(
      "\nPaper check (Example 3.10): clique n=3 must give 19/100 = 0.19\n");
  auto engine = gdlog::GDatalog::Create(kProgram, Clique(3));
  auto space = engine->Infer();
  std::printf("measured: %s\n", space->ProbConsistent().ToString().c_str());
  return space->ProbConsistent() == gdlog::Prob(gdlog::Rational(19, 100)) ? 0
                                                                          : 1;
}
