// Quickstart: the fair-coin program from §3 of "Generative Datalog with
// Stable Negation" end to end — parse, infer, inspect outcomes and events.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "gdatalog/engine.h"

int main() {
  // A GDatalog¬ program: flip a fair coin; heads (0) is forbidden by a
  // constraint; tails (1) leaves two stable models via an even negation
  // cycle.
  const char* program = R"(
    coin(flip<0.5>).
    :- coin(0).
    aux1 :- coin(1), not aux2.
    aux2 :- coin(1), not aux1.
  )";

  auto engine = gdlog::GDatalog::Create(program, /*database_text=*/"");
  if (!engine.ok()) {
    std::fprintf(stderr, "engine error: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  std::printf("program:\n%s\n", engine->program().ToString().c_str());
  std::printf("stratified: %s, grounder: %.*s\n\n",
              engine->stratified() ? "yes" : "no",
              static_cast<int>(engine->grounder().name().size()),
              engine->grounder().name().data());

  // Exact inference: explore the chase tree exhaustively.
  auto space = engine->Infer();
  if (!space.ok()) {
    std::fprintf(stderr, "inference error: %s\n",
                 space.status().ToString().c_str());
    return 1;
  }

  std::printf("possible outcomes: %zu (total mass %s)\n",
              space->outcomes.size(), space->finite_mass.ToString().c_str());
  const gdlog::Interner* names = engine->program().interner();
  for (const gdlog::PossibleOutcome& outcome : space->outcomes) {
    std::printf("- outcome with probability %s, %zu stable model(s)\n",
                outcome.prob.ToString().c_str(), outcome.models.size());
    std::printf("  choices:\n");
    for (const auto& [active, value] : outcome.choices.entries()) {
      std::printf("    %s -> %s\n", active.ToString(names).c_str(),
                  value.ToString(names).c_str());
    }
    for (const gdlog::StableModel& model : outcome.models) {
      std::printf("  stable model:");
      for (const gdlog::GroundAtom& atom :
           gdlog::OutcomeSpace::StripAuxiliary(model, engine->translated())) {
        std::printf(" %s", atom.ToString(names).c_str());
      }
      std::printf("\n");
    }
  }

  std::printf("\nP(program has a stable model) = %s\n",
              space->ProbConsistent().ToString().c_str());
  std::printf("P(no stable model)            = %s\n",
              space->ProbInconsistent().ToString().c_str());
  return 0;
}
