// Bayesian-style conditioning with the PPDL constraint component: the
// classic burglary/earthquake/alarm network. Constraints encode observed
// evidence; conditioning on "some stable model exists" (= evidence holds)
// turns the prior chase distribution into the posterior.
//
//   $ ./build/examples/alarm_conditioning
#include <cstdio>

#include "gdatalog/engine.h"

int main() {
  const char* program = R"(
    burglary(flip<0.1>).
    earthquake(flip<0.2>).
    alarm :- burglary(1).
    alarm :- earthquake(1).
    % Each neighbour independently calls when the alarm rings.
    calls(X, flip<0.7>[X]) :- neighbor(X), alarm.
    % Observed evidence: john called. Outcomes violating the evidence have
    % no stable model and are conditioned away.
    :- not calls(john, 1).
  )";
  const char* db = "neighbor(john). neighbor(mary).";

  auto engine = gdlog::GDatalog::Create(program, db);
  if (!engine.ok()) {
    std::fprintf(stderr, "error: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  auto space = engine->Infer();
  if (!space.ok()) {
    std::fprintf(stderr, "error: %s\n", space.status().ToString().c_str());
    return 1;
  }

  std::printf("outcomes: %zu, evidence probability P(john calls) = %s\n",
              space->outcomes.size(),
              space->ProbConsistent().ToString().c_str());

  auto report = [&](const char* label, const char* atom_text) {
    auto atom = engine->ParseGroundAtom(atom_text);
    if (!atom.ok()) return;
    auto posterior = space->MarginalGivenConsistent(*atom);
    auto prior = space->Marginal(*atom);
    if (posterior) {
      std::printf("%-28s prior(joint)=%-8s posterior=%s (= %.5f)\n", label,
                  prior.lower.ToString().c_str(),
                  posterior->lower.ToString().c_str(),
                  posterior->lower.value());
    }
  };

  // P(burglary | john calls), P(earthquake | john calls),
  // P(mary also calls | john calls).
  report("P(burglary | evidence)", "burglary(1)");
  report("P(earthquake | evidence)", "earthquake(1)");
  report("P(mary calls | evidence)", "calls(mary, 1)");

  // Sanity: P(alarm | john calls) must be 1 — john cannot call otherwise.
  auto alarm = engine->ParseGroundAtom("alarm");
  auto posterior = space->MarginalGivenConsistent(*alarm);
  std::printf("P(alarm | evidence)          = %s\n",
              posterior->lower.ToString().c_str());
  return 0;
}
