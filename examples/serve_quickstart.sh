#!/usr/bin/env bash
# Serving quickstart: boot gdlogd, register the paper's network-resilience
# program over curl, query it exactly (twice — the second answer comes from
# the inference cache), ask for marginals, sample, and read the counters.
#
# Usage: examples/serve_quickstart.sh [build_dir]   (default: build)
#
# Everything is plain curl + JSON, so this doubles as the HTTP API tour:
#   POST /programs          register a program+DB once, get a stable id
#   POST /query             exact inference (cached by fingerprint);
#                           body is byte-identical to `gdlog_cli --json`
#   POST /sample            Monte-Carlo estimates (never cached)
#   GET  /healthz, /stats   liveness and cache/request counters
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir=${1:-build}
gdlogd=$build_dir/tools/gdlogd
if [ ! -x "$gdlogd" ]; then
  echo "error: $gdlogd not built (cmake -B build -S . && cmake --build build -j)" >&2
  exit 1
fi

port=18090
"$gdlogd" --port $port &
daemon=$!
trap 'kill -TERM $daemon 2>/dev/null; wait $daemon 2>/dev/null' EXIT
for _ in $(seq 1 100); do
  curl -fsS "http://127.0.0.1:$port/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done

base="http://127.0.0.1:$port"

echo "== register the 3-router clique (Examples 1.1/3.6; expect P(consistent) = 19/100)"
id=$(curl -fsS -X POST "$base/programs" -d '{
  "program": "infected(Y, flip<0.1>[X, Y]) :- infected(X, 1), connected(X, Y). uninfected(X) :- router(X), not infected(X, 1). :- uninfected(X), uninfected(Y), connected(X, Y).",
  "db": "router(1). router(2). router(3). connected(1,2). connected(2,1). connected(1,3). connected(3,1). connected(2,3). connected(3,2). infected(1, 1)."
}' | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
echo "program id: $id"

echo
echo "== exact query (cold: runs the chase)"
curl -fsS -X POST "$base/query" -d "{\"program_id\":\"$id\"}"

echo
echo "== the same query again (served from the cache — see /stats below)"
curl -fsS -X POST "$base/query" -d "{\"program_id\":\"$id\"}"

echo
echo "== credal marginal bounds for one atom, conditioned on consistency"
curl -fsS -X POST "$base/query" -d "{\"program_id\":\"$id\",
  \"queries\":[\"infected(2, 1)\"], \"condition\":true}"

echo
echo "== Monte-Carlo estimate (never cached)"
curl -fsS -X POST "$base/sample" -d "{\"program_id\":\"$id\",
  \"samples\":2000, \"seed\":7, \"queries\":[\"infected(2, 1)\"]}"

echo
echo "== counters: one miss (the cold chase), the repeat was a hit"
curl -fsS "$base/stats"
