#ifndef GDLOG_OBS_TRACE_H_
#define GDLOG_OBS_TRACE_H_

#include <string>
#include <string_view>

namespace gdlog {

/// The header that carries a request's trace id through the serving layer
/// and across fleet dispatches.
inline constexpr char kTraceHeader[] = "X-Gdlog-Trace";

/// A fresh process-unique trace id: 16 lowercase hex characters mixed from
/// a monotonic counter, the clock, and the pid. Not cryptographic — just
/// collision-resistant enough to join one request's log lines across a
/// fleet.
std::string GenerateTraceId();

/// Whether a client-supplied trace id is safe to echo and forward: 1–64
/// characters of [A-Za-z0-9_-]. Anything else (header injection, binary
/// junk) is replaced by a generated id.
bool IsValidTraceId(std::string_view id);

}  // namespace gdlog

#endif  // GDLOG_OBS_TRACE_H_
