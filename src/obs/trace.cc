#include "obs/trace.h"

#include <atomic>
#include <cstdint>

#include "obs/histogram.h"

#include <unistd.h>

namespace gdlog {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::string GenerateTraceId() {
  static std::atomic<uint64_t> counter{0};
  uint64_t mix = SplitMix64(MonotonicNanos() ^
                            (static_cast<uint64_t>(getpid()) << 32) ^
                            counter.fetch_add(1, std::memory_order_relaxed));
  char buf[17];
  static const char* hex = "0123456789abcdef";
  for (int i = 0; i < 16; ++i) {
    buf[i] = hex[(mix >> (60 - 4 * i)) & 0xf];
  }
  buf[16] = '\0';
  return std::string(buf, 16);
}

bool IsValidTraceId(std::string_view id) {
  if (id.empty() || id.size() > 64) return false;
  for (char c : id) {
    bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
              (c >= 'A' && c <= 'Z') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace gdlog
