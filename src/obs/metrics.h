#ifndef GDLOG_OBS_METRICS_H_
#define GDLOG_OBS_METRICS_H_

#include <cstdint>
#include <set>
#include <string>
#include <string_view>

#include "obs/histogram.h"

namespace gdlog {

/// The Prometheus text-exposition content type.
inline constexpr char kMetricsContentType[] =
    "text/plain; version=0.0.4; charset=utf-8";

/// Builds one Prometheus text-exposition payload
/// (https://prometheus.io/docs/instrumenting/exposition_formats/): every
/// line is `# HELP name help`, `# TYPE name type`, or
/// `name{labels} value`. The `# HELP`/`# TYPE` pair is emitted once per
/// metric family, on first use, so a labeled family declared once may add
/// any number of samples. Emission order is the call order — callers keep
/// it deterministic by iterating sorted containers.
class MetricsWriter {
 public:
  /// `labels` is the preformatted inner label list (`a="x",b="y"`), empty
  /// for none; build values with EscapeLabelValue.
  void Counter(std::string_view name, std::string_view help,
               std::string_view labels, uint64_t value);
  /// A counter whose unit is seconds, fed from an integer nanosecond total
  /// (rule/chase time accumulators) — rendered exactly, like `_sum`.
  void CounterSeconds(std::string_view name, std::string_view help,
                      std::string_view labels, uint64_t nanos);
  void Gauge(std::string_view name, std::string_view help,
             std::string_view labels, double value);
  /// Emits the full histogram family: cumulative `_bucket{le=...}` samples
  /// (including `le="+Inf"`), `_sum` in seconds, and `_count`.
  void Histogram(std::string_view name, std::string_view help,
                 std::string_view labels,
                 const LatencyHistogram::Snapshot& snapshot);

  const std::string& text() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void Header(std::string_view name, std::string_view help,
              std::string_view type);
  void Sample(std::string_view name, std::string_view suffix,
              std::string_view labels, std::string_view value);

  std::string out_;
  std::set<std::string, std::less<>> declared_;
};

/// A label value with `\`, `"`, and newlines escaped per the exposition
/// format.
std::string EscapeLabelValue(std::string_view value);

/// An exact decimal rendering of a nanosecond count as seconds
/// ("0.0001", "209.7152"), trailing zeros trimmed — used for `le` bounds
/// and `_sum` values so the exposition is deterministic.
std::string FormatSecondsFromNanos(uint64_t ns);

}  // namespace gdlog

#endif  // GDLOG_OBS_METRICS_H_
