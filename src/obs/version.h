#ifndef GDLOG_OBS_VERSION_H_
#define GDLOG_OBS_VERSION_H_

namespace gdlog {

/// The build's version string: `git describe --tags --always --dirty`
/// captured at configure time (src/CMakeLists.txt bakes it into
/// version.cc's compile definitions), or "unknown" outside a git checkout.
/// Surfaced on GET /v1/healthz, /v1/metrics (gdlog_build_info), and
/// `gdlogd --version`.
const char* GdlogVersion();

}  // namespace gdlog

#endif  // GDLOG_OBS_VERSION_H_
