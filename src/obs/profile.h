#ifndef GDLOG_OBS_PROFILE_H_
#define GDLOG_OBS_PROFILE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gdlog {

/// Accumulated work of one Σ_Π rule across every grounding fixpoint of a
/// chase (or one Materialize run). The counts — calls, bindings,
/// derivations — are exactly reproducible for every thread count: the chase
/// node set and each node's exactly-once semi-naive fixpoint are
/// schedule-independent. time_ns is wall time and NOT deterministic; it is
/// excluded from every byte-identity surface.
struct RuleProfile {
  uint64_t calls = 0;        ///< (rule, pivot) executor invocations
  uint64_t bindings = 0;     ///< join rows enumerated for this rule
  uint64_t derivations = 0;  ///< ground instances emitted (pre-dedup)
  uint64_t time_ns = 0;      ///< wall time in the join executor
  int stratum = -1;          ///< perfect-grounder stratum; -1 = none
  void Add(const RuleProfile& other);
};

/// Per-chase-depth node accounting: how many nodes were expanded at each
/// depth and where their wall time went.
struct DepthProfile {
  uint64_t nodes = 0;
  uint64_t ground_time_ns = 0;
  uint64_t solve_time_ns = 0;
  void Add(const DepthProfile& other);
};

/// One chase's profile: per-rule and per-depth accumulators plus chase-wide
/// totals. Collected lock-free — each chase worker owns one ChaseProfile,
/// merged in worker-index order after the frontier drains, so the merged
/// counts are identical for every schedule.
struct ChaseProfile {
  std::vector<RuleProfile> rules;    ///< indexed by Σ_Π rule index
  std::vector<DepthProfile> depths;  ///< indexed by chase depth
  uint64_t nodes = 0;         ///< chase nodes expanded
  uint64_t ground_calls = 0;  ///< Ground/Extend invocations
  uint64_t ground_time_ns = 0;
  uint64_t solve_calls = 0;  ///< stable-model solves (leaves)
  uint64_t solve_time_ns = 0;
  /// Attribution state while collecting (set by the perfect grounder around
  /// each stratum's fixpoint); not an accumulator, never merged.
  int current_stratum = -1;

  /// Grow-on-demand accessors for the indexed vectors.
  RuleProfile& Rule(size_t index);
  DepthProfile& Depth(size_t depth);

  /// Folds `other` in; rule/depth vectors extend to the longer length.
  void Merge(const ChaseProfile& other);
  bool empty() const { return nodes == 0 && rules.empty(); }
};

/// Installs a ChaseProfile as the calling thread's profile sink for the
/// scope's lifetime (restoring the previous sink on exit). The grounding
/// fixpoint reads Current() once per invocation; a null sink — the default
/// — costs one thread-local read and a branch, nothing else. The chase
/// installs the worker's accumulator around each node so the virtual
/// Grounder interface needs no signature change.
class ProfileScope {
 public:
  explicit ProfileScope(ChaseProfile* sink);
  ~ProfileScope();
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

  /// The calling thread's current sink, or nullptr.
  static ChaseProfile* Current();

 private:
  ChaseProfile* saved_;
};

/// Renders the per-rule table, sorted by time descending (ties by rule
/// index), for gdlog_cli --profile. `rule_labels` is indexed like
/// profile.rules (missing labels render as "r<i>"). The header flags the
/// time column as non-deterministic.
std::string FormatChaseProfileTable(const ChaseProfile& profile,
                                    const std::vector<std::string>& rule_labels);

}  // namespace gdlog

#endif  // GDLOG_OBS_PROFILE_H_
