#include "obs/histogram.h"

#include <chrono>

namespace gdlog {

uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void LatencyHistogram::RecordSeconds(double seconds) {
  if (seconds <= 0.0) {
    RecordNanos(0);
    return;
  }
  RecordNanos(static_cast<uint64_t>(seconds * 1e9));
}

LatencyHistogram::Snapshot LatencyHistogram::TakeSnapshot() const {
  Snapshot snap;
  for (size_t i = 0; i < kBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_ns = sum_ns_.load(std::memory_order_relaxed);
  return snap;
}

}  // namespace gdlog
