#ifndef GDLOG_OBS_HISTOGRAM_H_
#define GDLOG_OBS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace gdlog {

/// The observability clock: monotonic wall-clock nanoseconds. Readings are
/// only ever subtracted from each other; the epoch is unspecified.
uint64_t MonotonicNanos();

/// A fixed-boundary log-scale latency histogram. The boundaries double from
/// 100µs up to ~210s (22 finite buckets) plus one +Inf overflow bucket —
/// wide enough to cover a cache hit and a multi-minute fleet job on the
/// same scale. Recording is wait-free and allocation-free: one relaxed
/// fetch_add on the bucket, the count, and the nanosecond sum. Relaxed
/// ordering means a concurrent snapshot may observe a record's count
/// without its sum (or vice versa) — fine for monitoring, which only ever
/// reads monotone totals.
class LatencyHistogram {
 public:
  static constexpr size_t kFiniteBuckets = 22;
  static constexpr size_t kBuckets = kFiniteBuckets + 1;  ///< last = +Inf

  /// Upper bound (inclusive, Prometheus `le`) of finite bucket i.
  static constexpr uint64_t UpperBoundNanos(size_t i) {
    return 100'000ull << i;
  }

  void RecordNanos(uint64_t ns) {
    buckets_[BucketIndex(ns)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  /// Negative durations (a clock hiccup) clamp to zero.
  void RecordSeconds(double seconds);

  /// Which bucket a duration lands in: the smallest bound >= ns, or the
  /// overflow bucket.
  static size_t BucketIndex(uint64_t ns) {
    for (size_t i = 0; i < kFiniteBuckets; ++i) {
      if (ns <= UpperBoundNanos(i)) return i;
    }
    return kFiniteBuckets;
  }

  /// One coherent-enough view (see class comment) of the counters.
  struct Snapshot {
    std::array<uint64_t, kBuckets> buckets{};  ///< per-bucket, NOT cumulative
    uint64_t count = 0;
    uint64_t sum_ns = 0;
  };
  Snapshot TakeSnapshot() const;

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_ns_{0};
};

}  // namespace gdlog

#endif  // GDLOG_OBS_HISTOGRAM_H_
