#include "obs/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace gdlog {

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string FormatSecondsFromNanos(uint64_t ns) {
  char buf[48];
  const uint64_t kNanos = 1000000000;
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%09" PRIu64, ns / kNanos,
                ns % kNanos);
  std::string out(buf);
  size_t last = out.find_last_not_of('0');
  if (out[last] == '.') last += 1;  // keep one digit after the point
  out.erase(last + 1);
  return out;
}

void MetricsWriter::Header(std::string_view name, std::string_view help,
                           std::string_view type) {
  if (declared_.find(name) != declared_.end()) return;
  declared_.emplace(name);
  out_ += "# HELP ";
  out_ += name;
  out_ += ' ';
  out_ += help;
  out_ += "\n# TYPE ";
  out_ += name;
  out_ += ' ';
  out_ += type;
  out_ += '\n';
}

void MetricsWriter::Sample(std::string_view name, std::string_view suffix,
                           std::string_view labels, std::string_view value) {
  out_ += name;
  out_ += suffix;
  if (!labels.empty()) {
    out_ += '{';
    out_ += labels;
    out_ += '}';
  }
  out_ += ' ';
  out_ += value;
  out_ += '\n';
}

void MetricsWriter::Counter(std::string_view name, std::string_view help,
                            std::string_view labels, uint64_t value) {
  Header(name, help, "counter");
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  Sample(name, "", labels, buf);
}

void MetricsWriter::CounterSeconds(std::string_view name,
                                   std::string_view help,
                                   std::string_view labels, uint64_t nanos) {
  Header(name, help, "counter");
  Sample(name, "", labels, FormatSecondsFromNanos(nanos));
}

void MetricsWriter::Gauge(std::string_view name, std::string_view help,
                          std::string_view labels, double value) {
  Header(name, help, "gauge");
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  Sample(name, "", labels, buf);
}

void MetricsWriter::Histogram(std::string_view name, std::string_view help,
                              std::string_view labels,
                              const LatencyHistogram::Snapshot& snapshot) {
  Header(name, help, "histogram");
  std::string bucket_labels;
  uint64_t cumulative = 0;
  char buf[24];
  for (size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    cumulative += snapshot.buckets[i];
    bucket_labels.assign(labels);
    if (!bucket_labels.empty()) bucket_labels += ',';
    bucket_labels += "le=\"";
    if (i < LatencyHistogram::kFiniteBuckets) {
      bucket_labels +=
          FormatSecondsFromNanos(LatencyHistogram::UpperBoundNanos(i));
    } else {
      bucket_labels += "+Inf";
    }
    bucket_labels += '"';
    std::snprintf(buf, sizeof(buf), "%" PRIu64, cumulative);
    Sample(name, "_bucket", bucket_labels, buf);
  }
  Sample(name, "_sum", labels, FormatSecondsFromNanos(snapshot.sum_ns));
  std::snprintf(buf, sizeof(buf), "%" PRIu64, snapshot.count);
  Sample(name, "_count", labels, buf);
}

}  // namespace gdlog
