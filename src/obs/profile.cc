#include "obs/profile.h"

#include <algorithm>
#include <cstdio>

namespace gdlog {

namespace {
thread_local ChaseProfile* g_profile_sink = nullptr;
}  // namespace

void RuleProfile::Add(const RuleProfile& other) {
  calls += other.calls;
  bindings += other.bindings;
  derivations += other.derivations;
  time_ns += other.time_ns;
  if (stratum < 0) stratum = other.stratum;
}

void DepthProfile::Add(const DepthProfile& other) {
  nodes += other.nodes;
  ground_time_ns += other.ground_time_ns;
  solve_time_ns += other.solve_time_ns;
}

RuleProfile& ChaseProfile::Rule(size_t index) {
  if (rules.size() <= index) rules.resize(index + 1);
  return rules[index];
}

DepthProfile& ChaseProfile::Depth(size_t depth) {
  if (depths.size() <= depth) depths.resize(depth + 1);
  return depths[depth];
}

void ChaseProfile::Merge(const ChaseProfile& other) {
  if (rules.size() < other.rules.size()) rules.resize(other.rules.size());
  for (size_t i = 0; i < other.rules.size(); ++i) rules[i].Add(other.rules[i]);
  if (depths.size() < other.depths.size()) depths.resize(other.depths.size());
  for (size_t i = 0; i < other.depths.size(); ++i) {
    depths[i].Add(other.depths[i]);
  }
  nodes += other.nodes;
  ground_calls += other.ground_calls;
  ground_time_ns += other.ground_time_ns;
  solve_calls += other.solve_calls;
  solve_time_ns += other.solve_time_ns;
}

ProfileScope::ProfileScope(ChaseProfile* sink) : saved_(g_profile_sink) {
  g_profile_sink = sink;
}

ProfileScope::~ProfileScope() { g_profile_sink = saved_; }

ChaseProfile* ProfileScope::Current() { return g_profile_sink; }

std::string FormatChaseProfileTable(
    const ChaseProfile& profile, const std::vector<std::string>& rule_labels) {
  std::string out;
  char line[256];
  auto ms = [](uint64_t ns) { return static_cast<double>(ns) / 1e6; };
  std::snprintf(line, sizeof(line),
                "chase profile: %llu nodes, ground %llu calls %.3f ms, "
                "solve %llu calls %.3f ms (times non-deterministic)\n",
                static_cast<unsigned long long>(profile.nodes),
                static_cast<unsigned long long>(profile.ground_calls),
                ms(profile.ground_time_ns),
                static_cast<unsigned long long>(profile.solve_calls),
                ms(profile.solve_time_ns));
  out += line;
  std::snprintf(line, sizeof(line), "%10s %8s %10s %12s %12s %12s  %s\n",
                "time_ms", "stratum", "calls", "bindings", "derived", "",
                "rule");
  out += line;

  std::vector<size_t> order;
  for (size_t i = 0; i < profile.rules.size(); ++i) {
    if (profile.rules[i].calls != 0 || profile.rules[i].derivations != 0) {
      order.push_back(i);
    }
  }
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return profile.rules[a].time_ns > profile.rules[b].time_ns;
  });
  for (size_t i : order) {
    const RuleProfile& r = profile.rules[i];
    char stratum[16];
    if (r.stratum >= 0) {
      std::snprintf(stratum, sizeof(stratum), "%d", r.stratum);
    } else {
      std::snprintf(stratum, sizeof(stratum), "-");
    }
    std::string label =
        i < rule_labels.size() ? rule_labels[i] : "r" + std::to_string(i);
    std::snprintf(line, sizeof(line), "%10.3f %8s %10llu %12llu %12llu %12s  ",
                  ms(r.time_ns), stratum,
                  static_cast<unsigned long long>(r.calls),
                  static_cast<unsigned long long>(r.bindings),
                  static_cast<unsigned long long>(r.derivations), "");
    out += line;
    out += label;
    out += '\n';
  }

  for (size_t d = 0; d < profile.depths.size(); ++d) {
    const DepthProfile& dp = profile.depths[d];
    if (dp.nodes == 0) continue;
    std::snprintf(line, sizeof(line),
                  "depth %3zu: %llu nodes, ground %.3f ms, solve %.3f ms\n", d,
                  static_cast<unsigned long long>(dp.nodes),
                  ms(dp.ground_time_ns), ms(dp.solve_time_ns));
    out += line;
  }
  return out;
}

}  // namespace gdlog
