#include "obs/version.h"

#ifndef GDLOG_BUILD_VERSION
#define GDLOG_BUILD_VERSION "unknown"
#endif

namespace gdlog {

const char* GdlogVersion() { return GDLOG_BUILD_VERSION; }

}  // namespace gdlog
