#include "ground/dependency_graph.h"

#include <algorithm>
#include <cassert>
#include <functional>

namespace gdlog {

DependencyGraph::DependencyGraph(const Program& program) {
  for (const Rule& rule : program.rules()) {
    if (rule.is_constraint) {
      // Constraints contribute no head; their bodies still mention
      // predicates, which we record as vertices so strata cover them.
      for (const Literal& lit : rule.body) vertices_.insert(lit.atom.predicate);
      continue;
    }
    uint32_t head = rule.head.predicate;
    vertices_.insert(head);
    for (const Literal& lit : rule.body) {
      uint32_t from = lit.atom.predicate;
      vertices_.insert(from);
      edges_.push_back(Edge{from, head, lit.negated});
      adj_[from].emplace_back(head, lit.negated);
    }
  }
  ComputeSccs();
}

void DependencyGraph::ComputeSccs() {
  // Tarjan's algorithm, iterative to survive deep graphs.
  std::map<uint32_t, int> index, lowlink;
  std::map<uint32_t, bool> on_stack;
  std::vector<uint32_t> stack;
  int next_index = 0;
  std::vector<std::vector<uint32_t>> sccs;  // reverse topological order

  struct Frame {
    uint32_t v;
    size_t child = 0;
  };

  for (uint32_t root : vertices_) {
    if (index.count(root)) continue;
    std::vector<Frame> frames;
    frames.push_back(Frame{root});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto& succs = adj_[f.v];
      if (f.child < succs.size()) {
        uint32_t w = succs[f.child++].first;
        if (!index.count(w)) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back(Frame{w});
        } else if (on_stack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
      } else {
        if (lowlink[f.v] == index[f.v]) {
          std::vector<uint32_t> scc;
          for (;;) {
            uint32_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc.push_back(w);
            if (w == f.v) break;
          }
          std::sort(scc.begin(), scc.end());
          sccs.push_back(std::move(scc));
        }
        uint32_t v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          lowlink[frames.back().v] =
              std::min(lowlink[frames.back().v], lowlink[v]);
        }
      }
    }
  }

  // Tarjan emits SCCs in reverse topological order.
  std::reverse(sccs.begin(), sccs.end());
  components_ = std::move(sccs);
  for (size_t i = 0; i < components_.size(); ++i) {
    for (uint32_t p : components_[i]) strata_[p] = i;
  }

  // Stratified iff no negative edge stays inside one SCC.
  stratified_ = true;
  for (const Edge& e : edges_) {
    if (e.negative && strata_.at(e.from) == strata_.at(e.to)) {
      stratified_ = false;
      break;
    }
  }
}

size_t DependencyGraph::ComponentOf(uint32_t predicate) const {
  auto it = strata_.find(predicate);
  assert(it != strata_.end());
  return it->second;
}

bool DependencyGraph::DependsOn(uint32_t p, uint32_t r) const {
  // BFS from r along edges; p depends on r iff p reachable from r.
  std::set<uint32_t> seen;
  std::vector<uint32_t> queue{r};
  seen.insert(r);
  while (!queue.empty()) {
    uint32_t v = queue.back();
    queue.pop_back();
    auto it = adj_.find(v);
    if (it == adj_.end()) continue;
    for (auto [w, neg] : it->second) {
      (void)neg;
      if (w == p) return true;
      if (seen.insert(w).second) queue.push_back(w);
    }
  }
  return false;
}

std::string DependencyGraph::ToDot(const Interner* interner) const {
  std::string out = "digraph dg {\n";
  auto name = [&](uint32_t p) {
    return interner != nullptr ? interner->Name(p) : "p" + std::to_string(p);
  };
  for (const Edge& e : edges_) {
    out += "  \"" + name(e.from) + "\" -> \"" + name(e.to) + "\"";
    if (e.negative) out += " [style=dashed]";
    out += ";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace gdlog
