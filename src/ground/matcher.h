#ifndef GDLOG_GROUND_MATCHER_H_
#define GDLOG_GROUND_MATCHER_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "ast/atom.h"
#include "ground/fact_store.h"

namespace gdlog {

/// A variable binding: interned variable id → constant.
using Binding = std::unordered_map<uint32_t, Value>;

/// Applies a binding to a term; the term must be ground under `binding`.
Value ApplyTerm(const Term& term, const Binding& binding);

/// Applies a binding to an atom (all variables must be bound).
GroundAtom ApplyAtom(const Atom& atom, const Binding& binding);

/// Enumerates homomorphisms h from a conjunction of atoms into a FactStore
/// (the h(A) ⊆ B matching of §3). Uses greedy bound-first atom ordering and
/// per-column hash indices. The callback returns false to stop enumeration.
///
/// This is the *reference* matcher: simple, interpreted, one hash lookup
/// per variable per row. The production hot path is the compiled join
/// machinery in ground/join_plan.h; the property tests hold the two
/// bit-identical on randomized programs.
class Matcher {
 public:
  explicit Matcher(const FactStore* store) : store_(store) {}

  /// Enumerates every homomorphism from `atoms` into the store, invoking
  /// `cb` with the complete binding. Returns false iff the callback aborted.
  bool Match(const std::vector<const Atom*>& atoms,
             const std::function<bool(const Binding&)>& cb) const;

  /// Like Match, but atom `pivot_index` is matched only against the rows in
  /// `pivot_rows` (semi-naive evaluation: the pivot must match a delta
  /// fact). `pivot_rows` elements must have the pivot's predicate.
  bool MatchWithPivot(const std::vector<const Atom*>& atoms,
                      size_t pivot_index,
                      const std::vector<Tuple>& pivot_rows,
                      const std::function<bool(const Binding&)>& cb) const;

 private:
  bool MatchRec(const std::vector<const Atom*>& atoms,
                std::vector<bool>& done, size_t remaining, Binding& binding,
                const std::function<bool(const Binding&)>& cb) const;

  /// Tries to unify `atom` against `row` under `binding`; on success appends
  /// newly bound variables to `trail` and returns true.
  static bool Unify(const Atom& atom, const Tuple& row, Binding& binding,
                    std::vector<uint32_t>& trail);

  /// Chooses the not-yet-matched atom with the fewest candidate rows under
  /// the current binding.
  size_t PickNext(const std::vector<const Atom*>& atoms,
                  const std::vector<bool>& done,
                  const Binding& binding) const;

  /// Enumerates candidate rows for `atom` under `binding` (using the best
  /// bound column's index when available).
  bool ForEachCandidate(const Atom& atom, const Binding& binding,
                        const std::function<bool(const Tuple&)>& cb) const;

  const FactStore* store_;
};

}  // namespace gdlog

#endif  // GDLOG_GROUND_MATCHER_H_
