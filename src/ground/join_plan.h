#ifndef GDLOG_GROUND_JOIN_PLAN_H_
#define GDLOG_GROUND_JOIN_PLAN_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "ast/rule.h"
#include "ground/fact_store.h"
#include "ground/ground_rule.h"

namespace gdlog {

/// Counters for the compiled-join hot path, reported per Materialize /
/// Ground (and surfaced by `gdlog_cli --stats`). "Hits" count candidate-set
/// fetches, i.e. one per (partial binding, atom) pair, not per row.
struct MatchStats {
  uint64_t index_hits = 0;            ///< Single-column index fetches.
  uint64_t composite_index_hits = 0;  ///< Multi-column index fetches.
  uint64_t full_scans = 0;            ///< Whole-relation scans.
  uint64_t plan_cache_hits = 0;       ///< Plan reuses (rebind, no recompile).
  uint64_t plans_compiled = 0;        ///< Join orders chosen from scratch.
  uint64_t bindings = 0;              ///< Complete bindings enumerated.

  void Add(const MatchStats& other) {
    index_hits += other.index_hits;
    composite_index_hits += other.composite_index_hits;
    full_scans += other.full_scans;
    plan_cache_hits += other.plan_cache_hits;
    plans_compiled += other.plans_compiled;
    bindings += other.bindings;
  }
};

/// A dense binding frame: one rule's variables as a flat Value array plus a
/// bound bitmap, indexed by the slots of RuleSlots (ast/rule.h). This is
/// what replaces the `std::unordered_map<uint32_t, Value>` Binding on the
/// hot path — ApplyTerm/Unify/Instantiate become indexed loads.
///
/// The executor's op sequences are static (which slot is bound where is
/// decided at compile time), so backtracking does not need to clear bits;
/// the bitmap exists for assertions and for callers inspecting a frame
/// outside a completed match.
class BindingFrame {
 public:
  /// Prepares the frame for a rule with `num_slots` variables; all slots
  /// start unbound.
  void Reset(size_t num_slots) {
    values_.assign(num_slots, Value());
    words_.assign((num_slots + 63) / 64, 0);
  }

  size_t size() const { return values_.size(); }

  bool IsBound(uint16_t slot) const {
    return (words_[slot >> 6] >> (slot & 63)) & 1;
  }

  const Value& Get(uint16_t slot) const {
    assert(IsBound(slot) && "reading an unbound slot");
    return values_[slot];
  }

  void Bind(uint16_t slot, const Value& v) {
    values_[slot] = v;
    words_[slot >> 6] |= uint64_t{1} << (slot & 63);
  }

 private:
  std::vector<Value> values_;
  std::vector<uint64_t> words_;
};

/// One column of a compiled atom: a constant or a dense slot.
struct SlotTerm {
  bool is_const = false;
  Value constant;
  uint16_t slot = 0;

  static SlotTerm Const(const Value& v) {
    SlotTerm t;
    t.is_const = true;
    t.constant = v;
    return t;
  }
  static SlotTerm Slot(uint16_t slot) {
    SlotTerm t;
    t.slot = slot;
    return t;
  }

  const Value& Resolve(const BindingFrame& frame) const {
    return is_const ? constant : frame.Get(slot);
  }
};

/// An atom with its terms resolved to slots — both a matchable body atom
/// and an instantiation template for heads / negative literals.
struct CompiledAtom {
  uint32_t predicate = 0;
  std::vector<SlotTerm> cols;

  GroundAtom Instantiate(const BindingFrame& frame) const {
    GroundAtom out;
    out.predicate = predicate;
    out.args.reserve(cols.size());
    for (const SlotTerm& t : cols) out.args.push_back(t.Resolve(frame));
    return out;
  }

  /// Instantiates into a reusable scratch atom (no allocation once the
  /// scratch's capacity has grown) — for negative-body checks that usually
  /// reject.
  void InstantiateInto(const BindingFrame& frame, GroundAtom* out) const {
    out->predicate = predicate;
    out->args.clear();
    for (const SlotTerm& t : cols) out->args.push_back(t.Resolve(frame));
  }
};

/// A rule translated once (at evaluator/grounder construction) into slot
/// form: the expensive classification — variable numbering, term kinds —
/// is paid per rule, not per binding.
struct CompiledRule {
  const Rule* rule = nullptr;  ///< Null for bare bodies (CompileBody).
  RuleSlots slots;
  size_t num_slots = 0;
  std::vector<CompiledAtom> positive;  ///< B+ in body order.
  std::vector<CompiledAtom> negative;  ///< B- in body order.
  bool has_head = false;               ///< False for constraints/bare bodies.
  CompiledAtom head;                   ///< Valid iff has_head (plain heads).

  /// Set for synthesized __join rules (subjoin sharing): complete bindings
  /// insert the instantiated head into the matching instance only — no
  /// GroundRule is ever created from them.
  bool aux_head = false;
  /// Set when the optimizer rewrote the matchable body (subjoin sharing):
  /// InstantiateRule emits emit_positive/emit_negative — the original body
  /// compiled against the same slots — so G(Σ) is unchanged.
  bool has_emit = false;
  std::vector<CompiledAtom> emit_positive;
  std::vector<CompiledAtom> emit_negative;

  /// Stable index for the per-rule profiler (obs/profile.h): the rule's
  /// position in its source program (Σ_Π for the grounders, Π for the
  /// Datalog evaluator). SIZE_MAX = not attributed.
  size_t profile_index = static_cast<size_t>(-1);
};

/// Compiles a rule with a plain (Δ-free) head; the rule must outlive the
/// result. Safe rules only (every negative-body/head variable occurs in the
/// positive body — Program::Validate enforces this).
CompiledRule CompileRule(const Rule& rule);

/// Compiles a bare conjunction of atoms (the query path and tests); the
/// atoms must outlive the result.
CompiledRule CompileBody(const std::vector<const Atom*>& atoms);

/// Compiles `body` — the pre-rewrite body of a rule whose matchable body
/// the optimizer replaced — into `rule`'s emit arrays, against the rule's
/// existing slots. Every variable of `body` must have a slot in the
/// rewritten rule (subjoin sharing guarantees it: the synthesized atom
/// projects every shared-prefix variable).
void AttachEmitBody(CompiledRule* rule, const std::vector<Literal>& body);

/// h(σ) under a complete frame — the compiled form of instantiating a
/// rule into a GroundRule (head, then positive and negative bodies in
/// original literal order, so GroundRule equality/hashing is unchanged).
GroundRule InstantiateRule(const CompiledRule& rule,
                           const BindingFrame& frame);

/// One level of an executable join: which atom to match, how to fetch its
/// candidate rows, and the per-column ops that unify a candidate into the
/// frame. Key columns (those the access path already constrains to equal
/// the probe key) carry no ops.
struct JoinLevel {
  enum class Access : uint8_t {
    kScan,       ///< Iterate every row.
    kIndex,      ///< Probe one column's hash index.
    kComposite,  ///< Probe a multi-column hash index.
  };
  struct Op {
    enum class Kind : uint8_t { kCheckConst, kBindSlot, kCheckSlot };
    Kind kind = Kind::kCheckConst;
    uint16_t col = 0;
    uint16_t slot = 0;
    Value constant;
  };

  uint32_t atom_index = 0;  ///< Into CompiledRule::positive.
  uint32_t predicate = 0;
  uint16_t arity = 0;
  /// Semi-naive old/new discrimination: in a pivot plan, atoms at body
  /// positions *before* the pivot match only rows that existed before the
  /// current delta (each binding is then enumerated exactly once, at its
  /// first delta position, instead of once per delta atom). Candidate
  /// cutoffs are O(1) because index buckets list rows in ascending
  /// insertion order.
  bool restrict_old = false;
  Access access = Access::kScan;
  std::vector<uint16_t> key_cols;  ///< Ascending; 1 for kIndex, ≥2 composite.
  std::vector<SlotTerm> key;       ///< Probe sources, parallel to key_cols.
  std::vector<Op> ops;             ///< Non-key columns, in column order.

  // Handles into the store, resolved by Rebind (valid until the store is
  // next mutated):
  const std::vector<Tuple>* rows = nullptr;
  const FactStore::ColumnIndexMap* index = nullptr;
  const FactStore::CompositeKeyMap* composite = nullptr;
};

/// An executable join plan for one (rule body, pivot) pair: the pivot atom
/// (matched externally against delta rows in semi-naive evaluation) plus
/// the remaining positive atoms in a join order chosen from the store's
/// relation cardinalities at compile time. Compiling replaces the legacy
/// matcher's per-binding PickNext recursion; the order is a performance
/// choice only — any order enumerates the same set of bindings.
struct JoinPlan {
  static constexpr size_t kNoPivot = std::numeric_limits<size_t>::max();

  const CompiledRule* rule = nullptr;
  size_t pivot = kNoPivot;
  size_t num_slots = 0;
  std::vector<JoinLevel> levels;
  /// Unify ops for the pivot atom (every column; nothing is pre-bound).
  std::vector<JoinLevel::Op> pivot_ops;
  size_t pivot_arity = 0;
  /// store->size() when the order was chosen; JoinPlanCache recompiles
  /// when the store has since doubled (selectivity drift).
  size_t store_size_at_compile = 0;
};

/// Chooses a join order for `rule` against `store`'s current cardinalities
/// (greedy: cheapest estimated candidate set first, estimating bucket sizes
/// as rows/distinct per bound column), picks an access path per atom —
/// column index for one bound column, composite index for ≥2 — and
/// compiles the per-column op sequences. With `pivot` != kNoPivot that atom
/// is excluded from the order and compiled into `pivot_ops` instead.
JoinPlan CompileJoinPlan(const CompiledRule& rule, const FactStore& store,
                         size_t pivot = JoinPlan::kNoPivot);

/// Refreshes a plan's store handles (rows/index/composite pointers) after
/// the store mutated. The order and ops are reused — stale order is a
/// performance matter, never a correctness one.
void RebindJoinPlan(JoinPlan* plan, const FactStore& store);

/// A per-invocation cache of compiled join plans, keyed by (rule, pivot).
/// Thread-confined, like the store it binds: create one per fixpoint /
/// materialization invocation. Reuse rebinds handles (cheap); a plan is
/// recompiled when the store has doubled since its order was chosen.
class JoinPlanCache {
 public:
  explicit JoinPlanCache(const FactStore* store) : store_(store) {}

  const JoinPlan& Get(const CompiledRule& rule, size_t pivot,
                      MatchStats* stats);

 private:
  struct Key {
    const CompiledRule* rule;
    size_t pivot;
    bool operator==(const Key& o) const {
      return rule == o.rule && pivot == o.pivot;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<const void*>()(k.rule) * 1099511628211u ^ k.pivot;
    }
  };

  const FactStore* store_;
  std::unordered_map<Key, JoinPlan, KeyHash> plans_;
};

/// The iterative join machine: an explicit cursor stack over the plan's
/// levels, a reusable frame, and a statically-typed callback — no heap
/// allocation and no std::function in the inner loop. One executor is
/// reusable across plans (scratch buffers persist); it is single-threaded,
/// but any number of executors may run concurrently against the same
/// frozen store.
class JoinExecutor {
 public:
  /// Enumerates every complete binding of `plan` (pivot-less). `cb` is
  /// invoked with the frame; returning false aborts. Returns false iff the
  /// callback aborted.
  template <typename CB>
  bool Execute(const JoinPlan& plan, MatchStats* stats, CB&& cb) {
    frame_.Reset(plan.num_slots);
    limits_.assign(plan.levels.size(), UINT32_MAX);
    return RunLevels(plan, stats, cb);
  }

  /// Semi-naive form: the pivot atom is matched only against `pivot_rows`.
  /// With `old_counts` non-null, levels flagged restrict_old see only the
  /// first old_counts[predicate] rows of their relation (absent predicates
  /// count as 0 — an empty "old" store).
  template <typename CB>
  bool ExecuteWithPivot(const JoinPlan& plan,
                        const std::vector<Tuple>& pivot_rows,
                        MatchStats* stats, CB&& cb,
                        const std::unordered_map<uint32_t, uint32_t>*
                            old_counts = nullptr) {
    return ExecuteWithPivotRange(plan, pivot_rows, 0, pivot_rows.size(),
                                 stats, cb, old_counts);
  }

  /// Like ExecuteWithPivot over rows [begin, end) of `pivot_rows` — the
  /// zero-copy form for deltas that are a suffix of a relation's rows.
  template <typename CB>
  bool ExecuteWithPivotRange(const JoinPlan& plan,
                             const std::vector<Tuple>& pivot_rows,
                             size_t begin, size_t end, MatchStats* stats,
                             CB&& cb,
                             const std::unordered_map<uint32_t, uint32_t>*
                                 old_counts = nullptr) {
    assert(plan.pivot != JoinPlan::kNoPivot);
    frame_.Reset(plan.num_slots);
    limits_.clear();
    for (const JoinLevel& level : plan.levels) {
      uint32_t limit = UINT32_MAX;
      if (level.restrict_old && old_counts != nullptr) {
        auto it = old_counts->find(level.predicate);
        limit = it == old_counts->end() ? 0 : it->second;
      }
      limits_.push_back(limit);
    }
    for (size_t i = begin; i < end; ++i) {
      const Tuple& row = pivot_rows[i];
      if (row.size() != plan.pivot_arity) continue;
      if (!TryOps(plan.pivot_ops, row)) continue;
      if (!RunLevels(plan, stats, cb)) return false;
    }
    return true;
  }

 private:
  struct Cursor {
    const std::vector<uint32_t>* bucket = nullptr;  ///< Null → scan.
    size_t pos = 0;
    size_t scan_end = 0;
    uint32_t limit = UINT32_MAX;  ///< Row-index cutoff (restrict_old).
  };

  /// Runs the ops of one level (or the pivot) against a candidate row.
  bool TryOps(const std::vector<JoinLevel::Op>& ops, const Tuple& row) {
    for (const JoinLevel::Op& op : ops) {
      const Value& cell = row[op.col];
      switch (op.kind) {
        case JoinLevel::Op::Kind::kCheckConst:
          if (!(op.constant == cell)) return false;
          break;
        case JoinLevel::Op::Kind::kBindSlot:
          frame_.Bind(op.slot, cell);
          break;
        case JoinLevel::Op::Kind::kCheckSlot:
          if (!(frame_.Get(op.slot) == cell)) return false;
          break;
      }
    }
    return true;
  }

  /// Computes the probe key and positions the cursor on the level's
  /// candidate set. Candidates enumerate in row-insertion order for every
  /// access path (buckets are built in row order), which keeps enumeration
  /// deterministic and access-path-independent.
  void EnterLevel(const JoinLevel& level, Cursor* cursor, uint32_t limit,
                  MatchStats* stats) {
    cursor->pos = 0;
    cursor->limit = limit;
    switch (level.access) {
      case JoinLevel::Access::kScan: {
        ++stats->full_scans;
        cursor->bucket = nullptr;
        cursor->scan_end = std::min<size_t>(level.rows->size(), limit);
        return;
      }
      case JoinLevel::Access::kIndex: {
        ++stats->index_hits;
        cursor->bucket = &kEmptyBucket;
        if (level.index != nullptr) {
          auto it = level.index->find(level.key[0].Resolve(frame_));
          if (it != level.index->end()) cursor->bucket = &it->second;
        }
        return;
      }
      case JoinLevel::Access::kComposite: {
        ++stats->composite_index_hits;
        cursor->bucket = &kEmptyBucket;
        if (level.composite != nullptr) {
          key_scratch_.clear();
          for (const SlotTerm& t : level.key) {
            key_scratch_.push_back(t.Resolve(frame_));
          }
          auto it = level.composite->find(key_scratch_);
          if (it != level.composite->end()) cursor->bucket = &it->second;
        }
        return;
      }
    }
  }

  /// The backtracking loop over plan.levels, starting from the frame as
  /// currently bound (empty, or holding the pivot row's bindings).
  template <typename CB>
  bool RunLevels(const JoinPlan& plan, MatchStats* stats, CB&& cb) {
    const size_t depth = plan.levels.size();
    if (depth == 0) {
      ++stats->bindings;
      return cb(static_cast<const BindingFrame&>(frame_));
    }
    if (cursors_.size() < depth) cursors_.resize(depth);
    size_t level = 0;
    EnterLevel(plan.levels[0], &cursors_[0], limits_[0], stats);
    while (true) {
      const JoinLevel& jl = plan.levels[level];
      Cursor& cur = cursors_[level];
      bool matched = false;
      if (cur.bucket != nullptr) {
        while (cur.pos < cur.bucket->size()) {
          uint32_t idx = (*cur.bucket)[cur.pos];
          // Buckets are ascending by row index, so the old/new cutoff is
          // a break, not a filter.
          if (idx >= cur.limit) {
            cur.pos = cur.bucket->size();
            break;
          }
          ++cur.pos;
          const Tuple& row = (*jl.rows)[idx];
          if (row.size() == jl.arity && TryOps(jl.ops, row)) {
            matched = true;
            break;
          }
        }
      } else {
        while (cur.pos < cur.scan_end) {
          const Tuple& row = (*jl.rows)[cur.pos++];
          if (row.size() == jl.arity && TryOps(jl.ops, row)) {
            matched = true;
            break;
          }
        }
      }
      if (matched) {
        if (level + 1 == depth) {
          ++stats->bindings;
          if (!cb(static_cast<const BindingFrame&>(frame_))) return false;
        } else {
          ++level;
          EnterLevel(plan.levels[level], &cursors_[level], limits_[level],
                     stats);
        }
      } else {
        if (level == 0) return true;
        --level;
      }
    }
  }

  static const std::vector<uint32_t> kEmptyBucket;

  BindingFrame frame_;
  std::vector<Cursor> cursors_;
  std::vector<uint32_t> limits_;  ///< Per-level old/new cutoffs.
  Tuple key_scratch_;
};

}  // namespace gdlog

#endif  // GDLOG_GROUND_JOIN_PLAN_H_
