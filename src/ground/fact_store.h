#ifndef GDLOG_GROUND_FACT_STORE_H_
#define GDLOG_GROUND_FACT_STORE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/interner.h"
#include "util/status.h"
#include "util/value.h"

namespace gdlog {

/// A ground atom R(c̄): predicate id plus a flat tuple of constants.
struct GroundAtom {
  uint32_t predicate = 0;
  Tuple args;

  bool operator==(const GroundAtom& other) const {
    return predicate == other.predicate && args == other.args;
  }
  bool operator<(const GroundAtom& other) const {
    if (predicate != other.predicate) return predicate < other.predicate;
    if (args.size() != other.args.size()) return args.size() < other.args.size();
    for (size_t i = 0; i < args.size(); ++i) {
      if (args[i] != other.args[i]) return args[i] < other.args[i];
    }
    return false;
  }

  size_t Hash() const;
  std::string ToString(const Interner* interner = nullptr) const;
};

struct GroundAtomHash {
  size_t operator()(const GroundAtom& a) const { return a.Hash(); }
};

/// A relational instance: per-predicate tuple sets with lazily built
/// per-column hash indices. This is both the database D and the "heads so
/// far" instance that the grounding operators match against.
class FactStore {
 public:
  FactStore() = default;

  /// Inserts a fact; returns true iff it was new.
  bool Insert(uint32_t predicate, Tuple tuple);
  bool Insert(const GroundAtom& atom) {
    return Insert(atom.predicate, atom.args);
  }

  bool Contains(uint32_t predicate, const Tuple& tuple) const;
  bool Contains(const GroundAtom& atom) const {
    return Contains(atom.predicate, atom.args);
  }

  /// All rows of `predicate` in insertion order (empty if unknown).
  const std::vector<Tuple>& Rows(uint32_t predicate) const;

  /// Row indices of `predicate` whose column `col` equals `v`.
  /// Builds the column index on first use. Returns nullptr when no row
  /// matches.
  const std::vector<uint32_t>* IndexLookup(uint32_t predicate, size_t col,
                                           const Value& v) const;

  /// Number of rows for `predicate`.
  size_t Count(uint32_t predicate) const;

  /// Total number of facts.
  size_t size() const { return total_; }

  /// Predicates with at least one row.
  std::vector<uint32_t> Predicates() const;

  /// All facts, as atoms (mainly for tests/printing).
  std::vector<GroundAtom> AllFacts() const;

  std::string ToString(const Interner* interner = nullptr) const;

 private:
  struct Relation {
    std::vector<Tuple> rows;
    std::unordered_set<Tuple, TupleHash> set;
    // col -> value -> row indices; built lazily, extended on insert once
    // built.
    mutable std::vector<std::unordered_map<Value, std::vector<uint32_t>>>
        indices;
    mutable std::vector<bool> index_built;
  };

  std::unordered_map<uint32_t, Relation> relations_;
  size_t total_ = 0;
};

/// Parses a database given as newline/whitespace-separated ground atoms in
/// surface syntax ("router(1). connected(1,2).") into a FactStore.
Result<FactStore> ParseFacts(std::string_view text, Interner* interner);

}  // namespace gdlog

#endif  // GDLOG_GROUND_FACT_STORE_H_
