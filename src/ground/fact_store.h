#ifndef GDLOG_GROUND_FACT_STORE_H_
#define GDLOG_GROUND_FACT_STORE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/interner.h"
#include "util/status.h"
#include "util/value.h"

namespace gdlog {

/// A ground atom R(c̄): predicate id plus a flat tuple of constants.
struct GroundAtom {
  uint32_t predicate = 0;
  Tuple args;

  bool operator==(const GroundAtom& other) const {
    return predicate == other.predicate && args == other.args;
  }
  bool operator<(const GroundAtom& other) const {
    if (predicate != other.predicate) return predicate < other.predicate;
    if (args.size() != other.args.size()) return args.size() < other.args.size();
    for (size_t i = 0; i < args.size(); ++i) {
      if (args[i] != other.args[i]) return args[i] < other.args[i];
    }
    return false;
  }

  size_t Hash() const;
  std::string ToString(const Interner* interner = nullptr) const;
};

struct GroundAtomHash {
  size_t operator()(const GroundAtom& a) const { return a.Hash(); }
};

/// A relational instance: per-predicate tuple sets with per-column hash
/// indices. This is both the database D and the "heads so far" instance
/// that the grounding operators match against.
///
/// Concurrency and copying contract (the parallel chase relies on both):
///
///  - Copies are copy-on-write: a copy shares the per-predicate relation
///    storage with its source and clones a relation only when it first
///    inserts into it. Branching a chase node therefore costs one pointer
///    per predicate, not one deep copy of every tuple.
///  - All const member functions are safe to call concurrently from any
///    number of threads, including the lazy first build of a column index
///    (guarded by a per-relation std::once_flag) and concurrent
///    copy-construction of the store. Insert() is NOT thread-safe against
///    anything else touching the same FactStore object; stores under
///    construction must be thread-confined (they are: each chase node
///    extends its own copy).
///  - Freeze() builds every column index eagerly so a long-lived shared
///    store (the database D) never mutates again, even lazily.
class FactStore {
 public:
  FactStore() = default;

  /// Copies share relation storage copy-on-write. A copy is always
  /// unfrozen, whatever the source: frozen-ness says *this object* will
  /// not mutate; a copy is a new store (the grounding layer clones frozen,
  /// pre-indexed base stores and extends the clones).
  FactStore(const FactStore& other)
      : relations_(other.relations_), total_(other.total_) {}
  FactStore& operator=(const FactStore& other) {
    relations_ = other.relations_;
    total_ = other.total_;
    frozen_ = false;
    return *this;
  }
  FactStore(FactStore&&) = default;
  FactStore& operator=(FactStore&&) = default;

  /// Inserts a fact; returns true iff it was new. Must not be called on a
  /// frozen store, nor concurrently with any other access to this object.
  bool Insert(uint32_t predicate, Tuple tuple);
  bool Insert(const GroundAtom& atom) {
    return Insert(atom.predicate, atom.args);
  }

  bool Contains(uint32_t predicate, const Tuple& tuple) const;
  bool Contains(const GroundAtom& atom) const {
    return Contains(atom.predicate, atom.args);
  }

  /// All rows of `predicate` in insertion order. Unknown predicates yield
  /// a reference to a shared function-local static empty vector — no
  /// allocation per call.
  const std::vector<Tuple>& Rows(uint32_t predicate) const;

  /// Row indices of `predicate` whose column `col` equals `v`.
  /// Builds the column index on first use (thread-safely). Returns nullptr
  /// when no row matches. Invariant (all index buckets, composite ones
  /// included): row indices are strictly ascending — builds scan rows in
  /// order and Insert appends — which the semi-naive old/new cutoff in the
  /// join executor relies on.
  const std::vector<uint32_t>* IndexLookup(uint32_t predicate, size_t col,
                                           const Value& v) const;

  /// One column's complete value → row-indices map. The compiled join
  /// executor resolves this handle once per plan bind and then pays one
  /// hash lookup per candidate fetch (IndexLookup additionally re-finds the
  /// relation every call). Builds the index on first use (thread-safely).
  /// Returns nullptr when the relation is empty or `col` is out of range.
  /// The handle stays valid until this store is next mutated.
  using ColumnIndexMap = std::unordered_map<Value, std::vector<uint32_t>>;
  const ColumnIndexMap* GetColumnIndex(uint32_t predicate, size_t col) const;

  /// Number of distinct values in `predicate`'s column `col` (0 when the
  /// relation is empty). Builds the column index; the join planner uses
  /// this as its cardinality estimator (rows / distinct ≈ bucket size).
  size_t DistinctCount(uint32_t predicate, size_t col) const;

  /// A multi-column hash index over `cols` (strictly ascending, ≥2
  /// columns): composite key tuple → row indices in insertion order. Built
  /// lazily on first use, once per column combination, thread-safely, and
  /// COW-compatibly (clones adopt already-built composites; a composite
  /// mid-build in another thread is rebuilt by the clone). Returns nullptr
  /// when the relation is empty or any column is out of range. The handle
  /// stays valid until this store is next mutated.
  using CompositeKeyMap =
      std::unordered_map<Tuple, std::vector<uint32_t>, TupleHash>;
  const CompositeKeyMap* GetCompositeIndex(
      uint32_t predicate, const std::vector<uint16_t>& cols) const;

  /// Applies `delta` by appending its added facts (each Insert extends the
  /// already-built column and composite indices in place, preserving the
  /// ascending-row-index invariant) and records the appended row ranges in
  /// `out`. Facts already present are skipped and counted as duplicates.
  /// Removals are rejected with kUnsupported: rows never move in this
  /// store, so retraction would require DRed-style re-derivation upstream
  /// (see ROADMAP "Incremental serving architecture"). Same thread-safety
  /// contract as Insert(); must not be called on a frozen store.
  Status ApplyDelta(const struct FactDelta& delta, struct DeltaRanges* out);

  /// Builds all column indices eagerly and forbids further Insert()s, so
  /// concurrent readers never mutate even lazily. Idempotent.
  void Freeze();
  bool frozen() const { return frozen_; }

  /// Number of rows for `predicate`.
  size_t Count(uint32_t predicate) const;

  /// Total number of facts.
  size_t size() const { return total_; }

  /// Predicates with at least one row.
  std::vector<uint32_t> Predicates() const;

  /// All facts, as atoms (mainly for tests/printing).
  std::vector<GroundAtom> AllFacts() const;

  std::string ToString(const Interner* interner = nullptr) const;

 private:
  /// One column's value → row-indices hash index. `built` is the
  /// publication flag: set (release) only after `map` is complete, so a
  /// reader that observes it (acquire) may use `map` without locking, and
  /// a relation clone copies `map` only when it observes `built`.
  struct ColumnIndex {
    std::once_flag once;
    std::atomic<bool> built{false};
    std::unordered_map<Value, std::vector<uint32_t>> map;
  };

  /// One composite index (see GetCompositeIndex). Same publication protocol
  /// as ColumnIndex: `built` is set (release) only after `map` is complete.
  struct CompositeIndex {
    std::once_flag once;
    std::atomic<bool> built{false};
    CompositeKeyMap map;
  };

  struct Relation {
    Relation() = default;
    /// Clone for copy-on-write: copies rows and the membership set, and
    /// adopts only column indices already published by the source (an
    /// index mid-build in another thread is simply rebuilt lazily by the
    /// clone when first needed).
    Relation(const Relation& other);
    Relation& operator=(const Relation&) = delete;

    std::vector<Tuple> rows;
    std::unordered_set<Tuple, TupleHash> set;

    /// Fixed-size array of `arity` column indices, allocated on first
    /// index use under `columns_once` (the arity is only known once a row
    /// exists).
    mutable std::once_flag columns_once;
    mutable std::atomic<size_t> arity{0};
    mutable std::unique_ptr<ColumnIndex[]> columns;

    /// Composite indices keyed by their (ascending) column combination,
    /// created on demand under `composites_mutex` (taken only to find or
    /// insert the map entry — the build itself runs under the entry's
    /// once_flag, outside the lock).
    mutable std::mutex composites_mutex;
    mutable std::map<std::vector<uint16_t>, std::shared_ptr<CompositeIndex>>
        composites;

    /// Ensures `columns` is allocated; returns the arity (0 = no rows yet,
    /// nothing to index).
    size_t EnsureColumns() const;
    /// Builds (at most once) and returns column `col`'s index.
    const ColumnIndex& BuiltColumn(size_t col) const;
    /// Builds (at most once) and returns the composite index over `cols`.
    const CompositeIndex& BuiltComposite(
        const std::vector<uint16_t>& cols) const;
  };

  /// The relation for `predicate`, cloned first if shared (copy-on-write).
  Relation& MutableRelation(uint32_t predicate);

  std::unordered_map<uint32_t, std::shared_ptr<Relation>> relations_;
  size_t total_ = 0;
  bool frozen_ = false;
};

/// Parses a database given as newline/whitespace-separated ground atoms in
/// surface syntax ("router(1). connected(1,2).") into a FactStore.
Result<FactStore> ParseFacts(std::string_view text, Interner* interner);

/// A database update: facts to add and facts to remove, in source order.
/// The append-only FactStore rejects removals (see ApplyDelta); they are
/// carried here so the rejection can name what was asked for.
struct FactDelta {
  std::vector<GroundAtom> added;
  std::vector<GroundAtom> removed;

  bool empty() const { return added.empty() && removed.empty(); }
};

/// Where a delta landed in a store: the per-predicate row ranges
/// [begin, end) of the freshly appended rows. This is exactly the shape the
/// semi-naive old/new machinery consumes — a re-grounding seeded from these
/// ranges treats only the delta rows as new.
struct DeltaRanges {
  struct Range {
    uint32_t begin = 0;
    uint32_t end = 0;
  };
  /// Only predicates that actually gained rows appear (begin < end).
  std::map<uint32_t, Range> ranges;
  size_t rows_appended = 0;
  size_t duplicates_skipped = 0;
};

/// Parses a delta in surface syntax. Lines whose first non-blank character
/// is '-' are removals ("-router(3)."); everything else is parsed as added
/// facts. Non-fact rules are rejected with kInvalidArgument.
Result<FactDelta> ParseFactDelta(std::string_view text, Interner* interner);

}  // namespace gdlog

#endif  // GDLOG_GROUND_FACT_STORE_H_
