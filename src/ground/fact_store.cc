#include "ground/fact_store.h"

#include <algorithm>
#include <cassert>

#include "ast/parser.h"
#include "util/hash.h"

namespace gdlog {

size_t GroundAtom::Hash() const {
  return HashCombine(Mix64(predicate), HashTuple(args));
}

std::string GroundAtom::ToString(const Interner* interner) const {
  std::string out;
  if (interner != nullptr && predicate < interner->size()) {
    out = interner->Name(predicate);
  } else if (predicate == UINT32_MAX - 1) {
    out = "__bot";  // NormalProgram::kFalsityPredicate
  } else {
    out = "p" + std::to_string(predicate);
  }
  if (args.empty()) return out;
  out += "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i].ToString(interner);
  }
  out += ")";
  return out;
}

// ---------------------------------------------------------------------------
// Relation
// ---------------------------------------------------------------------------

FactStore::Relation::Relation(const Relation& other)
    : rows(other.rows), set(other.set) {
  size_t n = other.arity.load(std::memory_order_acquire);
  if (n != 0 && other.columns != nullptr) {
    arity.store(n, std::memory_order_relaxed);
    columns = std::make_unique<ColumnIndex[]>(n);
    // `columns_once` stays fresh in the clone; EnsureColumns() tolerates an
    // already-populated array (call_once simply re-publishes the same
    // arity).
    for (size_t col = 0; col < n; ++col) {
      if (other.columns[col].built.load(std::memory_order_acquire)) {
        columns[col].map = other.columns[col].map;
        columns[col].built.store(true, std::memory_order_release);
      }
    }
  }
  // Adopt published composite indices (deep copy: a shared CompositeIndex
  // would let this clone's Insert() mutate buckets concurrent readers of
  // the source are iterating). One mid-build in another thread is simply
  // rebuilt lazily by the clone when first needed.
  std::lock_guard<std::mutex> lock(other.composites_mutex);
  for (const auto& [cols, index] : other.composites) {
    if (!index->built.load(std::memory_order_acquire)) continue;
    auto copy = std::make_shared<CompositeIndex>();
    copy->map = index->map;
    copy->built.store(true, std::memory_order_release);
    composites.emplace(cols, std::move(copy));
  }
}

size_t FactStore::Relation::EnsureColumns() const {
  if (rows.empty()) return 0;
  std::call_once(columns_once, [&] {
    if (columns == nullptr) {
      size_t n = rows.front().size();
      if (n == 0) return;
      columns = std::make_unique<ColumnIndex[]>(n);
      arity.store(n, std::memory_order_release);
    }
  });
  return arity.load(std::memory_order_acquire);
}

const FactStore::ColumnIndex& FactStore::Relation::BuiltColumn(
    size_t col) const {
  ColumnIndex& index = columns[col];
  if (!index.built.load(std::memory_order_acquire)) {
    std::call_once(index.once, [&] {
      for (uint32_t row = 0; row < rows.size(); ++row) {
        if (col < rows[row].size()) {
          index.map[rows[row][col]].push_back(row);
        }
      }
      index.built.store(true, std::memory_order_release);
    });
  }
  return index;
}

const FactStore::CompositeIndex& FactStore::Relation::BuiltComposite(
    const std::vector<uint16_t>& cols) const {
  std::shared_ptr<CompositeIndex> index;
  {
    std::lock_guard<std::mutex> lock(composites_mutex);
    auto it = composites.find(cols);
    if (it == composites.end()) {
      it = composites.emplace(cols, std::make_shared<CompositeIndex>()).first;
    }
    index = it->second;
  }
  if (!index->built.load(std::memory_order_acquire)) {
    std::call_once(index->once, [&] {
      Tuple key(cols.size());
      for (uint32_t row = 0; row < rows.size(); ++row) {
        for (size_t k = 0; k < cols.size(); ++k) key[k] = rows[row][cols[k]];
        index->map[key].push_back(row);
      }
      index->built.store(true, std::memory_order_release);
    });
  }
  return *index;
}

// ---------------------------------------------------------------------------
// FactStore
// ---------------------------------------------------------------------------

FactStore::Relation& FactStore::MutableRelation(uint32_t predicate) {
  auto it = relations_.find(predicate);
  if (it == relations_.end()) {
    it = relations_.emplace(predicate, std::make_shared<Relation>()).first;
  } else if (it->second.use_count() > 1) {
    // Shared with another store (a chase sibling or our parent): detach.
    it->second = std::make_shared<Relation>(*it->second);
  }
  return *it->second;
}

bool FactStore::Insert(uint32_t predicate, Tuple tuple) {
  assert(!frozen_ && "Insert() on a frozen FactStore");
  // For a shared relation, duplicate-check before detaching: the grounding
  // fixpoint dedups through rejected Inserts, and detaching a copy-on-write
  // relation just to discover the tuple was already there would defeat the
  // cheap-branch design. A uniquely owned relation skips the pre-check —
  // the insert itself is the membership test (one hash, not two).
  auto shared_it = relations_.find(predicate);
  if (shared_it != relations_.end() && shared_it->second.use_count() > 1 &&
      shared_it->second->set.count(tuple) != 0) {
    return false;
  }
  Relation& rel = MutableRelation(predicate);
  auto [it, inserted] = rel.set.insert(tuple);
  (void)it;
  if (!inserted) return false;
  uint32_t row = static_cast<uint32_t>(rel.rows.size());
  rel.rows.push_back(std::move(tuple));
  const Tuple& stored = rel.rows.back();
  // Keep already-built column indices current. (This store is uniquely
  // owned here, so touching built indices cannot race with readers.)
  size_t arity = rel.arity.load(std::memory_order_acquire);
  for (size_t col = 0; col < arity && col < stored.size(); ++col) {
    ColumnIndex& index = rel.columns[col];
    if (index.built.load(std::memory_order_acquire)) {
      index.map[stored[col]].push_back(row);
    }
  }
  // Likewise for built composite indices.
  {
    std::lock_guard<std::mutex> lock(rel.composites_mutex);
    for (auto& [cols, index] : rel.composites) {
      if (!index->built.load(std::memory_order_acquire)) continue;
      if (cols.back() >= stored.size()) continue;
      Tuple key(cols.size());
      for (size_t k = 0; k < cols.size(); ++k) key[k] = stored[cols[k]];
      index->map[std::move(key)].push_back(row);
    }
  }
  ++total_;
  return true;
}

bool FactStore::Contains(uint32_t predicate, const Tuple& tuple) const {
  auto it = relations_.find(predicate);
  if (it == relations_.end()) return false;
  return it->second->set.count(tuple) != 0;
}

const std::vector<Tuple>& FactStore::Rows(uint32_t predicate) const {
  static const std::vector<Tuple> kEmpty;
  auto it = relations_.find(predicate);
  if (it == relations_.end()) return kEmpty;
  return it->second->rows;
}

const std::vector<uint32_t>* FactStore::IndexLookup(uint32_t predicate,
                                                    size_t col,
                                                    const Value& v) const {
  auto it = relations_.find(predicate);
  if (it == relations_.end()) return nullptr;
  const Relation& rel = *it->second;
  if (col >= rel.EnsureColumns()) return nullptr;
  const ColumnIndex& index = rel.BuiltColumn(col);
  auto hit = index.map.find(v);
  if (hit == index.map.end()) return nullptr;
  return &hit->second;
}

const FactStore::ColumnIndexMap* FactStore::GetColumnIndex(uint32_t predicate,
                                                           size_t col) const {
  auto it = relations_.find(predicate);
  if (it == relations_.end()) return nullptr;
  const Relation& rel = *it->second;
  if (col >= rel.EnsureColumns()) return nullptr;
  return &rel.BuiltColumn(col).map;
}

size_t FactStore::DistinctCount(uint32_t predicate, size_t col) const {
  const ColumnIndexMap* index = GetColumnIndex(predicate, col);
  return index == nullptr ? 0 : index->size();
}

const FactStore::CompositeKeyMap* FactStore::GetCompositeIndex(
    uint32_t predicate, const std::vector<uint16_t>& cols) const {
  assert(cols.size() >= 2 && "composite indices span at least two columns");
  auto it = relations_.find(predicate);
  if (it == relations_.end()) return nullptr;
  const Relation& rel = *it->second;
  if (cols.back() >= rel.EnsureColumns()) return nullptr;
  return &rel.BuiltComposite(cols).map;
}

Status FactStore::ApplyDelta(const FactDelta& delta, DeltaRanges* out) {
  assert(!frozen_ && "ApplyDelta() on a frozen FactStore");
  if (!delta.removed.empty()) {
    return Status::Unsupported(
        "fact removal is not supported (the store is append-only; "
        "retraction needs DRed-style re-derivation): got " +
        std::to_string(delta.removed.size()) + " removal(s), first: -" +
        delta.removed.front().ToString());
  }
  DeltaRanges ranges;
  for (const GroundAtom& atom : delta.added) {
    auto [it, first_touch] = ranges.ranges.try_emplace(atom.predicate);
    if (first_touch) {
      it->second.begin = it->second.end =
          static_cast<uint32_t>(Count(atom.predicate));
    }
    if (Insert(atom)) {
      it->second.end = static_cast<uint32_t>(Count(atom.predicate));
      ++ranges.rows_appended;
    } else {
      ++ranges.duplicates_skipped;
    }
  }
  // Drop predicates where every fact was a duplicate: consumers treat a
  // range's presence as "this predicate gained rows".
  for (auto it = ranges.ranges.begin(); it != ranges.ranges.end();) {
    if (it->second.begin == it->second.end) {
      it = ranges.ranges.erase(it);
    } else {
      ++it;
    }
  }
  if (out != nullptr) *out = std::move(ranges);
  return Status::OK();
}

void FactStore::Freeze() {
  for (auto& [pred, rel] : relations_) {
    (void)pred;
    size_t arity = rel->EnsureColumns();
    for (size_t col = 0; col < arity; ++col) rel->BuiltColumn(col);
  }
  frozen_ = true;
}

size_t FactStore::Count(uint32_t predicate) const {
  auto it = relations_.find(predicate);
  if (it == relations_.end()) return 0;
  return it->second->rows.size();
}

std::vector<uint32_t> FactStore::Predicates() const {
  std::vector<uint32_t> out;
  for (const auto& [pred, rel] : relations_) {
    if (!rel->rows.empty()) out.push_back(pred);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<GroundAtom> FactStore::AllFacts() const {
  std::vector<GroundAtom> out;
  out.reserve(total_);
  for (uint32_t pred : Predicates()) {
    for (const Tuple& row : Rows(pred)) {
      out.push_back(GroundAtom{pred, row});
    }
  }
  return out;
}

std::string FactStore::ToString(const Interner* interner) const {
  std::string out;
  for (const GroundAtom& atom : AllFacts()) {
    out += atom.ToString(interner);
    out += ".\n";
  }
  return out;
}

Result<FactStore> ParseFacts(std::string_view text, Interner* interner) {
  // Reuse the program parser: a database is a program of facts.
  std::shared_ptr<Interner> shared(interner, [](Interner*) {});
  auto parsed = ParseProgram(text, shared);
  if (!parsed.ok()) return parsed.status();
  FactStore store;
  for (const Rule& rule : parsed->rules()) {
    if (!rule.IsFact()) {
      return Status::InvalidArgument(
          "database text contains a non-fact rule: " +
          rule.ToString(interner));
    }
    Tuple tuple;
    tuple.reserve(rule.head.args.size());
    for (const HeadArg& arg : rule.head.args) {
      tuple.push_back(arg.term().constant());
    }
    store.Insert(rule.head.predicate, std::move(tuple));
  }
  return store;
}

Result<FactDelta> ParseFactDelta(std::string_view text, Interner* interner) {
  // Split removal lines ("-fact(...)." with the sign stripped) from the
  // rest, then reuse the program parser on each half so the surface syntax
  // (comments, multi-fact lines) matches ParseFacts exactly.
  std::string added_text;
  std::string removed_text;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    size_t first = line.find_first_not_of(" \t\r");
    if (first != std::string_view::npos && line[first] == '-') {
      removed_text.append(line.substr(first + 1));
      removed_text += '\n';
    } else {
      added_text.append(line);
      added_text += '\n';
    }
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  auto parse_atoms = [&](const std::string& half, const char* what,
                         std::vector<GroundAtom>* atoms) -> Status {
    std::shared_ptr<Interner> shared(interner, [](Interner*) {});
    auto parsed = ParseProgram(half, shared);
    if (!parsed.ok()) return parsed.status();
    for (const Rule& rule : parsed->rules()) {
      if (!rule.IsFact()) {
        return Status::InvalidArgument(std::string("delta ") + what +
                                       " contains a non-fact rule: " +
                                       rule.ToString(interner));
      }
      GroundAtom atom;
      atom.predicate = rule.head.predicate;
      atom.args.reserve(rule.head.args.size());
      for (const HeadArg& arg : rule.head.args) {
        atom.args.push_back(arg.term().constant());
      }
      atoms->push_back(std::move(atom));
    }
    return Status::OK();
  };
  FactDelta delta;
  Status status = parse_atoms(added_text, "addition", &delta.added);
  if (!status.ok()) return status;
  status = parse_atoms(removed_text, "removal", &delta.removed);
  if (!status.ok()) return status;
  return delta;
}

}  // namespace gdlog
