#include "ground/fact_store.h"

#include <algorithm>

#include "ast/parser.h"
#include "util/hash.h"

namespace gdlog {

size_t GroundAtom::Hash() const {
  return HashCombine(Mix64(predicate), HashTuple(args));
}

std::string GroundAtom::ToString(const Interner* interner) const {
  std::string out;
  if (interner != nullptr && predicate < interner->size()) {
    out = interner->Name(predicate);
  } else if (predicate == UINT32_MAX - 1) {
    out = "__bot";  // NormalProgram::kFalsityPredicate
  } else {
    out = "p" + std::to_string(predicate);
  }
  if (args.empty()) return out;
  out += "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i].ToString(interner);
  }
  out += ")";
  return out;
}

bool FactStore::Insert(uint32_t predicate, Tuple tuple) {
  Relation& rel = relations_[predicate];
  auto [it, inserted] = rel.set.insert(tuple);
  (void)it;
  if (!inserted) return false;
  uint32_t row = static_cast<uint32_t>(rel.rows.size());
  rel.rows.push_back(std::move(tuple));
  const Tuple& stored = rel.rows.back();
  // Keep already-built column indices current.
  for (size_t col = 0; col < rel.index_built.size(); ++col) {
    if (rel.index_built[col] && col < stored.size()) {
      rel.indices[col][stored[col]].push_back(row);
    }
  }
  ++total_;
  return true;
}

bool FactStore::Contains(uint32_t predicate, const Tuple& tuple) const {
  auto it = relations_.find(predicate);
  if (it == relations_.end()) return false;
  return it->second.set.count(tuple) != 0;
}

const std::vector<Tuple>& FactStore::Rows(uint32_t predicate) const {
  static const std::vector<Tuple> kEmpty;
  auto it = relations_.find(predicate);
  if (it == relations_.end()) return kEmpty;
  return it->second.rows;
}

const std::vector<uint32_t>* FactStore::IndexLookup(uint32_t predicate,
                                                    size_t col,
                                                    const Value& v) const {
  auto it = relations_.find(predicate);
  if (it == relations_.end()) return nullptr;
  const Relation& rel = it->second;
  if (rel.rows.empty()) return nullptr;
  size_t arity = rel.rows.front().size();
  if (col >= arity) return nullptr;
  if (rel.indices.size() < arity) {
    rel.indices.resize(arity);
    rel.index_built.resize(arity, false);
  }
  if (!rel.index_built[col]) {
    for (uint32_t row = 0; row < rel.rows.size(); ++row) {
      rel.indices[col][rel.rows[row][col]].push_back(row);
    }
    rel.index_built[col] = true;
  }
  auto hit = rel.indices[col].find(v);
  if (hit == rel.indices[col].end()) return nullptr;
  return &hit->second;
}

size_t FactStore::Count(uint32_t predicate) const {
  auto it = relations_.find(predicate);
  if (it == relations_.end()) return 0;
  return it->second.rows.size();
}

std::vector<uint32_t> FactStore::Predicates() const {
  std::vector<uint32_t> out;
  for (const auto& [pred, rel] : relations_) {
    if (!rel.rows.empty()) out.push_back(pred);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<GroundAtom> FactStore::AllFacts() const {
  std::vector<GroundAtom> out;
  out.reserve(total_);
  for (uint32_t pred : Predicates()) {
    for (const Tuple& row : Rows(pred)) {
      out.push_back(GroundAtom{pred, row});
    }
  }
  return out;
}

std::string FactStore::ToString(const Interner* interner) const {
  std::string out;
  for (const GroundAtom& atom : AllFacts()) {
    out += atom.ToString(interner);
    out += ".\n";
  }
  return out;
}

Result<FactStore> ParseFacts(std::string_view text, Interner* interner) {
  // Reuse the program parser: a database is a program of facts.
  std::shared_ptr<Interner> shared(interner, [](Interner*) {});
  auto parsed = ParseProgram(text, shared);
  if (!parsed.ok()) return parsed.status();
  FactStore store;
  for (const Rule& rule : parsed->rules()) {
    if (!rule.IsFact()) {
      return Status::InvalidArgument(
          "database text contains a non-fact rule: " +
          rule.ToString(interner));
    }
    Tuple tuple;
    tuple.reserve(rule.head.args.size());
    for (const HeadArg& arg : rule.head.args) {
      tuple.push_back(arg.term().constant());
    }
    store.Insert(rule.head.predicate, std::move(tuple));
  }
  return store;
}

}  // namespace gdlog
