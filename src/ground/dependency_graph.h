#ifndef GDLOG_GROUND_DEPENDENCY_GRAPH_H_
#define GDLOG_GROUND_DEPENDENCY_GRAPH_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ast/program.h"

namespace gdlog {

/// The dependency graph dg(Π) of §5: vertices are predicates; for every rule
/// with head predicate P there is a positive (negative) edge (R, P) for each
/// predicate R in B+(ρ) (B-(ρ)). Constraints are treated through their
/// desugared Fail/Aux form, so callers should desugar first when constraints
/// are present.
class DependencyGraph {
 public:
  /// Builds dg(Π).
  explicit DependencyGraph(const Program& program);

  struct Edge {
    uint32_t from;
    uint32_t to;
    bool negative;
  };

  const std::vector<Edge>& edges() const { return edges_; }
  const std::set<uint32_t>& vertices() const { return vertices_; }

  /// Strongly connected components in a topological order: for i < j no
  /// predicate of component i depends on one of component j (i.e. edges go
  /// from earlier to later components). Computed with Tarjan's algorithm.
  const std::vector<std::vector<uint32_t>>& Components() const {
    return components_;
  }

  /// Index of the component containing `predicate`.
  size_t ComponentOf(uint32_t predicate) const;

  /// True iff no cycle goes through a negative edge (GDatalog¬s, §5).
  bool IsStratified() const { return stratified_; }

  /// Stratum number of each predicate: the index of its component in the
  /// topological order. Predicates in earlier strata never depend on later
  /// ones.
  const std::map<uint32_t, size_t>& Strata() const { return strata_; }

  /// True iff `p` depends on `r` (a path r →* p exists).
  bool DependsOn(uint32_t p, uint32_t r) const;

  std::string ToDot(const Interner* interner = nullptr) const;

 private:
  void ComputeSccs();

  std::set<uint32_t> vertices_;
  std::vector<Edge> edges_;
  std::map<uint32_t, std::vector<std::pair<uint32_t, bool>>> adj_;  // from → (to, neg)
  std::vector<std::vector<uint32_t>> components_;
  std::map<uint32_t, size_t> strata_;
  bool stratified_ = true;
};

}  // namespace gdlog

#endif  // GDLOG_GROUND_DEPENDENCY_GRAPH_H_
