#include "ground/matcher.h"

#include <cassert>
#include <limits>

namespace gdlog {

Value ApplyTerm(const Term& term, const Binding& binding) {
  if (term.is_constant()) return term.constant();
  auto it = binding.find(term.var_id());
  assert(it != binding.end() && "unbound variable in ApplyTerm");
  return it->second;
}

GroundAtom ApplyAtom(const Atom& atom, const Binding& binding) {
  GroundAtom out;
  out.predicate = atom.predicate;
  out.args.reserve(atom.args.size());
  for (const Term& t : atom.args) out.args.push_back(ApplyTerm(t, binding));
  return out;
}

bool Matcher::Unify(const Atom& atom, const Tuple& row, Binding& binding,
                    std::vector<uint32_t>& trail) {
  if (row.size() != atom.args.size()) return false;
  size_t trail_start = trail.size();
  for (size_t i = 0; i < atom.args.size(); ++i) {
    const Term& t = atom.args[i];
    if (t.is_constant()) {
      if (!(t.constant() == row[i])) goto fail;
    } else {
      auto [it, inserted] = binding.emplace(t.var_id(), row[i]);
      if (inserted) {
        trail.push_back(t.var_id());
      } else if (!(it->second == row[i])) {
        goto fail;
      }
    }
  }
  return true;
fail:
  while (trail.size() > trail_start) {
    binding.erase(trail.back());
    trail.pop_back();
  }
  return false;
}

bool Matcher::ForEachCandidate(
    const Atom& atom, const Binding& binding,
    const std::function<bool(const Tuple&)>& cb) const {
  // Iterate the most selective bound column's bucket — the same bucket
  // PickNext costed this atom by. (This used to iterate the *first* bound
  // column's bucket, so an atom chosen for a tiny second-column bucket
  // could still be enumerated through a huge first-column one.)
  const std::vector<uint32_t>* best_rows = nullptr;
  bool have_bound = false;
  for (size_t col = 0; col < atom.args.size(); ++col) {
    const Term& t = atom.args[col];
    Value bound;
    bool have = false;
    if (t.is_constant()) {
      bound = t.constant();
      have = true;
    } else {
      auto it = binding.find(t.var_id());
      if (it != binding.end()) {
        bound = it->second;
        have = true;
      }
    }
    if (!have) continue;
    have_bound = true;
    const std::vector<uint32_t>* rows =
        store_->IndexLookup(atom.predicate, col, bound);
    if (rows == nullptr) return true;  // a bound column with no match
    if (best_rows == nullptr || rows->size() < best_rows->size()) {
      best_rows = rows;
    }
  }
  if (have_bound) {
    const std::vector<Tuple>& all = store_->Rows(atom.predicate);
    for (uint32_t r : *best_rows) {
      if (!cb(all[r])) return false;
    }
    return true;
  }
  // Full scan.
  for (const Tuple& row : store_->Rows(atom.predicate)) {
    if (!cb(row)) return false;
  }
  return true;
}

size_t Matcher::PickNext(const std::vector<const Atom*>& atoms,
                         const std::vector<bool>& done,
                         const Binding& binding) const {
  size_t best = atoms.size();
  size_t best_cost = std::numeric_limits<size_t>::max();
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (done[i]) continue;
    const Atom& atom = *atoms[i];
    // Cost estimate: indexed-bound column → index bucket size; otherwise
    // relation cardinality.
    size_t cost = store_->Count(atom.predicate);
    for (size_t col = 0; col < atom.args.size(); ++col) {
      const Term& t = atom.args[col];
      Value bound;
      bool have = false;
      if (t.is_constant()) {
        bound = t.constant();
        have = true;
      } else {
        auto it = binding.find(t.var_id());
        if (it != binding.end()) {
          bound = it->second;
          have = true;
        }
      }
      if (have) {
        const std::vector<uint32_t>* rows =
            store_->IndexLookup(atom.predicate, col, bound);
        size_t bucket = rows == nullptr ? 0 : rows->size();
        if (bucket < cost) cost = bucket;
      }
    }
    if (cost < best_cost) {
      best_cost = cost;
      best = i;
    }
  }
  return best;
}

bool Matcher::MatchRec(const std::vector<const Atom*>& atoms,
                       std::vector<bool>& done, size_t remaining,
                       Binding& binding,
                       const std::function<bool(const Binding&)>& cb) const {
  if (remaining == 0) return cb(binding);
  size_t next = PickNext(atoms, done, binding);
  assert(next < atoms.size());
  done[next] = true;
  bool keep_going = true;
  ForEachCandidate(*atoms[next], binding, [&](const Tuple& row) {
    std::vector<uint32_t> trail;
    if (Unify(*atoms[next], row, binding, trail)) {
      keep_going = MatchRec(atoms, done, remaining - 1, binding, cb);
      for (uint32_t v : trail) binding.erase(v);
    }
    return keep_going;
  });
  done[next] = false;
  return keep_going;
}

bool Matcher::Match(const std::vector<const Atom*>& atoms,
                    const std::function<bool(const Binding&)>& cb) const {
  Binding binding;
  std::vector<bool> done(atoms.size(), false);
  return MatchRec(atoms, done, atoms.size(), binding, cb);
}

bool Matcher::MatchWithPivot(
    const std::vector<const Atom*>& atoms, size_t pivot_index,
    const std::vector<Tuple>& pivot_rows,
    const std::function<bool(const Binding&)>& cb) const {
  assert(pivot_index < atoms.size());
  Binding binding;
  std::vector<bool> done(atoms.size(), false);
  done[pivot_index] = true;
  bool keep_going = true;
  for (const Tuple& row : pivot_rows) {
    std::vector<uint32_t> trail;
    if (Unify(*atoms[pivot_index], row, binding, trail)) {
      keep_going = MatchRec(atoms, done, atoms.size() - 1, binding, cb);
      for (uint32_t v : trail) binding.erase(v);
    }
    if (!keep_going) return false;
  }
  return true;
}

}  // namespace gdlog
