#include "ground/join_plan.h"

#include <algorithm>

namespace gdlog {

const std::vector<uint32_t> JoinExecutor::kEmptyBucket;

namespace {

CompiledAtom CompileAtom(const Atom& atom, const RuleSlots& slots) {
  CompiledAtom out;
  out.predicate = atom.predicate;
  out.cols.reserve(atom.args.size());
  for (const Term& t : atom.args) {
    out.cols.push_back(t.is_constant()
                           ? SlotTerm::Const(t.constant())
                           : SlotTerm::Slot(slots.SlotOf(t.var_id())));
  }
  return out;
}

/// Below this row count an atom is matched by scanning even when columns
/// are bound: probing (let alone building) a hash index costs more than
/// walking a handful of rows, and plan compilation skips the
/// distinct-count estimator for such relations too.
constexpr size_t kScanThreshold = 16;

/// Estimated candidate-set size for matching `atom` when the slots marked
/// in `bound` are already bound: relation cardinality divided by the
/// distinct-value count of every bound column (the planner's stand-in for
/// per-value bucket sizes, computable without a concrete binding). Tiny
/// relations estimate without touching indices.
double EstimateCost(const CompiledAtom& atom, const FactStore& store,
                    const std::vector<bool>& bound) {
  size_t n = store.Count(atom.predicate);
  if (n == 0) return 0.0;
  double est = static_cast<double>(n);
  for (size_t col = 0; col < atom.cols.size(); ++col) {
    const SlotTerm& t = atom.cols[col];
    if (!t.is_const && !bound[t.slot]) continue;
    if (n <= kScanThreshold) {
      est /= 2.0;  // flat guess; not worth building an index to ask
      continue;
    }
    size_t distinct = store.DistinctCount(atom.predicate, col);
    if (distinct > 1) est /= static_cast<double>(distinct);
  }
  return std::max(est, 1.0);
}

}  // namespace

CompiledRule CompileRule(const Rule& rule) {
  CompiledRule out;
  out.rule = &rule;
  out.slots = NumberRuleSlots(rule);
  out.num_slots = out.slots.count();
  for (const Literal& lit : rule.body) {
    (lit.negated ? out.negative : out.positive)
        .push_back(CompileAtom(lit.atom, out.slots));
  }
  if (!rule.is_constraint) {
    assert(rule.head.IsPlain() &&
           "CompileRule handles plain heads only (translate Δ-terms first)");
    out.has_head = true;
    out.head.predicate = rule.head.predicate;
    out.head.cols.reserve(rule.head.args.size());
    for (const HeadArg& arg : rule.head.args) {
      const Term& t = arg.term();
      out.head.cols.push_back(t.is_constant()
                                  ? SlotTerm::Const(t.constant())
                                  : SlotTerm::Slot(out.slots.SlotOf(t.var_id())));
    }
  }
  return out;
}

CompiledRule CompileBody(const std::vector<const Atom*>& atoms) {
  CompiledRule out;
  for (const Atom* atom : atoms) {
    for (const Term& t : atom->args) {
      if (!t.is_variable()) continue;
      assert(out.slots.slot_of.size() < 65536);
      out.slots.slot_of.emplace(
          t.var_id(), static_cast<uint16_t>(out.slots.slot_of.size()));
    }
  }
  out.num_slots = out.slots.count();
  for (const Atom* atom : atoms) {
    out.positive.push_back(CompileAtom(*atom, out.slots));
  }
  return out;
}

void AttachEmitBody(CompiledRule* rule, const std::vector<Literal>& body) {
  rule->has_emit = true;
  rule->emit_positive.clear();
  rule->emit_negative.clear();
  for (const Literal& lit : body) {
    (lit.negated ? rule->emit_negative : rule->emit_positive)
        .push_back(CompileAtom(lit.atom, rule->slots));
  }
}

GroundRule InstantiateRule(const CompiledRule& rule,
                           const BindingFrame& frame) {
  GroundRule gr;
  gr.is_constraint = rule.rule != nullptr && rule.rule->is_constraint;
  if (rule.has_head) gr.head = rule.head.Instantiate(frame);
  const std::vector<CompiledAtom>& positive =
      rule.has_emit ? rule.emit_positive : rule.positive;
  const std::vector<CompiledAtom>& negative =
      rule.has_emit ? rule.emit_negative : rule.negative;
  gr.positive.reserve(positive.size());
  for (const CompiledAtom& a : positive) {
    gr.positive.push_back(a.Instantiate(frame));
  }
  gr.negative.reserve(negative.size());
  for (const CompiledAtom& a : negative) {
    gr.negative.push_back(a.Instantiate(frame));
  }
  return gr;
}

JoinPlan CompileJoinPlan(const CompiledRule& rule, const FactStore& store,
                         size_t pivot) {
  JoinPlan plan;
  plan.rule = &rule;
  plan.pivot = pivot;
  plan.num_slots = rule.num_slots;
  plan.store_size_at_compile = store.size();

  std::vector<bool> bound(rule.num_slots, false);

  // Ops for `atom`'s columns under the current bound set, skipping the
  // (ascending) `key_cols` an access path already constrains; marks newly
  // bound slots. A variable repeated within the atom binds at its first
  // emitted occurrence and checks at later ones (R(X,X) under a scan:
  // bind col 0, check col 1).
  static const std::vector<uint16_t> kNoKeyCols;
  auto append_column_ops = [&bound](const CompiledAtom& atom,
                                    const std::vector<uint16_t>& key_cols,
                                    std::vector<JoinLevel::Op>* ops) {
    size_t key_i = 0;
    for (size_t col = 0; col < atom.cols.size(); ++col) {
      if (key_i < key_cols.size() && key_cols[key_i] == col) {
        ++key_i;
        continue;
      }
      const SlotTerm& t = atom.cols[col];
      JoinLevel::Op op;
      op.col = static_cast<uint16_t>(col);
      if (t.is_const) {
        op.kind = JoinLevel::Op::Kind::kCheckConst;
        op.constant = t.constant;
      } else if (bound[t.slot]) {
        op.kind = JoinLevel::Op::Kind::kCheckSlot;
        op.slot = t.slot;
      } else {
        op.kind = JoinLevel::Op::Kind::kBindSlot;
        op.slot = t.slot;
        bound[t.slot] = true;
      }
      ops->push_back(op);
    }
  };

  if (pivot != JoinPlan::kNoPivot) {
    assert(pivot < rule.positive.size());
    const CompiledAtom& p = rule.positive[pivot];
    plan.pivot_arity = p.cols.size();
    append_column_ops(p, kNoKeyCols, &plan.pivot_ops);
  }

  std::vector<bool> placed(rule.positive.size(), false);
  if (pivot != JoinPlan::kNoPivot) placed[pivot] = true;
  size_t remaining = rule.positive.size() - (pivot != JoinPlan::kNoPivot);

  while (remaining-- > 0) {
    // Greedy next atom: smallest estimated candidate set under the slots
    // bound so far; ties break on the lowest body position (deterministic).
    size_t best = rule.positive.size();
    double best_cost = 0.0;
    for (size_t i = 0; i < rule.positive.size(); ++i) {
      if (placed[i]) continue;
      double cost = EstimateCost(rule.positive[i], store, bound);
      if (best == rule.positive.size() || cost < best_cost) {
        best = i;
        best_cost = cost;
      }
    }
    placed[best] = true;
    const CompiledAtom& atom = rule.positive[best];

    JoinLevel level;
    level.atom_index = static_cast<uint32_t>(best);
    level.predicate = atom.predicate;
    level.arity = static_cast<uint16_t>(atom.cols.size());
    level.restrict_old = pivot != JoinPlan::kNoPivot && best < pivot;

    // Bound columns (constants or already-bound slots) drive the access
    // path; their equality is guaranteed by the probe, so they carry no
    // ops. Collected in column order, hence ascending. Tiny relations
    // scan regardless — the op sequence checks bound columns just as an
    // index probe would, row count decides which is cheaper.
    if (store.Count(atom.predicate) > kScanThreshold) {
      for (size_t col = 0; col < atom.cols.size(); ++col) {
        const SlotTerm& t = atom.cols[col];
        if (t.is_const || bound[t.slot]) {
          level.key_cols.push_back(static_cast<uint16_t>(col));
          level.key.push_back(t);
        }
      }
    }
    if (level.key_cols.empty()) {
      level.access = JoinLevel::Access::kScan;
    } else if (level.key_cols.size() == 1) {
      level.access = JoinLevel::Access::kIndex;
    } else {
      level.access = JoinLevel::Access::kComposite;
    }

    append_column_ops(atom, level.key_cols, &level.ops);
    plan.levels.push_back(std::move(level));
  }

  RebindJoinPlan(&plan, store);
  return plan;
}

void RebindJoinPlan(JoinPlan* plan, const FactStore& store) {
  for (JoinLevel& level : plan->levels) {
    level.rows = &store.Rows(level.predicate);
    level.index = nullptr;
    level.composite = nullptr;
    switch (level.access) {
      case JoinLevel::Access::kScan:
        break;
      case JoinLevel::Access::kIndex:
        level.index = store.GetColumnIndex(level.predicate, level.key_cols[0]);
        break;
      case JoinLevel::Access::kComposite:
        level.composite = store.GetCompositeIndex(level.predicate,
                                                  level.key_cols);
        break;
    }
  }
}

const JoinPlan& JoinPlanCache::Get(const CompiledRule& rule, size_t pivot,
                                   MatchStats* stats) {
  Key key{&rule, pivot};
  auto it = plans_.find(key);
  if (it != plans_.end()) {
    JoinPlan& plan = it->second;
    // Reuse while the store is within 2x of the size the order was chosen
    // for; past that, cardinality ratios may have shifted enough that a
    // different order wins. Either way the result set is identical.
    if (store_->size() <= 2 * std::max<size_t>(plan.store_size_at_compile, 1)) {
      ++stats->plan_cache_hits;
      RebindJoinPlan(&plan, *store_);
      return plan;
    }
    ++stats->plans_compiled;
    plan = CompileJoinPlan(rule, *store_, pivot);
    return plan;
  }
  ++stats->plans_compiled;
  auto [ins, inserted] =
      plans_.emplace(key, CompileJoinPlan(rule, *store_, pivot));
  (void)inserted;
  return ins->second;
}

}  // namespace gdlog
