#ifndef GDLOG_GROUND_GROUND_RULE_H_
#define GDLOG_GROUND_GROUND_RULE_H_

#include <atomic>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "ground/fact_store.h"
#include "util/hash.h"

namespace gdlog {

/// A ground TGD¬ without existentials: h(σ) for some homomorphism h.
/// Facts are rules with empty bodies ("True → α"). Ground constraints
/// ("body → ⊥") carry `is_constraint`; their head is ignored.
struct GroundRule {
  GroundAtom head;
  std::vector<GroundAtom> positive;
  std::vector<GroundAtom> negative;
  bool is_constraint = false;

  GroundRule() = default;
  // Copies carry the memoized hash along; the atomic itself is not
  // copyable, hence the spelled-out special members.
  GroundRule(const GroundRule& other)
      : head(other.head),
        positive(other.positive),
        negative(other.negative),
        is_constraint(other.is_constraint),
        cached_hash_(other.cached_hash_.load(std::memory_order_relaxed)) {}
  GroundRule(GroundRule&& other) noexcept
      : head(std::move(other.head)),
        positive(std::move(other.positive)),
        negative(std::move(other.negative)),
        is_constraint(other.is_constraint),
        cached_hash_(other.cached_hash_.load(std::memory_order_relaxed)) {}
  GroundRule& operator=(const GroundRule& other) {
    head = other.head;
    positive = other.positive;
    negative = other.negative;
    is_constraint = other.is_constraint;
    cached_hash_.store(other.cached_hash_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    return *this;
  }
  GroundRule& operator=(GroundRule&& other) noexcept {
    head = std::move(other.head);
    positive = std::move(other.positive);
    negative = std::move(other.negative);
    is_constraint = other.is_constraint;
    cached_hash_.store(other.cached_hash_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    return *this;
  }

  bool IsFact() const {
    return !is_constraint && positive.empty() && negative.empty();
  }

  bool operator==(const GroundRule& other) const {
    return is_constraint == other.is_constraint && head == other.head &&
           positive == other.positive && negative == other.negative;
  }

  /// Memoized (rules are immutable once stored; the incremental chase
  /// re-hashes every rule on every Clone, so this is hot). The relaxed
  /// atomic keeps concurrent first computations race-free; both writers
  /// store the same value.
  size_t Hash() const {
    size_t cached = cached_hash_.load(std::memory_order_relaxed);
    if (cached != 0) return cached;
    size_t h = is_constraint ? 0x107u : head.Hash();
    for (const GroundAtom& a : positive) h = HashCombine(h, a.Hash());
    h = HashCombine(h, 0x5eed);
    for (const GroundAtom& a : negative) h = HashCombine(h, a.Hash());
    if (h == 0) h = 0x9e3779b97f4a7c15ull;  // keep 0 as the "unset" mark
    cached_hash_.store(h, std::memory_order_relaxed);
    return h;
  }

 private:
  mutable std::atomic<size_t> cached_hash_{0};

 public:

  std::string ToString(const Interner* interner = nullptr) const {
    std::string out;
    if (!is_constraint) {
      out = head.ToString(interner);
      if (positive.empty() && negative.empty()) return out + ".";
      out += " ";
    }
    out += ":- ";
    bool first = true;
    for (const GroundAtom& a : positive) {
      if (!first) out += ", ";
      first = false;
      out += a.ToString(interner);
    }
    for (const GroundAtom& a : negative) {
      if (!first) out += ", ";
      first = false;
      out += "not " + a.ToString(interner);
    }
    return out + ".";
  }
};

struct GroundRuleHash {
  size_t operator()(const GroundRule& r) const { return r.Hash(); }
};

/// A set of ground rules Σ' ⊆ ground(Σ) with its matching instance kept
/// incrementally (the grounding operators of §3/§5 repeatedly match rule
/// bodies against heads of the program built so far). heads() holds every
/// rule head plus the Result atoms the grounding layer cascades from the
/// choice set — i.e. heads(Σ' ∪ Σ), the instance Definition 3.4 matches
/// against — so the fixpoint needs no second fact store.
class GroundRuleSet {
 public:
  GroundRuleSet() = default;

  // Move-only: rules_ holds pointers into set_'s nodes, which survive moves
  // (unordered_set nodes are stable) but not copies.
  GroundRuleSet(const GroundRuleSet&) = delete;
  GroundRuleSet& operator=(const GroundRuleSet&) = delete;
  GroundRuleSet(GroundRuleSet&&) = default;
  GroundRuleSet& operator=(GroundRuleSet&&) = default;

  /// Adds a rule; returns true iff new. Updates heads() (constraints have
  /// no head and contribute nothing there).
  bool Add(GroundRule rule) { return AddAndGet(std::move(rule)) != nullptr; }

  /// Like Add, but returns the stored rule (nullptr if it was a duplicate)
  /// so callers can reference its head without copying. `new_head`, when
  /// given, reports whether the head atom was new to heads() — false for
  /// duplicates, constraints, and heads another rule already derived.
  const GroundRule* AddAndGet(GroundRule rule, bool* new_head = nullptr) {
    if (new_head != nullptr) *new_head = false;
    auto [it, inserted] = set_.insert(std::move(rule));
    if (!inserted) return nullptr;
    rules_.push_back(&*it);
    if (!it->is_constraint) {
      bool fresh = heads_.Insert(it->head);
      if (new_head != nullptr) *new_head = fresh;
    }
    return &*it;
  }

  bool Contains(const GroundRule& rule) const { return set_.count(rule) != 0; }

  /// Insertion-ordered view of the rules.
  const std::vector<const GroundRule*>& rules() const { return rules_; }

  size_t size() const { return rules_.size(); }

  /// The matching instance: every head atom, plus any Result atoms the
  /// grounding layer recorded via mutable_heads().
  const FactStore& heads() const { return heads_; }

  /// The grounding layer's write access to the matching instance (it
  /// inserts the Result atoms cascaded from the choice set). Everyone else
  /// should treat heads() as derived state.
  FactStore* mutable_heads() { return &heads_; }

  /// Deep copy of the rule set; the matching instance copies copy-on-write
  /// (a pointer per predicate). Used by the incremental chase to branch
  /// grounding state per child.
  GroundRuleSet Clone() const {
    GroundRuleSet copy;
    copy.heads_ = heads_;
    copy.rules_.reserve(rules_.size());
    for (const GroundRule* rule : rules_) {
      auto [it, inserted] = copy.set_.insert(*rule);
      (void)inserted;
      copy.rules_.push_back(&*it);
    }
    return copy;
  }

  std::string ToString(const Interner* interner = nullptr) const {
    std::string out;
    for (const GroundRule* r : rules_) {
      out += r->ToString(interner);
      out += "\n";
    }
    return out;
  }

 private:
  std::unordered_set<GroundRule, GroundRuleHash> set_;
  std::vector<const GroundRule*> rules_;
  FactStore heads_;
};

}  // namespace gdlog

#endif  // GDLOG_GROUND_GROUND_RULE_H_
