#ifndef GDLOG_GROUND_GROUND_RULE_H_
#define GDLOG_GROUND_GROUND_RULE_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "ground/fact_store.h"
#include "util/hash.h"

namespace gdlog {

/// A ground TGD¬ without existentials: h(σ) for some homomorphism h.
/// Facts are rules with empty bodies ("True → α"). Ground constraints
/// ("body → ⊥") carry `is_constraint`; their head is ignored.
struct GroundRule {
  GroundAtom head;
  std::vector<GroundAtom> positive;
  std::vector<GroundAtom> negative;
  bool is_constraint = false;

  bool IsFact() const {
    return !is_constraint && positive.empty() && negative.empty();
  }

  bool operator==(const GroundRule& other) const {
    return is_constraint == other.is_constraint && head == other.head &&
           positive == other.positive && negative == other.negative;
  }

  size_t Hash() const {
    size_t h = is_constraint ? 0x107u : head.Hash();
    for (const GroundAtom& a : positive) h = HashCombine(h, a.Hash());
    h = HashCombine(h, 0x5eed);
    for (const GroundAtom& a : negative) h = HashCombine(h, a.Hash());
    return h;
  }

  std::string ToString(const Interner* interner = nullptr) const {
    std::string out;
    if (!is_constraint) {
      out = head.ToString(interner);
      if (positive.empty() && negative.empty()) return out + ".";
      out += " ";
    }
    out += ":- ";
    bool first = true;
    for (const GroundAtom& a : positive) {
      if (!first) out += ", ";
      first = false;
      out += a.ToString(interner);
    }
    for (const GroundAtom& a : negative) {
      if (!first) out += ", ";
      first = false;
      out += "not " + a.ToString(interner);
    }
    return out + ".";
  }
};

struct GroundRuleHash {
  size_t operator()(const GroundRule& r) const { return r.Hash(); }
};

/// A set of ground rules Σ' ⊆ ground(Σ) with its heads(Σ') instance kept
/// incrementally (the grounding operators of §3/§5 repeatedly match rule
/// bodies against heads of the program built so far).
class GroundRuleSet {
 public:
  GroundRuleSet() = default;

  // Move-only: rules_ holds pointers into set_'s nodes, which survive moves
  // (unordered_set nodes are stable) but not copies.
  GroundRuleSet(const GroundRuleSet&) = delete;
  GroundRuleSet& operator=(const GroundRuleSet&) = delete;
  GroundRuleSet(GroundRuleSet&&) = default;
  GroundRuleSet& operator=(GroundRuleSet&&) = default;

  /// Adds a rule; returns true iff new. Updates heads() (constraints have
  /// no head and contribute nothing there).
  bool Add(GroundRule rule) {
    auto [it, inserted] = set_.insert(std::move(rule));
    if (!inserted) return false;
    rules_.push_back(&*it);
    if (!it->is_constraint) heads_.Insert(it->head);
    return true;
  }

  bool Contains(const GroundRule& rule) const { return set_.count(rule) != 0; }

  /// Insertion-ordered view of the rules.
  const std::vector<const GroundRule*>& rules() const { return rules_; }

  size_t size() const { return rules_.size(); }

  /// heads(Σ'): the instance of all head atoms.
  const FactStore& heads() const { return heads_; }

  /// Deep copy (re-inserts every rule). Used by the incremental chase to
  /// branch grounding state per child.
  GroundRuleSet Clone() const {
    GroundRuleSet copy;
    for (const GroundRule* rule : rules_) copy.Add(*rule);
    return copy;
  }

  std::string ToString(const Interner* interner = nullptr) const {
    std::string out;
    for (const GroundRule* r : rules_) {
      out += r->ToString(interner);
      out += "\n";
    }
    return out;
  }

 private:
  std::unordered_set<GroundRule, GroundRuleHash> set_;
  std::vector<const GroundRule*> rules_;
  FactStore heads_;
};

}  // namespace gdlog

#endif  // GDLOG_GROUND_GROUND_RULE_H_
