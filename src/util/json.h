#ifndef GDLOG_UTIL_JSON_H_
#define GDLOG_UTIL_JSON_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace gdlog {

/// A minimal streaming JSON writer — enough to export engine results for
/// scripting (the CLI's --json mode). Handles escaping and comma placement;
/// callers are responsible for balanced Begin/End calls (asserted).
class JsonWriter {
 public:
  JsonWriter() = default;

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits an object key (must be inside an object).
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Number(double value);
  JsonWriter& Int(long long value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// Convenience: Key + value. The const char* overload exists because a
  /// string literal would otherwise convert to bool (a standard pointer
  /// conversion, which overload resolution prefers over the user-defined
  /// conversion to string_view) and silently serialize as `true`.
  JsonWriter& KV(std::string_view key, std::string_view value) {
    return Key(key).String(value);
  }
  JsonWriter& KV(std::string_view key, const char* value) {
    return Key(key).String(value);
  }
  JsonWriter& KV(std::string_view key, double value) {
    return Key(key).Number(value);
  }
  JsonWriter& KV(std::string_view key, long long value) {
    return Key(key).Int(value);
  }
  JsonWriter& KV(std::string_view key, bool value) {
    return Key(key).Bool(value);
  }

  const std::string& str() const { return out_; }

 private:
  void MaybeComma();
  void Escape(std::string_view s);

  std::string out_;
  /// Stack of "needs comma before next element" flags per nesting level.
  std::string stack_;
  bool pending_key_ = false;
};

struct JsonParseOptions {
  /// Enforce RFC 8259 strings in full: escaped control characters only,
  /// paired surrogate escapes, shortest-form UTF-8 — what untrusted wire
  /// input (the gdlogd request path) requires. Disable only for input a
  /// JsonWriter in this process family produced: the writer copies raw
  /// bytes >= 0x20 verbatim, and program string constants may carry
  /// arbitrary bytes (the surface lexer does not restrict them), so the
  /// shard partial-space IPC must read back exactly what was written.
  bool strict_strings = true;
};

/// A parsed JSON document — the read-side counterpart of JsonWriter, used
/// to import serialized partial outcome spaces (gdatalog/export.h) and by
/// any tooling that consumes the CLI's --json output. Numbers keep their
/// source text so callers can parse int64s and hex-float doubles exactly
/// instead of round-tripping through a lossy double.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one JSON document (trailing whitespace allowed, trailing
  /// content rejected). Depth-limited; ParseError carries the byte offset.
  static Result<JsonValue> Parse(std::string_view text);
  static Result<JsonValue> Parse(std::string_view text,
                                 const JsonParseOptions& options);

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  /// The number's source text, verbatim (e.g. "1e-3", "-42").
  const std::string& number_text() const { return scalar_; }
  double NumberAsDouble() const;
  /// Exact for any int64; kInvalidArgument on fractions or overflow.
  Result<long long> NumberAsInt() const;
  const std::string& string_value() const { return scalar_; }

  const std::vector<JsonValue>& array() const { return array_; }
  /// Object members in document order (duplicate keys are preserved;
  /// Find returns the first).
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  /// The value of `key`, or nullptr when absent.
  const JsonValue* Find(std::string_view key) const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::string scalar_;  ///< number text or string payload
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace gdlog

#endif  // GDLOG_UTIL_JSON_H_
