#ifndef GDLOG_UTIL_JSON_H_
#define GDLOG_UTIL_JSON_H_

#include <string>

namespace gdlog {

/// A minimal streaming JSON writer — enough to export engine results for
/// scripting (the CLI's --json mode). Handles escaping and comma placement;
/// callers are responsible for balanced Begin/End calls (asserted).
class JsonWriter {
 public:
  JsonWriter() = default;

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits an object key (must be inside an object).
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Number(double value);
  JsonWriter& Int(long long value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// Convenience: Key + value.
  JsonWriter& KV(std::string_view key, std::string_view value) {
    return Key(key).String(value);
  }
  JsonWriter& KV(std::string_view key, double value) {
    return Key(key).Number(value);
  }
  JsonWriter& KV(std::string_view key, long long value) {
    return Key(key).Int(value);
  }
  JsonWriter& KV(std::string_view key, bool value) {
    return Key(key).Bool(value);
  }

  const std::string& str() const { return out_; }

 private:
  void MaybeComma();
  void Escape(std::string_view s);

  std::string out_;
  /// Stack of "needs comma before next element" flags per nesting level.
  std::string stack_;
  bool pending_key_ = false;
};

}  // namespace gdlog

#endif  // GDLOG_UTIL_JSON_H_
