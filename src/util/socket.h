#ifndef GDLOG_UTIL_SOCKET_H_
#define GDLOG_UTIL_SOCKET_H_

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "util/status.h"

namespace gdlog {

/// A connected TCP stream with poll-based timeouts — the byte transport
/// beneath the HTTP serving layer (src/server) and its test/load clients.
/// POSIX-only, like util/subprocess. Writes use MSG_NOSIGNAL so a peer
/// hanging up surfaces as a Status instead of killing the process with
/// SIGPIPE.
class Connection {
 public:
  /// Adopts an already-connected file descriptor (what ListenSocket::Accept
  /// hands out).
  explicit Connection(int fd) : fd_(fd) {}

  /// Connects to host:port. `host` may be an IPv4/IPv6 literal or a name
  /// (resolved via getaddrinfo). `timeout_ms` bounds the connect itself
  /// (-1 = no bound).
  static Result<Connection> ConnectTcp(const std::string& host, int port,
                                       int timeout_ms);

  Connection(Connection&& other) noexcept;
  Connection& operator=(Connection&& other) noexcept;
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Reads at most `capacity` bytes into `buf`. Returns the byte count, 0
  /// on clean EOF. Blocks up to `timeout_ms` for the first byte (-1 =
  /// forever); an expired wait is kBudgetExhausted.
  Result<size_t> ReadSome(char* buf, size_t capacity, int timeout_ms);

  /// Writes all of `data`; `timeout_ms` bounds each wait for writability.
  Status WriteAll(std::string_view data, int timeout_ms);

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

/// A listening TCP socket. Accept() can be interrupted through an arbitrary
/// "wake" descriptor (the serving layer uses a pipe written from a signal
/// handler), which is what makes graceful SIGTERM drain possible without
/// timers or EINTR games.
class ListenSocket {
 public:
  /// Binds host:port (port 0 = kernel-assigned, reported by port()) with
  /// SO_REUSEADDR and starts listening.
  static Result<ListenSocket> BindTcp(const std::string& host, int port,
                                      int backlog = 128);

  ListenSocket(ListenSocket&& other) noexcept;
  ListenSocket& operator=(ListenSocket&& other) noexcept;
  ~ListenSocket();

  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  /// The bound port (meaningful after BindTcp with port 0).
  int port() const { return port_; }

  /// Blocks until a connection arrives — or, when `wake_fd` >= 0, until
  /// `wake_fd` becomes readable, which returns nullopt without draining it.
  Result<std::optional<Connection>> Accept(int wake_fd);

 private:
  ListenSocket(int fd, int port) : fd_(fd), port_(port) {}

  int fd_ = -1;
  int port_ = 0;
};

}  // namespace gdlog

#endif  // GDLOG_UTIL_SOCKET_H_
