#ifndef GDLOG_UTIL_PROB_H_
#define GDLOG_UTIL_PROB_H_

#include <cstdint>
#include <string>

namespace gdlog {

/// An exact rational with 64-bit numerator/denominator and 128-bit
/// intermediates. Arithmetic that would overflow marks the value inexact,
/// at which point only the double approximation remains meaningful. Used so
/// that probabilities like 0.19 = 19/100 in the paper's examples can be
/// asserted exactly in tests and reported exactly in experiment output.
class Rational {
 public:
  /// 0/1.
  Rational() : num_(0), den_(1), exact_(true) {}
  Rational(int64_t num, int64_t den);

  static Rational Zero() { return Rational(); }
  static Rational One() { return Rational(1, 1); }

  /// Converts a double that came from decimal program text (e.g. "0.1")
  /// into the exact rational with denominator 10^k (k <= 9) when the double
  /// round-trips; otherwise returns an inexact rational.
  static Rational FromDecimal(double d);

  /// An inexact rational carrying exactly this double approximation.
  /// Used to rehydrate serialized inexact probabilities without the
  /// may-become-exact heuristics of FromDecimal (a deserialized value must
  /// stay bit-identical to the one that was written, exactness bit
  /// included).
  static Rational Approx(double d) { return Inexact(d); }

  int64_t numerator() const { return num_; }
  int64_t denominator() const { return den_; }

  /// True while every operation so far stayed within 64-bit range.
  bool exact() const { return exact_; }

  double ToDouble() const;

  Rational operator*(const Rational& other) const;
  Rational operator+(const Rational& other) const;
  Rational operator-(const Rational& other) const;

  /// Exact comparison when both sides are exact; double comparison otherwise.
  bool operator==(const Rational& other) const;
  bool operator<(const Rational& other) const;

  /// "19/100" (or the double rendering when inexact).
  std::string ToString() const;

 private:
  void Normalize();
  static Rational Inexact(double approx);

  int64_t num_;
  int64_t den_;   // > 0 when exact.
  bool exact_;
  double approx_ = 0.0;  // Maintained only when !exact_.
};

/// A probability value: always carries a double; additionally carries an
/// exact Rational while exactness is preservable. The product over Result
/// atoms in Definition 3.8 is computed with operator*.
class Prob {
 public:
  Prob() : rational_(Rational::Zero()) {}
  explicit Prob(const Rational& r) : rational_(r) {}
  static Prob Zero() { return Prob(Rational::Zero()); }
  static Prob One() { return Prob(Rational::One()); }
  static Prob FromDouble(double d) { return Prob(Rational::FromDecimal(d)); }

  double value() const { return rational_.ToDouble(); }
  const Rational& rational() const { return rational_; }
  bool exact() const { return rational_.exact(); }

  Prob operator*(const Prob& o) const { return Prob(rational_ * o.rational_); }
  Prob operator+(const Prob& o) const { return Prob(rational_ + o.rational_); }
  Prob operator-(const Prob& o) const { return Prob(rational_ - o.rational_); }
  bool operator==(const Prob& o) const { return rational_ == o.rational_; }
  bool operator<(const Prob& o) const { return rational_ < o.rational_; }

  std::string ToString() const { return rational_.ToString(); }

 private:
  Rational rational_;
};

}  // namespace gdlog

#endif  // GDLOG_UTIL_PROB_H_
