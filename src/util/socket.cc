#include "util/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace gdlog {

namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + ::strerror(errno));
}

void CloseQuietly(int fd) {
  if (fd >= 0) ::close(fd);
}

/// Polls `fd` for `events`; returns false on timeout. EINTR restarts with
/// the remaining budget unaccounted (good enough for coarse I/O deadlines).
Result<bool> PollOne(int fd, short events, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  for (;;) {
    int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    return Errno("poll");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Connection
// ---------------------------------------------------------------------------

Connection::Connection(Connection&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

Connection& Connection::operator=(Connection&& other) noexcept {
  if (this != &other) {
    CloseQuietly(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Connection::~Connection() { CloseQuietly(fd_); }

Result<Connection> Connection::ConnectTcp(const std::string& host, int port,
                                          int timeout_ms) {
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument("bad port: " + std::to_string(port));
  }
  struct addrinfo hints;
  ::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* addrs = nullptr;
  int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                         &addrs);
  if (rc != 0) {
    return Status::InvalidArgument("cannot resolve '" + host +
                                   "': " + ::gai_strerror(rc));
  }
  Status last = Status::Internal("no addresses for '" + host + "'");
  for (struct addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    // Non-blocking connect so the timeout applies to the handshake too.
    int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    if (rc != 0 && errno != EINPROGRESS) {
      last = Errno("connect");
      CloseQuietly(fd);
      continue;
    }
    if (rc != 0) {
      auto ready = PollOne(fd, POLLOUT, timeout_ms);
      if (!ready.ok() || !*ready) {
        last = ready.ok() ? Status::BudgetExhausted("connect timed out")
                          : ready.status();
        CloseQuietly(fd);
        continue;
      }
      int err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
          err != 0) {
        last = Status::Internal(std::string("connect: ") +
                                ::strerror(err != 0 ? err : errno));
        CloseQuietly(fd);
        continue;
      }
    }
    ::fcntl(fd, F_SETFL, flags);  // back to blocking; I/O uses poll
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ::freeaddrinfo(addrs);
    return Connection(fd);
  }
  ::freeaddrinfo(addrs);
  return last;
}

Result<size_t> Connection::ReadSome(char* buf, size_t capacity,
                                    int timeout_ms) {
  if (fd_ < 0) return Status::Internal("read on closed connection");
  GDLOG_ASSIGN_OR_RETURN(bool ready, PollOne(fd_, POLLIN, timeout_ms));
  if (!ready) return Status::BudgetExhausted("read timed out");
  for (;;) {
    ssize_t n = ::recv(fd_, buf, capacity, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

Status Connection::WriteAll(std::string_view data, int timeout_ms) {
  if (fd_ < 0) return Status::Internal("write on closed connection");
  size_t off = 0;
  while (off < data.size()) {
    GDLOG_ASSIGN_OR_RETURN(bool ready, PollOne(fd_, POLLOUT, timeout_ms));
    if (!ready) return Status::BudgetExhausted("write timed out");
    ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ListenSocket
// ---------------------------------------------------------------------------

ListenSocket::ListenSocket(ListenSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0)) {}

ListenSocket& ListenSocket::operator=(ListenSocket&& other) noexcept {
  if (this != &other) {
    CloseQuietly(fd_);
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

ListenSocket::~ListenSocket() { CloseQuietly(fd_); }

Result<ListenSocket> ListenSocket::BindTcp(const std::string& host, int port,
                                           int backlog) {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("bad port: " + std::to_string(port));
  }
  struct addrinfo hints;
  ::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  struct addrinfo* addrs = nullptr;
  int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                         std::to_string(port).c_str(), &hints, &addrs);
  if (rc != 0) {
    return Status::InvalidArgument("cannot resolve '" + host +
                                   "': " + ::gai_strerror(rc));
  }
  Status last = Status::Internal("no addresses for '" + host + "'");
  for (struct addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 ||
        ::listen(fd, backlog) != 0) {
      last = Errno("bind/listen");
      CloseQuietly(fd);
      continue;
    }
    // Recover the kernel-assigned port for the port-0 case.
    struct sockaddr_storage bound;
    socklen_t len = sizeof(bound);
    int actual = port;
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound), &len) ==
        0) {
      if (bound.ss_family == AF_INET) {
        actual = ntohs(reinterpret_cast<struct sockaddr_in*>(&bound)
                           ->sin_port);
      } else if (bound.ss_family == AF_INET6) {
        actual = ntohs(reinterpret_cast<struct sockaddr_in6*>(&bound)
                           ->sin6_port);
      }
    }
    ::freeaddrinfo(addrs);
    return ListenSocket(fd, actual);
  }
  ::freeaddrinfo(addrs);
  return last;
}

Result<std::optional<Connection>> ListenSocket::Accept(int wake_fd) {
  if (fd_ < 0) return Status::Internal("accept on closed socket");
  for (;;) {
    struct pollfd pfds[2];
    pfds[0].fd = fd_;
    pfds[0].events = POLLIN;
    pfds[1].fd = wake_fd;
    pfds[1].events = POLLIN;
    int rc = ::poll(pfds, wake_fd >= 0 ? 2 : 1, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    // Wake beats accept: a shutdown request stops the intake even when
    // connections are still queued.
    if (wake_fd >= 0 && (pfds[1].revents & (POLLIN | POLLHUP)) != 0) {
      return std::optional<Connection>();
    }
    if ((pfds[0].revents & POLLIN) == 0) continue;
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      // A connection that died between poll and accept is not our error.
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK) {
        continue;
      }
      return Errno("accept");
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return std::optional<Connection>(Connection(fd));
  }
}

}  // namespace gdlog
