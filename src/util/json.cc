#include "util/json.h"

#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace gdlog {

void JsonWriter::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key, no comma
  }
  if (!stack_.empty()) {
    if (stack_.back() == '1') out_ += ',';
    stack_.back() = '1';
  }
}

void JsonWriter::Escape(std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\t': out_ += "\\t"; break;
      case '\r': out_ += "\\r"; break;
      case '\b': out_ += "\\b"; break;
      case '\f': out_ += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_ += '{';
  stack_ += '0';
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  assert(!stack_.empty());
  stack_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  out_ += '[';
  stack_ += '0';
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  assert(!stack_.empty());
  stack_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  MaybeComma();
  out_ += '"';
  Escape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  MaybeComma();
  out_ += '"';
  Escape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  MaybeComma();
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Int(long long value) {
  MaybeComma();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
  return *this;
}

// ---------------------------------------------------------------------------
// JsonValue — recursive-descent parser.
// ---------------------------------------------------------------------------

/// Friend of JsonValue; parses one document over a borrowed string_view.
class JsonParser {
 public:
  JsonParser(std::string_view text, const JsonParseOptions& options)
      : text_(text), options_(options) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    GDLOG_RETURN_IF_ERROR(ParseValue(&value, /*depth=*/0));
    SkipWhitespace();
    if (pos_ != text_.size()) return Error("trailing content");
    return value;
  }

 private:
  /// Deeper nesting than this is rejected (the recursive descent would
  /// otherwise turn attacker-sized inputs into stack exhaustion).
  static constexpr size_t kMaxDepth = 96;

  Status Error(const std::string& what) const {
    return Status::ParseError("json: " + what + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, size_t depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind_ = JsonValue::Kind::kString;
        return ParseString(&out->scalar_);
      case 't':
        if (!ConsumeWord("true")) return Error("bad literal");
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = true;
        return Status::OK();
      case 'f':
        if (!ConsumeWord("false")) return Error("bad literal");
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = false;
        return Status::OK();
      case 'n':
        if (!ConsumeWord("null")) return Error("bad literal");
        out->kind_ = JsonValue::Kind::kNull;
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, size_t depth) {
    ++pos_;  // '{'
    out->kind_ = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      GDLOG_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      GDLOG_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->members_.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, size_t depth) {
    ++pos_;  // '['
    out->kind_ = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    for (;;) {
      JsonValue value;
      GDLOG_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->array_.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']'");
    }
  }

  /// Four hex digits at pos_; advances past them.
  Status ReadHex4(unsigned* code) {
    if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
    *code = 0;
    for (int i = 0; i < 4; ++i) {
      char h = text_[pos_ + i];
      *code <<= 4;
      if (h >= '0' && h <= '9') *code |= unsigned(h - '0');
      else if (h >= 'a' && h <= 'f') *code |= unsigned(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') *code |= unsigned(h - 'A' + 10);
      else return Error("bad \\u escape");
    }
    pos_ += 4;
    return Status::OK();
  }

  static void EncodeUtf8(unsigned cp, std::string* out) {
    if (cp < 0x80) {
      *out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *out += static_cast<char>(0xC0 | (cp >> 6));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *out += static_cast<char>(0xE0 | (cp >> 12));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (cp >> 18));
      *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  // Strings arrive over the wire from untrusted clients (the gdlogd
  // request path), so by default the grammar is enforced in full: raw
  // control characters must be escaped (RFC 8259 §7), \u surrogates must
  // pair, and raw bytes must be valid, shortest-form UTF-8 — overlong
  // encodings are the classic smuggling vector for "../" and NUL. With
  // strict_strings off (trusted JsonWriter output), raw non-escape bytes
  // pass through verbatim instead, matching what the writer emits.
  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20 && options_.strict_strings) {
        return Error("unescaped control character in string");
      }
      if (c == '\\') {
        if (++pos_ >= text_.size()) break;
        char esc = text_[pos_];
        ++pos_;
        switch (esc) {
          case '"': *out += '"'; continue;
          case '\\': *out += '\\'; continue;
          case '/': *out += '/'; continue;
          case 'b': *out += '\b'; continue;
          case 'f': *out += '\f'; continue;
          case 'n': *out += '\n'; continue;
          case 'r': *out += '\r'; continue;
          case 't': *out += '\t'; continue;
          case 'u': {
            unsigned code = 0;
            GDLOG_RETURN_IF_ERROR(ReadHex4(&code));
            if (code >= 0xDC00 && code <= 0xDFFF) {
              return Error("unpaired low surrogate escape");
            }
            if (code >= 0xD800 && code <= 0xDBFF) {
              if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u') {
                return Error("unpaired high surrogate escape");
              }
              pos_ += 2;
              unsigned low = 0;
              GDLOG_RETURN_IF_ERROR(ReadHex4(&low));
              if (low < 0xDC00 || low > 0xDFFF) {
                return Error("unpaired high surrogate escape");
              }
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            }
            EncodeUtf8(code, out);
            continue;
          }
          default:
            --pos_;
            return Error("bad escape");
        }
      }
      if (c < 0x80 || !options_.strict_strings) {
        *out += static_cast<char>(c);
        ++pos_;
        continue;
      }
      // Raw multi-byte UTF-8.
      size_t len;
      unsigned cp, min_cp;
      if ((c & 0xE0) == 0xC0) {
        len = 2; cp = c & 0x1Fu; min_cp = 0x80;
      } else if ((c & 0xF0) == 0xE0) {
        len = 3; cp = c & 0x0Fu; min_cp = 0x800;
      } else if ((c & 0xF8) == 0xF0) {
        len = 4; cp = c & 0x07u; min_cp = 0x10000;
      } else {
        return Error("invalid UTF-8 byte");
      }
      if (pos_ + len > text_.size()) {
        return Error("truncated UTF-8 sequence");
      }
      for (size_t i = 1; i < len; ++i) {
        unsigned char b = static_cast<unsigned char>(text_[pos_ + i]);
        if ((b & 0xC0) != 0x80) return Error("invalid UTF-8 continuation");
        cp = (cp << 6) | (b & 0x3Fu);
      }
      if (cp < min_cp) return Error("overlong UTF-8 encoding");
      if (cp >= 0xD800 && cp <= 0xDFFF) {
        return Error("UTF-8-encoded surrogate");
      }
      if (cp > 0x10FFFF) return Error("code point out of range");
      out->append(text_, pos_, len);
      pos_ += len;
    }
    return Error("unterminated string");
  }

  // RFC 8259 number grammar: -?int frac? exp?, where int is "0" or a
  // nonzero-led digit run. strtod would also accept "+1", "01", ".5",
  // "0x1p3" — forms other JSON tooling rejects, so scan the grammar
  // explicitly and keep the raw text for callers.
  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    Consume('-');
    auto digits = [&]() -> size_t {
      size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (Consume('0')) {
      // A leading zero stands alone ("0", "0.5"); "01" is not JSON.
    } else if (digits() == 0) {
      return Error("bad value");
    }
    if (Consume('.') && digits() == 0) return Error("bad number");
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (!Consume('+')) Consume('-');
      if (digits() == 0) return Error("bad number");
    }
    out->kind_ = JsonValue::Kind::kNumber;
    out->scalar_ = std::string(text_.substr(start, pos_ - start));
    return Status::OK();
  }

  std::string_view text_;
  JsonParseOptions options_;
  size_t pos_ = 0;
};

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return JsonParser(text, JsonParseOptions{}).Parse();
}

Result<JsonValue> JsonValue::Parse(std::string_view text,
                                   const JsonParseOptions& options) {
  return JsonParser(text, options).Parse();
}

double JsonValue::NumberAsDouble() const {
  return std::strtod(scalar_.c_str(), nullptr);
}

Result<long long> JsonValue::NumberAsInt() const {
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(scalar_.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::InvalidArgument("json number out of int64 range: " +
                                   scalar_);
  }
  if (end != scalar_.c_str() + scalar_.size()) {
    return Status::InvalidArgument("json number is not an integer: " +
                                   scalar_);
  }
  return value;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

}  // namespace gdlog
