#include "util/json.h"

#include <cassert>
#include <cstdio>

namespace gdlog {

void JsonWriter::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key, no comma
  }
  if (!stack_.empty()) {
    if (stack_.back() == '1') out_ += ',';
    stack_.back() = '1';
  }
}

void JsonWriter::Escape(std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\t': out_ += "\\t"; break;
      case '\r': out_ += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_ += '{';
  stack_ += '0';
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  assert(!stack_.empty());
  stack_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  out_ += '[';
  stack_ += '0';
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  assert(!stack_.empty());
  stack_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  MaybeComma();
  out_ += '"';
  Escape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  MaybeComma();
  out_ += '"';
  Escape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  MaybeComma();
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Int(long long value) {
  MaybeComma();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
  return *this;
}

}  // namespace gdlog
