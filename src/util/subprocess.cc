#include "util/subprocess.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <stdint.h>
#include <string.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <utility>

namespace gdlog {

namespace {

void CloseQuietly(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace

Result<Subprocess> Subprocess::Spawn(const std::vector<std::string>& argv) {
  if (argv.empty()) return Status::InvalidArgument("empty subprocess argv");

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return Status::Internal(std::string("pipe: ") + ::strerror(errno));
  }

  std::vector<char*> c_argv;
  c_argv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    c_argv.push_back(const_cast<char*>(arg.c_str()));
  }
  c_argv.push_back(nullptr);

  pid_t pid = ::fork();
  if (pid < 0) {
    CloseQuietly(pipe_fds[0]);
    CloseQuietly(pipe_fds[1]);
    return Status::Internal(std::string("fork: ") + ::strerror(errno));
  }
  if (pid == 0) {
    // Child: stdout becomes the pipe's write end; stderr stays inherited.
    ::close(pipe_fds[0]);
    if (::dup2(pipe_fds[1], STDOUT_FILENO) < 0) ::_exit(127);
    ::close(pipe_fds[1]);
    ::execvp(c_argv[0], c_argv.data());
    // Exec failed; 127 is the shell convention for "command not found".
    ::_exit(127);
  }
  ::close(pipe_fds[1]);
  return Subprocess(static_cast<int>(pid), pipe_fds[0]);
}

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(std::exchange(other.pid_, -1)),
      stdout_fd_(std::exchange(other.stdout_fd_, -1)) {}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this != &other) {
    Abandon();
    pid_ = std::exchange(other.pid_, -1);
    stdout_fd_ = std::exchange(other.stdout_fd_, -1);
  }
  return *this;
}

Subprocess::~Subprocess() { Abandon(); }

void Subprocess::Abandon() {
  CloseQuietly(std::exchange(stdout_fd_, -1));
  // An abandoned handle means nobody wants the result (e.g. the shard
  // driver bailing out after one worker failed): kill the child outright —
  // closing the pipe alone only stops it at its *next* write, which for a
  // compute-bound worker could be hours away — then reap it so no zombie
  // survives.
  pid_t pid = std::exchange(pid_, -1);
  if (pid >= 0) {
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
  }
}

Result<int> Subprocess::Wait(std::string* stdout_data) {
  return Wait(stdout_data, /*timeout_ms=*/-1);
}

namespace {

/// Milliseconds of CLOCK_MONOTONIC — the deadline base for timed waits.
int64_t NowMs() {
  struct timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return int64_t(ts.tv_sec) * 1000 + ts.tv_nsec / 1'000'000;
}

}  // namespace

Result<int> Subprocess::Wait(std::string* stdout_data, int timeout_ms) {
  if (pid_ < 0) return Status::Internal("subprocess already waited on");
  const int64_t deadline =
      timeout_ms < 0 ? 0 : NowMs() + timeout_ms;
  auto timed_out = [&]() -> Status {
    Status st = Status::BudgetExhausted(
        "subprocess timed out after " + std::to_string(timeout_ms) +
        "ms; killed");
    Abandon();  // SIGKILL + reap: a wedged worker must not outlive us
    return st;
  };
  stdout_data->clear();
  char buf[1 << 16];
  for (;;) {
    if (timeout_ms >= 0) {
      int64_t remaining = deadline - NowMs();
      if (remaining <= 0) return timed_out();
      struct pollfd pfd;
      pfd.fd = stdout_fd_;
      pfd.events = POLLIN;
      int rc = ::poll(&pfd, 1,
                      static_cast<int>(remaining > INT32_MAX ? INT32_MAX
                                                             : remaining));
      if (rc < 0) {
        if (errno == EINTR) continue;
        Status st =
            Status::Internal(std::string("poll: ") + ::strerror(errno));
        Abandon();
        return st;
      }
      if (rc == 0) return timed_out();
    }
    ssize_t n = ::read(stdout_fd_, buf, sizeof(buf));
    if (n > 0) {
      stdout_data->append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) break;
    if (errno == EINTR) continue;
    // The result is lost either way; don't sit in waitpid behind a
    // compute-bound child that may not exit for hours (same rationale as
    // Abandon()).
    Status st = Status::Internal(std::string("read: ") + ::strerror(errno));
    Abandon();
    return st;
  }
  CloseQuietly(std::exchange(stdout_fd_, -1));

  int wstatus = 0;
  if (timeout_ms >= 0) {
    // EOF on stdout does not imply exit (the child may have closed the
    // pipe and wedged); poll for the exit under the same deadline.
    for (;;) {
      pid_t rc = ::waitpid(pid_, &wstatus, WNOHANG);
      if (rc > 0) {
        pid_ = -1;
        if (WIFEXITED(wstatus)) return WEXITSTATUS(wstatus);
        if (WIFSIGNALED(wstatus)) return 128 + WTERMSIG(wstatus);
        return Status::Internal("subprocess ended in unknown state");
      }
      if (rc < 0 && errno != EINTR) {
        pid_ = -1;
        return Status::Internal(std::string("waitpid: ") +
                                ::strerror(errno));
      }
      if (rc == 0) {
        if (NowMs() >= deadline) return timed_out();
        struct timespec nap = {0, 1'000'000};  // 1ms
        ::nanosleep(&nap, nullptr);
      }
    }
  }
  pid_t pid = std::exchange(pid_, -1);
  for (;;) {
    if (::waitpid(pid, &wstatus, 0) >= 0) break;
    if (errno == EINTR) continue;
    return Status::Internal(std::string("waitpid: ") + ::strerror(errno));
  }
  if (WIFEXITED(wstatus)) return WEXITSTATUS(wstatus);
  if (WIFSIGNALED(wstatus)) return 128 + WTERMSIG(wstatus);
  return Status::Internal("subprocess ended in unknown state");
}

std::string Subprocess::SelfExecutable(const std::string& fallback_argv0) {
  char buf[4096];
  ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return fallback_argv0;
}

}  // namespace gdlog
