#include "util/value.h"

#include <cmath>
#include <cstdio>

#include "util/hash.h"
#include "util/interner.h"

namespace gdlog {

double Value::AsReal() const {
  switch (kind_) {
    case Kind::kBool:
      return int_ ? 1.0 : 0.0;
    case Kind::kInt:
      return static_cast<double>(int_);
    case Kind::kDouble:
      return double_;
    case Kind::kSymbol:
      return static_cast<double>(static_cast<uint32_t>(int_));
  }
  return 0.0;
}

bool Value::operator<(const Value& other) const {
  if (kind_ != other.kind_) return kind_ < other.kind_;
  if (kind_ == Kind::kDouble) return double_ < other.double_;
  return int_ < other.int_;
}

size_t Value::Hash() const {
  uint64_t payload;
  if (kind_ == Kind::kDouble) {
    // Canonicalize -0.0 so it hashes like +0.0 only if equal; operator==
    // on doubles treats -0.0 == 0.0, so hash must match.
    double d = double_ == 0.0 ? 0.0 : double_;
    static_assert(sizeof(double) == sizeof(uint64_t));
    __builtin_memcpy(&payload, &d, sizeof(d));
  } else {
    payload = static_cast<uint64_t>(int_);
  }
  return static_cast<size_t>(
      Mix64(payload ^ (static_cast<uint64_t>(kind_) << 56)));
}

std::string Value::ToString(const Interner* interner) const {
  switch (kind_) {
    case Kind::kBool:
      return int_ ? "true" : "false";
    case Kind::kInt:
      return std::to_string(int_);
    case Kind::kDouble: {
      char buf[40];
      double d = double_;
      if (d == static_cast<int64_t>(d) && std::fabs(d) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.1f", d);
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", d);
      }
      return buf;
    }
    case Kind::kSymbol: {
      uint32_t id = symbol_id();
      if (interner != nullptr) return interner->Name(id);
      return "$sym" + std::to_string(id);
    }
  }
  return "?";
}

size_t HashTuple(const Tuple& tuple) {
  size_t h = 0x53c5a1f3u;
  for (const Value& v : tuple) h = HashCombine(h, v.Hash());
  return h;
}

std::string TupleToString(const Tuple& tuple, const Interner* interner) {
  std::string out = "(";
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) out += ", ";
    out += tuple[i].ToString(interner);
  }
  out += ")";
  return out;
}

}  // namespace gdlog
