#ifndef GDLOG_UTIL_RNG_H_
#define GDLOG_UTIL_RNG_H_

#include <cstdint>

namespace gdlog {

/// xoshiro256** — fast, high-quality, reproducible PRNG used by the
/// Monte-Carlo sampler. Seeded deterministically via SplitMix64 so that
/// every experiment is replayable from a single 64-bit seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      state_[i] = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) using Lemire's rejection method.
  uint64_t NextBounded(uint64_t bound) {
    if (bound <= 1) return 0;
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (-bound) % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace gdlog

#endif  // GDLOG_UTIL_RNG_H_
