#ifndef GDLOG_UTIL_VALUE_H_
#define GDLOG_UTIL_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace gdlog {

class Interner;

/// The constant domain C of the paper. The paper assumes every constant is
/// translatable into a real number; we keep provenance by distinguishing
/// booleans, 64-bit integers, doubles and interned symbols (symbols compare
/// by id; their "real translation" is the id). Values are trivially copyable
/// 16-byte objects so tuples are flat and cheap to hash.
class Value {
 public:
  enum class Kind : uint8_t { kBool, kInt, kDouble, kSymbol };

  Value() : kind_(Kind::kInt), int_(0) {}

  static Value Bool(bool b) {
    Value v;
    v.kind_ = Kind::kBool;
    v.int_ = b ? 1 : 0;
    return v;
  }
  static Value Int(int64_t i) {
    Value v;
    v.kind_ = Kind::kInt;
    v.int_ = i;
    return v;
  }
  static Value Double(double d) {
    Value v;
    v.kind_ = Kind::kDouble;
    v.double_ = d;
    return v;
  }
  /// A symbol previously interned; `id` is the interner id.
  static Value Symbol(uint32_t id) {
    Value v;
    v.kind_ = Kind::kSymbol;
    v.int_ = id;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_double() const { return kind_ == Kind::kDouble; }
  bool is_symbol() const { return kind_ == Kind::kSymbol; }
  bool is_numeric() const { return kind_ != Kind::kSymbol; }

  bool bool_value() const { return int_ != 0; }
  int64_t int_value() const { return int_; }
  double double_value() const { return double_; }
  uint32_t symbol_id() const { return static_cast<uint32_t>(int_); }

  /// Numeric translation per the paper's "constants are reals" convention.
  /// Symbols translate to their interner id.
  double AsReal() const;

  /// Structural equality: kind + payload. Note Int(1) != Double(1.0) —
  /// equality is identity of constants, not numeric equality; use AsReal()
  /// when numeric comparison is wanted.
  bool operator==(const Value& other) const {
    if (kind_ != other.kind_) return false;
    if (kind_ == Kind::kDouble) return double_ == other.double_;
    return int_ == other.int_;
  }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total order: by kind, then payload. Used for canonical sorting.
  bool operator<(const Value& other) const;

  size_t Hash() const;

  /// Rendering; symbols require the interner that produced them.
  std::string ToString(const Interner* interner = nullptr) const;

 private:
  Kind kind_;
  union {
    int64_t int_;
    double double_;
  };
};

/// A flat tuple of constants (one row of a relation).
using Tuple = std::vector<Value>;

size_t HashTuple(const Tuple& tuple);

struct TupleHash {
  size_t operator()(const Tuple& t) const { return HashTuple(t); }
};

std::string TupleToString(const Tuple& tuple, const Interner* interner);

}  // namespace gdlog

namespace std {
template <>
struct hash<gdlog::Value> {
  size_t operator()(const gdlog::Value& v) const { return v.Hash(); }
};
}  // namespace std

#endif  // GDLOG_UTIL_VALUE_H_
