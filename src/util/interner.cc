#include "util/interner.h"

#include <cassert>

namespace gdlog {

uint32_t Interner::Intern(std::string_view s) {
  auto it = index_.find(std::string(s));
  if (it != index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(strings_.back(), id);
  return id;
}

uint32_t Interner::Lookup(std::string_view s) const {
  auto it = index_.find(std::string(s));
  if (it == index_.end()) return kNotFound;
  return it->second;
}

const std::string& Interner::Name(uint32_t id) const {
  assert(id < strings_.size());
  return strings_[id];
}

}  // namespace gdlog
