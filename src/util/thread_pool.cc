#include "util/thread_pool.h"

#include <chrono>

namespace gdlog {

namespace {
/// Index of the pool worker the current thread is, or SIZE_MAX outside a
/// pool. Written once per worker thread at startup; lets Submit() route a
/// task spawned by a worker onto that worker's own deque.
thread_local size_t tls_worker_index = SIZE_MAX;
thread_local const ThreadPool* tls_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(size_t workers) {
  if (workers < 1) workers = 1;
  queues_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  WaitIdle();
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    work_cv_.notify_all();
  }
  for (std::thread& t : threads_) t.join();
}

size_t ThreadPool::DefaultWorkerCount() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

void ThreadPool::Submit(Task task) {
  size_t target;
  if (tls_pool == this && tls_worker_index < queues_.size()) {
    target = tls_worker_index;
  } else {
    target = next_queue_.fetch_add(1, std::memory_order_relaxed) %
             queues_.size();
  }
  inflight_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  {
    // Notify under the idle mutex so a worker between its empty scan and
    // its wait cannot miss the wakeup.
    std::lock_guard<std::mutex> lock(idle_mu_);
    work_cv_.notify_one();
  }
}

bool ThreadPool::TryGetTask(size_t index, Task* out) {
  {
    Queue& own = *queues_[index];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      *out = std::move(own.tasks.back());
      own.tasks.pop_back();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  for (size_t step = 1; step < queues_.size(); ++step) {
    Queue& victim = *queues_[(index + step) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      *out = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t index) {
  tls_worker_index = index;
  tls_pool = this;
  Task task;
  for (;;) {
    if (TryGetTask(index, &task)) {
      task(index);
      task = nullptr;  // release captures before signaling idle
      if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(idle_mu_);
        idle_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(idle_mu_);
    if (stop_.load(std::memory_order_acquire)) return;
    // The bounded wait is a backstop against any wakeup race the
    // notify-under-lock in Submit() does not already close.
    work_cv_.wait_for(lock, std::chrono::milliseconds(10), [&] {
      return stop_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
  }
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(idle_mu_);
  idle_cv_.wait(lock, [&] {
    return inflight_.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace gdlog
