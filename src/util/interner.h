#ifndef GDLOG_UTIL_INTERNER_H_
#define GDLOG_UTIL_INTERNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace gdlog {

/// Maps strings to dense 32-bit ids and back. Predicate names, symbolic
/// constants and variable names are interned so the hot paths (matching,
/// hashing, grounding) never touch string data.
class Interner {
 public:
  Interner() = default;

  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;

  /// Returns the id of `s`, interning it if new.
  uint32_t Intern(std::string_view s);

  /// Returns the id of `s` or kNotFound if it was never interned.
  static constexpr uint32_t kNotFound = UINT32_MAX;
  uint32_t Lookup(std::string_view s) const;

  /// The string for a previously returned id.
  const std::string& Name(uint32_t id) const;

  size_t size() const { return strings_.size(); }

  /// A deep copy with identical id assignment (copying is otherwise deleted
  /// so shared name tables are never duplicated by accident). The server
  /// uses this to give a database-swapped engine its own mutable name table
  /// whose existing ids agree with the original's.
  std::shared_ptr<Interner> Clone() const {
    auto copy = std::make_shared<Interner>();
    copy->index_ = index_;
    copy->strings_ = strings_;
    return copy;
  }

 private:
  std::unordered_map<std::string, uint32_t> index_;
  std::vector<std::string> strings_;
};

}  // namespace gdlog

#endif  // GDLOG_UTIL_INTERNER_H_
