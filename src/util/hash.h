#ifndef GDLOG_UTIL_HASH_H_
#define GDLOG_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>

namespace gdlog {

/// 64-bit mix (SplitMix64 finalizer). Good avalanche for hash combining.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-dependent hash combiner.
inline size_t HashCombine(size_t seed, size_t value) {
  return static_cast<size_t>(
      Mix64(static_cast<uint64_t>(seed) * 0x100000001b3ULL ^
            static_cast<uint64_t>(value)));
}

}  // namespace gdlog

#endif  // GDLOG_UTIL_HASH_H_
