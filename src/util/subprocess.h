#ifndef GDLOG_UTIL_SUBPROCESS_H_
#define GDLOG_UTIL_SUBPROCESS_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace gdlog {

/// A child process with captured stdout — the transport beneath the CLI's
/// multi-process shard orchestration (gdlog_cli --shards). The child's
/// stderr is inherited so diagnostics stream through to the operator;
/// stdout is piped and read to EOF by Wait(). POSIX-only (fork/execvp), as
/// is the rest of the build.
class Subprocess {
 public:
  /// Starts `argv` (argv[0] is the executable, resolved via PATH when it
  /// contains no slash). The caller may spawn several children before
  /// waiting on any of them — that is what runs shards concurrently.
  static Result<Subprocess> Spawn(const std::vector<std::string>& argv);

  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;
  ~Subprocess();

  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;

  /// Reads the child's stdout to EOF into `stdout_data`, then reaps it and
  /// returns its exit code (128 + signal for abnormal termination). A
  /// child blocked writing past the pipe buffer simply waits until this
  /// call drains it — callers waiting on children one by one cannot
  /// deadlock. Valid once.
  Result<int> Wait(std::string* stdout_data);

  /// Like Wait(), but gives up after `timeout_ms` (-1 = wait forever): the
  /// child is SIGKILLed and reaped, and kBudgetExhausted comes back with
  /// whatever stdout had arrived left in `stdout_data`. This is what keeps
  /// hung workers — a wedged shard, a server integration test gone wrong —
  /// from hanging CI forever. The deadline covers the whole drain+reap,
  /// including a child that closed stdout but refuses to exit.
  Result<int> Wait(std::string* stdout_data, int timeout_ms);

  /// The path of the currently running executable (/proc/self/exe when
  /// resolvable, `fallback_argv0` otherwise) — how the shard driver
  /// re-invokes itself as a worker.
  static std::string SelfExecutable(const std::string& fallback_argv0);

 private:
  Subprocess(int pid, int stdout_fd) : pid_(pid), stdout_fd_(stdout_fd) {}

  /// Destructor path for a handle nobody Wait()ed on: SIGKILL + reap.
  void Abandon();

  int pid_ = -1;
  int stdout_fd_ = -1;
};

}  // namespace gdlog

#endif  // GDLOG_UTIL_SUBPROCESS_H_
