#ifndef GDLOG_UTIL_STATUS_H_
#define GDLOG_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace gdlog {

/// Error taxonomy for the whole library. Mirrors the RocksDB/Arrow idiom:
/// no exceptions cross the public API; fallible operations return Status
/// (or Result<T> below).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Malformed input (bad rule, bad parameters, ...).
  kParseError,        ///< Surface-syntax error; message carries line/column.
  kNotFound,          ///< Lookup miss (unknown predicate, distribution, ...).
  kAlreadyExists,     ///< Duplicate registration.
  kUnsafeProgram,     ///< Safety / range-restriction violation.
  kNotStratified,     ///< Operation requires stratified negation.
  kBudgetExhausted,   ///< Exploration budget hit before completion.
  kUnsupported,       ///< Feature combination not supported.
  kInternal,          ///< Invariant violation inside the engine (a bug).
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error value. OK carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status UnsafeProgram(std::string msg) {
    return Status(StatusCode::kUnsafeProgram, std::move(msg));
  }
  static Status NotStratified(std::string msg) {
    return Status(StatusCode::kNotStratified, std::move(msg));
  }
  static Status BudgetExhausted(std::string msg) {
    return Status(StatusCode::kBudgetExhausted, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value-or-Status. Accessing the value of an errored Result is a
/// programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /*implicit*/ Result(T value) : value_(std::move(value)) {}
  /*implicit*/ Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "OK Result must carry a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status from an expression.
#define GDLOG_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::gdlog::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

/// Assigns the value of a Result expression or propagates its Status.
#define GDLOG_ASSIGN_OR_RETURN(lhs, expr)      \
  GDLOG_ASSIGN_OR_RETURN_IMPL_(                \
      GDLOG_STATUS_CONCAT_(_res, __LINE__), lhs, expr)

#define GDLOG_ASSIGN_OR_RETURN_IMPL_(res, lhs, expr) \
  auto res = (expr);                                 \
  if (!res.ok()) return res.status();                \
  lhs = std::move(res).value()

#define GDLOG_STATUS_CONCAT_(a, b) GDLOG_STATUS_CONCAT_IMPL_(a, b)
#define GDLOG_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace gdlog

#endif  // GDLOG_UTIL_STATUS_H_
