#ifndef GDLOG_UTIL_THREAD_POOL_H_
#define GDLOG_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gdlog {

/// A work-stealing task pool for the parallel chase (and any future
/// fan-out workload). Each worker owns a deque: it pushes and pops its own
/// work LIFO — so a tree-shaped computation explores depth-first and keeps
/// the frontier small — and steals FIFO from the front of a victim's deque
/// when its own runs dry, which hands over the oldest (largest-subtree)
/// items, the classic work-stealing heuristic.
///
/// Tasks receive the index of the worker running them (0 .. workers()-1),
/// which callers use to index per-worker accumulators without locking.
/// Tasks may Submit() further tasks; WaitIdle() returns only once every
/// task, including transitively spawned ones, has finished. Tasks must not
/// throw (the engine reports failures through Status side channels).
class ThreadPool {
 public:
  using Task = std::function<void(size_t worker)>;

  /// Spawns `workers` threads (at least 1). The constructing thread never
  /// runs tasks; it coordinates via Submit()/WaitIdle().
  explicit ThreadPool(size_t workers);

  /// Joins all workers. Pending tasks are drained first (the destructor
  /// calls WaitIdle()).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t workers() const { return queues_.size(); }

  /// Enqueues a task. Called from a worker, the task lands on that
  /// worker's own deque (LIFO locality); called from outside, tasks are
  /// distributed round-robin.
  void Submit(Task task);

  /// Blocks until no task is queued or running.
  void WaitIdle();

  /// std::thread::hardware_concurrency(), clamped to at least 1.
  static size_t DefaultWorkerCount();

 private:
  struct Queue {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  void WorkerLoop(size_t index);
  /// Pops from the back of worker `index`'s own deque, else steals from the
  /// front of another's. Returns false when every deque is empty.
  bool TryGetTask(size_t index, Task* out);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> threads_;

  std::mutex idle_mu_;
  std::condition_variable work_cv_;   ///< signaled when a task is queued
  std::condition_variable idle_cv_;   ///< signaled when inflight_ hits 0
  std::atomic<size_t> inflight_{0};   ///< queued + running tasks
  std::atomic<size_t> queued_{0};     ///< queued, not yet picked up
  std::atomic<size_t> next_queue_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace gdlog

#endif  // GDLOG_UTIL_THREAD_POOL_H_
