#include "util/prob.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <numeric>

namespace gdlog {

namespace {

using Int128 = __int128;

bool FitsInt64(Int128 v) {
  return v <= INT64_MAX && v >= INT64_MIN;
}

Int128 Gcd128(Int128 a, Int128 b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    Int128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace

Rational::Rational(int64_t num, int64_t den)
    : num_(num), den_(den), exact_(den != 0) {
  if (!exact_) {
    approx_ = std::numeric_limits<double>::quiet_NaN();
    return;
  }
  Normalize();
}

void Rational::Normalize() {
  if (!exact_) return;
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  int64_t g = std::gcd(num_ < 0 ? -num_ : num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
}

Rational Rational::Inexact(double approx) {
  Rational r;
  r.exact_ = false;
  r.approx_ = approx;
  return r;
}

Rational Rational::FromDecimal(double d) {
  // Try denominators 10^k for k = 0..9: catches every decimal literal with
  // up to nine fractional digits, which covers program text like 0.1, 0.25.
  int64_t den = 1;
  for (int k = 0; k <= 9; ++k) {
    double scaled = d * static_cast<double>(den);
    double rounded = std::nearbyint(scaled);
    if (std::fabs(scaled - rounded) < 1e-9 * std::max(1.0, std::fabs(scaled)) &&
        std::fabs(rounded) < 9.2e18) {
      int64_t num = static_cast<int64_t>(rounded);
      // Never collapse a non-zero double to the exact rational 0 (tiny
      // probability masses must stay positive, merely inexact).
      if (num == 0 && d != 0.0) {
        den *= 10;
        continue;
      }
      if (static_cast<double>(num) / static_cast<double>(den) == d ||
          std::fabs(static_cast<double>(num) / static_cast<double>(den) - d) <
              1e-15 * std::max(1.0, std::fabs(d))) {
        return Rational(num, den);
      }
    }
    den *= 10;
  }
  return Inexact(d);
}

double Rational::ToDouble() const {
  if (!exact_) return approx_;
  return static_cast<double>(num_) / static_cast<double>(den_);
}

Rational Rational::operator*(const Rational& other) const {
  if (!exact_ || !other.exact_) return Inexact(ToDouble() * other.ToDouble());
  // Cross-reduce before multiplying to delay overflow.
  int64_t g1 = std::gcd(num_ < 0 ? -num_ : num_, other.den_);
  int64_t g2 = std::gcd(other.num_ < 0 ? -other.num_ : other.num_, den_);
  Int128 num = Int128(num_ / g1) * Int128(other.num_ / g2);
  Int128 den = Int128(den_ / g2) * Int128(other.den_ / g1);
  if (!FitsInt64(num) || !FitsInt64(den)) {
    return Inexact(ToDouble() * other.ToDouble());
  }
  return Rational(static_cast<int64_t>(num), static_cast<int64_t>(den));
}

Rational Rational::operator+(const Rational& other) const {
  if (!exact_ || !other.exact_) return Inexact(ToDouble() + other.ToDouble());
  Int128 num = Int128(num_) * other.den_ + Int128(other.num_) * den_;
  Int128 den = Int128(den_) * other.den_;
  Int128 g = Gcd128(num, den);
  if (g > 1) {
    num /= g;
    den /= g;
  }
  if (!FitsInt64(num) || !FitsInt64(den)) {
    return Inexact(ToDouble() + other.ToDouble());
  }
  return Rational(static_cast<int64_t>(num), static_cast<int64_t>(den));
}

Rational Rational::operator-(const Rational& other) const {
  Rational neg = other;
  if (neg.exact_) {
    neg.num_ = -neg.num_;
  } else {
    neg.approx_ = -neg.approx_;
  }
  return *this + neg;
}

bool Rational::operator==(const Rational& other) const {
  if (exact_ && other.exact_) {
    return num_ == other.num_ && den_ == other.den_;
  }
  return ToDouble() == other.ToDouble();
}

bool Rational::operator<(const Rational& other) const {
  if (exact_ && other.exact_) {
    return Int128(num_) * other.den_ < Int128(other.num_) * den_;
  }
  return ToDouble() < other.ToDouble();
}

std::string Rational::ToString() const {
  if (!exact_) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", approx_);
    return buf;
  }
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

}  // namespace gdlog
