#include "opt/pass_manager.h"

#include <chrono>
#include <cstdlib>
#include <functional>

namespace gdlog {

bool OptDisabledByEnv() {
  const char* value = std::getenv("GDLOG_NO_OPT");
  if (value == nullptr || value[0] == '\0') return false;
  return !(value[0] == '0' && value[1] == '\0');
}

OptStats RunPipeline(ProgramIr* ir, const DbSummary& db,
                     const PipelineOptions& options) {
  using Clock = std::chrono::steady_clock;
  OptStats stats;
  stats.enabled = true;
  stats.rules_in = ir->rules().size();
  if (options.record_dumps) stats.dumps.emplace_back("initial", ir->Dump());

  auto run_pass = [&](const char* name, const std::function<size_t()>& pass) {
    Clock::time_point start = Clock::now();
    size_t rewrites = pass();
    uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count());
    PassStat stat;
    stat.name = name;
    stat.wall_ns = ns;
    stat.rewrites = rewrites;
    stats.passes.push_back(std::move(stat));
    stats.total_wall_ns += ns;
    if (options.record_dumps) {
      stats.dumps.emplace_back(std::string("after ") + name, ir->Dump());
    }
  };

  PassContext ctx;
  ctx.db = &db;
  ctx.max_domain = options.max_domain;
  ctx.max_split = options.max_split;

  if (!options.demand_goals.empty()) {
    stats.demand_applied = true;
    run_pass("demand", [&] {
      return DemandPass(ir, options.demand_goals, &stats.counters);
    });
  }
  if (options.specialize) {
    run_pass("specialize",
             [&] { return SpecializationPass(ir, ctx, &stats.counters); });
  }
  if (options.eliminate_dead) {
    run_pass("dead-rule",
             [&] { return DeadRuleEliminationPass(ir, ctx, &stats.counters); });
  }
  if (options.share_subjoins) {
    run_pass("subjoin-share",
             [&] { return SubjoinSharingPass(ir, &stats.counters); });
  }
  stats.rules_out = ir->rules().size();
  return stats;
}

}  // namespace gdlog
