#include "opt/passes.h"

#include <algorithm>
#include <string>
#include <utility>

#include "gdatalog/translation.h"

namespace gdlog {

namespace {

/// Meet (intersection) of the column domains over every positive-body
/// occurrence of `var`: an overapproximation of the values any match can
/// bind `var` to. ⊤ when no occurrence constrains it.
ColumnDomain MeetVarDomain(
    const Rule& rule, uint32_t var,
    const std::map<uint32_t, std::vector<ColumnDomain>>& domains) {
  ColumnDomain acc = ColumnDomain::Top();
  for (const Literal& lit : rule.body) {
    if (lit.negated) continue;
    auto it = domains.find(lit.atom.predicate);
    if (it == domains.end()) continue;
    for (size_t c = 0; c < lit.atom.args.size() && c < it->second.size();
         ++c) {
      const Term& t = lit.atom.args[c];
      if (!t.is_variable() || t.var_id() != var) continue;
      const ColumnDomain& d = it->second[c];
      if (d.top) continue;
      if (acc.top) {
        acc = d;
        continue;
      }
      std::set<Value> intersection;
      for (const Value& v : acc.values) {
        if (d.values.count(v) != 0) intersection.insert(v);
      }
      acc.values = std::move(intersection);
    }
  }
  return acc;
}

/// Replaces every occurrence of `var` (body, head, Δ-term parameters and
/// the emit body) by the constant `value`.
void SubstituteVar(RuleIr* rule, uint32_t var, const Value& value) {
  auto fix_term = [&](Term& t) {
    if (t.is_variable() && t.var_id() == var) t = Term::Constant(value);
  };
  auto fix_body = [&](std::vector<Literal>* body) {
    for (Literal& lit : *body) {
      for (Term& t : lit.atom.args) fix_term(t);
    }
  };
  fix_body(&rule->rule.body);
  fix_body(&rule->emit_body);
  if (rule->rule.is_constraint) return;
  for (HeadArg& arg : rule->rule.head.args) {
    if (arg.is_delta()) {
      DeltaTerm dt = arg.delta();
      for (Term& t : dt.params) fix_term(t);
      for (Term& t : dt.events) fix_term(t);
      arg = HeadArg(std::move(dt));
    } else if (arg.term().is_variable() && arg.term().var_id() == var) {
      arg = HeadArg(Term::Constant(value));
    }
  }
}

/// All positive-body variables of `rule` with their meet domains, keyed by
/// interned id (deterministic iteration order).
std::map<uint32_t, ColumnDomain> PositiveVarDomains(
    const Rule& rule,
    const std::map<uint32_t, std::vector<ColumnDomain>>& domains) {
  std::map<uint32_t, ColumnDomain> out;
  for (const Literal& lit : rule.body) {
    if (lit.negated) continue;
    for (const Term& t : lit.atom.args) {
      if (t.is_variable() && out.count(t.var_id()) == 0) {
        out.emplace(t.var_id(), MeetVarDomain(rule, t.var_id(), domains));
      }
    }
  }
  return out;
}

bool PositiveBodyPresent(const Rule& rule, const std::set<uint32_t>& present) {
  for (const Literal& lit : rule.body) {
    if (!lit.negated && present.count(lit.atom.predicate) == 0) return false;
  }
  return true;
}

}  // namespace

DomainAnalysis AnalyzeDomains(const ProgramIr& ir, const DbSummary& db,
                              size_t max_domain) {
  DomainAnalysis out;
  const TranslatedProgram* translated = ir.translated();

  // Presence: a predicate may have facts iff the database has rows for it,
  // a rule with an all-present positive body derives it, or it is the
  // Result partner of a present Active predicate (choices cascade Active
  // atoms into Result facts). Negation is ignored — sound overapproximation.
  for (const auto& [pred, summary] : db.predicates) {
    if (summary.rows > 0) out.present.insert(pred);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const RuleIr& rule : ir.rules()) {
      if (rule.rule.is_constraint) continue;
      if (out.present.count(rule.rule.head.predicate) != 0) continue;
      if (PositiveBodyPresent(rule.rule, out.present)) {
        out.present.insert(rule.rule.head.predicate);
        changed = true;
      }
    }
    if (translated != nullptr) {
      for (const DeltaSignature& sig : translated->signatures()) {
        if (out.present.count(sig.active_pred) != 0 &&
            out.present.insert(sig.result_pred).second) {
          changed = true;
        }
      }
    }
  }

  // Column domains, to a fixpoint: seeded from the database summary, grown
  // through the heads of rules whose body is satisfiable, and through the
  // Active → Result pairing (Result copies Active's columns; the sampled
  // y column is unconstrained).
  for (const auto& [pred, arity] : ir.arities()) {
    out.domains[pred].assign(arity, ColumnDomain{});
  }
  for (const auto& [pred, summary] : db.predicates) {
    auto it = out.domains.find(pred);
    if (it == out.domains.end()) continue;
    if (summary.columns.size() != it->second.size()) {
      for (ColumnDomain& col : it->second) col = ColumnDomain::Top();
      continue;
    }
    for (size_t c = 0; c < it->second.size(); ++c) {
      it->second[c].Join(summary.columns[c], max_domain);
    }
  }
  changed = true;
  while (changed) {
    changed = false;
    for (const RuleIr& rule : ir.rules()) {
      if (rule.rule.is_constraint) continue;
      if (!PositiveBodyPresent(rule.rule, out.present)) continue;
      auto it = out.domains.find(rule.rule.head.predicate);
      if (it == out.domains.end()) continue;
      std::vector<ColumnDomain>& head_domains = it->second;
      for (size_t i = 0;
           i < rule.rule.head.args.size() && i < head_domains.size(); ++i) {
        const HeadArg& arg = rule.rule.head.args[i];
        if (arg.is_delta()) {
          // Δ-terms only survive in unlifted heads; their sampled value is
          // unconstrained.
          changed |= head_domains[i].Join(ColumnDomain::Top(), max_domain);
          continue;
        }
        const Term& t = arg.term();
        if (t.is_constant()) {
          changed |= head_domains[i].JoinValue(t.constant(), max_domain);
        } else {
          changed |= head_domains[i].Join(
              MeetVarDomain(rule.rule, t.var_id(), out.domains), max_domain);
        }
      }
    }
    if (translated != nullptr) {
      for (const DeltaSignature& sig : translated->signatures()) {
        auto active = out.domains.find(sig.active_pred);
        auto result = out.domains.find(sig.result_pred);
        if (active == out.domains.end() || result == out.domains.end()) {
          continue;
        }
        size_t n = active->second.size();
        for (size_t c = 0; c < n && c < result->second.size(); ++c) {
          changed |= result->second[c].Join(active->second[c], max_domain);
        }
        if (result->second.size() == n + 1) {
          changed |= result->second[n].Join(ColumnDomain::Top(), max_domain);
        }
      }
    }
  }
  return out;
}

size_t SpecializationPass(ProgramIr* ir, const PassContext& ctx,
                          OptCounters* counters) {
  if (ctx.db == nullptr) return 0;
  DomainAnalysis analysis = AnalyzeDomains(*ir, *ctx.db, ctx.max_domain);
  std::vector<RuleIr> out;
  out.reserve(ir->rules().size());
  std::set<uint32_t> touched;
  size_t rewrites = 0;
  for (RuleIr& rule : ir->rules()) {
    std::map<uint32_t, ColumnDomain> var_domains =
        PositiveVarDomains(rule.rule, analysis.domains);

    // Narrowing: a variable whose meet is one constant always binds to it;
    // substituting turns the join plan's slot ops into constant checks.
    bool narrowed = false;
    std::set<uint32_t> substituted;
    for (const auto& [var, dom] : var_domains) {
      if (dom.top || dom.values.size() != 1) continue;
      SubstituteVar(&rule, var, *dom.values.begin());
      substituted.insert(var);
      narrowed = true;
    }

    // Splitting: one small-domain join variable per rule, one copy per
    // constant. Every actual match binds the variable inside its domain,
    // so the copies produce exactly the original instance set.
    uint32_t split_var = 0;
    const std::set<Value>* split_values = nullptr;
    for (const auto& [var, dom] : var_domains) {
      if (substituted.count(var) != 0 || dom.top) continue;
      if (dom.values.size() < 2 || dom.values.size() > ctx.max_split) continue;
      size_t atoms_with_var = 0;
      for (const Literal& lit : rule.rule.body) {
        if (lit.negated) continue;
        for (const Term& t : lit.atom.args) {
          if (t.is_variable() && t.var_id() == var) {
            ++atoms_with_var;
            break;
          }
        }
      }
      if (atoms_with_var < 2) continue;  // only join variables pay for it
      split_var = var;
      split_values = &dom.values;
      break;
    }

    if (!rule.rule.is_constraint && (narrowed || split_values != nullptr)) {
      touched.insert(rule.rule.head.predicate);
    }
    if (split_values != nullptr) {
      for (const Value& v : *split_values) {
        RuleIr copy = rule;
        SubstituteVar(&copy, split_var, v);
        out.push_back(std::move(copy));
      }
      ++counters->rules_specialized;
      ++rewrites;
      continue;
    }
    if (narrowed) {
      ++counters->rules_specialized;
      ++rewrites;
    }
    out.push_back(std::move(rule));
  }
  ir->rules() = std::move(out);
  ir->RebuildIndexes();
  counters->predicates_specialized += touched.size();
  return rewrites;
}

size_t DeadRuleEliminationPass(ProgramIr* ir, const PassContext& ctx,
                               OptCounters* counters) {
  if (ctx.db == nullptr) return 0;
  size_t removed_total = 0;
  // Constant-vs-domain removals can expose more dead rules (the removed
  // rule was a predicate's only producer); iterate to a fixpoint.
  for (;;) {
    DomainAnalysis analysis = AnalyzeDomains(*ir, *ctx.db, ctx.max_domain);
    std::vector<bool> dead_flags(ir->rules().size(), false);
    size_t removed = 0;
    for (size_t i = 0; i < ir->rules().size(); ++i) {
      const RuleIr& rule = ir->rules()[i];
      bool dead = false;
      for (const Literal& lit : rule.rule.body) {
        if (lit.negated) continue;
        if (analysis.present.count(lit.atom.predicate) == 0) {
          dead = true;
          break;
        }
        auto it = analysis.domains.find(lit.atom.predicate);
        if (it == analysis.domains.end()) continue;
        for (size_t c = 0; c < lit.atom.args.size() && c < it->second.size();
             ++c) {
          const Term& t = lit.atom.args[c];
          if (t.is_constant() && !it->second[c].Contains(t.constant())) {
            dead = true;
            break;
          }
        }
        if (dead) break;
      }
      if (!dead) {
        // A positive variable with an empty meet can never bind.
        std::map<uint32_t, ColumnDomain> var_domains =
            PositiveVarDomains(rule.rule, analysis.domains);
        for (const auto& [var, dom] : var_domains) {
          (void)var;
          if (!dom.top && dom.values.empty()) {
            dead = true;
            break;
          }
        }
      }
      if (dead) {
        dead_flags[i] = true;
        ++removed;
      }
    }
    if (removed == 0) break;
    std::vector<RuleIr> kept;
    kept.reserve(ir->rules().size() - removed);
    for (size_t i = 0; i < ir->rules().size(); ++i) {
      if (!dead_flags[i]) kept.push_back(std::move(ir->rules()[i]));
    }
    ir->rules() = std::move(kept);
    ir->RebuildIndexes();
    removed_total += removed;
  }
  counters->rules_eliminated += removed_total;
  return removed_total;
}

size_t DemandPass(ProgramIr* ir, const std::vector<uint32_t>& goal_preds,
                  OptCounters* counters) {
  if (goal_preds.empty()) return 0;
  const TranslatedProgram* translated = ir->translated();
  std::set<uint32_t> live(goal_preds.begin(), goal_preds.end());
  bool changed = true;
  while (changed) {
    changed = false;
    for (const RuleIr& rule : ir->rules()) {
      // Constraints are always demanded: they decide model existence and
      // P(consistent), which every marginal report conditions on.
      bool relevant = rule.rule.is_constraint ||
                      live.count(rule.rule.head.predicate) != 0;
      if (!relevant) continue;
      for (const Literal& lit : rule.rule.body) {
        changed |= live.insert(lit.atom.predicate).second;
      }
    }
    if (translated != nullptr) {
      for (const DeltaSignature& sig : translated->signatures()) {
        if (live.count(sig.active_pred) != 0) {
          changed |= live.insert(sig.result_pred).second;
        }
        if (live.count(sig.result_pred) != 0) {
          changed |= live.insert(sig.active_pred).second;
        }
      }
    }
  }
  size_t removed = 0;
  for (const RuleIr& rule : ir->rules()) {
    if (!rule.rule.is_constraint &&
        live.count(rule.rule.head.predicate) == 0) {
      ++removed;
    }
  }
  if (removed != 0) {
    std::vector<RuleIr> kept;
    kept.reserve(ir->rules().size() - removed);
    for (RuleIr& rule : ir->rules()) {
      if (rule.rule.is_constraint ||
          live.count(rule.rule.head.predicate) != 0) {
        kept.push_back(std::move(rule));
      }
    }
    ir->rules() = std::move(kept);
    ir->RebuildIndexes();
  }
  counters->demand_eliminated_rules += removed;
  return removed;
}

size_t SubjoinSharingPass(ProgramIr* ir, OptCounters* counters) {
  const TranslatedProgram* translated = ir->translated();
  Interner* interner = ir->interner();
  if (interner == nullptr) return 0;

  // The shareable shape of a rule body: skip the Result literals the
  // translation prepends (so an Active rule and its paired head rule align
  // on the original Π body), then take the maximal leading run of positive
  // literals.
  auto shape_of = [&](const Rule& rule, size_t* skip, size_t* run) {
    size_t i = 0;
    if (translated != nullptr) {
      while (i < rule.body.size() && !rule.body[i].negated &&
             translated->IsResultPredicate(rule.body[i].atom.predicate)) {
        ++i;
      }
    }
    *skip = i;
    size_t j = i;
    while (j < rule.body.size() && !rule.body[j].negated) ++j;
    *run = j - i;
  };

  struct Group {
    size_t stratum;
    std::vector<Literal> run;
    std::vector<size_t> members;
    std::vector<size_t> skips;
  };
  std::vector<Group> groups;
  for (size_t i = 0; i < ir->rules().size(); ++i) {
    const RuleIr& rule = ir->rules()[i];
    if (rule.rule.is_constraint || rule.aux_head || !rule.emit_body.empty()) {
      continue;
    }
    size_t skip = 0, run = 0;
    shape_of(rule.rule, &skip, &run);
    if (run < 2) continue;  // single-atom prefixes save no join work
    std::vector<Literal> run_lits(rule.rule.body.begin() + skip,
                                  rule.rule.body.begin() + skip + run);
    bool found = false;
    for (Group& group : groups) {
      if (group.stratum == rule.stratum && group.run == run_lits) {
        group.members.push_back(i);
        group.skips.push_back(skip);
        found = true;
        break;
      }
    }
    if (!found) {
      groups.push_back(Group{rule.stratum, std::move(run_lits), {i}, {skip}});
    }
  }

  struct Rewrite {
    Atom aux_atom;
    size_t skip;
    size_t run;
  };
  std::map<size_t, RuleIr> aux_by_position;  // first-consumer index → aux rule
  std::map<size_t, Rewrite> rewrites;
  size_t shared = 0;
  for (Group& group : groups) {
    if (group.members.size() < 2) continue;
    std::string name = "__join_" + std::to_string(shared);
    while (interner->Lookup(name) != Interner::kNotFound) name += "_";
    uint32_t aux_pred = interner->Intern(name);

    // Project every variable of the shared run, in first-occurrence order:
    // consumers' heads, negatives and tails may use any of them.
    std::vector<uint32_t> vars;
    for (const Literal& lit : group.run) {
      for (const Term& t : lit.atom.args) {
        if (t.is_variable() &&
            std::find(vars.begin(), vars.end(), t.var_id()) == vars.end()) {
          vars.push_back(t.var_id());
        }
      }
    }

    RuleIr aux;
    aux.rule.head.predicate = aux_pred;
    for (uint32_t v : vars) {
      aux.rule.head.args.push_back(HeadArg(Term::Variable(v)));
    }
    aux.rule.body = group.run;
    aux.aux_head = true;
    aux.origin = ir->rules()[group.members.front()].origin;
    aux.stratum = group.stratum;

    Atom aux_atom;
    aux_atom.predicate = aux_pred;
    for (uint32_t v : vars) aux_atom.args.push_back(Term::Variable(v));
    aux_by_position.emplace(group.members.front(), std::move(aux));
    for (size_t k = 0; k < group.members.size(); ++k) {
      rewrites.emplace(group.members[k],
                       Rewrite{aux_atom, group.skips[k], group.run.size()});
    }
    ++shared;
  }
  if (shared == 0) return 0;

  std::vector<RuleIr> out;
  out.reserve(ir->rules().size() + shared);
  for (size_t i = 0; i < ir->rules().size(); ++i) {
    auto aux = aux_by_position.find(i);
    if (aux != aux_by_position.end()) out.push_back(std::move(aux->second));
    RuleIr rule = std::move(ir->rules()[i]);
    auto rewrite = rewrites.find(i);
    if (rewrite != rewrites.end()) {
      const Rewrite& r = rewrite->second;
      rule.emit_body = rule.rule.body;  // ground output keeps this form
      std::vector<Literal> body(rule.rule.body.begin(),
                                rule.rule.body.begin() + r.skip);
      body.push_back(Literal{r.aux_atom, /*negated=*/false});
      body.insert(body.end(), rule.rule.body.begin() + r.skip + r.run,
                  rule.rule.body.end());
      rule.rule.body = std::move(body);
    }
    out.push_back(std::move(rule));
  }
  ir->rules() = std::move(out);
  ir->RebuildIndexes();
  counters->subjoins_shared += shared;
  return shared;
}

}  // namespace gdlog
