#include "opt/ir.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <utility>

#include "gdatalog/translation.h"
#include "ground/dependency_graph.h"

namespace gdlog {

bool ColumnDomain::Join(const ColumnDomain& other, size_t cap) {
  if (top) return false;
  if (other.top) {
    top = true;
    values.clear();
    return true;
  }
  bool changed = false;
  for (const Value& v : other.values) changed |= JoinValue(v, cap);
  return changed;
}

bool ColumnDomain::JoinValue(const Value& v, size_t cap) {
  if (top) return false;
  if (!values.insert(v).second) return false;
  if (values.size() > cap) {
    top = true;
    values.clear();
  }
  return true;
}

DbSummary SummarizeDb(const FactStore& db, size_t max_domain_values) {
  DbSummary out;
  std::vector<uint32_t> preds = db.Predicates();
  std::sort(preds.begin(), preds.end());
  for (uint32_t pred : preds) {
    const std::vector<Tuple>& rows = db.Rows(pred);
    DbSummary::PredicateSummary& summary = out.predicates[pred];
    summary.rows = rows.size();
    if (rows.empty()) continue;
    summary.columns.assign(rows[0].size(), ColumnDomain{});
    for (const Tuple& row : rows) {
      if (row.size() != summary.columns.size()) {
        // Ragged relation (cannot happen through the parser, but stay
        // sound): give up on column precision entirely.
        for (ColumnDomain& col : summary.columns) col = ColumnDomain::Top();
        break;
      }
      for (size_t c = 0; c < row.size(); ++c) {
        summary.columns[c].JoinValue(row[c], max_domain_values);
      }
    }
  }
  return out;
}

bool PipelineEquivalent(const DbSummary& a, const DbSummary& b) {
  if (a.predicates.size() != b.predicates.size()) return false;
  auto ia = a.predicates.begin();
  auto ib = b.predicates.begin();
  for (; ia != a.predicates.end(); ++ia, ++ib) {
    if (ia->first != ib->first) return false;
    if ((ia->second.rows > 0) != (ib->second.rows > 0)) return false;
    if (!(ia->second.columns == ib->second.columns)) return false;
  }
  return true;
}

void UpdateSummaryForDelta(DbSummary* summary, const FactStore& db,
                           const DeltaRanges& ranges,
                           size_t max_domain_values) {
  for (const auto& [pred, range] : ranges.ranges) {
    if (range.end <= range.begin) continue;
    const std::vector<Tuple>& rows = db.Rows(pred);
    DbSummary::PredicateSummary& s = summary->predicates[pred];
    for (uint32_t r = range.begin; r < range.end && r < rows.size(); ++r) {
      const Tuple& row = rows[r];
      if (s.rows == 0 && s.columns.empty()) {
        s.columns.assign(row.size(), ColumnDomain{});
      }
      ++s.rows;
      if (row.size() != s.columns.size()) {
        // Ragged relation: mirror SummarizeDb's fallback.
        for (ColumnDomain& col : s.columns) col = ColumnDomain::Top();
        continue;
      }
      for (size_t c = 0; c < row.size(); ++c) {
        s.columns[c].JoinValue(row[c], max_domain_values);
      }
    }
  }
}

namespace {

size_t StratumOfOrigin(const Program& pi, const std::map<uint32_t, size_t>& strata,
                       size_t origin) {
  const Rule& rule = pi.rules()[origin];
  if (rule.is_constraint) return ProgramIr::kConstraintStratum;
  auto it = strata.find(rule.head.predicate);
  return it == strata.end() ? 0 : it->second;
}

/// "p/bf" for one literal given the variables bound so far.
std::string AdornLiteral(const Atom& atom, const std::set<uint32_t>& bound,
                         const Interner* interner) {
  std::string out =
      interner != nullptr ? interner->Name(atom.predicate) : "?";
  out += "/";
  for (const Term& t : atom.args) {
    out += (t.is_constant() || bound.count(t.var_id()) != 0) ? 'b' : 'f';
  }
  return out;
}

std::string AdornRule(const Rule& rule, const Interner* interner) {
  std::set<uint32_t> bound;
  std::string body;
  for (const Literal& lit : rule.body) {
    if (!body.empty()) body += ", ";
    if (lit.negated) body += "not ";
    body += AdornLiteral(lit.atom, bound, interner);
    if (!lit.negated) {
      for (const Term& t : lit.atom.args) {
        if (t.is_variable()) bound.insert(t.var_id());
      }
    }
  }
  if (rule.is_constraint) return "<- " + body;
  std::string head =
      interner != nullptr ? interner->Name(rule.head.predicate) : "?";
  head += "/";
  for (const HeadArg& arg : rule.head.args) {
    if (arg.is_delta()) {
      head += 'd';
    } else {
      const Term& t = arg.term();
      head += (t.is_constant() || bound.count(t.var_id()) != 0) ? 'b' : 'f';
    }
  }
  return head + " <- " + body;
}

}  // namespace

ProgramIr ProgramIr::LiftSigma(const Program& pi,
                               const TranslatedProgram& translated,
                               Interner* interner) {
  ProgramIr ir;
  ir.interner_ = interner;
  ir.translated_ = &translated;
  DependencyGraph dg(pi);
  const std::map<uint32_t, size_t>& strata = dg.Strata();
  const Program& sigma = translated.sigma();
  ir.rules_.reserve(sigma.rules().size());
  for (size_t i = 0; i < sigma.rules().size(); ++i) {
    RuleIr rule;
    rule.rule = sigma.rules()[i];
    rule.origin = translated.origin()[i];
    rule.stratum = rule.rule.is_constraint
                       ? kConstraintStratum
                       : StratumOfOrigin(pi, strata, rule.origin);
    if (i < translated.exec_info().size()) {
      rule.aux_head = translated.exec_info()[i].aux_head;
      rule.emit_body = translated.exec_info()[i].emit_body;
    }
    ir.rules_.push_back(std::move(rule));
  }
  ir.RebuildIndexes();
  return ir;
}

ProgramIr ProgramIr::LiftPlain(const Program& pi, Interner* interner) {
  ProgramIr ir;
  ir.interner_ = interner;
  DependencyGraph dg(pi);
  const std::map<uint32_t, size_t>& strata = dg.Strata();
  ir.rules_.reserve(pi.rules().size());
  for (size_t i = 0; i < pi.rules().size(); ++i) {
    RuleIr rule;
    rule.rule = pi.rules()[i];
    rule.origin = i;
    if (rule.rule.is_constraint) {
      rule.stratum = kConstraintStratum;
    } else {
      auto it = strata.find(rule.rule.head.predicate);
      rule.stratum = it == strata.end() ? 0 : it->second;
    }
    ir.rules_.push_back(std::move(rule));
  }
  ir.RebuildIndexes();
  return ir;
}

void ProgramIr::RebuildIndexes() {
  defs_.clear();
  uses_.clear();
  arities_.clear();
  for (size_t i = 0; i < rules_.size(); ++i) {
    const Rule& rule = rules_[i].rule;
    if (!rule.is_constraint) {
      defs_[rule.head.predicate].push_back(i);
      arities_[rule.head.predicate] = rule.head.args.size();
    }
    for (const Literal& lit : rule.body) {
      uses_[lit.atom.predicate].push_back(i);
      arities_[lit.atom.predicate] = lit.atom.args.size();
    }
    rules_[i].adornment = AdornRule(rule, interner_);
  }
}

std::string ProgramIr::Dump() const {
  std::ostringstream out;
  out << "ProgramIr: " << rules_.size() << " rules\n";
  for (size_t i = 0; i < rules_.size(); ++i) {
    const RuleIr& rule = rules_[i];
    out << "r" << i << " [o" << rule.origin << " s";
    if (rule.stratum == kConstraintStratum) {
      out << "C";
    } else {
      out << rule.stratum;
    }
    if (rule.aux_head) out << " aux";
    out << "] " << rule.rule.ToString(interner_) << "\n";
    out << "    adorn: " << rule.adornment << "\n";
    if (!rule.emit_body.empty()) {
      out << "    emit:";
      for (const Literal& lit : rule.emit_body) {
        out << " " << lit.ToString(interner_);
      }
      out << "\n";
    }
  }
  return out.str();
}

void ProgramIr::ApplyTo(TranslatedProgram* out) const {
  std::vector<Rule> rules;
  std::vector<size_t> origin;
  std::vector<RuleExecInfo> exec_info;
  rules.reserve(rules_.size());
  origin.reserve(rules_.size());
  exec_info.reserve(rules_.size());
  for (const RuleIr& rule : rules_) {
    rules.push_back(rule.rule);
    origin.push_back(rule.origin);
    RuleExecInfo info;
    info.aux_head = rule.aux_head;
    info.emit_body = rule.emit_body;
    exec_info.push_back(std::move(info));
  }
  out->ReplaceRules(std::move(rules), std::move(origin), std::move(exec_info));
}

std::vector<Rule> ProgramIr::TakePlainRules() && {
  std::vector<Rule> out;
  out.reserve(rules_.size());
  for (RuleIr& rule : rules_) {
    assert(!rule.aux_head && rule.emit_body.empty() &&
           "plain-rule view requires a pipeline without subjoin sharing");
    out.push_back(std::move(rule.rule));
  }
  return out;
}

}  // namespace gdlog
