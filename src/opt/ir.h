#ifndef GDLOG_OPT_IR_H_
#define GDLOG_OPT_IR_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ast/program.h"
#include "ground/fact_store.h"

namespace gdlog {

class TranslatedProgram;

/// The set of constants a predicate column can possibly hold, as an
/// abstract-domain element: either ⊤ (anything) or an explicit set of at
/// most a few values. The pass pipeline uses these both as a database
/// summary (seeded from D's columns) and as the lattice the specialization
/// pass iterates over.
struct ColumnDomain {
  bool top = false;
  std::set<Value> values;  ///< Meaningful only when !top.

  static ColumnDomain Top() {
    ColumnDomain d;
    d.top = true;
    return d;
  }

  bool Contains(const Value& v) const { return top || values.count(v) != 0; }

  /// In-place join (set union, saturating to ⊤ past `cap` values).
  /// Returns true iff this domain changed.
  bool Join(const ColumnDomain& other, size_t cap);
  bool JoinValue(const Value& v, size_t cap);

  bool operator==(const ColumnDomain& other) const {
    if (top != other.top) return false;
    return top || values == other.values;
  }
};

/// What the pass pipeline is allowed to know about the database D: which
/// predicates have rows and the per-column constant domains of the small
/// ones. Passes consume ONLY this summary (never the FactStore), so the
/// optimized program is a pure function of (Σ_Π, DbSummary) — which is what
/// lets the server reuse a pipeline run when a database swap leaves the
/// summary unchanged.
struct DbSummary {
  struct PredicateSummary {
    size_t rows = 0;
    std::vector<ColumnDomain> columns;

    bool operator==(const PredicateSummary& other) const {
      return rows == other.rows && columns == other.columns;
    }
  };

  std::map<uint32_t, PredicateSummary> predicates;

  bool Present(uint32_t pred) const {
    auto it = predicates.find(pred);
    return it != predicates.end() && it->second.rows > 0;
  }

  bool operator==(const DbSummary& other) const {
    return predicates == other.predicates;
  }
  bool operator!=(const DbSummary& other) const { return !(*this == other); }
};

/// Summarizes `db`: per-predicate row counts plus per-column domains,
/// saturated to ⊤ once a column exceeds `max_domain_values` distinct
/// constants.
DbSummary SummarizeDb(const FactStore& db, size_t max_domain_values = 4);

/// True iff two summaries are indistinguishable to the pass pipeline: the
/// same predicates present and the same column domains. Exact row counts
/// are deliberately ignored — no pass consumes them (passes.cc reads only
/// Present() and columns) — so a row-appending delta that stays inside the
/// existing domains keeps the optimized program reusable verbatim.
bool PipelineEquivalent(const DbSummary& a, const DbSummary& b);

/// Folds the rows `db` gained in `ranges` into `summary` in place: row
/// counts bumped, column domains joined with the new values. Equivalent to
/// SummarizeDb(db, max_domain_values) on the post-delta database, at a cost
/// proportional to the delta.
void UpdateSummaryForDelta(DbSummary* summary, const FactStore& db,
                           const DeltaRanges& ranges,
                           size_t max_domain_values = 4);

/// One rule of the program IR. Wraps the AST rule with the annotations the
/// passes read and write: provenance (which Π-rule it came from), stratum
/// membership, the sideways-information-passing adornment, and the
/// execution split introduced by subjoin sharing (match the rewritten body,
/// emit the original one).
struct RuleIr {
  Rule rule;
  /// Index of the originating Π-rule (for sigma IRs) or of the rule itself
  /// (plain IRs). Synthesized rules inherit their first consumer's origin.
  size_t origin = 0;
  /// Stratum of the originating rule's head predicate in dg(Π);
  /// kConstraintStratum for constraints.
  size_t stratum = 0;
  /// True for synthesized __join_N rules: their head atoms are matching
  /// state only and must never become ground-rule heads or model facts.
  bool aux_head = false;
  /// When non-empty, the grounder matches `rule.body` but instantiates
  /// ground rules with this body instead (subjoin sharing keeps ground
  /// output byte-identical by re-emitting the pre-rewrite body).
  std::vector<Literal> emit_body;
  /// Left-to-right bound/free adornment, e.g. "p/bf :- q/bf, r/ff, not s/bb".
  /// Recomputed by ProgramIr::RebuildIndexes; purely informational.
  std::string adornment;
};

/// A whole-program IR over Σ_Π (or a plain Datalog¬ program): the rule list
/// plus the per-predicate def/use indexes and arities the passes navigate
/// with. Passes mutate rules() and call RebuildIndexes() when done.
class ProgramIr {
 public:
  static constexpr size_t kConstraintStratum = static_cast<size_t>(-1);

  /// Lifts Σ_Π: one RuleIr per sigma rule, stratum = stratum of the
  /// originating Π-rule's head in dg(Π). `interner` must be the program's
  /// own name table (passes intern synthesized predicate names into it).
  static ProgramIr LiftSigma(const Program& pi,
                             const TranslatedProgram& translated,
                             Interner* interner);

  /// Lifts a plain Datalog¬ program (the evaluator path).
  static ProgramIr LiftPlain(const Program& pi, Interner* interner);

  std::vector<RuleIr>& rules() { return rules_; }
  const std::vector<RuleIr>& rules() const { return rules_; }

  Interner* interner() { return interner_; }
  const Interner* interner() const { return interner_; }
  /// Non-null only for sigma IRs (Active/Result metadata for the passes).
  const TranslatedProgram* translated() const { return translated_; }

  /// Per-predicate rule indexes: defs (head predicate) and uses (body
  /// predicate, positive or negative). Valid until rules() next mutates.
  const std::map<uint32_t, std::vector<size_t>>& defs() const { return defs_; }
  const std::map<uint32_t, std::vector<size_t>>& uses() const { return uses_; }
  /// Arity of every predicate mentioned by rules().
  const std::map<uint32_t, size_t>& arities() const { return arities_; }

  /// Recomputes defs/uses/arities and every rule's adornment annotation.
  void RebuildIndexes();

  /// Deterministic human-readable listing (the --dump-ir format): one line
  /// per rule with origin/stratum/aux annotations and the adornment.
  std::string Dump() const;

  /// Writes the (optimized) rules back into `out`'s Σ∄, preserving origin
  /// provenance and attaching per-rule execution info (aux heads, emit
  /// bodies). `out` is typically the TranslatedProgram this IR was lifted
  /// from.
  void ApplyTo(TranslatedProgram* out) const;

  /// The plain-rule view for the evaluator path; requires no aux rules.
  std::vector<Rule> TakePlainRules() &&;

 private:
  std::vector<RuleIr> rules_;
  Interner* interner_ = nullptr;
  const TranslatedProgram* translated_ = nullptr;
  std::map<uint32_t, std::vector<size_t>> defs_;
  std::map<uint32_t, std::vector<size_t>> uses_;
  std::map<uint32_t, size_t> arities_;
};

}  // namespace gdlog

#endif  // GDLOG_OPT_IR_H_
