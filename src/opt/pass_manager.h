#ifndef GDLOG_OPT_PASS_MANAGER_H_
#define GDLOG_OPT_PASS_MANAGER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "opt/passes.h"

namespace gdlog {

/// Timing and rewrite count of one executed pass.
struct PassStat {
  std::string name;
  uint64_t wall_ns = 0;
  uint64_t rewrites = 0;
};

/// The pipeline's result record: per-pass stats plus the aggregate
/// counters, surfaced through gdlog_cli --stats and gdlogd GET /stats.
struct OptStats {
  bool enabled = false;         ///< A pipeline actually ran.
  bool demand_applied = false;  ///< The demand pass was part of it.
  /// The server adopted a previous pipeline run instead of re-running it
  /// (database swap with an unchanged summary).
  bool pipeline_reused = false;
  uint64_t rules_in = 0;
  uint64_t rules_out = 0;
  uint64_t total_wall_ns = 0;
  OptCounters counters;
  std::vector<PassStat> passes;
  /// (label, ProgramIr::Dump()) snapshots: "initial" plus one per executed
  /// pass. Recorded only when PipelineOptions::record_dumps.
  std::vector<std::pair<std::string, std::string>> dumps;
};

struct PipelineOptions {
  bool specialize = true;
  bool eliminate_dead = true;
  bool share_subjoins = true;
  /// Goal predicate ids; non-empty enables the demand pass (callers gate
  /// this on stratification and on marginals-only observation).
  std::vector<uint32_t> demand_goals;
  bool record_dumps = false;
  size_t max_domain = 4;
  size_t max_split = 3;
};

/// True iff the GDLOG_NO_OPT environment variable disables the pipeline
/// globally (set and neither empty nor "0").
bool OptDisabledByEnv();

/// Runs the pass pipeline over `ir` in its fixed order — demand (when
/// goals are given), specialization, dead-rule elimination, subjoin
/// sharing — timing each pass and recording dumps when asked.
OptStats RunPipeline(ProgramIr* ir, const DbSummary& db,
                     const PipelineOptions& options);

}  // namespace gdlog

#endif  // GDLOG_OPT_PASS_MANAGER_H_
