#ifndef GDLOG_OPT_PASSES_H_
#define GDLOG_OPT_PASSES_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "opt/ir.h"

namespace gdlog {

/// Raw rewrite counters the passes accumulate (surfaced through
/// gdlog_cli --stats and gdlogd GET /stats).
struct OptCounters {
  uint64_t rules_eliminated = 0;        ///< Dead-rule pass removals.
  uint64_t rules_specialized = 0;       ///< Rules narrowed or split.
  uint64_t predicates_specialized = 0;  ///< Distinct head preds touched.
  uint64_t subjoins_shared = 0;         ///< Synthesized __join predicates.
  uint64_t demand_eliminated_rules = 0; ///< Rules dropped by demand.
};

struct PassContext {
  /// Database summary; specialization and dead-rule elimination are no-ops
  /// without one (every domain is ⊤ when the database is unknown).
  const DbSummary* db = nullptr;
  /// Column-domain saturation cap (distinct constants per column).
  size_t max_domain = 4;
  /// Maximum number of copies a rule split may produce.
  size_t max_split = 3;
};

/// The forward flow analysis behind specialization and dead-rule
/// elimination: which predicates can have facts at all (presence, an
/// overapproximation that ignores negation), and an overapproximation of
/// the constants each predicate column can hold. Exposed for unit tests.
struct DomainAnalysis {
  std::set<uint32_t> present;
  std::map<uint32_t, std::vector<ColumnDomain>> domains;
};
DomainAnalysis AnalyzeDomains(const ProgramIr& ir, const DbSummary& db,
                              size_t max_domain);

/// Predicate specialization: substitutes variables whose derived domain is
/// a single constant (so join plans check constants instead of binding
/// slots), and splits a rule on one small-domain join variable into one
/// copy per constant. Both rewrites preserve the rule's ground-instance
/// set exactly. Returns the number of rewritten rules.
size_t SpecializationPass(ProgramIr* ir, const PassContext& ctx,
                          OptCounters* counters);

/// Dead-rule elimination: removes rules that can never fire — a positive
/// body predicate can have no facts, or a body constant falls outside a
/// column's derived domain. Exactly semantics-preserving (the removed
/// rules contribute no ground instances). Returns the number of removals.
size_t DeadRuleEliminationPass(ProgramIr* ir, const PassContext& ctx,
                               OptCounters* counters);

/// Magic-sets-style demand transformation: keeps only the rules in the
/// backward closure of `goal_preds` (plus every constraint and the
/// Active↔Result pairing). Changes the derived fact set — callers gate it
/// on "only goal marginals are observed" (see ROADMAP's correctness
/// argument). Returns the number of rules dropped.
size_t DemandPass(ProgramIr* ir, const std::vector<uint32_t>& goal_preds,
                  OptCounters* counters);

/// Cross-rule common-subjoin sharing: when ≥2 rules of a stratum share
/// their entire leading positive join (ignoring the Result literals the
/// translation prepends), the shared join is hoisted into a synthesized
/// __join_N predicate materialized once per fixpoint round. Consumers
/// match the rewritten body but emit their original one, so G(Σ) is
/// byte-identical. Returns the number of synthesized predicates.
size_t SubjoinSharingPass(ProgramIr* ir, OptCounters* counters);

}  // namespace gdlog

#endif  // GDLOG_OPT_PASSES_H_
