#ifndef GDLOG_STABLE_SOLVER_H_
#define GDLOG_STABLE_SOLVER_H_

#include <functional>
#include <set>
#include <vector>

#include "stable/normal_program.h"
#include "stable/wfs.h"
#include "util/status.h"

namespace gdlog {

/// A stable model rendered as a canonically sorted set of ground atoms.
using StableModel = std::vector<GroundAtom>;

/// A set of stable models in canonical order — the objects the paper's
/// possible outcomes induce (sms(Σ)); usable as an ordered map key when
/// grouping outcomes into σ-algebra events.
using StableModelSet = std::set<StableModel>;

/// Enumerates the stable models of a ground normal program.
///
/// Algorithm: DPLL-style search over the atoms that occur in negative
/// bodies (the only atoms whose truth distinguishes stable models), with
/// conditioned well-founded propagation for pruning, and Gelfond–Lifschitz
/// reduct verification at the leaves. Stratified ground programs are solved
/// without branching (their well-founded model is total).
class StableModelEnumerator {
 public:
  struct Options {
    /// Stop after this many models (0 = unlimited).
    uint64_t max_models = 0;
    /// Abort with BudgetExhausted after this many search nodes.
    uint64_t max_nodes = 10'000'000;
  };

  explicit StableModelEnumerator(const NormalProgram& prog) : prog_(prog) {}
  StableModelEnumerator(const NormalProgram& prog, Options options)
      : prog_(prog), options_(options) {}

  /// Invokes `cb` with each stable model as a sorted vector of true atom
  /// ids. The callback returns false to stop early. Never reports
  /// duplicates.
  Status Enumerate(const std::function<bool(const std::vector<uint32_t>&)>& cb);

  /// Number of search nodes used by the last Enumerate call.
  uint64_t nodes_used() const { return nodes_; }

 private:
  Status Search(std::vector<Truth>& external,
                const std::function<bool(const std::vector<uint32_t>&)>& cb,
                bool* keep_going);

  void EmitLeaf(const std::vector<Truth>& external,
                const std::function<bool(const std::vector<uint32_t>&)>& cb,
                bool* keep_going);

  const NormalProgram& prog_;
  Options options_ = {};
  uint64_t nodes_ = 0;
  uint64_t models_ = 0;
};

/// Convenience: all stable models of a ground TGD¬ program, as canonically
/// sorted ground-atom vectors, sorted set. Honors `options` budgets.
Result<StableModelSet> AllStableModels(
    const GroundRuleSet& rules,
    StableModelEnumerator::Options options = StableModelEnumerator::Options{});

/// Convenience: true iff the ground program has at least one stable model.
Result<bool> HasStableModel(
    const GroundRuleSet& rules,
    StableModelEnumerator::Options options = StableModelEnumerator::Options{});

}  // namespace gdlog

#endif  // GDLOG_STABLE_SOLVER_H_
