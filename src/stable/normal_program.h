#ifndef GDLOG_STABLE_NORMAL_PROGRAM_H_
#define GDLOG_STABLE_NORMAL_PROGRAM_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ground/ground_rule.h"

namespace gdlog {

/// Interns ground atoms into dense 32-bit ids for the solver's hot paths.
class AtomTable {
 public:
  uint32_t Intern(const GroundAtom& atom) {
    auto it = index_.find(atom);
    if (it != index_.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(atoms_.size());
    atoms_.push_back(atom);
    index_.emplace(atoms_.back(), id);
    return id;
  }

  /// Returns the id of `atom` or kNotFound.
  static constexpr uint32_t kNotFound = UINT32_MAX;
  uint32_t Lookup(const GroundAtom& atom) const {
    auto it = index_.find(atom);
    return it == index_.end() ? kNotFound : it->second;
  }

  const GroundAtom& Get(uint32_t id) const { return atoms_[id]; }
  size_t size() const { return atoms_.size(); }

 private:
  std::unordered_map<GroundAtom, uint32_t, GroundAtomHash> index_;
  std::vector<GroundAtom> atoms_;
};

/// A ground normal rule over dense atom ids.
struct NormalRule {
  uint32_t head = 0;
  std::vector<uint32_t> positive;
  std::vector<uint32_t> negative;
};

/// A ground normal logic program: the object SM[Σ] is evaluated on. Built
/// from ground TGD¬ programs (existential-free, as emitted by the paper's
/// grounders). Negation is interpreted under the stable model semantics via
/// the classical Gelfond–Lifschitz reduct, which coincides with the paper's
/// second-order SM[Σ] definition on ground programs.
class NormalProgram {
 public:
  NormalProgram() = default;

  /// Reserved predicate id for the falsity marker atom ⊥ that ground
  /// constraints derive; a candidate model containing it is rejected.
  static constexpr uint32_t kFalsityPredicate = UINT32_MAX - 1;

  /// Builds the program from ground rules, interning atoms. Ground
  /// constraints become rules deriving the ⊥ marker (see falsity_atom()).
  static NormalProgram FromRules(const std::vector<const GroundRule*>& rules);
  static NormalProgram FromRuleSet(const GroundRuleSet& rules) {
    return FromRules(rules.rules());
  }

  const AtomTable& atoms() const { return atoms_; }
  AtomTable& mutable_atoms() { return atoms_; }
  const std::vector<NormalRule>& rules() const { return rules_; }

  void AddRule(NormalRule rule) { rules_.push_back(std::move(rule)); }

  size_t atom_count() const { return atoms_.size(); }

  /// Rules indexed by positive-body atom: ids of rules where `atom` occurs
  /// positively. (Built by Finalize.)
  const std::vector<std::vector<uint32_t>>& pos_occurrences() const {
    return pos_occ_;
  }
  /// Rules where `atom` occurs negatively.
  const std::vector<std::vector<uint32_t>>& neg_occurrences() const {
    return neg_occ_;
  }

  /// Atoms occurring in at least one negative body — the only atoms whose
  /// truth can distinguish stable models ("externals" for the solver).
  const std::vector<uint32_t>& negative_atoms() const { return neg_atoms_; }

  /// Atom id of the ⊥ marker, or kNoFalsity if the program has no
  /// constraints.
  static constexpr uint32_t kNoFalsity = UINT32_MAX;
  uint32_t falsity_atom() const { return falsity_atom_; }

  /// Builds occurrence indices; must be called after the last AddRule.
  void Finalize();

  std::string ToString(const Interner* interner = nullptr) const;

 private:
  AtomTable atoms_;
  std::vector<NormalRule> rules_;
  std::vector<std::vector<uint32_t>> pos_occ_;
  std::vector<std::vector<uint32_t>> neg_occ_;
  std::vector<uint32_t> neg_atoms_;
  uint32_t falsity_atom_ = kNoFalsity;
};

}  // namespace gdlog

#endif  // GDLOG_STABLE_NORMAL_PROGRAM_H_
