#include "stable/normal_program.h"

#include <algorithm>

namespace gdlog {

NormalProgram NormalProgram::FromRules(
    const std::vector<const GroundRule*>& rules) {
  NormalProgram prog;
  for (const GroundRule* gr : rules) {
    NormalRule nr;
    if (gr->is_constraint) {
      if (prog.falsity_atom_ == kNoFalsity) {
        prog.falsity_atom_ =
            prog.atoms_.Intern(GroundAtom{kFalsityPredicate, {}});
      }
      nr.head = prog.falsity_atom_;
    } else {
      nr.head = prog.atoms_.Intern(gr->head);
    }
    nr.positive.reserve(gr->positive.size());
    for (const GroundAtom& a : gr->positive) {
      nr.positive.push_back(prog.atoms_.Intern(a));
    }
    nr.negative.reserve(gr->negative.size());
    for (const GroundAtom& a : gr->negative) {
      nr.negative.push_back(prog.atoms_.Intern(a));
    }
    prog.rules_.push_back(std::move(nr));
  }
  prog.Finalize();
  return prog;
}

void NormalProgram::Finalize() {
  size_t n = atoms_.size();
  pos_occ_.assign(n, {});
  neg_occ_.assign(n, {});
  std::vector<bool> is_neg(n, false);
  for (uint32_t ri = 0; ri < rules_.size(); ++ri) {
    for (uint32_t a : rules_[ri].positive) pos_occ_[a].push_back(ri);
    for (uint32_t a : rules_[ri].negative) {
      neg_occ_[a].push_back(ri);
      is_neg[a] = true;
    }
  }
  neg_atoms_.clear();
  for (uint32_t a = 0; a < n; ++a) {
    if (is_neg[a]) neg_atoms_.push_back(a);
  }
}

std::string NormalProgram::ToString(const Interner* interner) const {
  std::string out;
  for (const NormalRule& r : rules_) {
    out += atoms_.Get(r.head).ToString(interner);
    if (!r.positive.empty() || !r.negative.empty()) {
      out += " :- ";
      bool first = true;
      for (uint32_t a : r.positive) {
        if (!first) out += ", ";
        first = false;
        out += atoms_.Get(a).ToString(interner);
      }
      for (uint32_t a : r.negative) {
        if (!first) out += ", ";
        first = false;
        out += "not " + atoms_.Get(a).ToString(interner);
      }
    }
    out += ".\n";
  }
  return out;
}

}  // namespace gdlog
