#include "stable/wfs.h"

#include <deque>

namespace gdlog {

namespace {

/// Γ(X): least model of the reduct where a negative literal "not a" is
/// satisfied iff a is not assumed true. Assumed-true means: external says
/// kTrue, or external is kUndefined/absent and X[a] holds.
std::vector<bool> Gamma(const NormalProgram& prog, const std::vector<bool>& X,
                        const std::vector<Truth>* external) {
  const auto& rules = prog.rules();
  size_t n = prog.atom_count();
  std::vector<bool> derived(n, false);
  std::vector<uint32_t> missing(rules.size(), 0);
  std::deque<uint32_t> ready;

  for (uint32_t ri = 0; ri < rules.size(); ++ri) {
    const NormalRule& r = rules[ri];
    bool blocked = false;
    for (uint32_t a : r.negative) {
      Truth ext = external == nullptr ? Truth::kUndefined : (*external)[a];
      bool assumed_true =
          ext == Truth::kTrue || (ext == Truth::kUndefined && X[a]);
      if (assumed_true) {
        blocked = true;
        break;
      }
    }
    if (blocked) {
      missing[ri] = UINT32_MAX;  // never fires
      continue;
    }
    missing[ri] = static_cast<uint32_t>(r.positive.size());
    if (missing[ri] == 0) ready.push_back(ri);
  }

  while (!ready.empty()) {
    uint32_t ri = ready.front();
    ready.pop_front();
    uint32_t head = rules[ri].head;
    if (derived[head]) continue;
    derived[head] = true;
    for (uint32_t rj : prog.pos_occurrences()[head]) {
      if (missing[rj] == UINT32_MAX || missing[rj] == 0) continue;
      // pos_occurrences lists a rule once per positive occurrence and
      // missing[] was initialized to the occurrence count, so decrementing
      // by one per entry is consistent even with duplicated body atoms.
      if (--missing[rj] == 0) ready.push_back(rj);
    }
  }
  return derived;
}

}  // namespace

WellFoundedModel ComputeWellFounded(const NormalProgram& prog,
                                    const std::vector<Truth>* external) {
  size_t n = prog.atom_count();
  std::vector<bool> T(n, false);

  // Alternating fixpoint: U_i = Γ(T_i) (possibly true), T_{i+1} = Γ(U_i)
  // (surely true). T is increasing, U decreasing; both stabilize together.
  std::vector<bool> U = Gamma(prog, T, external);
  for (;;) {
    std::vector<bool> T_next = Gamma(prog, U, external);
    if (T_next == T) break;
    T = std::move(T_next);
    U = Gamma(prog, T, external);
  }

  WellFoundedModel wfm;
  wfm.truth.resize(n, Truth::kUndefined);
  for (uint32_t a = 0; a < n; ++a) {
    if (T[a]) {
      wfm.truth[a] = Truth::kTrue;
    } else if (!U[a]) {
      wfm.truth[a] = Truth::kFalse;
    }
  }
  return wfm;
}

std::vector<bool> LeastModelOfReduct(const NormalProgram& prog,
                                     const std::vector<Truth>& external) {
  // With a total external assignment over negative atoms, Γ no longer
  // depends on X.
  std::vector<bool> X(prog.atom_count(), false);
  return Gamma(prog, X, &external);
}

}  // namespace gdlog
