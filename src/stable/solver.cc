#include "stable/solver.h"

#include <algorithm>

namespace gdlog {

Status StableModelEnumerator::Enumerate(
    const std::function<bool(const std::vector<uint32_t>&)>& cb) {
  nodes_ = 0;
  models_ = 0;
  std::vector<Truth> external(prog_.atom_count(), Truth::kUndefined);
  bool keep_going = true;
  return Search(external, cb, &keep_going);
}

void StableModelEnumerator::EmitLeaf(
    const std::vector<Truth>& external,
    const std::function<bool(const std::vector<uint32_t>&)>& cb,
    bool* keep_going) {
  // Leaf: the assignment to negative atoms is total. Compute the least
  // model of the reduct and verify the assignment is self-consistent
  // (a ∈ M iff assumed true) — the Gelfond–Lifschitz fixpoint condition.
  std::vector<bool> model = LeastModelOfReduct(prog_, external);
  for (uint32_t a : prog_.negative_atoms()) {
    bool assumed = external[a] == Truth::kTrue;
    if (model[a] != assumed) return;  // not stable
  }
  // Integrity constraints: a model deriving the ⊥ marker is discarded.
  uint32_t bot = prog_.falsity_atom();
  if (bot != NormalProgram::kNoFalsity && model[bot]) return;
  std::vector<uint32_t> atoms;
  for (uint32_t a = 0; a < model.size(); ++a) {
    if (model[a] && a != bot) atoms.push_back(a);
  }
  ++models_;
  if (!cb(atoms)) {
    *keep_going = false;
    return;
  }
  if (options_.max_models != 0 && models_ >= options_.max_models) {
    *keep_going = false;
  }
}

Status StableModelEnumerator::Search(
    std::vector<Truth>& external,
    const std::function<bool(const std::vector<uint32_t>&)>& cb,
    bool* keep_going) {
  if (!*keep_going) return Status::OK();
  if (++nodes_ > options_.max_nodes) {
    return Status::BudgetExhausted(
        "stable-model search exceeded " + std::to_string(options_.max_nodes) +
        " nodes");
  }

  // Conditioned well-founded propagation to fixpoint.
  std::vector<uint32_t> assigned_here;
  for (;;) {
    WellFoundedModel wfm = ComputeWellFounded(prog_, &external);
    // Constraint pruning: if ⊥ is well-founded-true under the current
    // assignment, every compatible candidate violates a constraint.
    uint32_t bot = prog_.falsity_atom();
    if (bot != NormalProgram::kNoFalsity &&
        wfm.truth[bot] == Truth::kTrue) {
      for (uint32_t b : assigned_here) external[b] = Truth::kUndefined;
      return Status::OK();
    }
    bool changed = false;
    for (uint32_t a : prog_.negative_atoms()) {
      Truth w = wfm.truth[a];
      if (external[a] == Truth::kUndefined) {
        if (w != Truth::kUndefined) {
          external[a] = w;
          assigned_here.push_back(a);
          changed = true;
        }
      } else if (w != Truth::kUndefined && w != external[a]) {
        // Conflict: assignment contradicts a sound consequence.
        for (uint32_t b : assigned_here) external[b] = Truth::kUndefined;
        return Status::OK();
      }
    }
    if (!changed) break;
  }

  // Find an unassigned negative atom to branch on.
  uint32_t branch_atom = UINT32_MAX;
  for (uint32_t a : prog_.negative_atoms()) {
    if (external[a] == Truth::kUndefined) {
      branch_atom = a;
      break;
    }
  }

  Status st = Status::OK();
  if (branch_atom == UINT32_MAX) {
    EmitLeaf(external, cb, keep_going);
  } else {
    for (Truth guess : {Truth::kTrue, Truth::kFalse}) {
      external[branch_atom] = guess;
      st = Search(external, cb, keep_going);
      if (!st.ok() || !*keep_going) break;
    }
    external[branch_atom] = Truth::kUndefined;
  }

  for (uint32_t b : assigned_here) external[b] = Truth::kUndefined;
  return st;
}

Result<StableModelSet> AllStableModels(const GroundRuleSet& rules,
                                       StableModelEnumerator::Options options) {
  NormalProgram prog = NormalProgram::FromRuleSet(rules);
  StableModelEnumerator solver(prog, options);
  StableModelSet out;
  Status st = solver.Enumerate([&](const std::vector<uint32_t>& atoms) {
    StableModel model;
    model.reserve(atoms.size());
    for (uint32_t a : atoms) model.push_back(prog.atoms().Get(a));
    std::sort(model.begin(), model.end());
    out.insert(std::move(model));
    return true;
  });
  if (!st.ok()) return st;
  return out;
}

Result<bool> HasStableModel(const GroundRuleSet& rules,
                            StableModelEnumerator::Options options) {
  NormalProgram prog = NormalProgram::FromRuleSet(rules);
  options.max_models = 1;
  StableModelEnumerator solver(prog, options);
  bool found = false;
  Status st = solver.Enumerate([&](const std::vector<uint32_t>&) {
    found = true;
    return false;
  });
  if (!st.ok()) return st;
  return found;
}

}  // namespace gdlog
