#ifndef GDLOG_STABLE_WFS_H_
#define GDLOG_STABLE_WFS_H_

#include <cstdint>
#include <vector>

#include "stable/normal_program.h"

namespace gdlog {

/// Three-valued truth.
enum class Truth : uint8_t { kFalse = 0, kUndefined = 1, kTrue = 2 };

/// The well-founded model of a ground normal program: a three-valued
/// interpretation that soundly approximates every stable model (true atoms
/// belong to all of them, false atoms to none). For (locally) stratified
/// programs the well-founded model is total and equals the unique stable
/// model — this is the engine's stratified fast path.
struct WellFoundedModel {
  std::vector<Truth> truth;  ///< Indexed by atom id.

  bool IsTotal() const {
    for (Truth t : truth) {
      if (t == Truth::kUndefined) return false;
    }
    return true;
  }

  std::vector<uint32_t> TrueAtoms() const {
    std::vector<uint32_t> out;
    for (uint32_t a = 0; a < truth.size(); ++a) {
      if (truth[a] == Truth::kTrue) out.push_back(a);
    }
    return out;
  }
};

/// Computes the well-founded model via the alternating fixpoint of the
/// Gelfond–Lifschitz operator Γ (Γ² is monotone; lfp gives the true atoms,
/// Γ(lfp) the possibly-true ones).
///
/// `external` optionally conditions negation: for an atom a with
/// external[a] == kTrue every negative literal "not a" is falsified (rules
/// carrying it are blocked); with kFalse the literal is satisfied and
/// dropped; kUndefined leaves it to the alternating fixpoint. Positive
/// occurrences are never conditioned — callers detect conflicts by
/// comparing the returned truth values against their assignment.
WellFoundedModel ComputeWellFounded(const NormalProgram& prog,
                                    const std::vector<Truth>* external = nullptr);

/// Least model of the reduct Σ^ν where ν is a *total* assignment to the
/// atoms occurring negatively ("not a" is satisfied iff external[a] !=
/// kTrue). Returns the set of derived atoms as a bitmask. This is the Γ
/// operator exposed for the solver's leaf verification.
std::vector<bool> LeastModelOfReduct(const NormalProgram& prog,
                                     const std::vector<Truth>& external);

}  // namespace gdlog

#endif  // GDLOG_STABLE_WFS_H_
