#ifndef GDLOG_GDATALOG_SAMPLER_H_
#define GDLOG_GDATALOG_SAMPLER_H_

#include <functional>

#include "gdatalog/chase.h"

namespace gdlog {

/// Monte-Carlo inference over chase paths. Each sample is one random
/// maximal path (Theorem 4.6 makes path sampling equivalent to outcome
/// sampling); the estimator averages an arbitrary statistic of the sampled
/// outcome. Depth-truncated walks are counted separately — they estimate
/// the error-event mass.
class MonteCarloEstimator {
 public:
  MonteCarloEstimator(const ChaseEngine* engine, ChaseOptions options)
      : engine_(engine), options_(std::move(options)) {}

  struct Estimate {
    double mean = 0.0;
    /// Standard error of the mean (σ/√n over non-truncated samples).
    double std_error = 0.0;
    size_t samples = 0;    ///< Valid (finite) samples.
    size_t truncated = 0;  ///< Depth-truncated walks (error-event samples).
  };

  /// Averages f over n sampled finite outcomes. Truncated walks contribute
  /// value 0 and are reported in `truncated` (consistent with the paper's
  /// treatment of infinite outcomes as invalid).
  Result<Estimate> EstimateStatistic(
      size_t n, uint64_t seed,
      const std::function<double(const ChaseEngine::PathSample&)>& f) const;

  /// P(some stable model exists).
  Result<Estimate> EstimateProbConsistent(size_t n, uint64_t seed) const;

  /// P(no stable model) — e.g. P(domination) in the paper's running
  /// example.
  Result<Estimate> EstimateProbInconsistent(size_t n, uint64_t seed) const;

  /// Brave (upper) marginal: P(atom belongs to some stable model).
  Result<Estimate> EstimateMarginalUpper(size_t n, uint64_t seed,
                                         const GroundAtom& atom) const;

  /// Cautious (lower) marginal: P(outcome consistent and atom in every
  /// stable model).
  Result<Estimate> EstimateMarginalLower(size_t n, uint64_t seed,
                                         const GroundAtom& atom) const;

 private:
  const ChaseEngine* engine_;
  ChaseOptions options_;
};

}  // namespace gdlog

#endif  // GDLOG_GDATALOG_SAMPLER_H_
