#include "gdatalog/compare.h"

namespace gdlog {

namespace {

std::string DescribeModelSet(const StableModelSet& models,
                             const Interner* interner) {
  std::string out = "{";
  bool first_model = true;
  for (const StableModel& model : models) {
    if (!first_model) out += ", ";
    first_model = false;
    out += "{";
    bool first_atom = true;
    for (const GroundAtom& atom : model) {
      if (!first_atom) out += ", ";
      first_atom = false;
      out += atom.ToString(interner);
    }
    out += "}";
  }
  out += "}";
  return out;
}

}  // namespace

Result<ComparisonResult> IsAsGoodAs(const OutcomeSpace& left,
                                    const OutcomeSpace& right,
                                    const Interner* interner) {
  if (!left.complete || !right.complete) {
    return Status::InvalidArgument(
        "as-good-as comparison requires complete outcome spaces "
        "(raise the exploration budgets)");
  }
  std::map<StableModelSet, Prob> left_events = left.Events();
  std::map<StableModelSet, Prob> right_events = right.Events();

  ComparisonResult result;
  // Every event with right-mass must have at least as much left-mass;
  // events present only on the left trivially satisfy the inequality.
  std::map<StableModelSet, Prob> all = left_events;
  for (const auto& [models, mass] : right_events) all.emplace(models, Prob::Zero());
  result.events_compared = all.size();

  for (const auto& [models, unused] : all) {
    (void)unused;
    Prob lmass = Prob::Zero();
    Prob rmass = Prob::Zero();
    auto lit = left_events.find(models);
    if (lit != left_events.end()) lmass = lit->second;
    auto rit = right_events.find(models);
    if (rit != right_events.end()) rmass = rit->second;
    if (lmass.value() + 1e-12 < rmass.value()) {
      result.as_good = false;
      result.violation = "event " + DescribeModelSet(models, interner) +
                         ": left mass " + lmass.ToString() +
                         " < right mass " + rmass.ToString();
      break;
    }
  }
  return result;
}

}  // namespace gdlog
