#ifndef GDLOG_GDATALOG_SHARD_H_
#define GDLOG_GDATALOG_SHARD_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "gdatalog/chase.h"
#include "gdatalog/outcome.h"

namespace gdlog {

/// One frontier node of the shard plan: a chase-tree node identified by its
/// choice-set prefix. Its depth is choices.size() — every chase edge records
/// exactly one choice — so the prefix alone reconstructs the node (the
/// grounding G(Σ) is a function of Σ by Definition 3.3).
struct ShardTask {
  ChoiceSet choices;
  Prob path_prob = Prob::One();
};

/// A shard's (or a worker's) contribution to an outcome space, kept in the
/// pre-merge representation: outcomes and per-node truncation entries are
/// carried individually so the final merge can order *everything* by the
/// canonical choice-set order before accumulating masses — which is what
/// makes the merged space bit-identical to a single-process run even though
/// double (inexact) mass sums are order-sensitive.
struct PartialSpace {
  std::vector<PossibleOutcome> outcomes;
  /// Support-truncation contributions: (truncated node's choice set, tail
  /// mass), summed only at merge time, in canonical order.
  std::vector<std::pair<ChoiceSet, Prob>> truncations;
  size_t depth_truncated_paths = 0;
  size_t pruned_paths = 0;
  /// True iff some budget (outcome count, depth, support truncation,
  /// min-path probability) bound while producing this partial.
  bool budget_hit = false;
};

/// How plan tasks are partitioned across shards. Both policies are pure
/// functions of the (canonically ordered) task list, so independent
/// processes recompute the identical partition.
enum class ShardAssignment {
  /// Greedy LPT over the tasks' path probabilities: tasks in descending
  /// mass order, each placed on the currently lightest shard. Chase work
  /// below a frontier node grows with the mass-bearing width of its
  /// subtree, so mass is the planner's best stand-in for cost and skewed
  /// trees balance where round-robin serializes behind the heavy shard.
  kWeighted = 0,
  /// Task i → shard i % num_shards (PR 3's policy; kept for comparison
  /// benches and as the implicit policy of plans without an assignment).
  kRoundRobin = 1,
};

/// Stable wire names ("weighted" / "round_robin") for serialized plans and
/// the HTTP API.
const char* ShardAssignmentName(ShardAssignment assignment);
Result<ShardAssignment> ParseShardAssignment(std::string_view name);

/// The task → shard map for `policy`, as a pure function of the task list
/// (which PlanShards emits in canonical choice-set order) — workers
/// recompute it identically from the plan alone.
std::vector<uint32_t> AssignTasksToShards(const std::vector<ShardTask>& tasks,
                                          size_t num_shards,
                                          ShardAssignment policy);

/// A deterministic decomposition of the chase tree: the frontier after
/// expanding every node of the first `prefix_depth` choice levels, in
/// canonical choice-set order. Task i belongs to shard shard_of[i]
/// (computed by AssignTasksToShards under `assignment`).
/// The plan is a pure function of (program, database, grounder, options,
/// num_shards, prefix_depth, assignment), so independent processes — or
/// machines — recompute the identical plan from the program text alone and
/// never need to exchange it.
struct ShardPlan {
  size_t num_shards = 1;
  size_t prefix_depth = 0;
  ShardAssignment assignment = ShardAssignment::kWeighted;
  std::vector<ShardTask> tasks;
  /// tasks[i] belongs to shard shard_of[i]; always tasks.size() entries.
  std::vector<uint32_t> shard_of;
  /// Accounting that accrued while expanding the prefix levels themselves
  /// (truncated infinite supports, pruned prefixes). Owned by shard 0's
  /// partial so it is counted exactly once globally.
  PartialSpace plan_accounting;
};

/// Identifies a serialized partial for merge-time validation: its shard
/// coordinates plus the exploration budgets it was produced under.
/// Partials produced under different budgets (support truncation, depth,
/// pruning, shuffling) describe different spaces — a merger must refuse
/// them rather than sum inconsistent masses.
struct ShardPartialMeta {
  size_t num_shards = 1;
  size_t shard_index = 0;
  size_t prefix_depth = 0;
  ShardAssignment assignment = ShardAssignment::kWeighted;
  size_t max_outcomes = 0;
  size_t max_depth = 0;
  size_t support_limit = 0;
  uint64_t trigger_shuffle_seed = 0;
  double min_path_prob = 0.0;

  bool SamePlanAndBudgets(const ShardPartialMeta& other) const {
    return num_shards == other.num_shards &&
           prefix_depth == other.prefix_depth &&
           assignment == other.assignment &&
           max_outcomes == other.max_outcomes &&
           max_depth == other.max_depth &&
           support_limit == other.support_limit &&
           trigger_shuffle_seed == other.trigger_shuffle_seed &&
           min_path_prob == other.min_path_prob;
  }
};

/// The meta describing shard `shard_index` of `plan` explored under
/// `options` — what a worker attaches to its serialized partial.
ShardPartialMeta MakeShardPartialMeta(const ShardPlan& plan,
                                      size_t shard_index,
                                      const ChaseOptions& options);

/// Recombines per-shard partials into the outcome space of the whole chase
/// tree. Outcomes and truncation entries are sorted in canonical choice-set
/// order across *all* partials before masses are summed, so for any shard
/// count (and any thread count within each shard) the result is
/// bit-identical to ChaseEngine::Explore whenever no budget binds. When
/// `max_outcomes` != 0 and the union exceeds it, the canonically-first
/// `max_outcomes` outcomes are kept and the space is marked incomplete
/// (a single process enumerates a schedule-dependent subset instead; only
/// the count and the flag are comparable in that regime).
OutcomeSpace MergePartialSpaces(std::vector<PartialSpace> partials,
                                size_t max_outcomes);

/// Streaming equivalent of MergePartialSpaces: folds per-shard partials
/// into one canonical-order accumulator one at a time, in any arrival
/// order, so a coordinator holds O(1) partials resident instead of all of
/// them. Add() consumes its argument immediately (ordered merge into the
/// accumulator); Finish() runs the exact buffered tail — truncate to
/// `max_outcomes`, then sum masses in global canonical order. Because
/// choice sets are unique across shards the merged sequence is the unique
/// canonical order regardless of fold order, so the result is
/// byte-identical to `MergePartialSpaces` over the same partials.
class StreamingMerger {
 public:
  /// Folds one partial into the accumulator and discards it.
  void Add(PartialSpace partial);

  /// Completes the merge; the merger is spent afterwards.
  OutcomeSpace Finish(size_t max_outcomes);

  size_t partials_folded() const { return folded_; }

 private:
  PartialSpace accum_;
  size_t folded_ = 0;
};

/// Convenience in-process driver: plans `num_shards` shards, explores each
/// one (sequentially, in this process) and merges. Used by tests and as a
/// reference for the subprocess orchestration in gdlog_cli.
Result<OutcomeSpace> ShardedExplore(const ChaseEngine& engine,
                                    const ChaseOptions& options,
                                    size_t num_shards,
                                    size_t prefix_depth = 0);

}  // namespace gdlog

#endif  // GDLOG_GDATALOG_SHARD_H_
