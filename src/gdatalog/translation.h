#ifndef GDLOG_GDATALOG_TRANSLATION_H_
#define GDLOG_GDATALOG_TRANSLATION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ast/program.h"
#include "dist/distribution.h"
#include "util/status.h"

namespace gdlog {

/// Metadata of an Active/Result predicate pair introduced by the
/// translation of §3 for a distribution δ with parameter dimension
/// `param_count` and event-signature length `event_count`:
///
///   Active^δ_{|q̄|}(p̄, q̄)            arity |p̄| + |q̄|
///   Result^δ_{|q̄|}(p̄, q̄, y)         arity |p̄| + |q̄| + 1
struct DeltaSignature {
  uint32_t dist_id = 0;        ///< Interned distribution name.
  const Distribution* dist = nullptr;
  size_t param_count = 0;
  size_t event_count = 0;
  uint32_t active_pred = 0;    ///< Interned Active predicate name.
  uint32_t result_pred = 0;    ///< Interned Result predicate name.
};

/// Per-rule execution annotations attached by the optimization pipeline
/// (src/opt). Default-constructed info means "execute the rule as written".
struct RuleExecInfo {
  /// Head is a synthesized __join_N predicate: its instances are matching
  /// state only — insert into heads(), never create a GroundRule.
  bool aux_head = false;
  /// When non-empty, ground-rule instances are emitted with this body
  /// instead of the (rewritten) matching body, so subjoin sharing stays
  /// invisible in G(Σ).
  std::vector<Literal> emit_body;
};

/// The TGD¬ program Σ_Π of §3, split as the paper does:
///  * Σ∃ (the active-to-result TGDs) is not materialized as rules — ground
///    AtR TGDs are the chase's choice objects (see ChoiceSet);
///  * Σ∄ = Σ_Π \ Σ∃ is an ordinary (existential-free) TGD¬ program whose
///    rules mention the fresh Active/Result predicates.
///
/// Each rule of Σ∄ remembers the index of the original Π-rule it came
/// from, so the perfect grounder can organize rules by the strata of dg(Π).
class TranslatedProgram {
 public:
  const Program& sigma() const { return sigma_; }
  Program& mutable_sigma() { return sigma_; }

  /// Original-rule index for each rule of sigma() (parallel vector).
  const std::vector<size_t>& origin() const { return origin_; }

  /// Signature lookup by Active predicate id; nullptr if not an Active
  /// predicate.
  const DeltaSignature* SignatureByActive(uint32_t pred) const;
  /// Signature lookup by Result predicate id.
  const DeltaSignature* SignatureByResult(uint32_t pred) const;

  const std::vector<DeltaSignature>& signatures() const { return signatures_; }

  bool IsActivePredicate(uint32_t pred) const {
    return by_active_.count(pred) != 0;
  }
  bool IsResultPredicate(uint32_t pred) const {
    return by_result_.count(pred) != 0;
  }

  /// Execution annotations parallel to sigma().rules(); empty when no
  /// optimization pipeline ran (all rules execute as written).
  const std::vector<RuleExecInfo>& exec_info() const { return exec_info_; }

  /// Replaces Σ∄ with an optimized rule set. `origin` and `exec_info` must
  /// be parallel to `rules`; the signature tables are untouched (passes
  /// never add Active/Result predicates).
  void ReplaceRules(std::vector<Rule> rules, std::vector<size_t> origin,
                    std::vector<RuleExecInfo> exec_info);

  /// Structural copy re-pointed at `interner`, which must preserve the ids
  /// of this program's interner (see Interner::Clone). Signature dist
  /// pointers still reference the original DistributionRegistry.
  TranslatedProgram CloneWith(std::shared_ptr<Interner> interner) const;

 private:
  friend Result<TranslatedProgram> TranslateToTgd(
      const Program& pi, const DistributionRegistry& registry);

  Program sigma_;
  std::vector<size_t> origin_;
  std::vector<RuleExecInfo> exec_info_;
  std::vector<DeltaSignature> signatures_;
  std::map<uint32_t, size_t> by_active_;
  std::map<uint32_t, size_t> by_result_;
};

/// Translates a validated GDatalog¬[Δ] program Π into Σ_Π per §3:
///
///   body → P0(w̄)  with Δ-terms w_{i_j} = δ_j⟨p̄_j⟩[q̄_j]   becomes
///
///   body → Active^{δ_j}(p̄_j, q̄_j)                 (one per Δ-term)
///   Active^{δ_j}(p̄_j, q̄_j) → ∃y_j Result^{δ_j}(p̄_j, q̄_j, y_j)   [AtR; implicit]
///   Result^{δ_1}(...) , ..., Result^{δ_r}(...), body → P0(w̄')
///
/// Rules without Δ-terms are copied verbatim. Constraints must have been
/// desugared beforehand (Program::DesugarConstraints).
///
/// Fails when a Δ-term names an unknown distribution or uses a parameter
/// dimension the distribution rejects.
Result<TranslatedProgram> TranslateToTgd(const Program& pi,
                                         const DistributionRegistry& registry);

}  // namespace gdlog

#endif  // GDLOG_GDATALOG_TRANSLATION_H_
