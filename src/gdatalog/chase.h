#ifndef GDLOG_GDATALOG_CHASE_H_
#define GDLOG_GDATALOG_CHASE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "gdatalog/grounder.h"
#include "gdatalog/outcome.h"
#include "util/rng.h"

namespace gdlog {

struct ShardPlan;
struct PartialSpace;
struct ChaseProfile;
enum class ShardAssignment;

/// Budgets and knobs for chase-tree exploration (§4). The chase tree of a
/// program may be infinite (countably infinite distribution supports,
/// non-terminating value invention); exploration therefore carries budgets,
/// and mass that could not be resolved into a finite possible outcome is
/// reported in OutcomeSpace::residual_mass().
struct ChaseOptions {
  /// Stop after enumerating this many finite outcomes (0 = unlimited).
  size_t max_outcomes = 1u << 20;
  /// Maximum number of choices (trigger applications) along one path;
  /// deeper paths are abandoned into the residual.
  size_t max_depth = 4096;
  /// Enumerated prefix size for countably infinite supports; the tail mass
  /// goes to the residual.
  size_t support_limit = 64;
  /// Paths whose probability falls below this are pruned into the residual
  /// (0 disables pruning).
  double min_path_prob = 0.0;
  /// Retain G(Σ) inside each PossibleOutcome.
  bool keep_groundings = false;
  /// Compute sms(Σ ∪ G(Σ)) for each outcome (required for event queries).
  bool compute_models = true;
  /// Node budget for the stable-model solver per outcome.
  uint64_t solver_max_nodes = 10'000'000;
  /// 0 = resolve triggers in canonical (sorted) order; otherwise pick each
  /// node's trigger pseudo-randomly from this seed (mixed with the node's
  /// choice set, so the pick is a pure function of the node and identical
  /// for every thread count and schedule). Lemma 4.4 guarantees the
  /// resulting outcome space is identical — exercised by experiment E4.
  uint64_t trigger_shuffle_seed = 0;
  /// Extend the parent node's grounding instead of re-deriving it from
  /// scratch at every chase node (sound by grounder monotonicity,
  /// Definition 3.3). Used when the grounder supports it (the simple
  /// grounder does; the perfect grounder falls back to from-scratch).
  bool incremental = true;
  /// Worker threads for Explore: 0 = one per hardware thread, 1 = serial
  /// (the pre-parallel behavior, no pool spawned). Branches of the chase
  /// tree are independent once a trigger is resolved, so workers drain a
  /// work-stealing frontier of chase nodes; per-worker partial outcome
  /// spaces are merged in canonical choice-set order, so whenever no
  /// budget binds the resulting OutcomeSpace is identical — outcome order,
  /// probabilities, masses and all — for every thread count. When
  /// max_outcomes does bind, *which* outcomes are enumerated depends on
  /// scheduling (their count still respects the budget).
  size_t num_threads = 0;
  /// Collect the per-rule/per-stratum/per-depth chase profile
  /// (obs/profile.h) into the ChaseProfile* passed to Explore. Off by
  /// default; the disabled path costs a null check per (rule, pivot) pair.
  /// Profile counts are deterministic across thread counts; timings are
  /// not. Never part of a result — excluded from the serving layer's cache
  /// fingerprint like num_threads.
  bool profile = false;
};

/// Drives the chase of Definition 4.2: iteratively grounds the program
/// under the current choice set, applies a trigger (branching over the
/// distribution's support), and collects the results of finite maximal
/// paths — which are exactly the finite possible outcomes (Lemma 4.5).
class ChaseEngine {
 public:
  /// All pointees must outlive the engine.
  ChaseEngine(const TranslatedProgram* translated, const FactStore* db,
              const Grounder* grounder)
      : translated_(translated), db_(db), grounder_(grounder) {}

  /// Exhaustively explores the chase tree under the given budgets and
  /// returns the resulting outcome space. With options.num_threads != 1
  /// the frontier is chased in parallel; results are deterministic as
  /// described on ChaseOptions::num_threads. When options.profile is set
  /// and `profile` is non-null, the per-worker chase profiles are merged
  /// into *profile in worker-index order (counts deterministic, times
  /// not).
  Result<OutcomeSpace> Explore(const ChaseOptions& options,
                               ChaseProfile* profile = nullptr) const;

  /// Plans a decomposition of the chase tree into `num_shards` shards by
  /// expanding the first `prefix_depth` choice levels serially and
  /// partitioning the resulting frontier (shard.h) under `assignment`
  /// (default: probability-mass-weighted). `prefix_depth` 0 picks the
  /// smallest depth whose frontier holds at least a few tasks per shard.
  /// The plan is deterministic — independent processes recompute the
  /// identical plan — and cheap (only the prefix levels are grounded).
  Result<ShardPlan> PlanShards(
      const ChaseOptions& options, size_t num_shards, size_t prefix_depth = 0,
      ShardAssignment assignment = ShardAssignment{}) const;

  /// Executes one shard of `plan`: explores the subtree below every task
  /// assigned to `shard_index`, using the parallel frontier per
  /// ChaseOptions::num_threads, and returns the pre-merge partial (sorted
  /// canonically, so the serialized partial is identical for every thread
  /// count). Shard 0 additionally carries the plan-level accounting.
  /// Recombine with MergePartialSpaces (shard.h).
  Result<PartialSpace> ExploreShard(const ShardPlan& plan, size_t shard_index,
                                    const ChaseOptions& options,
                                    ChaseProfile* profile = nullptr) const;

  /// One random maximal path: every trigger is resolved by sampling the
  /// distribution. `truncated` is set when the depth budget aborted the
  /// walk (an Ω∞/error-event sample).
  struct PathSample {
    ChoiceSet choices;
    Prob prob = Prob::One();
    bool truncated = false;
    StableModelSet models;
    std::shared_ptr<const GroundRuleSet> grounding;
  };
  Result<PathSample> SamplePath(Rng* rng, const ChaseOptions& options) const;

  const TranslatedProgram& translated() const { return *translated_; }
  const Grounder& grounder() const { return *grounder_; }
  const FactStore& db() const { return *db_; }

  /// sms(Σ ∪ G(Σ)): builds the ground normal program of an outcome
  /// (grounding plus one Active→Result rule per choice) and enumerates its
  /// stable models.
  Result<StableModelSet> SolveOutcome(const ChoiceSet& choices,
                                      const GroundRuleSet& grounding,
                                      uint64_t solver_max_nodes) const;

 private:
  struct ExploreState;
  struct WorkItem;
  /// Expands one chase node: grounds it, emits the outcome when it is a
  /// leaf, otherwise resolves one trigger and appends one child work item
  /// per support outcome to `children`. In plan mode (state.plan_tasks
  /// != nullptr) frontier nodes — those at the prefix depth, plus leaves
  /// above it — are recorded as shard tasks instead of being expanded.
  /// Thread-safe: touches only `state`'s atomics, the worker's partial
  /// space, and the item itself.
  void ProcessNode(ExploreState& state, WorkItem item, size_t worker,
                   std::vector<WorkItem>* children) const;
  /// Drains `roots` and everything they spawn: serially on an explicit
  /// LIFO stack when state has one partial (DFS parity with the
  /// pre-parallel engine), on the work-stealing pool otherwise.
  void DrainFrontier(ExploreState& state, std::vector<WorkItem> roots) const;

  const TranslatedProgram* translated_;
  const FactStore* db_;
  const Grounder* grounder_;
};

}  // namespace gdlog

#endif  // GDLOG_GDATALOG_CHASE_H_
