#ifndef GDLOG_GDATALOG_EXPORT_H_
#define GDLOG_GDATALOG_EXPORT_H_

#include <string>

#include "gdatalog/outcome.h"
#include "gdatalog/translation.h"

namespace gdlog {

/// Options for OutcomeSpaceToJson.
struct JsonExportOptions {
  /// Include every possible outcome (choices, probability, model count).
  bool include_outcomes = true;
  /// Include the stable models themselves (stripped of Active/Result
  /// bookkeeping atoms).
  bool include_models = false;
  /// Include the event table (model-set size ↦ mass).
  bool include_events = true;
};

/// Serializes an outcome space to a single-line JSON document for
/// scripting (the CLI's --json mode):
///
/// {
///   "complete": true,
///   "finite_mass": {"value": 1.0, "rational": "1"},
///   "residual_mass": {...},
///   "prob_consistent": {...},
///   "outcomes": [{"prob": {...}, "num_models": 2,
///                 "choices": [{"active": "...", "outcome": "..."}], ...}],
///   "events": [{"mass": {...}, "num_models": 0, "num_outcomes": 1}]
/// }
std::string OutcomeSpaceToJson(const OutcomeSpace& space,
                               const TranslatedProgram& translated,
                               const Interner* interner,
                               const JsonExportOptions& options =
                                   JsonExportOptions{});

}  // namespace gdlog

#endif  // GDLOG_GDATALOG_EXPORT_H_
