#ifndef GDLOG_GDATALOG_EXPORT_H_
#define GDLOG_GDATALOG_EXPORT_H_

#include <string>
#include <string_view>

#include "gdatalog/outcome.h"
#include "gdatalog/shard.h"
#include "gdatalog/translation.h"
#include "util/json.h"

namespace gdlog {

/// Writes a probability in the reporting-export shape —
/// {"value": <double>, "rational": "a/b" | null} — used by the CLI's
/// --json export and the serving layer's marginal responses (which must
/// render masses identically).
void WriteProbJson(JsonWriter& json, const Prob& prob);

/// Options for OutcomeSpaceToJson.
struct JsonExportOptions {
  /// Include every possible outcome (choices, probability, model count).
  bool include_outcomes = true;
  /// Include the stable models themselves (stripped of Active/Result
  /// bookkeeping atoms).
  bool include_models = false;
  /// Include the event table (model-set size ↦ mass).
  bool include_events = true;
};

/// Serializes an outcome space to a single-line JSON document for
/// scripting (the CLI's --json mode):
///
/// {
///   "complete": true,
///   "finite_mass": {"value": 1.0, "rational": "1"},
///   "residual_mass": {...},
///   "prob_consistent": {...},
///   "outcomes": [{"prob": {...}, "num_models": 2,
///                 "choices": [{"active": "...", "outcome": "..."}], ...}],
///   "events": [{"mass": {...}, "num_models": 0, "num_outcomes": 1}]
/// }
std::string OutcomeSpaceToJson(const OutcomeSpace& space,
                               const TranslatedProgram& translated,
                               const Interner* interner,
                               const JsonExportOptions& options =
                                   JsonExportOptions{});

/// Serializes one shard's partial outcome space (plus its plan coordinates)
/// to a single-line JSON document. The encoding is lossless — exact
/// rationals as numerator/denominator, inexact masses and double constants
/// as hex-float strings, symbols by name — so a partial can cross a process
/// (or machine) boundary and merge into a space bit-identical to a
/// single-process run. Groundings are not serialized (keep_groundings has
/// no sharded counterpart).
std::string PartialSpaceToJson(const PartialSpace& partial,
                               const ShardPartialMeta& meta,
                               const Interner* interner);

/// Parses a document produced by PartialSpaceToJson. Names are resolved
/// against `interner` by lookup only: the caller must have loaded the same
/// program (and hence interned the same predicates/symbols) that produced
/// the partial; unknown names are an error, not an extension point.
Result<PartialSpace> PartialSpaceFromJson(std::string_view json,
                                          const Interner& interner,
                                          ShardPartialMeta* meta);

}  // namespace gdlog

#endif  // GDLOG_GDATALOG_EXPORT_H_
