#ifndef GDLOG_GDATALOG_ENGINE_H_
#define GDLOG_GDATALOG_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "gdatalog/chase.h"
#include "gdatalog/outcome.h"
#include "opt/pass_manager.h"

namespace gdlog {

/// Which grounder drives the semantics (§3/§5: the semantics is a family
/// parameterized by the grounder).
enum class GrounderKind {
  kAuto,     ///< Perfect when Π is stratified, simple otherwise.
  kSimple,   ///< GSimple (Definition 3.4).
  kPerfect,  ///< GPerfect (Definition 5.1); fails if Π is not stratified.
};

/// Observability counters for a WithDatabaseDelta construction — surfaced
/// on gdlog_cli --stats and the server's GET /stats.
struct DeltaStats {
  bool applied = false;  ///< This engine was built by WithDatabaseDelta.
  size_t rows_appended = 0;
  size_t duplicates_skipped = 0;
  size_t predicates_touched = 0;
  /// The delta changed what the pass pipeline is allowed to observe
  /// (predicate presence or a column domain), forcing a fresh pipeline run.
  bool summary_changed = false;
  bool pipeline_reused = false;
  /// The simple grounder resumed the base's saturated root grounding from
  /// the delta ranges instead of re-deriving the choice-free core.
  bool root_resumed = false;
  /// Ground rules derived by that resume, beyond the delta facts
  /// themselves.
  uint64_t rules_refired = 0;
  /// Some delta predicate occurs in a rule body of Π (or collides with a
  /// synthesized "__" name) — reachability that forbids the serving
  /// layer's cache revalidation.
  bool touches_rule_bodies = false;
};

/// The top-level engine: parse → validate → desugar constraints → translate
/// to Σ_Π → pick a grounder → chase. This is the API the examples and most
/// tests use; the lower layers remain public for fine-grained control.
class GDatalog {
 public:
  struct Options {
    GrounderKind grounder = GrounderKind::kAuto;
    /// Distribution set Δ; defaults to DistributionRegistry::Builtins().
    /// Moved into the engine when provided.
    std::unique_ptr<DistributionRegistry> registry;
    /// Run the src/opt pass pipeline (specialization, dead-rule
    /// elimination, subjoin sharing) over Σ_Π at construction. The
    /// GDLOG_NO_OPT environment variable overrides this to off.
    bool optimize = true;
    /// Goal predicate names; non-empty enables the magic-sets demand pass
    /// (applied only when Π is stratified — see ROADMAP's correctness
    /// argument — and only observing goal marginals stays sound; exact
    /// outcome/model listings are coarsened). Unknown names resolve to no
    /// goals and leave the demand pass off.
    std::vector<std::string> demand_goals;
    /// Record before/after-pass IR dumps into opt_stats().dumps.
    bool record_ir_dumps = false;
  };

  /// Builds an engine from program text and database text (facts in surface
  /// syntax). Fails on parse errors, safety violations, unknown
  /// distributions, or requesting the perfect grounder for a
  /// non-stratified program.
  static Result<GDatalog> Create(std::string_view program_text,
                                 std::string_view database_text);
  static Result<GDatalog> Create(std::string_view program_text,
                                 std::string_view database_text,
                                 Options options);

  /// Builds an engine from an already-parsed program and database. The
  /// program may still contain ⊥-constraints; they are desugared here.
  static Result<GDatalog> FromProgram(Program pi, FactStore db);
  static Result<GDatalog> FromProgram(Program pi, FactStore db,
                                      Options options);

  /// Builds an engine for `base`'s program with a different database. The
  /// distribution registry is shared, and when the new database's summary
  /// (predicate presence and column domains — all the pass pipeline is
  /// allowed to observe) matches `base`'s, the already-optimized Σ_Π is
  /// adopted instead of re-running the pipeline; opt_stats().pipeline_reused
  /// reports which path was taken. The serving layer's PUT /db path.
  static Result<GDatalog> WithDatabase(const GDatalog& base,
                                       std::string_view database_text);

  /// Builds an engine for `base`'s program with `base`'s database extended
  /// by a delta (see ParseFactDelta for the syntax; removals are rejected
  /// with kUnsupported). Everything is proportional to the delta, not the
  /// database: the FactStore is COW-extended in place (indices included),
  /// the summary is recomputed incrementally, the pipeline is adopted
  /// whenever the delta leaves the summary pipeline-equivalent, the
  /// grounder shares the base's database-prefix grounding, and — for the
  /// simple grounder under an unchanged rule set — the saturated root
  /// grounding is re-ground semi-naively from the delta ranges only.
  /// delta_stats() on the result reports which of these paths were taken.
  /// The serving layer's PATCH /db path.
  static Result<GDatalog> WithDatabaseDelta(const GDatalog& base,
                                            std::string_view delta_text);

  GDatalog(GDatalog&&) noexcept;
  GDatalog& operator=(GDatalog&&) noexcept;
  ~GDatalog();

  /// The desugared program Π.
  const Program& program() const;
  /// Σ_Π with Active/Result metadata.
  const TranslatedProgram& translated() const;
  const FactStore& database() const;
  const DistributionRegistry& registry() const;
  /// The grounder driving the semantics.
  const Grounder& grounder() const;
  /// True iff Π has stratified negation.
  bool stratified() const;
  /// Stats of the optimization pipeline run at construction (enabled ==
  /// false when the pipeline was off).
  const OptStats& opt_stats() const;
  /// The database summary the pipeline consumed (also the reuse key for
  /// WithDatabase).
  const DbSummary& db_summary() const;
  /// Delta counters (applied == false unless this engine came from
  /// WithDatabaseDelta).
  const DeltaStats& delta_stats() const;
  /// The facts the delta actually appended (duplicates excluded), in
  /// predicate-sorted row order. Empty unless built by WithDatabaseDelta.
  /// The serving layer patches revalidated outcome spaces with these.
  const std::vector<GroundAtom>& delta_added_facts() const;

  /// The chase engine (Explore/SamplePath live there).
  const ChaseEngine& chase() const;

  /// Exhaustive inference: explores the chase tree and returns the outcome
  /// space (Definition 3.8, up to the exploration budgets). Runs the
  /// parallel frontier chase per ChaseOptions::num_threads (default: one
  /// worker per hardware thread; 1 = serial); the result is deterministic
  /// across thread counts whenever no budget binds.
  Result<OutcomeSpace> Infer(const ChaseOptions& options = ChaseOptions{}) const;

  /// Like Infer(), additionally merging the chase profile into *profile
  /// when options.profile is set (see ChaseEngine::Explore). Counts in the
  /// profile are deterministic across thread counts; timings are not.
  Result<OutcomeSpace> Infer(const ChaseOptions& options,
                             ChaseProfile* profile) const;

  /// Display labels for Σ_Π's rules, indexed like ChaseProfile::rules:
  /// "r<i>:<head atom>" ("r<i>:constraint" for constraints). Stable for a
  /// given engine — the profiler's join key between runs.
  std::vector<std::string> SigmaRuleLabels() const;

  /// Parses a ground atom in surface syntax ("infected(2, 1)") against this
  /// engine's interner, for use with OutcomeSpace::Marginal. Interns names
  /// the program never mentioned, so it must not run concurrently with
  /// anything else reading this engine.
  Result<GroundAtom> ParseGroundAtom(std::string_view text) const;

  /// Like ParseGroundAtom, but resolves names by lookup only — it parses
  /// against a private interner and remaps onto the engine's, never
  /// mutating shared state, so any number of threads may call it while
  /// others run Infer() or export results (the serving layer's contract).
  /// A predicate or symbol the program never interned cannot occur in any
  /// outcome; it is reported as kNotFound and callers may treat the
  /// atom's marginal as trivially zero.
  Result<GroundAtom> LookupGroundAtom(std::string_view text) const;

 private:
  struct State;
  explicit GDatalog(std::unique_ptr<State> state);
  static Result<GDatalog> FinishEngine(std::unique_ptr<State> state);
  std::unique_ptr<State> state_;
};

}  // namespace gdlog

#endif  // GDLOG_GDATALOG_ENGINE_H_
