#ifndef GDLOG_GDATALOG_GROUNDER_H_
#define GDLOG_GDATALOG_GROUNDER_H_

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "gdatalog/choice.h"
#include "gdatalog/translation.h"
#include "ground/dependency_graph.h"
#include "ground/ground_rule.h"
#include "ground/join_plan.h"

namespace gdlog {

/// A grounder G of Π[D] (Definition 3.3): a monotone map from functionally
/// consistent sets Σ of ground AtR TGDs (ChoiceSet) to subsets of
/// ground(Σ∄_Π[D]) such that, whenever AtR_Σ is compatible with G(Σ), the
/// stable models of G(Σ) ∪ Σ are exactly those of Σ_Π[D] consistent with
/// the choices in Σ.
class Grounder {
 public:
  virtual ~Grounder() = default;

  virtual std::string_view name() const = 0;

  /// Computes G(Σ) for the choice set `choices`, appending the ground rules
  /// (including the database facts of D as body-less rules) to a fresh
  /// `out`. On return out->heads() is the matching instance
  /// heads(G(Σ) ∪ Σ), which is all the state Extend() needs to resume.
  /// With `stats` non-null, the compiled-join counters of this grounding
  /// are accumulated into it.
  virtual Status Ground(const ChoiceSet& choices, GroundRuleSet* out,
                        MatchStats* stats = nullptr) const = 0;

  /// Incremental protocol (optional). Grounders are monotone in the choice
  /// set (Definition 3.3), so G(Σ ∪ {c}) can be computed by resuming the
  /// fixpoint from G(Σ) with c's Result atom as the only new fact — the
  /// chase exploits this to avoid re-deriving the grounding at every node.
  virtual bool SupportsIncremental() const { return false; }

  /// Extends `out` — produced by Ground()/Extend() for `choices` minus its
  /// most recent assignment `new_active` — to the grounding of the full
  /// `choices`. Only valid when SupportsIncremental().
  virtual Status Extend(const ChoiceSet& choices, const GroundAtom& new_active,
                        GroundRuleSet* out) const {
    (void)choices;
    (void)new_active;
    (void)out;
    return Status::Unsupported(std::string(name()) +
                               " grounder does not support incremental mode");
  }
};

/// The simple grounder GSimple_Π[D] (Definition 3.4): the least fixpoint of
/// the operator that adds h(σ) whenever the positive body h(B+(σ)) matches
/// heads of the program built so far — negation is ignored while grounding
/// and carried into the ground rules.
class SimpleGrounder : public Grounder {
 public:
  /// `translated` and `db` must outlive the grounder. Compiles every Σ∄
  /// rule to slot form once, here, so chase nodes share the compiled
  /// bodies read-only.
  SimpleGrounder(const TranslatedProgram* translated, const FactStore* db);

  /// Delta-extension construction (GDatalog::WithDatabaseDelta): shares
  /// `base`'s database-prefix grounding instead of rebuilding it from |D|
  /// and carries the rows `db` gained in `ranges` as a tail of body-less
  /// rules. With `resume_root`, and provided `base` has already saturated
  /// its root grounding, the root is re-grounded semi-naively from the
  /// delta ranges only (watermarks seeded at the base root's counts);
  /// `resume_root` must only be set when `translated` holds the same rule
  /// set as the base's — the engine ties it to pipeline reuse. Outputs:
  /// `root_resumed` reports whether the resume happened, `rules_refired`
  /// the number of ground rules the resume derived beyond the delta facts.
  SimpleGrounder(const TranslatedProgram* translated, const FactStore* db,
                 const SimpleGrounder& base, const DeltaRanges& ranges,
                 bool resume_root, bool* root_resumed,
                 uint64_t* rules_refired);

  std::string_view name() const override { return "simple"; }

  Status Ground(const ChoiceSet& choices, GroundRuleSet* out,
                MatchStats* stats = nullptr) const override;

  bool SupportsIncremental() const override { return true; }
  Status Extend(const ChoiceSet& choices, const GroundAtom& new_active,
                GroundRuleSet* out) const override;

 private:
  /// Compiles the Σ∄ rules into compiled_/all_rules_/body_preds_ (shared
  /// by both constructors).
  void CompileRules();
  /// The saturated root grounding G(∅), built on first use (thread-safely)
  /// and shared by every Ground(): Simple^∞ is monotone, so G(Σ) is the
  /// fixpoint resumed from G(∅) with Σ's Result atoms as the only new
  /// facts — the choice-free core is derived once per engine, not once per
  /// chase node.
  Result<std::shared_ptr<const GroundRuleSet>> RootGrounding(
      MatchStats* stats) const;

  const TranslatedProgram* translated_;
  const FactStore* db_;
  /// Σ∄ rules compiled to slot form, parallel to sigma().rules().
  std::vector<CompiledRule> compiled_;
  std::vector<const CompiledRule*> all_rules_;
  /// Positive-body predicates of all_rules_, sorted.
  std::vector<uint32_t> body_preds_;
  /// Π[D]'s database prefix as a grounding (one body-less rule per fact)
  /// with a frozen, fully indexed matching instance — shared (not cloned)
  /// with delta-extension grounders derived from this one.
  std::shared_ptr<const GroundRuleSet> db_base_;
  /// Facts appended after db_base_ was built (delta-extension engines);
  /// the root grounding stacks them on top of the cloned prefix.
  std::vector<GroundRule> db_tail_;
  mutable std::mutex root_mu_;
  mutable std::shared_ptr<const GroundRuleSet> root_;  ///< Guarded by root_mu_.
};

/// The perfect grounder GPerfect_Π[D] (Definition 5.1) for programs with
/// stratified negation: processes the strata of dg(Π) in topological order;
/// within a stratum, h(σ) is added only when additionally the negative body
/// does not match heads so far (h(B-(σ)) ∩ heads = ∅); grounding of later
/// strata stalls until every Active atom produced so far has a choice
/// (AtR_Σ ↪ Σ↑C_{i-1}).
class PerfectGrounder : public Grounder {
 public:
  /// `pi` is the original (desugared, plain-constraint-free) program the
  /// strata are computed from. Fails when Π is not stratified.
  static Result<std::unique_ptr<PerfectGrounder>> Create(
      const Program& pi, const TranslatedProgram* translated,
      const FactStore* db);

  /// Delta-extension construction: shares `base`'s database-prefix
  /// grounding and appends the delta rows as a tail. Unlike the simple
  /// grounder there is no fixpoint resume: under negation, added facts can
  /// retract derivations (DRed territory), so every Ground() still runs
  /// the per-stratum fixpoints from the (shared) prefix.
  static Result<std::unique_ptr<PerfectGrounder>> CreateDelta(
      const Program& pi, const TranslatedProgram* translated,
      const FactStore* db, const PerfectGrounder& base,
      const DeltaRanges& ranges);

  std::string_view name() const override { return "perfect"; }

  Status Ground(const ChoiceSet& choices, GroundRuleSet* out,
                MatchStats* stats = nullptr) const override;

  size_t stratum_count() const { return stratum_rules_.size(); }

 private:
  PerfectGrounder(const TranslatedProgram* translated, const FactStore* db)
      : translated_(translated), db_(db) {}

  /// Everything Create/CreateDelta share: strata, rule compilation, body
  /// predicate sets — all but the database prefix.
  static Result<std::unique_ptr<PerfectGrounder>> Build(
      const Program& pi, const TranslatedProgram* translated,
      const FactStore* db);

  const TranslatedProgram* translated_;
  const FactStore* db_;
  /// Σ∄ rules compiled to slot form, parallel to sigma().rules().
  std::vector<CompiledRule> compiled_;
  /// Rules of Σ∄ grouped by the stratum of the originating Π-rule's head.
  std::vector<std::vector<const CompiledRule*>> stratum_rules_;
  /// Constraints, grounded in a final pass after all strata.
  std::vector<const CompiledRule*> constraint_rules_;
  /// Positive-body predicates per stratum (parallel to stratum_rules_)
  /// and for the constraint pass, each sorted.
  std::vector<std::vector<uint32_t>> stratum_body_preds_;
  std::vector<uint32_t> constraint_body_preds_;
  /// See SimpleGrounder::db_base_ / db_tail_.
  std::shared_ptr<const GroundRuleSet> db_base_;
  std::vector<GroundRule> db_tail_;
};

/// The triggers of Definition 4.1: Active atoms occurring in heads(G(Σ))
/// with no choice recorded in Σ, in canonical (sorted) order.
std::vector<GroundAtom> FindTriggers(const TranslatedProgram& translated,
                                     const GroundRuleSet& grounding,
                                     const ChoiceSet& choices);

/// Shared Simple^∞ / Perfect^∞ fixpoint machinery (used by both grounders).
/// Starts from the rules/facts already in `out`, whose heads() is the
/// matching instance (it also holds Result atoms contributed by earlier
/// `choices` cascades); saturates `rules` (compiled to slot form by the
/// owning grounder) and returns. With `check_negative`, a rule instance is
/// added only if its negative body misses the instance (Perfect
/// semantics). With `resume`, only facts cascaded by newly applicable
/// choices are treated as new (incremental continuation of an earlier
/// fixpoint). With `stats` non-null, compiled-join counters accumulate
/// into it.
/// `body_preds` must list the positive-body predicates of `rules`, sorted
/// and unique (the grounders precompute it once; it drives the delta
/// watermarks).
/// With `seed_watermarks` non-null (implies resume semantics), the entry
/// watermarks are taken from the map instead of snapshotted: rows of
/// predicate P at index ≥ (*seed_watermarks)[P] are treated as new, and
/// predicates missing from the map count as all-new. This is the
/// delta-driven re-grounding path — the caller seeds the watermarks at the
/// pre-delta counts and lets the semi-naive loop fire only what the delta
/// rows can newly match.
Status RunGroundingFixpoint(
    const TranslatedProgram& translated,
    const std::vector<const CompiledRule*>& rules,
    const std::vector<uint32_t>& body_preds, const ChoiceSet& choices,
    bool check_negative, GroundRuleSet* out, bool resume = false,
    MatchStats* stats = nullptr,
    const std::unordered_map<uint32_t, uint32_t>* seed_watermarks = nullptr);

}  // namespace gdlog

#endif  // GDLOG_GDATALOG_GROUNDER_H_
