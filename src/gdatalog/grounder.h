#ifndef GDLOG_GDATALOG_GROUNDER_H_
#define GDLOG_GDATALOG_GROUNDER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "gdatalog/choice.h"
#include "gdatalog/translation.h"
#include "ground/dependency_graph.h"
#include "ground/ground_rule.h"

namespace gdlog {

/// A grounder G of Π[D] (Definition 3.3): a monotone map from functionally
/// consistent sets Σ of ground AtR TGDs (ChoiceSet) to subsets of
/// ground(Σ∄_Π[D]) such that, whenever AtR_Σ is compatible with G(Σ), the
/// stable models of G(Σ) ∪ Σ are exactly those of Σ_Π[D] consistent with
/// the choices in Σ.
class Grounder {
 public:
  virtual ~Grounder() = default;

  virtual std::string_view name() const = 0;

  /// Computes G(Σ) for the choice set `choices`, appending the ground rules
  /// (including the database facts of D as body-less rules) to `out`.
  virtual Status Ground(const ChoiceSet& choices, GroundRuleSet* out) const = 0;

  /// Incremental protocol (optional). Grounders are monotone in the choice
  /// set (Definition 3.3), so G(Σ ∪ {c}) can be computed by resuming the
  /// fixpoint from G(Σ) with c's Result atom as the only new fact — the
  /// chase exploits this to avoid re-deriving the grounding at every node.
  virtual bool SupportsIncremental() const { return false; }

  /// Like Ground(), but additionally returns the matching instance
  /// heads(G(Σ) ∪ Σ) so Extend() can resume from it.
  virtual Status GroundWithState(const ChoiceSet& choices, GroundRuleSet* out,
                                 FactStore* heads) const {
    (void)heads;
    return Ground(choices, out);
  }

  /// Extends a previously computed (out, heads) pair — produced by
  /// GroundWithState/Extend for `choices` minus its most recent assignment
  /// `new_active` — to the grounding of the full `choices`. Only valid when
  /// SupportsIncremental().
  virtual Status Extend(const ChoiceSet& choices, const GroundAtom& new_active,
                        GroundRuleSet* out, FactStore* heads) const {
    (void)choices;
    (void)new_active;
    (void)out;
    (void)heads;
    return Status::Unsupported("grounder does not support incremental mode");
  }
};

/// The simple grounder GSimple_Π[D] (Definition 3.4): the least fixpoint of
/// the operator that adds h(σ) whenever the positive body h(B+(σ)) matches
/// heads of the program built so far — negation is ignored while grounding
/// and carried into the ground rules.
class SimpleGrounder : public Grounder {
 public:
  /// `translated` and `db` must outlive the grounder.
  SimpleGrounder(const TranslatedProgram* translated, const FactStore* db)
      : translated_(translated), db_(db) {}

  std::string_view name() const override { return "simple"; }

  Status Ground(const ChoiceSet& choices, GroundRuleSet* out) const override;

  bool SupportsIncremental() const override { return true; }
  Status GroundWithState(const ChoiceSet& choices, GroundRuleSet* out,
                         FactStore* heads) const override;
  Status Extend(const ChoiceSet& choices, const GroundAtom& new_active,
                GroundRuleSet* out, FactStore* heads) const override;

 private:
  const TranslatedProgram* translated_;
  const FactStore* db_;
};

/// The perfect grounder GPerfect_Π[D] (Definition 5.1) for programs with
/// stratified negation: processes the strata of dg(Π) in topological order;
/// within a stratum, h(σ) is added only when additionally the negative body
/// does not match heads so far (h(B-(σ)) ∩ heads = ∅); grounding of later
/// strata stalls until every Active atom produced so far has a choice
/// (AtR_Σ ↪ Σ↑C_{i-1}).
class PerfectGrounder : public Grounder {
 public:
  /// `pi` is the original (desugared, plain-constraint-free) program the
  /// strata are computed from. Fails when Π is not stratified.
  static Result<std::unique_ptr<PerfectGrounder>> Create(
      const Program& pi, const TranslatedProgram* translated,
      const FactStore* db);

  std::string_view name() const override { return "perfect"; }

  Status Ground(const ChoiceSet& choices, GroundRuleSet* out) const override;

  size_t stratum_count() const { return stratum_rules_.size(); }

 private:
  PerfectGrounder(const TranslatedProgram* translated, const FactStore* db)
      : translated_(translated), db_(db) {}

  const TranslatedProgram* translated_;
  const FactStore* db_;
  /// Rules of Σ∄ grouped by the stratum of the originating Π-rule's head.
  std::vector<std::vector<const Rule*>> stratum_rules_;
  /// Constraints, grounded in a final pass after all strata.
  std::vector<const Rule*> constraint_rules_;
};

/// The triggers of Definition 4.1: Active atoms occurring in heads(G(Σ))
/// with no choice recorded in Σ, in canonical (sorted) order.
std::vector<GroundAtom> FindTriggers(const TranslatedProgram& translated,
                                     const GroundRuleSet& grounding,
                                     const ChoiceSet& choices);

/// Shared Simple^∞ / Perfect^∞ fixpoint machinery (used by both grounders).
/// Starts from the rules/facts already in `out` and the matching instance
/// `heads` (which also holds Result atoms contributed by `choices`);
/// saturates `rules` and returns. With `check_negative`, a rule instance is
/// added only if its negative body misses `heads` (Perfect semantics).
/// With `resume`, only facts cascaded by newly applicable choices are
/// treated as new (incremental continuation of an earlier fixpoint).
Status RunGroundingFixpoint(const TranslatedProgram& translated,
                            const std::vector<const Rule*>& rules,
                            const ChoiceSet& choices, bool check_negative,
                            GroundRuleSet* out, FactStore* heads,
                            bool resume = false);

}  // namespace gdlog

#endif  // GDLOG_GDATALOG_GROUNDER_H_
