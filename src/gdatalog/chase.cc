#include "gdatalog/chase.h"

#include <algorithm>

namespace gdlog {

namespace {

/// Extracts the distribution parameters p̄ from a ground Active atom
/// Active^δ(p̄, q̄).
std::vector<Value> ActiveParams(const GroundAtom& active,
                                const DeltaSignature& sig) {
  return std::vector<Value>(active.args.begin(),
                            active.args.begin() + sig.param_count);
}

}  // namespace

struct ChaseEngine::ExploreState {
  const ChaseOptions* options;
  OutcomeSpace space;
  Rng trigger_rng{0};
  bool budget_hit = false;
};

Result<StableModelSet> ChaseEngine::SolveOutcome(
    const ChoiceSet& choices, const GroundRuleSet& grounding,
    uint64_t solver_max_nodes) const {
  // Σ ∪ G(Σ): the grounding plus one AtR rule Active → Result per choice.
  std::vector<GroundRule> choice_rules;
  choice_rules.reserve(choices.size());
  std::vector<const GroundRule*> all_rules = grounding.rules();
  for (const auto& [active, outcome] : choices.entries()) {
    const DeltaSignature* sig =
        translated_->SignatureByActive(active.predicate);
    if (sig == nullptr) {
      return Status::Internal("choice on a non-Active predicate");
    }
    GroundRule rule;
    rule.head = ChoiceSet::ResultAtom(sig->result_pred, active, outcome);
    rule.positive.push_back(active);
    choice_rules.push_back(std::move(rule));
  }
  for (const GroundRule& r : choice_rules) all_rules.push_back(&r);

  NormalProgram prog = NormalProgram::FromRules(all_rules);
  StableModelEnumerator::Options solver_options;
  solver_options.max_nodes = solver_max_nodes;
  StableModelEnumerator solver(prog, solver_options);
  StableModelSet models;
  Status st = solver.Enumerate([&](const std::vector<uint32_t>& atoms) {
    StableModel model;
    model.reserve(atoms.size());
    for (uint32_t a : atoms) model.push_back(prog.atoms().Get(a));
    std::sort(model.begin(), model.end());
    models.insert(std::move(model));
    return true;
  });
  if (!st.ok()) return st;
  return models;
}

Status ChaseEngine::Dfs(ExploreState& state, ChoiceSet& choices,
                        Prob path_prob, size_t depth,
                        const GroundRuleSet* parent_grounding,
                        const FactStore* parent_heads,
                        const GroundAtom* new_active) const {
  const ChaseOptions& options = *state.options;

  if (options.max_outcomes != 0 &&
      state.space.outcomes.size() >= options.max_outcomes) {
    state.budget_hit = true;
    return Status::OK();
  }
  if (options.min_path_prob > 0.0 &&
      path_prob.value() < options.min_path_prob) {
    ++state.space.pruned_paths;
    state.budget_hit = true;
    return Status::OK();
  }

  bool incremental =
      options.incremental && grounder_->SupportsIncremental();
  auto grounding = std::make_shared<GroundRuleSet>();
  FactStore heads;
  if (incremental) {
    if (parent_grounding == nullptr) {
      GDLOG_RETURN_IF_ERROR(
          grounder_->GroundWithState(choices, grounding.get(), &heads));
    } else {
      // Branch: clone the parent's fixpoint state and extend it with the
      // newly recorded choice (sound by monotonicity, Definition 3.3).
      *grounding = parent_grounding->Clone();
      heads = *parent_heads;
      GDLOG_RETURN_IF_ERROR(
          grounder_->Extend(choices, *new_active, grounding.get(), &heads));
    }
  } else {
    GDLOG_RETURN_IF_ERROR(grounder_->Ground(choices, grounding.get()));
  }

  std::vector<GroundAtom> triggers =
      FindTriggers(*translated_, *grounding, choices);

  if (triggers.empty()) {
    // A leaf: λ(v) is a terminal — the result of this finite maximal path
    // is the possible outcome Σ ∪ G(Σ) with Pr = Π δ⟨p̄⟩(o).
    PossibleOutcome outcome;
    outcome.choices = choices;
    outcome.prob = path_prob;
    if (options.compute_models) {
      GDLOG_ASSIGN_OR_RETURN(
          outcome.models,
          SolveOutcome(choices, *grounding, options.solver_max_nodes));
    }
    if (options.keep_groundings) outcome.grounding = grounding;
    state.space.finite_mass = state.space.finite_mass + outcome.prob;
    state.space.outcomes.push_back(std::move(outcome));
    return Status::OK();
  }

  if (depth >= options.max_depth) {
    ++state.space.depth_truncated_paths;
    state.budget_hit = true;
    return Status::OK();
  }

  // Pick one trigger; Lemma 4.4 makes the choice irrelevant for the set of
  // finite results, which E4 verifies by shuffling here.
  size_t pick = 0;
  if (options.trigger_shuffle_seed != 0) {
    pick = static_cast<size_t>(state.trigger_rng.NextBounded(triggers.size()));
  }
  const GroundAtom& trigger = triggers[pick];
  const DeltaSignature* sig = translated_->SignatureByActive(trigger.predicate);
  if (sig == nullptr) {
    return Status::Internal("trigger is not an Active atom");
  }
  std::vector<Value> params = ActiveParams(trigger, *sig);

  bool finite_support = sig->dist->HasFiniteSupport(params);
  std::vector<Value> support =
      sig->dist->Support(params, finite_support ? 0 : options.support_limit);

  Prob enumerated_mass = Prob::Zero();
  for (const Value& o : support) {
    Prob p = sig->dist->Pmf(params, o);
    enumerated_mass = enumerated_mass + p;
    bool ok = choices.Assign(trigger, o);
    if (!ok) return Status::Internal("functionally inconsistent choice");
    GDLOG_RETURN_IF_ERROR(Dfs(state, choices, path_prob * p, depth + 1,
                              grounding.get(), &heads, &trigger));
    choices.Unassign(trigger);
  }
  if (!finite_support) {
    // Tail mass of the truncated support joins the residual.
    Prob tail = Prob::One() - enumerated_mass;
    if (tail.value() > 0.0) {
      state.space.support_truncation_mass =
          state.space.support_truncation_mass + path_prob * tail;
      state.budget_hit = true;
    }
  }
  return Status::OK();
}

Result<OutcomeSpace> ChaseEngine::Explore(const ChaseOptions& options) const {
  ExploreState state;
  state.options = &options;
  if (options.trigger_shuffle_seed != 0) {
    state.trigger_rng.Seed(options.trigger_shuffle_seed);
  }
  ChoiceSet choices;
  GDLOG_RETURN_IF_ERROR(Dfs(state, choices, Prob::One(), 0,
                            /*parent_grounding=*/nullptr,
                            /*parent_heads=*/nullptr,
                            /*new_active=*/nullptr));
  state.space.complete = !state.budget_hit;
  return std::move(state.space);
}

Result<ChaseEngine::PathSample> ChaseEngine::SamplePath(
    Rng* rng, const ChaseOptions& options) const {
  PathSample sample;
  bool incremental =
      options.incremental && grounder_->SupportsIncremental();
  // A single path never backtracks, so incremental mode can thread one
  // (grounding, heads) pair through the whole walk without cloning.
  auto incremental_grounding = std::make_shared<GroundRuleSet>();
  FactStore incremental_heads;
  if (incremental) {
    GDLOG_RETURN_IF_ERROR(grounder_->GroundWithState(
        sample.choices, incremental_grounding.get(), &incremental_heads));
  }
  for (size_t depth = 0;; ++depth) {
    std::shared_ptr<GroundRuleSet> grounding;
    if (incremental) {
      grounding = incremental_grounding;
    } else {
      grounding = std::make_shared<GroundRuleSet>();
      GDLOG_RETURN_IF_ERROR(
          grounder_->Ground(sample.choices, grounding.get()));
    }
    std::vector<GroundAtom> triggers =
        FindTriggers(*translated_, *grounding, sample.choices);
    if (triggers.empty()) {
      if (options.compute_models) {
        GDLOG_ASSIGN_OR_RETURN(
            sample.models,
            SolveOutcome(sample.choices, *grounding,
                         options.solver_max_nodes));
      }
      if (options.keep_groundings) sample.grounding = grounding;
      return sample;
    }
    if (depth >= options.max_depth) {
      sample.truncated = true;
      return sample;
    }
    // Resolve the canonically first trigger by sampling; per Theorem 4.6
    // the induced path distribution matches the outcome space regardless of
    // the trigger picked.
    const GroundAtom& trigger = triggers.front();
    const DeltaSignature* sig =
        translated_->SignatureByActive(trigger.predicate);
    if (sig == nullptr) {
      return Status::Internal("trigger is not an Active atom");
    }
    std::vector<Value> params = ActiveParams(trigger, *sig);
    Value o = sig->dist->Sample(params, rng);
    sample.prob = sample.prob * sig->dist->Pmf(params, o);
    if (!sample.choices.Assign(trigger, o)) {
      return Status::Internal("functionally inconsistent sampled choice");
    }
    if (incremental) {
      GDLOG_RETURN_IF_ERROR(grounder_->Extend(sample.choices, trigger,
                                              incremental_grounding.get(),
                                              &incremental_heads));
    }
  }
}

}  // namespace gdlog
