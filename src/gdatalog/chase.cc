#include "gdatalog/chase.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "gdatalog/chase_internal.h"
#include "gdatalog/shard.h"
#include "obs/histogram.h"
#include "obs/profile.h"
#include "util/hash.h"
#include "util/thread_pool.h"

namespace gdlog {

namespace {

/// Extracts the distribution parameters p̄ from a ground Active atom
/// Active^δ(p̄, q̄).
std::vector<Value> ActiveParams(const GroundAtom& active,
                                const DeltaSignature& sig) {
  return std::vector<Value>(active.args.begin(),
                            active.args.begin() + sig.param_count);
}

/// Order-independent fingerprint of a chase node (its choice set). Mixing
/// this into trigger_shuffle_seed makes the shuffled trigger pick a pure
/// function of the node, so the pick sequence cannot depend on the order
/// in which workers happen to reach nodes.
uint64_t HashChoices(const ChoiceSet& choices) {
  uint64_t h = 0x243f6a8885a308d3ULL;
  for (const auto& [active, outcome] : choices.entries()) {
    h = HashCombine(h, active.Hash());
    h = HashCombine(h, outcome.Hash());
  }
  return h;
}

}  // namespace

Result<StableModelSet> ChaseEngine::SolveOutcome(
    const ChoiceSet& choices, const GroundRuleSet& grounding,
    uint64_t solver_max_nodes) const {
  // Σ ∪ G(Σ): the grounding plus one AtR rule Active → Result per choice.
  std::vector<GroundRule> choice_rules;
  choice_rules.reserve(choices.size());
  std::vector<const GroundRule*> all_rules = grounding.rules();
  for (const auto& [active, outcome] : choices.entries()) {
    const DeltaSignature* sig =
        translated_->SignatureByActive(active.predicate);
    if (sig == nullptr) {
      return Status::Internal("choice on a non-Active predicate");
    }
    GroundRule rule;
    rule.head = ChoiceSet::ResultAtom(sig->result_pred, active, outcome);
    rule.positive.push_back(active);
    choice_rules.push_back(std::move(rule));
  }
  for (const GroundRule& r : choice_rules) all_rules.push_back(&r);

  NormalProgram prog = NormalProgram::FromRules(all_rules);
  StableModelEnumerator::Options solver_options;
  solver_options.max_nodes = solver_max_nodes;
  StableModelEnumerator solver(prog, solver_options);
  StableModelSet models;
  Status st = solver.Enumerate([&](const std::vector<uint32_t>& atoms) {
    StableModel model;
    model.reserve(atoms.size());
    for (uint32_t a : atoms) model.push_back(prog.atoms().Get(a));
    std::sort(model.begin(), model.end());
    models.insert(std::move(model));
    return true;
  });
  if (!st.ok()) return st;
  return models;
}

void ChaseEngine::ProcessNode(ExploreState& state, WorkItem item,
                              size_t worker,
                              std::vector<WorkItem>* children) const {
  const ChaseOptions& options = *state.options;
  PartialSpace& partial = state.partials[worker];

  if (state.failed.load(std::memory_order_acquire)) return;
  // Plan mode: nodes at the prefix depth become shard tasks as-is — all
  // remaining checks (pruning, budgets) re-run identically when the shard
  // that owns the task processes it.
  if (state.plan_tasks != nullptr && item.depth >= state.plan_prefix_depth) {
    ++state.plan_cut_tasks;
    state.plan_tasks->push_back(
        ShardTask{std::move(item.choices), item.path_prob});
    return;
  }
  if (options.max_outcomes != 0 &&
      state.outcome_count.load(std::memory_order_relaxed) >=
          options.max_outcomes) {
    state.budget_hit.store(true, std::memory_order_relaxed);
    return;
  }
  if (options.min_path_prob > 0.0 &&
      item.path_prob.value() < options.min_path_prob) {
    ++partial.pruned_paths;
    state.budget_hit.store(true, std::memory_order_relaxed);
    return;
  }

  // Profiling (options.profile): this worker's accumulator doubles as the
  // thread-local sink the grounding fixpoint attributes per-rule work to.
  // Safe because ProcessNode runs entirely on one thread, in the serial
  // and the pooled drain alike. state.profiles is empty when profiling is
  // off, so the disabled path takes one branch here and none below.
  ChaseProfile* const prof =
      worker < state.profiles.size() ? &state.profiles[worker] : nullptr;
  ProfileScope profile_scope(prof);
  uint64_t ground_start_ns = 0;
  if (prof != nullptr) {
    ++prof->nodes;
    ++prof->Depth(item.depth).nodes;
    ground_start_ns = MonotonicNanos();
  }

  auto grounding = std::make_shared<GroundRuleSet>();
  Status ground_status;
  if (state.incremental && item.parent_grounding != nullptr) {
    // Branch: clone the parent's fixpoint state and extend it with the
    // newly recorded choice (sound by monotonicity, Definition 3.3). The
    // clone's matching instance is copy-on-write, so it costs one pointer
    // per predicate until the extension actually derives new facts.
    *grounding = item.parent_grounding->Clone();
    ground_status = grounder_->Extend(item.choices, item.new_active,
                                      grounding.get());
  } else {
    ground_status = grounder_->Ground(item.choices, grounding.get());
  }
  if (prof != nullptr) {
    const uint64_t elapsed = MonotonicNanos() - ground_start_ns;
    ++prof->ground_calls;
    prof->ground_time_ns += elapsed;
    prof->Depth(item.depth).ground_time_ns += elapsed;
  }
  if (!ground_status.ok()) {
    state.RecordError(ground_status);
    return;
  }

  std::vector<GroundAtom> triggers =
      FindTriggers(*translated_, *grounding, item.choices);

  if (triggers.empty()) {
    // A leaf: λ(v) is a terminal — the result of this finite maximal path
    // is the possible outcome Σ ∪ G(Σ) with Pr = Π δ⟨p̄⟩(o).
    if (state.plan_tasks != nullptr) {
      // Leaves above the prefix cut become tasks too: the owning shard
      // re-grounds them and emits the outcome (with its models), so the
      // planner never solves models and the plan stays cheap.
      state.plan_tasks->push_back(
          ShardTask{std::move(item.choices), item.path_prob});
      return;
    }
    if (options.max_outcomes != 0) {
      size_t slot =
          state.outcome_count.fetch_add(1, std::memory_order_relaxed);
      if (slot >= options.max_outcomes) {
        state.budget_hit.store(true, std::memory_order_relaxed);
        return;
      }
    } else {
      state.outcome_count.fetch_add(1, std::memory_order_relaxed);
    }
    PossibleOutcome outcome;
    outcome.prob = item.path_prob;
    if (options.compute_models) {
      const uint64_t solve_start_ns =
          prof != nullptr ? MonotonicNanos() : 0;
      auto models =
          SolveOutcome(item.choices, *grounding, options.solver_max_nodes);
      if (prof != nullptr) {
        const uint64_t elapsed = MonotonicNanos() - solve_start_ns;
        ++prof->solve_calls;
        prof->solve_time_ns += elapsed;
        prof->Depth(item.depth).solve_time_ns += elapsed;
      }
      if (!models.ok()) {
        state.RecordError(models.status());
        return;
      }
      outcome.models = std::move(models).value();
    }
    if (options.keep_groundings) outcome.grounding = grounding;
    outcome.choices = std::move(item.choices);
    partial.outcomes.push_back(std::move(outcome));
    return;
  }

  if (item.depth >= options.max_depth) {
    ++partial.depth_truncated_paths;
    state.budget_hit.store(true, std::memory_order_relaxed);
    return;
  }

  // Pick one trigger; Lemma 4.4 makes the choice irrelevant for the set of
  // finite results, which E4 verifies by shuffling here.
  size_t pick = 0;
  if (options.trigger_shuffle_seed != 0 && triggers.size() > 1) {
    Rng rng(options.trigger_shuffle_seed ^ HashChoices(item.choices));
    pick = static_cast<size_t>(rng.NextBounded(triggers.size()));
  }
  const GroundAtom& trigger = triggers[pick];
  const DeltaSignature* sig = translated_->SignatureByActive(trigger.predicate);
  if (sig == nullptr) {
    state.RecordError(Status::Internal("trigger is not an Active atom"));
    return;
  }
  std::vector<Value> params = ActiveParams(trigger, *sig);

  bool finite_support = sig->dist->HasFiniteSupport(params);
  std::vector<Value> support =
      sig->dist->Support(params, finite_support ? 0 : options.support_limit);

  Prob enumerated_mass = Prob::Zero();
  children->reserve(children->size() + support.size());
  for (size_t i = 0; i < support.size(); ++i) {
    const Value& o = support[i];
    Prob p = sig->dist->Pmf(params, o);
    enumerated_mass = enumerated_mass + p;
    WorkItem child;
    // The last child may steal the parent's choice set outright — unless
    // the truncation accounting below still needs it.
    if (finite_support && i + 1 == support.size()) {
      child.choices = std::move(item.choices);
    } else {
      child.choices = item.choices;
    }
    if (!child.choices.Assign(trigger, o)) {
      state.RecordError(Status::Internal("functionally inconsistent choice"));
      return;
    }
    child.path_prob = item.path_prob * p;
    child.depth = item.depth + 1;
    if (state.incremental) {
      child.parent_grounding = grounding;
      child.new_active = trigger;
    }
    children->push_back(std::move(child));
  }
  if (!finite_support) {
    // Tail mass of the truncated support joins the residual.
    Prob tail = Prob::One() - enumerated_mass;
    if (tail.value() > 0.0) {
      partial.truncations.emplace_back(item.choices, item.path_prob * tail);
      state.budget_hit.store(true, std::memory_order_relaxed);
    }
  }
}

void ChaseEngine::DrainFrontier(ExploreState& state,
                                std::vector<WorkItem> roots) const {
  if (state.partials.size() == 1) {
    // Serial: an explicit LIFO stack reproduces the former recursive DFS,
    // including which outcomes are enumerated when a budget binds.
    // Reversed pushes make the stack pop roots (and, below, children) in
    // their given order.
    std::vector<WorkItem> stack;
    std::vector<WorkItem> children;
    stack.reserve(roots.size());
    for (size_t i = roots.size(); i > 0; --i) {
      stack.push_back(std::move(roots[i - 1]));
    }
    while (!stack.empty()) {
      WorkItem item = std::move(stack.back());
      stack.pop_back();
      children.clear();
      ProcessNode(state, std::move(item), /*worker=*/0, &children);
      for (size_t i = children.size(); i > 0; --i) {
        stack.push_back(std::move(children[i - 1]));
      }
    }
    return;
  }
  ThreadPool pool(state.partials.size());
  std::function<void(WorkItem)> enqueue = [&](WorkItem item) {
    auto boxed = std::make_shared<WorkItem>(std::move(item));
    pool.Submit([this, &state, &enqueue, boxed](size_t worker) {
      std::vector<WorkItem> children;
      ProcessNode(state, std::move(*boxed), worker, &children);
      for (WorkItem& child : children) enqueue(std::move(child));
    });
  };
  for (WorkItem& root : roots) enqueue(std::move(root));
  pool.WaitIdle();
}

Result<OutcomeSpace> ChaseEngine::Explore(const ChaseOptions& options,
                                          ChaseProfile* profile) const {
  ExploreState state;
  state.options = &options;
  state.incremental =
      options.incremental && grounder_->SupportsIncremental();

  size_t workers = options.num_threads != 0
                       ? options.num_threads
                       : ThreadPool::DefaultWorkerCount();
  if (workers < 1) workers = 1;
  state.partials.resize(workers);
  if (options.profile && profile != nullptr) state.profiles.resize(workers);

  std::vector<WorkItem> roots(1);
  DrainFrontier(state, std::move(roots));

  // Worker-index order keeps the merged counts identical for every
  // schedule (each count is schedule-independent per worker-set already;
  // the order only matters for the transient stratum stamps).
  if (options.profile && profile != nullptr) {
    for (const ChaseProfile& p : state.profiles) profile->Merge(p);
  }

  if (!state.first_error.ok()) return state.first_error;

  // Deterministic merge (shard.cc): order everything by the canonical
  // choice-set order across all partials, only then accumulate masses.
  // The set of enumerated leaves is schedule-independent whenever no
  // budget binds (Lemma 4.4 order-invariance), so sorting makes the whole
  // OutcomeSpace — including the rounding of inexact double masses —
  // bit-identical for every thread count, and likewise for every shard
  // count when the partials come from ExploreShard.
  return MergePartialSpaces(state.TakePartials(), options.max_outcomes);
}

Result<ChaseEngine::PathSample> ChaseEngine::SamplePath(
    Rng* rng, const ChaseOptions& options) const {
  PathSample sample;
  bool incremental =
      options.incremental && grounder_->SupportsIncremental();
  // A single path never backtracks, so incremental mode can thread one
  // grounding through the whole walk without cloning.
  auto incremental_grounding = std::make_shared<GroundRuleSet>();
  if (incremental) {
    GDLOG_RETURN_IF_ERROR(
        grounder_->Ground(sample.choices, incremental_grounding.get()));
  }
  for (size_t depth = 0;; ++depth) {
    std::shared_ptr<GroundRuleSet> grounding;
    if (incremental) {
      grounding = incremental_grounding;
    } else {
      grounding = std::make_shared<GroundRuleSet>();
      GDLOG_RETURN_IF_ERROR(
          grounder_->Ground(sample.choices, grounding.get()));
    }
    std::vector<GroundAtom> triggers =
        FindTriggers(*translated_, *grounding, sample.choices);
    if (triggers.empty()) {
      if (options.compute_models) {
        GDLOG_ASSIGN_OR_RETURN(
            sample.models,
            SolveOutcome(sample.choices, *grounding,
                         options.solver_max_nodes));
      }
      if (options.keep_groundings) sample.grounding = grounding;
      return sample;
    }
    if (depth >= options.max_depth) {
      sample.truncated = true;
      return sample;
    }
    // Resolve the canonically first trigger by sampling; per Theorem 4.6
    // the induced path distribution matches the outcome space regardless of
    // the trigger picked.
    const GroundAtom& trigger = triggers.front();
    const DeltaSignature* sig =
        translated_->SignatureByActive(trigger.predicate);
    if (sig == nullptr) {
      return Status::Internal("trigger is not an Active atom");
    }
    std::vector<Value> params = ActiveParams(trigger, *sig);
    Value o = sig->dist->Sample(params, rng);
    sample.prob = sample.prob * sig->dist->Pmf(params, o);
    if (!sample.choices.Assign(trigger, o)) {
      return Status::Internal("functionally inconsistent sampled choice");
    }
    if (incremental) {
      GDLOG_RETURN_IF_ERROR(grounder_->Extend(sample.choices, trigger,
                                              incremental_grounding.get()));
    }
  }
}

}  // namespace gdlog
