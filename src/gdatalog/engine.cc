#include "gdatalog/engine.h"

#include <utility>

#include "ast/parser.h"

namespace gdlog {

struct GDatalog::State {
  Program program;  // desugared
  FactStore db;
  // Shared (not owned) so that WithDatabase engines can point their
  // Σ_Π delta-signature metadata at the same distribution objects.
  std::shared_ptr<DistributionRegistry> registry;
  TranslatedProgram translated;
  bool stratified = false;
  GrounderKind effective_grounder = GrounderKind::kSimple;
  DbSummary db_summary;
  OptStats opt_stats;
  DeltaStats delta_stats;
  /// Facts a WithDatabaseDelta construction appended (duplicates
  /// excluded), for the serving layer's outcome-space patching.
  std::vector<GroundAtom> delta_added;
  std::unique_ptr<Grounder> grounder;
  std::unique_ptr<ChaseEngine> chase;
};

GDatalog::GDatalog(std::unique_ptr<State> state) : state_(std::move(state)) {}
GDatalog::GDatalog(GDatalog&&) noexcept = default;
GDatalog& GDatalog::operator=(GDatalog&&) noexcept = default;
GDatalog::~GDatalog() = default;

Result<GDatalog> GDatalog::Create(std::string_view program_text,
                                  std::string_view database_text) {
  return Create(program_text, database_text, Options{});
}

Result<GDatalog> GDatalog::FromProgram(Program pi, FactStore db) {
  return FromProgram(std::move(pi), std::move(db), Options{});
}

Result<GDatalog> GDatalog::Create(std::string_view program_text,
                                  std::string_view database_text,
                                  Options options) {
  GDLOG_ASSIGN_OR_RETURN(Program pi, ParseProgram(program_text));
  GDLOG_ASSIGN_OR_RETURN(FactStore db,
                         ParseFacts(database_text, pi.interner()));
  return FromProgram(std::move(pi), std::move(db), std::move(options));
}

Result<GDatalog> GDatalog::FromProgram(Program pi, FactStore db,
                                       Options options) {
  auto state = std::make_unique<State>();
  state->program = std::move(pi);
  // Constraints are handled natively end-to-end (a ground constraint
  // rejects candidate stable models); the paper's Fail/Aux desugaring
  // remains available via Program::DesugarConstraints but would make every
  // constraint-bearing program non-stratified.
  GDLOG_RETURN_IF_ERROR(state->program.Validate());
  state->db = std::move(db);
  // The database D is shared read-only by every chase worker; building its
  // column indices eagerly means concurrent readers never mutate it, even
  // lazily.
  state->db.Freeze();
  state->registry =
      options.registry != nullptr
          ? std::shared_ptr<DistributionRegistry>(std::move(options.registry))
          : std::make_shared<DistributionRegistry>(
                DistributionRegistry::Builtins());

  GDLOG_ASSIGN_OR_RETURN(
      state->translated,
      TranslateToTgd(state->program, *state->registry));

  DependencyGraph dg(state->program);
  state->stratified = dg.IsStratified();

  state->db_summary = SummarizeDb(state->db);
  if (options.optimize && !OptDisabledByEnv()) {
    ProgramIr ir = ProgramIr::LiftSigma(state->program, state->translated,
                                        state->program.interner());
    PipelineOptions popts;
    popts.record_dumps = options.record_ir_dumps;
    if (state->stratified) {
      // The demand pass changes the outcome space away from the goals, so
      // it is only sound under stratification (splitting-set argument in
      // ROADMAP) and only requested by callers observing goal marginals.
      for (const std::string& goal : options.demand_goals) {
        uint32_t id = state->program.interner()->Lookup(goal);
        if (id != Interner::kNotFound) popts.demand_goals.push_back(id);
      }
    }
    state->opt_stats = RunPipeline(&ir, state->db_summary, popts);
    ir.ApplyTo(&state->translated);
    // The passes preserve range-restriction and arity by construction;
    // re-validating is cheap insurance against a pass bug silently
    // producing an unsafe Σ_Π.
    GDLOG_RETURN_IF_ERROR(state->translated.sigma().Validate());
  }

  GrounderKind kind = options.grounder;
  if (kind == GrounderKind::kAuto) {
    kind = state->stratified ? GrounderKind::kPerfect : GrounderKind::kSimple;
  }
  state->effective_grounder = kind;
  return FinishEngine(std::move(state));
}

Result<GDatalog> GDatalog::FinishEngine(std::unique_ptr<State> state) {
  if (state->effective_grounder == GrounderKind::kPerfect) {
    GDLOG_ASSIGN_OR_RETURN(
        state->grounder,
        PerfectGrounder::Create(state->program, &state->translated,
                                &state->db));
  } else {
    state->grounder =
        std::make_unique<SimpleGrounder>(&state->translated, &state->db);
  }
  state->chase = std::make_unique<ChaseEngine>(&state->translated, &state->db,
                                               state->grounder.get());
  return GDatalog(std::move(state));
}

Result<GDatalog> GDatalog::WithDatabase(const GDatalog& base,
                                        std::string_view database_text) {
  const State& bs = *base.state_;
  auto state = std::make_unique<State>();
  // Clone the interner so the new engine can intern database-only symbols
  // without mutating the base engine (which may be serving concurrently).
  std::shared_ptr<Interner> interner = bs.program.interner()->Clone();
  state->program = bs.program.CloneWith(interner);
  GDLOG_ASSIGN_OR_RETURN(state->db, ParseFacts(database_text, interner.get()));
  state->db.Freeze();
  state->registry = bs.registry;
  state->stratified = bs.stratified;
  state->effective_grounder = bs.effective_grounder;
  state->db_summary = SummarizeDb(state->db);

  // The pass pipeline consumes only the database summary — and of the
  // summary only predicate presence and column domains, never exact row
  // counts — so a pipeline-equivalent summary makes the optimized Σ_Π a
  // pure function of inputs that did not change: adopt it. Note the base's
  // demand transformation (if any) carries over: it depends only on the
  // program and goals, never the db.
  if (!bs.opt_stats.enabled ||
      PipelineEquivalent(state->db_summary, bs.db_summary)) {
    state->translated = bs.translated.CloneWith(interner);
    state->opt_stats = bs.opt_stats;
    state->opt_stats.pipeline_reused = bs.opt_stats.enabled;
    state->opt_stats.dumps.clear();
    return FinishEngine(std::move(state));
  }

  GDLOG_ASSIGN_OR_RETURN(
      state->translated, TranslateToTgd(state->program, *state->registry));
  if (!OptDisabledByEnv()) {
    ProgramIr ir = ProgramIr::LiftSigma(state->program, state->translated,
                                        state->program.interner());
    PipelineOptions popts;
    // Demand goals deliberately do not carry over: this path serves generic
    // engines whose query set is unknown (the registry layers demand on top
    // per query signature).
    state->opt_stats = RunPipeline(&ir, state->db_summary, popts);
    ir.ApplyTo(&state->translated);
    GDLOG_RETURN_IF_ERROR(state->translated.sigma().Validate());
  }
  return FinishEngine(std::move(state));
}

Result<GDatalog> GDatalog::WithDatabaseDelta(const GDatalog& base,
                                             std::string_view delta_text) {
  const State& bs = *base.state_;
  auto state = std::make_unique<State>();
  std::shared_ptr<Interner> interner = bs.program.interner()->Clone();
  state->program = bs.program.CloneWith(interner);
  GDLOG_ASSIGN_OR_RETURN(FactDelta delta,
                         ParseFactDelta(delta_text, interner.get()));

  // COW-extend the base database: the copy shares row storage and adopts
  // the already-built indices, so applying the delta costs O(|delta|) plus
  // one relation detach per touched predicate — never O(|D|) re-parsing.
  state->db = bs.db;
  DeltaRanges ranges;
  GDLOG_RETURN_IF_ERROR(state->db.ApplyDelta(delta, &ranges));
  state->db.Freeze();

  state->registry = bs.registry;
  state->stratified = bs.stratified;
  state->effective_grounder = bs.effective_grounder;

  state->delta_stats.applied = true;
  state->delta_stats.rows_appended = ranges.rows_appended;
  state->delta_stats.duplicates_skipped = ranges.duplicates_skipped;
  state->delta_stats.predicates_touched = ranges.ranges.size();
  state->delta_added.reserve(ranges.rows_appended);
  for (const auto& [pred, range] : ranges.ranges) {
    const std::vector<Tuple>& rows = state->db.Rows(pred);
    for (uint32_t r = range.begin; r < range.end && r < rows.size(); ++r) {
      state->delta_added.push_back(GroundAtom{pred, rows[r]});
    }
  }

  // Incremental summary maintenance: equal to SummarizeDb on the
  // post-delta database by construction (delta_test pins this), at cost
  // proportional to the delta.
  state->db_summary = bs.db_summary;
  UpdateSummaryForDelta(&state->db_summary, state->db, ranges);
  bool equivalent = PipelineEquivalent(state->db_summary, bs.db_summary);
  state->delta_stats.summary_changed = !equivalent;

  // Does the delta touch any rule body of Π? Checked against Π itself (via
  // the IR's use index), which is conservative for every derived engine
  // variant — a transformed body only ever mentions Π body predicates plus
  // synthesized "__"-prefixed ones, which the name guard covers. The
  // serving layer keys cache revalidation off this bit.
  {
    ProgramIr ir = ProgramIr::LiftPlain(state->program, interner.get());
    for (const auto& [pred, range] : ranges.ranges) {
      (void)range;
      const std::string& name = interner->Name(pred);
      if (ir.uses().count(pred) != 0 || name.rfind("__", 0) == 0) {
        state->delta_stats.touches_rule_bodies = true;
        break;
      }
    }
  }

  bool reuse_pipeline = !bs.opt_stats.enabled || equivalent;
  if (reuse_pipeline) {
    state->translated = bs.translated.CloneWith(interner);
    state->opt_stats = bs.opt_stats;
    state->opt_stats.pipeline_reused = bs.opt_stats.enabled;
    state->opt_stats.dumps.clear();
  } else {
    GDLOG_ASSIGN_OR_RETURN(
        state->translated, TranslateToTgd(state->program, *state->registry));
    if (!OptDisabledByEnv()) {
      ProgramIr ir = ProgramIr::LiftSigma(state->program, state->translated,
                                          state->program.interner());
      PipelineOptions popts;
      state->opt_stats = RunPipeline(&ir, state->db_summary, popts);
      ir.ApplyTo(&state->translated);
      GDLOG_RETURN_IF_ERROR(state->translated.sigma().Validate());
    }
  }
  state->delta_stats.pipeline_reused = state->opt_stats.pipeline_reused;

  // Grounders share the base's database-prefix grounding (COW-extension)
  // instead of rebuilding it fact by fact. The simple grounder additionally
  // resumes the base's saturated root grounding from the delta ranges —
  // sound only when the rule sets are identical, which pipeline reuse (or
  // the pipeline being off) guarantees.
  if (state->effective_grounder == GrounderKind::kPerfect) {
    const auto& base_grounder =
        static_cast<const PerfectGrounder&>(*bs.grounder);
    GDLOG_ASSIGN_OR_RETURN(
        state->grounder,
        PerfectGrounder::CreateDelta(state->program, &state->translated,
                                     &state->db, base_grounder, ranges));
  } else {
    const auto& base_grounder =
        static_cast<const SimpleGrounder&>(*bs.grounder);
    state->grounder = std::make_unique<SimpleGrounder>(
        &state->translated, &state->db, base_grounder, ranges,
        /*resume_root=*/reuse_pipeline, &state->delta_stats.root_resumed,
        &state->delta_stats.rules_refired);
  }
  state->chase = std::make_unique<ChaseEngine>(&state->translated, &state->db,
                                               state->grounder.get());
  return GDatalog(std::move(state));
}

const Program& GDatalog::program() const { return state_->program; }
const TranslatedProgram& GDatalog::translated() const {
  return state_->translated;
}
const FactStore& GDatalog::database() const { return state_->db; }
const DistributionRegistry& GDatalog::registry() const {
  return *state_->registry;
}
const Grounder& GDatalog::grounder() const { return *state_->grounder; }
bool GDatalog::stratified() const { return state_->stratified; }
const OptStats& GDatalog::opt_stats() const { return state_->opt_stats; }
const DbSummary& GDatalog::db_summary() const { return state_->db_summary; }
const DeltaStats& GDatalog::delta_stats() const { return state_->delta_stats; }
const std::vector<GroundAtom>& GDatalog::delta_added_facts() const {
  return state_->delta_added;
}
const ChaseEngine& GDatalog::chase() const { return *state_->chase; }

Result<OutcomeSpace> GDatalog::Infer(const ChaseOptions& options) const {
  return state_->chase->Explore(options);
}

Result<OutcomeSpace> GDatalog::Infer(const ChaseOptions& options,
                                     ChaseProfile* profile) const {
  return state_->chase->Explore(options, profile);
}

std::vector<std::string> GDatalog::SigmaRuleLabels() const {
  const Program& sigma = state_->translated.sigma();
  std::vector<std::string> labels;
  labels.reserve(sigma.rules().size());
  for (size_t i = 0; i < sigma.rules().size(); ++i) {
    const Rule& rule = sigma.rules()[i];
    std::string label = "r" + std::to_string(i) + ":";
    label += rule.is_constraint ? "constraint"
                                : rule.head.ToString(sigma.interner());
    labels.push_back(std::move(label));
  }
  return labels;
}

Result<GroundAtom> GDatalog::ParseGroundAtom(std::string_view text) const {
  std::string rule_text = std::string(text);
  if (rule_text.empty() || rule_text.back() != '.') rule_text += ".";
  auto parsed = ParseProgram(rule_text, state_->program.shared_interner());
  if (!parsed.ok()) return parsed.status();
  if (parsed->rules().size() != 1 || !parsed->rules()[0].IsFact()) {
    return Status::InvalidArgument("expected a single ground atom: " +
                                   std::string(text));
  }
  const HeadAtom& head = parsed->rules()[0].head;
  GroundAtom atom;
  atom.predicate = head.predicate;
  for (const HeadArg& arg : head.args) {
    atom.args.push_back(arg.term().constant());
  }
  return atom;
}

Result<GroundAtom> GDatalog::LookupGroundAtom(std::string_view text) const {
  std::string rule_text = std::string(text);
  if (rule_text.empty() || rule_text.back() != '.') rule_text += ".";
  auto local_interner = std::make_shared<Interner>();
  auto parsed = ParseProgram(rule_text, local_interner);
  if (!parsed.ok()) return parsed.status();
  if (parsed->rules().size() != 1 || !parsed->rules()[0].IsFact()) {
    return Status::InvalidArgument("expected a single ground atom: " +
                                   std::string(text));
  }
  const Interner& names = *state_->program.interner();
  auto remap = [&](uint32_t local_id) -> Result<uint32_t> {
    const std::string& name = local_interner->Name(local_id);
    uint32_t id = names.Lookup(name);
    if (id == Interner::kNotFound) {
      return Status::NotFound("name never occurs in the program: " + name);
    }
    return id;
  };
  const HeadAtom& head = parsed->rules()[0].head;
  GroundAtom atom;
  GDLOG_ASSIGN_OR_RETURN(atom.predicate, remap(head.predicate));
  for (const HeadArg& arg : head.args) {
    Value value = arg.term().constant();
    if (value.kind() == Value::Kind::kSymbol) {
      GDLOG_ASSIGN_OR_RETURN(uint32_t id, remap(value.symbol_id()));
      value = Value::Symbol(id);
    }
    atom.args.push_back(value);
  }
  return atom;
}

}  // namespace gdlog
