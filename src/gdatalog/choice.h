#ifndef GDLOG_GDATALOG_CHOICE_H_
#define GDLOG_GDATALOG_CHOICE_H_

#include <map>
#include <optional>
#include <string>

#include "ground/fact_store.h"
#include "util/prob.h"

namespace gdlog {

/// A functionally consistent set Σ of ground AtR TGDs
/// (Active(p̄,q̄) → Result(p̄,q̄,o)): one sampled outcome per Active atom —
/// exactly the elements of [2^ground(Σ∃_Π)]= from §3. Ordered by the
/// Active atom so choice sets compare canonically.
class ChoiceSet {
 public:
  ChoiceSet() = default;

  /// Records the choice "active → outcome". Returns false iff the active
  /// atom already carries a *different* outcome (functional inconsistency);
  /// re-recording the same pair is a no-op returning true.
  bool Assign(const GroundAtom& active, const Value& outcome) {
    auto [it, inserted] = choices_.emplace(active, outcome);
    if (inserted) return true;
    return it->second == outcome;
  }

  void Unassign(const GroundAtom& active) { choices_.erase(active); }

  /// The chosen outcome for `active`, if any (the partial function AtR_Σ).
  std::optional<Value> Lookup(const GroundAtom& active) const {
    auto it = choices_.find(active);
    if (it == choices_.end()) return std::nullopt;
    return it->second;
  }

  bool Defined(const GroundAtom& active) const {
    return choices_.count(active) != 0;
  }

  size_t size() const { return choices_.size(); }
  bool empty() const { return choices_.empty(); }

  const std::map<GroundAtom, Value>& entries() const { return choices_; }

  /// The Result atom of a choice entry.
  static GroundAtom ResultAtom(uint32_t result_pred, const GroundAtom& active,
                               const Value& outcome) {
    GroundAtom result;
    result.predicate = result_pred;
    result.args = active.args;
    result.args.push_back(outcome);
    return result;
  }

  bool operator==(const ChoiceSet& other) const {
    return choices_ == other.choices_;
  }
  bool operator<(const ChoiceSet& other) const {
    return choices_ < other.choices_;
  }

  /// True iff every choice of this set also appears in `other`.
  bool SubsetOf(const ChoiceSet& other) const {
    for (const auto& [active, outcome] : choices_) {
      auto hit = other.Lookup(active);
      if (!hit || !(*hit == outcome)) return false;
    }
    return true;
  }

  std::string ToString(const Interner* interner = nullptr) const {
    std::string out;
    for (const auto& [active, outcome] : choices_) {
      out += active.ToString(interner) + " -> " +
             outcome.ToString(interner) + "\n";
    }
    return out;
  }

 private:
  std::map<GroundAtom, Value> choices_;
};

}  // namespace gdlog

#endif  // GDLOG_GDATALOG_CHOICE_H_
