#include "gdatalog/grounder.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "ground/matcher.h"

namespace gdlog {

namespace {

/// Instantiates a (plain-headed) Σ∄ rule under a complete binding.
GroundRule Instantiate(const Rule& rule, const Binding& binding) {
  GroundRule gr;
  gr.is_constraint = rule.is_constraint;
  if (!rule.is_constraint) {
    gr.head.predicate = rule.head.predicate;
    gr.head.args.reserve(rule.head.args.size());
    for (const HeadArg& arg : rule.head.args) {
      gr.head.args.push_back(ApplyTerm(arg.term(), binding));
    }
  }
  for (const Literal& lit : rule.body) {
    if (lit.negated) {
      gr.negative.push_back(ApplyAtom(lit.atom, binding));
    } else {
      gr.positive.push_back(ApplyAtom(lit.atom, binding));
    }
  }
  return gr;
}

bool NegativeBodyHits(const GroundRule& gr, const FactStore& heads) {
  for (const GroundAtom& a : gr.negative) {
    if (heads.Contains(a)) return true;
  }
  return false;
}

}  // namespace

Status RunGroundingFixpoint(const TranslatedProgram& translated,
                            const std::vector<const Rule*>& rules,
                            const ChoiceSet& choices, bool check_negative,
                            GroundRuleSet* out, FactStore* heads,
                            bool resume) {
  std::vector<GroundAtom> pending;

  // Inserts a fact into the matching instance; cascades Active atoms into
  // their chosen Result atoms (heads(Σ) of the choice set take part in
  // matching, Definition 3.4 uses Σ' = Σ∄ ∪ Σ).
  std::function<void(const GroundAtom&)> add_fact =
      [&](const GroundAtom& atom) {
        if (!heads->Insert(atom)) return;
        pending.push_back(atom);
        const DeltaSignature* sig =
            translated.SignatureByActive(atom.predicate);
        if (sig != nullptr) {
          auto outcome = choices.Lookup(atom);
          if (outcome) {
            add_fact(ChoiceSet::ResultAtom(sig->result_pred, atom, *outcome));
          }
        }
      };

  auto add_ground_rule = [&](GroundRule gr) {
    bool is_constraint = gr.is_constraint;
    GroundAtom head = gr.head;
    if (out->Add(std::move(gr)) && !is_constraint) add_fact(head);
  };

  // Catch up on Active atoms that entered `heads` before this call (e.g. in
  // an earlier stratum) whose choices were not yet cascaded.
  for (const DeltaSignature& sig : translated.signatures()) {
    std::vector<GroundAtom> to_cascade;
    for (const Tuple& row : heads->Rows(sig.active_pred)) {
      GroundAtom active{sig.active_pred, row};
      auto outcome = choices.Lookup(active);
      if (outcome) {
        GroundAtom result =
            ChoiceSet::ResultAtom(sig.result_pred, active, *outcome);
        if (!heads->Contains(result)) to_cascade.push_back(result);
      }
    }
    for (GroundAtom& r : to_cascade) add_fact(r);
  }

  // On a fresh run every fact visible at entry is "new" for this rule
  // set (this also covers the Result atoms cascaded above). On a resumed
  // run only the freshly cascaded Result atoms are new — everything else
  // has already been matched by the run that produced (out, heads).
  if (!resume) pending = heads->AllFacts();

  // Rules with an empty positive body fire unconditionally (modulo the
  // Perfect negative check); on resumed runs they already fired.
  for (const Rule* rule : resume ? std::vector<const Rule*>{} : rules) {
    bool has_positive = false;
    for (const Literal& lit : rule->body) {
      if (!lit.negated) {
        has_positive = true;
        break;
      }
    }
    if (has_positive) continue;
    Binding empty;
    GroundRule gr = Instantiate(*rule, empty);
    if (check_negative && NegativeBodyHits(gr, *heads)) continue;
    add_ground_rule(std::move(gr));
  }

  // Semi-naive saturation: each round matches rules with one positive atom
  // pinned to the newly derived facts.
  Matcher matcher(heads);
  while (!pending.empty()) {
    std::unordered_map<uint32_t, std::vector<Tuple>> batch;
    for (GroundAtom& atom : pending) {
      batch[atom.predicate].push_back(std::move(atom.args));
    }
    pending.clear();

    // Collect first, apply after: applying mutates `heads`, which the
    // matcher is iterating.
    std::vector<GroundRule> derived;
    for (const Rule* rule : rules) {
      std::vector<const Atom*> pos = rule->PositiveBody();
      for (size_t pivot = 0; pivot < pos.size(); ++pivot) {
        auto hit = batch.find(pos[pivot]->predicate);
        if (hit == batch.end()) continue;
        matcher.MatchWithPivot(pos, pivot, hit->second,
                               [&](const Binding& binding) {
                                 GroundRule gr = Instantiate(*rule, binding);
                                 if (check_negative &&
                                     NegativeBodyHits(gr, *heads)) {
                                   return true;
                                 }
                                 derived.push_back(std::move(gr));
                                 return true;
                               });
      }
    }
    for (GroundRule& gr : derived) add_ground_rule(std::move(gr));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// SimpleGrounder
// ---------------------------------------------------------------------------

Status SimpleGrounder::Ground(const ChoiceSet& choices,
                              GroundRuleSet* out) const {
  FactStore heads;
  return GroundWithState(choices, out, &heads);
}

Status SimpleGrounder::GroundWithState(const ChoiceSet& choices,
                                       GroundRuleSet* out,
                                       FactStore* heads) const {
  // Π[D]: the database enters as body-less ground rules (True → α).
  for (uint32_t pred : db_->Predicates()) {
    for (const Tuple& row : db_->Rows(pred)) {
      GroundRule fact;
      fact.head = GroundAtom{pred, row};
      out->Add(std::move(fact));
      heads->Insert(pred, row);
    }
  }
  std::vector<const Rule*> rules;
  rules.reserve(translated_->sigma().rules().size());
  for (const Rule& r : translated_->sigma().rules()) rules.push_back(&r);
  return RunGroundingFixpoint(*translated_, rules, choices,
                              /*check_negative=*/false, out, heads,
                              /*resume=*/false);
}

Status SimpleGrounder::Extend(const ChoiceSet& choices,
                              const GroundAtom& new_active, GroundRuleSet* out,
                              FactStore* heads) const {
  // Monotonicity of Simple^∞ (Definition 3.4): the grounding of Σ ∪ {c}
  // is the least fixpoint reached by resuming from the grounding of Σ with
  // c's Result atom as the only new fact. The cascade pre-pass inside the
  // fixpoint inserts that Result atom (new_active is already in heads and
  // now has a recorded choice).
  (void)new_active;
  std::vector<const Rule*> rules;
  rules.reserve(translated_->sigma().rules().size());
  for (const Rule& r : translated_->sigma().rules()) rules.push_back(&r);
  return RunGroundingFixpoint(*translated_, rules, choices,
                              /*check_negative=*/false, out, heads,
                              /*resume=*/true);
}

// ---------------------------------------------------------------------------
// PerfectGrounder
// ---------------------------------------------------------------------------

Result<std::unique_ptr<PerfectGrounder>> PerfectGrounder::Create(
    const Program& pi, const TranslatedProgram* translated,
    const FactStore* db) {
  DependencyGraph dg(pi);
  if (!dg.IsStratified()) {
    return Status::NotStratified(
        "perfect grounder requires stratified negation");
  }
  auto grounder =
      std::unique_ptr<PerfectGrounder>(new PerfectGrounder(translated, db));
  grounder->stratum_rules_.assign(dg.Components().size(), {});
  const auto& strata = dg.Strata();
  const std::vector<Rule>& sigma_rules = translated->sigma().rules();
  const std::vector<size_t>& origin = translated->origin();
  for (size_t i = 0; i < sigma_rules.size(); ++i) {
    // A Σ∄ rule belongs to the stratum of its originating Π-rule's head
    // predicate (Π|C_i keeps rules whose head is in C_i, §5). Constraints
    // have no head; they are grounded in a final pass once all strata are
    // complete (they derive nothing, so deferring them is sound).
    const Rule& original = pi.rules()[origin[i]];
    if (original.is_constraint) {
      grounder->constraint_rules_.push_back(&sigma_rules[i]);
      continue;
    }
    auto it = strata.find(original.head.predicate);
    if (it == strata.end()) {
      return Status::Internal("head predicate missing from dependency graph");
    }
    grounder->stratum_rules_[it->second].push_back(&sigma_rules[i]);
  }
  return grounder;
}

Status PerfectGrounder::Ground(const ChoiceSet& choices,
                               GroundRuleSet* out) const {
  FactStore heads;
  for (uint32_t pred : db_->Predicates()) {
    for (const Tuple& row : db_->Rows(pred)) {
      GroundRule fact;
      fact.head = GroundAtom{pred, row};
      out->Add(std::move(fact));
      heads.Insert(pred, row);
    }
  }

  for (const std::vector<const Rule*>& stratum : stratum_rules_) {
    // AtR_Σ ↪ Σ↑C_{i-1}: grounding stalls until every Active atom produced
    // by earlier strata has a recorded choice (Definition 5.1).
    for (const DeltaSignature& sig : translated_->signatures()) {
      for (const Tuple& row : heads.Rows(sig.active_pred)) {
        if (!choices.Defined(GroundAtom{sig.active_pred, row})) {
          return Status::OK();  // Σ↑C_i = Σ↑C_{i-1} for all later strata.
        }
      }
    }
    if (stratum.empty()) continue;
    GDLOG_RETURN_IF_ERROR(RunGroundingFixpoint(*translated_, stratum, choices,
                                               /*check_negative=*/true, out,
                                               &heads, /*resume=*/false));
  }
  if (!constraint_rules_.empty()) {
    GDLOG_RETURN_IF_ERROR(RunGroundingFixpoint(*translated_, constraint_rules_,
                                               choices,
                                               /*check_negative=*/true, out,
                                               &heads, /*resume=*/false));
  }
  return Status::OK();
}

std::vector<GroundAtom> FindTriggers(const TranslatedProgram& translated,
                                     const GroundRuleSet& grounding,
                                     const ChoiceSet& choices) {
  std::vector<GroundAtom> triggers;
  for (const DeltaSignature& sig : translated.signatures()) {
    for (const Tuple& row : grounding.heads().Rows(sig.active_pred)) {
      GroundAtom active{sig.active_pred, row};
      if (!choices.Defined(active)) triggers.push_back(std::move(active));
    }
  }
  std::sort(triggers.begin(), triggers.end());
  return triggers;
}

}  // namespace gdlog
