#include "gdatalog/grounder.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "obs/histogram.h"
#include "obs/profile.h"

namespace gdlog {

namespace {

/// Sorted unique positive-body predicates of a rule set (the delta
/// watermark domain, precomputed once per grounder).
std::vector<uint32_t> CollectBodyPreds(
    const std::vector<const CompiledRule*>& rules) {
  std::vector<uint32_t> preds;
  for (const CompiledRule* rule : rules) {
    for (const CompiledAtom& atom : rule->positive) {
      preds.push_back(atom.predicate);
    }
  }
  std::sort(preds.begin(), preds.end());
  preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
  return preds;
}

/// The database prefix of Π[D] as a grounding: one body-less rule per
/// fact, with the matching instance frozen (all column indices built) so
/// clones inherit the indexes copy-on-write.
std::shared_ptr<const GroundRuleSet> MakeDbBase(const FactStore& db) {
  GroundRuleSet base;
  for (uint32_t pred : db.Predicates()) {
    for (const Tuple& row : db.Rows(pred)) {
      GroundRule fact;
      fact.head = GroundAtom{pred, row};
      base.Add(std::move(fact));
    }
  }
  base.mutable_heads()->Freeze();
  return std::make_shared<const GroundRuleSet>(std::move(base));
}

/// The delta rows of `ranges` as body-less ground rules, in the same
/// (predicate-sorted, row-ordered) convention as MakeDbBase.
std::vector<GroundRule> DeltaFactRules(const FactStore& db,
                                       const DeltaRanges& ranges) {
  std::vector<GroundRule> out;
  out.reserve(ranges.rows_appended);
  for (const auto& [pred, range] : ranges.ranges) {
    const std::vector<Tuple>& rows = db.Rows(pred);
    for (uint32_t r = range.begin; r < range.end && r < rows.size(); ++r) {
      GroundRule fact;
      fact.head = GroundAtom{pred, rows[r]};
      out.push_back(std::move(fact));
    }
  }
  return out;
}

/// Compiles sigma rule `i` with its optimizer execution annotations: aux
/// heads (subjoin sharing's synthesized rules) and emit bodies (consumers
/// emit their pre-rewrite body so G(Σ) is unchanged).
CompiledRule CompileSigmaRule(const TranslatedProgram& translated, size_t i) {
  CompiledRule out = CompileRule(translated.sigma().rules()[i]);
  out.profile_index = i;
  if (i < translated.exec_info().size()) {
    const RuleExecInfo& info = translated.exec_info()[i];
    out.aux_head = info.aux_head;
    if (!info.emit_body.empty()) AttachEmitBody(&out, info.emit_body);
  }
  return out;
}

bool NegativeBodyHits(const GroundRule& gr, const FactStore& heads) {
  for (const GroundAtom& a : gr.negative) {
    if (heads.Contains(a)) return true;
  }
  return false;
}

/// The Perfect negative check straight off the frame: instantiates each
/// negative atom into a reusable scratch and stops at the first hit — no
/// GroundRule is built for the (common) rejected candidates.
bool NegativeBodyHits(const CompiledRule& rule, const BindingFrame& frame,
                      const FactStore& heads, GroundAtom* scratch) {
  for (const CompiledAtom& neg : rule.negative) {
    neg.InstantiateInto(frame, scratch);
    if (heads.Contains(*scratch)) return true;
  }
  return false;
}

}  // namespace

Status RunGroundingFixpoint(const TranslatedProgram& translated,
                            const std::vector<const CompiledRule*>& rules,
                            const std::vector<uint32_t>& body_preds,
                            const ChoiceSet& choices, bool check_negative,
                            GroundRuleSet* out, bool resume,
                            MatchStats* stats,
                            const std::unordered_map<uint32_t, uint32_t>*
                                seed_watermarks) {
  FactStore* heads = out->mutable_heads();

  // Semi-naive deltas as row ranges: the delta of predicate P for the
  // current round is rows [old_counts[P], Count(P)) — new facts only ever
  // append. Snapshot at the end of each round's matching phase, before
  // that round's derivations are applied. On a fresh run everything is
  // new (empty map = all-zero watermarks); on a resumed run everything
  // present at entry is old — unless the caller seeded explicit watermarks,
  // in which case rows above them (e.g. a just-applied database delta) are
  // the new facts this run starts from.
  std::unordered_map<uint32_t, uint32_t> old_counts;
  auto snapshot_old = [&] {
    for (uint32_t pred : body_preds) {
      old_counts[pred] = static_cast<uint32_t>(heads->Count(pred));
    }
  };
  if (seed_watermarks != nullptr) {
    old_counts = *seed_watermarks;
    resume = true;
  } else if (resume) {
    snapshot_old();
  }

  // Cascades an inserted Active atom into its chosen Result atom
  // (heads(Σ) of the choice set takes part in matching, Definition 3.4
  // uses Σ' = Σ∄ ∪ Σ).
  std::function<void(const GroundAtom&)> cascade =
      [&](const GroundAtom& atom) {
        const DeltaSignature* sig =
            translated.SignatureByActive(atom.predicate);
        if (sig == nullptr) return;
        auto outcome = choices.Lookup(atom);
        if (!outcome) return;
        GroundAtom result =
            ChoiceSet::ResultAtom(sig->result_pred, atom, *outcome);
        if (heads->Insert(result)) cascade(result);
      };

  auto add_ground_rule = [&](GroundRule gr) {
    bool new_head = false;
    const GroundRule* stored = out->AddAndGet(std::move(gr), &new_head);
    if (new_head) cascade(stored->head);
  };

  // Catch up on Active atoms that entered the instance before this call
  // (e.g. in an earlier stratum) whose choices were not yet cascaded.
  for (const DeltaSignature& sig : translated.signatures()) {
    std::vector<GroundAtom> to_cascade;
    for (const Tuple& row : heads->Rows(sig.active_pred)) {
      GroundAtom active{sig.active_pred, row};
      auto outcome = choices.Lookup(active);
      if (outcome) {
        GroundAtom result =
            ChoiceSet::ResultAtom(sig.result_pred, active, *outcome);
        if (!heads->Contains(result)) to_cascade.push_back(result);
      }
    }
    for (GroundAtom& r : to_cascade) {
      if (heads->Insert(r)) cascade(r);
    }
  }

  MatchStats local;
  BindingFrame empty_frame;

  // The per-rule profiler's sink for this thread, if the caller installed
  // one (ProcessNode does, per worker, when ChaseOptions::profile is on).
  // One thread-local read per fixpoint; with no sink the hot loop pays a
  // null check per (rule, pivot) pair and nothing else.
  ChaseProfile* const prof = ProfileScope::Current();

  // Rules with an empty positive body fire unconditionally (modulo the
  // Perfect negative check); on resumed runs they already fired.
  if (!resume) {
    for (const CompiledRule* rule : rules) {
      if (!rule->positive.empty()) continue;
      empty_frame.Reset(rule->num_slots);
      GroundRule gr = InstantiateRule(*rule, empty_frame);
      if (check_negative && NegativeBodyHits(gr, *heads)) continue;
      if (prof != nullptr && rule->profile_index != static_cast<size_t>(-1)) {
        RuleProfile& rp = prof->Rule(rule->profile_index);
        ++rp.calls;
        ++rp.derivations;
        rp.stratum = prof->current_stratum;
      }
      add_ground_rule(std::move(gr));
    }
  }

  // Semi-naive saturation: each round matches rules with one positive atom
  // pinned to its predicate's delta range — atoms before the pivot see
  // only pre-delta rows, so every body instance is enumerated exactly once
  // over the whole fixpoint — through join plans compiled per (rule,
  // pivot) and rebound as the instance grows between rounds.
  JoinPlanCache plans(heads);
  JoinExecutor exec;
  GroundAtom neg_scratch;
  std::vector<GroundRule> derived;
  // Synthesized __join heads are matching state only: they enter the
  // instance (so consumers and later rounds see them) but never become
  // ground rules.
  std::vector<GroundAtom> derived_aux;
  while (true) {
    bool any_delta = false;
    for (uint32_t pred : body_preds) {
      auto it = old_counts.find(pred);
      uint32_t old = it == old_counts.end() ? 0 : it->second;
      if (heads->Count(pred) > old) {
        any_delta = true;
        break;
      }
    }
    if (!any_delta) break;

    // Collect first, apply after: applying mutates the instance, which
    // the executor's bound plans are reading.
    derived.clear();
    derived_aux.clear();
    for (const CompiledRule* rule : rules) {
      for (size_t pivot = 0; pivot < rule->positive.size(); ++pivot) {
        uint32_t pred = rule->positive[pivot].predicate;
        auto it = old_counts.find(pred);
        size_t begin = it == old_counts.end() ? 0 : it->second;
        const std::vector<Tuple>& rows = heads->Rows(pred);
        if (begin >= rows.size()) continue;
        const bool profiled =
            prof != nullptr && rule->profile_index != static_cast<size_t>(-1);
        const uint64_t start_ns = profiled ? MonotonicNanos() : 0;
        const uint64_t bindings_before = local.bindings;
        const size_t derived_before = derived.size() + derived_aux.size();
        const JoinPlan& plan = plans.Get(*rule, pivot, &local);
        exec.ExecuteWithPivotRange(
            plan, rows, begin, rows.size(), &local,
            [&](const BindingFrame& frame) {
              if (rule->aux_head) {
                derived_aux.push_back(rule->head.Instantiate(frame));
                return true;
              }
              if (check_negative &&
                  NegativeBodyHits(*rule, frame, *heads, &neg_scratch)) {
                return true;
              }
              derived.push_back(InstantiateRule(*rule, frame));
              return true;
            },
            &old_counts);
        if (profiled) {
          RuleProfile& rp = prof->Rule(rule->profile_index);
          ++rp.calls;
          rp.bindings += local.bindings - bindings_before;
          rp.derivations += derived.size() + derived_aux.size() -
                            derived_before;
          rp.time_ns += MonotonicNanos() - start_ns;
          rp.stratum = prof->current_stratum;
        }
      }
    }
    snapshot_old();
    for (GroundRule& gr : derived) add_ground_rule(std::move(gr));
    for (GroundAtom& atom : derived_aux) heads->Insert(atom);
  }
  if (stats != nullptr) stats->Add(local);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// SimpleGrounder
// ---------------------------------------------------------------------------

void SimpleGrounder::CompileRules() {
  const std::vector<Rule>& rules = translated_->sigma().rules();
  compiled_.reserve(rules.size());
  for (size_t i = 0; i < rules.size(); ++i) {
    compiled_.push_back(CompileSigmaRule(*translated_, i));
  }
  all_rules_.reserve(compiled_.size());
  for (const CompiledRule& c : compiled_) all_rules_.push_back(&c);
  body_preds_ = CollectBodyPreds(all_rules_);
}

SimpleGrounder::SimpleGrounder(const TranslatedProgram* translated,
                               const FactStore* db)
    : translated_(translated), db_(db) {
  CompileRules();
  db_base_ = MakeDbBase(*db_);
}

SimpleGrounder::SimpleGrounder(const TranslatedProgram* translated,
                               const FactStore* db, const SimpleGrounder& base,
                               const DeltaRanges& ranges, bool resume_root,
                               bool* root_resumed, uint64_t* rules_refired)
    : translated_(translated), db_(db) {
  CompileRules();
  // COW-extension of Π[D]: share the base's database prefix, stack the
  // delta rows as a tail — no per-fact rebuild proportional to |D|.
  db_base_ = base.db_base_;
  db_tail_ = base.db_tail_;
  std::vector<GroundRule> delta_facts = DeltaFactRules(*db_, ranges);
  db_tail_.insert(db_tail_.end(), delta_facts.begin(), delta_facts.end());
  if (root_resumed != nullptr) *root_resumed = false;
  if (rules_refired != nullptr) *rules_refired = 0;
  if (!resume_root) return;
  std::shared_ptr<const GroundRuleSet> base_root;
  {
    std::lock_guard<std::mutex> lock(base.root_mu_);
    base_root = base.root_;
  }
  // Base never grounded anything yet: nothing to resume, the root will be
  // built lazily from scratch on first use.
  if (base_root == nullptr) return;
  // Semi-naive re-grounding from the delta ranges only: watermark every
  // body predicate at the saturated base root's counts, add the delta
  // facts above the watermarks, resume the fixpoint. Simple^∞ is monotone
  // in the database, so the resumed fixpoint equals the from-scratch one.
  GroundRuleSet root = base_root->Clone();
  std::unordered_map<uint32_t, uint32_t> watermarks;
  for (uint32_t pred : body_preds_) {
    watermarks[pred] = static_cast<uint32_t>(root.heads().Count(pred));
  }
  for (const GroundRule& fact : delta_facts) root.Add(fact);
  size_t before = root.size();
  ChoiceSet no_choices;
  Status status = RunGroundingFixpoint(
      *translated_, all_rules_, body_preds_, no_choices,
      /*check_negative=*/false, &root, /*resume=*/true, /*stats=*/nullptr,
      &watermarks);
  if (!status.ok()) return;  // Fall back to the lazy from-scratch root.
  if (rules_refired != nullptr) {
    *rules_refired = static_cast<uint64_t>(root.size() - before);
  }
  if (root_resumed != nullptr) *root_resumed = true;
  root.mutable_heads()->Freeze();
  root_ = std::make_shared<const GroundRuleSet>(std::move(root));
}

Result<std::shared_ptr<const GroundRuleSet>> SimpleGrounder::RootGrounding(
    MatchStats* stats) const {
  std::lock_guard<std::mutex> lock(root_mu_);
  if (root_ != nullptr) return root_;
  GroundRuleSet root = db_base_->Clone();
  for (const GroundRule& fact : db_tail_) root.Add(fact);
  ChoiceSet no_choices;
  GDLOG_RETURN_IF_ERROR(RunGroundingFixpoint(
      *translated_, all_rules_, body_preds_, no_choices,
      /*check_negative=*/false, &root, /*resume=*/false, stats));
  root.mutable_heads()->Freeze();
  root_ = std::make_shared<const GroundRuleSet>(std::move(root));
  return root_;
}

Status SimpleGrounder::Ground(const ChoiceSet& choices, GroundRuleSet* out,
                              MatchStats* stats) const {
  // Π[D]: the database (and everything choice-independently derivable from
  // it) enters as the shared saturated root G(∅); the fixpoint resumes from
  // its clone with `choices`' Result atoms as the only new facts, which by
  // monotonicity of Simple^∞ yields exactly G(Σ).
  GDLOG_ASSIGN_OR_RETURN(std::shared_ptr<const GroundRuleSet> root,
                         RootGrounding(stats));
  *out = root->Clone();
  return RunGroundingFixpoint(*translated_, all_rules_, body_preds_, choices,
                              /*check_negative=*/false, out,
                              /*resume=*/true, stats);
}

Status SimpleGrounder::Extend(const ChoiceSet& choices,
                              const GroundAtom& new_active,
                              GroundRuleSet* out) const {
  // Monotonicity of Simple^∞ (Definition 3.4): the grounding of Σ ∪ {c}
  // is the least fixpoint reached by resuming from the grounding of Σ with
  // c's Result atom as the only new fact. The cascade pre-pass inside the
  // fixpoint inserts that Result atom (new_active is already in the
  // instance and now has a recorded choice).
  (void)new_active;
  return RunGroundingFixpoint(*translated_, all_rules_, body_preds_, choices,
                              /*check_negative=*/false, out,
                              /*resume=*/true);
}

// ---------------------------------------------------------------------------
// PerfectGrounder
// ---------------------------------------------------------------------------

Result<std::unique_ptr<PerfectGrounder>> PerfectGrounder::Build(
    const Program& pi, const TranslatedProgram* translated,
    const FactStore* db) {
  DependencyGraph dg(pi);
  if (!dg.IsStratified()) {
    return Status::NotStratified(
        "perfect grounder requires stratified negation");
  }
  auto grounder =
      std::unique_ptr<PerfectGrounder>(new PerfectGrounder(translated, db));
  grounder->stratum_rules_.assign(dg.Components().size(), {});
  const auto& strata = dg.Strata();
  const std::vector<Rule>& sigma_rules = translated->sigma().rules();
  const std::vector<size_t>& origin = translated->origin();
  grounder->compiled_.reserve(sigma_rules.size());
  for (size_t i = 0; i < sigma_rules.size(); ++i) {
    grounder->compiled_.push_back(CompileSigmaRule(*translated, i));
  }
  for (size_t i = 0; i < sigma_rules.size(); ++i) {
    // A Σ∄ rule belongs to the stratum of its originating Π-rule's head
    // predicate (Π|C_i keeps rules whose head is in C_i, §5). Constraints
    // have no head; they are grounded in a final pass once all strata are
    // complete (they derive nothing, so deferring them is sound).
    const Rule& original = pi.rules()[origin[i]];
    if (original.is_constraint) {
      grounder->constraint_rules_.push_back(&grounder->compiled_[i]);
      continue;
    }
    auto it = strata.find(original.head.predicate);
    if (it == strata.end()) {
      return Status::Internal("head predicate missing from dependency graph");
    }
    grounder->stratum_rules_[it->second].push_back(&grounder->compiled_[i]);
  }
  grounder->stratum_body_preds_.reserve(grounder->stratum_rules_.size());
  for (const auto& stratum : grounder->stratum_rules_) {
    grounder->stratum_body_preds_.push_back(CollectBodyPreds(stratum));
  }
  grounder->constraint_body_preds_ =
      CollectBodyPreds(grounder->constraint_rules_);
  return grounder;
}

Result<std::unique_ptr<PerfectGrounder>> PerfectGrounder::Create(
    const Program& pi, const TranslatedProgram* translated,
    const FactStore* db) {
  GDLOG_ASSIGN_OR_RETURN(std::unique_ptr<PerfectGrounder> grounder,
                         Build(pi, translated, db));
  grounder->db_base_ = MakeDbBase(*db);
  return grounder;
}

Result<std::unique_ptr<PerfectGrounder>> PerfectGrounder::CreateDelta(
    const Program& pi, const TranslatedProgram* translated,
    const FactStore* db, const PerfectGrounder& base,
    const DeltaRanges& ranges) {
  GDLOG_ASSIGN_OR_RETURN(std::unique_ptr<PerfectGrounder> grounder,
                         Build(pi, translated, db));
  grounder->db_base_ = base.db_base_;
  grounder->db_tail_ = base.db_tail_;
  std::vector<GroundRule> delta_facts = DeltaFactRules(*db, ranges);
  grounder->db_tail_.insert(grounder->db_tail_.end(), delta_facts.begin(),
                            delta_facts.end());
  return grounder;
}

Status PerfectGrounder::Ground(const ChoiceSet& choices, GroundRuleSet* out,
                               MatchStats* stats) const {
  *out = db_base_->Clone();
  for (const GroundRule& fact : db_tail_) out->Add(fact);

  // Stratum attribution for the per-rule profiler: the fixpoint stamps
  // each rule with the sink's current_stratum. Rule→stratum is a static
  // property of Π, so re-stamping across calls is idempotent.
  ChaseProfile* const prof = ProfileScope::Current();

  for (size_t si = 0; si < stratum_rules_.size(); ++si) {
    const std::vector<const CompiledRule*>& stratum = stratum_rules_[si];
    // AtR_Σ ↪ Σ↑C_{i-1}: grounding stalls until every Active atom produced
    // by earlier strata has a recorded choice (Definition 5.1).
    for (const DeltaSignature& sig : translated_->signatures()) {
      for (const Tuple& row : out->heads().Rows(sig.active_pred)) {
        if (!choices.Defined(GroundAtom{sig.active_pred, row})) {
          if (prof != nullptr) prof->current_stratum = -1;
          return Status::OK();  // Σ↑C_i = Σ↑C_{i-1} for all later strata.
        }
      }
    }
    if (stratum.empty()) continue;
    if (prof != nullptr) prof->current_stratum = static_cast<int>(si);
    Status stratum_status = RunGroundingFixpoint(*translated_, stratum,
                                                 stratum_body_preds_[si],
                                                 choices,
                                                 /*check_negative=*/true, out,
                                                 /*resume=*/false, stats);
    if (prof != nullptr) prof->current_stratum = -1;
    GDLOG_RETURN_IF_ERROR(stratum_status);
  }
  if (!constraint_rules_.empty()) {
    GDLOG_RETURN_IF_ERROR(RunGroundingFixpoint(*translated_, constraint_rules_,
                                               constraint_body_preds_,
                                               choices,
                                               /*check_negative=*/true, out,
                                               /*resume=*/false, stats));
  }
  return Status::OK();
}

std::vector<GroundAtom> FindTriggers(const TranslatedProgram& translated,
                                     const GroundRuleSet& grounding,
                                     const ChoiceSet& choices) {
  std::vector<GroundAtom> triggers;
  for (const DeltaSignature& sig : translated.signatures()) {
    for (const Tuple& row : grounding.heads().Rows(sig.active_pred)) {
      GroundAtom active{sig.active_pred, row};
      if (!choices.Defined(active)) triggers.push_back(std::move(active));
    }
  }
  std::sort(triggers.begin(), triggers.end());
  return triggers;
}

}  // namespace gdlog
