#ifndef GDLOG_GDATALOG_BCKOV_H_
#define GDLOG_GDATALOG_BCKOV_H_

#include <memory>
#include <vector>

#include "gdatalog/translation.h"
#include "ground/fact_store.h"
#include "util/prob.h"

namespace gdlog {

/// Reference implementation of the Bárány–ten Cate–Kimelfeld–Olteanu–Vagena
/// (BCKOV) semantics for *positive* GDatalog[Δ] programs (Appendix C of the
/// paper): possible outcomes are minimal models of the TGD program
/// Σ̃_Π (which has Result predicates but no Active indirection), with
/// Pr(I) the product of δ⟨p̄⟩(o) over the Result atoms of I.
///
/// This engine chases *instances* (sets of facts), not ground programs —
/// deliberately independent machinery from ChaseEngine, so Theorem C.4
/// (isomorphism of the two probability spaces for finitely-grounding
/// positive programs) can be validated mechanically (experiment E6).
class BckovEngine {
 public:
  /// Fails unless `pi` is positive and constraint-free. Result predicates
  /// are named as in TranslateToTgd so outcomes align with the stable
  /// models of the main engine "modulo active".
  static Result<BckovEngine> Create(const Program& pi, const FactStore* db,
                                    const DistributionRegistry* registry);

  /// A BCKOV possible outcome: the minimal model (sorted, including Result
  /// atoms) and its probability.
  struct Outcome {
    std::vector<GroundAtom> instance;
    Prob prob;
  };

  /// Enumerates all BCKOV possible outcomes by exhaustive chase over
  /// instances. Budgets mirror ChaseOptions; truncation marks
  /// `complete = false`.
  struct Space {
    std::vector<Outcome> outcomes;
    Prob finite_mass = Prob::Zero();
    bool complete = true;
  };
  Result<Space> Explore(size_t max_outcomes, size_t max_depth,
                        size_t support_limit) const;

  const TranslatedProgram& translated() const { return translated_; }

 private:
  BckovEngine() = default;

  struct Trigger;
  Status Dfs(Space* space, FactStore& instance, Prob prob, size_t depth,
             size_t max_outcomes, size_t max_depth,
             size_t support_limit) const;
  void Saturate(FactStore* instance) const;
  std::vector<Trigger> FindTriggers(const FactStore& instance) const;

  Program pi_;
  const FactStore* db_ = nullptr;
  TranslatedProgram translated_;
};

}  // namespace gdlog

#endif  // GDLOG_GDATALOG_BCKOV_H_
