#include "gdatalog/sampler.h"

#include <algorithm>
#include <cmath>

namespace gdlog {

Result<MonteCarloEstimator::Estimate> MonteCarloEstimator::EstimateStatistic(
    size_t n, uint64_t seed,
    const std::function<double(const ChaseEngine::PathSample&)>& f) const {
  Rng rng(seed);
  Estimate est;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (size_t i = 0; i < n; ++i) {
    GDLOG_ASSIGN_OR_RETURN(ChaseEngine::PathSample sample,
                           engine_->SamplePath(&rng, options_));
    double value = 0.0;
    if (sample.truncated) {
      ++est.truncated;
    } else {
      ++est.samples;
      value = f(sample);
    }
    sum += value;
    sum_sq += value * value;
  }
  if (n > 0) {
    est.mean = sum / static_cast<double>(n);
    if (n > 1) {
      double var =
          (sum_sq - sum * sum / static_cast<double>(n)) /
          static_cast<double>(n - 1);
      est.std_error = std::sqrt(std::max(0.0, var) / static_cast<double>(n));
    }
  }
  return est;
}

Result<MonteCarloEstimator::Estimate>
MonteCarloEstimator::EstimateProbConsistent(size_t n, uint64_t seed) const {
  return EstimateStatistic(n, seed, [](const ChaseEngine::PathSample& s) {
    return s.models.empty() ? 0.0 : 1.0;
  });
}

Result<MonteCarloEstimator::Estimate>
MonteCarloEstimator::EstimateProbInconsistent(size_t n, uint64_t seed) const {
  return EstimateStatistic(n, seed, [](const ChaseEngine::PathSample& s) {
    return s.models.empty() ? 1.0 : 0.0;
  });
}

Result<MonteCarloEstimator::Estimate> MonteCarloEstimator::EstimateMarginalUpper(
    size_t n, uint64_t seed, const GroundAtom& atom) const {
  return EstimateStatistic(n, seed, [&](const ChaseEngine::PathSample& s) {
    for (const StableModel& model : s.models) {
      if (std::binary_search(model.begin(), model.end(), atom)) return 1.0;
    }
    return 0.0;
  });
}

Result<MonteCarloEstimator::Estimate> MonteCarloEstimator::EstimateMarginalLower(
    size_t n, uint64_t seed, const GroundAtom& atom) const {
  return EstimateStatistic(n, seed, [&](const ChaseEngine::PathSample& s) {
    if (s.models.empty()) return 0.0;
    for (const StableModel& model : s.models) {
      if (!std::binary_search(model.begin(), model.end(), atom)) return 0.0;
    }
    return 1.0;
  });
}

}  // namespace gdlog
