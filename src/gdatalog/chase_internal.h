#ifndef GDLOG_GDATALOG_CHASE_INTERNAL_H_
#define GDLOG_GDATALOG_CHASE_INTERNAL_H_

// Definitions of ChaseEngine's private frontier types, shared by the
// translation units that implement the engine (chase.cc) and the shard
// planner/runner (shard.cc). Not part of the public API.

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "gdatalog/chase.h"
#include "gdatalog/shard.h"
#include "obs/profile.h"

namespace gdlog {

/// One chase node awaiting expansion. The parent's grounding fixpoint
/// state is shared read-only (never mutated after the parent finishes);
/// each child clones it and extends the clone. The grounding's heads()
/// carries the whole matching instance, so no separate fact store rides
/// along.
struct ChaseEngine::WorkItem {
  ChoiceSet choices;
  Prob path_prob = Prob::One();
  size_t depth = 0;
  std::shared_ptr<const GroundRuleSet> parent_grounding;  ///< null at root
  GroundAtom new_active;  ///< the choice added vs. the parent; valid iff
                          ///< parent_grounding != nullptr
};

struct ChaseEngine::ExploreState {
  const ChaseOptions* options = nullptr;
  bool incremental = false;

  /// Plan mode (shard.cc): when set, ProcessNode records frontier nodes —
  /// nodes whose depth reached `plan_prefix_depth`, and leaves above it —
  /// into `plan_tasks` instead of expanding / emitting them. Planning is
  /// always serial, so these need no synchronization.
  std::vector<ShardTask>* plan_tasks = nullptr;
  size_t plan_prefix_depth = 0;
  /// How many tasks were recorded by the depth cut (as opposed to being
  /// leaves): 0 means the whole tree above the cut was enumerated and a
  /// deeper prefix cannot yield a finer plan.
  size_t plan_cut_tasks = 0;

  /// Leaves enumerated so far (monotone; fetch_add reserves a slot, so at
  /// most max_outcomes outcomes are ever recorded).
  std::atomic<size_t> outcome_count{0};
  std::atomic<bool> budget_hit{false};
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  Status first_error = Status::OK();

  /// Per-worker accumulators in the pre-merge representation; merged
  /// deterministically after the frontier drains (no locking on the hot
  /// path). The budget_hit member of each partial stays false here — the
  /// global flag above is folded in when the partials are collected.
  std::vector<PartialSpace> partials;

  /// Per-worker chase profiles, parallel to `partials`. Empty unless
  /// options->profile: ProcessNode checks size() to decide whether to
  /// install a profile sink, so the disabled path records nothing.
  std::vector<ChaseProfile> profiles;

  void RecordError(const Status& status) {
    std::lock_guard<std::mutex> lock(error_mu);
    if (first_error.ok()) first_error = status;
    failed.store(true, std::memory_order_release);
  }

  /// Moves the per-worker partials out, folding the global budget flag
  /// into the first one (merge ORs the flags, so the position is moot).
  std::vector<PartialSpace> TakePartials() {
    std::vector<PartialSpace> out = std::move(partials);
    partials.clear();
    if (!out.empty()) {
      out.front().budget_hit = budget_hit.load(std::memory_order_relaxed);
    }
    return out;
  }
};

}  // namespace gdlog

#endif  // GDLOG_GDATALOG_CHASE_INTERNAL_H_
