#include "gdatalog/translation.h"

namespace gdlog {

const DeltaSignature* TranslatedProgram::SignatureByActive(
    uint32_t pred) const {
  auto it = by_active_.find(pred);
  if (it == by_active_.end()) return nullptr;
  return &signatures_[it->second];
}

const DeltaSignature* TranslatedProgram::SignatureByResult(
    uint32_t pred) const {
  auto it = by_result_.find(pred);
  if (it == by_result_.end()) return nullptr;
  return &signatures_[it->second];
}

void TranslatedProgram::ReplaceRules(std::vector<Rule> rules,
                                     std::vector<size_t> origin,
                                     std::vector<RuleExecInfo> exec_info) {
  Program replacement(sigma_.shared_interner());
  for (Rule& rule : rules) replacement.AddRule(std::move(rule));
  sigma_ = std::move(replacement);
  origin_ = std::move(origin);
  exec_info_ = std::move(exec_info);
}

TranslatedProgram TranslatedProgram::CloneWith(
    std::shared_ptr<Interner> interner) const {
  TranslatedProgram copy;
  copy.sigma_ = sigma_.CloneWith(std::move(interner));
  copy.origin_ = origin_;
  copy.exec_info_ = exec_info_;
  copy.signatures_ = signatures_;
  copy.by_active_ = by_active_;
  copy.by_result_ = by_result_;
  return copy;
}

Result<TranslatedProgram> TranslateToTgd(const Program& pi,
                                         const DistributionRegistry& registry) {
  TranslatedProgram out;
  out.sigma_ = Program(pi.shared_interner());
  Interner* interner = out.sigma_.interner();

  // Keyed by (dist_id, param_count, event_count).
  std::map<std::tuple<uint32_t, size_t, size_t>, size_t> sig_index;

  auto get_signature =
      [&](const DeltaTerm& dt) -> Result<const DeltaSignature*> {
    const std::string& dist_name = interner->Name(dt.dist_id);
    const Distribution* dist = registry.Lookup(dist_name);
    if (dist == nullptr) {
      return Status::NotFound("unknown distribution '" + dist_name + "'");
    }
    if (!dist->AcceptsDim(dt.params.size())) {
      return Status::InvalidArgument(
          "distribution '" + dist_name + "' rejects parameter dimension " +
          std::to_string(dt.params.size()));
    }
    auto key = std::make_tuple(dt.dist_id, dt.params.size(), dt.events.size());
    auto it = sig_index.find(key);
    if (it == sig_index.end()) {
      DeltaSignature sig;
      sig.dist_id = dt.dist_id;
      sig.dist = dist;
      sig.param_count = dt.params.size();
      sig.event_count = dt.events.size();
      std::string suffix = dist_name + "_" + std::to_string(dt.params.size()) +
                           "_" + std::to_string(dt.events.size());
      sig.active_pred = interner->Intern("__active_" + suffix);
      sig.result_pred = interner->Intern("__result_" + suffix);
      size_t idx = out.signatures_.size();
      out.signatures_.push_back(sig);
      out.by_active_.emplace(sig.active_pred, idx);
      out.by_result_.emplace(sig.result_pred, idx);
      it = sig_index.emplace(key, idx).first;
    }
    return &out.signatures_[it->second];
  };

  // Fresh existential variables y_1, y_2, ... for Result positions. Using
  // reserved names keeps them distinct from user variables.
  size_t fresh_counter = 0;
  auto fresh_var = [&]() {
    return Term::Variable(
        interner->Intern("__y" + std::to_string(fresh_counter++)));
  };

  for (size_t ri = 0; ri < pi.rules().size(); ++ri) {
    const Rule& rule = pi.rules()[ri];
    if (rule.is_constraint) {
      // Constraints carry no head (and hence no Δ-terms); they pass through
      // verbatim. (The paper treats ⊥ as sugar for the Fail/Aux encoding —
      // Program::DesugarConstraints materializes that encoding; keeping
      // constraints native is semantically equivalent and preserves
      // stratification.)
      out.sigma_.AddRule(rule);
      out.origin_.push_back(ri);
      continue;
    }
    if (rule.head.IsPlain()) {
      out.sigma_.AddRule(rule);
      out.origin_.push_back(ri);
      continue;
    }

    // One Active-head rule per Δ-term, plus the Result-joined head rule.
    Rule head_rule;
    head_rule.body = rule.body;
    head_rule.head.predicate = rule.head.predicate;

    for (const HeadArg& arg : rule.head.args) {
      if (!arg.is_delta()) {
        head_rule.head.args.push_back(arg);
        continue;
      }
      const DeltaTerm& dt = arg.delta();
      GDLOG_ASSIGN_OR_RETURN(const DeltaSignature* sig, get_signature(dt));

      // body → Active(p̄, q̄)
      Rule active_rule;
      active_rule.body = rule.body;
      active_rule.head.predicate = sig->active_pred;
      for (const Term& t : dt.params) active_rule.head.args.push_back(HeadArg(t));
      for (const Term& t : dt.events) active_rule.head.args.push_back(HeadArg(t));
      out.sigma_.AddRule(std::move(active_rule));
      out.origin_.push_back(ri);

      // Result(p̄, q̄, y_j) joins into the head rule's body.
      Term y = fresh_var();
      Atom result_atom;
      result_atom.predicate = sig->result_pred;
      for (const Term& t : dt.params) result_atom.args.push_back(t);
      for (const Term& t : dt.events) result_atom.args.push_back(t);
      result_atom.args.push_back(y);
      head_rule.body.insert(head_rule.body.begin(),
                            Literal{std::move(result_atom), /*negated=*/false});
      head_rule.head.args.push_back(HeadArg(y));
    }

    out.sigma_.AddRule(std::move(head_rule));
    out.origin_.push_back(ri);
  }

  GDLOG_RETURN_IF_ERROR(out.sigma_.Validate());
  return out;
}

}  // namespace gdlog
