#include "gdatalog/outcome.h"

#include <algorithm>
#include <iterator>

namespace gdlog {

std::map<StableModelSet, Prob> OutcomeSpace::Events() const {
  std::map<StableModelSet, Prob> events;
  for (const PossibleOutcome& outcome : outcomes) {
    auto [it, inserted] = events.emplace(outcome.models, outcome.prob);
    if (!inserted) it->second = it->second + outcome.prob;
  }
  return events;
}

Prob OutcomeSpace::ProbConsistent() const {
  Prob mass = Prob::Zero();
  for (const PossibleOutcome& outcome : outcomes) {
    if (!outcome.models.empty()) mass = mass + outcome.prob;
  }
  return mass;
}

Prob OutcomeSpace::ProbInconsistent() const {
  Prob mass = Prob::Zero();
  for (const PossibleOutcome& outcome : outcomes) {
    if (outcome.models.empty()) mass = mass + outcome.prob;
  }
  return mass;
}

OutcomeSpace::Bounds OutcomeSpace::Marginal(const GroundAtom& atom) const {
  Bounds bounds;
  for (const PossibleOutcome& outcome : outcomes) {
    if (outcome.models.empty()) continue;
    bool in_all = true;
    bool in_some = false;
    for (const StableModel& model : outcome.models) {
      bool contains =
          std::binary_search(model.begin(), model.end(), atom);
      in_all = in_all && contains;
      in_some = in_some || contains;
    }
    if (in_all) bounds.lower = bounds.lower + outcome.prob;
    if (in_some) bounds.upper = bounds.upper + outcome.prob;
  }
  return bounds;
}

std::optional<OutcomeSpace::Bounds> OutcomeSpace::MarginalGivenConsistent(
    const GroundAtom& atom) const {
  Prob consistent = ProbConsistent();
  if (!(consistent.value() > 0.0)) return std::nullopt;
  Bounds joint = Marginal(atom);
  Bounds conditioned;
  // Exact division when both sides are exact rationals.
  const Rational& denom = consistent.rational();
  auto divide = [&](const Prob& numer) {
    if (numer.exact() && denom.exact() && denom.numerator() != 0) {
      return Prob(numer.rational() *
                  Rational(denom.denominator(), denom.numerator()));
    }
    return Prob(Rational::FromDecimal(numer.value() / consistent.value()));
  };
  conditioned.lower = divide(joint.lower);
  conditioned.upper = divide(joint.upper);
  return conditioned;
}

StableModel OutcomeSpace::StripAuxiliary(const StableModel& model,
                                         const TranslatedProgram& translated) {
  StableModel out;
  out.reserve(model.size());
  for (const GroundAtom& atom : model) {
    if (translated.IsActivePredicate(atom.predicate) ||
        translated.IsResultPredicate(atom.predicate)) {
      continue;
    }
    out.push_back(atom);
  }
  return out;
}

OutcomeSpace OutcomeSpace::WithAddedFacts(
    const std::vector<GroundAtom>& facts) const {
  OutcomeSpace out = *this;
  if (facts.empty()) return out;
  std::vector<GroundAtom> sorted = facts;
  std::sort(sorted.begin(), sorted.end());
  for (PossibleOutcome& outcome : out.outcomes) {
    StableModelSet patched;
    for (const StableModel& model : outcome.models) {
      StableModel merged;
      merged.reserve(model.size() + sorted.size());
      std::merge(model.begin(), model.end(), sorted.begin(), sorted.end(),
                 std::back_inserter(merged));
      merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
      patched.insert(std::move(merged));
    }
    outcome.models = std::move(patched);
  }
  return out;
}

}  // namespace gdlog
