#include "gdatalog/bckov.h"

#include <algorithm>
#include <set>

#include "ground/matcher.h"

namespace gdlog {

struct BckovEngine::Trigger {
  const DeltaSignature* sig = nullptr;
  Tuple prefix;  // (p̄, q̄)

  bool operator<(const Trigger& other) const {
    if (sig->result_pred != other.sig->result_pred) {
      return sig->result_pred < other.sig->result_pred;
    }
    GroundAtom a{sig->result_pred, prefix};
    GroundAtom b{other.sig->result_pred, other.prefix};
    return a < b;
  }
  bool operator==(const Trigger& other) const {
    return sig->result_pred == other.sig->result_pred &&
           prefix == other.prefix;
  }
};

Result<BckovEngine> BckovEngine::Create(const Program& pi,
                                        const FactStore* db,
                                        const DistributionRegistry* registry) {
  if (!pi.IsPositive()) {
    return Status::InvalidArgument(
        "BCKOV semantics is defined for positive programs only");
  }
  for (const Rule& rule : pi.rules()) {
    if (rule.is_constraint) {
      return Status::InvalidArgument(
          "BCKOV semantics does not support constraints");
    }
  }
  BckovEngine engine;
  engine.pi_ = pi;  // copy (shares the interner)
  engine.db_ = db;
  GDLOG_ASSIGN_OR_RETURN(engine.translated_, TranslateToTgd(pi, *registry));
  return engine;
}

void BckovEngine::Saturate(FactStore* instance) const {
  // Least fixpoint of the non-Active rules of Σ̃ over the instance. The
  // Active-head rules exist only to detect triggers; BCKOV's translation
  // has no Active layer, so they are skipped here.
  Matcher matcher(instance);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& rule : translated_.sigma().rules()) {
      if (translated_.IsActivePredicate(rule.head.predicate)) continue;
      std::vector<const Atom*> body = rule.PositiveBody();
      std::vector<GroundAtom> derived;
      matcher.Match(body, [&](const Binding& binding) {
        GroundAtom head;
        head.predicate = rule.head.predicate;
        head.args.reserve(rule.head.args.size());
        for (const HeadArg& arg : rule.head.args) {
          head.args.push_back(ApplyTerm(arg.term(), binding));
        }
        if (!instance->Contains(head)) derived.push_back(std::move(head));
        return true;
      });
      for (GroundAtom& atom : derived) {
        if (instance->Insert(atom)) changed = true;
      }
    }
  }
}

std::vector<BckovEngine::Trigger> BckovEngine::FindTriggers(
    const FactStore& instance) const {
  // Resolved prefixes: Result atoms present, minus their outcome column.
  std::set<std::pair<uint32_t, Tuple>> resolved;
  for (const DeltaSignature& sig : translated_.signatures()) {
    for (const Tuple& row : instance.Rows(sig.result_pred)) {
      Tuple prefix(row.begin(), row.end() - 1);
      resolved.emplace(sig.result_pred, std::move(prefix));
    }
  }

  Matcher matcher(&instance);
  std::vector<Trigger> triggers;
  for (const Rule& rule : translated_.sigma().rules()) {
    const DeltaSignature* sig =
        translated_.SignatureByActive(rule.head.predicate);
    if (sig == nullptr) continue;
    std::vector<const Atom*> body = rule.PositiveBody();
    matcher.Match(body, [&](const Binding& binding) {
      Tuple prefix;
      prefix.reserve(rule.head.args.size());
      for (const HeadArg& arg : rule.head.args) {
        prefix.push_back(ApplyTerm(arg.term(), binding));
      }
      if (!resolved.count({sig->result_pred, prefix})) {
        triggers.push_back(Trigger{sig, std::move(prefix)});
      }
      return true;
    });
  }
  std::sort(triggers.begin(), triggers.end());
  triggers.erase(std::unique(triggers.begin(), triggers.end()),
                 triggers.end());
  return triggers;
}

Status BckovEngine::Dfs(Space* space, FactStore& instance, Prob prob,
                        size_t depth, size_t max_outcomes, size_t max_depth,
                        size_t support_limit) const {
  if (max_outcomes != 0 && space->outcomes.size() >= max_outcomes) {
    space->complete = false;
    return Status::OK();
  }
  Saturate(&instance);
  std::vector<Trigger> triggers = FindTriggers(instance);
  if (triggers.empty()) {
    Outcome outcome;
    outcome.instance = instance.AllFacts();
    std::sort(outcome.instance.begin(), outcome.instance.end());
    outcome.prob = prob;
    space->finite_mass = space->finite_mass + prob;
    space->outcomes.push_back(std::move(outcome));
    return Status::OK();
  }
  if (depth >= max_depth) {
    space->complete = false;
    return Status::OK();
  }

  const Trigger& trigger = triggers.front();
  std::vector<Value> params(trigger.prefix.begin(),
                            trigger.prefix.begin() + trigger.sig->param_count);
  bool finite = trigger.sig->dist->HasFiniteSupport(params);
  std::vector<Value> support =
      trigger.sig->dist->Support(params, finite ? 0 : support_limit);
  if (!finite) space->complete = false;

  for (const Value& o : support) {
    Prob p = trigger.sig->dist->Pmf(params, o);
    FactStore child = instance;  // copy-on-branch
    Tuple result_row = trigger.prefix;
    result_row.push_back(o);
    child.Insert(trigger.sig->result_pred, std::move(result_row));
    GDLOG_RETURN_IF_ERROR(Dfs(space, child, prob * p, depth + 1, max_outcomes,
                              max_depth, support_limit));
  }
  return Status::OK();
}

Result<BckovEngine::Space> BckovEngine::Explore(size_t max_outcomes,
                                                size_t max_depth,
                                                size_t support_limit) const {
  Space space;
  FactStore instance = *db_;
  GDLOG_RETURN_IF_ERROR(Dfs(&space, instance, Prob::One(), 0, max_outcomes,
                            max_depth, support_limit));
  return space;
}

}  // namespace gdlog
