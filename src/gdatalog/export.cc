#include "gdatalog/export.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>
#include <vector>

#include "util/json.h"

namespace gdlog {

void WriteProbJson(JsonWriter& json, const Prob& prob) {
  json.BeginObject();
  json.KV("value", prob.value());
  json.Key("rational");
  if (prob.exact()) {
    json.String(prob.ToString());
  } else {
    json.Null();
  }
  json.EndObject();
}

namespace {

// ---------------------------------------------------------------------------
// Lossless partial-space encoding (PartialSpaceToJson / FromJson). Unlike
// the reporting export above, every field must round-trip exactly: rationals
// as numerator/denominator, inexact masses and double constants as hex-float
// strings (%a renders the significand bits verbatim; strtod restores them).
// ---------------------------------------------------------------------------

constexpr const char* kPartialFormat = "gdlog.partial.v1";

std::string HexDouble(double d) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%a", d);
  return buf;
}

void WriteExactProb(JsonWriter& json, const Prob& prob) {
  json.BeginObject();
  if (prob.exact()) {
    json.KV("n", static_cast<long long>(prob.rational().numerator()));
    json.KV("d", static_cast<long long>(prob.rational().denominator()));
  } else {
    json.KV("x", HexDouble(prob.value()));
  }
  json.EndObject();
}

void WriteValue(JsonWriter& json, const Value& value,
                const Interner* interner) {
  json.BeginObject();
  switch (value.kind()) {
    case Value::Kind::kBool:
      json.KV("t", "b").KV("v", value.bool_value());
      break;
    case Value::Kind::kInt:
      json.KV("t", "i").KV("v", static_cast<long long>(value.int_value()));
      break;
    case Value::Kind::kDouble:
      json.KV("t", "d").KV("v", HexDouble(value.double_value()));
      break;
    case Value::Kind::kSymbol:
      json.KV("t", "s").KV("v", interner->Name(value.symbol_id()));
      break;
  }
  json.EndObject();
}

void WriteAtom(JsonWriter& json, const GroundAtom& atom,
               const Interner* interner) {
  json.BeginObject();
  json.KV("p", interner->Name(atom.predicate));
  json.Key("a").BeginArray();
  for (const Value& arg : atom.args) WriteValue(json, arg, interner);
  json.EndArray();
  json.EndObject();
}

void WriteChoices(JsonWriter& json, const ChoiceSet& choices,
                  const Interner* interner) {
  json.BeginArray();
  for (const auto& [active, outcome] : choices.entries()) {
    json.BeginObject();
    json.Key("active");
    WriteAtom(json, active, interner);
    json.Key("outcome");
    WriteValue(json, outcome, interner);
    json.EndObject();
  }
  json.EndArray();
}

Status FieldError(const std::string& what) {
  return Status::InvalidArgument("partial space: " + what);
}

Result<size_t> ReadSize(const JsonValue& obj, std::string_view key) {
  const JsonValue* field = obj.Find(key);
  if (field == nullptr || !field->is_number()) {
    return FieldError("missing numeric field '" + std::string(key) + "'");
  }
  GDLOG_ASSIGN_OR_RETURN(long long value, field->NumberAsInt());
  if (value < 0) return FieldError("negative '" + std::string(key) + "'");
  return static_cast<size_t>(value);
}

/// Parses a full hex-float (or decimal) double; rejects trailing garbage.
Result<double> ParseDouble(const std::string& text) {
  if (text.empty()) return FieldError("empty floating-point literal");
  char* end = nullptr;
  double d = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) {
    return FieldError("malformed floating-point literal '" + text + "'");
  }
  return d;
}

Result<Prob> ReadProb(const JsonValue& value) {
  if (!value.is_object()) return FieldError("malformed probability");
  if (const JsonValue* hex = value.Find("x"); hex != nullptr) {
    if (!hex->is_string()) return FieldError("malformed inexact mass");
    GDLOG_ASSIGN_OR_RETURN(double d, ParseDouble(hex->string_value()));
    // A corrupt partial must not smuggle in an out-of-range "probability"
    // that silently skews the merged masses.
    if (!(d >= 0.0) || !(d <= 1.0)) {
      return FieldError("mass outside [0, 1]: " + hex->string_value());
    }
    return Prob(Rational::Approx(d));
  }
  const JsonValue* num = value.Find("n");
  const JsonValue* den = value.Find("d");
  if (num == nullptr || den == nullptr || !num->is_number() ||
      !den->is_number()) {
    return FieldError("malformed rational mass");
  }
  GDLOG_ASSIGN_OR_RETURN(long long n, num->NumberAsInt());
  GDLOG_ASSIGN_OR_RETURN(long long d, den->NumberAsInt());
  if (d <= 0) return FieldError("non-positive denominator");
  if (n < 0 || n > d) return FieldError("rational mass outside [0, 1]");
  return Prob(Rational(n, d));
}

Result<Value> ReadValue(const JsonValue& value, const Interner& interner) {
  const JsonValue* tag = value.is_object() ? value.Find("t") : nullptr;
  const JsonValue* payload = value.is_object() ? value.Find("v") : nullptr;
  if (tag == nullptr || payload == nullptr || !tag->is_string()) {
    return FieldError("malformed constant");
  }
  const std::string& t = tag->string_value();
  if (t == "b") {
    if (!payload->is_bool()) return FieldError("malformed bool constant");
    return Value::Bool(payload->bool_value());
  }
  if (t == "i") {
    if (!payload->is_number()) return FieldError("malformed int constant");
    GDLOG_ASSIGN_OR_RETURN(long long i, payload->NumberAsInt());
    return Value::Int(i);
  }
  if (t == "d") {
    if (!payload->is_string()) return FieldError("malformed double constant");
    GDLOG_ASSIGN_OR_RETURN(double d, ParseDouble(payload->string_value()));
    return Value::Double(d);
  }
  if (t == "s") {
    if (!payload->is_string()) return FieldError("malformed symbol constant");
    uint32_t id = interner.Lookup(payload->string_value());
    if (id == Interner::kNotFound) {
      return FieldError("unknown symbol '" + payload->string_value() +
                        "' (partial produced by a different program?)");
    }
    return Value::Symbol(id);
  }
  return FieldError("unknown constant tag '" + t + "'");
}

Result<GroundAtom> ReadAtom(const JsonValue& value,
                            const Interner& interner) {
  const JsonValue* pred = value.is_object() ? value.Find("p") : nullptr;
  const JsonValue* args = value.is_object() ? value.Find("a") : nullptr;
  if (pred == nullptr || args == nullptr || !pred->is_string() ||
      !args->is_array()) {
    return FieldError("malformed atom");
  }
  GroundAtom atom;
  atom.predicate = interner.Lookup(pred->string_value());
  if (atom.predicate == Interner::kNotFound) {
    return FieldError("unknown predicate '" + pred->string_value() +
                      "' (partial produced by a different program?)");
  }
  atom.args.reserve(args->array().size());
  for (const JsonValue& arg : args->array()) {
    GDLOG_ASSIGN_OR_RETURN(Value v, ReadValue(arg, interner));
    atom.args.push_back(v);
  }
  return atom;
}

Result<ChoiceSet> ReadChoices(const JsonValue& value,
                              const Interner& interner) {
  if (!value.is_array()) return FieldError("malformed choice set");
  ChoiceSet choices;
  for (const JsonValue& entry : value.array()) {
    const JsonValue* active = entry.is_object() ? entry.Find("active")
                                                : nullptr;
    const JsonValue* outcome = entry.is_object() ? entry.Find("outcome")
                                                 : nullptr;
    if (active == nullptr || outcome == nullptr) {
      return FieldError("malformed choice entry");
    }
    GDLOG_ASSIGN_OR_RETURN(GroundAtom atom, ReadAtom(*active, interner));
    GDLOG_ASSIGN_OR_RETURN(Value v, ReadValue(*outcome, interner));
    if (!choices.Assign(atom, v)) {
      return FieldError("functionally inconsistent serialized choice set");
    }
  }
  return choices;
}

}  // namespace

std::string OutcomeSpaceToJson(const OutcomeSpace& space,
                               const TranslatedProgram& translated,
                               const Interner* interner,
                               const JsonExportOptions& options) {
  JsonWriter json;
  json.BeginObject();
  json.KV("complete", space.complete);
  json.KV("num_outcomes", static_cast<long long>(space.outcomes.size()));
  json.Key("finite_mass");
  WriteProbJson(json, space.finite_mass);
  json.Key("residual_mass");
  WriteProbJson(json, space.residual_mass());
  json.Key("prob_consistent");
  WriteProbJson(json, space.ProbConsistent());
  json.Key("prob_inconsistent");
  WriteProbJson(json, space.ProbInconsistent());
  json.KV("depth_truncated_paths",
          static_cast<long long>(space.depth_truncated_paths));
  json.KV("pruned_paths", static_cast<long long>(space.pruned_paths));

  if (options.include_outcomes) {
    json.Key("outcomes").BeginArray();
    for (const PossibleOutcome& outcome : space.outcomes) {
      json.BeginObject();
      json.Key("prob");
      WriteProbJson(json, outcome.prob);
      json.KV("num_models", static_cast<long long>(outcome.models.size()));
      json.Key("choices").BeginArray();
      for (const auto& [active, value] : outcome.choices.entries()) {
        json.BeginObject();
        json.KV("active", active.ToString(interner));
        json.KV("outcome", value.ToString(interner));
        json.EndObject();
      }
      json.EndArray();
      if (options.include_models) {
        json.Key("models").BeginArray();
        for (const StableModel& model : outcome.models) {
          json.BeginArray();
          for (const GroundAtom& atom :
               OutcomeSpace::StripAuxiliary(model, translated)) {
            json.String(atom.ToString(interner));
          }
          json.EndArray();
        }
        json.EndArray();
      }
      json.EndObject();
    }
    json.EndArray();
  }

  if (options.include_events) {
    std::map<StableModelSet, Prob> events = space.Events();
    std::map<StableModelSet, size_t> outcome_counts;
    for (const PossibleOutcome& outcome : space.outcomes) {
      ++outcome_counts[outcome.models];
    }
    json.Key("events").BeginArray();
    for (const auto& [models, mass] : events) {
      json.BeginObject();
      json.Key("mass");
      WriteProbJson(json, mass);
      json.KV("num_models", static_cast<long long>(models.size()));
      json.KV("num_outcomes",
              static_cast<long long>(outcome_counts[models]));
      json.EndObject();
    }
    json.EndArray();
  }

  json.EndObject();
  return json.str();
}

std::string PartialSpaceToJson(const PartialSpace& partial,
                               const ShardPartialMeta& meta,
                               const Interner* interner) {
  JsonWriter json;
  json.BeginObject();
  json.KV("format", kPartialFormat);
  json.KV("num_shards", static_cast<long long>(meta.num_shards));
  json.KV("shard_index", static_cast<long long>(meta.shard_index));
  json.KV("prefix_depth", static_cast<long long>(meta.prefix_depth));
  json.KV("assignment", ShardAssignmentName(meta.assignment));
  json.KV("max_outcomes", static_cast<long long>(meta.max_outcomes));
  json.KV("max_depth", static_cast<long long>(meta.max_depth));
  json.KV("support_limit", static_cast<long long>(meta.support_limit));
  // As a string: a shuffle seed is a full uint64, which a JSON number
  // read back through int64 could not represent.
  json.KV("trigger_shuffle_seed", std::to_string(meta.trigger_shuffle_seed));
  json.KV("min_path_prob", HexDouble(meta.min_path_prob));
  json.KV("budget_hit", partial.budget_hit);
  json.KV("depth_truncated_paths",
          static_cast<long long>(partial.depth_truncated_paths));
  json.KV("pruned_paths", static_cast<long long>(partial.pruned_paths));

  json.Key("outcomes").BeginArray();
  for (const PossibleOutcome& outcome : partial.outcomes) {
    json.BeginObject();
    json.Key("prob");
    WriteExactProb(json, outcome.prob);
    json.Key("choices");
    WriteChoices(json, outcome.choices, interner);
    json.Key("models").BeginArray();
    for (const StableModel& model : outcome.models) {
      json.BeginArray();
      for (const GroundAtom& atom : model) WriteAtom(json, atom, interner);
      json.EndArray();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();

  json.Key("truncations").BeginArray();
  for (const auto& [choices, mass] : partial.truncations) {
    json.BeginObject();
    json.Key("choices");
    WriteChoices(json, choices, interner);
    json.Key("mass");
    WriteExactProb(json, mass);
    json.EndObject();
  }
  json.EndArray();

  json.EndObject();
  return json.str();
}

Result<PartialSpace> PartialSpaceFromJson(std::string_view json_text,
                                          const Interner& interner,
                                          ShardPartialMeta* meta) {
  // Partials come from a JsonWriter in a sibling worker process, which
  // copies symbol-name bytes verbatim — and the surface lexer admits
  // arbitrary bytes in string constants — so strings here must read back
  // exactly as written rather than pass the untrusted-wire UTF-8 checks.
  JsonParseOptions parse_options;
  parse_options.strict_strings = false;
  GDLOG_ASSIGN_OR_RETURN(JsonValue doc,
                         JsonValue::Parse(json_text, parse_options));
  if (!doc.is_object()) return FieldError("document is not an object");
  const JsonValue* format = doc.Find("format");
  if (format == nullptr || !format->is_string() ||
      format->string_value() != kPartialFormat) {
    return FieldError(std::string("expected format '") + kPartialFormat +
                      "'");
  }
  GDLOG_ASSIGN_OR_RETURN(meta->num_shards, ReadSize(doc, "num_shards"));
  GDLOG_ASSIGN_OR_RETURN(meta->shard_index, ReadSize(doc, "shard_index"));
  GDLOG_ASSIGN_OR_RETURN(meta->prefix_depth, ReadSize(doc, "prefix_depth"));
  // Mergers size per-shard bookkeeping by num_shards; an absurd value from
  // a corrupt file must fail here, not as an allocation crash downstream.
  constexpr size_t kMaxShards = size_t{1} << 20;
  if (meta->num_shards < 1 || meta->num_shards > kMaxShards ||
      meta->shard_index >= meta->num_shards) {
    return FieldError("shard coordinates out of range");
  }
  const JsonValue* assignment = doc.Find("assignment");
  if (assignment == nullptr || !assignment->is_string()) {
    return FieldError("missing 'assignment'");
  }
  {
    auto parsed = ParseShardAssignment(assignment->string_value());
    if (!parsed.ok()) return FieldError("malformed 'assignment'");
    meta->assignment = *parsed;
  }
  GDLOG_ASSIGN_OR_RETURN(meta->max_outcomes, ReadSize(doc, "max_outcomes"));
  GDLOG_ASSIGN_OR_RETURN(meta->max_depth, ReadSize(doc, "max_depth"));
  GDLOG_ASSIGN_OR_RETURN(meta->support_limit, ReadSize(doc, "support_limit"));
  const JsonValue* seed = doc.Find("trigger_shuffle_seed");
  if (seed == nullptr || !seed->is_string()) {
    return FieldError("missing 'trigger_shuffle_seed'");
  }
  {
    const std::string& text = seed->string_value();
    errno = 0;
    char* end = nullptr;
    meta->trigger_shuffle_seed = std::strtoull(text.c_str(), &end, 10);
    if (errno == ERANGE || text.empty() ||
        end != text.c_str() + text.size()) {
      return FieldError("malformed 'trigger_shuffle_seed'");
    }
  }
  const JsonValue* min_prob = doc.Find("min_path_prob");
  if (min_prob == nullptr || !min_prob->is_string()) {
    return FieldError("missing 'min_path_prob'");
  }
  GDLOG_ASSIGN_OR_RETURN(meta->min_path_prob,
                         ParseDouble(min_prob->string_value()));

  PartialSpace partial;
  const JsonValue* budget = doc.Find("budget_hit");
  if (budget == nullptr || !budget->is_bool()) {
    return FieldError("missing 'budget_hit'");
  }
  partial.budget_hit = budget->bool_value();
  GDLOG_ASSIGN_OR_RETURN(partial.depth_truncated_paths,
                         ReadSize(doc, "depth_truncated_paths"));
  GDLOG_ASSIGN_OR_RETURN(partial.pruned_paths, ReadSize(doc, "pruned_paths"));

  const JsonValue* outcomes = doc.Find("outcomes");
  if (outcomes == nullptr || !outcomes->is_array()) {
    return FieldError("missing 'outcomes'");
  }
  partial.outcomes.reserve(outcomes->array().size());
  for (const JsonValue& entry : outcomes->array()) {
    if (!entry.is_object()) return FieldError("malformed outcome");
    const JsonValue* prob = entry.Find("prob");
    const JsonValue* choices = entry.Find("choices");
    const JsonValue* models = entry.Find("models");
    if (prob == nullptr || choices == nullptr || models == nullptr ||
        !models->is_array()) {
      return FieldError("malformed outcome");
    }
    PossibleOutcome outcome;
    GDLOG_ASSIGN_OR_RETURN(outcome.prob, ReadProb(*prob));
    GDLOG_ASSIGN_OR_RETURN(outcome.choices, ReadChoices(*choices, interner));
    for (const JsonValue& model_entry : models->array()) {
      if (!model_entry.is_array()) return FieldError("malformed model");
      StableModel model;
      model.reserve(model_entry.array().size());
      for (const JsonValue& atom_entry : model_entry.array()) {
        GDLOG_ASSIGN_OR_RETURN(GroundAtom atom,
                               ReadAtom(atom_entry, interner));
        model.push_back(std::move(atom));
      }
      outcome.models.insert(std::move(model));
    }
    partial.outcomes.push_back(std::move(outcome));
  }

  const JsonValue* truncations = doc.Find("truncations");
  if (truncations == nullptr || !truncations->is_array()) {
    return FieldError("missing 'truncations'");
  }
  partial.truncations.reserve(truncations->array().size());
  for (const JsonValue& entry : truncations->array()) {
    if (!entry.is_object()) return FieldError("malformed truncation");
    const JsonValue* choices = entry.Find("choices");
    const JsonValue* mass = entry.Find("mass");
    if (choices == nullptr || mass == nullptr) {
      return FieldError("malformed truncation");
    }
    GDLOG_ASSIGN_OR_RETURN(ChoiceSet cs, ReadChoices(*choices, interner));
    GDLOG_ASSIGN_OR_RETURN(Prob tail, ReadProb(*mass));
    partial.truncations.emplace_back(std::move(cs), tail);
  }
  return partial;
}

}  // namespace gdlog
