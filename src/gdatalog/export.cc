#include "gdatalog/export.h"

#include <map>

#include "util/json.h"

namespace gdlog {

namespace {

void WriteProb(JsonWriter& json, const Prob& prob) {
  json.BeginObject();
  json.KV("value", prob.value());
  json.Key("rational");
  if (prob.exact()) {
    json.String(prob.ToString());
  } else {
    json.Null();
  }
  json.EndObject();
}

}  // namespace

std::string OutcomeSpaceToJson(const OutcomeSpace& space,
                               const TranslatedProgram& translated,
                               const Interner* interner,
                               const JsonExportOptions& options) {
  JsonWriter json;
  json.BeginObject();
  json.KV("complete", space.complete);
  json.KV("num_outcomes", static_cast<long long>(space.outcomes.size()));
  json.Key("finite_mass");
  WriteProb(json, space.finite_mass);
  json.Key("residual_mass");
  WriteProb(json, space.residual_mass());
  json.Key("prob_consistent");
  WriteProb(json, space.ProbConsistent());
  json.Key("prob_inconsistent");
  WriteProb(json, space.ProbInconsistent());
  json.KV("depth_truncated_paths",
          static_cast<long long>(space.depth_truncated_paths));
  json.KV("pruned_paths", static_cast<long long>(space.pruned_paths));

  if (options.include_outcomes) {
    json.Key("outcomes").BeginArray();
    for (const PossibleOutcome& outcome : space.outcomes) {
      json.BeginObject();
      json.Key("prob");
      WriteProb(json, outcome.prob);
      json.KV("num_models", static_cast<long long>(outcome.models.size()));
      json.Key("choices").BeginArray();
      for (const auto& [active, value] : outcome.choices.entries()) {
        json.BeginObject();
        json.KV("active", active.ToString(interner));
        json.KV("outcome", value.ToString(interner));
        json.EndObject();
      }
      json.EndArray();
      if (options.include_models) {
        json.Key("models").BeginArray();
        for (const StableModel& model : outcome.models) {
          json.BeginArray();
          for (const GroundAtom& atom :
               OutcomeSpace::StripAuxiliary(model, translated)) {
            json.String(atom.ToString(interner));
          }
          json.EndArray();
        }
        json.EndArray();
      }
      json.EndObject();
    }
    json.EndArray();
  }

  if (options.include_events) {
    std::map<StableModelSet, Prob> events = space.Events();
    std::map<StableModelSet, size_t> outcome_counts;
    for (const PossibleOutcome& outcome : space.outcomes) {
      ++outcome_counts[outcome.models];
    }
    json.Key("events").BeginArray();
    for (const auto& [models, mass] : events) {
      json.BeginObject();
      json.Key("mass");
      WriteProb(json, mass);
      json.KV("num_models", static_cast<long long>(models.size()));
      json.KV("num_outcomes",
              static_cast<long long>(outcome_counts[models]));
      json.EndObject();
    }
    json.EndArray();
  }

  json.EndObject();
  return json.str();
}

}  // namespace gdlog
