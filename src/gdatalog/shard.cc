#include "gdatalog/shard.h"

#include <algorithm>
#include <iterator>
#include <string>
#include <utility>

#include "gdatalog/chase_internal.h"
#include "util/thread_pool.h"

namespace gdlog {

namespace {

/// Auto planning stops deepening once the frontier holds this many tasks
/// per shard — enough for the assignment policy to balance subtree sizes
/// without ballooning the plan.
constexpr size_t kTasksPerShard = 4;
/// Hard caps for auto planning: the prefix never exceeds this depth, and a
/// frontier this large is always accepted (the plan itself must stay cheap
/// next to the exploration it partitions).
constexpr size_t kMaxAutoPrefixDepth = 6;
constexpr size_t kMaxPlanTasks = 4096;

// The single definition of the canonical choice-set order everything in
// this file sorts by — the bit-identical-merge invariant depends on every
// sort agreeing, so there is deliberately exactly one copy of each.
bool OutcomeBefore(const PossibleOutcome& a, const PossibleOutcome& b) {
  return a.choices < b.choices;
}
bool TruncationBefore(const std::pair<ChoiceSet, Prob>& a,
                      const std::pair<ChoiceSet, Prob>& b) {
  return a.first < b.first;
}

void SortCanonically(PartialSpace* partial) {
  std::sort(partial->outcomes.begin(), partial->outcomes.end(),
            OutcomeBefore);
  std::sort(partial->truncations.begin(), partial->truncations.end(),
            TruncationBefore);
}

}  // namespace

const char* ShardAssignmentName(ShardAssignment assignment) {
  switch (assignment) {
    case ShardAssignment::kWeighted: return "weighted";
    case ShardAssignment::kRoundRobin: return "round_robin";
  }
  return "weighted";
}

Result<ShardAssignment> ParseShardAssignment(std::string_view name) {
  if (name == "weighted") return ShardAssignment::kWeighted;
  if (name == "round_robin") return ShardAssignment::kRoundRobin;
  return Status::InvalidArgument(
      "assignment must be weighted or round_robin; got '" +
      std::string(name) + "'");
}

std::vector<uint32_t> AssignTasksToShards(const std::vector<ShardTask>& tasks,
                                          size_t num_shards,
                                          ShardAssignment policy) {
  if (num_shards < 1) num_shards = 1;
  std::vector<uint32_t> shard_of(tasks.size(), 0);
  if (policy == ShardAssignment::kRoundRobin || num_shards == 1) {
    if (num_shards > 1) {
      for (size_t i = 0; i < tasks.size(); ++i) {
        shard_of[i] = static_cast<uint32_t>(i % num_shards);
      }
    }
    return shard_of;
  }

  // Greedy LPT over path-probability mass: visit tasks heaviest-first and
  // place each on the lightest shard so far. Ties break on the canonical
  // task index (for the order) and the lowest shard index (for the bin),
  // making the partition a pure function of the task list — every process
  // that recomputes the plan derives the identical map. Loads are compared
  // as doubles: Prob::value() is itself deterministic, and only the
  // partition (not any reported mass) depends on these sums.
  std::vector<size_t> order(tasks.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    double wa = tasks[a].path_prob.value();
    double wb = tasks[b].path_prob.value();
    if (wa != wb) return wa > wb;
    return a < b;
  });
  std::vector<double> load(num_shards, 0.0);
  for (size_t i : order) {
    size_t lightest = 0;
    for (size_t s = 1; s < num_shards; ++s) {
      if (load[s] < load[lightest]) lightest = s;
    }
    shard_of[i] = static_cast<uint32_t>(lightest);
    load[lightest] += tasks[i].path_prob.value();
  }
  return shard_of;
}

Result<ShardPlan> ChaseEngine::PlanShards(const ChaseOptions& options,
                                          size_t num_shards,
                                          size_t prefix_depth,
                                          ShardAssignment assignment) const {
  ShardPlan plan;
  plan.num_shards = num_shards < 1 ? 1 : num_shards;
  plan.assignment = assignment;
  size_t cut_tasks = 0;

  // Expands the first `depth` choice levels serially; every node at the
  // cut — and every leaf above it — lands in plan.tasks.
  auto plan_at = [&](size_t depth) -> Status {
    plan.tasks.clear();
    plan.plan_accounting = PartialSpace{};
    plan.prefix_depth = depth;
    ExploreState state;
    state.options = &options;
    state.incremental = options.incremental && grounder_->SupportsIncremental();
    state.partials.resize(1);
    state.plan_tasks = &plan.tasks;
    state.plan_prefix_depth = depth;
    DrainFrontier(state, std::vector<WorkItem>(1));
    if (!state.first_error.ok()) return state.first_error;
    plan.plan_accounting = std::move(state.TakePartials().front());
    cut_tasks = state.plan_cut_tasks;
    return Status::OK();
  };

  if (plan.num_shards == 1 && prefix_depth == 0) {
    // One shard needs no decomposition: the plan is the root itself.
    GDLOG_RETURN_IF_ERROR(plan_at(0));
  } else if (prefix_depth != 0) {
    GDLOG_RETURN_IF_ERROR(plan_at(prefix_depth));
  } else {
    const size_t target = kTasksPerShard * plan.num_shards;
    for (size_t depth = 1; depth <= kMaxAutoPrefixDepth; ++depth) {
      GDLOG_RETURN_IF_ERROR(plan_at(depth));
      // Stop when the frontier is rich enough, fully enumerated (every
      // task is a leaf — deepening cannot split it further), or too large.
      if (plan.tasks.size() >= std::min(target, kMaxPlanTasks) ||
          cut_tasks == 0) {
        break;
      }
    }
  }

  // Canonical order makes the shard assignment a pure function of the
  // chase tree, independent of traversal details.
  std::sort(plan.tasks.begin(), plan.tasks.end(),
            [](const ShardTask& a, const ShardTask& b) {
              return a.choices < b.choices;
            });
  plan.shard_of = AssignTasksToShards(plan.tasks, plan.num_shards, assignment);
  return plan;
}

Result<PartialSpace> ChaseEngine::ExploreShard(
    const ShardPlan& plan, size_t shard_index,
    const ChaseOptions& options, ChaseProfile* profile) const {
  if (shard_index >= plan.num_shards) {
    return Status::InvalidArgument("shard index out of range");
  }

  ExploreState state;
  state.options = &options;
  state.incremental = options.incremental && grounder_->SupportsIncremental();
  size_t workers = options.num_threads != 0
                       ? options.num_threads
                       : ThreadPool::DefaultWorkerCount();
  if (workers < 1) workers = 1;
  state.partials.resize(workers);
  if (options.profile && profile != nullptr) state.profiles.resize(workers);

  // Hand-assembled plans (deserialized, or pre-assignment ones) may lack
  // the explicit map; they mean PR 3's round-robin.
  const std::vector<uint32_t>& shard_of =
      plan.shard_of.size() == plan.tasks.size()
          ? plan.shard_of
          : AssignTasksToShards(plan.tasks, plan.num_shards,
                                ShardAssignment::kRoundRobin);
  std::vector<WorkItem> roots;
  for (size_t i = 0; i < plan.tasks.size(); ++i) {
    if (shard_of[i] != shard_index) continue;
    WorkItem root;
    root.choices = plan.tasks[i].choices;
    root.path_prob = plan.tasks[i].path_prob;
    // Every chase edge records exactly one choice, so the prefix length is
    // the node's depth; the grounding is re-derived from Σ alone.
    root.depth = root.choices.size();
    roots.push_back(std::move(root));
  }
  DrainFrontier(state, std::move(roots));
  if (options.profile && profile != nullptr) {
    for (const ChaseProfile& p : state.profiles) profile->Merge(p);
  }
  if (!state.first_error.ok()) return state.first_error;

  PartialSpace out;
  for (PartialSpace& partial : state.TakePartials()) {
    out.outcomes.insert(out.outcomes.end(),
                        std::make_move_iterator(partial.outcomes.begin()),
                        std::make_move_iterator(partial.outcomes.end()));
    out.truncations.insert(
        out.truncations.end(),
        std::make_move_iterator(partial.truncations.begin()),
        std::make_move_iterator(partial.truncations.end()));
    out.depth_truncated_paths += partial.depth_truncated_paths;
    out.pruned_paths += partial.pruned_paths;
    out.budget_hit = out.budget_hit || partial.budget_hit;
  }
  if (shard_index == 0) {
    // The plan-level accounting (supports truncated, prefixes pruned while
    // expanding the prefix levels) is owned by shard 0 so the merge counts
    // it exactly once no matter how many processes recomputed the plan.
    const PartialSpace& acc = plan.plan_accounting;
    out.truncations.insert(out.truncations.end(), acc.truncations.begin(),
                           acc.truncations.end());
    out.depth_truncated_paths += acc.depth_truncated_paths;
    out.pruned_paths += acc.pruned_paths;
    out.budget_hit = out.budget_hit || acc.budget_hit;
  }
  // Canonical per-shard order: the serialized partial is then identical
  // for every thread count, and the final merge's global sort sees the
  // same multiset regardless.
  SortCanonically(&out);
  return out;
}

ShardPartialMeta MakeShardPartialMeta(const ShardPlan& plan,
                                      size_t shard_index,
                                      const ChaseOptions& options) {
  ShardPartialMeta meta;
  meta.num_shards = plan.num_shards;
  meta.shard_index = shard_index;
  meta.prefix_depth = plan.prefix_depth;
  meta.assignment = plan.assignment;
  meta.max_outcomes = options.max_outcomes;
  meta.max_depth = options.max_depth;
  meta.support_limit = options.support_limit;
  meta.trigger_shuffle_seed = options.trigger_shuffle_seed;
  meta.min_path_prob = options.min_path_prob;
  return meta;
}

void StreamingMerger::Add(PartialSpace partial) {
  // Workers emit canonically-sorted partials; re-sort only when handed an
  // unsorted one (deserialized bytes are trusted but not assumed sorted).
  if (!std::is_sorted(partial.outcomes.begin(), partial.outcomes.end(),
                      OutcomeBefore) ||
      !std::is_sorted(partial.truncations.begin(), partial.truncations.end(),
                      TruncationBefore)) {
    SortCanonically(&partial);
  }
  size_t outcome_mid = accum_.outcomes.size();
  accum_.outcomes.insert(accum_.outcomes.end(),
                         std::make_move_iterator(partial.outcomes.begin()),
                         std::make_move_iterator(partial.outcomes.end()));
  std::inplace_merge(accum_.outcomes.begin(),
                     accum_.outcomes.begin() + outcome_mid,
                     accum_.outcomes.end(), OutcomeBefore);
  size_t truncation_mid = accum_.truncations.size();
  accum_.truncations.insert(
      accum_.truncations.end(),
      std::make_move_iterator(partial.truncations.begin()),
      std::make_move_iterator(partial.truncations.end()));
  std::inplace_merge(accum_.truncations.begin(),
                     accum_.truncations.begin() + truncation_mid,
                     accum_.truncations.end(), TruncationBefore);
  accum_.depth_truncated_paths += partial.depth_truncated_paths;
  accum_.pruned_paths += partial.pruned_paths;
  accum_.budget_hit = accum_.budget_hit || partial.budget_hit;
  ++folded_;
}

OutcomeSpace StreamingMerger::Finish(size_t max_outcomes) {
  OutcomeSpace space;
  bool budget_hit = accum_.budget_hit;
  space.outcomes = std::move(accum_.outcomes);
  space.depth_truncated_paths = accum_.depth_truncated_paths;
  space.pruned_paths = accum_.pruned_paths;
  // Per-shard outcome budgets can overshoot the global one; keep the
  // canonically-first max_outcomes (a single process keeps a
  // schedule-dependent subset instead — only count and flag compare).
  if (max_outcomes != 0 && space.outcomes.size() > max_outcomes) {
    space.outcomes.resize(max_outcomes);
    budget_hit = true;
  }
  // Masses are summed only now, after every partial folded in, so the
  // addition order is the global canonical order — the same order the
  // buffered merge sums in, which is what makes the two byte-identical
  // (double addition is order-sensitive).
  for (const PossibleOutcome& outcome : space.outcomes) {
    space.finite_mass = space.finite_mass + outcome.prob;
  }
  for (const auto& [choices, tail] : accum_.truncations) {
    (void)choices;
    space.support_truncation_mass = space.support_truncation_mass + tail;
  }
  space.complete = !budget_hit;
  accum_ = PartialSpace();
  folded_ = 0;
  return space;
}

OutcomeSpace MergePartialSpaces(std::vector<PartialSpace> partials,
                                size_t max_outcomes) {
  StreamingMerger merger;
  for (PartialSpace& partial : partials) {
    merger.Add(std::move(partial));
  }
  return merger.Finish(max_outcomes);
}

Result<OutcomeSpace> ShardedExplore(const ChaseEngine& engine,
                                    const ChaseOptions& options,
                                    size_t num_shards, size_t prefix_depth) {
  GDLOG_ASSIGN_OR_RETURN(ShardPlan plan,
                         engine.PlanShards(options, num_shards, prefix_depth));
  std::vector<PartialSpace> partials;
  partials.reserve(plan.num_shards);
  for (size_t shard = 0; shard < plan.num_shards; ++shard) {
    GDLOG_ASSIGN_OR_RETURN(PartialSpace partial,
                           engine.ExploreShard(plan, shard, options));
    partials.push_back(std::move(partial));
  }
  return MergePartialSpaces(std::move(partials), options.max_outcomes);
}

}  // namespace gdlog
