#ifndef GDLOG_GDATALOG_OUTCOME_H_
#define GDLOG_GDATALOG_OUTCOME_H_

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "gdatalog/choice.h"
#include "gdatalog/translation.h"
#include "stable/solver.h"
#include "util/prob.h"

namespace gdlog {

/// A finite possible outcome of D w.r.t. Π relative to a grounder G
/// (Definition 3.7): the choice set Σ with its grounding G(Σ), its
/// probability Pr(Σ) = Π δ⟨p̄⟩(o) over the Result atoms of heads(Σ), and
/// the induced set of stable models sms(Σ ∪ G(Σ)).
struct PossibleOutcome {
  ChoiceSet choices;
  Prob prob;
  StableModelSet models;
  /// The grounding G(Σ), retained only when ChaseOptions.keep_groundings.
  std::shared_ptr<const GroundRuleSet> grounding;
};

/// The probability space Π_G(D) = (Ω, F, P) restricted to what a finite
/// computation can materialize: the enumerated finite outcomes plus the
/// residual mass. The residual covers (a) the error event Ω∞ (genuinely
/// infinite outcomes, which the paper — following Grohe et al. — treats as
/// invalid) and (b) mass the exploration budget left unexplored;
/// `complete == true` means budgets never bound, so the residual is exactly
/// the Ω∞ mass (and zero when every chase path terminated).
class OutcomeSpace {
 public:
  std::vector<PossibleOutcome> outcomes;

  /// Σ Pr over the enumerated finite outcomes.
  Prob finite_mass = Prob::Zero();
  /// 1 - finite_mass.
  Prob residual_mass() const { return Prob::One() - finite_mass; }

  /// True iff no budget (outcome count, depth, support truncation,
  /// min-path probability) was hit during exploration.
  bool complete = true;
  /// Paths abandoned due to the depth budget.
  size_t depth_truncated_paths = 0;
  /// Mass lost to truncating countably infinite supports.
  Prob support_truncation_mass = Prob::Zero();
  /// Paths pruned below min_path_prob.
  size_t pruned_paths = 0;

  // -------------------------------------------------------------------
  // Events of the σ-algebra F: maximal families of finite outcomes with
  // equal stable-model sets (plus the residual/error event).
  // -------------------------------------------------------------------

  /// P restricted to the generating events: stable-model set ↦ mass.
  std::map<StableModelSet, Prob> Events() const;

  /// P(the program has at least one stable model): total mass of outcomes
  /// with sms(Σ) ≠ ∅.
  Prob ProbConsistent() const;

  /// P(sms(Σ) = ∅) over enumerated outcomes (the "no stable model" event;
  /// e.g. malware domination in Example 3.10).
  Prob ProbInconsistent() const;

  /// Credal marginal of a ground atom: an outcome with a non-empty model
  /// set counts toward `lower` when the atom is in *every* stable model,
  /// and toward `upper` when it is in *some* stable model (Cozman–Mauá
  /// credal reading; inconsistent outcomes count toward neither).
  struct Bounds {
    Prob lower = Prob::Zero();
    Prob upper = Prob::Zero();
  };
  Bounds Marginal(const GroundAtom& atom) const;

  /// Conditional credal marginal given consistency: Marginal() divided by
  /// ProbConsistent() (the constraint-conditioning of PPDL). Returns
  /// nullopt when P(consistent) = 0.
  std::optional<Bounds> MarginalGivenConsistent(const GroundAtom& atom) const;

  /// Strips Active/Result bookkeeping atoms from a model, yielding the
  /// user-facing instance over sch(Π) ("modulo active/result").
  static StableModel StripAuxiliary(const StableModel& model,
                                    const TranslatedProgram& translated);

  /// The space a fresh chase would produce if `facts` were appended to the
  /// database, *provided* their predicates occur in no rule body of Π: the
  /// facts enter every grounding only as body-less rules, so every stable
  /// model of every outcome gains exactly them, while choices,
  /// probabilities, masses, consistency and outcome order are untouched
  /// (splitting-set argument in ROADMAP "Incremental serving
  /// architecture"). The serving layer's cache-revalidation patch.
  OutcomeSpace WithAddedFacts(const std::vector<GroundAtom>& facts) const;
};

}  // namespace gdlog

#endif  // GDLOG_GDATALOG_OUTCOME_H_
