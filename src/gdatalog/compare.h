#ifndef GDLOG_GDATALOG_COMPARE_H_
#define GDLOG_GDATALOG_COMPARE_H_

#include <string>

#include "gdatalog/outcome.h"

namespace gdlog {

/// Result of the "as good as" comparison of Definition 3.11 between two
/// outcome spaces of the same Π[D] under different grounders.
struct ComparisonResult {
  /// Π_G(D) is as good as Π_G'(D): for every stable-model set I,
  /// P_G({Σ finite : sms(Σ) = I}) ≥ P_G'({Σ finite : sms(Σ) = I}).
  bool as_good = true;
  /// A witnessing violation (present iff !as_good).
  std::string violation;
  /// Number of distinct stable-model sets compared.
  size_t events_compared = 0;
};

/// Checks whether `left` is as good as `right` (Definition 3.11). Both
/// spaces must be complete explorations (OutcomeSpace::complete); otherwise
/// the verdict would depend on unexplored mass and an error is returned.
Result<ComparisonResult> IsAsGoodAs(const OutcomeSpace& left,
                                    const OutcomeSpace& right,
                                    const Interner* interner = nullptr);

}  // namespace gdlog

#endif  // GDLOG_GDATALOG_COMPARE_H_
