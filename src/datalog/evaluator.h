#ifndef GDLOG_DATALOG_EVALUATOR_H_
#define GDLOG_DATALOG_EVALUATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "ast/program.h"
#include "ground/dependency_graph.h"
#include "ground/fact_store.h"
#include "ground/join_plan.h"
#include "opt/pass_manager.h"

namespace gdlog {

/// A standalone bottom-up evaluator for *plain, stratified* Datalog¬
/// programs — the deterministic sublanguage of GDatalog¬ (no Δ-terms).
/// Computes the perfect model of Π on D by stratum-wise semi-naive
/// fixpoints; negation in stratum i refers only to strata < i, so every
/// negative literal is decided when first evaluated.
///
/// This is the engine a user reaches for when no probabilities are
/// involved: it materializes instances directly (no ground-rule
/// representation), which is considerably cheaper than going through the
/// probabilistic chase with an empty choice set.
class DatalogEvaluator {
 public:
  /// Validates and compiles Π: must be plain (no Δ-terms) and stratified.
  /// Constraints are allowed; they are checked after materialization.
  static Result<DatalogEvaluator> Create(Program pi);

  /// Evaluation counters for observability and tests.
  struct Stats {
    size_t strata = 0;
    size_t rounds = 0;             ///< Semi-naive rounds across strata.
    size_t rule_applications = 0;  ///< Successful body matches.
    size_t derived_facts = 0;      ///< Facts added beyond the database.
    /// Compiled-join counters (index/composite/scan candidate fetches,
    /// plan cache behavior) for the whole materialization.
    MatchStats match;
    /// Pass-pipeline stats for this materialization (enabled == false when
    /// optimization was off; the pipeline is per-Materialize because it
    /// specializes against the database summary).
    OptStats opt;
  };

  struct Model {
    /// The perfect model (database facts included).
    FactStore facts;
    /// False iff some ground constraint fired.
    bool consistent = true;
    /// Rendered ground constraint violations (first few, for diagnostics).
    std::vector<std::string> violations;
  };

  /// Materializes the perfect model of Π on `db`.
  Result<Model> Materialize(const FactStore& db, Stats* stats = nullptr) const;

  /// Re-materializes after a database delta: `base` is a Model previously
  /// returned by Materialize()/MaterializeDelta() on the pre-delta
  /// database, `db` the post-delta database and `ranges` the rows it
  /// gained (FactStore::ApplyDelta). Resumes the semi-naive fixpoint with
  /// the delta rows as the only new facts — cost proportional to what the
  /// delta newly derives, not to |D|. Sound only when no non-constraint
  /// rule has a negative literal: under negation added facts can retract
  /// derivations, which needs DRed-style maintenance (rejected with
  /// kUnsupported; see ROADMAP "Incremental serving architecture").
  /// Constraints (negation included) are re-checked against the final
  /// model. The pass pipeline is skipped — the resume must run under the
  /// same rules the base model was computed with.
  Result<Model> MaterializeDelta(const Model& base, const FactStore& db,
                                 const DeltaRanges& ranges,
                                 Stats* stats = nullptr) const;

  const Program& program() const { return pi_; }
  const DependencyGraph& dependency_graph() const { return *dg_; }

  /// Toggles the specialization/dead-rule pipeline run at the start of each
  /// Materialize (subjoin sharing stays off here: its auxiliary facts would
  /// pollute the materialized model). GDLOG_NO_OPT overrides to off.
  void set_optimize(bool on) { optimize_ = on; }

  /// Convenience: all rows of `store` matching an atom pattern given in
  /// surface syntax (e.g. "path(1, X)"); variables match anything, repeated
  /// variables must agree.
  static Result<std::vector<Tuple>> Query(const FactStore& store,
                                          const Program& pi,
                                          std::string_view pattern);

 private:
  explicit DatalogEvaluator(Program pi) : pi_(std::move(pi)) {}

  Program pi_;
  bool optimize_ = true;
  std::shared_ptr<DependencyGraph> dg_;
  /// Every rule compiled to slot form once, parallel to pi_.rules().
  /// (Both live on heap storage that moves with the evaluator, so the
  /// internal pointers survive the move out of Create().)
  std::vector<CompiledRule> compiled_;
  /// Non-constraint rules grouped by head stratum.
  std::vector<std::vector<const CompiledRule*>> stratum_rules_;
  std::vector<const CompiledRule*> constraints_;
};

}  // namespace gdlog

#endif  // GDLOG_DATALOG_EVALUATOR_H_
