#include "datalog/evaluator.h"

#include <unordered_map>

#include "ast/parser.h"
#include "ground/matcher.h"

namespace gdlog {

Result<DatalogEvaluator> DatalogEvaluator::Create(Program pi) {
  GDLOG_RETURN_IF_ERROR(pi.Validate());
  if (!pi.IsPlain()) {
    return Status::InvalidArgument(
        "DatalogEvaluator handles plain programs only (no Δ-terms); use "
        "GDatalog for generative programs");
  }
  DatalogEvaluator eval(std::move(pi));
  eval.dg_ = std::make_shared<DependencyGraph>(eval.pi_);
  if (!eval.dg_->IsStratified()) {
    return Status::NotStratified(
        "DatalogEvaluator requires stratified negation; use GDatalog (it "
        "enumerates stable models)");
  }
  eval.stratum_rules_.assign(eval.dg_->Components().size(), {});
  for (const Rule& rule : eval.pi_.rules()) {
    if (rule.is_constraint) {
      eval.constraints_.push_back(&rule);
      continue;
    }
    eval.stratum_rules_[eval.dg_->ComponentOf(rule.head.predicate)].push_back(
        &rule);
  }
  return eval;
}

Result<DatalogEvaluator::Model> DatalogEvaluator::Materialize(
    const FactStore& db, Stats* stats) const {
  Model model;
  model.facts = db;
  Stats local;
  local.strata = stratum_rules_.size();

  Matcher matcher(&model.facts);

  for (const std::vector<const Rule*>& stratum : stratum_rules_) {
    if (stratum.empty()) continue;

    // Round 0: naive pass over the whole store (facts from the database
    // and earlier strata are all "new" for this stratum's rules).
    // Subsequent rounds: semi-naive, pivoting on the previous round's
    // delta. Negative literals are decided against the store as-is —
    // sound because their predicates live in strictly earlier strata.
    std::vector<GroundAtom> delta;
    auto fire = [&](const Rule* rule, const Binding& binding,
                    std::vector<GroundAtom>* derived) {
      for (const Literal& lit : rule->body) {
        if (!lit.negated) continue;
        if (model.facts.Contains(ApplyAtom(lit.atom, binding))) return;
      }
      ++local.rule_applications;
      GroundAtom head;
      head.predicate = rule->head.predicate;
      head.args.reserve(rule->head.args.size());
      for (const HeadArg& arg : rule->head.args) {
        head.args.push_back(ApplyTerm(arg.term(), binding));
      }
      derived->push_back(std::move(head));
    };

    // Naive round.
    ++local.rounds;
    std::vector<GroundAtom> derived;
    for (const Rule* rule : stratum) {
      std::vector<const Atom*> pos = rule->PositiveBody();
      if (pos.empty()) {
        Binding empty;
        fire(rule, empty, &derived);
        continue;
      }
      matcher.Match(pos, [&](const Binding& binding) {
        fire(rule, binding, &derived);
        return true;
      });
    }
    for (GroundAtom& atom : derived) {
      if (model.facts.Insert(atom)) {
        ++local.derived_facts;
        delta.push_back(std::move(atom));
      }
    }

    // Semi-naive rounds.
    while (!delta.empty()) {
      ++local.rounds;
      std::unordered_map<uint32_t, std::vector<Tuple>> batch;
      for (GroundAtom& atom : delta) {
        batch[atom.predicate].push_back(std::move(atom.args));
      }
      delta.clear();
      derived.clear();
      for (const Rule* rule : stratum) {
        std::vector<const Atom*> pos = rule->PositiveBody();
        for (size_t pivot = 0; pivot < pos.size(); ++pivot) {
          auto hit = batch.find(pos[pivot]->predicate);
          if (hit == batch.end()) continue;
          matcher.MatchWithPivot(pos, pivot, hit->second,
                                 [&](const Binding& binding) {
                                   fire(rule, binding, &derived);
                                   return true;
                                 });
        }
      }
      for (GroundAtom& atom : derived) {
        if (model.facts.Insert(atom)) {
          ++local.derived_facts;
          delta.push_back(std::move(atom));
        }
      }
    }
  }

  // Constraints: check against the completed model.
  for (const Rule* constraint : constraints_) {
    std::vector<const Atom*> pos = constraint->PositiveBody();
    bool violated = false;
    auto check = [&](const Binding& binding) {
      for (const Literal& lit : constraint->body) {
        if (!lit.negated) continue;
        if (model.facts.Contains(ApplyAtom(lit.atom, binding))) return true;
      }
      violated = true;
      if (model.violations.size() < 8) {
        model.violations.push_back(constraint->ToString(pi_.interner()));
      }
      return false;  // one witness per constraint suffices
    };
    if (pos.empty()) {
      Binding empty;
      check(empty);
    } else {
      matcher.Match(pos, check);
    }
    if (violated) model.consistent = false;
  }

  if (stats != nullptr) *stats = local;
  return model;
}

Result<std::vector<Tuple>> DatalogEvaluator::Query(const FactStore& store,
                                                   const Program& pi,
                                                   std::string_view pattern) {
  std::string text(pattern);
  if (text.empty()) return Status::InvalidArgument("empty query pattern");
  if (text.back() != '.') text += ".";
  auto parsed = ParseProgram(text, pi.shared_interner());
  if (!parsed.ok()) return parsed.status();
  if (parsed->rules().size() != 1 || parsed->rules()[0].is_constraint ||
      !parsed->rules()[0].body.empty()) {
    return Status::InvalidArgument("query pattern must be a single atom");
  }
  const HeadAtom& head = parsed->rules()[0].head;
  Atom atom;
  atom.predicate = head.predicate;
  for (const HeadArg& arg : head.args) {
    if (arg.is_delta()) {
      return Status::InvalidArgument("query pattern cannot contain Δ-terms");
    }
    atom.args.push_back(arg.term());
  }
  Matcher matcher(&store);
  std::vector<Tuple> rows;
  matcher.Match({&atom}, [&](const Binding& binding) {
    rows.push_back(ApplyAtom(atom, binding).args);
    return true;
  });
  return rows;
}

}  // namespace gdlog
