#include "datalog/evaluator.h"

#include <unordered_map>
#include <unordered_set>

#include "ast/parser.h"
#include "obs/histogram.h"
#include "obs/profile.h"

namespace gdlog {

Result<DatalogEvaluator> DatalogEvaluator::Create(Program pi) {
  GDLOG_RETURN_IF_ERROR(pi.Validate());
  if (!pi.IsPlain()) {
    return Status::InvalidArgument(
        "DatalogEvaluator handles plain programs only (no Δ-terms); use "
        "GDatalog for generative programs");
  }
  DatalogEvaluator eval(std::move(pi));
  eval.dg_ = std::make_shared<DependencyGraph>(eval.pi_);
  if (!eval.dg_->IsStratified()) {
    return Status::NotStratified(
        "DatalogEvaluator requires stratified negation; use GDatalog (it "
        "enumerates stable models)");
  }
  eval.compiled_.reserve(eval.pi_.rules().size());
  for (const Rule& rule : eval.pi_.rules()) {
    eval.compiled_.push_back(CompileRule(rule));
    eval.compiled_.back().profile_index = eval.compiled_.size() - 1;
  }
  eval.stratum_rules_.assign(eval.dg_->Components().size(), {});
  for (const CompiledRule& compiled : eval.compiled_) {
    if (compiled.rule->is_constraint) {
      eval.constraints_.push_back(&compiled);
      continue;
    }
    eval.stratum_rules_[eval.dg_->ComponentOf(compiled.rule->head.predicate)]
        .push_back(&compiled);
  }
  return eval;
}

Result<DatalogEvaluator::Model> DatalogEvaluator::Materialize(
    const FactStore& db, Stats* stats) const {
  Model model;
  model.facts = db;
  Stats local;

  // Optimized view: when the pipeline runs, the rules are re-specialized
  // against this database's summary and recompiled locally; otherwise the
  // Create()-time compilation is used as-is. Strata still come from the
  // original dependency graph — with sharing off the passes introduce no
  // predicates, and specialization never changes a head predicate.
  std::vector<Rule> opt_rules;
  std::vector<CompiledRule> opt_compiled;
  std::vector<std::vector<const CompiledRule*>> opt_strata;
  std::vector<const CompiledRule*> opt_constraints;
  const std::vector<std::vector<const CompiledRule*>>* strata = &stratum_rules_;
  const std::vector<const CompiledRule*>* constraints = &constraints_;
  if (optimize_ && !OptDisabledByEnv()) {
    ProgramIr ir = ProgramIr::LiftPlain(pi_, pi_.shared_interner().get());
    PipelineOptions popts;
    popts.share_subjoins = false;  // aux facts would pollute the model
    local.opt = RunPipeline(&ir, SummarizeDb(db), popts);
    opt_rules = std::move(ir).TakePlainRules();
    opt_compiled.reserve(opt_rules.size());
    for (const Rule& rule : opt_rules) {
      opt_compiled.push_back(CompileRule(rule));
      opt_compiled.back().profile_index = opt_compiled.size() - 1;
    }
    opt_strata.assign(dg_->Components().size(), {});
    for (const CompiledRule& compiled : opt_compiled) {
      if (compiled.rule->is_constraint) {
        opt_constraints.push_back(&compiled);
      } else {
        opt_strata[dg_->ComponentOf(compiled.rule->head.predicate)].push_back(
            &compiled);
      }
    }
    strata = &opt_strata;
    constraints = &opt_constraints;
  }
  local.strata = strata->size();

  JoinPlanCache plans(&model.facts);
  JoinExecutor exec;
  GroundAtom neg_scratch;

  // Per-rule profiling, attributed by position in the rule list actually
  // executed (the optimized recompilation when the pipeline ran, the
  // Create()-time rules otherwise). Null sink — the default — costs one
  // branch per rule invocation.
  ChaseProfile* const prof = ProfileScope::Current();
  auto profiled_rule = [&](const CompiledRule* rule, uint64_t start_ns,
                           uint64_t bindings_before, size_t derived_before,
                           size_t derived_now) {
    RuleProfile& rp = prof->Rule(rule->profile_index);
    ++rp.calls;
    rp.bindings += local.match.bindings - bindings_before;
    rp.derivations += derived_now - derived_before;
    rp.time_ns += MonotonicNanos() - start_ns;
  };

  for (const std::vector<const CompiledRule*>& stratum : *strata) {
    if (stratum.empty()) continue;

    // Predicates some positive body of this stratum mentions: only their
    // facts can pivot a semi-naive round.
    std::unordered_set<uint32_t> body_preds;
    for (const CompiledRule* rule : stratum) {
      for (const CompiledAtom& atom : rule->positive) {
        body_preds.insert(atom.predicate);
      }
    }

    // Old/new watermarks (rows at index >= old_counts[pred] are the
    // current delta), snapshot at the end of each round's matching phase —
    // see RunGroundingFixpoint for the scheme.
    std::unordered_map<uint32_t, uint32_t> old_counts;
    auto snapshot_old = [&] {
      for (uint32_t pred : body_preds) {
        old_counts[pred] = static_cast<uint32_t>(model.facts.Count(pred));
      }
    };

    // Round 0: naive pass over the whole store (facts from the database
    // and earlier strata are all "new" for this stratum's rules).
    // Subsequent rounds: semi-naive, pivoting on the previous round's
    // delta, with pre-pivot atoms restricted to pre-delta rows so no body
    // instance is enumerated twice. Negative literals are decided against
    // the store as-is — sound because their predicates live in strictly
    // earlier strata.
    std::vector<GroundAtom> delta;
    auto fire = [&](const CompiledRule* rule, const BindingFrame& frame,
                    std::vector<GroundAtom>* derived) {
      for (const CompiledAtom& neg : rule->negative) {
        neg.InstantiateInto(frame, &neg_scratch);
        if (model.facts.Contains(neg_scratch)) return;
      }
      ++local.rule_applications;
      derived->push_back(rule->head.Instantiate(frame));
    };

    // Naive round.
    ++local.rounds;
    std::vector<GroundAtom> derived;
    for (const CompiledRule* rule : stratum) {
      const uint64_t start_ns = prof != nullptr ? MonotonicNanos() : 0;
      const uint64_t bindings_before = local.match.bindings;
      const size_t derived_before = derived.size();
      const JoinPlan& plan =
          plans.Get(*rule, JoinPlan::kNoPivot, &local.match);
      exec.Execute(plan, &local.match, [&](const BindingFrame& frame) {
        fire(rule, frame, &derived);
        return true;
      });
      if (prof != nullptr) {
        profiled_rule(rule, start_ns, bindings_before, derived_before,
                      derived.size());
      }
    }
    snapshot_old();
    for (GroundAtom& atom : derived) {
      if (model.facts.Insert(atom)) {
        ++local.derived_facts;
        if (body_preds.count(atom.predicate) != 0) {
          delta.push_back(std::move(atom));
        }
      }
    }

    // Semi-naive rounds.
    std::unordered_map<uint32_t, std::vector<Tuple>> batch;
    while (!delta.empty()) {
      ++local.rounds;
      batch.clear();
      for (GroundAtom& atom : delta) {
        batch[atom.predicate].push_back(std::move(atom.args));
      }
      delta.clear();
      derived.clear();
      for (const CompiledRule* rule : stratum) {
        for (size_t pivot = 0; pivot < rule->positive.size(); ++pivot) {
          auto hit = batch.find(rule->positive[pivot].predicate);
          if (hit == batch.end()) continue;
          const uint64_t start_ns = prof != nullptr ? MonotonicNanos() : 0;
          const uint64_t bindings_before = local.match.bindings;
          const size_t derived_before = derived.size();
          const JoinPlan& plan = plans.Get(*rule, pivot, &local.match);
          exec.ExecuteWithPivot(
              plan, hit->second, &local.match,
              [&](const BindingFrame& frame) {
                fire(rule, frame, &derived);
                return true;
              },
              &old_counts);
          if (prof != nullptr) {
            profiled_rule(rule, start_ns, bindings_before, derived_before,
                          derived.size());
          }
        }
      }
      snapshot_old();
      for (GroundAtom& atom : derived) {
        if (model.facts.Insert(atom)) {
          ++local.derived_facts;
          if (body_preds.count(atom.predicate) != 0) {
            delta.push_back(std::move(atom));
          }
        }
      }
    }
  }

  // Constraints: check against the completed model.
  for (const CompiledRule* constraint : *constraints) {
    bool violated = false;
    const JoinPlan& plan =
        plans.Get(*constraint, JoinPlan::kNoPivot, &local.match);
    exec.Execute(plan, &local.match, [&](const BindingFrame& frame) {
      for (const CompiledAtom& neg : constraint->negative) {
        if (model.facts.Contains(neg.Instantiate(frame))) return true;
      }
      violated = true;
      if (model.violations.size() < 8) {
        model.violations.push_back(constraint->rule->ToString(pi_.interner()));
      }
      return false;  // one witness per constraint suffices
    });
    if (violated) model.consistent = false;
  }

  if (stats != nullptr) *stats = local;
  return model;
}

Result<DatalogEvaluator::Model> DatalogEvaluator::MaterializeDelta(
    const Model& base, const FactStore& db, const DeltaRanges& ranges,
    Stats* stats) const {
  for (const CompiledRule& compiled : compiled_) {
    if (!compiled.rule->is_constraint && !compiled.negative.empty()) {
      return Status::Unsupported(
          "MaterializeDelta supports positive rule bodies only (adding "
          "facts under negation can retract derivations; DRed-style "
          "maintenance is not implemented): " +
          compiled.rule->ToString(pi_.interner()));
    }
  }
  Model model;
  model.facts = base.facts;  // copy-on-write share of the base model
  Stats local;
  local.strata = stratum_rules_.size();

  // Pre-delta watermarks over every body predicate: rows at index >= the
  // watermark — the delta rows inserted below plus whatever earlier
  // strata of this very run derive — are the new facts each stratum
  // resumes from. The base model is already a fixpoint of the rules, so
  // old×old matches need never be re-enumerated.
  std::unordered_set<uint32_t> all_body_preds;
  for (const std::vector<const CompiledRule*>& stratum : stratum_rules_) {
    for (const CompiledRule* rule : stratum) {
      for (const CompiledAtom& atom : rule->positive) {
        all_body_preds.insert(atom.predicate);
      }
    }
  }
  std::unordered_map<uint32_t, uint32_t> base_counts;
  for (uint32_t pred : all_body_preds) {
    base_counts[pred] = static_cast<uint32_t>(model.facts.Count(pred));
  }

  // Append the delta rows (ones the base run already derived dedup away).
  for (const auto& [pred, range] : ranges.ranges) {
    const std::vector<Tuple>& rows = db.Rows(pred);
    for (uint32_t r = range.begin; r < range.end && r < rows.size(); ++r) {
      model.facts.Insert(pred, rows[r]);
    }
  }

  JoinPlanCache plans(&model.facts);
  JoinExecutor exec;

  for (const std::vector<const CompiledRule*>& stratum : stratum_rules_) {
    if (stratum.empty()) continue;
    std::unordered_set<uint32_t> body_preds;
    for (const CompiledRule* rule : stratum) {
      for (const CompiledAtom& atom : rule->positive) {
        body_preds.insert(atom.predicate);
      }
    }
    std::unordered_map<uint32_t, uint32_t> old_counts;
    for (uint32_t pred : body_preds) old_counts[pred] = base_counts[pred];
    auto snapshot_old = [&] {
      for (uint32_t pred : body_preds) {
        old_counts[pred] = static_cast<uint32_t>(model.facts.Count(pred));
      }
    };

    std::vector<GroundAtom> derived;
    while (true) {
      bool any_delta = false;
      for (uint32_t pred : body_preds) {
        if (model.facts.Count(pred) > old_counts[pred]) {
          any_delta = true;
          break;
        }
      }
      if (!any_delta) break;
      ++local.rounds;
      derived.clear();
      for (const CompiledRule* rule : stratum) {
        for (size_t pivot = 0; pivot < rule->positive.size(); ++pivot) {
          uint32_t pred = rule->positive[pivot].predicate;
          size_t begin = old_counts[pred];
          const std::vector<Tuple>& rows = model.facts.Rows(pred);
          if (begin >= rows.size()) continue;
          const JoinPlan& plan = plans.Get(*rule, pivot, &local.match);
          exec.ExecuteWithPivotRange(
              plan, rows, begin, rows.size(), &local.match,
              [&](const BindingFrame& frame) {
                ++local.rule_applications;
                derived.push_back(rule->head.Instantiate(frame));
                return true;
              },
              &old_counts);
        }
      }
      snapshot_old();
      for (GroundAtom& atom : derived) {
        if (model.facts.Insert(atom)) ++local.derived_facts;
      }
    }
  }

  // Constraints (negation allowed here): re-checked from scratch against
  // the final model, exactly as in Materialize.
  for (const CompiledRule* constraint : constraints_) {
    bool violated = false;
    const JoinPlan& plan =
        plans.Get(*constraint, JoinPlan::kNoPivot, &local.match);
    exec.Execute(plan, &local.match, [&](const BindingFrame& frame) {
      for (const CompiledAtom& neg : constraint->negative) {
        if (model.facts.Contains(neg.Instantiate(frame))) return true;
      }
      violated = true;
      if (model.violations.size() < 8) {
        model.violations.push_back(constraint->rule->ToString(pi_.interner()));
      }
      return false;  // one witness per constraint suffices
    });
    if (violated) model.consistent = false;
  }

  if (stats != nullptr) *stats = local;
  return model;
}

Result<std::vector<Tuple>> DatalogEvaluator::Query(const FactStore& store,
                                                   const Program& pi,
                                                   std::string_view pattern) {
  std::string text(pattern);
  if (text.empty()) return Status::InvalidArgument("empty query pattern");
  if (text.back() != '.') text += ".";
  auto parsed = ParseProgram(text, pi.shared_interner());
  if (!parsed.ok()) return parsed.status();
  if (parsed->rules().size() != 1 || parsed->rules()[0].is_constraint ||
      !parsed->rules()[0].body.empty()) {
    return Status::InvalidArgument("query pattern must be a single atom");
  }
  const HeadAtom& head = parsed->rules()[0].head;
  Atom atom;
  atom.predicate = head.predicate;
  for (const HeadArg& arg : head.args) {
    if (arg.is_delta()) {
      return Status::InvalidArgument("query pattern cannot contain Δ-terms");
    }
    atom.args.push_back(arg.term());
  }
  CompiledRule body = CompileBody({&atom});
  JoinPlan plan = CompileJoinPlan(body, store);
  MatchStats stats;
  JoinExecutor exec;
  std::vector<Tuple> rows;
  exec.Execute(plan, &stats, [&](const BindingFrame& frame) {
    rows.push_back(body.positive[0].Instantiate(frame).args);
    return true;
  });
  return rows;
}

}  // namespace gdlog
